#pragma once
// SHAKE256 extendable-output function (FIPS 202), built on Keccak-f[1600].
//
// FALCON uses SHAKE256 in two roles that this type serves directly:
//  - HashToPoint: hash (salt || message) and squeeze 16-bit values, and
//  - seeding the signing/keygen PRNG.
// The API mirrors the inject/flip/extract flow of the reference code.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace fd {

class Shake256 {
 public:
  Shake256() { reset(); }

  // Clears all absorbed data and returns to the absorbing phase.
  void reset();

  // Absorbs data; only valid before flip().
  void inject(std::span<const std::uint8_t> data);
  void inject(std::string_view s);

  // Switches from absorbing to squeezing (applies padding).
  void flip();

  // Squeezes output bytes; only valid after flip().
  void extract(std::span<std::uint8_t> out);
  [[nodiscard]] std::uint8_t extract_u8();
  // Big-endian 16-bit squeeze, as used by FALCON's HashToPoint.
  [[nodiscard]] std::uint16_t extract_u16_be();
  [[nodiscard]] std::uint64_t extract_u64();

 private:
  void permute();

  std::uint64_t state_[25];
  std::size_t pos_;       // byte offset into the rate portion
  bool squeezing_;
  static constexpr std::size_t kRate = 136;  // SHAKE256 rate in bytes
};

}  // namespace fd
