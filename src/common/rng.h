#pragma once
// Deterministic random sources.
//
// Everything in this repo that needs randomness draws it through the
// RandomSource interface so that experiments are reproducible bit-for-bit
// from a seed. The concrete generator is ChaCha20 seeded via SHAKE256,
// matching the structure of FALCON's reference PRNG.

#include <cstdint>
#include <span>
#include <string_view>

namespace fd {

class RandomSource {
 public:
  virtual ~RandomSource() = default;
  virtual void fill(std::span<std::uint8_t> out) = 0;

  [[nodiscard]] std::uint8_t next_u8();
  [[nodiscard]] std::uint16_t next_u16();
  [[nodiscard]] std::uint64_t next_u64();
  // Unbiased uniform draw in [0, bound) via rejection; bound must be > 0.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound);
  // Standard normal via Box-Muller over uniform 53-bit doubles.
  [[nodiscard]] double gaussian();

 private:
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

// ChaCha20 keystream generator (RFC 7539 block function, counter mode).
class ChaCha20Prng final : public RandomSource {
 public:
  // Seeds key and nonce by squeezing SHAKE256(seed_material).
  explicit ChaCha20Prng(std::string_view seed_material);
  explicit ChaCha20Prng(std::span<const std::uint8_t> seed_material);
  // Convenience: seeds from a 64-bit integer (used by benches/tests).
  explicit ChaCha20Prng(std::uint64_t seed);

  void fill(std::span<std::uint8_t> out) override;

  // Exposes the raw block function for test vectors (RFC 7539 §2.3.2).
  static void block(const std::uint32_t key[8], std::uint32_t counter,
                    const std::uint32_t nonce[3], std::uint8_t out[64]);

 private:
  void seed_from(std::span<const std::uint8_t> material);
  void refill();

  std::uint32_t key_[8];
  std::uint32_t nonce_[3];
  std::uint32_t counter_ = 0;
  std::uint8_t buf_[64];
  std::size_t buf_pos_ = sizeof(buf_);
};

}  // namespace fd
