#pragma once
// Arbitrary-precision signed integers (sign-magnitude, 32-bit limbs).
//
// This is the exact-arithmetic substrate for FALCON key generation:
// NTRUSolve's field-norm recursion squares coefficient sizes at each
// descent level, so polynomial coefficients routinely grow to thousands
// of bits. The operation set is tailored to that use: ring arithmetic
// (add/sub/mul), Euclidean division, extended GCD (for the depth-0 Bezout
// step), shifts, and lossy extraction of the top 53 bits + exponent for
// the FFT-approximated Babai reduction.

#include <cstdint>
#include <compare>
#include <string>
#include <vector>

namespace fd {

class BigInt;

struct BigIntDivResult;
struct BigIntXgcdResult;

class BigInt {
 public:
  BigInt() = default;
  BigInt(std::int64_t v);  // NOLINT(google-explicit-constructor) - ints are values
  // Parses an optionally '-'-prefixed decimal string. Throws std::invalid_argument.
  static BigInt from_decimal(const std::string& s);

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_negative() const { return negative_; }
  [[nodiscard]] bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1U); }

  // Number of significant bits in |x|; bit_length(0) == 0.
  [[nodiscard]] std::size_t bit_length() const;

  // Value of bit i of |x| (i may exceed bit_length; returns 0 then).
  [[nodiscard]] bool bit(std::size_t i) const;

  BigInt& operator+=(const BigInt& o);
  BigInt& operator-=(const BigInt& o);
  BigInt& operator*=(const BigInt& o) { *this = *this * o; return *this; }
  BigInt& operator<<=(std::size_t n);
  BigInt& operator>>=(std::size_t n);  // arithmetic toward zero on magnitude

  friend BigInt operator+(BigInt a, const BigInt& b) { a += b; return a; }
  friend BigInt operator-(BigInt a, const BigInt& b) { a -= b; return a; }
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  friend BigInt operator<<(BigInt a, std::size_t n) { a <<= n; return a; }
  friend BigInt operator>>(BigInt a, std::size_t n) { a >>= n; return a; }
  BigInt operator-() const;

  friend bool operator==(const BigInt& a, const BigInt& b) = default;
  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b);

  using DivResult = BigIntDivResult;
  using XgcdResult = BigIntXgcdResult;
  // Truncating division; throws std::domain_error on division by zero.
  [[nodiscard]] static DivResult divmod(const BigInt& num, const BigInt& den);
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  friend BigInt operator%(const BigInt& a, const BigInt& b);
  [[nodiscard]] static XgcdResult xgcd(const BigInt& a, const BigInt& b);

  // Lossy conversions -------------------------------------------------------

  // Requires the value to fit in int64; throws std::overflow_error otherwise.
  [[nodiscard]] std::int64_t to_int64() const;
  [[nodiscard]] bool fits_int64() const;

  // Returns m, sets e, such that the value is approximately m * 2^e with
  // |m| in [2^52, 2^53) (or m == 0, e == 0). Rounds toward zero.
  // Used by NTRUSolve's Babai reduction to feed bigints into the FFT.
  [[nodiscard]] double to_double_scaled(int& e) const;
  // Convenience: closest double (may overflow to +-inf for huge values).
  [[nodiscard]] double to_double() const;

  [[nodiscard]] std::string to_decimal() const;

 private:
  void trim();
  [[nodiscard]] static int cmp_mag(const BigInt& a, const BigInt& b);
  static void add_mag(std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  // Requires |a| >= |b|.
  static void sub_mag(std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);

  bool negative_ = false;            // never true when limbs_ is empty
  std::vector<std::uint32_t> limbs_; // little-endian magnitude, no leading zeros
};

struct BigIntDivResult {
  BigInt quotient;
  BigInt remainder;  // same sign as the dividend (C-style truncation)
};

struct BigIntXgcdResult {
  BigInt g;  // gcd >= 0
  BigInt u;  // u*a + v*b == g
  BigInt v;
};

inline BigInt operator/(const BigInt& a, const BigInt& b) {
  return BigInt::divmod(a, b).quotient;
}
inline BigInt operator%(const BigInt& a, const BigInt& b) {
  return BigInt::divmod(a, b).remainder;
}

}  // namespace fd
