#include "common/shake256.h"

#include <bit>
#include <cstring>

namespace fd {
namespace {

constexpr std::uint64_t kRoundConstants[24] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808AULL,
    0x8000000080008000ULL, 0x000000000000808BULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008AULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000AULL,
    0x000000008000808BULL, 0x800000000000008BULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800AULL, 0x800000008000000AULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL};

constexpr unsigned kRotations[25] = {0,  1,  62, 28, 27, 36, 44, 6,  55, 20, 3,  10, 43,
                                     25, 39, 41, 45, 15, 21, 8,  18, 2,  61, 56, 14};

void keccak_f1600(std::uint64_t a[25]) {
  for (int round = 0; round < 24; ++round) {
    // Theta
    std::uint64_t c[5];
    for (int x = 0; x < 5; ++x) {
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    }
    for (int x = 0; x < 5; ++x) {
      const std::uint64_t d = c[(x + 4) % 5] ^ std::rotl(c[(x + 1) % 5], 1);
      for (int y = 0; y < 5; ++y) a[x + 5 * y] ^= d;
    }
    // Rho + Pi
    std::uint64_t b[25];
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        b[y + 5 * ((2 * x + 3 * y) % 5)] = std::rotl(a[x + 5 * y], kRotations[x + 5 * y]);
      }
    }
    // Chi
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        a[x + 5 * y] = b[x + 5 * y] ^ (~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
      }
    }
    // Iota
    a[0] ^= kRoundConstants[round];
  }
}

}  // namespace

void Shake256::reset() {
  std::memset(state_, 0, sizeof state_);
  pos_ = 0;
  squeezing_ = false;
}

void Shake256::inject(std::span<const std::uint8_t> data) {
  for (const std::uint8_t byte : data) {
    state_[pos_ / 8] ^= static_cast<std::uint64_t>(byte) << (8 * (pos_ % 8));
    if (++pos_ == kRate) {
      keccak_f1600(state_);
      pos_ = 0;
    }
  }
}

void Shake256::inject(std::string_view s) {
  inject(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void Shake256::flip() {
  // SHAKE domain separation (0x1F) and final padding bit.
  state_[pos_ / 8] ^= std::uint64_t{0x1F} << (8 * (pos_ % 8));
  state_[(kRate - 1) / 8] ^= std::uint64_t{0x80} << (8 * ((kRate - 1) % 8));
  keccak_f1600(state_);
  pos_ = 0;
  squeezing_ = true;
}

void Shake256::extract(std::span<std::uint8_t> out) {
  for (std::uint8_t& byte : out) {
    if (pos_ == kRate) {
      keccak_f1600(state_);
      pos_ = 0;
    }
    byte = static_cast<std::uint8_t>(state_[pos_ / 8] >> (8 * (pos_ % 8)));
    ++pos_;
  }
}

std::uint8_t Shake256::extract_u8() {
  std::uint8_t b = 0;
  extract({&b, 1});
  return b;
}

std::uint16_t Shake256::extract_u16_be() {
  std::uint8_t b[2];
  extract(b);
  return static_cast<std::uint16_t>((b[0] << 8) | b[1]);
}

std::uint64_t Shake256::extract_u64() {
  std::uint8_t b[8];
  extract(b);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

}  // namespace fd
