#include "common/bigint.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace fd {
namespace {

constexpr std::size_t kKaratsubaThreshold = 32;  // limbs

// Schoolbook magnitude multiplication.
std::vector<std::uint32_t> mul_mag_school(const std::vector<std::uint32_t>& a,
                                          const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> r(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      const std::uint64_t t = ai * b[j] + r[i + j] + carry;
      r[i + j] = static_cast<std::uint32_t>(t);
      carry = t >> 32;
    }
    r[i + b.size()] = static_cast<std::uint32_t>(carry);
  }
  while (!r.empty() && r.back() == 0) r.pop_back();
  return r;
}

void add_into(std::vector<std::uint32_t>& acc, const std::vector<std::uint32_t>& x,
              std::size_t shift_limbs) {
  if (x.empty()) return;
  if (acc.size() < x.size() + shift_limbs + 1) acc.resize(x.size() + shift_limbs + 1, 0);
  std::uint64_t carry = 0;
  std::size_t i = 0;
  for (; i < x.size(); ++i) {
    const std::uint64_t t = static_cast<std::uint64_t>(acc[i + shift_limbs]) + x[i] + carry;
    acc[i + shift_limbs] = static_cast<std::uint32_t>(t);
    carry = t >> 32;
  }
  for (; carry != 0; ++i) {
    const std::uint64_t t = static_cast<std::uint64_t>(acc[i + shift_limbs]) + carry;
    acc[i + shift_limbs] = static_cast<std::uint32_t>(t);
    carry = t >> 32;
  }
}

// Requires element-wise a >= b as magnitudes starting at acc offset 0.
void sub_from(std::vector<std::uint32_t>& acc, const std::vector<std::uint32_t>& x) {
  std::int64_t borrow = 0;
  std::size_t i = 0;
  for (; i < x.size(); ++i) {
    std::int64_t t = static_cast<std::int64_t>(acc[i]) - x[i] - borrow;
    borrow = t < 0 ? 1 : 0;
    if (t < 0) t += (std::int64_t{1} << 32);
    acc[i] = static_cast<std::uint32_t>(t);
  }
  for (; borrow != 0; ++i) {
    std::int64_t t = static_cast<std::int64_t>(acc[i]) - borrow;
    borrow = t < 0 ? 1 : 0;
    if (t < 0) t += (std::int64_t{1} << 32);
    acc[i] = static_cast<std::uint32_t>(t);
  }
}

std::vector<std::uint32_t> mul_mag(const std::vector<std::uint32_t>& a,
                                   const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  if (std::min(a.size(), b.size()) < kKaratsubaThreshold) return mul_mag_school(a, b);

  const std::size_t half = std::max(a.size(), b.size()) / 2;
  const auto lo = [&](const std::vector<std::uint32_t>& v) {
    std::vector<std::uint32_t> r(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(std::min(half, v.size())));
    while (!r.empty() && r.back() == 0) r.pop_back();
    return r;
  };
  const auto hi = [&](const std::vector<std::uint32_t>& v) {
    if (v.size() <= half) return std::vector<std::uint32_t>{};
    return std::vector<std::uint32_t>(v.begin() + static_cast<std::ptrdiff_t>(half), v.end());
  };
  const auto a0 = lo(a), a1 = hi(a), b0 = lo(b), b1 = hi(b);
  const auto z0 = mul_mag(a0, b0);
  const auto z2 = mul_mag(a1, b1);
  // (a0+a1)(b0+b1) = z0 + z2 + cross
  auto as = a0; add_into(as, a1, 0); while (!as.empty() && as.back() == 0) as.pop_back();
  auto bs = b0; add_into(bs, b1, 0); while (!bs.empty() && bs.back() == 0) bs.pop_back();
  auto z1 = mul_mag(as, bs);
  sub_from(z1, z0);
  sub_from(z1, z2);
  while (!z1.empty() && z1.back() == 0) z1.pop_back();

  std::vector<std::uint32_t> r = z0;
  add_into(r, z1, half);
  add_into(r, z2, 2 * half);
  while (!r.empty() && r.back() == 0) r.pop_back();
  return r;
}

}  // namespace

BigInt::BigInt(std::int64_t v) {
  negative_ = v < 0;
  std::uint64_t m = negative_ ? ~static_cast<std::uint64_t>(v) + 1 : static_cast<std::uint64_t>(v);
  while (m != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(m));
    m >>= 32;
  }
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::from_decimal(const std::string& s) {
  if (s.empty()) throw std::invalid_argument("BigInt::from_decimal: empty string");
  std::size_t i = 0;
  bool neg = false;
  if (s[0] == '-' || s[0] == '+') {
    neg = s[0] == '-';
    i = 1;
    if (s.size() == 1) throw std::invalid_argument("BigInt::from_decimal: sign only");
  }
  BigInt r;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') throw std::invalid_argument("BigInt::from_decimal: bad digit");
    r = r * BigInt(10) + BigInt(s[i] - '0');
  }
  if (neg && !r.is_zero()) r.negative_ = true;
  return r;
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  return (limbs_.size() - 1) * 32 + (32 - static_cast<std::size_t>(std::countl_zero(limbs_.back())));
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1U;
}

int BigInt::cmp_mag(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

void BigInt::add_mag(std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  add_into(a, b, 0);
  while (!a.empty() && a.back() == 0) a.pop_back();
}

void BigInt::sub_mag(std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  sub_from(a, b);
  while (!a.empty() && a.back() == 0) a.pop_back();
}

BigInt& BigInt::operator+=(const BigInt& o) {
  if (negative_ == o.negative_) {
    add_mag(limbs_, o.limbs_);
  } else if (cmp_mag(*this, o) >= 0) {
    sub_mag(limbs_, o.limbs_);
  } else {
    auto tmp = o.limbs_;
    sub_from(tmp, limbs_);
    limbs_ = std::move(tmp);
    negative_ = o.negative_;
  }
  trim();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& o) {
  BigInt t = o;
  if (!t.is_zero()) t.negative_ = !t.negative_;
  return *this += t;
}

BigInt BigInt::operator-() const {
  BigInt r = *this;
  if (!r.is_zero()) r.negative_ = !r.negative_;
  return r;
}

BigInt operator*(const BigInt& a, const BigInt& b) {
  BigInt r;
  r.limbs_ = mul_mag(a.limbs_, b.limbs_);
  r.negative_ = !r.limbs_.empty() && (a.negative_ != b.negative_);
  return r;
}

BigInt& BigInt::operator<<=(std::size_t n) {
  if (limbs_.empty() || n == 0) return *this;
  const std::size_t limb_shift = n / 32;
  const unsigned bit_shift = static_cast<unsigned>(n % 32);
  std::vector<std::uint32_t> r(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    r[i + limb_shift] |= static_cast<std::uint32_t>(v);
    r[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  limbs_ = std::move(r);
  trim();
  return *this;
}

BigInt& BigInt::operator>>=(std::size_t n) {
  if (limbs_.empty() || n == 0) return *this;
  const std::size_t limb_shift = n / 32;
  const unsigned bit_shift = static_cast<unsigned>(n % 32);
  if (limb_shift >= limbs_.size()) {
    limbs_.clear();
    negative_ = false;
    return *this;
  }
  std::vector<std::uint32_t> r(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < r.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    }
    r[i] = static_cast<std::uint32_t>(v);
  }
  limbs_ = std::move(r);
  trim();
  return *this;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
  if (a.negative_ != b.negative_) {
    return a.negative_ ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  const int c = BigInt::cmp_mag(a, b);
  const int signed_c = a.negative_ ? -c : c;
  if (signed_c < 0) return std::strong_ordering::less;
  if (signed_c > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

BigInt::DivResult BigInt::divmod(const BigInt& num, const BigInt& den) {
  if (den.is_zero()) throw std::domain_error("BigInt::divmod: division by zero");
  DivResult res;
  if (cmp_mag(num, den) < 0) {
    res.remainder = num;
    return res;
  }

  // Knuth Algorithm D on magnitudes (with single-limb fast path).
  const auto& d = den.limbs_;
  if (d.size() == 1) {
    const std::uint64_t dd = d[0];
    std::vector<std::uint32_t> q(num.limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = num.limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | num.limbs_[i];
      q[i] = static_cast<std::uint32_t>(cur / dd);
      rem = cur % dd;
    }
    res.quotient.limbs_ = std::move(q);
    res.quotient.trim();
    res.remainder = BigInt(static_cast<std::int64_t>(rem));
  } else {
    const unsigned shift = static_cast<unsigned>(std::countl_zero(d.back()));
    BigInt u = num;
    u.negative_ = false;
    u <<= shift;
    BigInt v = den;
    v.negative_ = false;
    v <<= shift;
    const std::size_t n = v.limbs_.size();
    const std::size_t m = u.limbs_.size() - n;
    u.limbs_.resize(u.limbs_.size() + 1, 0);  // u[m+n] slot

    std::vector<std::uint32_t> q(m + 1, 0);
    const std::uint64_t vtop = v.limbs_[n - 1];
    const std::uint64_t vsec = v.limbs_[n - 2];
    for (std::size_t j = m + 1; j-- > 0;) {
      const std::uint64_t numer =
          (static_cast<std::uint64_t>(u.limbs_[j + n]) << 32) | u.limbs_[j + n - 1];
      std::uint64_t qhat = numer / vtop;
      std::uint64_t rhat = numer % vtop;
      while (qhat >= (std::uint64_t{1} << 32) ||
             qhat * vsec > ((rhat << 32) | u.limbs_[j + n - 2])) {
        --qhat;
        rhat += vtop;
        if (rhat >= (std::uint64_t{1} << 32)) break;
      }
      // Multiply-and-subtract qhat * v from u[j .. j+n].
      std::int64_t borrow = 0;
      std::uint64_t carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t p = qhat * v.limbs_[i] + carry;
        carry = p >> 32;
        std::int64_t t = static_cast<std::int64_t>(u.limbs_[i + j]) -
                         static_cast<std::int64_t>(p & 0xFFFFFFFFULL) - borrow;
        borrow = t < 0 ? 1 : 0;
        if (t < 0) t += (std::int64_t{1} << 32);
        u.limbs_[i + j] = static_cast<std::uint32_t>(t);
      }
      std::int64_t t = static_cast<std::int64_t>(u.limbs_[j + n]) -
                       static_cast<std::int64_t>(carry) - borrow;
      const bool negative = t < 0;
      if (t < 0) t += (std::int64_t{1} << 32);
      u.limbs_[j + n] = static_cast<std::uint32_t>(t);

      if (negative) {  // qhat was one too large: add back
        --qhat;
        std::uint64_t c = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const std::uint64_t s = static_cast<std::uint64_t>(u.limbs_[i + j]) + v.limbs_[i] + c;
          u.limbs_[i + j] = static_cast<std::uint32_t>(s);
          c = s >> 32;
        }
        u.limbs_[j + n] = static_cast<std::uint32_t>(u.limbs_[j + n] + c);
      }
      q[j] = static_cast<std::uint32_t>(qhat);
    }
    u.limbs_.resize(n);
    u.trim();
    u >>= shift;
    res.quotient.limbs_ = std::move(q);
    res.quotient.trim();
    res.remainder = std::move(u);
  }

  // Apply C-style truncation signs.
  if (!res.quotient.is_zero()) res.quotient.negative_ = num.negative_ != den.negative_;
  if (!res.remainder.is_zero()) res.remainder.negative_ = num.negative_;
  return res;
}

BigInt::XgcdResult BigInt::xgcd(const BigInt& a, const BigInt& b) {
  // Iterative extended Euclid on the magnitudes; fix up signs at the end.
  BigInt r0 = a, r1 = b;
  r0.negative_ = false;
  r1.negative_ = false;
  BigInt s0 = 1, s1 = 0, t0 = 0, t1 = 1;
  while (!r1.is_zero()) {
    auto [q, r] = divmod(r0, r1);
    r0 = std::move(r1);
    r1 = std::move(r);
    BigInt s2 = s0 - q * s1;
    s0 = std::move(s1);
    s1 = std::move(s2);
    BigInt t2 = t0 - q * t1;
    t0 = std::move(t1);
    t1 = std::move(t2);
  }
  XgcdResult out;
  out.g = std::move(r0);
  out.u = a.is_negative() ? -s0 : s0;
  out.v = b.is_negative() ? -t0 : t0;
  return out;
}

bool BigInt::fits_int64() const {
  if (bit_length() < 64) return true;
  // INT64_MIN: magnitude 2^63 exactly, negative.
  return negative_ && bit_length() == 64 && bit(63) && limbs_[0] == 0 && limbs_[1] == 0x80000000U;
}

std::int64_t BigInt::to_int64() const {
  if (!fits_int64()) throw std::overflow_error("BigInt::to_int64: out of range");
  std::uint64_t m = 0;
  for (std::size_t i = std::min<std::size_t>(limbs_.size(), 2); i-- > 0;) {
    m = (m << 32) | limbs_[i];
  }
  return negative_ ? -static_cast<std::int64_t>(m) : static_cast<std::int64_t>(m);
}

double BigInt::to_double_scaled(int& e) const {
  if (is_zero()) {
    e = 0;
    return 0.0;
  }
  const std::size_t bl = bit_length();
  if (bl <= 53) {
    e = 0;
    std::uint64_t m = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) m = (m << 32) | limbs_[i];
    // Normalize to [2^52, 2^53).
    const int up = 52 - static_cast<int>(bl - 1);
    e = -up;
    const double d = static_cast<double>(m) * std::ldexp(1.0, up);
    return negative_ ? -d : d;
  }
  const std::size_t drop = bl - 53;
  BigInt top = *this;
  top.negative_ = false;
  top >>= drop;
  std::uint64_t m = 0;
  for (std::size_t i = top.limbs_.size(); i-- > 0;) m = (m << 32) | top.limbs_[i];
  e = static_cast<int>(drop);
  const double d = static_cast<double>(m);
  return negative_ ? -d : d;
}

double BigInt::to_double() const {
  int e = 0;
  const double m = to_double_scaled(e);
  return std::ldexp(m, e);
}

std::string BigInt::to_decimal() const {
  if (is_zero()) return "0";
  BigInt v = *this;
  v.negative_ = false;
  std::string digits;
  const BigInt ten(10);
  while (!v.is_zero()) {
    auto [q, r] = divmod(v, ten);
    digits.push_back(static_cast<char>('0' + (r.is_zero() ? 0 : r.limbs_[0])));
    v = std::move(q);
  }
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

}  // namespace fd
