#pragma once
// Hex encoding helpers shared by tests, examples, and key/signature dumps.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace fd {

[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> data);
// Throws std::invalid_argument on odd length or non-hex characters.
[[nodiscard]] std::vector<std::uint8_t> from_hex(std::string_view hex);

}  // namespace fd
