#include "common/hex.h"

#include <stdexcept>

namespace fd {

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s;
  s.reserve(data.size() * 2);
  for (const std::uint8_t b : data) {
    s.push_back(kDigits[b >> 4]);
    s.push_back(kDigits[b & 0xF]);
  }
  return s;
}

std::vector<std::uint8_t> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument("from_hex: odd length");
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    throw std::invalid_argument("from_hex: bad digit");
  };
  std::vector<std::uint8_t> out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>((nibble(hex[2 * i]) << 4) | nibble(hex[2 * i + 1]));
  }
  return out;
}

}  // namespace fd
