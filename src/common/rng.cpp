#include "common/rng.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <numbers>

#include "common/shake256.h"

namespace fd {

std::uint8_t RandomSource::next_u8() {
  std::uint8_t b = 0;
  fill({&b, 1});
  return b;
}

std::uint16_t RandomSource::next_u16() {
  std::uint8_t b[2];
  fill(b);
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint64_t RandomSource::next_u64() {
  std::uint8_t b[8];
  fill(b);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

std::uint64_t RandomSource::uniform(std::uint64_t bound) {
  // Rejection sampling on the top of the range to remove modulo bias.
  const std::uint64_t limit = bound * ((~std::uint64_t{0}) / bound);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

double RandomSource::gaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  // Box-Muller on uniforms in (0,1].
  const double u1 =
      (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-52 * 0.5;  // (0,1]
  const double u2 = static_cast<double>(next_u64() >> 11) * 0x1.0p-53;  // [0,1)
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  spare_gaussian_ = radius * std::sin(angle);
  have_spare_gaussian_ = true;
  return radius * std::cos(angle);
}

namespace {

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c, std::uint32_t& d) {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

}  // namespace

void ChaCha20Prng::block(const std::uint32_t key[8], std::uint32_t counter,
                         const std::uint32_t nonce[3], std::uint8_t out[64]) {
  std::uint32_t s[16] = {0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,
                         key[0], key[1], key[2], key[3],
                         key[4], key[5], key[6], key[7],
                         counter, nonce[0], nonce[1], nonce[2]};
  std::uint32_t w[16];
  std::memcpy(w, s, sizeof w);
  for (int i = 0; i < 10; ++i) {
    quarter_round(w[0], w[4], w[8], w[12]);
    quarter_round(w[1], w[5], w[9], w[13]);
    quarter_round(w[2], w[6], w[10], w[14]);
    quarter_round(w[3], w[7], w[11], w[15]);
    quarter_round(w[0], w[5], w[10], w[15]);
    quarter_round(w[1], w[6], w[11], w[12]);
    quarter_round(w[2], w[7], w[8], w[13]);
    quarter_round(w[3], w[4], w[9], w[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = w[i] + s[i];
    out[4 * i + 0] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
}

ChaCha20Prng::ChaCha20Prng(std::string_view seed_material) {
  seed_from(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(seed_material.data()), seed_material.size()));
}

ChaCha20Prng::ChaCha20Prng(std::span<const std::uint8_t> seed_material) {
  seed_from(seed_material);
}

ChaCha20Prng::ChaCha20Prng(std::uint64_t seed) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(seed >> (8 * i));
  seed_from(b);
}

void ChaCha20Prng::seed_from(std::span<const std::uint8_t> material) {
  Shake256 sh;
  sh.inject(material);
  sh.flip();
  std::uint8_t raw[44];
  sh.extract(raw);
  for (int i = 0; i < 8; ++i) {
    key_[i] = static_cast<std::uint32_t>(raw[4 * i]) |
              (static_cast<std::uint32_t>(raw[4 * i + 1]) << 8) |
              (static_cast<std::uint32_t>(raw[4 * i + 2]) << 16) |
              (static_cast<std::uint32_t>(raw[4 * i + 3]) << 24);
  }
  for (int i = 0; i < 3; ++i) {
    nonce_[i] = static_cast<std::uint32_t>(raw[32 + 4 * i]) |
                (static_cast<std::uint32_t>(raw[32 + 4 * i + 1]) << 8) |
                (static_cast<std::uint32_t>(raw[32 + 4 * i + 2]) << 16) |
                (static_cast<std::uint32_t>(raw[32 + 4 * i + 3]) << 24);
  }
  counter_ = 0;
  buf_pos_ = sizeof(buf_);
}

void ChaCha20Prng::refill() {
  block(key_, counter_++, nonce_, buf_);
  buf_pos_ = 0;
}

void ChaCha20Prng::fill(std::span<std::uint8_t> out) {
  for (std::uint8_t& byte : out) {
    if (buf_pos_ == sizeof(buf_)) refill();
    byte = buf_[buf_pos_++];
  }
}

}  // namespace fd
