#pragma once
// Telemetry JSONL -> Chrome trace-event JSON (Perfetto-loadable).
//
// Input: one unified fleet telemetry stream -- the coordinator's JSONL
// file where every row is worker-tagged ("worker":"coord" for the
// coordinator's own events, "worker":N for forwarded worker events; a
// single-process run has no tags and maps to one process). Output: the
// "JSON Array Format" the Chrome tracing UI and ui.perfetto.dev load
// directly:
//
//   - every "span" event becomes a complete slice ("ph":"X") on the
//     emitting process/thread track, with its span/parent/trace IDs and
//     notes in args;
//   - every "profile" event becomes counter tracks ("ph":"C"):
//     rss_bytes, cpu_ms (user/sys stacked), read_bytes per process;
//   - fleet lifecycle events ("fleet.*", "pipeline.*") become instants
//     ("ph":"i");
//   - "thread.name" events and the process map become "M" metadata, so
//     tracks are labeled (coordinator / worker N / fd-pool-K);
//   - spans sharing a fleet task id (a shard that was reassigned after
//     a worker death) are chained with flow arrows (bind_id +
//     flow_out/flow_in).
//
// Timestamps: the stream's "ts_us" values are steady-clock
// (CLOCK_MONOTONIC) microseconds, a shared epoch for every process on
// the host; the exporter re-bases them to the earliest event so output
// starts at t=0 and re-exporting the same input is byte-identical.
//
// Always compiled (an FD_OBS=OFF fd-report must still export files
// produced by instrumented builds).

#include <cstddef>
#include <string>
#include <vector>

#include "obs/jsonl.h"

namespace fd::obs::trace {

struct ExportStats {
  std::size_t events_in = 0;        // parsed JSONL objects consumed
  std::size_t malformed_lines = 0;  // skipped by the stream reader
  std::size_t spans = 0;            // slices emitted
  std::size_t counter_samples = 0;  // "profile" events consumed
  std::size_t instants = 0;
  std::size_t flow_arrows = 0;  // reassignment chains drawn
  std::size_t thread_names = 0;
  std::size_t processes = 0;
  std::size_t orphan_spans = 0;  // non-root parent id absent from stream
};

// Pure function of `events` (byte-identical output for identical
// input); the exporter core, used directly by tests.
[[nodiscard]] std::string chrome_trace_json(const std::vector<jsonl::Object>& events,
                                            ExportStats* stats = nullptr);

// File front end: tolerant JSONL read (truncated tails and torn lines
// skipped, counted in stats) -> chrome_trace_json -> out_path. False on
// I/O failure with the reason in *err.
[[nodiscard]] bool export_chrome_trace(const std::string& jsonl_path, const std::string& out_path,
                                       std::string* err = nullptr, ExportStats* stats = nullptr);

}  // namespace fd::obs::trace
