#include "obs/sink.h"

#include "obs/jsonl.h"

#if FD_OBS_ENABLED
#include <atomic>
#endif

namespace fd::obs {

JsonLinesSink::JsonLinesSink(const std::string& path, bool append) {
  file_ = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (file_ == nullptr) error_ = "cannot open '" + path + "' for writing";
}

JsonLinesSink::~JsonLinesSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonLinesSink::record(const Event& ev) {
  const std::string line = to_jsonl(ev);
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
}

void JsonLinesSink::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fflush(file_);
}

void ConsoleSink::record(const Event& ev) {
  std::string line = "[" + ev.name + "]";
  for (const auto& [key, v] : ev.fields) {
    line += ' ';
    line += key;
    line += '=';
    switch (v.kind) {
      case FieldValue::Kind::kUint: line += std::to_string(v.u); break;
      case FieldValue::Kind::kInt: line += std::to_string(v.i); break;
      case FieldValue::Kind::kDouble: jsonl::append_number(line, v.d); break;
      case FieldValue::Kind::kBool: line += v.b ? "true" : "false"; break;
      case FieldValue::Kind::kString: line += v.s; break;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(out_, "%s\n", line.c_str());
}

void ConsoleSink::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fflush(out_);
}

void CollectingSink::record(const Event& ev) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(ev);
}

std::vector<Event> CollectingSink::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void CollectingSink::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

#if FD_OBS_ENABLED

namespace {
std::atomic<TelemetrySink*> g_sink{nullptr};
}  // namespace

TelemetrySink* sink() { return g_sink.load(std::memory_order_acquire); }
void set_sink(TelemetrySink* s) { g_sink.store(s, std::memory_order_release); }

#endif  // FD_OBS_ENABLED

}  // namespace fd::obs
