#include "obs/event.h"

#include "obs/jsonl.h"

namespace fd::obs {

double FieldValue::as_double() const {
  switch (kind) {
    case Kind::kUint: return static_cast<double>(u);
    case Kind::kInt: return static_cast<double>(i);
    case Kind::kDouble: return d;
    case Kind::kBool: return b ? 1.0 : 0.0;
    case Kind::kString: return 0.0;
  }
  return 0.0;
}

const FieldValue* Event::find(std::string_view key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string to_jsonl(const Event& ev) {
  std::string out;
  out.reserve(64 + 24 * ev.fields.size());
  out += "{\"ev\":\"";
  out += jsonl::escape(ev.name);
  out += '"';
  for (const auto& [key, v] : ev.fields) {
    out += ",\"";
    out += jsonl::escape(key);
    out += "\":";
    switch (v.kind) {
      case FieldValue::Kind::kUint: out += std::to_string(v.u); break;
      case FieldValue::Kind::kInt: out += std::to_string(v.i); break;
      case FieldValue::Kind::kDouble: jsonl::append_number(out, v.d); break;
      case FieldValue::Kind::kBool: out += v.b ? "true" : "false"; break;
      case FieldValue::Kind::kString:
        out += '"';
        out += jsonl::escape(v.s);
        out += '"';
        break;
    }
  }
  out += '}';
  return out;
}

}  // namespace fd::obs
