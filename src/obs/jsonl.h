#pragma once
// Minimal flat-JSON reader/writer helpers for the telemetry pipeline.
//
// The sinks emit one flat JSON object per line (strings, numbers,
// booleans, null, and arrays of those); fd-report and the tests parse
// those lines back. This is deliberately not a general JSON library:
// nested objects are rejected, which keeps the parser small and the
// emitted format honest.
//
// Always compiled, independent of FD_OBS: offline tools must read
// telemetry produced by instrumented builds even when they themselves
// were built with the layer disabled.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fd::obs::jsonl {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Value> items;  // kArray only
};

// Insertion-ordered flat object, mirroring one emitted JSONL line.
struct Object {
  std::vector<std::pair<std::string, Value>> fields;

  [[nodiscard]] const Value* find(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const { return find(key) != nullptr; }
  // Typed lookups with defaults (missing key or wrong kind -> default).
  [[nodiscard]] double num(std::string_view key, double dflt = 0.0) const;
  [[nodiscard]] std::string_view str(std::string_view key, std::string_view dflt = "") const;
};

// Parses one `{...}` line. Returns false (with a reason in *err, if
// given) on malformed input or nested objects.
[[nodiscard]] bool parse_object(std::string_view line, Object& out, std::string* err = nullptr);

// JSON string escaping (quotes, backslash, control characters).
[[nodiscard]] std::string escape(std::string_view s);

// Canonical number rendering: integral values within 2^53 print
// without a decimal point, everything else as shortest round-trip-ish
// "%.17g". Keeps identical runs byte-identical.
void append_number(std::string& out, double v);

}  // namespace fd::obs::jsonl
