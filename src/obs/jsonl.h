#pragma once
// Minimal flat-JSON reader/writer helpers for the telemetry pipeline.
//
// The sinks emit one flat JSON object per line (strings, numbers,
// booleans, null, and arrays of those); fd-report and the tests parse
// those lines back. This is deliberately not a general JSON library:
// nested objects are rejected, which keeps the parser small and the
// emitted format honest.
//
// Always compiled, independent of FD_OBS: offline tools must read
// telemetry produced by instrumented builds even when they themselves
// were built with the layer disabled.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fd::obs::jsonl {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Value> items;  // kArray only
};

// Insertion-ordered flat object, mirroring one emitted JSONL line.
struct Object {
  std::vector<std::pair<std::string, Value>> fields;

  [[nodiscard]] const Value* find(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const { return find(key) != nullptr; }
  // Typed lookups with defaults (missing key or wrong kind -> default).
  [[nodiscard]] double num(std::string_view key, double dflt = 0.0) const;
  [[nodiscard]] std::string_view str(std::string_view key, std::string_view dflt = "") const;
};

// Parses one `{...}` line. Returns false (with a reason in *err, if
// given) on malformed input or nested objects.
[[nodiscard]] bool parse_object(std::string_view line, Object& out, std::string* err = nullptr);

// JSON string escaping (quotes, backslash, control characters).
[[nodiscard]] std::string escape(std::string_view s);

// Canonical number rendering: integral values within 2^53 print
// without a decimal point, everything else as shortest round-trip-ish
// "%.17g". Keeps identical runs byte-identical.
void append_number(std::string& out, double v);

// Incremental tolerant reader over a *live* JSONL stream -- the fleet
// telemetry file while workers are still appending to it, or the tail
// a killed worker left behind. Differences from line-at-a-time
// parse_object:
//   - bytes arrive in arbitrary fragments (feed() may end mid-record);
//     an incomplete final line is buffered, not parsed, until its '\n'
//     arrives or finish() declares the stream over;
//   - malformed complete lines (interleaved writes from a non-atomic
//     multi-writer append, editor droppings, a mid-record cut that got
//     a newline after it) are counted and skipped, never fatal;
//   - blank lines are ignored.
// finish() flushes the buffered tail: parseable -> delivered like any
// line; unparseable non-empty -> recorded as the truncated tail (the
// partial write of a SIGKILLed worker), distinct from the malformed
// count so a report can say "stream cut mid-record" explicitly.
class StreamReader {
 public:
  // Appends raw bytes (any framing: whole files, pipe reads, single
  // characters) to the stream.
  void feed(std::string_view bytes);

  // Pops the next complete, well-formed object. Returns false when no
  // complete line is pending (feed more or finish()).
  [[nodiscard]] bool next(Object& out);

  // Ends the stream: the buffered unterminated tail, if any, is
  // promoted to a final line (readable via next()) or recorded as the
  // truncated tail. Idempotent; feed() after finish() starts fresh
  // data but keeps the counters.
  void finish();

  [[nodiscard]] std::size_t lines_delivered() const { return delivered_; }
  [[nodiscard]] std::size_t malformed_lines() const { return malformed_; }
  [[nodiscard]] bool had_truncated_tail() const { return truncated_; }
  [[nodiscard]] const std::string& truncated_tail() const { return tail_; }

 private:
  void take_line(std::string_view line);

  std::string buf_;               // unterminated tail of the last feed
  std::vector<Object> ready_;     // parsed, not yet popped (FIFO)
  std::size_t next_ = 0;          // pop index into ready_
  std::size_t delivered_ = 0;
  std::size_t malformed_ = 0;
  bool truncated_ = false;
  std::string tail_;
  bool finished_ = false;
};

}  // namespace fd::obs::jsonl
