#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#if defined(__linux__) || defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define FD_OBS_HAVE_UNISTD 1
#else
#define FD_OBS_HAVE_UNISTD 0
#endif

namespace fd::obs {

namespace {

std::string slurp_small(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return {};
  char buf[4096];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  return std::string(buf, n);
}

}  // namespace

ResourceUsage sample_resources() {
  ResourceUsage u;
#if FD_OBS_HAVE_UNISTD
  // RSS: /proc/self/statm field 2 (resident pages).
  if (const std::string statm = slurp_small("/proc/self/statm"); !statm.empty()) {
    unsigned long size_pages = 0, resident_pages = 0;
    if (std::sscanf(statm.c_str(), "%lu %lu", &size_pages, &resident_pages) == 2) {
      const long page = sysconf(_SC_PAGESIZE);
      u.rss_bytes = static_cast<double>(resident_pages) * static_cast<double>(page > 0 ? page : 4096);
      u.ok = true;
    }
  }
  // CPU: /proc/self/stat utime/stime -- the 12th/13th tokens after the
  // last ')' (the comm field may itself contain spaces and parens, so
  // scan from the last close-paren, not the front).
  if (const std::string stat = slurp_small("/proc/self/stat"); !stat.empty()) {
    const std::size_t paren = stat.rfind(')');
    if (paren != std::string::npos) {
      const char* p = stat.c_str() + paren + 1;
      unsigned long utime = 0, stime = 0;
      int token = 0;
      while (*p != '\0' && token < 14) {
        while (*p == ' ') ++p;
        if (*p == '\0') break;
        ++token;  // 1-based: state=1 ... utime=12, stime=13
        if (token == 12) utime = std::strtoul(p, nullptr, 10);
        if (token == 13) {
          stime = std::strtoul(p, nullptr, 10);
          break;
        }
        while (*p != '\0' && *p != ' ') ++p;
      }
      const long hz = sysconf(_SC_CLK_TCK);
      const double ms_per_tick = 1000.0 / static_cast<double>(hz > 0 ? hz : 100);
      u.cpu_user_ms = static_cast<double>(utime) * ms_per_tick;
      u.cpu_sys_ms = static_cast<double>(stime) * ms_per_tick;
      u.ok = true;
    }
  }
  // I/O: /proc/self/io "read_bytes:" line (absent in locked-down
  // containers; leave 0 then).
  if (const std::string io = slurp_small("/proc/self/io"); !io.empty()) {
    if (const std::size_t pos = io.find("read_bytes:"); pos != std::string::npos) {
      u.read_bytes = std::strtod(io.c_str() + pos + std::strlen("read_bytes:"), nullptr);
    }
  }
#endif  // FD_OBS_HAVE_UNISTD
  return u;
}

}  // namespace fd::obs

#if FD_OBS_ENABLED

#include <atomic>
#include <chrono>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "obs/metrics.h"
#include "obs/sink.h"

namespace fd::obs {

namespace {

std::uint32_t assign_tid() {
  static std::atomic<std::uint32_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

double steady_now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::uint32_t current_tid() {
  thread_local std::uint32_t tid = assign_tid();
  return tid;
}

void set_thread_name(std::string_view name) {
#if defined(__linux__)
  char buf[16];  // pthread limit: 15 chars + NUL
  const std::size_t n = std::min(name.size(), sizeof(buf) - 1);
  std::memcpy(buf, name.data(), n);
  buf[n] = '\0';
  pthread_setname_np(pthread_self(), buf);
#endif
  event("thread.name").with("tid", current_tid()).with("name", name).emit();
}

ResourceSampler::ResourceSampler(std::size_t interval_ms)
    : interval_ms_(interval_ms == 0 ? 1 : interval_ms), thread_([this] { run(); }) {}

ResourceSampler::~ResourceSampler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void ResourceSampler::run() {
  set_thread_name("fd-profile");
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    lock.unlock();
    emit_sample();
    lock.lock();
    if (stop_) break;
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_), [this] { return stop_; });
    if (stop_) {
      // One final sample so short-lived processes still land at least
      // two points on every counter track.
      lock.unlock();
      emit_sample();
      lock.lock();
      break;
    }
  }
}

void ResourceSampler::emit_sample() {
  const ResourceUsage u = sample_resources();
  if (!u.ok) return;
  auto& reg = MetricsRegistry::global();
  reg.gauge("obs.profile.rss_bytes").set(u.rss_bytes);
  reg.gauge("obs.profile.cpu_user_ms").set(u.cpu_user_ms);
  reg.gauge("obs.profile.cpu_sys_ms").set(u.cpu_sys_ms);
  reg.gauge("obs.profile.read_bytes").set(u.read_bytes);
  event("profile")
      .with("ts_us", steady_now_us())
      .with("rss_bytes", u.rss_bytes)
      .with("cpu_user_ms", u.cpu_user_ms)
      .with("cpu_sys_ms", u.cpu_sys_ms)
      .with("read_bytes", u.read_bytes)
      .emit();
}

}  // namespace fd::obs

#endif  // FD_OBS_ENABLED
