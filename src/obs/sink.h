#pragma once
// Telemetry sinks and the event-recording front end.
//
// A TelemetrySink consumes finished Events. Instrumented code never
// talks to a sink directly; it goes through the free function
// `obs::event("name").with(...).emit()`, which is a no-op unless a
// process-global sink is installed (RAII, mirroring the
// fpr::ScopedLeakageSink idiom of the capture rig) -- and compiles away
// entirely when FD_OBS_ENABLED is 0.
//
// Determinism convention: fields whose keys end in "_us", "_ms", or
// "_per_s" carry wall-clock-derived values and are the only
// nondeterministic content an instrumented fixed-seed run emits. Tests
// comparing telemetry streams filter exactly those keys.

#include <cstdio>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "obs/event.h"

#include <mutex>

namespace fd::obs {

class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void record(const Event& ev) = 0;
  virtual void flush() {}
};

// One JSON object per line. Thread-safe; lines are written atomically.
class JsonLinesSink final : public TelemetrySink {
 public:
  explicit JsonLinesSink(const std::string& path, bool append = false);
  ~JsonLinesSink() override;
  JsonLinesSink(const JsonLinesSink&) = delete;
  JsonLinesSink& operator=(const JsonLinesSink&) = delete;

  [[nodiscard]] bool ok() const { return file_ != nullptr; }
  [[nodiscard]] const std::string& error() const { return error_; }
  void record(const Event& ev) override;
  void flush() override;

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string error_;
};

// Human-readable one-liners ("[name] key=value ...") for watching a
// campaign converge live; defaults to stderr.
class ConsoleSink final : public TelemetrySink {
 public:
  explicit ConsoleSink(std::FILE* out = stderr) : out_(out) {}
  void record(const Event& ev) override;
  void flush() override;

 private:
  std::mutex mu_;
  std::FILE* out_;
};

// In-memory capture for tests and for fd-report-style post-processing.
// record/clear/snapshot are safe to call concurrently; events() returns
// an unlocked reference and is only valid once every emitting thread
// has been joined (the usual single-threaded-test shape).
class CollectingSink final : public TelemetrySink {
 public:
  void record(const Event& ev) override;
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::vector<Event> snapshot() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

#if FD_OBS_ENABLED

// Process-global sink hook. Null (the default) disables all recording.
[[nodiscard]] TelemetrySink* sink();
void set_sink(TelemetrySink* s);

// RAII installation; restores the previous sink on scope exit.
class ScopedTelemetrySink {
 public:
  explicit ScopedTelemetrySink(TelemetrySink* s) : prev_(sink()) { set_sink(s); }
  ~ScopedTelemetrySink() { set_sink(prev_); }
  ScopedTelemetrySink(const ScopedTelemetrySink&) = delete;
  ScopedTelemetrySink& operator=(const ScopedTelemetrySink&) = delete;

 private:
  TelemetrySink* prev_;
};

// Fluent event construction. All work is skipped when no sink is
// installed, so `obs::event(...).with(...).emit()` in a hot path costs
// one pointer load in the common (uninstrumented) case.
class EventBuilder {
 public:
  explicit EventBuilder(std::string_view name) : active_(sink() != nullptr) {
    if (active_) ev_.name = name;
  }
  EventBuilder& with(std::string_view key, double v) {
    if (active_) ev_.add(key, FieldValue::of(v));
    return *this;
  }
  EventBuilder& with(std::string_view key, bool v) {
    if (active_) ev_.add(key, FieldValue::of(v));
    return *this;
  }
  EventBuilder& with(std::string_view key, std::string_view v) {
    if (active_) ev_.add(key, FieldValue::of(v));
    return *this;
  }
  EventBuilder& with(std::string_view key, const char* v) {
    return with(key, std::string_view(v));
  }
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  EventBuilder& with(std::string_view key, T v) {
    if (active_) {
      if constexpr (std::is_signed_v<T>) {
        ev_.add(key, FieldValue::of(static_cast<std::int64_t>(v)));
      } else {
        ev_.add(key, FieldValue::of(static_cast<std::uint64_t>(v)));
      }
    }
    return *this;
  }
  void emit() {
    // Single load: the sink may be swapped between a check and a call,
    // so grab it once and use that pointer (the RAII installer keeps
    // sinks alive past their uninstall for exactly this reason).
    if (!active_) return;
    if (TelemetrySink* s = sink(); s != nullptr) s->record(ev_);
  }

 private:
  bool active_;
  Event ev_;
};

#else  // FD_OBS_ENABLED == 0

inline constexpr TelemetrySink* kNoSink = nullptr;
[[nodiscard]] inline TelemetrySink* sink() { return kNoSink; }
inline void set_sink(TelemetrySink*) {}

class ScopedTelemetrySink {
 public:
  explicit ScopedTelemetrySink(TelemetrySink*) {}
};

class EventBuilder {
 public:
  explicit EventBuilder(std::string_view) {}
  template <typename T>
  EventBuilder& with(std::string_view, const T&) {
    return *this;
  }
  void emit() {}
};

#endif  // FD_OBS_ENABLED

[[nodiscard]] inline EventBuilder event(std::string_view name) { return EventBuilder(name); }

}  // namespace fd::obs
