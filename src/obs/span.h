#pragma once
// RAII timing scopes with propagated trace context.
//
// Span: a named, nestable scope tracked on a thread-local stack. Every
// span carries a SpanContext (trace_id / span_id / parent_span_id)
// whose IDs are SplitMix64-derived from the trace root and a per-parent
// child sequence number -- never from wall clock or thread identity --
// so a fixed-seed run produces the same tree of IDs every time
// (replay-stable; see DESIGN.md section 13). On destruction a span
// records its wall time into the global registry histogram
// "span.<name>.us" and, if a telemetry sink is installed, emits a
// "span" event carrying the name, context (as 16-hex-char strings: the
// JSONL parser stores numbers as doubles and would mangle raw u64 IDs),
// thread id, start timestamp, and duration. Stack unwinding (early
// return, exception) closes spans in the right order for free -- that
// is the point of the RAII shape.
//
// Parentage rules, in order:
//   1. innermost span on the calling thread's stack;
//   2. otherwise the process-global ambient context -- the trace root
//      installed by set_trace_root(), or a remote parent installed by
//      ScopedSpanParent (how fleet workers graft their task spans under
//      the coordinator's JobGraph stage spans).
// A root-adopting span (Span::Root::kAdopt) BECOMES the ambient root
// context instead of deriving a child ID; its stack children draw from
// the same process-global sequence as ambient-parented spans on other
// threads, so sibling IDs never collide.
//
// ScopedTimer: the span's little sibling -- times a scope into a
// caller-chosen histogram with no stack, no event, no name lookup.
//
// The recording classes compile to empty structs when FD_OBS_ENABLED
// is 0; SpanContext and the hex helpers are always compiled (the trace
// exporter and fd-report parse them in either mode).

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"

#if FD_OBS_ENABLED
#include <chrono>
#include <utility>
#include <vector>
#endif

namespace fd::obs {

// Propagated identity of one span. trace_id groups a whole campaign;
// span_id is unique within the trace; parent_span_id is 0 only for the
// root. Always compiled.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
};

// 16 lowercase hex chars, zero-padded -- the JSONL wire form of an ID.
[[nodiscard]] std::string span_id_hex(std::uint64_t id);
// Inverse of span_id_hex; returns 0 on anything but exactly 16 hex
// chars (0 doubles as "no parent", which malformed input degrades to).
[[nodiscard]] std::uint64_t parse_span_id_hex(std::string_view s);

#if FD_OBS_ENABLED

// Installs the process-global trace root: trace_id as given, root
// span_id derived from it, child sequence reset. Call once per
// campaign with an ID derived from the experiment/session hash.
void set_trace_root(std::uint64_t trace_id);
// The current ambient context (root or ScopedSpanParent override).
[[nodiscard]] SpanContext ambient_span_context();

class Span {
 public:
  enum class Root { kAdopt };

  explicit Span(std::string_view name);
  // Adopts the ambient context instead of deriving a child ID: this
  // span IS the trace root (or, under ScopedSpanParent, the remote
  // parent's local stand-in sharing its identity).
  Span(std::string_view name, Root);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const SpanContext& context() const { return ctx_; }
  [[nodiscard]] double elapsed_us() const;

  // Extra fields appended to this span's "span" event (e.g. the fleet
  // task id, which the exporter uses to draw reassignment flow arrows).
  void note(std::string_view key, std::uint64_t v);
  void note(std::string_view key, std::string_view v);

  // Nesting depth of the calling thread's active span stack.
  [[nodiscard]] static std::size_t depth();
  // Innermost active span's name, or "" when none.
  [[nodiscard]] static std::string_view current_name();
  // Context a child span created right now would be parented under:
  // innermost stack span, else the ambient context.
  [[nodiscard]] static SpanContext current_context();

 private:
  std::uint64_t next_child_seq();

  std::string name_;
  SpanContext ctx_;
  std::uint64_t children_ = 0;  // child seq; only touched via the
                                // owning thread's stack top
  bool adopted_ = false;
  std::vector<std::pair<std::string, std::string>> notes_str_;
  std::vector<std::pair<std::string, std::uint64_t>> notes_u64_;
  std::chrono::steady_clock::time_point start_;
};

// Overrides the ambient context for the duration of the scope (process
// global: covers pool threads with empty span stacks too). The fleet
// worker wraps each task in one of these built from the TaskSpec's
// propagated parent, so its spans join the coordinator's tree.
//
// first_child_seq seeds the ambient child sequence: sibling tasks of
// the same remote parent run in different processes, so each must claim
// a disjoint ordinal range (the worker passes task_id << 32) or their
// derived span IDs would collide.
class ScopedSpanParent {
 public:
  explicit ScopedSpanParent(const SpanContext& ctx, std::uint64_t first_child_seq = 0);
  ~ScopedSpanParent();
  ScopedSpanParent(const ScopedSpanParent&) = delete;
  ScopedSpanParent& operator=(const ScopedSpanParent&) = delete;

 private:
  SpanContext prev_;
  std::uint64_t prev_children_;
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist) : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() { hist_.record(elapsed_us()); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  [[nodiscard]] double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  Histogram& hist_;
  std::chrono::steady_clock::time_point start_;
};

#else  // FD_OBS_ENABLED == 0

inline void set_trace_root(std::uint64_t) {}
[[nodiscard]] inline SpanContext ambient_span_context() { return {}; }

class Span {
 public:
  enum class Root { kAdopt };
  explicit Span(std::string_view) {}
  Span(std::string_view, Root) {}
  [[nodiscard]] const std::string& name() const {
    static const std::string empty;
    return empty;
  }
  [[nodiscard]] const SpanContext& context() const {
    static const SpanContext empty;
    return empty;
  }
  [[nodiscard]] double elapsed_us() const { return 0.0; }
  void note(std::string_view, std::uint64_t) {}
  void note(std::string_view, std::string_view) {}
  [[nodiscard]] static std::size_t depth() { return 0; }
  [[nodiscard]] static std::string_view current_name() { return {}; }
  [[nodiscard]] static SpanContext current_context() { return {}; }
};

class ScopedSpanParent {
 public:
  explicit ScopedSpanParent(const SpanContext&, std::uint64_t = 0) {}
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram&) {}
  [[nodiscard]] double elapsed_us() const { return 0.0; }
};

#endif  // FD_OBS_ENABLED

}  // namespace fd::obs
