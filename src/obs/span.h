#pragma once
// RAII timing scopes.
//
// Span: a named, nestable scope tracked on a thread-local stack. On
// destruction it records its wall time into the global registry
// histogram "span.<name>.us" and, if a telemetry sink is installed,
// emits a "span" event carrying the name, remaining nesting depth, and
// duration. Stack unwinding (early return, exception) closes spans in
// the right order for free -- that is the point of the RAII shape.
//
// ScopedTimer: the span's little sibling -- times a scope into a
// caller-chosen histogram with no stack, no event, no name lookup.
//
// Both compile to empty structs when FD_OBS_ENABLED is 0.

#include <string>
#include <string_view>

#include "obs/metrics.h"

#if FD_OBS_ENABLED
#include <chrono>
#endif

namespace fd::obs {

#if FD_OBS_ENABLED

class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double elapsed_us() const;

  // Nesting depth of the calling thread's active span stack.
  [[nodiscard]] static std::size_t depth();
  // Innermost active span's name, or "" when none.
  [[nodiscard]] static std::string_view current_name();

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist) : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() { hist_.record(elapsed_us()); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  [[nodiscard]] double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  Histogram& hist_;
  std::chrono::steady_clock::time_point start_;
};

#else  // FD_OBS_ENABLED == 0

class Span {
 public:
  explicit Span(std::string_view) {}
  [[nodiscard]] const std::string& name() const {
    static const std::string empty;
    return empty;
  }
  [[nodiscard]] double elapsed_us() const { return 0.0; }
  [[nodiscard]] static std::size_t depth() { return 0; }
  [[nodiscard]] static std::string_view current_name() { return {}; }
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram&) {}
  [[nodiscard]] double elapsed_us() const { return 0.0; }
};

#endif  // FD_OBS_ENABLED

}  // namespace fd::obs
