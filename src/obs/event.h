#pragma once
// Telemetry event model: a named record with a flat, ordered list of
// typed fields. Events are the unit every TelemetrySink consumes and
// the unit fd-report parses back out of a JSONL file.
//
// This header is compiled in both FD_OBS modes: the Event type itself
// is plain data used by offline tooling (sinks, fd-report, tests); only
// the *recording* APIs (sink.h, metrics.h, span.h) become no-ops when
// the layer is disabled.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fd::obs {

struct FieldValue {
  enum class Kind { kUint, kInt, kDouble, kBool, kString };
  Kind kind = Kind::kUint;
  std::uint64_t u = 0;
  std::int64_t i = 0;
  double d = 0.0;
  bool b = false;
  std::string s;

  [[nodiscard]] static FieldValue of(std::uint64_t v) {
    FieldValue f;
    f.kind = Kind::kUint;
    f.u = v;
    return f;
  }
  [[nodiscard]] static FieldValue of(std::int64_t v) {
    FieldValue f;
    f.kind = Kind::kInt;
    f.i = v;
    return f;
  }
  [[nodiscard]] static FieldValue of(double v) {
    FieldValue f;
    f.kind = Kind::kDouble;
    f.d = v;
    return f;
  }
  [[nodiscard]] static FieldValue of(bool v) {
    FieldValue f;
    f.kind = Kind::kBool;
    f.b = v;
    return f;
  }
  [[nodiscard]] static FieldValue of(std::string_view v) {
    FieldValue f;
    f.kind = Kind::kString;
    f.s = v;
    return f;
  }

  // Numeric view regardless of kind (strings read as 0).
  [[nodiscard]] double as_double() const;
};

struct Event {
  std::string name;
  std::vector<std::pair<std::string, FieldValue>> fields;

  void add(std::string_view key, FieldValue v) { fields.emplace_back(key, std::move(v)); }
  [[nodiscard]] const FieldValue* find(std::string_view key) const;
};

// One line of JSON, no trailing newline. Field order is insertion
// order; the event name is the leading "ev" key, so lines are stable
// and diffable across identical runs.
[[nodiscard]] std::string to_jsonl(const Event& ev);

}  // namespace fd::obs
