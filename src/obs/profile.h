#pragma once
// Per-process resource profiling and thread identity metadata.
//
// current_tid(): a small stable per-thread id (1-based, assigned in
// first-use order), used instead of OS thread ids so span events stay
// comparable across runs of the same single-threaded test.
//
// set_thread_name(): names the calling thread for the trace timeline --
// sets the OS-level name (pthread) and, if a telemetry sink is
// installed, emits a "thread.name" event {tid, name} that the trace
// exporter turns into Perfetto thread_name metadata.
//
// sample_resources(): one-shot snapshot of RSS / user+sys CPU / bytes
// read from /proc/self (always compiled; ok=false where /proc is
// absent, e.g. non-Linux).
//
// ResourceSampler: background thread emitting a "profile" event (plus
// obs gauges) every interval_ms. Profile events carry measured machine
// state and are nondeterministic BY NAME -- determinism comparisons
// drop whole "profile" events, not just the _us/_ms keys (see the
// sink.h convention note). Compiles to an empty struct under
// FD_OBS=OFF.

#include <cstdint>
#include <string_view>

#if FD_OBS_ENABLED
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#endif

namespace fd::obs {

struct ResourceUsage {
  bool ok = false;
  double rss_bytes = 0.0;
  double cpu_user_ms = 0.0;
  double cpu_sys_ms = 0.0;
  double read_bytes = 0.0;
};

// Always compiled; each field best-effort (a missing /proc/self/io --
// e.g. locked-down containers -- zeroes read_bytes but keeps ok=true
// if statm parsed).
[[nodiscard]] ResourceUsage sample_resources();

#if FD_OBS_ENABLED

[[nodiscard]] std::uint32_t current_tid();
void set_thread_name(std::string_view name);

class ResourceSampler {
 public:
  explicit ResourceSampler(std::size_t interval_ms = 25);
  ~ResourceSampler();
  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

 private:
  void run();
  static void emit_sample();

  std::size_t interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

#else  // FD_OBS_ENABLED == 0

[[nodiscard]] inline std::uint32_t current_tid() { return 0; }
inline void set_thread_name(std::string_view) {}

class ResourceSampler {
 public:
  explicit ResourceSampler(unsigned long = 25) {}
};

#endif  // FD_OBS_ENABLED

}  // namespace fd::obs
