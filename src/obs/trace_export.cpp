#include "obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

namespace fd::obs::trace {

namespace {

constexpr std::string_view kZeroId = "0000000000000000";

// Canonical process key of one telemetry row: "coord" (coordinator
// tag), "w<N>" (forwarded worker event), or "main" (untagged
// single-process stream).
std::string process_key(const jsonl::Object& obj) {
  const jsonl::Value* w = obj.find("worker");
  if (w == nullptr) return "main";
  if (w->kind == jsonl::Value::Kind::kString) return w->str;
  if (w->kind == jsonl::Value::Kind::kNumber) {
    return "w" + std::to_string(static_cast<long long>(w->num));
  }
  return "main";
}

std::string process_display_name(const std::string& key) {
  if (key == "coord") return "coordinator";
  if (key == "main") return "fd-attack";
  if (key.size() > 1 && key[0] == 'w') return "worker " + key.substr(1);
  return key;
}

// Stable pid order: coordinator first, then the single-process track,
// then workers by number, then anything else lexicographically.
int process_rank(const std::string& key) {
  if (key == "coord") return 0;
  if (key == "main") return 1;
  if (key.size() > 1 && key[0] == 'w') return 2;
  return 3;
}

struct ProcessTable {
  std::map<std::string, int> pid;  // key -> 1-based pid
  std::vector<std::string> ordered_keys;

  void assign() {
    std::sort(ordered_keys.begin(), ordered_keys.end(),
              [](const std::string& a, const std::string& b) {
                const int ra = process_rank(a), rb = process_rank(b);
                if (ra != rb) return ra < rb;
                if (ra == 2) {  // numeric worker order, not lexicographic
                  return std::stol(a.substr(1)) < std::stol(b.substr(1));
                }
                return a < b;
              });
    int next = 1;
    for (const std::string& k : ordered_keys) pid[k] = next++;
  }
};

void append_kv_ts(std::string& out, double rel_us) {
  out += "\"ts\":";
  jsonl::append_number(out, rel_us);
}

// Renders the leading common fields of one trace event.
void begin_event(std::string& out, std::string_view name, char ph, double rel_us, int pid,
                 long tid) {
  out += "{\"name\":\"";
  out += jsonl::escape(name);
  out += "\",\"ph\":\"";
  out += ph;
  out += "\",";
  append_kv_ts(out, rel_us);
  out += ",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
}

void append_value(std::string& out, const jsonl::Value& v) {
  switch (v.kind) {
    case jsonl::Value::Kind::kNull:
      out += "null";
      break;
    case jsonl::Value::Kind::kBool:
      out += v.b ? "true" : "false";
      break;
    case jsonl::Value::Kind::kNumber:
      jsonl::append_number(out, v.num);
      break;
    case jsonl::Value::Kind::kString:
      out += '"';
      out += jsonl::escape(v.str);
      out += '"';
      break;
    case jsonl::Value::Kind::kArray:
      out += '[';
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        if (i > 0) out += ',';
        append_value(out, v.items[i]);
      }
      out += ']';
      break;
  }
}

bool is_instant_event(std::string_view ev) {
  return ev.substr(0, 6) == "fleet." || ev.substr(0, 9) == "pipeline.";
}

}  // namespace

std::string chrome_trace_json(const std::vector<jsonl::Object>& events, ExportStats* stats) {
  ExportStats local;
  ExportStats& st = stats != nullptr ? *stats : local;
  st = ExportStats{};
  st.events_in = events.size();

  // ---- pass 1: processes, time base, span-id set, task groups,
  // thread names ------------------------------------------------------
  ProcessTable procs;
  {
    std::set<std::string> keys;
    for (const auto& obj : events) keys.insert(process_key(obj));
    procs.ordered_keys.assign(keys.begin(), keys.end());
    procs.assign();
  }
  st.processes = procs.pid.size();

  double ts0 = 0.0;
  bool have_ts = false;
  std::unordered_set<std::string> span_ids;
  // task id note -> indices of "fleet.task.*" span events, input order.
  std::map<std::string, std::vector<std::size_t>> task_groups;
  // (pid, tid) -> last name wins.
  std::map<std::pair<int, long>, std::string> thread_names;

  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& obj = events[i];
    const std::string_view ev = obj.str("ev");
    const jsonl::Value* ts = obj.find("ts_us");
    if (ts != nullptr && ts->kind == jsonl::Value::Kind::kNumber) {
      if (!have_ts || ts->num < ts0) ts0 = ts->num;
      have_ts = true;
    }
    if (ev == "span") {
      const std::string_view id = obj.str("span");
      if (id.size() == 16) span_ids.insert(std::string(id));
      const jsonl::Value* task = obj.find("task");
      if (task != nullptr && task->kind == jsonl::Value::Kind::kNumber &&
          obj.str("name").substr(0, 11) == "fleet.task.") {
        std::string key;
        jsonl::append_number(key, task->num);
        task_groups[key].push_back(i);
      }
    } else if (ev == "thread.name") {
      const int pid = procs.pid[process_key(obj)];
      const long tid = static_cast<long>(obj.num("tid", 0.0));
      thread_names[{pid, tid}] = std::string(obj.str("name"));
    }
  }

  // Flow roles: span event index -> (bind key, out?, in?). A task that
  // ran k times (reassignments) chains attempt j -> j+1.
  struct FlowRole {
    std::string bind;
    bool out = false;
    bool in = false;
  };
  std::unordered_map<std::size_t, FlowRole> flows;
  for (auto& [task, idxs] : task_groups) {
    if (idxs.size() < 2) continue;
    std::stable_sort(idxs.begin(), idxs.end(), [&](std::size_t a, std::size_t b) {
      return events[a].num("ts_us", 0.0) < events[b].num("ts_us", 0.0);
    });
    for (std::size_t j = 0; j < idxs.size(); ++j) {
      FlowRole& role = flows[idxs[j]];
      role.bind = task;
      role.out = j + 1 < idxs.size();
      role.in = j > 0;
      if (role.out) ++st.flow_arrows;
    }
  }

  // ---- pass 2: emit -------------------------------------------------
  std::vector<std::string> out_events;
  out_events.reserve(events.size() + 2 * st.processes);

  // Metadata first: process names/sort order, then thread names.
  for (const std::string& key : procs.ordered_keys) {
    const int pid = procs.pid[key];
    std::string m = "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
                    ",\"args\":{\"name\":\"" + jsonl::escape(process_display_name(key)) + "\"}}";
    out_events.push_back(std::move(m));
    m = "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
        ",\"args\":{\"sort_index\":" + std::to_string(pid) + "}}";
    out_events.push_back(std::move(m));
  }
  for (const auto& [key, name] : thread_names) {
    std::string m = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" + std::to_string(key.first) +
                    ",\"tid\":" + std::to_string(key.second) + ",\"args\":{\"name\":\"" +
                    jsonl::escape(name) + "\"}}";
    out_events.push_back(std::move(m));
    ++st.thread_names;
  }

  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& obj = events[i];
    const std::string_view ev = obj.str("ev");
    const jsonl::Value* ts = obj.find("ts_us");
    if (ts == nullptr || ts->kind != jsonl::Value::Kind::kNumber) continue;
    const double rel = ts->num - ts0;
    const int pid = procs.pid[process_key(obj)];

    if (ev == "span") {
      const jsonl::Value* dur = obj.find("wall_us");
      if (dur == nullptr || dur->kind != jsonl::Value::Kind::kNumber) continue;
      const std::string_view parent = obj.str("parent");
      if (parent.size() == 16 && parent != kZeroId &&
          span_ids.find(std::string(parent)) == span_ids.end()) {
        ++st.orphan_spans;
      }
      std::string e;
      begin_event(e, obj.str("name"), 'X', rel, pid, static_cast<long>(obj.num("tid", 0.0)));
      e += ",\"dur\":";
      jsonl::append_number(e, dur->num);
      if (const auto it = flows.find(i); it != flows.end()) {
        e += ",\"bind_id\":\"0x";
        e += it->second.bind;
        e += '"';
        if (it->second.out) e += ",\"flow_out\":true";
        if (it->second.in) e += ",\"flow_in\":true";
      }
      e += ",\"args\":{";
      bool first = true;
      for (const auto& [k, v] : obj.fields) {
        if (k == "ev" || k == "name" || k == "ts_us" || k == "wall_us" || k == "tid" ||
            k == "worker") {
          continue;
        }
        if (!first) e += ',';
        first = false;
        e += '"';
        e += jsonl::escape(k);
        e += "\":";
        append_value(e, v);
      }
      e += "}}";
      out_events.push_back(std::move(e));
      ++st.spans;
    } else if (ev == "profile") {
      std::string e;
      begin_event(e, "rss_bytes", 'C', rel, pid, 0);
      e += ",\"args\":{\"rss\":";
      jsonl::append_number(e, obj.num("rss_bytes", 0.0));
      e += "}}";
      out_events.push_back(std::move(e));
      e.clear();
      begin_event(e, "cpu_ms", 'C', rel, pid, 0);
      e += ",\"args\":{\"user\":";
      jsonl::append_number(e, obj.num("cpu_user_ms", 0.0));
      e += ",\"sys\":";
      jsonl::append_number(e, obj.num("cpu_sys_ms", 0.0));
      e += "}}";
      out_events.push_back(std::move(e));
      e.clear();
      begin_event(e, "read_bytes", 'C', rel, pid, 0);
      e += ",\"args\":{\"read\":";
      jsonl::append_number(e, obj.num("read_bytes", 0.0));
      e += "}}";
      out_events.push_back(std::move(e));
      ++st.counter_samples;
    } else if (is_instant_event(ev)) {
      std::string e;
      begin_event(e, ev, 'i', rel, pid, static_cast<long>(obj.num("tid", 0.0)));
      e += ",\"s\":\"p\",\"args\":{";
      bool first = true;
      for (const auto& [k, v] : obj.fields) {
        if (k == "ev" || k == "ts_us" || k == "tid" || k == "worker") continue;
        if (!first) e += ',';
        first = false;
        e += '"';
        e += jsonl::escape(k);
        e += "\":";
        append_value(e, v);
      }
      e += "}}";
      out_events.push_back(std::move(e));
      ++st.instants;
    }
  }

  std::string out = "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < out_events.size(); ++i) {
    out += out_events[i];
    if (i + 1 < out_events.size()) out += ',';
    out += '\n';
  }
  out += "]}\n";
  return out;
}

bool export_chrome_trace(const std::string& jsonl_path, const std::string& out_path,
                         std::string* err, ExportStats* stats) {
  std::FILE* in = std::fopen(jsonl_path.c_str(), "rb");
  if (in == nullptr) {
    if (err != nullptr) *err = "cannot open " + jsonl_path;
    return false;
  }
  jsonl::StreamReader reader;
  char buf[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), in);
    if (n == 0) break;
    reader.feed(std::string_view(buf, n));
  }
  std::fclose(in);
  reader.finish();

  std::vector<jsonl::Object> events;
  jsonl::Object obj;
  while (reader.next(obj)) events.push_back(std::move(obj));

  ExportStats local;
  ExportStats& st = stats != nullptr ? *stats : local;
  const std::string json = chrome_trace_json(events, &st);
  st.malformed_lines = reader.malformed_lines() + (reader.had_truncated_tail() ? 1 : 0);

  std::FILE* out = std::fopen(out_path.c_str(), "wb");
  if (out == nullptr) {
    if (err != nullptr) *err = "cannot write " + out_path;
    return false;
  }
  const std::size_t wrote = std::fwrite(json.data(), 1, json.size(), out);
  const bool ok = wrote == json.size() && std::fclose(out) == 0;
  if (!ok && err != nullptr) *err = "short write to " + out_path;
  return ok;
}

}  // namespace fd::obs::trace
