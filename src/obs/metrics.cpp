#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "obs/event.h"
#include "obs/sink.h"

namespace fd::obs {

std::size_t histogram_bucket_index(double v) {
  if (!(v >= 1.0)) return 0;  // negatives and NaN land in bucket 0
  // ilogb is exact at power-of-two boundaries, unlike floor(log2(v)).
  const std::size_t idx = 1 + static_cast<std::size_t>(std::ilogb(v));
  return std::min(idx, kHistogramBuckets - 1);
}

double histogram_bucket_lower_bound(std::size_t bucket) {
  if (bucket == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(bucket) - 1);
}

double histogram_percentile(const HistogramView& view, double p) {
  if (view.count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // 1-based rank of the sample we want (nearest-rank definition).
  std::uint64_t k =
      static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(view.count)));
  k = std::clamp<std::uint64_t>(k, 1, view.count);
  std::uint64_t before = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    const std::uint64_t in_bucket = view.buckets[b];
    if (in_bucket == 0) continue;
    if (before + in_bucket >= k) {
      const double lo = histogram_bucket_lower_bound(b);
      // The last bucket is open-ended; its effective upper edge is the
      // observed max.
      const double hi = (b + 1 < kHistogramBuckets) ? histogram_bucket_lower_bound(b + 1)
                                                    : std::max(view.max, lo);
      const double pos = static_cast<double>(k - before) / static_cast<double>(in_bucket);
      const double v = lo + (hi - lo) * pos;
      // Clamping to the observed extremes makes single-value buckets
      // exact and keeps estimates inside the data range.
      return std::clamp(v, view.min, view.max);
    }
    before += in_bucket;
  }
  return view.max;
}

#if FD_OBS_ENABLED

void Histogram::record(double v) {
  const std::size_t idx = histogram_bucket_index(v);
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  ++buckets_[idx];
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}
double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}
double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}
double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}
std::uint64_t Histogram::bucket_count(std::size_t bucket) const {
  std::lock_guard<std::mutex> lock(mu_);
  return bucket < kHistogramBuckets ? buckets_[bucket] : 0;
}
void Histogram::snapshot_into(HistogramView& view) const {
  std::lock_guard<std::mutex> lock(mu_);
  view.count = count_;
  view.sum = sum_;
  view.min = min_;
  view.max = max_;
  view.buckets = buckets_;
}
double Histogram::percentile(double p) const {
  HistogramView view;
  snapshot_into(view);
  return histogram_percentile(view, p);
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  buckets_.fill(0);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry r;
  return r;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  RegistrySnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters.push_back({name, c->value()});
  for (const auto& [name, g] : gauges_) snap.gauges.push_back({name, g->value()});
  for (const auto& [name, h] : histograms_) {
    HistogramView view;
    view.name = name;
    h->snapshot_into(view);
    snap.histograms.push_back(std::move(view));
  }
  return snap;
}

void MetricsRegistry::export_to(TelemetrySink& out) const {
  const RegistrySnapshot snap = snapshot();
  for (const auto& c : snap.counters) {
    Event ev;
    ev.name = "metric";
    ev.add("kind", FieldValue::of(std::string_view("counter")));
    ev.add("name", FieldValue::of(std::string_view(c.name)));
    ev.add("value", FieldValue::of(c.value));
    out.record(ev);
  }
  for (const auto& g : snap.gauges) {
    Event ev;
    ev.name = "metric";
    ev.add("kind", FieldValue::of(std::string_view("gauge")));
    ev.add("name", FieldValue::of(std::string_view(g.name)));
    ev.add("value", FieldValue::of(g.value));
    out.record(ev);
  }
  for (const auto& h : snap.histograms) {
    Event ev;
    ev.name = "metric";
    ev.add("kind", FieldValue::of(std::string_view("histogram")));
    ev.add("name", FieldValue::of(std::string_view(h.name)));
    ev.add("count", FieldValue::of(h.count));
    ev.add("sum", FieldValue::of(h.sum));
    ev.add("min", FieldValue::of(h.min));
    ev.add("max", FieldValue::of(h.max));
    ev.add("mean", FieldValue::of(h.mean()));
    out.record(ev);
  }
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

#endif  // FD_OBS_ENABLED

}  // namespace fd::obs
