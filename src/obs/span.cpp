#include "obs/span.h"

#if FD_OBS_ENABLED

#include <vector>

#include "obs/sink.h"

namespace fd::obs {

namespace {

std::vector<const Span*>& span_stack() {
  thread_local std::vector<const Span*> stack;
  return stack;
}

}  // namespace

Span::Span(std::string_view name) : name_(name), start_(std::chrono::steady_clock::now()) {
  span_stack().push_back(this);
}

Span::~Span() {
  auto& stack = span_stack();
  // Normal destruction pops this span; if intermediate frames were
  // skipped (shouldn't happen with strict RAII, but be unwinding-proof),
  // pop down to and including self.
  while (!stack.empty() && stack.back() != this) stack.pop_back();
  if (!stack.empty()) stack.pop_back();

  const double us = elapsed_us();
  MetricsRegistry::global().histogram("span." + name_ + ".us").record(us);
  if (sink() != nullptr) {
    event("span").with("name", name_).with("depth", stack.size()).with("wall_us", us).emit();
  }
}

double Span::elapsed_us() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start_)
      .count();
}

std::size_t Span::depth() { return span_stack().size(); }

std::string_view Span::current_name() {
  const auto& stack = span_stack();
  return stack.empty() ? std::string_view{} : std::string_view(stack.back()->name());
}

}  // namespace fd::obs

#endif  // FD_OBS_ENABLED
