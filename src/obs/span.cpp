#include "obs/span.h"

namespace fd::obs {

std::string span_id_hex(std::uint64_t id) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[id & 0xF];
    id >>= 4;
  }
  return out;
}

std::uint64_t parse_span_id_hex(std::string_view s) {
  if (s.size() != 16) return 0;
  std::uint64_t v = 0;
  for (const char c : s) {
    std::uint64_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      nibble = static_cast<std::uint64_t>(c - 'A') + 10;
    } else {
      return 0;
    }
    v = (v << 4) | nibble;
  }
  return v;
}

}  // namespace fd::obs

#if FD_OBS_ENABLED

#include <atomic>
#include <mutex>
#include <vector>

#include "exec/seed_split.h"
#include "obs/profile.h"
#include "obs/sink.h"

namespace fd::obs {

namespace {

std::vector<Span*>& span_stack() {
  thread_local std::vector<Span*> stack;
  return stack;
}

// The ambient (stackless) parent: the trace root, or a remote parent
// installed by ScopedSpanParent. Guarded by a mutex because spans are
// created on pool threads concurrently; swaps are rare (once per
// campaign / per fleet task), reads are once per root-level span.
struct Ambient {
  std::mutex mu;
  SpanContext ctx;
  // Shared child sequence for every span parented directly under the
  // ambient context (including stack children of a root-adopting span),
  // so siblings created on different threads get distinct seq numbers.
  std::atomic<std::uint64_t> children{0};
};

Ambient& ambient() {
  static Ambient a;
  return a;
}

// Domain-separation salt for root span IDs ("ROOT" in ASCII).
constexpr std::uint64_t kRootSalt = 0x524F4F54;

std::uint64_t derive_root_id(std::uint64_t trace_id) {
  return exec::mix64(trace_id ^ kRootSalt);
}

// Child ID = pure function of (trace, parent span, sibling ordinal).
std::uint64_t derive_child_id(const SpanContext& parent, std::uint64_t seq) {
  return exec::split_seed(parent.span_id ^ exec::mix64(parent.trace_id), seq);
}

SpanContext ambient_ctx_copy() {
  Ambient& a = ambient();
  std::lock_guard<std::mutex> lock(a.mu);
  return a.ctx;
}

}  // namespace

void set_trace_root(std::uint64_t trace_id) {
  Ambient& a = ambient();
  std::lock_guard<std::mutex> lock(a.mu);
  a.ctx.trace_id = trace_id;
  a.ctx.span_id = derive_root_id(trace_id);
  a.ctx.parent_span_id = 0;
  a.children.store(0, std::memory_order_relaxed);
}

SpanContext ambient_span_context() { return ambient_ctx_copy(); }

ScopedSpanParent::ScopedSpanParent(const SpanContext& ctx, std::uint64_t first_child_seq) {
  Ambient& a = ambient();
  std::lock_guard<std::mutex> lock(a.mu);
  prev_ = a.ctx;
  prev_children_ = a.children.load(std::memory_order_relaxed);
  a.ctx = ctx;
  a.children.store(first_child_seq, std::memory_order_relaxed);
}

ScopedSpanParent::~ScopedSpanParent() {
  Ambient& a = ambient();
  std::lock_guard<std::mutex> lock(a.mu);
  a.ctx = prev_;
  a.children.store(prev_children_, std::memory_order_relaxed);
}

Span::Span(std::string_view name) : name_(name), start_(std::chrono::steady_clock::now()) {
  auto& stack = span_stack();
  SpanContext parent;
  std::uint64_t seq = 0;
  if (!stack.empty()) {
    Span* top = stack.back();
    parent = top->ctx_;
    seq = top->next_child_seq();
  } else {
    parent = ambient_ctx_copy();
    seq = ambient().children.fetch_add(1, std::memory_order_relaxed);
  }
  ctx_.trace_id = parent.trace_id;
  ctx_.parent_span_id = parent.span_id;
  ctx_.span_id = derive_child_id(parent, seq);
  stack.push_back(this);
}

Span::Span(std::string_view name, Root)
    : name_(name), adopted_(true), start_(std::chrono::steady_clock::now()) {
  ctx_ = ambient_ctx_copy();
  span_stack().push_back(this);
}

std::uint64_t Span::next_child_seq() {
  // An adopted root shares the process-global sequence with
  // ambient-parented spans on other threads -- they are siblings and
  // must not reuse ordinals. A regular span's stack children are
  // single-threaded (the stack is thread-local), so a plain counter is
  // enough.
  if (adopted_) return ambient().children.fetch_add(1, std::memory_order_relaxed);
  return children_++;
}

Span::~Span() {
  auto& stack = span_stack();
  // Normal destruction pops this span; if intermediate frames were
  // skipped (shouldn't happen with strict RAII, but be unwinding-proof),
  // pop down to and including self.
  while (!stack.empty() && stack.back() != this) stack.pop_back();
  if (!stack.empty()) stack.pop_back();

  const double us = elapsed_us();
  MetricsRegistry::global().histogram("span." + name_ + ".us").record(us);
  if (sink() != nullptr) {
    const double start_us =
        std::chrono::duration<double, std::micro>(start_.time_since_epoch()).count();
    EventBuilder b = event("span");
    b.with("name", name_)
        .with("trace", span_id_hex(ctx_.trace_id))
        .with("span", span_id_hex(ctx_.span_id))
        .with("parent", span_id_hex(ctx_.parent_span_id))
        .with("tid", current_tid())
        .with("depth", stack.size())
        .with("ts_us", start_us)
        .with("wall_us", us);
    for (const auto& [k, v] : notes_u64_) b.with(k, v);
    for (const auto& [k, v] : notes_str_) b.with(k, std::string_view(v));
    b.emit();
  }
}

double Span::elapsed_us() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start_)
      .count();
}

void Span::note(std::string_view key, std::uint64_t v) {
  notes_u64_.emplace_back(std::string(key), v);
}

void Span::note(std::string_view key, std::string_view v) {
  notes_str_.emplace_back(std::string(key), std::string(v));
}

std::size_t Span::depth() { return span_stack().size(); }

std::string_view Span::current_name() {
  const auto& stack = span_stack();
  return stack.empty() ? std::string_view{} : std::string_view(stack.back()->name());
}

SpanContext Span::current_context() {
  const auto& stack = span_stack();
  if (!stack.empty()) return stack.back()->ctx_;
  return ambient_ctx_copy();
}

}  // namespace fd::obs

#endif  // FD_OBS_ENABLED
