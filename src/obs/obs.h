#pragma once
// Umbrella header for the observability layer: metrics registry,
// spans/timers, telemetry sinks, and the JSONL event format. See
// DESIGN.md section 8 for the architecture and the overhead budget.
//
// Everything here is zero-overhead in two senses: with no sink
// installed, event emission is one atomic pointer load; with
// FD_OBS=OFF at configure time, every recording call compiles to an
// empty inline function.

#include "obs/event.h"    // IWYU pragma: export
#include "obs/jsonl.h"    // IWYU pragma: export
#include "obs/metrics.h"  // IWYU pragma: export
#include "obs/profile.h"  // IWYU pragma: export
#include "obs/sink.h"     // IWYU pragma: export
#include "obs/span.h"     // IWYU pragma: export
