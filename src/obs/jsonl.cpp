#include "obs/jsonl.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace fd::obs::jsonl {

const Value* Object::find(std::string_view key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Object::num(std::string_view key, double dflt) const {
  const Value* v = find(key);
  if (v == nullptr) return dflt;
  if (v->kind == Value::Kind::kNumber) return v->num;
  if (v->kind == Value::Kind::kBool) return v->b ? 1.0 : 0.0;
  return dflt;
}

std::string_view Object::str(std::string_view key, std::string_view dflt) const {
  const Value* v = find(key);
  return (v != nullptr && v->kind == Value::Kind::kString) ? std::string_view(v->str) : dflt;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_number(std::string& out, double v) {
  char buf[32];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9007199254740992.0) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else if (std::isfinite(v)) {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  } else {
    // JSON has no inf/nan; emit null so the line stays parseable.
    std::snprintf(buf, sizeof buf, "null");
  }
  out += buf;
}

namespace {

struct Cursor {
  std::string_view s;
  std::size_t pos = 0;
  std::string* err;

  [[nodiscard]] bool fail(const char* why) {
    if (err != nullptr) *err = std::string(why) + " at offset " + std::to_string(pos);
    return false;
  }
  void skip_ws() {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos])) != 0) ++pos;
  }
  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  [[nodiscard]] char peek() {
    skip_ws();
    return pos < s.size() ? s[pos] : '\0';
  }
};

bool parse_string(Cursor& c, std::string& out) {
  if (!c.eat('"')) return c.fail("expected '\"'");
  out.clear();
  while (c.pos < c.s.size()) {
    const char ch = c.s[c.pos++];
    if (ch == '"') return true;
    if (ch != '\\') {
      out += ch;
      continue;
    }
    if (c.pos >= c.s.size()) break;
    const char esc = c.s[c.pos++];
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (c.pos + 4 > c.s.size()) return c.fail("short \\u escape");
        const std::string hex(c.s.substr(c.pos, 4));
        c.pos += 4;
        const long cp = std::strtol(hex.c_str(), nullptr, 16);
        // Telemetry only escapes control characters, so a plain
        // narrowing append covers everything our own writer emits.
        out += static_cast<char>(cp);
        break;
      }
      default: return c.fail("unknown escape");
    }
  }
  return c.fail("unterminated string");
}

bool parse_value(Cursor& c, Value& out, int depth);

bool parse_array(Cursor& c, Value& out, int depth) {
  out.kind = Value::Kind::kArray;
  out.items.clear();
  if (!c.eat('[')) return c.fail("expected '['");
  if (c.eat(']')) return true;
  for (;;) {
    Value item;
    if (!parse_value(c, item, depth + 1)) return false;
    out.items.push_back(std::move(item));
    if (c.eat(']')) return true;
    if (!c.eat(',')) return c.fail("expected ',' or ']'");
  }
}

bool parse_value(Cursor& c, Value& out, int depth) {
  if (depth > 2) return c.fail("nesting too deep for flat telemetry");
  const char ch = c.peek();
  if (ch == '"') {
    out.kind = Value::Kind::kString;
    return parse_string(c, out.str);
  }
  if (ch == '[') return parse_array(c, out, depth);
  if (ch == '{') return c.fail("nested objects are not part of the telemetry format");
  if (ch == 't' || ch == 'f') {
    const std::string_view want = ch == 't' ? "true" : "false";
    if (c.s.substr(c.pos, want.size()) != want) return c.fail("bad literal");
    c.pos += want.size();
    out.kind = Value::Kind::kBool;
    out.b = ch == 't';
    return true;
  }
  if (ch == 'n') {
    if (c.s.substr(c.pos, 4) != "null") return c.fail("bad literal");
    c.pos += 4;
    out.kind = Value::Kind::kNull;
    return true;
  }
  // Number.
  const char* begin = c.s.data() + c.pos;
  char* end = nullptr;
  out.num = std::strtod(begin, &end);
  if (end == begin) return c.fail("expected a value");
  c.pos += static_cast<std::size_t>(end - begin);
  out.kind = Value::Kind::kNumber;
  return true;
}

}  // namespace

// --- StreamReader ----------------------------------------------------------

void StreamReader::feed(std::string_view bytes) {
  if (finished_ && !bytes.empty()) finished_ = false;
  std::size_t start = 0;
  while (start < bytes.size()) {
    const std::size_t nl = bytes.find('\n', start);
    if (nl == std::string_view::npos) {
      buf_.append(bytes.substr(start));
      return;
    }
    if (buf_.empty()) {
      take_line(bytes.substr(start, nl - start));
    } else {
      buf_.append(bytes.substr(start, nl - start));
      take_line(buf_);
      buf_.clear();
    }
    start = nl + 1;
  }
}

void StreamReader::take_line(std::string_view line) {
  // Strip a trailing CR so CRLF streams parse like LF ones.
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  std::size_t ws = 0;
  while (ws < line.size() && std::isspace(static_cast<unsigned char>(line[ws])) != 0) ++ws;
  if (ws == line.size()) return;  // blank line
  Object obj;
  if (parse_object(line, obj)) {
    ready_.push_back(std::move(obj));
  } else {
    ++malformed_;
  }
}

bool StreamReader::next(Object& out) {
  if (next_ >= ready_.size()) {
    // Keep the FIFO from growing without bound on a long tail -- the
    // follow mode feeds this for the lifetime of a campaign.
    ready_.clear();
    next_ = 0;
    return false;
  }
  out = std::move(ready_[next_++]);
  ++delivered_;
  return true;
}

void StreamReader::finish() {
  if (finished_) return;
  finished_ = true;
  if (buf_.empty()) return;
  Object obj;
  if (parse_object(buf_, obj)) {
    ready_.push_back(std::move(obj));
  } else {
    // The classic SIGKILL signature: a final line cut mid-record.
    // Remember it verbatim (a resumed follow can splice it back in
    // front of the next feed) and keep it out of the malformed count.
    truncated_ = true;
    tail_ = buf_;
  }
  buf_.clear();
}

bool parse_object(std::string_view line, Object& out, std::string* err) {
  out.fields.clear();
  Cursor c{line, 0, err};
  if (!c.eat('{')) return c.fail("expected '{'");
  if (c.eat('}')) return true;
  for (;;) {
    std::string key;
    if (!parse_string(c, key)) return false;
    if (!c.eat(':')) return c.fail("expected ':'");
    Value v;
    if (!parse_value(c, v, 0)) return false;
    out.fields.emplace_back(std::move(key), std::move(v));
    if (c.eat('}')) {
      c.skip_ws();
      return c.pos == line.size() || c.fail("trailing garbage");
    }
    if (!c.eat(',')) return c.fail("expected ',' or '}'");
  }
}

}  // namespace fd::obs::jsonl
