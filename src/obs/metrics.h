#pragma once
// Process-wide metrics: named counters, gauges, and histograms with
// fixed log-scale buckets, owned by a MetricsRegistry with stable
// addresses (a metric reference, once obtained, lives for the process).
//
// When FD_OBS_ENABLED is 0 the whole surface compiles to inline no-ops
// on shared dummy objects: call sites keep type-checking, the optimizer
// deletes them, and instrumented code costs nothing in bare builds.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#if FD_OBS_ENABLED
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#endif

namespace fd::obs {

class TelemetrySink;

// Log-scale bucket geometry shared by every histogram: bucket 0 holds
// [0, 1), bucket i >= 1 holds [2^(i-1), 2^i), the last bucket is
// open-ended. Values are unitless; the convention in this repo is
// microseconds for timers and raw counts elsewhere, with the unit
// spelled in the metric name ("...us", "...bytes").
inline constexpr std::size_t kHistogramBuckets = 64;
[[nodiscard]] std::size_t histogram_bucket_index(double v);
[[nodiscard]] double histogram_bucket_lower_bound(std::size_t bucket);

struct CounterView {
  std::string name;
  std::uint64_t value = 0;
};
struct GaugeView {
  std::string name;
  double value = 0.0;
};
struct HistogramView {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  [[nodiscard]] double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};
struct RegistrySnapshot {
  std::vector<CounterView> counters;
  std::vector<GaugeView> gauges;
  std::vector<HistogramView> histograms;
};

// Percentile estimate over a snapshot's log-scale buckets: finds the
// bucket holding the ceil(p/100 * count)-th smallest sample (1-based)
// and linearly interpolates inside it, clamped into the observed
// [min, max]. Exact whenever all samples in the target bucket are equal
// (the common timer-spike shape); otherwise accurate to bucket width.
// p in [0, 100]; returns 0 on an empty view. Always compiled --
// fd-report uses it on parsed telemetry in either obs mode.
[[nodiscard]] double histogram_percentile(const HistogramView& view, double p);

#if FD_OBS_ENABLED

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

class Histogram {
 public:
  void record(double v);
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] double min() const;  // 0 when empty
  [[nodiscard]] double max() const;
  [[nodiscard]] std::uint64_t bucket_count(std::size_t bucket) const;
  // Consistent copy of all stats under one lock -- the accessors above
  // each lock separately, so composing them during concurrent record()
  // calls can tear (count from one instant, sum from another).
  void snapshot_into(HistogramView& view) const;
  // histogram_percentile() over a single-lock snapshot of this metric.
  [[nodiscard]] double percentile(double p) const;
  void reset();

 private:
  mutable std::mutex mu_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> buckets_{};
};

class MetricsRegistry {
 public:
  [[nodiscard]] static MetricsRegistry& global();

  // Lookup-or-create; the returned reference is stable forever. Hot
  // paths should hoist it out of loops (the lookup takes a lock).
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  // Name-sorted copy of every metric (export + tests).
  [[nodiscard]] RegistrySnapshot snapshot() const;
  // Emits one "metric" event per metric to the sink (summary stats for
  // histograms, not raw buckets).
  void export_to(TelemetrySink& sink) const;
  // Zeroes every metric; registrations (and references) survive.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

#else  // FD_OBS_ENABLED == 0: same API, empty bodies, shared dummies.

class Counter {
 public:
  void add(std::uint64_t = 1) {}
  [[nodiscard]] std::uint64_t value() const { return 0; }
  void reset() {}
};

class Gauge {
 public:
  void set(double) {}
  [[nodiscard]] double value() const { return 0.0; }
  void reset() {}
};

class Histogram {
 public:
  void record(double) {}
  [[nodiscard]] std::uint64_t count() const { return 0; }
  [[nodiscard]] double sum() const { return 0.0; }
  [[nodiscard]] double min() const { return 0.0; }
  [[nodiscard]] double max() const { return 0.0; }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t) const { return 0; }
  void snapshot_into(HistogramView&) const {}
  [[nodiscard]] double percentile(double) const { return 0.0; }
  void reset() {}
};

class MetricsRegistry {
 public:
  [[nodiscard]] static MetricsRegistry& global() {
    static MetricsRegistry r;
    return r;
  }
  [[nodiscard]] Counter& counter(std::string_view) { return counter_; }
  [[nodiscard]] Gauge& gauge(std::string_view) { return gauge_; }
  [[nodiscard]] Histogram& histogram(std::string_view) { return histogram_; }
  [[nodiscard]] RegistrySnapshot snapshot() const { return {}; }
  void export_to(TelemetrySink&) const {}
  void reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

#endif  // FD_OBS_ENABLED

}  // namespace fd::obs
