#pragma once
// NTRUSolve: given small f, g in Z[x]/(x^n + 1), find F, G with
//     f*G - g*F = q   (mod x^n + 1),
// the NTRU equation at the heart of FALCON key generation (spec Alg. 6).
//
// Classic field-norm recursion over exact big integers:
//   - descend: N(f)(x^2) = f(x) * f(-x) halves the degree (and roughly
//     doubles coefficient sizes) until n == 1, where the equation is a
//     Bezout identity solved by xgcd;
//   - ascend: F = F'(x^2) * g(-x), G = G'(x^2) * f(-x), then size-reduce
//     (F, G) against (f, g) with Babai's round-off, using an FFT
//     approximation of the quotient on the top ~53 bits of each
//     coefficient.
//
// Exact arithmetic end to end; the FFT is only used to *choose* the
// reduction coefficients, so a poor approximation can slow convergence
// but never breaks the invariant f*G - g*F = q (asserted by the caller).

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bigint.h"

namespace fd::falcon {

using ZPoly = std::vector<BigInt>;  // coefficients of Z[x]/(x^len + 1)

struct NtruSolution {
  ZPoly big_f;  // F
  ZPoly big_g;  // G
};

// Negacyclic ring helpers (exposed for tests).
[[nodiscard]] ZPoly zpoly_mul(const ZPoly& a, const ZPoly& b);
[[nodiscard]] ZPoly zpoly_add(const ZPoly& a, const ZPoly& b);
[[nodiscard]] ZPoly zpoly_sub(const ZPoly& a, const ZPoly& b);
// f(-x): negate odd coefficients.
[[nodiscard]] ZPoly zpoly_galois_conjugate(const ZPoly& f);
// N(f) of half length: fe^2 - x * fo^2.
[[nodiscard]] ZPoly zpoly_field_norm(const ZPoly& f);
// F'(x^2): interleave with zeros to double the length.
[[nodiscard]] ZPoly zpoly_lift(const ZPoly& f);
[[nodiscard]] std::size_t zpoly_max_bitlen(const ZPoly& f);

// Babai size-reduction of (F, G) against (f, g); returns number of
// reduction rounds applied. Exposed for tests.
int zpoly_reduce(ZPoly& big_f, ZPoly& big_g, const ZPoly& f, const ZPoly& g);

// Solve f*G - g*F = q. Returns nullopt when the recursion hits a
// non-coprime resultant pair (keygen then resamples f, g).
[[nodiscard]] std::optional<NtruSolution> ntru_solve(const ZPoly& f, const ZPoly& g,
                                                     std::uint32_t q);

}  // namespace fd::falcon
