#pragma once
// Encoders/decoders: Golomb-Rice signature compression (spec Alg. 17/18)
// and key serialization.
//
// Each s2 coefficient is emitted as: sign bit, 7 low magnitude bits,
// then the remaining magnitude in unary (k zeros and a terminating 1).
// Decompression is strict: it rejects overlong unary runs, negative
// zero, and any nonzero padding bits, so decode(encode(x)) == x and
// malformed inputs fail rather than alias.
//
// Container formats (header byte + fixed-width fields) follow the spec's
// shape; for non-standard toy logn the field widths are documented
// deviations (16-bit coefficients) since the spec only defines the
// standard sets.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "falcon/keys.h"
#include "falcon/sign.h"

namespace fd::falcon {

// Compresses s2 into at most max_bytes (zero-padded to exactly
// max_bytes); returns nullopt if it does not fit.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> compress_s2(
    std::span<const std::int16_t> s2, std::size_t max_bytes);

// Inverse of compress_s2; nullopt on any malformed input.
[[nodiscard]] std::optional<std::vector<std::int16_t>> decompress_s2(
    std::span<const std::uint8_t> bytes, std::size_t n);

// Full signature container: [0x30 + logn][salt][compressed s2],
// sig_bytes total.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> encode_signature(const Signature& sig,
                                                                        const Params& params);
[[nodiscard]] std::optional<Signature> decode_signature(std::span<const std::uint8_t> bytes,
                                                        const Params& params);

// Public key: [0x00 + logn][h packed 14 bits per coefficient].
[[nodiscard]] std::vector<std::uint8_t> encode_public_key(const PublicKey& pk);
[[nodiscard]] std::optional<PublicKey> decode_public_key(std::span<const std::uint8_t> bytes);

// Secret key: [0x50 + logn][f][g][F][G], 16-bit little-endian signed
// coefficients. Decoding re-derives the FFT basis and sampling tree.
[[nodiscard]] std::vector<std::uint8_t> encode_secret_key(const SecretKey& sk);
[[nodiscard]] std::optional<SecretKey> decode_secret_key(std::span<const std::uint8_t> bytes);

// Compact secret key, in the spirit of the spec's per-set bit widths:
// [0x60 + logn] then, for each of f, g, F, G, a width byte w followed by
// the n coefficients packed as w-bit two's complement (w chosen per
// polynomial as the minimum that fits). ~60% smaller than the 16-bit
// container for the standard sets.
[[nodiscard]] std::vector<std::uint8_t> encode_secret_key_compact(const SecretKey& sk);
[[nodiscard]] std::optional<SecretKey> decode_secret_key_compact(
    std::span<const std::uint8_t> bytes);

}  // namespace fd::falcon
