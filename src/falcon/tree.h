#pragma once
// ffLDL* tree construction (spec Alg. 8/9) and ffSampling (spec Alg. 11).
//
// The tree is the recursive LDL* decomposition of the Gram matrix
// G = B B* in FFT representation: each node stores L10 and recurses on
// the split halves of D00 and D11; keygen then replaces every leaf d by
// sigma / sqrt(d), the standard deviation handed to SamplerZ during
// signing. ffSampling walks the same tree to sample a lattice point
// close to the target t, the core of FALCON's hash-and-sign trapdoor.

#include <span>
#include <vector>

#include "falcon/keys.h"
#include "falcon/sampler.h"
#include "fpr/fpr.h"

namespace fd::falcon {

// Builds the full tree from the 2x2 Gram matrix (g00, g01, g11) given in
// FFT representation; g01/g11 are clobbered. Tree leaves are the raw
// LDL diagonal values (call normalize_tree_leaves afterwards).
void ffldl_build(std::span<fpr::Fpr> tree, std::span<const fpr::Fpr> g00,
                 std::span<fpr::Fpr> g01, std::span<fpr::Fpr> g11, unsigned logn);

// Replaces every leaf d with sigma / sqrt(d).
void normalize_tree_leaves(std::span<fpr::Fpr> tree, unsigned logn, fpr::Fpr sigma);

// Returns the min/max leaf value (after normalization: the sigma range).
struct LeafRange {
  double min_value;
  double max_value;
};
[[nodiscard]] LeafRange tree_leaf_range(std::span<const fpr::Fpr> tree, unsigned logn);

// Fast Fourier sampling: given target (t0, t1) in FFT representation and
// the normalized tree, produces integer vectors (z0, z1) in FFT
// representation such that z is distributed as a discrete Gaussian on
// the lattice close to t. logn >= 1.
void ff_sampling(SamplerZ& samp, std::span<fpr::Fpr> z0, std::span<fpr::Fpr> z1,
                 std::span<const fpr::Fpr> tree, std::span<const fpr::Fpr> t0,
                 std::span<const fpr::Fpr> t1, unsigned logn);

}  // namespace fd::falcon
