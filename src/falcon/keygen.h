#pragma once
// FALCON key generation (spec Alg. 5).
//
// Samples small Gaussian f, g; rejects pairs whose Gram-Schmidt norm
// would degrade signature security or whose f is not invertible mod q;
// solves the NTRU equation for F, G; and precomputes the FFT basis and
// the ffLDL* tree that signing consumes.

#include "common/rng.h"
#include "falcon/keys.h"

namespace fd::falcon {

// Generates a key pair for the given parameter set. Retries internally
// until all keygen checks pass (a handful of iterations in expectation).
[[nodiscard]] KeyPair keygen(unsigned logn, RandomSource& rng);

// Rebuilds the FFT basis and sampling tree from (f, g, F, G) -- used by
// key decoding and by the attacker after recovering the polynomials.
// Returns false if the tree's leaf sigmas fall outside the sampler's
// admissible range (never happens for honestly generated keys).
[[nodiscard]] bool expand_secret_key(SecretKey& sk);

// Computes h = g * f^(-1) mod q; returns false when f is not invertible.
[[nodiscard]] bool compute_public_key(PublicKey& pk, std::span<const std::int32_t> f,
                                      std::span<const std::int32_t> g, unsigned logn);

}  // namespace fd::falcon
