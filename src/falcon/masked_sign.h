#pragma once
// Two-share masked signing -- the Section V.B countermeasure direction.
//
// The paper notes that masking "does not yet exist for FALCON -- such an
// implementation can be considered by the FALCON team". This module
// implements the natural first-order masking of the *attacked*
// computation: for every signing query the secret basis rows are split
// into two additive shares with a fresh uniform mask,
//     b = m + (b - m),
// and t = FFT(c) (.) b is computed as FFT(c) (.) m + FFT(c) (.) (b - m).
// No single floating-point multiplication touches a key-dependent
// operand, so the paper's CPA sees only mask-randomized intermediates.
//
// Scope: this masks the t-computation (Alg. 2 line 3), the paper's
// leakage target. The ffSampling stage processes t and the tree and
// would need its own (much harder) masking for full first-order
// protection; that is exactly the open problem the paper points at.
//
// Cost: 2x the multiplications plus n additions per row, and a tiny
// floating-point perturbation of t (the shares round independently);
// the signature remains valid because ffSampling tolerates target
// perturbations far below the Gaussian width.

#include "common/rng.h"
#include "falcon/keys.h"
#include "falcon/sign.h"

namespace fd::falcon {

// Drop-in replacement for sign(); same output distribution up to
// floating-point rounding of the shares.
[[nodiscard]] Signature sign_masked(const SecretKey& sk, std::string_view message,
                                    RandomSource& rng);

}  // namespace fd::falcon
