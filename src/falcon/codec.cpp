#include "falcon/codec.h"

#include <cstring>

#include "falcon/keygen.h"

namespace fd::falcon {

namespace {

class BitWriter {
 public:
  explicit BitWriter(std::size_t max_bytes) : max_bytes_(max_bytes) {}

  // Returns false on overflow.
  [[nodiscard]] bool put(unsigned bit) {
    const std::size_t byte = pos_ / 8;
    if (byte >= max_bytes_) return false;
    if (byte >= buf_.size()) buf_.push_back(0);
    if (bit) buf_[byte] |= static_cast<std::uint8_t>(0x80U >> (pos_ % 8));
    ++pos_;
    return true;
  }
  [[nodiscard]] bool put_bits(std::uint32_t value, unsigned count) {
    for (unsigned i = count; i-- > 0;) {
      if (!put((value >> i) & 1U)) return false;
    }
    return true;
  }
  [[nodiscard]] std::vector<std::uint8_t> finish() {
    buf_.resize(max_bytes_, 0);
    return std::move(buf_);
  }

 private:
  std::size_t max_bytes_;
  std::size_t pos_ = 0;
  std::vector<std::uint8_t> buf_;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  // Returns -1 past the end.
  [[nodiscard]] int get() {
    const std::size_t byte = pos_ / 8;
    if (byte >= bytes_.size()) return -1;
    const int bit = (bytes_[byte] >> (7 - pos_ % 8)) & 1;
    ++pos_;
    return bit;
  }
  // All remaining bits must be zero padding.
  [[nodiscard]] bool rest_is_zero() {
    int b;
    while ((b = get()) >= 0) {
      if (b != 0) return false;
    }
    return true;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<std::vector<std::uint8_t>> compress_s2(std::span<const std::int16_t> s2,
                                                     std::size_t max_bytes) {
  BitWriter w(max_bytes);
  for (const std::int16_t coeff : s2) {
    if (coeff <= -2048 || coeff >= 2048) return std::nullopt;
    const unsigned sign = coeff < 0;
    const std::uint32_t mag = static_cast<std::uint32_t>(sign ? -coeff : coeff);
    if (!w.put(sign)) return std::nullopt;
    if (!w.put_bits(mag & 0x7F, 7)) return std::nullopt;
    for (std::uint32_t k = mag >> 7; k > 0; --k) {
      if (!w.put(0)) return std::nullopt;
    }
    if (!w.put(1)) return std::nullopt;
  }
  return w.finish();
}

std::optional<std::vector<std::int16_t>> decompress_s2(std::span<const std::uint8_t> bytes,
                                                       std::size_t n) {
  BitReader r(bytes);
  std::vector<std::int16_t> s2(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int sign = r.get();
    if (sign < 0) return std::nullopt;
    std::uint32_t mag = 0;
    for (int b = 0; b < 7; ++b) {
      const int bit = r.get();
      if (bit < 0) return std::nullopt;
      mag = (mag << 1) | static_cast<std::uint32_t>(bit);
    }
    std::uint32_t high = 0;
    for (;;) {
      const int bit = r.get();
      if (bit < 0) return std::nullopt;
      if (bit) break;
      if (++high > 15) return std::nullopt;  // |s| would exceed 2047
    }
    mag |= high << 7;
    if (sign == 1 && mag == 0) return std::nullopt;  // non-canonical -0
    s2[i] = static_cast<std::int16_t>(sign ? -static_cast<std::int32_t>(mag)
                                           : static_cast<std::int32_t>(mag));
  }
  if (!r.rest_is_zero()) return std::nullopt;
  return s2;
}

std::optional<std::vector<std::uint8_t>> encode_signature(const Signature& sig,
                                                          const Params& params) {
  const std::size_t body = params.sig_bytes - 1 - kSaltBytes;
  auto comp = compress_s2(sig.s2, body);
  if (!comp) return std::nullopt;
  std::vector<std::uint8_t> out;
  out.reserve(params.sig_bytes);
  out.push_back(static_cast<std::uint8_t>(0x30 + params.logn));
  out.insert(out.end(), sig.salt, sig.salt + kSaltBytes);
  out.insert(out.end(), comp->begin(), comp->end());
  return out;
}

std::optional<Signature> decode_signature(std::span<const std::uint8_t> bytes,
                                          const Params& params) {
  if (bytes.size() != params.sig_bytes) return std::nullopt;
  if (bytes[0] != 0x30 + params.logn) return std::nullopt;
  Signature sig;
  std::memcpy(sig.salt, bytes.data() + 1, kSaltBytes);
  auto s2 = decompress_s2(bytes.subspan(1 + kSaltBytes), params.n);
  if (!s2) return std::nullopt;
  sig.s2 = std::move(*s2);
  return sig;
}

std::vector<std::uint8_t> encode_public_key(const PublicKey& pk) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(0x00 + pk.params.logn));
  std::uint32_t acc = 0;
  unsigned acc_bits = 0;
  for (const std::uint32_t c : pk.h) {
    acc = (acc << 14) | (c & 0x3FFF);
    acc_bits += 14;
    while (acc_bits >= 8) {
      acc_bits -= 8;
      out.push_back(static_cast<std::uint8_t>(acc >> acc_bits));
    }
  }
  if (acc_bits > 0) {
    out.push_back(static_cast<std::uint8_t>(acc << (8 - acc_bits)));
  }
  return out;
}

std::optional<PublicKey> decode_public_key(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return std::nullopt;
  const unsigned logn = bytes[0];
  if (logn < 2 || logn > 10) return std::nullopt;
  PublicKey pk;
  pk.params = Params::get(logn);
  const std::size_t expect = 1 + (pk.params.n * 14 + 7) / 8;
  if (bytes.size() != expect) return std::nullopt;
  pk.h.resize(pk.params.n);
  std::uint32_t acc = 0;
  unsigned acc_bits = 0;
  std::size_t pos = 1;
  for (auto& c : pk.h) {
    while (acc_bits < 14) {
      acc = (acc << 8) | bytes[pos++];
      acc_bits += 8;
    }
    acc_bits -= 14;
    c = (acc >> acc_bits) & 0x3FFF;
    if (c >= kQ) return std::nullopt;
  }
  if ((acc & ((1U << acc_bits) - 1)) != 0) return std::nullopt;  // padding
  return pk;
}

namespace {

void put_i16(std::vector<std::uint8_t>& out, std::int32_t v) {
  const std::uint16_t u = static_cast<std::uint16_t>(static_cast<std::int16_t>(v));
  out.push_back(static_cast<std::uint8_t>(u));
  out.push_back(static_cast<std::uint8_t>(u >> 8));
}

std::int32_t get_i16(std::span<const std::uint8_t> bytes, std::size_t idx) {
  const std::uint16_t u =
      static_cast<std::uint16_t>(bytes[2 * idx] | (bytes[2 * idx + 1] << 8));
  return static_cast<std::int16_t>(u);
}

}  // namespace

std::vector<std::uint8_t> encode_secret_key(const SecretKey& sk) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + 8 * sk.params.n);
  out.push_back(static_cast<std::uint8_t>(0x50 + sk.params.logn));
  for (const auto* poly : {&sk.f, &sk.g, &sk.big_f, &sk.big_g}) {
    for (const std::int32_t c : *poly) put_i16(out, c);
  }
  return out;
}

std::optional<SecretKey> decode_secret_key(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return std::nullopt;
  if (bytes[0] < 0x50) return std::nullopt;
  const unsigned logn = bytes[0] - 0x50;
  if (logn < 2 || logn > 10) return std::nullopt;
  SecretKey sk;
  sk.params = Params::get(logn);
  if (bytes.size() != 1 + 8 * sk.params.n) return std::nullopt;
  const auto body = bytes.subspan(1);
  sk.f.resize(sk.params.n);
  sk.g.resize(sk.params.n);
  sk.big_f.resize(sk.params.n);
  sk.big_g.resize(sk.params.n);
  for (std::size_t i = 0; i < sk.params.n; ++i) {
    sk.f[i] = get_i16(body, i);
    sk.g[i] = get_i16(body, sk.params.n + i);
    sk.big_f[i] = get_i16(body, 2 * sk.params.n + i);
    sk.big_g[i] = get_i16(body, 3 * sk.params.n + i);
  }
  if (!expand_secret_key(sk)) return std::nullopt;
  return sk;
}

std::vector<std::uint8_t> encode_secret_key_compact(const SecretKey& sk) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(0x60 + sk.params.logn));
  for (const auto* poly : {&sk.f, &sk.g, &sk.big_f, &sk.big_g}) {
    // Minimum two's-complement width covering every coefficient.
    unsigned w = 2;
    for (const std::int32_t c : *poly) {
      while (c < -(1 << (w - 1)) || c >= (1 << (w - 1))) ++w;
    }
    out.push_back(static_cast<std::uint8_t>(w));
    std::uint32_t acc = 0;
    unsigned acc_bits = 0;
    for (const std::int32_t c : *poly) {
      const std::uint32_t u = static_cast<std::uint32_t>(c) & ((1U << w) - 1);
      acc = (acc << w) | u;
      acc_bits += w;
      while (acc_bits >= 8) {
        acc_bits -= 8;
        out.push_back(static_cast<std::uint8_t>(acc >> acc_bits));
      }
    }
    if (acc_bits > 0) out.push_back(static_cast<std::uint8_t>(acc << (8 - acc_bits)));
  }
  return out;
}

std::optional<SecretKey> decode_secret_key_compact(std::span<const std::uint8_t> bytes) {
  if (bytes.empty() || bytes[0] < 0x60) return std::nullopt;
  const unsigned logn = bytes[0] - 0x60;
  if (logn < 2 || logn > 10) return std::nullopt;
  SecretKey sk;
  sk.params = Params::get(logn);
  const std::size_t n = sk.params.n;

  std::size_t pos = 1;
  std::vector<std::int32_t>* polys[4] = {&sk.f, &sk.g, &sk.big_f, &sk.big_g};
  for (auto* poly : polys) {
    if (pos >= bytes.size()) return std::nullopt;
    const unsigned w = bytes[pos++];
    if (w < 2 || w > 16) return std::nullopt;
    const std::size_t body = (n * w + 7) / 8;
    if (pos + body > bytes.size()) return std::nullopt;
    poly->resize(n);
    std::uint32_t acc = 0;
    unsigned acc_bits = 0;
    std::size_t byte = pos;
    for (std::size_t i = 0; i < n; ++i) {
      while (acc_bits < w) {
        acc = (acc << 8) | bytes[byte++];
        acc_bits += 8;
      }
      acc_bits -= w;
      const std::uint32_t u = (acc >> acc_bits) & ((1U << w) - 1);
      // Sign-extend w-bit two's complement.
      const std::int32_t v = static_cast<std::int32_t>(u << (32 - w)) >> (32 - w);
      (*poly)[i] = v;
    }
    if ((acc & ((1U << acc_bits) - 1)) != 0) return std::nullopt;  // padding
    pos += body;
  }
  if (pos != bytes.size()) return std::nullopt;
  if (!expand_secret_key(sk)) return std::nullopt;
  return sk;
}

}  // namespace fd::falcon
