#pragma once
// FALCON key material.
//
// The secret key stores the four NTRU polynomials (f, g, F, G) plus the
// precomputed signing data: the FFT-domain basis
//     B = [[g, -f], [G, -F]]
// and the ffLDL* tree T whose leaves hold the per-level Gaussian widths
// used by ffSampling (spec: sk = (B-hat, T)). The public key is
// h = g * f^(-1) mod q.

#include <cstdint>
#include <vector>

#include "falcon/params.h"
#include "fft/fft.h"

namespace fd::falcon {

// Flat ffLDL* tree storage: a node at logn has 2^logn Fpr of value
// (l10 in FFT representation) followed by the left (d00) and right (d11)
// subtrees; a logn==0 leaf is a single Fpr holding sigma/sqrt(d).
[[nodiscard]] constexpr std::size_t tree_size(unsigned logn) {
  return (static_cast<std::size_t>(logn) + 1) << logn;
}

struct SecretKey {
  Params params;
  std::vector<std::int32_t> f, g;          // small NTRU polynomials
  std::vector<std::int32_t> big_f, big_g;  // F, G solving fG - gF = q
  // FFT-domain basis rows: b00 = FFT(g), b01 = FFT(-f),
  //                        b10 = FFT(G), b11 = FFT(-F).
  fft::PolyFft b00, b01, b10, b11;
  std::vector<fpr::Fpr> tree;  // ffLDL* tree, leaves normalized to sigmas
};

struct PublicKey {
  Params params;
  std::vector<std::uint32_t> h;  // coefficients in [0, q)
};

struct KeyPair {
  SecretKey sk;
  PublicKey pk;
};

}  // namespace fd::falcon
