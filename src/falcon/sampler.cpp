#include "falcon/sampler.h"

#include <cassert>
#include <cmath>

namespace fd::falcon {

using fpr::Fpr;
using fpr::fpr_add;
using fpr::fpr_div;
using fpr::fpr_expm_p63;
using fpr::fpr_floor;
using fpr::fpr_half;
using fpr::fpr_lt;
using fpr::fpr_mul;
using fpr::fpr_neg;
using fpr::fpr_of;
using fpr::fpr_sqr;
using fpr::fpr_sub;

KeygenGaussian::KeygenGaussian(double sigma) {
  assert(sigma > 0.0);
  tail_ = static_cast<std::int32_t>(std::ceil(10.0 * sigma));
  // P(k) proportional to exp(-k^2 / (2 sigma^2)), k in [-tail, tail].
  std::vector<long double> weights;
  weights.reserve(2 * tail_ + 1);
  long double total = 0.0L;
  for (std::int32_t k = -tail_; k <= tail_; ++k) {
    const long double w =
        std::exp(-static_cast<long double>(k) * k / (2.0L * sigma * sigma));
    weights.push_back(w);
    total += w;
  }
  cdt_.resize(weights.size());
  long double acc = 0.0L;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    const long double scaled = acc / total * 0x1.0p63L;
    cdt_[i] = (i + 1 == weights.size())
                  ? (std::uint64_t{1} << 63)
                  : static_cast<std::uint64_t>(scaled);
  }
}

std::int32_t KeygenGaussian::sample(RandomSource& rng) const {
  const std::uint64_t u = rng.next_u64() >> 1;  // uniform in [0, 2^63)
  // First index with cdt_[i] > u (binary search).
  std::size_t lo = 0;
  std::size_t hi = cdt_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdt_[mid] > u) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return static_cast<std::int32_t>(lo) - tail_;
}

void KeygenGaussian::sample_poly(RandomSource& rng, std::vector<std::int32_t>& out) const {
  for (auto& c : out) c = sample(rng);
}

namespace {

// Reverse CDT for the half-Gaussian base sampler at sigma_max = 1.8205,
// 72-bit precision split as (hi: 8 bits, lo: 64 bits), computed once.
// RCDT[i] ~ 2^72 * P(X > i) for X half-Gaussian on Z>=0.
struct Rcdt {
  struct Entry {
    std::uint8_t hi;
    std::uint64_t lo;
  };
  std::vector<Entry> entries;

  Rcdt() {
    constexpr long double kSigmaMax = 1.8205L;
    // rho(z) = exp(-z^2 / (2 sigma^2)); normalize over z >= 0.
    std::vector<long double> rho;
    long double total = 0.0L;
    for (int z = 0; z <= 25; ++z) {
      const long double w = std::exp(-static_cast<long double>(z) * z /
                                     (2.0L * kSigmaMax * kSigmaMax));
      rho.push_back(w);
      total += w;
    }
    long double tail = 1.0L;
    for (std::size_t i = 0; i < rho.size(); ++i) {
      tail -= rho[i] / total;
      if (tail <= 0.0L) break;
      // Split 2^72 * tail into hi byte and low 64 bits.
      const long double scaled = tail * 0x1.0p72L;
      const long double hi_part = std::floor(scaled / 0x1.0p64L);
      const std::uint8_t hi = static_cast<std::uint8_t>(hi_part);
      const std::uint64_t lo = static_cast<std::uint64_t>(scaled - hi_part * 0x1.0p64L);
      entries.push_back({hi, lo});
    }
  }
};

const Rcdt& rcdt() {
  static const Rcdt table;
  return table;
}

}  // namespace

SamplerZ::SamplerZ(double sigma_min, RandomSource& rng)
    : sigma_min_(Fpr::from_double(sigma_min)), rng_(rng) {}

int SamplerZ::base_sampler() {
  // 72 random bits: compare against each RCDT entry.
  const std::uint64_t lo = rng_.next_u64();
  const std::uint8_t hi = rng_.next_u8();
  int z0 = 0;
  for (const auto& e : rcdt().entries) {
    // z0 += (u < entry), constant-time-ish comparison on (hi, lo).
    if (hi < e.hi || (hi == e.hi && lo < e.lo)) ++z0;
  }
  return z0;
}

bool SamplerZ::ber_exp(Fpr x, Fpr ccs) {
  // Split x = s*ln2 + r with r in [0, ln2).
  std::int64_t s = fpr_floor(fpr_mul(x, fpr::kInvLn2));
  const Fpr r = fpr_sub(x, fpr_mul(fpr_of(s), fpr::kLn2));
  if (s > 63) s = 63;
  // z ~ 2^64 * ccs * exp(-r) / 2^s, sampled against a random 64-bit
  // stream one byte at a time (most significant first).
  std::uint64_t z = ((fpr_expm_p63(r, ccs) << 1) - 1) >> s;
  int i = 64;
  int w;
  do {
    i -= 8;
    w = static_cast<int>(rng_.next_u8()) - static_cast<int>((z >> i) & 0xFF);
  } while (w == 0 && i > 0);
  return w < 0;
}

std::int64_t SamplerZ::sample(Fpr mu, Fpr sigma_prime) {
  const std::int64_t s = fpr_floor(mu);
  const Fpr r = fpr_sub(mu, fpr_of(s));  // r in [0, 1)
  // dss = 1 / (2 sigma'^2); ccs = sigma_min / sigma'.
  const Fpr dss = fpr_half(fpr::fpr_inv(fpr_sqr(sigma_prime)));
  const Fpr ccs = fpr_div(sigma_min_, sigma_prime);
  constexpr double kInv2SigmaMaxSq = 1.0 / (2.0 * 1.8205 * 1.8205);
  const Fpr inv2smax = Fpr::from_double(kInv2SigmaMaxSq);

  for (;;) {
    const int z0 = base_sampler();
    const int b = rng_.next_u8() & 1;
    const std::int64_t z = b + (2 * b - 1) * z0;
    // x = (z - r)^2 / (2 sigma'^2) - z0^2 / (2 sigma_max^2)  (>= 0).
    Fpr x = fpr_sub(fpr_of(z), r);
    x = fpr_mul(fpr_sqr(x), dss);
    x = fpr_sub(x, fpr_mul(fpr_of(static_cast<std::int64_t>(z0) * z0), inv2smax));
    if (ber_exp(x, ccs)) {
      return s + z;
    }
  }
}

}  // namespace fd::falcon
