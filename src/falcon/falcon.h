#pragma once
// Umbrella header for the FALCON implementation.
//
// Quickstart:
//   fd::ChaCha20Prng rng("my seed");
//   auto kp  = fd::falcon::keygen(9, rng);           // FALCON-512
//   auto sig = fd::falcon::sign(kp.sk, "msg", rng);
//   bool ok  = fd::falcon::verify(kp.pk, "msg", sig);

#include "falcon/codec.h"    // IWYU pragma: export
#include "falcon/keygen.h"   // IWYU pragma: export
#include "falcon/keys.h"     // IWYU pragma: export
#include "falcon/params.h"   // IWYU pragma: export
#include "falcon/sampler.h"  // IWYU pragma: export
#include "falcon/sign.h"     // IWYU pragma: export
#include "falcon/tree.h"     // IWYU pragma: export
