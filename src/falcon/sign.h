#pragma once
// FALCON signing (spec Alg. 2) and verification (spec Alg. 16).
//
// Signing hashes (salt || message) to a point c, computes the target
//     t = ( -1/q * FFT(c) (.) FFT(F),  1/q * FFT(c) (.) FFT(f) ),
// Gaussian-samples a nearby lattice vector with ffSampling, and outputs
// the compressed short vector s2. The coefficient-wise product
// FFT(c) (.) FFT(f) is the operation attacked by the paper; the signing
// code brackets each complex-slot multiplication with trigger leakage
// markers so a capture rig can window traces per coefficient, playing
// the role of the oscilloscope trigger in the physical setup.

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "falcon/keys.h"

namespace fd::falcon {

struct Signature {
  std::uint8_t salt[kSaltBytes] = {};
  std::vector<std::int16_t> s2;  // short vector, coefficient order
};

// HashToPoint: SHAKE256(salt || message) squeezed into n values mod q by
// rejection on 16-bit big-endian words (spec Alg. 3).
[[nodiscard]] std::vector<std::uint32_t> hash_to_point(std::span<const std::uint8_t> salt,
                                                       std::string_view message, unsigned logn);

// Signs a message; retries internally until the sampled vector is short
// enough. The salt is drawn from rng, so repeated calls on the same
// message produce distinct signatures (and distinct hashed points c --
// which is what gives the side-channel adversary fresh known inputs).
[[nodiscard]] Signature sign(const SecretKey& sk, std::string_view message, RandomSource& rng);

// Verifies: recomputes c, derives s1 = c - s2*h mod q (centered), and
// accepts iff ||(s1, s2)||^2 <= floor(beta^2).
[[nodiscard]] bool verify(const PublicKey& pk, std::string_view message, const Signature& sig);

}  // namespace fd::falcon
