#include "falcon/ntru_solve.h"

#include <cassert>
#include <cmath>

#include "fft/fft.h"

namespace fd::falcon {

using fpr::Fpr;

ZPoly zpoly_mul(const ZPoly& a, const ZPoly& b) {
  const std::size_t n = a.size();
  assert(b.size() == n);
  ZPoly r(n, BigInt(0));
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i].is_zero()) continue;
    for (std::size_t j = 0; j < n; ++j) {
      if (b[j].is_zero()) continue;
      const BigInt p = a[i] * b[j];
      const std::size_t k = i + j;
      if (k < n) {
        r[k] += p;
      } else {
        r[k - n] -= p;
      }
    }
  }
  return r;
}

ZPoly zpoly_add(const ZPoly& a, const ZPoly& b) {
  ZPoly r = a;
  for (std::size_t i = 0; i < r.size(); ++i) r[i] += b[i];
  return r;
}

ZPoly zpoly_sub(const ZPoly& a, const ZPoly& b) {
  ZPoly r = a;
  for (std::size_t i = 0; i < r.size(); ++i) r[i] -= b[i];
  return r;
}

ZPoly zpoly_galois_conjugate(const ZPoly& f) {
  ZPoly r = f;
  for (std::size_t i = 1; i < r.size(); i += 2) r[i] = -r[i];
  return r;
}

ZPoly zpoly_field_norm(const ZPoly& f) {
  const std::size_t n = f.size();
  assert(n >= 2 && n % 2 == 0);
  const std::size_t hn = n / 2;
  ZPoly fe(hn), fo(hn);
  for (std::size_t i = 0; i < hn; ++i) {
    fe[i] = f[2 * i];
    fo[i] = f[2 * i + 1];
  }
  // N(f)(y) = fe(y)^2 - y * fo(y)^2  in Z[y]/(y^hn + 1).
  ZPoly r = zpoly_mul(fe, fe);
  const ZPoly fo2 = zpoly_mul(fo, fo);
  // Multiply fo2 by y (negacyclic shift) and subtract.
  r[0] += fo2[hn - 1];  // y * y^(hn-1) = y^hn = -1, so -( -fo2[hn-1] ) = +
  for (std::size_t i = 1; i < hn; ++i) r[i] -= fo2[i - 1];
  return r;
}

ZPoly zpoly_lift(const ZPoly& f) {
  ZPoly r(f.size() * 2, BigInt(0));
  for (std::size_t i = 0; i < f.size(); ++i) r[2 * i] = f[i];
  return r;
}

std::size_t zpoly_max_bitlen(const ZPoly& f) {
  std::size_t m = 0;
  for (const auto& c : f) m = std::max(m, c.bit_length());
  return m;
}

namespace {

// Top-53-bits approximation of c / 2^shift as a double.
double approx_shifted(const BigInt& c, std::size_t shift) {
  if (shift == 0) return c.to_double();
  BigInt t = c;
  t >>= shift;
  return t.to_double();
}

unsigned logn_of(std::size_t n) {
  unsigned logn = 0;
  while ((std::size_t{1} << logn) < n) ++logn;
  return logn;
}

// One Babai round at n == 1: exact nearest-integer quotient.
bool reduce_once_deg1(BigInt& big_f, BigInt& big_g, const BigInt& f, const BigInt& g) {
  const BigInt num = big_f * f + big_g * g;
  const BigInt den = f * f + g * g;
  // k = round(num / den), exact.
  const BigInt two_num = num + num;
  BigInt k = (two_num + den) / (den + den);
  // C-style truncation differs for negatives: recompute via floor-style.
  if (two_num < -den) {
    // floor((2num + den) / (2den)) for negative operands.
    const BigInt d2 = den + den;
    auto [q, r] = BigInt::divmod(two_num + den, d2);
    if (!r.is_zero() && r.is_negative()) q -= BigInt(1);
    k = q;
  }
  if (k.is_zero()) return false;
  big_f -= k * f;
  big_g -= k * g;
  return true;
}

}  // namespace

int zpoly_reduce(ZPoly& big_f, ZPoly& big_g, const ZPoly& f, const ZPoly& g) {
  const std::size_t n = f.size();
  int rounds = 0;

  if (n == 1) {
    while (reduce_once_deg1(big_f[0], big_g[0], f[0], g[0])) {
      if (++rounds > 200) break;
    }
    return rounds;
  }

  const unsigned logn = logn_of(n);
  // FFT of (f, g) at their natural scale, reused every round.
  const std::size_t bl_fg = std::max<std::size_t>(zpoly_max_bitlen(f), zpoly_max_bitlen(g));
  const std::size_t sc_fg = bl_fg > 53 ? bl_fg - 53 : 0;
  std::vector<Fpr> ft(n), gt(n);
  for (std::size_t i = 0; i < n; ++i) {
    ft[i] = Fpr::from_double(approx_shifted(f[i], sc_fg));
    gt[i] = Fpr::from_double(approx_shifted(g[i], sc_fg));
  }
  fft::fft(ft, logn);
  fft::fft(gt, logn);
  // den = f*adj(f) + g*adj(g) (real per slot).
  std::vector<Fpr> den(n);
  {
    auto f2 = ft;
    auto g2 = gt;
    fft::poly_mulselfadj_fft(f2, logn);
    fft::poly_mulselfadj_fft(g2, logn);
    for (std::size_t i = 0; i < n; ++i) den[i] = fpr::fpr_add(f2[i], g2[i]);
  }

  for (;;) {
    const std::size_t bl_FG =
        std::max<std::size_t>(zpoly_max_bitlen(big_f), zpoly_max_bitlen(big_g));
    const std::size_t sc_FG = bl_FG > 53 ? bl_FG - 53 : 0;
    const std::size_t shift = sc_FG > sc_fg ? sc_FG - sc_fg : 0;

    std::vector<Fpr> Ft(n), Gt(n);
    for (std::size_t i = 0; i < n; ++i) {
      Ft[i] = Fpr::from_double(approx_shifted(big_f[i], sc_FG));
      Gt[i] = Fpr::from_double(approx_shifted(big_g[i], sc_FG));
    }
    fft::fft(Ft, logn);
    fft::fft(Gt, logn);

    // num = F*adj(f) + G*adj(g); k = rint(num / den) slot-wise.
    std::vector<Fpr> num(n);
    fft::poly_add_muladj_fft(num, Ft, ft, Gt, gt, logn);
    fft::poly_div_autoadj_fft(num, den, logn);
    fft::ifft(num, logn);

    ZPoly k(n, BigInt(0));
    bool any = false;
    for (std::size_t i = 0; i < n; ++i) {
      const double kv = num[i].to_double();
      // Clamp defensively; the quotient is O(1) at matching scales.
      const double clamped = std::fmin(std::fmax(kv, -1e15), 1e15);
      const std::int64_t ki = std::llrint(clamped);
      if (ki != 0) any = true;
      k[i] = BigInt(ki);
    }
    if (!any) break;

    // (F, G) -= (k * 2^shift) * (f, g).
    ZPoly kf = zpoly_mul(k, f);
    ZPoly kg = zpoly_mul(k, g);
    const std::size_t before = std::max(zpoly_max_bitlen(big_f), zpoly_max_bitlen(big_g));
    for (std::size_t i = 0; i < n; ++i) {
      kf[i] <<= shift;
      kg[i] <<= shift;
      big_f[i] -= kf[i];
      big_g[i] -= kg[i];
    }
    ++rounds;
    const std::size_t after = std::max(zpoly_max_bitlen(big_f), zpoly_max_bitlen(big_g));
    if (after >= before && shift == 0) break;  // no further progress possible
    if (rounds > 2000) break;                  // defensive cap
  }
  return rounds;
}

std::optional<NtruSolution> ntru_solve(const ZPoly& f, const ZPoly& g, std::uint32_t q) {
  const std::size_t n = f.size();
  assert(g.size() == n);

  if (n == 1) {
    const auto [d, u, v] = BigInt::xgcd(f[0], g[0]);
    if (d != BigInt(1)) return std::nullopt;
    // u*f + v*g = 1  =>  f*(u*q) - g*(-v*q) = q.
    NtruSolution sol;
    sol.big_g = {u * BigInt(static_cast<std::int64_t>(q))};
    sol.big_f = {-(v * BigInt(static_cast<std::int64_t>(q)))};
    zpoly_reduce(sol.big_f, sol.big_g, f, g);
    return sol;
  }

  const ZPoly fp = zpoly_field_norm(f);
  const ZPoly gp = zpoly_field_norm(g);
  auto sub = ntru_solve(fp, gp, q);
  if (!sub) return std::nullopt;

  // F = F'(x^2) * g(-x);  G = G'(x^2) * f(-x).
  NtruSolution sol;
  sol.big_f = zpoly_mul(zpoly_lift(sub->big_f), zpoly_galois_conjugate(g));
  sol.big_g = zpoly_mul(zpoly_lift(sub->big_g), zpoly_galois_conjugate(f));
  zpoly_reduce(sol.big_f, sol.big_g, f, g);
  return sol;
}

}  // namespace fd::falcon
