#include "falcon/keygen.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "falcon/ntru_solve.h"
#include "falcon/sampler.h"
#include "falcon/tree.h"
#include "fft/fft.h"
#include "zq/zq.h"

namespace fd::falcon {

using fpr::Fpr;

namespace {

fft::PolyFft to_fft(std::span<const std::int32_t> poly, unsigned logn, bool negate = false) {
  fft::PolyFft r(poly.size());
  for (std::size_t i = 0; i < poly.size(); ++i) {
    r[i] = fpr::fpr_of(negate ? -static_cast<std::int64_t>(poly[i]) : poly[i]);
  }
  fft::fft(r, logn);
  return r;
}

// Squared Gram-Schmidt quality gamma^2 = (1.17^2) * q; keys whose first
// or orthogonalized basis vector exceed it are rejected (spec 3.8.2).
constexpr double kGammaSq = 1.17 * 1.17 * static_cast<double>(kQ);

bool gram_schmidt_checks(std::span<const std::int32_t> f, std::span<const std::int32_t> g,
                         unsigned logn) {
  // First vector: ||(g, -f)||^2 <= gamma^2.
  double norm1 = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    norm1 += static_cast<double>(f[i]) * f[i] + static_cast<double>(g[i]) * g[i];
  }
  if (norm1 > kGammaSq) return false;

  // Orthogonalized vector: || q * (adj f, adj g) / (f adj f + g adj g) ||^2.
  const std::size_t n = f.size();
  auto ft = to_fft(f, logn);
  auto gt = to_fft(g, logn);
  std::vector<Fpr> inv_norm(n);
  fft::poly_invnorm2_fft(inv_norm, ft, gt, logn);
  fft::poly_adj_fft(ft, logn);
  fft::poly_adj_fft(gt, logn);
  fft::poly_mulconst(ft, fpr::fpr_of(kQ), logn);
  fft::poly_mulconst(gt, fpr::fpr_of(kQ), logn);
  fft::poly_mul_autoadj_fft(ft, inv_norm, logn);
  fft::poly_mul_autoadj_fft(gt, inv_norm, logn);
  fft::ifft(ft, logn);
  fft::ifft(gt, logn);
  double norm2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    norm2 += ft[i].to_double() * ft[i].to_double() + gt[i].to_double() * gt[i].to_double();
  }
  return norm2 <= kGammaSq;
}

std::vector<std::uint32_t> to_zq(std::span<const std::int32_t> poly) {
  std::vector<std::uint32_t> r(poly.size());
  for (std::size_t i = 0; i < poly.size(); ++i) r[i] = zq::from_signed(poly[i]);
  return r;
}

}  // namespace

bool compute_public_key(PublicKey& pk, std::span<const std::int32_t> f,
                        std::span<const std::int32_t> g, unsigned logn) {
  const auto inv_f = zq::poly_inverse(to_zq(f), logn);
  if (inv_f.empty()) return false;
  pk.params = Params::get(logn);
  pk.h = zq::poly_mul(to_zq(g), inv_f, logn);
  return true;
}

bool expand_secret_key(SecretKey& sk) {
  const unsigned logn = sk.params.logn;
  const std::size_t n = sk.params.n;
  assert(sk.f.size() == n && sk.g.size() == n && sk.big_f.size() == n && sk.big_g.size() == n);

  // Basis rows in FFT representation: [[g, -f], [G, -F]].
  sk.b00 = to_fft(sk.g, logn);
  sk.b01 = to_fft(sk.f, logn, /*negate=*/true);
  sk.b10 = to_fft(sk.big_g, logn);
  sk.b11 = to_fft(sk.big_f, logn, /*negate=*/true);

  // Gram matrix G = B B*.
  std::vector<Fpr> g00(n), g01(n), g11(n);
  {
    auto t = sk.b00;
    fft::poly_mulselfadj_fft(t, logn);
    g00 = t;
    t = sk.b01;
    fft::poly_mulselfadj_fft(t, logn);
    fft::poly_add(g00, t, logn);

    g01 = sk.b00;
    fft::poly_muladj_fft(g01, sk.b10, logn);
    t = sk.b01;
    fft::poly_muladj_fft(t, sk.b11, logn);
    fft::poly_add(g01, t, logn);

    g11 = sk.b10;
    fft::poly_mulselfadj_fft(g11, logn);
    t = sk.b11;
    fft::poly_mulselfadj_fft(t, logn);
    fft::poly_add(g11, t, logn);
  }

  sk.tree.assign(tree_size(logn), fpr::kZero);
  ffldl_build(sk.tree, g00, g01, g11, logn);
  normalize_tree_leaves(sk.tree, logn, Fpr::from_double(sk.params.sigma));

  const LeafRange range = tree_leaf_range(sk.tree, logn);
  return range.min_value >= sk.params.sigma_min * 0.99 &&
         range.max_value <= sk.params.sigma_max * 1.01;
}

KeyPair keygen(unsigned logn, RandomSource& rng) {
  const Params params = Params::get(logn);
  const KeygenGaussian gauss(params.sigma_fg);

  for (int attempt = 0; attempt < 1000; ++attempt) {
    KeyPair kp;
    kp.sk.params = params;
    kp.sk.f.assign(params.n, 0);
    kp.sk.g.assign(params.n, 0);
    gauss.sample_poly(rng, kp.sk.f);
    gauss.sample_poly(rng, kp.sk.g);

    if (!gram_schmidt_checks(kp.sk.f, kp.sk.g, logn)) continue;
    if (!zq::poly_invertible(to_zq(kp.sk.f), logn)) continue;

    // Solve the NTRU equation.
    ZPoly zf(params.n), zg(params.n);
    for (std::size_t i = 0; i < params.n; ++i) {
      zf[i] = BigInt(kp.sk.f[i]);
      zg[i] = BigInt(kp.sk.g[i]);
    }
    auto sol = ntru_solve(zf, zg, kQ);
    if (!sol) continue;

    // Validate f*G - g*F == q and that F, G fit comfortably in int32.
    {
      const ZPoly lhs = zpoly_sub(zpoly_mul(zf, sol->big_g), zpoly_mul(zg, sol->big_f));
      if (lhs[0] != BigInt(static_cast<std::int64_t>(kQ))) continue;
      bool ok = true;
      for (std::size_t i = 1; i < params.n && ok; ++i) ok = lhs[i].is_zero();
      for (std::size_t i = 0; i < params.n && ok; ++i) {
        ok = sol->big_f[i].fits_int64() && sol->big_g[i].fits_int64() &&
             std::llabs(sol->big_f[i].to_int64()) < (1LL << 30) &&
             std::llabs(sol->big_g[i].to_int64()) < (1LL << 30);
      }
      if (!ok) continue;
    }
    kp.sk.big_f.resize(params.n);
    kp.sk.big_g.resize(params.n);
    for (std::size_t i = 0; i < params.n; ++i) {
      kp.sk.big_f[i] = static_cast<std::int32_t>(sol->big_f[i].to_int64());
      kp.sk.big_g[i] = static_cast<std::int32_t>(sol->big_g[i].to_int64());
    }

    if (!compute_public_key(kp.pk, kp.sk.f, kp.sk.g, logn)) continue;
    if (!expand_secret_key(kp.sk)) continue;
    return kp;
  }
  throw std::runtime_error("keygen: could not generate a key (should not happen)");
}

}  // namespace fd::falcon
