#include "falcon/tree.h"

#include <cassert>

#include "fft/fft.h"

namespace fd::falcon {

using fpr::Fpr;
using fpr::fpr_add;
using fpr::fpr_div;
using fpr::fpr_mul;
using fpr::fpr_of;
using fpr::fpr_sqrt;
using fpr::fpr_sub;

namespace {

// Inner recursion on the auto-adjoint quasicyclic Gram [[g0, g1],
// [adj(g1), g0]]; g0/g1 are clobbered as scratch.
void ffldl_inner(std::span<Fpr> tree, std::span<Fpr> g0, std::span<Fpr> g1, unsigned logn) {
  const std::size_t n = std::size_t{1} << logn;
  if (logn == 0) {
    tree[0] = g0[0];
    return;
  }
  const std::size_t hn = n >> 1;

  // LDL: d00 = g0 (in place), l10 -> g1, d11 -> g11 buffer.
  std::vector<Fpr> g11(g0.begin(), g0.end());
  fft::poly_ldl_fft(g0, g1, g11, logn);  // g1 := l10, g11 := d11
  std::copy(g1.begin(), g1.begin() + static_cast<std::ptrdiff_t>(n), tree.begin());

  // Left subtree from split(d00), right subtree from split(d11).
  std::vector<Fpr> s0(hn), s1(hn);
  fft::poly_split_fft(s0, s1, g0, logn);
  ffldl_inner(tree.subspan(n, tree_size(logn - 1)), s0, s1, logn - 1);

  fft::poly_split_fft(s0, s1, g11, logn);
  ffldl_inner(tree.subspan(n + tree_size(logn - 1)), s0, s1, logn - 1);
}

}  // namespace

void ffldl_build(std::span<Fpr> tree, std::span<const Fpr> g00, std::span<Fpr> g01,
                 std::span<Fpr> g11, unsigned logn) {
  assert(logn >= 1);
  const std::size_t n = std::size_t{1} << logn;
  assert(tree.size() >= tree_size(logn));

  std::vector<Fpr> d00(g00.begin(), g00.end());
  fft::poly_ldl_fft(g00, g01, g11, logn);  // g01 := l10, g11 := d11
  std::copy(g01.begin(), g01.begin() + static_cast<std::ptrdiff_t>(n), tree.begin());

  const std::size_t hn = n >> 1;
  std::vector<Fpr> s0(hn), s1(hn);
  fft::poly_split_fft(s0, s1, d00, logn);
  ffldl_inner(tree.subspan(n, tree_size(logn - 1)), s0, s1, logn - 1);

  fft::poly_split_fft(s0, s1, g11, logn);
  ffldl_inner(tree.subspan(n + tree_size(logn - 1)), s0, s1, logn - 1);
}

void normalize_tree_leaves(std::span<Fpr> tree, unsigned logn, Fpr sigma) {
  if (logn == 0) {
    tree[0] = fpr_div(sigma, fpr_sqrt(tree[0]));
    return;
  }
  const std::size_t n = std::size_t{1} << logn;
  normalize_tree_leaves(tree.subspan(n, tree_size(logn - 1)), logn - 1, sigma);
  normalize_tree_leaves(tree.subspan(n + tree_size(logn - 1)), logn - 1, sigma);
}

LeafRange tree_leaf_range(std::span<const Fpr> tree, unsigned logn) {
  if (logn == 0) {
    const double v = tree[0].to_double();
    return {v, v};
  }
  const std::size_t n = std::size_t{1} << logn;
  const LeafRange l = tree_leaf_range(tree.subspan(n, tree_size(logn - 1)), logn - 1);
  const LeafRange r = tree_leaf_range(tree.subspan(n + tree_size(logn - 1)), logn - 1);
  return {std::min(l.min_value, r.min_value), std::max(l.max_value, r.max_value)};
}

void ff_sampling(SamplerZ& samp, std::span<Fpr> z0, std::span<Fpr> z1,
                 std::span<const Fpr> tree, std::span<const Fpr> t0,
                 std::span<const Fpr> t1, unsigned logn) {
  const std::size_t n = std::size_t{1} << logn;
  const std::size_t hn = n >> 1;

  if (logn == 1) {
    // One complex slot; leaves live at tree[2] (d00) and tree[3] (d11).
    const Fpr sigma1 = tree[3];
    z1[0] = fpr_of(samp.sample(t1[0], sigma1));
    z1[1] = fpr_of(samp.sample(t1[1], sigma1));

    // tb0 = t0 + (t1 - z1) * l10  (complex multiply by tree[0..1]).
    const Fpr d_re = fpr_sub(t1[0], z1[0]);
    const Fpr d_im = fpr_sub(t1[1], z1[1]);
    const Fpr l_re = tree[0];
    const Fpr l_im = tree[1];
    const Fpr b_re = fpr_add(t0[0], fpr_sub(fpr_mul(d_re, l_re), fpr_mul(d_im, l_im)));
    const Fpr b_im = fpr_add(t0[1], fpr_add(fpr_mul(d_re, l_im), fpr_mul(d_im, l_re)));

    const Fpr sigma0 = tree[2];
    z0[0] = fpr_of(samp.sample(b_re, sigma0));
    z0[1] = fpr_of(samp.sample(b_im, sigma0));
    return;
  }

  const auto tree_l10 = tree.first(n);
  const auto tree0 = tree.subspan(n, tree_size(logn - 1));               // d00 branch
  const auto tree1 = tree.subspan(n + tree_size(logn - 1));              // d11 branch

  // z1 from the right (d11) branch.
  std::vector<Fpr> a0(hn), a1(hn), u0(hn), u1(hn);
  fft::poly_split_fft(a0, a1, t1, logn);
  ff_sampling(samp, u0, u1, tree1, a0, a1, logn - 1);
  fft::poly_merge_fft(z1, u0, u1, logn);

  // tb0 = t0 + (t1 - z1) * l10.
  std::vector<Fpr> tb(t1.begin(), t1.end());
  fft::poly_sub(tb, z1, logn);
  fft::poly_mul_fft(tb, tree_l10, logn);
  fft::poly_add(tb, t0, logn);

  // z0 from the left (d00) branch.
  fft::poly_split_fft(a0, a1, tb, logn);
  ff_sampling(samp, u0, u1, tree0, a0, a1, logn - 1);
  fft::poly_merge_fft(z0, u0, u1, logn);
}

}  // namespace fd::falcon
