#include "falcon/params.h"

#include <cassert>
#include <cmath>

namespace fd::falcon {

Params Params::get(unsigned logn) {
  assert(logn >= 2 && logn <= 10);
  Params p;
  p.logn = logn;
  p.n = std::size_t{1} << logn;

  // Smoothing parameter eta_epsilon(Z^2n) with epsilon = 1/sqrt(q_s *
  // lambda), q_s = 2^64 signature queries and lambda the security target
  // (128 up to FALCON-512, 256 for FALCON-1024; spec section 2.5.3):
  // reproduces the spec's sigma_min of 1.277833697 / 1.298280334.
  const double lambda = (logn == 10) ? 256.0 : 128.0;
  const double inv_eps = std::sqrt(0x1.0p64 * lambda);
  const double eta =
      (1.0 / M_PI) * std::sqrt(std::log(4.0 * static_cast<double>(p.n) * (1.0 + inv_eps)) / 2.0);
  p.sigma_min = eta;
  p.sigma = eta * 1.17 * std::sqrt(static_cast<double>(kQ));
  p.sigma_fg = 1.17 * std::sqrt(static_cast<double>(kQ) / (2.0 * static_cast<double>(p.n)));

  const double beta = 1.1 * p.sigma * std::sqrt(2.0 * static_cast<double>(p.n));
  p.bound_sq = static_cast<std::uint64_t>(beta * beta);

  // Compressed-signature container sizes: spec values for the standard
  // sets, a proportional budget (~9.77 bits/coefficient + overhead)
  // otherwise.
  switch (logn) {
    case 9: p.sig_bytes = 666; break;
    case 10: p.sig_bytes = 1280; break;
    default:
      p.sig_bytes = 1 + kSaltBytes + (p.n * 10 + 7) / 8 + 4;
      break;
  }
  return p;
}

}  // namespace fd::falcon
