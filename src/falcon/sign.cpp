#include "falcon/sign.h"
#include "falcon/masked_sign.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "common/shake256.h"
#include "falcon/sampler.h"
#include "falcon/tree.h"
#include "fft/fft.h"
#include "zq/zq.h"

namespace fd::falcon {

using fpr::Fpr;
using fpr::fpr_add;
using fpr::fpr_mul;
using fpr::fpr_of;
using fpr::fpr_rint;
using fpr::fpr_sub;
using fpr::leak;
using fpr::LeakageTag;

std::vector<std::uint32_t> hash_to_point(std::span<const std::uint8_t> salt,
                                         std::string_view message, unsigned logn) {
  const std::size_t n = std::size_t{1} << logn;
  Shake256 sh;
  sh.inject(salt);
  sh.inject(message);
  sh.flip();
  std::vector<std::uint32_t> c;
  c.reserve(n);
  while (c.size() < n) {
    const std::uint32_t t = sh.extract_u16_be();
    // Rejection bound 61445 = 5 * 12289 keeps the residues unbiased.
    if (t < 61445) c.push_back(t % kQ);
  }
  return c;
}

namespace {

// The paper's target: coefficient-wise multiplication of the secret
// basis row (FFT(-f) or FFT(-F)) by the known FFT(c). The secret operand
// goes FIRST into fpr_mul so its mantissa halves drive the x-side of the
// schoolbook pipeline (see src/fpr/leakage.h); trigger markers bracket
// each complex slot.
void mul_fft_secret_by_known(std::span<Fpr> out, std::span<const Fpr> secret,
                             std::span<const Fpr> known, unsigned logn) {
  const std::size_t hn = std::size_t{1} << (logn - 1);
  for (std::size_t u = 0; u < hn; ++u) {
    leak(LeakageTag::kTriggerBegin, u);
    const Fpr t_rr = fpr_mul(secret[u], known[u]);
    const Fpr t_ii = fpr_mul(secret[u + hn], known[u + hn]);
    const Fpr t_ri = fpr_mul(secret[u], known[u + hn]);
    const Fpr t_ir = fpr_mul(secret[u + hn], known[u]);
    out[u] = fpr_sub(t_rr, t_ii);
    out[u + hn] = fpr_add(t_ri, t_ir);
    leak(LeakageTag::kTriggerEnd, u);
  }
}

// Computes the target vector t = (t0, t1) from the FFT of the hashed
// point; the plain path multiplies the secret rows directly (the
// attacked computation), the masked path goes through sign_masked's
// share splitting.
using TargetFn = void (*)(const SecretKey&, std::span<const Fpr> cf, std::span<Fpr> t0,
                          std::span<Fpr> t1, RandomSource& rng);

void plain_targets(const SecretKey& sk, std::span<const Fpr> cf, std::span<Fpr> t0,
                   std::span<Fpr> t1, RandomSource& /*rng*/) {
  const unsigned logn = sk.params.logn;
  const Fpr inv_q = fpr::fpr_inv(fpr_of(kQ));
  // t0 = -1/q * FFT(c) (.) FFT(F) = 1/q * FFT(c) (.) b11
  // t1 =  1/q * FFT(c) (.) FFT(f) = -1/q * FFT(c) (.) b01
  // (b01 = FFT(-f), b11 = FFT(-F)). The multiplication by the secret
  // row is the attacked computation.
  mul_fft_secret_by_known(t1, sk.b01, cf, logn);
  fft::poly_mulconst(t1, fpr::fpr_neg(inv_q), logn);
  mul_fft_secret_by_known(t0, sk.b11, cf, logn);
  fft::poly_mulconst(t0, inv_q, logn);
}

Signature sign_core(const SecretKey& sk, std::string_view message, RandomSource& rng,
                    TargetFn targets) {
  const unsigned logn = sk.params.logn;
  const std::size_t n = sk.params.n;

  Signature sig;
  for (int salt_attempt = 0; salt_attempt < 64; ++salt_attempt) {
    rng.fill(sig.salt);
    const auto c = hash_to_point(sig.salt, message, logn);

    // FFT of the hashed point (known to the adversary).
    std::vector<Fpr> cf(n);
    for (std::size_t i = 0; i < n; ++i) cf[i] = fpr_of(c[i]);
    fft::fft(cf, logn);

    std::vector<Fpr> t0(n), t1(n);
    targets(sk, cf, t0, t1, rng);

    SamplerZ samp(sk.params.sigma_min, rng);
    for (int z_attempt = 0; z_attempt < 32; ++z_attempt) {
      std::vector<Fpr> z0(n), z1(n);
      ff_sampling(samp, z0, z1, sk.tree, t0, t1, logn);

      // s = (t - z) * B.
      std::vector<Fpr> v0(t0), v1(t1);
      fft::poly_sub(v0, z0, logn);
      fft::poly_sub(v1, z1, logn);

      std::vector<Fpr> s1f(v0), s2f(v0);
      fft::poly_mul_fft(s1f, sk.b00, logn);
      {
        std::vector<Fpr> tmp(v1);
        fft::poly_mul_fft(tmp, sk.b10, logn);
        fft::poly_add(s1f, tmp, logn);
      }
      fft::poly_mul_fft(s2f, sk.b01, logn);
      {
        std::vector<Fpr> tmp(v1);
        fft::poly_mul_fft(tmp, sk.b11, logn);
        fft::poly_add(s2f, tmp, logn);
      }
      fft::ifft(s1f, logn);
      fft::ifft(s2f, logn);

      std::uint64_t norm_sq = 0;
      bool in_range = true;
      std::vector<std::int16_t> s2(n);
      for (std::size_t i = 0; i < n && in_range; ++i) {
        const std::int64_t a = fpr_rint(s1f[i]);
        const std::int64_t b = fpr_rint(s2f[i]);
        in_range = (a > -16384 && a < 16384) && (b > -2048 && b < 2048);
        if (!in_range) break;
        norm_sq += static_cast<std::uint64_t>(a * a) + static_cast<std::uint64_t>(b * b);
        s2[i] = static_cast<std::int16_t>(b);
      }
      if (!in_range || norm_sq > sk.params.bound_sq) continue;
      sig.s2 = std::move(s2);
      return sig;
    }
  }
  throw std::runtime_error("sign: failed to produce a short signature");
}

}  // namespace

Signature sign(const SecretKey& sk, std::string_view message, RandomSource& rng) {
  return sign_core(sk, message, rng, &plain_targets);
}

namespace {

// Masked target computation (see masked_sign.h): each secret row b is
// split per query into (m, b - m) with a fresh wide Gaussian mask m, and
// FFT(c) (.) b is evaluated share-wise. Both share multiplications still
// run through the triggered window (the device executes them; they leak
// -- but only mask-randomized values).
void masked_targets(const SecretKey& sk, std::span<const Fpr> cf, std::span<Fpr> t0,
                    std::span<Fpr> t1, RandomSource& rng) {
  const unsigned logn = sk.params.logn;
  const std::size_t n = sk.params.n;
  const Fpr inv_q = fpr::fpr_inv(fpr_of(kQ));
  // Mask scale comparable to the secret-row magnitudes, so shares look
  // like plausible operands and mask/share precision loss is bounded.
  const double mask_sigma =
      12289.0 * std::sqrt(static_cast<double>(n) / 24.0);

  const auto masked_row = [&](std::span<const Fpr> row, std::span<Fpr> out) {
    std::vector<Fpr> mask(n), share(n), partial(n);
    for (std::size_t i = 0; i < n; ++i) {
      mask[i] = Fpr::from_double(rng.gaussian() * mask_sigma);
      share[i] = fpr_sub(row[i], mask[i]);
    }
    mul_fft_secret_by_known(partial, mask, cf, logn);
    mul_fft_secret_by_known(out, share, cf, logn);
    fft::poly_add(out, partial, logn);
  };

  masked_row(sk.b01, t1);
  fft::poly_mulconst(t1, fpr::fpr_neg(inv_q), logn);
  masked_row(sk.b11, t0);
  fft::poly_mulconst(t0, inv_q, logn);
}

}  // namespace

Signature sign_masked(const SecretKey& sk, std::string_view message, RandomSource& rng) {
  return sign_core(sk, message, rng, &masked_targets);
}

bool verify(const PublicKey& pk, std::string_view message, const Signature& sig) {
  const unsigned logn = pk.params.logn;
  const std::size_t n = pk.params.n;
  if (sig.s2.size() != n) return false;

  const auto c = hash_to_point(sig.salt, message, logn);

  // s1 = c - s2 * h mod q, centered.
  std::vector<std::uint32_t> s2q(n);
  for (std::size_t i = 0; i < n; ++i) s2q[i] = zq::from_signed(sig.s2[i]);
  const auto s2h = zq::poly_mul(s2q, pk.h, logn);

  std::uint64_t norm_sq = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t s1 = zq::center(zq::sub(c[i], s2h[i]));
    norm_sq += static_cast<std::uint64_t>(s1 * s1) +
               static_cast<std::uint64_t>(static_cast<std::int64_t>(sig.s2[i]) * sig.s2[i]);
  }
  return norm_sq <= pk.params.bound_sq;
}

}  // namespace fd::falcon
