#pragma once
// FALCON parameter sets.
//
// The two standardized instances are logn = 9 (FALCON-512) and logn = 10
// (FALCON-1024). Smaller logn give "toy" instances with the same
// structure; the paper notes the attack is parameter-independent because
// both instances share the floating-point arithmetic, so tests and
// end-to-end attack demos use reduced n while benches report the real
// sets where practical.

#include <cstddef>
#include <cstdint>

namespace fd::falcon {

inline constexpr std::uint32_t kQ = 12289;
inline constexpr std::size_t kSaltBytes = 40;  // 320-bit salt r

struct Params {
  unsigned logn = 0;
  std::size_t n = 0;

  // Standard deviation of the ffSampling Gaussian (spec: eta * 1.17 * sqrt(q)).
  double sigma = 0.0;
  // Smoothing-parameter lower bound for per-leaf sigmas.
  double sigma_min = 0.0;
  // Upper bound on per-leaf sigmas; also the base-sampler deviation.
  double sigma_max = 1.8205;
  // Keygen deviation for f, g coefficients: 1.17 * sqrt(q / (2n)).
  double sigma_fg = 0.0;
  // Squared acceptance bound floor(beta^2), beta = 1.1 * sigma * sqrt(2n).
  std::uint64_t bound_sq = 0;
  // Total signature size in bytes (header + salt + compressed s2).
  std::size_t sig_bytes = 0;

  // Returns the parameter set for 2 <= logn <= 10. Values for logn 9 and
  // 10 match the FALCON specification; other sizes use the same formulas.
  [[nodiscard]] static Params get(unsigned logn);
};

}  // namespace fd::falcon
