#pragma once
// Discrete Gaussian samplers.
//
// Two samplers live here:
//  - KeygenGaussian: samples the small keygen polynomials f, g with
//    deviation sigma_fg via an inverse-CDT built at construction.
//  - SamplerZ: FALCON's signing sampler (spec Alg. 12-14): an RCDT base
//    half-Gaussian at sigma_max = 1.8205 combined with a BerExp rejection
//    step, giving a Gaussian with per-call center mu and deviation
//    sigma' in [sigma_min, sigma_max-scaled range]. All floating-point
//    work goes through the instrumented Fpr type, just as in the
//    reference implementation.

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "fpr/fpr.h"

namespace fd::falcon {

class KeygenGaussian {
 public:
  explicit KeygenGaussian(double sigma);

  [[nodiscard]] std::int32_t sample(RandomSource& rng) const;
  // Fills a polynomial of n coefficients.
  void sample_poly(RandomSource& rng, std::vector<std::int32_t>& out) const;

 private:
  std::vector<std::uint64_t> cdt_;  // cumulative, 63-bit scale
  std::int32_t tail_ = 0;           // support is [-tail, +tail]
};

class SamplerZ {
 public:
  SamplerZ(double sigma_min, RandomSource& rng);

  // Sample z ~ D_{Z, mu, sigma_prime}. sigma_prime must lie in
  // [sigma_min, 1.8205...] (the ffLDL leaf range).
  [[nodiscard]] std::int64_t sample(fpr::Fpr mu, fpr::Fpr sigma_prime);

  // Exposed for unit tests.
  [[nodiscard]] int base_sampler();
  [[nodiscard]] bool ber_exp(fpr::Fpr x, fpr::Fpr ccs);

 private:
  fpr::Fpr sigma_min_;
  RandomSource& rng_;
};

}  // namespace fd::falcon
