#pragma once
// FALCON's negacyclic FFT over Fpr.
//
// Polynomials live in R = Q[x]/(x^n + 1), n a power of two. The FFT
// evaluates a real-coefficient polynomial at the n complex roots of
// x^n + 1; by conjugate symmetry only n/2 evaluations are stored.
// Layout matches FALCON: an n-element Fpr array where slot k holds
// Re(f(zeta_k)) and slot k + n/2 holds Im(f(zeta_k)), for the n/2 roots
// zeta_k in the upper half plane. All arithmetic goes through the
// instrumented soft-float ops, so FFT activity shows up in captured
// traces exactly as it does on the paper's target device.

#include <cstdint>
#include <span>
#include <vector>

#include "fpr/fpr.h"

namespace fd::fft {

using fpr::Fpr;

// In-place forward FFT of an n-coefficient real polynomial (n = 2^logn,
// logn in [1, 10]).
void fft(std::span<Fpr> f, unsigned logn);
// In-place inverse FFT, exact inverse of fft().
void ifft(std::span<Fpr> f, unsigned logn);

// Pointwise complex operations in FFT representation (all in place on a).
void poly_add(std::span<Fpr> a, std::span<const Fpr> b, unsigned logn);
void poly_sub(std::span<Fpr> a, std::span<const Fpr> b, unsigned logn);
void poly_neg(std::span<Fpr> a, unsigned logn);
// Hermitian adjoint: a(x) -> a(1/x), i.e. complex conjugation per slot.
void poly_adj_fft(std::span<Fpr> a, unsigned logn);
void poly_mul_fft(std::span<Fpr> a, std::span<const Fpr> b, unsigned logn);
// a *= adj(b)
void poly_muladj_fft(std::span<Fpr> a, std::span<const Fpr> b, unsigned logn);
// a *= adj(a) (result is real in each slot; imaginary parts set to 0).
void poly_mulselfadj_fft(std::span<Fpr> a, unsigned logn);
void poly_mulconst(std::span<Fpr> a, Fpr c, unsigned logn);
void poly_div_fft(std::span<Fpr> a, std::span<const Fpr> b, unsigned logn);
// a = 1 / (a*adj(a) + b*adj(b)), computed slot-wise (real-valued).
void poly_invnorm2_fft(std::span<Fpr> d, std::span<const Fpr> a, std::span<const Fpr> b,
                       unsigned logn);
// d = a*adj(b) + c*adj(e) -- the "F*adj(f) + G*adj(g)" shape of Babai.
void poly_add_muladj_fft(std::span<Fpr> d, std::span<const Fpr> a, std::span<const Fpr> b,
                         std::span<const Fpr> c, std::span<const Fpr> e, unsigned logn);
// a *= b where b is real-valued per slot (imaginary halves of b ignored).
void poly_mul_autoadj_fft(std::span<Fpr> a, std::span<const Fpr> b, unsigned logn);
void poly_div_autoadj_fft(std::span<Fpr> a, std::span<const Fpr> b, unsigned logn);

// Split/merge: the change of basis between f(x) mod x^n+1 and the pair
// (f0, f1) with f(x) = f0(x^2) + x*f1(x^2), both in FFT representation.
void poly_split_fft(std::span<Fpr> f0, std::span<Fpr> f1, std::span<const Fpr> f, unsigned logn);
void poly_merge_fft(std::span<Fpr> f, std::span<const Fpr> f0, std::span<const Fpr> f1,
                    unsigned logn);

// LDL decomposition of the self-adjoint 2x2 Gram matrix [[g00, g01],
// [adj(g01), g11]]: computes l10 and d11 (d00 == g00 is implicit).
void poly_ldl_fft(std::span<const Fpr> g00, std::span<Fpr> g01, std::span<Fpr> g11,
                  unsigned logn);

// Convenience owning buffer for FFT-domain polynomials.
using PolyFft = std::vector<Fpr>;

// The k-th FFT root (bit-reversed enumeration as used by fft()): returns
// the complex root e^(i*pi*(2*br(k)+1)/n) used in slot k. Exposed for the
// attack's known-input computation and for tests.
struct Cplx {
  Fpr re;
  Fpr im;
};
[[nodiscard]] Cplx fft_root(unsigned slot, unsigned logn);

}  // namespace fd::fft
