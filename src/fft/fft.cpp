#include "fft/fft.h"

#include <array>
#include <cassert>
#include <cmath>

namespace fd::fft {

using fpr::fpr_add;
using fpr::fpr_div;
using fpr::fpr_half;
using fpr::fpr_inv;
using fpr::fpr_mul;
using fpr::fpr_neg;
using fpr::fpr_sub;
using fpr::kOne;

namespace {

constexpr unsigned kMaxLogn = 10;
constexpr std::size_t kGmSize = std::size_t{1} << kMaxLogn;  // complex entries

// Bit reversal over kMaxLogn bits.
constexpr unsigned brev10(unsigned x) {
  unsigned r = 0;
  for (unsigned i = 0; i < kMaxLogn; ++i) {
    r = (r << 1) | (x & 1);
    x >>= 1;
  }
  return r;
}

struct GmTable {
  // gm[2k], gm[2k+1]: real/imag of w^brev(k), w = exp(i*pi/1024).
  std::array<Fpr, 2 * kGmSize> v;
  GmTable() {
    const long double pi = std::acos(-1.0L);
    for (unsigned k = 0; k < kGmSize; ++k) {
      const long double angle =
          pi * static_cast<long double>(brev10(k)) / static_cast<long double>(kGmSize);
      v[2 * k] = Fpr::from_double(static_cast<double>(std::cos(angle)));
      v[2 * k + 1] = Fpr::from_double(static_cast<double>(std::sin(angle)));
    }
  }
};

const GmTable& gm() {
  static const GmTable table;
  return table;
}

// Explicitly sequenced so the leakage event order is deterministic
// (function-argument evaluation order is unspecified in C++).
inline void cplx_mul(Fpr& dre, Fpr& dim, Fpr are, Fpr aim, Fpr bre, Fpr bim) {
  const Fpr t_rr = fpr_mul(are, bre);
  const Fpr t_ii = fpr_mul(aim, bim);
  const Fpr t_ri = fpr_mul(are, bim);
  const Fpr t_ir = fpr_mul(aim, bre);
  dre = fpr_sub(t_rr, t_ii);
  dim = fpr_add(t_ri, t_ir);
}

inline void cplx_div(Fpr& dre, Fpr& dim, Fpr are, Fpr aim, Fpr bre, Fpr bim) {
  const Fpr norm = fpr_add(fpr_mul(bre, bre), fpr_mul(bim, bim));
  const Fpr inv = fpr_inv(norm);
  const Fpr re = fpr_mul(fpr_add(fpr_mul(are, bre), fpr_mul(aim, bim)), inv);
  const Fpr im = fpr_mul(fpr_sub(fpr_mul(aim, bre), fpr_mul(are, bim)), inv);
  dre = re;
  dim = im;
}

}  // namespace

void fft(std::span<Fpr> f, unsigned logn) {
  assert(logn >= 1 && logn <= kMaxLogn);
  const std::size_t n = std::size_t{1} << logn;
  const std::size_t hn = n >> 1;
  assert(f.size() == n);
  const auto& g = gm().v;

  std::size_t t = hn;
  for (unsigned u = 1, m = 2; u < logn; ++u, m <<= 1) {
    const std::size_t ht = t >> 1;
    const std::size_t hm = m >> 1;
    for (std::size_t i1 = 0, j1 = 0; i1 < hm; ++i1, j1 += t) {
      const std::size_t j2 = j1 + ht;
      const Fpr s_re = g[((m + i1) << 1) + 0];
      const Fpr s_im = g[((m + i1) << 1) + 1];
      for (std::size_t j = j1; j < j2; ++j) {
        const Fpr x_re = f[j];
        const Fpr x_im = f[j + hn];
        Fpr y_re = f[j + ht];
        Fpr y_im = f[j + ht + hn];
        cplx_mul(y_re, y_im, y_re, y_im, s_re, s_im);
        f[j] = fpr_add(x_re, y_re);
        f[j + hn] = fpr_add(x_im, y_im);
        f[j + ht] = fpr_sub(x_re, y_re);
        f[j + ht + hn] = fpr_sub(x_im, y_im);
      }
    }
    t = ht;
  }
}

void ifft(std::span<Fpr> f, unsigned logn) {
  assert(logn >= 1 && logn <= kMaxLogn);
  const std::size_t n = std::size_t{1} << logn;
  const std::size_t hn = n >> 1;
  assert(f.size() == n);
  const auto& g = gm().v;

  std::size_t t = 1;
  std::size_t m = n;
  for (unsigned u = logn; u > 1; --u) {
    const std::size_t hm = m >> 1;
    const std::size_t dt = t << 1;
    for (std::size_t i1 = 0, j1 = 0; i1 < (hm >> 1); ++i1, j1 += dt) {
      const std::size_t j2 = j1 + t;
      const Fpr s_re = g[((hm + i1) << 1) + 0];
      const Fpr s_im = fpr_neg(g[((hm + i1) << 1) + 1]);
      for (std::size_t j = j1; j < j2; ++j) {
        const Fpr x_re = f[j];
        const Fpr x_im = f[j + hn];
        const Fpr y_re = f[j + t];
        const Fpr y_im = f[j + t + hn];
        f[j] = fpr_add(x_re, y_re);
        f[j + hn] = fpr_add(x_im, y_im);
        Fpr d_re = fpr_sub(x_re, y_re);
        Fpr d_im = fpr_sub(x_im, y_im);
        cplx_mul(d_re, d_im, d_re, d_im, s_re, s_im);
        f[j + t] = d_re;
        f[j + t + hn] = d_im;
      }
    }
    t = dt;
    m = hm;
  }
  // Undo the doubling of the logn-1 merge stages.
  const Fpr ni = Fpr::from_double(std::ldexp(1.0, -static_cast<int>(logn - 1)));
  for (std::size_t u = 0; u < n; ++u) f[u] = fpr_mul(f[u], ni);
}

void poly_add(std::span<Fpr> a, std::span<const Fpr> b, unsigned logn) {
  const std::size_t n = std::size_t{1} << logn;
  for (std::size_t u = 0; u < n; ++u) a[u] = fpr_add(a[u], b[u]);
}

void poly_sub(std::span<Fpr> a, std::span<const Fpr> b, unsigned logn) {
  const std::size_t n = std::size_t{1} << logn;
  for (std::size_t u = 0; u < n; ++u) a[u] = fpr_sub(a[u], b[u]);
}

void poly_neg(std::span<Fpr> a, unsigned logn) {
  const std::size_t n = std::size_t{1} << logn;
  for (std::size_t u = 0; u < n; ++u) a[u] = fpr_neg(a[u]);
}

void poly_adj_fft(std::span<Fpr> a, unsigned logn) {
  const std::size_t n = std::size_t{1} << logn;
  for (std::size_t u = n >> 1; u < n; ++u) a[u] = fpr_neg(a[u]);
}

void poly_mul_fft(std::span<Fpr> a, std::span<const Fpr> b, unsigned logn) {
  const std::size_t hn = std::size_t{1} << (logn - 1);
  for (std::size_t u = 0; u < hn; ++u) {
    Fpr re = a[u];
    Fpr im = a[u + hn];
    cplx_mul(re, im, re, im, b[u], b[u + hn]);
    a[u] = re;
    a[u + hn] = im;
  }
}

void poly_muladj_fft(std::span<Fpr> a, std::span<const Fpr> b, unsigned logn) {
  const std::size_t hn = std::size_t{1} << (logn - 1);
  for (std::size_t u = 0; u < hn; ++u) {
    Fpr re = a[u];
    Fpr im = a[u + hn];
    cplx_mul(re, im, re, im, b[u], fpr_neg(b[u + hn]));
    a[u] = re;
    a[u + hn] = im;
  }
}

void poly_mulselfadj_fft(std::span<Fpr> a, unsigned logn) {
  const std::size_t hn = std::size_t{1} << (logn - 1);
  for (std::size_t u = 0; u < hn; ++u) {
    const Fpr re = a[u];
    const Fpr im = a[u + hn];
    a[u] = fpr_add(fpr_mul(re, re), fpr_mul(im, im));
    a[u + hn] = fpr::kZero;
  }
}

void poly_mulconst(std::span<Fpr> a, Fpr c, unsigned logn) {
  const std::size_t n = std::size_t{1} << logn;
  for (std::size_t u = 0; u < n; ++u) a[u] = fpr_mul(a[u], c);
}

void poly_div_fft(std::span<Fpr> a, std::span<const Fpr> b, unsigned logn) {
  const std::size_t hn = std::size_t{1} << (logn - 1);
  for (std::size_t u = 0; u < hn; ++u) {
    Fpr re = a[u];
    Fpr im = a[u + hn];
    cplx_div(re, im, re, im, b[u], b[u + hn]);
    a[u] = re;
    a[u + hn] = im;
  }
}

void poly_invnorm2_fft(std::span<Fpr> d, std::span<const Fpr> a, std::span<const Fpr> b,
                       unsigned logn) {
  const std::size_t hn = std::size_t{1} << (logn - 1);
  for (std::size_t u = 0; u < hn; ++u) {
    const Fpr na = fpr_add(fpr_mul(a[u], a[u]), fpr_mul(a[u + hn], a[u + hn]));
    const Fpr nb = fpr_add(fpr_mul(b[u], b[u]), fpr_mul(b[u + hn], b[u + hn]));
    d[u] = fpr_inv(fpr_add(na, nb));
    d[u + hn] = fpr::kZero;
  }
}

void poly_add_muladj_fft(std::span<Fpr> d, std::span<const Fpr> a, std::span<const Fpr> b,
                         std::span<const Fpr> c, std::span<const Fpr> e, unsigned logn) {
  const std::size_t hn = std::size_t{1} << (logn - 1);
  for (std::size_t u = 0; u < hn; ++u) {
    Fpr ab_re = a[u];
    Fpr ab_im = a[u + hn];
    cplx_mul(ab_re, ab_im, ab_re, ab_im, b[u], fpr_neg(b[u + hn]));
    Fpr ce_re = c[u];
    Fpr ce_im = c[u + hn];
    cplx_mul(ce_re, ce_im, ce_re, ce_im, e[u], fpr_neg(e[u + hn]));
    d[u] = fpr_add(ab_re, ce_re);
    d[u + hn] = fpr_add(ab_im, ce_im);
  }
}

void poly_mul_autoadj_fft(std::span<Fpr> a, std::span<const Fpr> b, unsigned logn) {
  const std::size_t hn = std::size_t{1} << (logn - 1);
  for (std::size_t u = 0; u < hn; ++u) {
    a[u] = fpr_mul(a[u], b[u]);
    a[u + hn] = fpr_mul(a[u + hn], b[u]);
  }
}

void poly_div_autoadj_fft(std::span<Fpr> a, std::span<const Fpr> b, unsigned logn) {
  const std::size_t hn = std::size_t{1} << (logn - 1);
  for (std::size_t u = 0; u < hn; ++u) {
    const Fpr inv = fpr_inv(b[u]);
    a[u] = fpr_mul(a[u], inv);
    a[u + hn] = fpr_mul(a[u + hn], inv);
  }
}

void poly_split_fft(std::span<Fpr> f0, std::span<Fpr> f1, std::span<const Fpr> f,
                    unsigned logn) {
  const std::size_t n = std::size_t{1} << logn;
  const std::size_t hn = n >> 1;
  const std::size_t qn = hn >> 1;
  const auto& g = gm().v;

  if (logn == 1) {
    // n == 2: one complex slot splits into two real length-1 polys.
    f0[0] = f[0];
    f1[0] = f[1];
    return;
  }
  for (std::size_t u = 0; u < qn; ++u) {
    const Fpr a_re = f[(u << 1) + 0];
    const Fpr a_im = f[(u << 1) + 0 + hn];
    const Fpr b_re = f[(u << 1) + 1];
    const Fpr b_im = f[(u << 1) + 1 + hn];

    Fpr t_re = fpr_add(a_re, b_re);
    Fpr t_im = fpr_add(a_im, b_im);
    f0[u] = fpr_half(t_re);
    f0[u + qn] = fpr_half(t_im);

    t_re = fpr_sub(a_re, b_re);
    t_im = fpr_sub(a_im, b_im);
    Fpr u_re, u_im;
    cplx_mul(u_re, u_im, t_re, t_im, g[((u + hn) << 1) + 0], fpr_neg(g[((u + hn) << 1) + 1]));
    f1[u] = fpr_half(u_re);
    f1[u + qn] = fpr_half(u_im);
  }
}

void poly_merge_fft(std::span<Fpr> f, std::span<const Fpr> f0, std::span<const Fpr> f1,
                    unsigned logn) {
  const std::size_t n = std::size_t{1} << logn;
  const std::size_t hn = n >> 1;
  const std::size_t qn = hn >> 1;
  const auto& g = gm().v;

  if (logn == 1) {
    f[0] = f0[0];
    f[1] = f1[0];
    return;
  }
  for (std::size_t u = 0; u < qn; ++u) {
    const Fpr a_re = f0[u];
    const Fpr a_im = f0[u + qn];
    Fpr b_re, b_im;
    cplx_mul(b_re, b_im, f1[u], f1[u + qn], g[((u + hn) << 1) + 0], g[((u + hn) << 1) + 1]);
    f[(u << 1) + 0] = fpr_add(a_re, b_re);
    f[(u << 1) + 0 + hn] = fpr_add(a_im, b_im);
    f[(u << 1) + 1] = fpr_sub(a_re, b_re);
    f[(u << 1) + 1 + hn] = fpr_sub(a_im, b_im);
  }
}

void poly_ldl_fft(std::span<const Fpr> g00, std::span<Fpr> g01, std::span<Fpr> g11,
                  unsigned logn) {
  const std::size_t hn = std::size_t{1} << (logn - 1);
  for (std::size_t u = 0; u < hn; ++u) {
    const Fpr g00_re = g00[u];
    const Fpr g00_im = g00[u + hn];
    const Fpr g01_re = g01[u];
    const Fpr g01_im = g01[u + hn];

    Fpr mu_re, mu_im;
    cplx_div(mu_re, mu_im, g01_re, g01_im, g00_re, g00_im);
    Fpr z_re, z_im;
    cplx_mul(z_re, z_im, mu_re, mu_im, g01_re, fpr_neg(g01_im));
    g11[u] = fpr_sub(g11[u], z_re);
    g11[u + hn] = fpr_sub(g11[u + hn], z_im);
    g01[u] = mu_re;
    g01[u + hn] = fpr_neg(mu_im);
  }
}

Cplx fft_root(unsigned slot, unsigned logn) {
  // Evaluate FFT(x): slot k of the FFT of the monomial x is the root
  // zeta_k itself. Computing it this way keeps the enumeration in sync
  // with fft() by construction.
  const std::size_t n = std::size_t{1} << logn;
  std::vector<Fpr> f(n, fpr::kZero);
  f[1] = kOne;
  fft(f, logn);
  return {f[slot], f[slot + n / 2]};
}

}  // namespace fd::fft
