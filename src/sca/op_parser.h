#pragma once
// Event-stream parser: segments a raw leakage capture into operation
// records (one per soft-float multiply/add), the attacker-side
// "disassembly" of a trace.
//
// The instrumented pipeline has data-dependent event counts in exactly
// one place: an fpr_mul with a zero operand emits only its sign event.
// The tag sequence disambiguates every case, so a captured stream can be
// segmented without knowing any operand -- which is what lets an
// adversary align a single long trace (e.g. of key expansion at boot)
// against the known control flow.

#include <cstddef>
#include <vector>

#include "fpr/leakage.h"

namespace fd::sca {

struct OpRecord {
  enum class Kind { kMul, kMulZero, kAdd, kTrigger, kNtt } kind;
  std::size_t first_event = 0;  // index into the source stream
  std::size_t num_events = 0;
};

// Segments a stream of leakage events into op records. Unrecognized
// prefixes are skipped one event at a time (robustness against partial
// captures).
[[nodiscard]] inline std::vector<OpRecord> parse_op_records(
    const std::vector<fpr::LeakageEvent>& events) {
  using T = fpr::LeakageTag;
  std::vector<OpRecord> ops;
  std::size_t i = 0;
  while (i < events.size()) {
    const T tag = events[i].tag;
    if (tag == T::kTriggerBegin || tag == T::kTriggerEnd) {
      ops.push_back({OpRecord::Kind::kTrigger, i, 1});
      ++i;
    } else if (tag == T::kMulSign) {
      // Full multiply: 17 events starting with sign then exponents;
      // zero-operand multiply: the sign event stands alone.
      if (i + 1 < events.size() && events[i + 1].tag == T::kMulExpX) {
        ops.push_back({OpRecord::Kind::kMul, i, 17});
        i += 17;
      } else {
        ops.push_back({OpRecord::Kind::kMulZero, i, 1});
        ++i;
      }
    } else if (tag == T::kAddAlignShift) {
      // An add that cancels to zero returns before its result event.
      const bool has_result = i + 2 < events.size() && events[i + 2].tag == T::kAddResult;
      ops.push_back({OpRecord::Kind::kAdd, i, has_result ? 3U : 2U});
      i += has_result ? 3 : 2;
    } else if (tag == T::kNttProd) {
      ops.push_back({OpRecord::Kind::kNtt, i, 2});
      i += 2;
    } else {
      ++i;  // stray event (e.g. NTT butterfly outputs)
    }
  }
  return ops;
}

}  // namespace fd::sca
