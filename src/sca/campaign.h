#pragma once
// Measurement campaigns: run the victim signer under the capture rig and
// produce aligned, per-coefficient trace sets together with the
// adversary's known inputs.
//
// The known-plaintext model of the paper: the adversary sees each output
// signature (salt r, s) and the EM emission of the signing run. From
// (r, message) it recomputes c = HashToPoint(r||m) and FFT(c) with the
// public code, so for every captured window it knows the exact 64-bit
// operand that was multiplied with the secret FFT(f) coefficient.

#include <cstdint>
#include <functional>
#include <vector>

#include "falcon/keys.h"
#include "falcon/sign.h"
#include "fpr/fpr.h"
#include "sca/device.h"

namespace fd::sca {

// The victim operation driven by a campaign; defaults to falcon::sign.
// Countermeasure studies substitute falcon::sign_masked here.
using SignerFn = std::function<falcon::Signature(const falcon::SecretKey&, std::string_view,
                                                 RandomSource&)>;

struct CapturedTrace {
  Trace trace;
  fpr::Fpr known_re;  // Re FFT(c)[slot], recomputed by the adversary
  fpr::Fpr known_im;  // Im FFT(c)[slot]
};

struct TraceSet {
  std::size_t slot = 0;  // complex slot index in [0, n/2)
  std::vector<CapturedTrace> traces;
};

struct CampaignConfig {
  std::size_t num_traces = 1000;
  DeviceConfig device;
  std::uint64_t seed = 1;  // drives victim randomness and device noise
  SignerFn signer;         // empty -> falcon::sign
  // Which basis-row multiplication to capture: each signing run triggers
  // every slot once per row, f-row (t1, FFT(-f)) first then F-row (t0,
  // FFT(-F)). 0 captures the f-row windows, 1 the F-row windows.
  unsigned row = 0;
};

// Captures the FFT(c) (.) FFT(-f) window of one complex slot over
// `num_traces` signing queries on distinct messages.
[[nodiscard]] TraceSet run_signing_campaign(const falcon::SecretKey& sk, std::size_t slot,
                                            const CampaignConfig& config);

// Captures every slot's window in each signing run (one signature feeds
// all n/2 per-coefficient trace sets). Memory is O(num_traces * n * 40).
[[nodiscard]] std::vector<TraceSet> run_full_campaign(const falcon::SecretKey& sk,
                                                      const CampaignConfig& config);

}  // namespace fd::sca
