#pragma once
// Measurement campaigns: run the victim signer under the capture rig and
// produce aligned, per-coefficient trace sets together with the
// adversary's known inputs.
//
// The known-plaintext model of the paper: the adversary sees each output
// signature (salt r, s) and the EM emission of the signing run. From
// (r, message) it recomputes c = HashToPoint(r||m) and FFT(c) with the
// public code, so for every captured window it knows the exact 64-bit
// operand that was multiplied with the secret FFT(f) coefficient.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "falcon/keys.h"
#include "falcon/sign.h"
#include "fpr/fpr.h"
#include "sca/device.h"
#include "sca/faults.h"
#include "tracestore/archive.h"

namespace fd::sca {

// The victim operation driven by a campaign; defaults to falcon::sign.
// Countermeasure studies substitute falcon::sign_masked here.
using SignerFn = std::function<falcon::Signature(const falcon::SecretKey&, std::string_view,
                                                 RandomSource&)>;

struct CapturedTrace {
  Trace trace;
  fpr::Fpr known_re;  // Re FFT(c)[slot], recomputed by the adversary
  fpr::Fpr known_im;  // Im FFT(c)[slot]
};

struct TraceSet {
  std::size_t slot = 0;  // complex slot index in [0, n/2)
  std::vector<CapturedTrace> traces;
};

struct CampaignConfig {
  std::size_t num_traces = 1000;
  DeviceConfig device;
  std::uint64_t seed = 1;  // drives victim randomness and device noise
  SignerFn signer;         // empty -> falcon::sign
  // Which basis-row multiplication to capture: each signing run triggers
  // every slot once per row, f-row (t1, FFT(-f)) first then F-row (t0,
  // FFT(-F)). 0 captures the f-row windows, 1 the F-row windows.
  unsigned row = 0;
  // Observability hook (no effect on captured data): when
  // `progress_every` > 0 and `progress` is set, the callback fires
  // after every that many signing queries, and once more at
  // completion. Campaigns also feed the global obs::MetricsRegistry
  // (sca.campaign.* counters/gauges) and the span histograms.
  std::function<void(std::size_t done, std::size_t total)> progress;
  std::size_t progress_every = 0;
  // Deterministic rig-failure injection (sca/faults.h). The all-zero
  // default is the pristine rig: capture behaves bit-identically to a
  // build without the fault layer. Applied by the full-campaign and
  // archive paths (drop/desync/saturate/glitch in-band, chunk damage
  // post-write); capture_fail_rate is the *caller's* retry surface
  // (recovery pipeline), never acted on here.
  FaultConfig faults;
  // Campaign-global index of this run's first query: sharded capture
  // sets it to the shard's range start so the fault plan keys on global
  // query indices and the shard decomposition never changes which
  // queries fault.
  std::size_t fault_query_offset = 0;
};

// Captures the FFT(c) (.) FFT(-f) window of one complex slot over
// `num_traces` signing queries on distinct messages.
[[nodiscard]] TraceSet run_signing_campaign(const falcon::SecretKey& sk, std::size_t slot,
                                            const CampaignConfig& config);

// Captures every slot's window in each signing run (one signature feeds
// all n/2 per-coefficient trace sets). Memory is O(num_traces * n * 40).
[[nodiscard]] std::vector<TraceSet> run_full_campaign(const falcon::SecretKey& sk,
                                                      const CampaignConfig& config);

// --- persistent capture (capture once, attack many) -----------------------
//
// The archive mode is the bit-exact twin of run_full_campaign: the same
// victim/device RNG streams, the same per-query slot order, but every
// (query, slot) window goes straight to disk as a tracestore record, so
// capture memory is O(n) per query regardless of num_traces. Shards
// captured under different seeds merge with tracestore::merge_archives.

// Archive metadata describing a campaign under this config.
[[nodiscard]] tracestore::ArchiveMeta make_archive_meta(const falcon::SecretKey& sk,
                                                        const CampaignConfig& config,
                                                        std::size_t samples_per_trace,
                                                        std::size_t traces_per_chunk);

struct ArchiveCampaignResult {
  std::size_t queries = 0;  // signing runs captured
  std::size_t records = 0;  // (query, slot) windows written
  bool ok = false;
  std::string error;
};
// Runs the campaign and streams it into `path` (.fdtrace). The trace
// length is taken from the first captured window; a signer whose window
// length varies across queries is rejected rather than written ragged.
[[nodiscard]] ArchiveCampaignResult run_campaign_to_archive(
    const falcon::SecretKey& sk, const CampaignConfig& config, const std::string& path,
    std::size_t traces_per_chunk = tracestore::kDefaultTracesPerChunk);

// --- sharded capture (src/exec) -------------------------------------------
//
// Parallel capture with a deterministic contract: the campaign's
// `num_traces` queries are cut into `num_shards` contiguous ranges, and
// shard i runs `run_campaign_to_archive` under the derived seed
// exec::split_seed(config.seed, i) -- an independent victim/device
// randomness stream per shard, fixed by (seed, shard index) alone.
// Shards execute on the pool in any order; the final archive is
// `tracestore::merge_archives` over the shard files in shard-index
// order, so its bytes are a pure function of (key, config, num_shards)
// -- identical at ANY worker count, including the serial pool-less
// path. tests/test_exec.cpp pins this byte-for-byte at 1, 2, and 7
// workers.
//
// Note the shard count, not the worker count, is part of the
// experiment's identity: resizing the pool never changes the data,
// changing num_shards deliberately does (different RNG streams).

struct ShardedCampaignConfig {
  CampaignConfig base;          // base.seed is the root seed of the shard tree
  std::size_t num_shards = 1;   // fixed shard plan (capped at base.num_traces)
  bool keep_shards = false;     // leave <path>.shard<i> files behind after the merge
};

struct ShardedCampaignResult {
  std::size_t queries = 0;   // signing runs captured across all shards
  std::size_t records = 0;   // (query, slot) windows written
  std::size_t shards = 0;
  std::vector<std::string> shard_paths;  // populated when keep_shards
  bool ok = false;
  std::string error;
};

// Runs the sharded campaign on `pool` (null -> serial, same results)
// and merges into `path`. Progress callbacks of `config.base` fire with
// campaign-global query counts; under a real pool they arrive from
// worker threads (the obs layer and the callback must be thread-safe).
[[nodiscard]] ShardedCampaignResult run_campaign_sharded(
    const falcon::SecretKey& sk, const ShardedCampaignConfig& config, const std::string& path,
    exec::ThreadPool* pool, std::size_t traces_per_chunk = tracestore::kDefaultTracesPerChunk);

// Adversary-side reload: reconstructs the in-memory TraceSet of one
// slot from an archive (rewinds, then filters the stream). Memory is
// O(records of that slot), not the whole archive.
[[nodiscard]] bool load_trace_set(tracestore::ArchiveReader& reader, std::size_t slot,
                                  TraceSet& out);
// All slots at once -- the archive equivalent of run_full_campaign's
// return value (and the same O(records) memory as the in-memory path).
[[nodiscard]] bool load_all_trace_sets(tracestore::ArchiveReader& reader,
                                       std::vector<TraceSet>& out);
// Subset demux: ONE rewind+scan fills out[i] with slots[i]'s records
// (the single-pass alternative to calling load_trace_set per slot).
// Slots must be unique and in range; out[i].traces holds slot slots[i]
// in archive order, exactly as load_trace_set would have produced.
// Memory is O(records of the requested slots).
[[nodiscard]] bool load_trace_sets_for(tracestore::ArchiveReader& reader,
                                       std::span<const std::size_t> slots,
                                       std::vector<TraceSet>& out);

}  // namespace fd::sca
