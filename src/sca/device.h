#pragma once
// Synthetic EM device model.
//
// Substitutes for the paper's physical rig (ARM Cortex-M4 + RISC-EMP430LS
// near-field probe + PicoScope at 500 MS/s): each leakage event -- one
// intermediate value of the soft-float pipeline -- becomes
// `samples_per_event` trace samples with amplitude
//     alpha * HW(value) + N(0, noise_sigma^2),
// the Hamming-weight leakage model the paper itself assumes for its
// CPA hypotheses (eq. (1)). noise_sigma is calibrated so that the
// sign-bit measurements-to-disclosure lands near the paper's ~9k traces
// (see DESIGN.md); all other components then fall out of the model.
//
// Countermeasure knobs double as the Section V.B ablations:
//  - constant_weight: "hiding" -- amplitude no longer depends on data;
//  - jitter_max:      random misalignment per trace;
//  - extra noise:     noise amplification.

#include <bit>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "fpr/leakage.h"

namespace fd::sca {

struct Trace {
  std::vector<float> samples;
};

struct DeviceConfig {
  double alpha = 1.0;           // amplitude per Hamming-weight unit
  double noise_sigma = 12.0;    // additive Gaussian noise, same units
  unsigned samples_per_event = 1;
  unsigned jitter_max = 0;      // uniform [0, jitter_max] shift per trace
  bool constant_weight = false; // hiding countermeasure
};

class EmDeviceModel {
 public:
  explicit EmDeviceModel(DeviceConfig config, std::uint64_t noise_seed = 0x0DEC0DE)
      : config_(config), noise_rng_(noise_seed) {}

  [[nodiscard]] const DeviceConfig& config() const { return config_; }

  // Synthesizes one noisy trace from a captured event window.
  [[nodiscard]] Trace synthesize(const std::vector<fpr::LeakageEvent>& events) {
    const unsigned spe = config_.samples_per_event;
    const std::size_t jitter =
        config_.jitter_max == 0 ? 0 : noise_rng_.uniform(config_.jitter_max + 1);
    Trace t;
    t.samples.assign(events.size() * spe + config_.jitter_max, 0.0F);
    for (std::size_t i = 0; i < events.size(); ++i) {
      const int hw = config_.constant_weight ? 32 : std::popcount(events[i].value);
      for (unsigned s = 0; s < spe; ++s) {
        t.samples[i * spe + s + jitter] =
            static_cast<float>(config_.alpha * hw);
      }
    }
    for (auto& v : t.samples) {
      v += static_cast<float>(config_.noise_sigma * noise_rng_.gaussian());
    }
    return t;
  }

 private:
  DeviceConfig config_;
  ChaCha20Prng noise_rng_;
};

// Fixed layout of one captured window: the signing code performs four
// fpr_mul (secret x known: re*re, im*im, re*im, im*re) followed by one
// fpr_sub and one fpr_add; with the zero-free operands of real traces
// each mul emits 17 events and each add 3. Sample indices below assume
// samples_per_event == 1 and no jitter.
namespace window {
inline constexpr std::size_t kEventsPerMul = 17;
inline constexpr std::size_t kEventsPerAdd = 3;
inline constexpr std::size_t kEventsPerWindow = 4 * kEventsPerMul + 2 * kEventsPerAdd;

// Offsets of tagged events inside one fpr_mul block.
inline constexpr std::size_t kOffSign = 0;
inline constexpr std::size_t kOffExpX = 1;
inline constexpr std::size_t kOffExpY = 2;
inline constexpr std::size_t kOffExpSum = 3;
inline constexpr std::size_t kOffXLo = 4;
inline constexpr std::size_t kOffXHi = 5;
inline constexpr std::size_t kOffYLo = 6;
inline constexpr std::size_t kOffYHi = 7;
inline constexpr std::size_t kOffProdLL = 8;
inline constexpr std::size_t kOffProdLH = 9;
inline constexpr std::size_t kOffAccZ1a = 10;
inline constexpr std::size_t kOffProdHL = 11;
inline constexpr std::size_t kOffAccZ1b = 12;
inline constexpr std::size_t kOffAccZ2 = 13;
inline constexpr std::size_t kOffProdHH = 14;
inline constexpr std::size_t kOffAccZu = 15;
inline constexpr std::size_t kOffResult = 16;

// Start of the i-th multiplication block (i in [0, 4)).
[[nodiscard]] constexpr std::size_t mul_base(unsigned i) { return i * kEventsPerMul; }

// The two multiplications whose x-operand is the secret real part are
// blocks 0 (known = Re c) and 2 (known = Im c); the imaginary part is
// blocks 1 (known = Im c) and 3 (known = Re c).
[[nodiscard]] constexpr std::size_t mul_block_for(bool imag_part, unsigned which) {
  return imag_part ? (which == 0 ? 1 : 3) : (which == 0 ? 0 : 2);
}
}  // namespace window

}  // namespace fd::sca
