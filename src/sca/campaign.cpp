#include "sca/campaign.h"

#include <string>

#include "common/rng.h"
#include "falcon/sign.h"
#include "fft/fft.h"
#include "sca/capture.h"

namespace fd::sca {

namespace {

using fpr::Fpr;

// Keeps the most recent f-row (even-occurrence) window per slot. A
// signing run triggers each slot once per basis row and per internal
// salt retry; the final even occurrence is the one matching the emitted
// signature's salt.
class LastWindowRecorder final : public fpr::LeakageSink {
 public:
  explicit LastWindowRecorder(std::size_t num_slots, unsigned row = 0)
      : row_(row), windows_(num_slots), occurrence_(num_slots, 0) {}

  void on_event(const fpr::LeakageEvent& ev) override {
    if (ev.tag == fpr::LeakageTag::kTriggerBegin) {
      const std::size_t slot = static_cast<std::size_t>(ev.value);
      if (slot < windows_.size()) {
        recording_ = (occurrence_[slot]++ % 2) == row_;
        if (recording_) {
          current_ = slot;
          windows_[slot].clear();
        }
      }
      return;
    }
    if (ev.tag == fpr::LeakageTag::kTriggerEnd) {
      recording_ = false;
      return;
    }
    if (recording_) windows_[current_].push_back(ev);
  }

  [[nodiscard]] const std::vector<fpr::LeakageEvent>& window(std::size_t slot) const {
    return windows_[slot];
  }

  void start_run() {
    std::fill(occurrence_.begin(), occurrence_.end(), 0U);
    recording_ = false;
  }

 private:
  unsigned row_;
  std::vector<std::vector<fpr::LeakageEvent>> windows_;
  std::vector<unsigned> occurrence_;
  std::size_t current_ = 0;
  bool recording_ = false;
};

// Adversary-side recomputation of FFT(c)[*] from public data.
std::vector<Fpr> known_fft_of_hash(const falcon::Signature& sig, std::string_view message,
                                   unsigned logn) {
  const auto c = falcon::hash_to_point(sig.salt, message, logn);
  std::vector<Fpr> cf(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) cf[i] = fpr::fpr_of(c[i]);
  fft::fft(cf, logn);
  return cf;
}

}  // namespace

TraceSet run_signing_campaign(const falcon::SecretKey& sk, std::size_t slot,
                              const CampaignConfig& config) {
  const unsigned logn = sk.params.logn;
  const std::size_t hn = sk.params.n >> 1;

  ChaCha20Prng victim_rng(config.seed ^ 0x5167);
  EmDeviceModel device(config.device, config.seed ^ 0xD01CE);
  LastWindowRecorder recorder(hn, config.row);
  const SignerFn signer = config.signer ? config.signer : SignerFn(&falcon::sign);

  TraceSet set;
  set.slot = slot;
  set.traces.reserve(config.num_traces);
  for (std::size_t d = 0; d < config.num_traces; ++d) {
    const std::string message = "trace-" + std::to_string(d);
    recorder.start_run();
    falcon::Signature sig;
    {
      fpr::ScopedLeakageSink scope(&recorder);
      sig = signer(sk, message, victim_rng);
    }
    const auto cf = known_fft_of_hash(sig, message, logn);
    CapturedTrace ct;
    ct.trace = device.synthesize(recorder.window(slot));
    ct.known_re = cf[slot];
    ct.known_im = cf[slot + hn];
    set.traces.push_back(std::move(ct));
  }
  return set;
}

std::vector<TraceSet> run_full_campaign(const falcon::SecretKey& sk,
                                        const CampaignConfig& config) {
  const unsigned logn = sk.params.logn;
  const std::size_t hn = sk.params.n >> 1;

  ChaCha20Prng victim_rng(config.seed ^ 0x5167);
  EmDeviceModel device(config.device, config.seed ^ 0xD01CE);
  LastWindowRecorder recorder(hn, config.row);
  const SignerFn signer = config.signer ? config.signer : SignerFn(&falcon::sign);

  std::vector<TraceSet> sets(hn);
  for (std::size_t s = 0; s < hn; ++s) {
    sets[s].slot = s;
    sets[s].traces.reserve(config.num_traces);
  }
  for (std::size_t d = 0; d < config.num_traces; ++d) {
    const std::string message = "trace-" + std::to_string(d);
    recorder.start_run();
    falcon::Signature sig;
    {
      fpr::ScopedLeakageSink scope(&recorder);
      sig = signer(sk, message, victim_rng);
    }
    const auto cf = known_fft_of_hash(sig, message, logn);
    for (std::size_t s = 0; s < hn; ++s) {
      CapturedTrace ct;
      ct.trace = device.synthesize(recorder.window(s));
      ct.known_re = cf[s];
      ct.known_im = cf[s + hn];
      sets[s].traces.push_back(std::move(ct));
    }
  }
  return sets;
}

}  // namespace fd::sca
