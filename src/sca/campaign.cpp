#include "sca/campaign.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "common/rng.h"
#include "exec/parallel_for.h"
#include "exec/seed_split.h"
#include "falcon/sign.h"
#include "fft/fft.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/span.h"
#include "sca/capture.h"

namespace fd::sca {

namespace {

using fpr::Fpr;

// Keeps the most recent f-row (even-occurrence) window per slot. A
// signing run triggers each slot once per basis row and per internal
// salt retry; the final even occurrence is the one matching the emitted
// signature's salt.
class LastWindowRecorder final : public fpr::LeakageSink {
 public:
  explicit LastWindowRecorder(std::size_t num_slots, unsigned row = 0)
      : row_(row), windows_(num_slots), occurrence_(num_slots, 0) {}

  void on_event(const fpr::LeakageEvent& ev) override {
    if (ev.tag == fpr::LeakageTag::kTriggerBegin) {
      const std::size_t slot = static_cast<std::size_t>(ev.value);
      if (slot < windows_.size()) {
        recording_ = (occurrence_[slot]++ % 2) == row_;
        if (recording_) {
          current_ = slot;
          windows_[slot].clear();
        }
      }
      return;
    }
    if (ev.tag == fpr::LeakageTag::kTriggerEnd) {
      recording_ = false;
      return;
    }
    if (recording_) windows_[current_].push_back(ev);
  }

  [[nodiscard]] const std::vector<fpr::LeakageEvent>& window(std::size_t slot) const {
    return windows_[slot];
  }

  void start_run() {
    std::fill(occurrence_.begin(), occurrence_.end(), 0U);
    recording_ = false;
  }

  // Signing attempts of the last run: each attempt (including internal
  // salt retries the signer makes before a signature passes its norm
  // check) triggers every slot once per basis row, i.e. twice.
  [[nodiscard]] std::size_t run_attempts() const {
    return occurrence_.empty() ? 0 : occurrence_[0] / 2;
  }

 private:
  unsigned row_;
  std::vector<std::vector<fpr::LeakageEvent>> windows_;
  std::vector<unsigned> occurrence_;
  std::size_t current_ = 0;
  bool recording_ = false;
};

// Per-campaign telemetry shared by the in-memory and archive capture
// loops: query/record/retry counters, end-of-campaign throughput
// gauges, and the user-facing progress callback. The callback fires in
// every build; the metric calls compile to no-ops under FD_OBS=OFF.
class CampaignTelemetry {
 public:
  CampaignTelemetry(const CampaignConfig& config, std::string_view mode)
      : config_(config),
        mode_(mode),
        span_("sca.campaign"),
        queries_(obs::MetricsRegistry::global().counter("sca.campaign.queries")),
        records_(obs::MetricsRegistry::global().counter("sca.campaign.records")),
        retries_(obs::MetricsRegistry::global().counter("sca.campaign.sign_retries")) {}

  void on_query(const LastWindowRecorder& recorder, std::size_t done,
                std::size_t records_added) {
    queries_.add(1);
    records_.add(records_added);
    const std::size_t attempts = recorder.run_attempts();
    if (attempts > 1) retries_.add(attempts - 1);
    if (config_.progress_every != 0 && config_.progress &&
        (done % config_.progress_every == 0 || done == config_.num_traces)) {
      config_.progress(done, config_.num_traces);
    }
  }

  void finish(std::size_t queries, std::size_t records) {
    const double us = span_.elapsed_us();
    if (us > 0.0) {
      auto& reg = obs::MetricsRegistry::global();
      reg.gauge("sca.campaign.queries_per_s").set(static_cast<double>(queries) * 1e6 / us);
      reg.gauge("sca.campaign.records_per_s").set(static_cast<double>(records) * 1e6 / us);
    }
    obs::event("sca.campaign")
        .with("mode", mode_)
        .with("queries", queries)
        .with("records", records)
        .with("wall_us", us)
        .emit();
  }

 private:
  const CampaignConfig& config_;
  std::string_view mode_;
  obs::Span span_;
  obs::Counter& queries_;
  obs::Counter& records_;
  obs::Counter& retries_;
};

// Adversary-side recomputation of FFT(c)[*] from public data.
std::vector<Fpr> known_fft_of_hash(const falcon::Signature& sig, std::string_view message,
                                   unsigned logn) {
  const auto c = falcon::hash_to_point(sig.salt, message, logn);
  std::vector<Fpr> cf(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) cf[i] = fpr::fpr_of(c[i]);
  fft::fft(cf, logn);
  return cf;
}

}  // namespace

TraceSet run_signing_campaign(const falcon::SecretKey& sk, std::size_t slot,
                              const CampaignConfig& config) {
  const unsigned logn = sk.params.logn;
  const std::size_t hn = sk.params.n >> 1;

  ChaCha20Prng victim_rng(config.seed ^ 0x5167);
  EmDeviceModel device(config.device, config.seed ^ 0xD01CE);
  LastWindowRecorder recorder(hn, config.row);
  const SignerFn signer = config.signer ? config.signer : SignerFn(&falcon::sign);

  TraceSet set;
  set.slot = slot;
  set.traces.reserve(config.num_traces);
  for (std::size_t d = 0; d < config.num_traces; ++d) {
    const std::string message = "trace-" + std::to_string(d);
    recorder.start_run();
    falcon::Signature sig;
    {
      fpr::ScopedLeakageSink scope(&recorder);
      sig = signer(sk, message, victim_rng);
    }
    const auto cf = known_fft_of_hash(sig, message, logn);
    CapturedTrace ct;
    ct.trace = device.synthesize(recorder.window(slot));
    ct.known_re = cf[slot];
    ct.known_im = cf[slot + hn];
    set.traces.push_back(std::move(ct));
  }
  return set;
}

tracestore::ArchiveMeta make_archive_meta(const falcon::SecretKey& sk,
                                          const CampaignConfig& config,
                                          std::size_t samples_per_trace,
                                          std::size_t traces_per_chunk) {
  tracestore::ArchiveMeta meta;
  meta.logn = sk.params.logn;
  meta.row = config.row;
  meta.num_slots = static_cast<std::uint32_t>(sk.params.n >> 1);
  meta.samples_per_trace = static_cast<std::uint32_t>(samples_per_trace);
  meta.traces_per_chunk = static_cast<std::uint32_t>(traces_per_chunk);
  meta.alpha = config.device.alpha;
  meta.noise_sigma = config.device.noise_sigma;
  meta.samples_per_event = config.device.samples_per_event;
  meta.jitter_max = config.device.jitter_max;
  if (config.device.constant_weight) meta.flags |= tracestore::kFlagConstantWeight;
  meta.seed = config.seed;
  return meta;
}

ArchiveCampaignResult run_campaign_to_archive(const falcon::SecretKey& sk,
                                              const CampaignConfig& config,
                                              const std::string& path,
                                              std::size_t traces_per_chunk) {
  const unsigned logn = sk.params.logn;
  const std::size_t hn = sk.params.n >> 1;

  ChaCha20Prng victim_rng(config.seed ^ 0x5167);
  EmDeviceModel device(config.device, config.seed ^ 0xD01CE);
  LastWindowRecorder recorder(hn, config.row);
  const SignerFn signer = config.signer ? config.signer : SignerFn(&falcon::sign);

  ArchiveCampaignResult out;
  CampaignTelemetry telemetry(config, "archive");
  const FaultPlan fplan(config.faults);
  tracestore::ArchiveWriter writer;
  tracestore::TraceRecord rec;
  for (std::size_t d = 0; d < config.num_traces; ++d) {
    const std::string message = "trace-" + std::to_string(d);
    recorder.start_run();
    falcon::Signature sig;
    {
      fpr::ScopedLeakageSink scope(&recorder);
      sig = signer(sk, message, victim_rng);
    }
    const std::uint64_t gq = config.fault_query_offset + d;
    const QueryFault qf = fplan.enabled() ? fplan.query_fault(gq) : QueryFault{};
    if (qf.drop) {
      // Missed trigger: the victim signed (its RNG stream advanced as
      // usual) but the scope captured nothing -- no records, no FFT(c)
      // recomputation, the query index simply never appears on disk.
      obs::MetricsRegistry::global().counter("sca.faults.dropped_queries").add(1);
      ++out.queries;
      telemetry.on_query(recorder, d + 1, 0);
      continue;
    }
    if (qf.desync != 0) {
      obs::MetricsRegistry::global().counter("sca.faults.desynced_queries").add(1);
    }
    if (qf.saturate) {
      obs::MetricsRegistry::global().counter("sca.faults.saturated_queries").add(1);
    }
    const auto cf = known_fft_of_hash(sig, message, logn);
    for (std::size_t s = 0; s < hn; ++s) {
      Trace trace = device.synthesize(recorder.window(s));
      if (!writer.is_open()) {
        // First captured window fixes the archive's trace length.
        const auto meta =
            make_archive_meta(sk, config, trace.samples.size(), traces_per_chunk);
        if (!writer.open(path, meta)) {
          out.error = writer.error();
          return out;
        }
      }
      if (trace.samples.size() != writer.meta().samples_per_trace) {
        out.error = "signer produced a ragged window length at query " +
                    std::to_string(d) + ", slot " + std::to_string(s);
        return out;
      }
      if (fplan.enabled()) apply_trace_faults(fplan, qf, gq, s, trace.samples);
      rec.slot = static_cast<std::uint32_t>(s);
      rec.index = static_cast<std::uint32_t>(d);
      rec.known_re_bits = cf[s].bits();
      rec.known_im_bits = cf[s + hn].bits();
      rec.samples = std::move(trace.samples);
      if (!writer.append(rec)) {
        out.error = writer.error();
        return out;
      }
      ++out.records;
    }
    ++out.queries;
    telemetry.on_query(recorder, d + 1, hn);
  }
  if (!writer.is_open()) {
    if (config.num_traces == 0) {
      out.error = "archive campaign needs at least one query";
      return out;
    }
    // Every query dropped (possible for a small shard under a harsh
    // plan): emit a valid empty archive so sharded merges still work.
    // The recorder holds the last run's windows, which fixes the length.
    const Trace probe = device.synthesize(recorder.window(0));
    const auto meta = make_archive_meta(sk, config, probe.samples.size(), traces_per_chunk);
    if (!writer.open(path, meta)) {
      out.error = writer.error();
      return out;
    }
  }
  if (!writer.close()) {
    out.error = writer.error();
    return out;
  }
  telemetry.finish(out.queries, out.records);
  if (config.faults.chunk_corrupt_rate > 0.0) {
    std::string cerr;
    if (!corrupt_archive_chunks(path, fplan, nullptr, &cerr)) {
      out.error = cerr;
      return out;
    }
  }
  out.ok = true;
  return out;
}

ShardedCampaignResult run_campaign_sharded(const falcon::SecretKey& sk,
                                           const ShardedCampaignConfig& config,
                                           const std::string& path, exec::ThreadPool* pool,
                                           std::size_t traces_per_chunk) {
  ShardedCampaignResult out;
  if (config.base.num_traces == 0) {
    out.error = "sharded campaign needs at least one query";
    return out;
  }
  const auto plan = exec::static_chunks(config.base.num_traces,
                                        std::max<std::size_t>(1, config.num_shards));
  out.shards = plan.size();

  obs::Span span("sca.campaign.sharded");
  // Campaign-global progress: shard-local callbacks report deltas into a
  // shared counter, and the user callback fires under a lock with the
  // aggregate count. Invocation order across shards is scheduler noise
  // (observability only -- captured data never depends on it).
  struct Progress {
    std::mutex mu;
    std::atomic<std::size_t> done{0};
  };
  auto progress = std::make_shared<Progress>();

  std::vector<ArchiveCampaignResult> shard_results(plan.size());
  std::vector<std::string> shard_paths(plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    shard_paths[i] = path + ".shard" + std::to_string(i);
  }

  exec::parallel_for(pool, plan.size(), [&](std::size_t i) {
    CampaignConfig shard_cfg = config.base;
    shard_cfg.num_traces = plan[i].size();
    shard_cfg.seed = exec::split_seed(config.base.seed, i);
    // Faults key on campaign-global query indices so the shard plan
    // never changes which queries fault; chunk damage is deferred to the
    // merged file (chunk ordinals are only meaningful there).
    shard_cfg.fault_query_offset = config.base.fault_query_offset + plan[i].begin;
    shard_cfg.faults.chunk_corrupt_rate = 0.0;
    if (config.base.progress) {
      const std::size_t total = config.base.num_traces;
      auto last = std::make_shared<std::size_t>(0);
      const auto user = config.base.progress;
      shard_cfg.progress = [progress, last, total, user](std::size_t done, std::size_t) {
        const std::size_t global =
            progress->done.fetch_add(done - *last, std::memory_order_relaxed) +
            (done - *last);
        *last = done;
        std::lock_guard<std::mutex> lock(progress->mu);
        user(global, total);
      };
    }
    shard_results[i] = run_campaign_to_archive(sk, shard_cfg, shard_paths[i], traces_per_chunk);
  });

  const auto cleanup = [&] {
    if (config.keep_shards) return;
    for (const auto& p : shard_paths) std::remove(p.c_str());
  };
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (!shard_results[i].ok) {
      out.error = "shard " + std::to_string(i) + ": " + shard_results[i].error;
      cleanup();
      return out;
    }
    out.queries += shard_results[i].queries;
    out.records += shard_results[i].records;
  }

  // Merge in shard-index order -- the deterministic reduction. The
  // barrier above guarantees every shard file is complete first.
  std::string merge_error;
  if (!tracestore::merge_archives(shard_paths, path, &merge_error)) {
    out.error = "merge: " + merge_error;
    cleanup();
    return out;
  }
  cleanup();
  // Chunk damage applies to the merged file: its chunk ordinals are the
  // experiment-visible ones (a pure function of key/config/num_shards),
  // so the damaged byte set is deterministic too.
  if (config.base.faults.chunk_corrupt_rate > 0.0) {
    std::string cerr;
    if (!corrupt_archive_chunks(path, FaultPlan(config.base.faults), nullptr, &cerr)) {
      out.error = cerr;
      return out;
    }
  }
  if (config.keep_shards) out.shard_paths = std::move(shard_paths);
  obs::event("sca.campaign.sharded")
      .with("shards", out.shards)
      .with("queries", out.queries)
      .with("records", out.records)
      .with("wall_us", span.elapsed_us())
      .emit();
  out.ok = true;
  return out;
}

bool load_trace_set(tracestore::ArchiveReader& reader, std::size_t slot, TraceSet& out) {
  if (!reader.is_open() || slot >= reader.meta().num_slots) return false;
  reader.rewind();
  out.slot = slot;
  out.traces.clear();
  tracestore::TraceRecord rec;
  while (reader.next(rec)) {
    if (rec.slot != slot) continue;
    CapturedTrace ct;
    ct.trace.samples = std::move(rec.samples);
    ct.known_re = Fpr::from_bits(rec.known_re_bits);
    ct.known_im = Fpr::from_bits(rec.known_im_bits);
    out.traces.push_back(std::move(ct));
  }
  return true;
}

bool load_all_trace_sets(tracestore::ArchiveReader& reader, std::vector<TraceSet>& out) {
  if (!reader.is_open()) return false;
  reader.rewind();
  const std::size_t hn = reader.meta().num_slots;
  out.assign(hn, TraceSet{});
  for (std::size_t s = 0; s < hn; ++s) out[s].slot = s;
  tracestore::TraceRecord rec;
  while (reader.next(rec)) {
    if (rec.slot >= hn) continue;  // defensive: record from a foreign layout
    CapturedTrace ct;
    ct.trace.samples = std::move(rec.samples);
    ct.known_re = Fpr::from_bits(rec.known_re_bits);
    ct.known_im = Fpr::from_bits(rec.known_im_bits);
    out[rec.slot].traces.push_back(std::move(ct));
  }
  return true;
}

bool load_trace_sets_for(tracestore::ArchiveReader& reader,
                         std::span<const std::size_t> slots, std::vector<TraceSet>& out) {
  if (!reader.is_open()) return false;
  const std::size_t hn = reader.meta().num_slots;
  constexpr std::size_t kUnrouted = static_cast<std::size_t>(-1);
  std::vector<std::size_t> route(hn, kUnrouted);  // slot -> out index
  out.assign(slots.size(), TraceSet{});
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const std::size_t s = slots[i];
    if (s >= hn || route[s] != kUnrouted) return false;  // out of range / duplicate
    route[s] = i;
    out[i].slot = s;
  }
  reader.rewind();
  tracestore::TraceRecord rec;
  while (reader.next(rec)) {
    if (rec.slot >= hn || route[rec.slot] == kUnrouted) continue;
    CapturedTrace ct;
    ct.trace.samples = std::move(rec.samples);
    ct.known_re = Fpr::from_bits(rec.known_re_bits);
    ct.known_im = Fpr::from_bits(rec.known_im_bits);
    out[route[rec.slot]].traces.push_back(std::move(ct));
  }
  return true;
}

std::vector<TraceSet> run_full_campaign(const falcon::SecretKey& sk,
                                        const CampaignConfig& config) {
  const unsigned logn = sk.params.logn;
  const std::size_t hn = sk.params.n >> 1;

  ChaCha20Prng victim_rng(config.seed ^ 0x5167);
  EmDeviceModel device(config.device, config.seed ^ 0xD01CE);
  LastWindowRecorder recorder(hn, config.row);
  const SignerFn signer = config.signer ? config.signer : SignerFn(&falcon::sign);

  CampaignTelemetry telemetry(config, "inmemory");
  const FaultPlan fplan(config.faults);
  std::vector<TraceSet> sets(hn);
  for (std::size_t s = 0; s < hn; ++s) {
    sets[s].slot = s;
    sets[s].traces.reserve(config.num_traces);
  }
  std::size_t captured = 0;
  for (std::size_t d = 0; d < config.num_traces; ++d) {
    const std::string message = "trace-" + std::to_string(d);
    recorder.start_run();
    falcon::Signature sig;
    {
      fpr::ScopedLeakageSink scope(&recorder);
      sig = signer(sk, message, victim_rng);
    }
    const std::uint64_t gq = config.fault_query_offset + d;
    const QueryFault qf = fplan.enabled() ? fplan.query_fault(gq) : QueryFault{};
    if (qf.drop) {
      obs::MetricsRegistry::global().counter("sca.faults.dropped_queries").add(1);
      telemetry.on_query(recorder, d + 1, 0);
      continue;
    }
    if (qf.desync != 0) {
      obs::MetricsRegistry::global().counter("sca.faults.desynced_queries").add(1);
    }
    if (qf.saturate) {
      obs::MetricsRegistry::global().counter("sca.faults.saturated_queries").add(1);
    }
    const auto cf = known_fft_of_hash(sig, message, logn);
    for (std::size_t s = 0; s < hn; ++s) {
      CapturedTrace ct;
      ct.trace = device.synthesize(recorder.window(s));
      if (fplan.enabled()) apply_trace_faults(fplan, qf, gq, s, ct.trace.samples);
      ct.known_re = cf[s];
      ct.known_im = cf[s + hn];
      sets[s].traces.push_back(std::move(ct));
    }
    ++captured;
    telemetry.on_query(recorder, d + 1, hn);
  }
  telemetry.finish(config.num_traces, captured * hn);
  return sets;
}

}  // namespace fd::sca
