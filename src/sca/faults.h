#pragma once
// Deterministic fault injection for the synthetic capture rig.
//
// The paper's physical setup (Cortex-M4 victim, near-field probe,
// PicoScope at 500 MS/s) fails in mundane ways the synthetic
// EmDeviceModel never does: the scope misses a trigger and a whole
// signing query is lost, the trigger fires late and the window lands
// tens of samples off, the front-end clips, a neighbouring switcher
// glitches a record, a chunk of the capture file is written damaged.
// This layer injects exactly those failure modes -- *deterministically*.
//
// Determinism contract (DESIGN.md section 9 extended by section 10):
// every fault decision is a pure function of (FaultConfig.seed, the
// campaign-global query index, and -- for record/chunk-granular faults
// -- the slot or chunk ordinal), derived with the same SplitMix64
// finalizer the exec layer uses for seed splitting. No RNG state is
// threaded through capture, so a faulted campaign stays byte-identical
// at any worker count, and sharded captures agree with the serial path
// because shards key faults by their global query offsets.
//
// Fault taxonomy:
//   drop      -- missed trigger: every record of the query vanishes;
//   desync    -- gross misalignment, far beyond DeviceConfig::jitter_max:
//                the window is shifted by [desync_min, desync_max]
//                samples (signal pushed out of frame, unrecoverable --
//                the quality gate's job is to reject it);
//   saturate  -- front-end clipping: samples clamp to +-saturate_level;
//   glitch    -- a spike of glitch_amplitude on one sample of a record;
//   chunk     -- a payload byte of an archive chunk is flipped after the
//                write (the CRC policy of src/tracestore detects and
//                skips it);
//   capture   -- the whole capture round fails before any data flows
//                (rig down); the recovery pipeline retries with
//                exponential backoff.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sca/device.h"

namespace fd::sca {

struct FaultConfig {
  double drop_rate = 0.0;        // P[query dropped: missed trigger]
  double desync_rate = 0.0;      // P[query grossly misaligned]
  unsigned desync_min = 32;      // shift magnitude window, samples
  unsigned desync_max = 96;
  double saturate_rate = 0.0;    // P[query clipped]
  double saturate_level = 24.0;  // clip amplitude, trace units
  double glitch_rate = 0.0;      // P[record hit by a spike]
  double glitch_amplitude = 500.0;
  double chunk_corrupt_rate = 0.0;  // P[archive chunk damaged on write]
  double capture_fail_rate = 0.0;   // P[whole capture round fails]
  std::uint64_t seed = 0xFA017;     // fault-plan seed (independent knob)

  // True when any failure mode can fire; an all-zero config is the
  // pristine rig and compiles capture down to the unfaulted path.
  [[nodiscard]] bool any() const {
    return drop_rate > 0.0 || desync_rate > 0.0 || saturate_rate > 0.0 ||
           glitch_rate > 0.0 || chunk_corrupt_rate > 0.0 || capture_fail_rate > 0.0;
  }
};

// Faults afflicting one signing query's capture. drop is exclusive (a
// missed trigger produces no data to desync or clip); the others stack.
struct QueryFault {
  bool drop = false;
  unsigned desync = 0;  // 0 = aligned
  bool saturate = false;
  [[nodiscard]] bool clean() const { return !drop && desync == 0 && !saturate; }
};

// The seeded, stateless plan: every decision is recomputable from the
// config alone, in any order, from any thread.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(const FaultConfig& config) : config_(config) {}

  [[nodiscard]] const FaultConfig& config() const { return config_; }
  [[nodiscard]] bool enabled() const { return config_.any(); }

  // Query-granular faults, keyed by the campaign-global query index.
  [[nodiscard]] QueryFault query_fault(std::uint64_t query) const;
  // Record-granular glitch, keyed by (query, slot); the spike position
  // inside the record is keyed the same way.
  [[nodiscard]] bool glitch(std::uint64_t query, std::uint64_t slot) const;
  [[nodiscard]] std::size_t glitch_sample(std::uint64_t query, std::uint64_t slot,
                                          std::size_t num_samples) const;
  // Archive damage, keyed by the final archive's chunk ordinal.
  [[nodiscard]] bool corrupt_chunk(std::uint64_t chunk_ordinal) const;
  // Rig-down simulation, keyed by (capture round, retry attempt) so a
  // failed round's retry can deterministically succeed.
  [[nodiscard]] bool capture_fails(std::uint64_t round, std::uint64_t attempt) const;

 private:
  FaultConfig config_;
};

// Applies the in-band fault modes (desync / saturate / glitch) to one
// synthesized window in place. Dropping is the caller's job (it must
// skip the record entirely), chunk corruption happens post-write via
// corrupt_archive_chunks.
void apply_trace_faults(const FaultPlan& plan, const QueryFault& qf, std::uint64_t query,
                        std::uint64_t slot, std::vector<float>& samples);

// Post-write archive damage: XORs one payload byte of every chunk the
// plan selects (the CRC then fails and readers skip the chunk). Returns
// false only on I/O errors; `corrupted` receives how many chunks were
// hit. Deterministic: two calls on identical files damage identical
// bytes, so corrupting is itself reproducible.
[[nodiscard]] bool corrupt_archive_chunks(const std::string& path, const FaultPlan& plan,
                                          std::size_t* corrupted = nullptr,
                                          std::string* error = nullptr);

// Parses a CLI fault-plan spec: comma-separated key=value pairs, e.g.
//   "drop=0.1,desync=0.05,saturate=0.02,glitch=0.01,chunk=0.02,fail=0.25,seed=0xF"
// Keys: drop desync desync_min desync_max saturate saturate_level
//       glitch glitch_amplitude chunk fail seed. Unknown keys and
//       malformed values fail with a message; an empty spec is the
//       pristine config.
[[nodiscard]] bool parse_fault_plan(std::string_view spec, FaultConfig& out,
                                    std::string* error = nullptr);

}  // namespace fd::sca
