#include "sca/faults.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "exec/seed_split.h"
#include "obs/metrics.h"
#include "tracestore/archive.h"

namespace fd::sca {

namespace {

// Domain-separation tags: each failure mode draws from its own lane of
// the plan seed so the modes are independent of one another.
enum : std::uint64_t {
  kTagDrop = 0xD301,
  kTagDesync = 0xD302,
  kTagDesyncMag = 0xD303,
  kTagSaturate = 0xD304,
  kTagGlitch = 0xD305,
  kTagGlitchPos = 0xD306,
  kTagChunk = 0xD307,
  kTagCapture = 0xD308,
};

// One uniform draw in [0, 1) from (seed, tag, a, b). mix64 is the
// SplitMix64 finalizer of exec/seed_split.h -- the same primitive the
// sharded-seed tree uses, for the same reason: stateless determinism.
[[nodiscard]] std::uint64_t draw_bits(std::uint64_t seed, std::uint64_t tag, std::uint64_t a,
                                      std::uint64_t b = 0) {
  return exec::mix64(exec::mix64(seed ^ exec::mix64(tag)) ^ exec::mix64(a) ^
                     exec::mix64(exec::mix64(b) + 1));
}

[[nodiscard]] double draw_unit(std::uint64_t seed, std::uint64_t tag, std::uint64_t a,
                               std::uint64_t b = 0) {
  return static_cast<double>(draw_bits(seed, tag, a, b) >> 11) * 0x1.0p-53;
}

}  // namespace

QueryFault FaultPlan::query_fault(std::uint64_t query) const {
  QueryFault qf;
  if (!enabled()) return qf;
  const std::uint64_t s = config_.seed;
  if (config_.drop_rate > 0.0 && draw_unit(s, kTagDrop, query) < config_.drop_rate) {
    qf.drop = true;
    return qf;  // a missed trigger leaves nothing to desync or clip
  }
  if (config_.desync_rate > 0.0 && draw_unit(s, kTagDesync, query) < config_.desync_rate) {
    const unsigned lo = std::min(config_.desync_min, config_.desync_max);
    const unsigned hi = std::max(config_.desync_min, config_.desync_max);
    qf.desync = lo + static_cast<unsigned>(draw_bits(s, kTagDesyncMag, query) %
                                           (static_cast<std::uint64_t>(hi - lo) + 1));
    if (qf.desync == 0) qf.desync = 1;  // "desynced" must actually move the window
  }
  if (config_.saturate_rate > 0.0 &&
      draw_unit(s, kTagSaturate, query) < config_.saturate_rate) {
    qf.saturate = true;
  }
  return qf;
}

bool FaultPlan::glitch(std::uint64_t query, std::uint64_t slot) const {
  return config_.glitch_rate > 0.0 &&
         draw_unit(config_.seed, kTagGlitch, query, slot) < config_.glitch_rate;
}

std::size_t FaultPlan::glitch_sample(std::uint64_t query, std::uint64_t slot,
                                     std::size_t num_samples) const {
  if (num_samples == 0) return 0;
  return static_cast<std::size_t>(draw_bits(config_.seed, kTagGlitchPos, query, slot) %
                                  num_samples);
}

bool FaultPlan::corrupt_chunk(std::uint64_t chunk_ordinal) const {
  return config_.chunk_corrupt_rate > 0.0 &&
         draw_unit(config_.seed, kTagChunk, chunk_ordinal) < config_.chunk_corrupt_rate;
}

bool FaultPlan::capture_fails(std::uint64_t round, std::uint64_t attempt) const {
  return config_.capture_fail_rate > 0.0 &&
         draw_unit(config_.seed, kTagCapture, round, attempt) < config_.capture_fail_rate;
}

void apply_trace_faults(const FaultPlan& plan, const QueryFault& qf, std::uint64_t query,
                        std::uint64_t slot, std::vector<float>& samples) {
  if (samples.empty()) return;
  if (qf.desync > 0) {
    // Late trigger: the window content slides right by `desync` samples;
    // what the scope recorded before the (late) signal is baseline, and
    // the tail of the real window was never captured.
    const std::size_t d = std::min<std::size_t>(qf.desync, samples.size());
    for (std::size_t i = samples.size(); i-- > d;) samples[i] = samples[i - d];
    std::fill(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(d), 0.0F);
  }
  if (qf.saturate) {
    const float lim = static_cast<float>(plan.config().saturate_level);
    for (auto& v : samples) v = std::clamp(v, -lim, lim);
  }
  if (plan.glitch(query, slot)) {
    samples[plan.glitch_sample(query, slot, samples.size())] +=
        static_cast<float>(plan.config().glitch_amplitude);
    obs::MetricsRegistry::global().counter("sca.faults.glitched_records").add(1);
  }
}

bool corrupt_archive_chunks(const std::string& path, const FaultPlan& plan,
                            std::size_t* corrupted, std::string* error) {
  if (corrupted != nullptr) *corrupted = 0;
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + path;
    return false;
  };
  if (plan.config().chunk_corrupt_rate <= 0.0) return true;

  // The record size comes from the header; chunk sizes from each chunk
  // header -- the same walk ArchiveReader does, but byte-surgical.
  tracestore::ArchiveMeta meta;
  {
    tracestore::ArchiveReader probe;
    if (!probe.open(path)) return fail("corrupt_archive_chunks: " + probe.error());
    meta = probe.meta();
  }
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) return fail("corrupt_archive_chunks: cannot reopen");
  const std::size_t record_bytes = meta.record_bytes();
  long pos = static_cast<long>(tracestore::kHeaderBytes);
  std::uint64_t ordinal = 0;
  std::size_t hits = 0;
  for (;;) {
    std::uint8_t hdr[tracestore::kChunkHeaderBytes];
    if (std::fseek(f, pos, SEEK_SET) != 0) break;
    if (std::fread(hdr, 1, sizeof(hdr), f) != sizeof(hdr)) break;  // truncated tail: done
    const std::uint32_t record_count = static_cast<std::uint32_t>(hdr[4]) |
                                       static_cast<std::uint32_t>(hdr[5]) << 8 |
                                       static_cast<std::uint32_t>(hdr[6]) << 16 |
                                       static_cast<std::uint32_t>(hdr[7]) << 24;
    const std::size_t payload = static_cast<std::size_t>(record_count) * record_bytes;
    if (payload > 0 && plan.corrupt_chunk(ordinal)) {
      const long off = pos + static_cast<long>(tracestore::kChunkHeaderBytes) +
                       static_cast<long>(exec::mix64(plan.config().seed ^ ordinal) % payload);
      std::uint8_t byte = 0;
      if (std::fseek(f, off, SEEK_SET) != 0 || std::fread(&byte, 1, 1, f) != 1) {
        std::fclose(f);
        return fail("corrupt_archive_chunks: short chunk payload");
      }
      byte ^= 0xA5;
      if (std::fseek(f, off, SEEK_SET) != 0 || std::fwrite(&byte, 1, 1, f) != 1) {
        std::fclose(f);
        return fail("corrupt_archive_chunks: write failed");
      }
      ++hits;
    }
    pos += static_cast<long>(tracestore::kChunkHeaderBytes) + static_cast<long>(payload);
    ++ordinal;
  }
  std::fclose(f);
  if (hits > 0) {
    obs::MetricsRegistry::global().counter("sca.faults.chunks_corrupted").add(hits);
  }
  if (corrupted != nullptr) *corrupted = hits;
  return true;
}

bool parse_fault_plan(std::string_view spec, FaultConfig& out, std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  FaultConfig cfg;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view pair = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return fail("fault plan: expected key=value, got '" + std::string(pair) + "'");
    }
    const std::string_view key = pair.substr(0, eq);
    const std::string value(pair.substr(eq + 1));
    char* end = nullptr;
    const double num = std::strtod(value.c_str(), &end);
    const bool numeric = end != nullptr && *end == '\0' && !value.empty();
    if (!numeric) {
      return fail("fault plan: bad value '" + value + "' for '" + std::string(key) + "'");
    }
    if (key == "drop") {
      cfg.drop_rate = num;
    } else if (key == "desync") {
      cfg.desync_rate = num;
    } else if (key == "desync_min") {
      cfg.desync_min = static_cast<unsigned>(num);
    } else if (key == "desync_max") {
      cfg.desync_max = static_cast<unsigned>(num);
    } else if (key == "saturate" || key == "sat") {
      cfg.saturate_rate = num;
    } else if (key == "saturate_level") {
      cfg.saturate_level = num;
    } else if (key == "glitch") {
      cfg.glitch_rate = num;
    } else if (key == "glitch_amplitude") {
      cfg.glitch_amplitude = num;
    } else if (key == "chunk") {
      cfg.chunk_corrupt_rate = num;
    } else if (key == "fail") {
      cfg.capture_fail_rate = num;
    } else if (key == "seed") {
      cfg.seed = std::strtoull(value.c_str(), nullptr, 0);
    } else {
      return fail("fault plan: unknown key '" + std::string(key) + "'");
    }
  }
  for (const double rate : {cfg.drop_rate, cfg.desync_rate, cfg.saturate_rate,
                            cfg.glitch_rate, cfg.chunk_corrupt_rate, cfg.capture_fail_rate}) {
    if (rate < 0.0 || rate > 1.0) return fail("fault plan: rates must be in [0, 1]");
  }
  out = cfg;
  return true;
}

}  // namespace fd::sca
