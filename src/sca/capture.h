#pragma once
// Leakage-event capture.
//
// EventWindowRecorder plays the role of the oscilloscope in the paper's
// setup: it is armed on a trigger marker (emitted by the signing code
// around each coefficient-wise multiplication), records the tagged
// intermediate values of the window, and disarms on the trigger end.
// The raw events are *device-internal* state; only the EmDeviceModel's
// noisy trace synthesis (device.h) is visible to the adversary.

#include <cstdint>
#include <vector>

#include "fpr/leakage.h"

namespace fd::sca {

class EventWindowRecorder final : public fpr::LeakageSink {
 public:
  // Records the window whose kTriggerBegin payload equals `slot`, on its
  // `occurrence`-th appearance (a FALCON signing run triggers each slot
  // twice: first for the f row, then for the F row).
  explicit EventWindowRecorder(std::uint64_t slot, unsigned occurrence = 0)
      : slot_(slot), want_occurrence_(occurrence) {}

  void on_event(const fpr::LeakageEvent& ev) override {
    if (ev.tag == fpr::LeakageTag::kTriggerBegin) {
      if (ev.value == slot_ && seen_occurrences_++ == want_occurrence_) {
        armed_ = true;
        events_.clear();
      }
      return;
    }
    if (ev.tag == fpr::LeakageTag::kTriggerEnd) {
      if (armed_ && ev.value == slot_) {
        armed_ = false;
        complete_ = true;
      }
      return;
    }
    if (armed_) events_.push_back(ev);
  }

  [[nodiscard]] bool complete() const { return complete_; }
  [[nodiscard]] const std::vector<fpr::LeakageEvent>& events() const { return events_; }

  void reset() {
    armed_ = false;
    complete_ = false;
    seen_occurrences_ = 0;
    events_.clear();
  }

 private:
  std::uint64_t slot_;
  unsigned want_occurrence_;
  unsigned seen_occurrences_ = 0;
  bool armed_ = false;
  bool complete_ = false;
  std::vector<fpr::LeakageEvent> events_;
};

// Records every event of a run (used by the Fig. 3 style trace dumps and
// by whole-algorithm inspection).
class FullRecorder final : public fpr::LeakageSink {
 public:
  void on_event(const fpr::LeakageEvent& ev) override { events_.push_back(ev); }
  [[nodiscard]] const std::vector<fpr::LeakageEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<fpr::LeakageEvent> events_;
};

}  // namespace fd::sca
