#pragma once
// Deterministic data parallelism over a ThreadPool.
//
// Scheduling is static: `count` indices are cut into at most
// `chunks_hint` contiguous chunks (sizes differing by at most one,
// larger chunks first), and every chunk is submitted up front. Which
// worker runs which chunk -- and in what order chunks finish -- is
// scheduler noise; determinism comes from the contract that chunk
// bodies only write state indexed by their own range, and every
// reduction merges per-chunk results in chunk-index order. Under that
// contract the result of parallel_for/map/reduce is bit-identical to
// running the chunks serially in order, at any worker count, which is
// exactly what tests/test_exec.cpp pins.
//
// The serial path IS the parallel path: with a null pool, one worker,
// a single chunk, or when called from inside a pool worker (nested
// parallelism), the same chunk loop runs inline on the calling thread.
// There is no separate serial implementation to drift out of sync.
//
// Exceptions thrown by a body are caught in the worker, and the first
// one (in chunk-index order, not completion order -- again for
// determinism) is rethrown on the calling thread after the barrier.

#include <cstddef>
#include <exception>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"

namespace fd::exec {

struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;  // half-open
  [[nodiscard]] std::size_t size() const { return end - begin; }
};

// The static chunk plan: min(count, max(1, chunks_hint)) contiguous
// ranges covering [0, count), remainder spread over the leading chunks.
[[nodiscard]] std::vector<ChunkRange> static_chunks(std::size_t count,
                                                    std::size_t chunks_hint);

// Runs `body(range, chunk_index)` for every chunk of the plan; blocks
// until all chunks finish (barrier). chunks_hint == 0 selects one chunk
// per pool worker (or 1 chunk with a null pool).
void parallel_for_chunks(ThreadPool* pool, std::size_t count, std::size_t chunks_hint,
                         const std::function<void(ChunkRange, std::size_t)>& body);

// Element-wise convenience: body(i) for i in [0, count).
void parallel_for(ThreadPool* pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

// body(i) -> out[i]. T must be default-constructible (the results
// vector is pre-sized so workers write disjoint slots); wrap
// non-default-constructible types in std::optional at the call site.
template <typename T, typename BodyFn>
[[nodiscard]] std::vector<T> parallel_map(ThreadPool* pool, std::size_t count, BodyFn&& body) {
  std::vector<T> out(count);
  parallel_for_chunks(pool, count, 0, [&](ChunkRange r, std::size_t) {
    for (std::size_t i = r.begin; i < r.end; ++i) out[i] = body(i);
  });
  return out;
}

// Per-chunk accumulators merged in chunk-index order:
//   acc = init; for each chunk c in order: acc = merge(acc, chunk_fn(range_c))
// chunk_fn runs on the pool; merge runs on the calling thread, serially,
// in index order -- the floating-point-safe reduction shape (the merge
// tree depends only on the chunk plan, never on timing).
template <typename T, typename ChunkFn, typename MergeFn>
[[nodiscard]] T parallel_reduce(ThreadPool* pool, std::size_t count, std::size_t chunks_hint,
                                T init, ChunkFn&& chunk_fn, MergeFn&& merge) {
  const auto plan = static_chunks(count, chunks_hint == 0 && pool != nullptr
                                             ? pool->num_workers()
                                             : chunks_hint);
  std::vector<std::optional<T>> partial(plan.size());
  parallel_for_chunks(pool, count, plan.size(),
                      [&](ChunkRange r, std::size_t c) { partial[c] = chunk_fn(r); });
  T acc = std::move(init);
  for (auto& p : partial) acc = merge(std::move(acc), std::move(*p));
  return acc;
}

}  // namespace fd::exec
