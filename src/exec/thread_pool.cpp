#include "exec/thread_pool.h"

#include <algorithm>
#include <string>

#include "obs/profile.h"

namespace fd::exec {

namespace {
// Set for the lifetime of any pool worker thread; submit() and
// parallel_for use it to detect (and serialize) nested parallelism.
thread_local bool t_on_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_workers, std::size_t queue_capacity) {
  const std::size_t n = std::max<std::size_t>(1, num_workers);
  capacity_ = queue_capacity == 0 ? 4 * n : queue_capacity;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (t_on_worker) {
    // A worker producing into its own (or any) full pool could deadlock
    // waiting for capacity only workers can free; run inline instead.
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_space_.wait(lock, [this] { return queue_.size() < capacity_; });
    queue_.push_back(std::move(task));
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

std::size_t ThreadPool::hardware_workers() {
  return std::max(1U, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop(std::size_t index) {
  t_on_worker = true;
  // Named per slot so pool threads show up as stable tracks in an
  // exported trace (obs/trace_export.h); no-op without a sink.
  obs::set_thread_name("fd-pool-" + std::to_string(index));
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping: shutdown completes the work
      // already submitted rather than dropping it on the floor.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    cv_space_.notify_one();
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace fd::exec
