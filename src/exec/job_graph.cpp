#include "exec/job_graph.h"

#include <chrono>
#include <exception>
#include <stdexcept>

#include "exec/parallel_for.h"
#include "obs/span.h"

namespace fd::exec {

JobGraph::JobId JobGraph::add(std::string name, std::function<void()> fn,
                              std::vector<JobId> deps) {
  for (const JobId d : deps) {
    if (d >= jobs_.size()) {
      throw std::invalid_argument("JobGraph: dependency on a job not yet added");
    }
  }
  jobs_.push_back({std::move(name), std::move(fn), std::move(deps)});
  return jobs_.size() - 1;
}

std::vector<JobGraph::JobReport> JobGraph::run(ThreadPool* pool) {
  std::vector<JobReport> reports(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) reports[i].name = jobs_[i].name;

  std::vector<bool> done(jobs_.size(), false);
  std::vector<std::exception_ptr> errors(jobs_.size());
  std::size_t completed = 0;
  bool failed = false;

  const auto run_one = [&](JobId id) {
    obs::Span span("exec.job." + jobs_[id].name);
    const auto t0 = std::chrono::steady_clock::now();
    try {
      jobs_[id].fn();
    } catch (...) {
      errors[id] = std::current_exception();
    }
    reports[id].wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();
    reports[id].ran = true;
  };

  while (completed < jobs_.size() && !failed) {
    // Ready set in insertion order -- the deterministic level.
    std::vector<JobId> level;
    for (JobId id = 0; id < jobs_.size(); ++id) {
      if (done[id]) continue;
      bool ready = true;
      for (const JobId d : jobs_[id].deps) ready = ready && done[d];
      if (ready) level.push_back(id);
    }
    if (level.empty()) break;  // unreachable with forward-only edges

    if (level.size() == 1) {
      run_one(level[0]);  // inline: keep the pool for the stage's insides
    } else {
      parallel_for(pool, level.size(), [&](std::size_t i) { run_one(level[i]); });
    }
    for (const JobId id : level) {
      done[id] = true;
      ++completed;
      if (errors[id]) failed = true;
    }
  }

  for (const auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  return reports;
}

}  // namespace fd::exec
