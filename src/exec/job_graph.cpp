#include "exec/job_graph.h"

#include <chrono>
#include <exception>
#include <stdexcept>

#include "exec/parallel_for.h"
#include "obs/span.h"

namespace fd::exec {

JobGraph::JobId JobGraph::add(std::string name, std::function<void()> fn,
                              std::vector<JobId> deps) {
  for (const JobId d : deps) {
    if (d >= jobs_.size()) {
      throw std::invalid_argument("JobGraph: dependency on a job not yet added");
    }
  }
  jobs_.push_back({std::move(name), std::move(fn), std::move(deps)});
  return jobs_.size() - 1;
}

std::vector<JobGraph::JobReport> JobGraph::run(ThreadPool* pool) {
  std::string first_error;
  auto reports = run_collect(pool, &first_error);
  if (!first_error.empty()) throw std::runtime_error(first_error);
  return reports;
}

std::vector<JobGraph::JobReport> JobGraph::run_collect(ThreadPool* pool,
                                                       std::string* first_error) {
  std::vector<JobReport> reports(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) reports[i].name = jobs_[i].name;

  std::vector<bool> done(jobs_.size(), false);
  std::vector<bool> errored(jobs_.size(), false);
  std::size_t completed = 0;
  bool failed = false;

  const auto run_one = [&](JobId id) {
    obs::Span span("exec.job." + jobs_[id].name);
    const auto t0 = std::chrono::steady_clock::now();
    try {
      jobs_[id].fn();
      reports[id].ok = true;
    } catch (const std::exception& e) {
      errored[id] = true;
      reports[id].error = e.what();
    } catch (...) {
      errored[id] = true;
      reports[id].error = "unknown exception";
    }
    reports[id].wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();
    reports[id].ran = true;
  };

  while (completed < jobs_.size() && !failed) {
    // Ready set in insertion order -- the deterministic level.
    std::vector<JobId> level;
    for (JobId id = 0; id < jobs_.size(); ++id) {
      if (done[id]) continue;
      bool ready = true;
      for (const JobId d : jobs_[id].deps) ready = ready && done[d];
      if (ready) level.push_back(id);
    }
    if (level.empty()) break;  // unreachable with forward-only edges

    if (level.size() == 1) {
      run_one(level[0]);  // inline: keep the pool for the stage's insides
    } else {
      parallel_for(pool, level.size(), [&](std::size_t i) { run_one(level[i]); });
    }
    for (const JobId id : level) {
      done[id] = true;
      ++completed;
      if (errored[id]) failed = true;
    }
  }

  if (first_error != nullptr) {
    for (std::size_t id = 0; id < jobs_.size(); ++id) {
      if (errored[id]) {
        *first_error = reports[id].error;  // insertion order: run()'s rethrow pick
        break;
      }
    }
  }
  return reports;
}

}  // namespace fd::exec
