#pragma once
// Fixed-size worker pool with a bounded task queue and clean shutdown.
//
// The pool is an execution resource, not a determinism mechanism: tasks
// may finish in any order, so everything layered on top (parallel_for,
// sharded capture, the all-slot attack) writes results into
// caller-owned, index-addressed storage and reduces in index order.
// Nothing in this repo reads a result "as soon as it is ready".
//
// Backpressure: submit() blocks once `queue_capacity` tasks are
// pending, so a producer streaming millions of shard jobs cannot grow
// the queue unboundedly. Submitting from a worker thread runs the task
// inline instead of enqueueing -- a worker blocked on a full queue that
// only its own pool could drain would deadlock otherwise, and inline
// execution also makes nested parallel_for calls safe (they degrade to
// the serial path, see parallel_for.h).
//
// Shutdown: the destructor drains every task already submitted, then
// joins all workers. Tasks must not throw -- wrap fallible work (as
// parallel_for does) and carry errors out by value.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fd::exec {

class ThreadPool {
 public:
  // `num_workers` is clamped to at least 1; `queue_capacity` 0 selects
  // the default of 4 tasks per worker.
  explicit ThreadPool(std::size_t num_workers, std::size_t queue_capacity = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task`; blocks while the queue is at capacity. Called from
  // one of this process's pool workers (any pool), the task runs inline
  // on the calling thread instead.
  void submit(std::function<void()> task);

  // Blocks until every submitted task has finished and the queue is
  // empty. New submissions during the wait extend it.
  void wait_idle();

  [[nodiscard]] std::size_t num_workers() const { return workers_.size(); }
  [[nodiscard]] std::size_t queue_capacity() const { return capacity_; }

  // True on a thread owned by any ThreadPool in this process.
  [[nodiscard]] static bool on_worker_thread();

  // max(1, std::thread::hardware_concurrency()) -- the --threads=0
  // convention of the CLIs ("use the whole machine").
  [[nodiscard]] static std::size_t hardware_workers();

 private:
  void worker_loop(std::size_t index);

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   // queue became non-empty / stopping
  std::condition_variable cv_space_;  // queue dropped below capacity
  std::condition_variable cv_idle_;   // queue empty and no task running
  std::deque<std::function<void()>> queue_;
  std::size_t capacity_ = 0;
  std::size_t active_ = 0;  // tasks currently executing
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fd::exec
