#pragma once
// Deterministic seed splitting for parallel work.
//
// Every parallel decomposition in this repo derives per-shard randomness
// from (root seed, shard index) -- never from thread ids, scheduling
// order, or wall clocks -- so a run's results are a pure function of the
// seed and the shard plan, identical at any worker count. The derivation
// is a SplitMix64-style finalizer over the pair: cheap, stateless, and
// well-mixed enough that sibling lanes seed independent ChaCha20 streams
// (the PRNG re-expands the 64-bit value through SHAKE256 anyway).
//
// Convention: lane 0 is NOT the root seed itself. A sharded campaign
// with one shard is a different experiment from an unsharded campaign,
// and giving lane 0 a distinct stream keeps accidental reuse of the
// root stream (already consumed by the serial path) impossible.

#include <cstdint>

namespace fd::exec {

// SplitMix64 finalizer (Vigna); full-period bijection on the mixed word.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Child seed for `lane` under `seed`. Distinct lanes give distinct
// seeds (mix64 is a bijection applied to distinct inputs for any fixed
// seed), and the same (seed, lane) pair gives the same child forever --
// the determinism contract of src/exec.
[[nodiscard]] constexpr std::uint64_t split_seed(std::uint64_t seed, std::uint64_t lane) {
  return mix64(mix64(seed) ^ mix64(lane + 1));
}

}  // namespace fd::exec
