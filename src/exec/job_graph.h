#pragma once
// Deterministic staged job graph.
//
// A JobGraph is a DAG of named jobs; run() executes it level-
// synchronously: repeatedly collect every job whose dependencies are
// done (in insertion order -- the deterministic tiebreak), run that
// level, and barrier before the next. A level with several jobs fans
// out across the pool; a level with exactly one job runs inline on the
// calling thread, so a linear pipeline (capture -> attack -> solve)
// keeps the pool free for the *inside* of each stage -- which is where
// the parallelism of this attack actually lives (shards and slots, not
// stages). Nested use is safe either way: parallel_for degrades to its
// serial path on pool workers.
//
// run() reports per-job wall time in insertion order and rethrows the
// first failing job's exception (insertion order again); jobs
// downstream of a failure are not started.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "exec/thread_pool.h"

namespace fd::exec {

class JobGraph {
 public:
  using JobId = std::size_t;

  struct JobReport {
    std::string name;
    double wall_ms = 0.0;
    bool ran = false;  // false: skipped because an upstream job failed
    bool ok = false;   // ran and threw nothing
    std::string error; // the job's exception message, when it threw
  };

  // Adds a job depending on `deps` (ids from earlier add() calls --
  // forward edges only, so the graph is acyclic by construction).
  JobId add(std::string name, std::function<void()> fn, std::vector<JobId> deps = {});

  // Executes the graph; null pool runs every level inline.
  std::vector<JobReport> run(ThreadPool* pool);

  // Non-throwing twin of run(): failures are *collected*, not rethrown.
  // Each report carries ok/error; the first failure (insertion order,
  // same job run() would rethrow) is copied into `first_error` when
  // set. Jobs downstream of a failure stay ran == false -- callers get
  // the partial stage picture instead of a bare exception.
  std::vector<JobReport> run_collect(ThreadPool* pool, std::string* first_error = nullptr);

  [[nodiscard]] std::size_t size() const { return jobs_.size(); }

 private:
  struct Job {
    std::string name;
    std::function<void()> fn;
    std::vector<JobId> deps;
  };
  std::vector<Job> jobs_;
};

}  // namespace fd::exec
