#include "exec/parallel_for.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>

namespace fd::exec {

std::vector<ChunkRange> static_chunks(std::size_t count, std::size_t chunks_hint) {
  std::vector<ChunkRange> plan;
  if (count == 0) return plan;
  const std::size_t k = std::min(count, std::max<std::size_t>(1, chunks_hint));
  plan.reserve(k);
  const std::size_t base = count / k;
  const std::size_t rem = count % k;
  std::size_t at = 0;
  for (std::size_t c = 0; c < k; ++c) {
    const std::size_t len = base + (c < rem ? 1 : 0);
    plan.push_back({at, at + len});
    at += len;
  }
  return plan;
}

void parallel_for_chunks(ThreadPool* pool, std::size_t count, std::size_t chunks_hint,
                         const std::function<void(ChunkRange, std::size_t)>& body) {
  const std::size_t hint =
      chunks_hint == 0 ? (pool != nullptr ? pool->num_workers() : 1) : chunks_hint;
  const auto plan = static_chunks(count, hint);
  if (plan.empty()) return;

  // Serial path: no pool, a 1-worker pool, one chunk, or nested inside
  // a pool worker. Same chunk loop, same order, same results.
  if (pool == nullptr || pool->num_workers() <= 1 || plan.size() == 1 ||
      ThreadPool::on_worker_thread()) {
    for (std::size_t c = 0; c < plan.size(); ++c) body(plan[c], c);
    return;
  }

  struct Barrier {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining;
    // First failure in *chunk-index* order, so the exception a caller
    // sees does not depend on completion timing.
    std::vector<std::exception_ptr> errors;
  } bar;
  bar.remaining = plan.size();
  bar.errors.resize(plan.size());

  for (std::size_t c = 0; c < plan.size(); ++c) {
    pool->submit([&bar, &body, range = plan[c], c] {
      std::exception_ptr err;
      try {
        body(range, c);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(bar.mu);
      bar.errors[c] = err;
      if (--bar.remaining == 0) bar.cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(bar.mu);
    bar.cv.wait(lock, [&bar] { return bar.remaining == 0; });
  }
  for (const auto& err : bar.errors) {
    if (err) std::rethrow_exception(err);
  }
}

void parallel_for(ThreadPool* pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(pool, count, 0, [&](ChunkRange r, std::size_t) {
    for (std::size_t i = r.begin; i < r.end; ++i) body(i);
  });
}

}  // namespace fd::exec
