#pragma once
// Arithmetic modulo q = 12289 and the negacyclic NTT.
//
// FALCON's verification (and the h = g/f public-key computation) work in
// Z_q[x]/(x^n+1) with q = 12289 = 12*1024 + 1, which supports negacyclic
// NTTs for every n = 2^logn up to 2048. Roots of unity are derived at
// startup by searching for a generator of Z_q^* (q is small), so no
// hardcoded tables are needed.
//
// The modmul/butterfly routines optionally emit leakage events; this
// powers the paper's §V.C discussion (NTT leaks harder than FFT) with an
// apples-to-apples experiment on the same device model.

#include <cstdint>
#include <span>
#include <vector>

namespace fd::zq {

inline constexpr std::uint32_t kQ = 12289;

[[nodiscard]] constexpr std::uint32_t add(std::uint32_t a, std::uint32_t b) {
  const std::uint32_t s = a + b;
  return s >= kQ ? s - kQ : s;
}
[[nodiscard]] constexpr std::uint32_t sub(std::uint32_t a, std::uint32_t b) {
  return a >= b ? a - b : a + kQ - b;
}
// Plain 32-bit product followed by reduction, as a Cortex-M-class core
// would execute it; emits kNttProd/kNttReduced leakage when a sink is set.
[[nodiscard]] std::uint32_t mul(std::uint32_t a, std::uint32_t b);
[[nodiscard]] std::uint32_t pow(std::uint32_t base, std::uint32_t exp);
[[nodiscard]] std::uint32_t inverse(std::uint32_t a);  // a != 0

// Centered representative in [-(q-1)/2, (q-1)/2].
[[nodiscard]] constexpr std::int32_t center(std::uint32_t a) {
  return static_cast<std::int32_t>(a) - static_cast<std::int32_t>((a > kQ / 2) ? kQ : 0);
}
// Reduce any signed value into [0, q).
[[nodiscard]] constexpr std::uint32_t from_signed(std::int64_t v) {
  std::int64_t r = v % static_cast<std::int64_t>(kQ);
  if (r < 0) r += kQ;
  return static_cast<std::uint32_t>(r);
}

// In-place forward negacyclic NTT: standard coefficient order in, bit-
// reversed evaluation order out. n = 2^logn, logn in [1, 11].
void ntt(std::span<std::uint32_t> a, unsigned logn);
// Exact inverse of ntt() (includes the 1/n and psi^-1 twists).
void intt(std::span<std::uint32_t> a, unsigned logn);

// Coefficient-wise product in NTT domain.
void pointwise_mul(std::span<std::uint32_t> a, std::span<const std::uint32_t> b);

// Convolution helpers in Z_q[x]/(x^n+1), plain coefficient order.
[[nodiscard]] std::vector<std::uint32_t> poly_mul(std::span<const std::uint32_t> a,
                                                  std::span<const std::uint32_t> b,
                                                  unsigned logn);
// Inverse of a; returns empty vector when a is not invertible (some NTT
// coefficient is 0).
[[nodiscard]] std::vector<std::uint32_t> poly_inverse(std::span<const std::uint32_t> a,
                                                      unsigned logn);
[[nodiscard]] bool poly_invertible(std::span<const std::uint32_t> a, unsigned logn);

}  // namespace fd::zq
