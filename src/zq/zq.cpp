#include "zq/zq.h"

#include <array>
#include <cassert>

#include "fpr/leakage.h"

namespace fd::zq {

using fpr::leak;
using fpr::LeakageTag;

std::uint32_t mul(std::uint32_t a, std::uint32_t b) {
  const std::uint32_t p = a * b;  // < 12289^2 < 2^28
  leak(LeakageTag::kNttProd, p);
  const std::uint32_t r = p % kQ;
  leak(LeakageTag::kNttReduced, r);
  return r;
}

std::uint32_t pow(std::uint32_t base, std::uint32_t exp) {
  std::uint64_t r = 1;
  std::uint64_t b = base % kQ;
  while (exp != 0) {
    if (exp & 1) r = (r * b) % kQ;
    b = (b * b) % kQ;
    exp >>= 1;
  }
  return static_cast<std::uint32_t>(r);
}

std::uint32_t inverse(std::uint32_t a) {
  assert(a % kQ != 0);
  return pow(a, kQ - 2);
}

namespace {

constexpr unsigned kMaxLogn = 11;

// psi tables: powers of a primitive 2n-th root of unity in bit-reversed
// order, one table per level, derived from a generator found at startup.
struct NttTables {
  // psi_brev[logn][k] = psi^brev(k) for the 2^(logn+1)-th root psi.
  std::array<std::vector<std::uint32_t>, kMaxLogn + 1> psi_brev;
  std::array<std::vector<std::uint32_t>, kMaxLogn + 1> ipsi_brev;
  std::array<std::uint32_t, kMaxLogn + 1> n_inv;

  NttTables() {
    // Find a generator of Z_q^* (order q-1 = 2^12 * 3).
    std::uint32_t g = 0;
    for (std::uint32_t cand = 2; cand < kQ; ++cand) {
      if (pow(cand, (kQ - 1) / 2) != 1 && pow(cand, (kQ - 1) / 3) != 1) {
        g = cand;
        break;
      }
    }
    for (unsigned logn = 1; logn <= kMaxLogn; ++logn) {
      const std::uint32_t n = std::uint32_t{1} << logn;
      const std::uint32_t psi = pow(g, (kQ - 1) / (2 * n));  // primitive 2n-th root
      const std::uint32_t ipsi = inverse(psi);
      auto& tab = psi_brev[logn];
      auto& itab = ipsi_brev[logn];
      tab.resize(n);
      itab.resize(n);
      for (std::uint32_t k = 0; k < n; ++k) {
        std::uint32_t br = 0;
        for (unsigned b = 0; b < logn; ++b) br |= ((k >> b) & 1U) << (logn - 1 - b);
        tab[k] = pow(psi, br);
        itab[k] = pow(ipsi, br);
      }
      n_inv[logn] = inverse(n);
    }
  }
};

const NttTables& tables() {
  static const NttTables t;
  return t;
}

}  // namespace

void ntt(std::span<std::uint32_t> a, unsigned logn) {
  assert(logn >= 1 && logn <= kMaxLogn);
  const std::size_t n = std::size_t{1} << logn;
  assert(a.size() == n);
  const auto& psi = tables().psi_brev[logn];

  // Cooley-Tukey, decimation in time over the negacyclic tree.
  std::size_t t = n;
  for (std::size_t m = 1; m < n; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint32_t s = psi[m + i];
      const std::size_t j1 = 2 * i * t;
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const std::uint32_t u = a[j];
        const std::uint32_t v = mul(a[j + t], s);
        a[j] = add(u, v);
        leak(LeakageTag::kNttButterflyAdd, a[j]);
        a[j + t] = sub(u, v);
        leak(LeakageTag::kNttButterflySub, a[j + t]);
      }
    }
  }
}

void intt(std::span<std::uint32_t> a, unsigned logn) {
  assert(logn >= 1 && logn <= kMaxLogn);
  const std::size_t n = std::size_t{1} << logn;
  assert(a.size() == n);
  const auto& ipsi = tables().ipsi_brev[logn];

  // Gentleman-Sande, inverse of the CT pass above.
  std::size_t t = 1;
  for (std::size_t m = n; m > 1; m >>= 1) {
    const std::size_t h = m >> 1;
    std::size_t j1 = 0;
    for (std::size_t i = 0; i < h; ++i) {
      const std::uint32_t s = ipsi[h + i];
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const std::uint32_t u = a[j];
        const std::uint32_t v = a[j + t];
        a[j] = add(u, v);
        a[j + t] = mul(sub(u, v), s);
      }
      j1 += 2 * t;
    }
    t <<= 1;
  }
  const std::uint32_t ni = tables().n_inv[logn];
  for (auto& x : a) x = mul(x, ni);
}

void pointwise_mul(std::span<std::uint32_t> a, std::span<const std::uint32_t> b) {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = mul(a[i], b[i]);
}

std::vector<std::uint32_t> poly_mul(std::span<const std::uint32_t> a,
                                    std::span<const std::uint32_t> b, unsigned logn) {
  std::vector<std::uint32_t> ta(a.begin(), a.end());
  std::vector<std::uint32_t> tb(b.begin(), b.end());
  ntt(ta, logn);
  ntt(tb, logn);
  pointwise_mul(ta, tb);
  intt(ta, logn);
  return ta;
}

std::vector<std::uint32_t> poly_inverse(std::span<const std::uint32_t> a, unsigned logn) {
  std::vector<std::uint32_t> t(a.begin(), a.end());
  ntt(t, logn);
  for (auto& x : t) {
    if (x == 0) return {};
    x = inverse(x);
  }
  intt(t, logn);
  return t;
}

bool poly_invertible(std::span<const std::uint32_t> a, unsigned logn) {
  std::vector<std::uint32_t> t(a.begin(), a.end());
  ntt(t, logn);
  for (const auto x : t) {
    if (x == 0) return false;
  }
  return true;
}

}  // namespace fd::zq
