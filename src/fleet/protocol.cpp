#include "fleet/protocol.h"

#include <bit>
#include <cstring>

namespace fd::fleet {

namespace {

// Little-endian primitive serde, shared by every payload codec. Doubles
// travel as raw IEEE-754 bits so a round trip is bit-exact (the same
// policy as attack/checkpoint.cpp).
void put_u16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& b, double v) {
  put_u64(b, std::bit_cast<std::uint64_t>(v));
}

void put_str(std::vector<std::uint8_t>& b, const std::string& s) {
  put_u32(b, static_cast<std::uint32_t>(s.size()));
  b.insert(b.end(), s.begin(), s.end());
}

// Bounds-checked reader; any overrun latches fail and every later read
// returns zero, so decoders can check once at the end.
struct Cursor {
  std::span<const std::uint8_t> bytes;
  std::size_t off = 0;
  bool fail = false;

  [[nodiscard]] bool take(std::size_t n) {
    if (fail || bytes.size() - off < n) {
      fail = true;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!take(1)) return 0;
    return bytes[off++];
  }
  std::uint16_t u16() {
    if (!take(2)) return 0;
    const auto v = static_cast<std::uint16_t>(bytes[off] | bytes[off + 1] << 8);
    off += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes[off + i]) << (8 * i);
    off += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes[off + i]) << (8 * i);
    off += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint32_t n = u32();
    if (!take(n)) return {};
    std::string s(reinterpret_cast<const char*>(bytes.data() + off), n);
    off += n;
    return s;
  }
  [[nodiscard]] bool done() const { return !fail && off == bytes.size(); }
};

}  // namespace

// --- framing ---------------------------------------------------------------

void encode_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::span<const std::uint8_t> payload) {
  put_u32(out, kFrameMagic);
  put_u16(out, kProtocolVersion);
  put_u16(out, static_cast<std::uint16_t>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  if (corrupt_) return;
  // Compact consumed prefix before growing -- the buffer stays bounded
  // by one frame plus one read() fragment.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > (64u << 10))) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

bool FrameDecoder::next(Frame& out) {
  if (corrupt_ || buf_.size() - pos_ < kFrameHeaderSize) return false;
  Cursor c{{buf_.data() + pos_, buf_.size() - pos_}, 0, false};
  const std::uint32_t magic = c.u32();
  const std::uint16_t version = c.u16();
  const std::uint16_t type = c.u16();
  const std::uint32_t len = c.u32();
  if (magic != kFrameMagic) {
    corrupt_ = true;
    error_ = "bad frame magic";
    return false;
  }
  if (version != kProtocolVersion) {
    corrupt_ = true;
    error_ = "unsupported protocol version " + std::to_string(version);
    return false;
  }
  if (len > kMaxPayload) {
    corrupt_ = true;
    error_ = "oversized frame payload";
    return false;
  }
  if (buf_.size() - pos_ < kFrameHeaderSize + len) return false;  // need more bytes
  out.type = static_cast<FrameType>(type);
  out.payload.assign(buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + kFrameHeaderSize),
                     buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + kFrameHeaderSize + len));
  pos_ += kFrameHeaderSize + len;
  return true;
}

// --- SessionConfig ---------------------------------------------------------

void encode_session(std::vector<std::uint8_t>& out, const SessionConfig& cfg) {
  put_u32(out, cfg.logn);
  put_str(out, cfg.victim_seed);
  const attack::KeyRecoveryConfig& a = cfg.attack;
  put_u64(out, a.num_traces);
  put_f64(out, a.device.alpha);
  put_f64(out, a.device.noise_sigma);
  put_u32(out, a.device.samples_per_event);
  put_u32(out, a.device.jitter_max);
  out.push_back(a.device.constant_weight ? 1 : 0);
  put_u64(out, a.extend_top_k);
  put_u64(out, a.adversarial_random);
  put_u64(out, a.cpa_batch);
  put_u64(out, a.seed);
  put_u64(out, a.threads);
  const sca::FaultConfig& f = cfg.faults;
  put_f64(out, f.drop_rate);
  put_f64(out, f.desync_rate);
  put_u32(out, f.desync_min);
  put_u32(out, f.desync_max);
  put_f64(out, f.saturate_rate);
  put_f64(out, f.saturate_level);
  put_f64(out, f.glitch_rate);
  put_f64(out, f.glitch_amplitude);
  put_f64(out, f.chunk_corrupt_rate);
  put_f64(out, f.capture_fail_rate);
  put_u64(out, f.seed);
  const attack::QualityConfig& q = cfg.quality;
  out.push_back(q.enabled ? 1 : 0);
  put_f64(out, q.saturation_pinned_frac);
  put_u64(out, q.saturation_min_pinned);
  put_f64(out, q.energy_mad_k);
  put_u32(out, q.max_lag);
  put_f64(out, q.min_alignment_corr);
  put_u32(out, q.refine_iters);
  out.push_back(cfg.single_pass ? 1 : 0);
  put_u64(out, cfg.checkpoint_every);
  put_u64(out, cfg.session_hash);
  put_u64(out, cfg.heartbeat_interval_ms);
  put_u64(out, cfg.trace_id);
  put_u64(out, cfg.profile_interval_ms);
}

bool decode_session(std::span<const std::uint8_t> bytes, SessionConfig& out) {
  Cursor c{bytes, 0, false};
  out.logn = c.u32();
  out.victim_seed = c.str();
  attack::KeyRecoveryConfig& a = out.attack;
  a.num_traces = static_cast<std::size_t>(c.u64());
  a.device.alpha = c.f64();
  a.device.noise_sigma = c.f64();
  a.device.samples_per_event = c.u32();
  a.device.jitter_max = c.u32();
  a.device.constant_weight = c.u8() != 0;
  a.extend_top_k = static_cast<std::size_t>(c.u64());
  a.adversarial_random = static_cast<std::size_t>(c.u64());
  a.cpa_batch = static_cast<std::size_t>(c.u64());
  a.seed = c.u64();
  a.threads = static_cast<std::size_t>(c.u64());
  sca::FaultConfig& f = out.faults;
  f.drop_rate = c.f64();
  f.desync_rate = c.f64();
  f.desync_min = c.u32();
  f.desync_max = c.u32();
  f.saturate_rate = c.f64();
  f.saturate_level = c.f64();
  f.glitch_rate = c.f64();
  f.glitch_amplitude = c.f64();
  f.chunk_corrupt_rate = c.f64();
  f.capture_fail_rate = c.f64();
  f.seed = c.u64();
  attack::QualityConfig& q = out.quality;
  q.enabled = c.u8() != 0;
  q.saturation_pinned_frac = c.f64();
  q.saturation_min_pinned = static_cast<std::size_t>(c.u64());
  q.energy_mad_k = c.f64();
  q.max_lag = c.u32();
  q.min_alignment_corr = c.f64();
  q.refine_iters = c.u32();
  out.single_pass = c.u8() != 0;
  out.checkpoint_every = static_cast<std::size_t>(c.u64());
  out.session_hash = c.u64();
  out.heartbeat_interval_ms = static_cast<std::size_t>(c.u64());
  out.trace_id = c.u64();
  out.profile_interval_ms = static_cast<std::size_t>(c.u64());
  return c.done() && out.logn >= 1 && out.logn <= 10;
}

// --- TaskSpec --------------------------------------------------------------

void encode_task(std::vector<std::uint8_t>& out, const TaskSpec& spec) {
  put_u32(out, spec.task_id);
  out.push_back(static_cast<std::uint8_t>(spec.kind));
  put_u64(out, spec.capture_traces);
  put_u64(out, spec.capture_seed);
  put_u64(out, spec.fault_query_offset);
  put_str(out, spec.out_path);
  put_str(out, spec.archive_path);
  put_str(out, spec.checkpoint_path);
  put_u32(out, static_cast<std::uint32_t>(spec.components.size()));
  for (const std::uint32_t comp : spec.components) put_u32(out, comp);
  put_u32(out, spec.kill_after);
  put_u32(out, spec.hang_ms);
  put_u64(out, spec.parent_span);
}

bool decode_task(std::span<const std::uint8_t> bytes, TaskSpec& out) {
  Cursor c{bytes, 0, false};
  out.task_id = c.u32();
  const std::uint8_t kind = c.u8();
  if (kind > 1) return false;
  out.kind = static_cast<TaskKind>(kind);
  out.capture_traces = c.u64();
  out.capture_seed = c.u64();
  out.fault_query_offset = c.u64();
  out.out_path = c.str();
  out.archive_path = c.str();
  out.checkpoint_path = c.str();
  const std::uint32_t n = c.u32();
  out.components.clear();
  if (c.fail || n > (bytes.size() - c.off) / 4) return false;
  out.components.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.components.push_back(c.u32());
  out.kill_after = c.u32();
  out.hang_ms = c.u32();
  out.parent_span = c.u64();
  return c.done();
}

// --- TaskResult ------------------------------------------------------------

void encode_result(std::vector<std::uint8_t>& out, const TaskResult& res) {
  put_u32(out, res.task_id);
  out.push_back(static_cast<std::uint8_t>(res.kind));
  out.push_back(res.ok ? 1 : 0);
  put_str(out, res.error);
  put_u64(out, res.queries);
  put_u64(out, res.records);
  put_u32(out, static_cast<std::uint32_t>(res.outcomes.size()));
  for (const ComponentOutcome& o : res.outcomes) {
    put_u32(out, o.component);
    attack::serialize_component_result(out, o.result);
    put_u64(out, o.accepted);
  }
  const attack::QualityReport& q = res.quality;
  put_u64(out, q.total);
  put_u64(out, q.accepted);
  put_u64(out, q.rejected_saturated);
  put_u64(out, q.rejected_energy);
  put_u64(out, q.rejected_alignment);
  put_u64(out, q.realigned);
  put_u64(out, res.archive_scans);
  put_u64(out, res.span);
}

bool decode_result(std::span<const std::uint8_t> bytes, TaskResult& out) {
  Cursor c{bytes, 0, false};
  out.task_id = c.u32();
  const std::uint8_t kind = c.u8();
  if (kind > 1) return false;
  out.kind = static_cast<TaskKind>(kind);
  out.ok = c.u8() != 0;
  out.error = c.str();
  out.queries = c.u64();
  out.records = c.u64();
  const std::uint32_t n = c.u32();
  out.outcomes.clear();
  if (c.fail || n > bytes.size()) return false;  // each outcome is >= 1 byte
  out.outcomes.reserve(n);
  for (std::uint32_t i = 0; i < n && !c.fail; ++i) {
    ComponentOutcome o;
    o.component = c.u32();
    if (c.fail) return false;
    std::size_t off = c.off;
    if (!attack::deserialize_component_result(bytes, off, o.result)) return false;
    c.off = off;
    o.accepted = c.u64();
    out.outcomes.push_back(std::move(o));
  }
  attack::QualityReport& q = out.quality;
  q.total = static_cast<std::size_t>(c.u64());
  q.accepted = static_cast<std::size_t>(c.u64());
  q.rejected_saturated = static_cast<std::size_t>(c.u64());
  q.rejected_energy = static_cast<std::size_t>(c.u64());
  q.rejected_alignment = static_cast<std::size_t>(c.u64());
  q.realigned = static_cast<std::size_t>(c.u64());
  out.archive_scans = c.u64();
  out.span = c.u64();
  return c.done();
}

// --- small frames ----------------------------------------------------------

void encode_hello(std::vector<std::uint8_t>& out, const Hello& h) {
  put_u16(out, h.version);
  put_u64(out, h.pid);
}

bool decode_hello(std::span<const std::uint8_t> bytes, Hello& out) {
  Cursor c{bytes, 0, false};
  out.version = c.u16();
  out.pid = c.u64();
  return c.done();
}

void encode_progress(std::vector<std::uint8_t>& out, const Progress& p) {
  put_u32(out, p.task_id);
  put_u64(out, p.completed);
  put_u64(out, p.total);
  put_u64(out, p.span);
}

bool decode_progress(std::span<const std::uint8_t> bytes, Progress& out) {
  Cursor c{bytes, 0, false};
  out.task_id = c.u32();
  out.completed = c.u64();
  out.total = c.u64();
  out.span = c.u64();
  return c.done();
}

void encode_fold(std::vector<std::uint8_t>& out, const FoldFrame& f) {
  put_u32(out, f.task_id);
  attack::serialize_cpa_sums(out, f.sums);
}

bool decode_fold(std::span<const std::uint8_t> bytes, FoldFrame& out) {
  Cursor c{bytes, 0, false};
  out.task_id = c.u32();
  if (c.fail) return false;
  std::size_t off = c.off;
  if (!attack::deserialize_cpa_sums(bytes, off, out.sums)) return false;
  return off == bytes.size();
}

}  // namespace fd::fleet
