#pragma once
// Fleet coordinator: shards one recovery campaign across worker
// processes (DESIGN.md section 12).
//
// run_fleet is the multi-process twin of attack::run_recovery_pipeline:
// the same staged shape (capture -> attack -> remeasure -> assemble ->
// forge, reported through an exec::JobGraph), but capture shards and
// component-range attack shards execute in `fd-attack --worker`
// subprocesses spawned over pipes (fork/exec, no external deps).
//
// Determinism contract: the recovered key is a pure function of
// (victim seed, FleetConfig experiment knobs) and BIT-IDENTICAL to the
// single-process pipeline at any worker count --
//   - capture shards replicate run_campaign_sharded exactly (same
//     split_seed lanes, same fault offsets, chunk damage on the merged
//     file) and merge in shard-index order;
//   - components are independent, so partitioning them into shards
//     cannot change any per-component result; the coordinator merges
//     results by global component id;
//   - the component-shard size (components_per_shard) matches the
//     pipeline's checkpoint_every batching, so `attack.archive.scans`
//     totals agree with a checkpointed single-process run too.
// tests/test_fleet.cpp pins all of this at 1, 2, and 4 workers.
//
// Robustness: a worker that stops heartbeating, exits nonzero, dies of
// SIGKILL, or writes a corrupt frame is killed and reaped; its task
// goes back on the queue with bounded retries and exponential backoff,
// and a replacement worker is spawned. Reassigned attack shards resume
// from the dead worker's .fdckpt (task-stable path), so completed
// components are never recomputed. A shard that exhausts its retry
// budget degrades the run to `partial` with its components flagged --
// capture shards are load-bearing (no archive, no attack) and fail the
// run instead.
//
// Telemetry: every worker's obs JSONL lines arrive as kTelemetry
// frames and land in one unified file, each line tagged with
// `"worker":<id>`; the coordinator adds its own fleet.* lines (worker
// lifecycle, task assignment, reassignment, remeasure rounds). The
// file is flushed per line, so `fd-report --follow` tails a live run.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "attack/recovery_pipeline.h"
#include "exec/job_graph.h"

namespace fd::fleet {

struct FleetConfig {
  // The experiment, in single-process pipeline terms. Honoured fields:
  // attack (threads = PER-WORKER pool size), capture_shards,
  // archive_path, keep_archive, faults, quality, remeasure, adaptive,
  // single_pass, checkpoint_every (worker persist cadence). The
  // pipeline's own checkpoint/resume flags are ignored -- fleet
  // checkpointing is per-shard and always on.
  attack::RecoveryPipelineConfig pipeline;

  unsigned logn = 5;
  // Both coordinator and workers regenerate the victim from this keygen
  // seed string; the secret never crosses a pipe.
  std::string victim_seed = "victim key seed";

  std::size_t workers = 2;             // worker processes kept alive
  std::size_t components_per_shard = 8;  // attack task granularity
  std::string worker_binary;           // fd-attack path (execs "--worker")
  std::string telemetry_path;          // unified JSONL; empty = no file
  // Resource-sampler cadence for coordinator AND workers; only active
  // while telemetry_path is set. 0 disables sampling.
  std::size_t profile_interval_ms = 25;

  std::size_t heartbeat_interval_ms = 25;
  std::size_t heartbeat_timeout_ms = 5000;
  std::size_t max_task_attempts = 3;   // per task, incl. the first
  std::size_t backoff_base_ms = 0;     // attempt k waits base << (k-1)

  // Failure-injection hooks (robustness tests; inactive by default).
  // Applied to one attack shard's FIRST attempt only, so the retry
  // completes: kill_shard arms kill_after (worker SIGKILLs itself after
  // that many components persisted), hang_shard arms hang_ms (worker
  // mutes heartbeats and stalls -> timeout path).
  std::size_t kill_shard = static_cast<std::size_t>(-1);
  std::uint32_t kill_after = 0;
  std::size_t hang_shard = static_cast<std::size_t>(-1);
  std::uint32_t hang_ms = 0;
};

struct FleetResult {
  attack::KeyRecoveryResult recovery;
  std::vector<exec::JobGraph::JobReport> stages;
  std::size_t captured_records = 0;

  // Merged per-component state as it entered assembly (pre alias
  // repair), indexed by global component id -- the bit-identity
  // surface tests compare across worker counts.
  std::vector<attack::ComponentResult> results;
  std::vector<std::size_t> accepted_traces;

  attack::QualityReport quality;     // merged from worker TaskResults
  std::size_t capture_attempts = 0;  // rounds tried incl. rig-down retries
  std::size_t remeasure_rounds = 0;
  std::vector<std::size_t> flagged_components;
  bool partial = false;

  // Fleet mechanics.
  std::size_t workers_spawned = 0;
  std::size_t worker_deaths = 0;   // timeouts + crashes + nonzero exits
  std::size_t reassignments = 0;   // tasks re-queued after a death
  std::size_t attack_shards = 0;   // attack tasks dispatched (all rounds)
  std::uint64_t archive_scans = 0; // summed worker scan deltas
  std::size_t telemetry_lines = 0; // lines written to telemetry_path

  bool ok = false;
  std::string error;
};

// Runs the fleet campaign. The victim is generated internally from
// (config.logn, config.victim_seed) -- compare against a single-process
// run on a victim generated the same way.
[[nodiscard]] FleetResult run_fleet(const FleetConfig& config);

}  // namespace fd::fleet
