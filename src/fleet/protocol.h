#pragma once
// Fleet wire protocol: the coordinator <-> worker frame format.
//
// A fleet run (coordinator.h) shards one recovery campaign across
// `fd-attack --worker` subprocesses connected by pipes. Everything that
// crosses a pipe is a length-prefixed, versioned frame:
//
//   u32 magic "FDFL" | u16 version | u16 type | u32 payload_len | payload
//
// all little-endian. The magic + version land in every frame (not just
// a handshake) so a desynchronized or truncated stream is detected at
// the very next frame boundary instead of being misparsed; payloads are
// bounded (kMaxPayload) so a corrupt length can't trigger a giant
// allocation. FrameDecoder reassembles frames from arbitrary read()
// fragments -- pipes deliver whatever they like.
//
// Payload catalogue (all serde here, so both endpoints share one
// encoding and the round-trip tests in tests/test_fleet.cpp pin it):
//   kHello      worker -> coordinator: protocol version + pid
//   kConfig     coordinator -> worker: SessionConfig (the experiment;
//               the victim key travels as its keygen seed string, never
//               as key material)
//   kTask       coordinator -> worker: TaskSpec (capture shard or
//               component-range attack shard)
//   kHeartbeat  worker -> coordinator: liveness tick (empty payload)
//   kProgress   worker -> coordinator: Progress (components done so far)
//   kTelemetry  worker -> coordinator: one obs JSONL line, forwarded
//               verbatim; the coordinator tags it with the worker id
//               and appends it to the unified telemetry file
//   kResult     worker -> coordinator: TaskResult (capture counts, or
//               per-component results + quality + archive-scan delta;
//               every score as raw IEEE-754 bits -- bit-exact)
//   kFold       either direction: a serialized CpaSums shard fold
//               (attack/cpa_kernel.h), the transport for distributed
//               streaming-CPA aggregation; merging deserialized folds
//               in shard-index order equals the in-process
//               parallel_reduce merge bit for bit
//   kShutdown   coordinator -> worker: drain and exit 0
//   kError      worker -> coordinator: fatal worker-side message
//
// Decode functions are total: any truncated, overlong, or out-of-range
// payload returns false and never throws -- a dying worker's half
// frame must not take the coordinator down with it.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "attack/checkpoint.h"
#include "attack/cpa_kernel.h"
#include "attack/key_recovery.h"
#include "attack/quality.h"
#include "sca/faults.h"

namespace fd::fleet {

inline constexpr std::uint32_t kFrameMagic = 0x4C464446;  // "FDFL" little-endian
// v2: SessionConfig carries trace_id + profile_interval_ms, TaskSpec a
// parent span context, Progress/TaskResult the worker task's span id --
// the span-context propagation that stitches a whole fleet run into
// one trace tree (DESIGN.md section 13). Frames have no compatibility
// negotiation by design (coordinator and workers are the same binary);
// a version mismatch latches the decoder corrupt.
inline constexpr std::uint16_t kProtocolVersion = 2;
inline constexpr std::size_t kFrameHeaderSize = 12;
// Largest payload a peer will accept. Generous for real traffic (an
// n = 1024 attack shard's results are ~100 KB) yet small enough that a
// corrupt length field fails fast.
inline constexpr std::size_t kMaxPayload = 64u << 20;

enum class FrameType : std::uint16_t {
  kHello = 1,
  kConfig = 2,
  kTask = 3,
  kHeartbeat = 4,
  kProgress = 5,
  kTelemetry = 6,
  kResult = 7,
  kFold = 8,
  kShutdown = 9,
  kError = 10,
};

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::vector<std::uint8_t> payload;
};

// Appends one complete frame (header + payload) to `out`.
void encode_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::span<const std::uint8_t> payload);

// Incremental frame reassembly over arbitrary byte fragments. feed()
// whatever read() returned; next() pops complete frames in order. A
// bad magic, unknown version, or oversized length latches `corrupt`
// (the stream is unrecoverable past that point -- frames have no
// resync marker by design; the coordinator kills the worker instead).
class FrameDecoder {
 public:
  void feed(std::span<const std::uint8_t> bytes);
  [[nodiscard]] bool next(Frame& out);
  [[nodiscard]] bool corrupt() const { return corrupt_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  bool corrupt_ = false;
  std::string error_;
};

// --- session configuration -------------------------------------------------

// Everything a worker needs to reproduce the coordinator's experiment
// exactly. The victim secret never crosses the pipe: both sides run
// falcon::keygen(logn, ChaCha20Prng(victim_seed)) and the determinism
// of keygen makes the keys identical.
struct SessionConfig {
  unsigned logn = 5;
  std::string victim_seed = "victim key seed";
  attack::KeyRecoveryConfig attack;  // attack.threads = worker-internal pool
  sca::FaultConfig faults;
  attack::QualityConfig quality;
  bool single_pass = true;
  std::size_t checkpoint_every = 8;      // worker sub-batch + persist cadence
  std::uint64_t session_hash = 0;        // binds worker checkpoints to the run
  std::size_t heartbeat_interval_ms = 50;
  // Trace root every worker installs via obs::set_trace_root before
  // its first span (derived from session_hash, never wall clock).
  std::uint64_t trace_id = 0;
  // Resource-sampler cadence; 0 = sampler off (telemetry disabled).
  std::size_t profile_interval_ms = 0;
};

void encode_session(std::vector<std::uint8_t>& out, const SessionConfig& cfg);
[[nodiscard]] bool decode_session(std::span<const std::uint8_t> bytes, SessionConfig& out);

// --- tasks -----------------------------------------------------------------

enum class TaskKind : std::uint8_t {
  kCapture = 0,  // one capture shard -> a .fdtrace shard file
  kAttack = 1,   // one contiguous component range against the archive
};

struct TaskSpec {
  std::uint32_t task_id = 0;
  TaskKind kind = TaskKind::kCapture;

  // kCapture: replicate exactly one shard of run_campaign_sharded --
  // the seed and fault offset are computed coordinator-side from the
  // shard plan, so the merged archive is byte-identical to the
  // single-process sharded capture.
  std::uint64_t capture_traces = 0;
  std::uint64_t capture_seed = 0;
  std::uint64_t fault_query_offset = 0;
  std::string out_path;

  // kAttack: the component ids to attack and where the shard's own
  // .fdckpt lives (stable per task, not per worker, so a reassigned
  // shard resumes from the dead worker's checkpoint).
  std::string archive_path;
  std::string checkpoint_path;
  std::vector<std::uint32_t> components;

  // Failure-injection hooks for the robustness tests; zero in real
  // runs. kill_after: raise(SIGKILL) after that many components have
  // been completed AND persisted this execution. hang_ms: mute
  // heartbeats and sleep before starting (heartbeat-timeout path).
  std::uint32_t kill_after = 0;
  std::uint32_t hang_ms = 0;

  // Span id of the coordinator's JobGraph stage span that created this
  // task; the worker re-parents its task span under it so the campaign
  // forms one cross-process tree.
  std::uint64_t parent_span = 0;
};

void encode_task(std::vector<std::uint8_t>& out, const TaskSpec& spec);
[[nodiscard]] bool decode_task(std::span<const std::uint8_t> bytes, TaskSpec& out);

// --- results ---------------------------------------------------------------

struct ComponentOutcome {
  std::uint32_t component = 0;          // global component id
  attack::ComponentResult result;       // raw-bits serde: bit-exact
  std::uint64_t accepted = 0;           // post-gate trace count (D)
};

struct TaskResult {
  std::uint32_t task_id = 0;
  TaskKind kind = TaskKind::kCapture;
  bool ok = false;
  std::string error;

  // kCapture
  std::uint64_t queries = 0;
  std::uint64_t records = 0;

  // kAttack. `quality` counts only the traces screened by THIS
  // execution: components restored from a predecessor's checkpoint ship
  // their results but not the dead worker's unreported gate counts
  // (observational data; the key-identity contract doesn't cover it).
  std::vector<ComponentOutcome> outcomes;
  attack::QualityReport quality;
  std::uint64_t archive_scans = 0;  // attack.archive.scans delta
  std::uint64_t span = 0;           // the worker-side task span's id
};

void encode_result(std::vector<std::uint8_t>& out, const TaskResult& res);
[[nodiscard]] bool decode_result(std::span<const std::uint8_t> bytes, TaskResult& out);

// --- small frames ----------------------------------------------------------

struct Hello {
  std::uint16_t version = kProtocolVersion;
  std::uint64_t pid = 0;
};
void encode_hello(std::vector<std::uint8_t>& out, const Hello& h);
[[nodiscard]] bool decode_hello(std::span<const std::uint8_t> bytes, Hello& out);

struct Progress {
  std::uint32_t task_id = 0;
  std::uint64_t completed = 0;  // components finished (incl. restored)
  std::uint64_t total = 0;
  std::uint64_t span = 0;  // the worker-side task span's id
};
void encode_progress(std::vector<std::uint8_t>& out, const Progress& p);
[[nodiscard]] bool decode_progress(std::span<const std::uint8_t> bytes, Progress& out);

// Fold frames: task_id + one serialized CpaSums (attack/cpa_kernel.h).
struct FoldFrame {
  std::uint32_t task_id = 0;
  attack::CpaSums sums;
};
void encode_fold(std::vector<std::uint8_t>& out, const FoldFrame& f);
[[nodiscard]] bool decode_fold(std::span<const std::uint8_t> bytes, FoldFrame& out);

}  // namespace fd::fleet
