#include "fleet/coordinator.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "attack/checkpoint.h"
#include "attack/parallel_attack.h"
#include "common/rng.h"
#include "exec/parallel_for.h"
#include "exec/seed_split.h"
#include "falcon/falcon.h"
#include "fleet/protocol.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/sink.h"
#include "obs/span.h"
#include "sca/campaign.h"
#include "tracestore/archive.h"

namespace fd::fleet {

namespace {

using Clock = std::chrono::steady_clock;

// Binds worker checkpoints to this experiment: a FNV-1a/mix64 digest of
// the encoded SessionConfig (every knob that changes captured bytes or
// per-component decisions is in there). Reassigned shards accept a dead
// predecessor's checkpoint iff it carries the same digest.
std::uint64_t hash_session(const SessionConfig& cfg) {
  std::vector<std::uint8_t> bytes;
  encode_session(bytes, cfg);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : bytes) h = (h ^ b) * 0x100000001b3ULL;
  return exec::mix64(h);
}

// Domain separation between the session hash (checkpoint binding) and
// the trace id derived from it ("TRAC" in ASCII).
constexpr std::uint64_t kTraceSalt = 0x54524143;

double steady_us() {
  return std::chrono::duration<double, std::micro>(Clock::now().time_since_epoch()).count();
}

struct Task {
  TaskSpec spec;
  std::size_t attempts = 0;  // dispatches so far
  enum class State : std::uint8_t { kPending, kRunning, kDone, kFailed } state = State::kPending;
  TaskResult result;
  Clock::time_point eligible_at{};  // backoff gate for retries
};

struct WorkerProc {
  int id = -1;
  pid_t pid = -1;
  int to_fd = -1;    // coordinator -> worker (worker stdin)
  int from_fd = -1;  // worker stdout -> coordinator, nonblocking
  FrameDecoder decoder;
  Clock::time_point last_seen{};
  std::ptrdiff_t task = -1;  // index into the current task vector
  bool alive = false;
};

// The whole orchestration lives in one object so the stage lambdas of
// the JobGraph share workers, telemetry, and merged state.
class Coordinator {
 public:
  Coordinator(const FleetConfig& config, FleetResult& out)
      : cfg_(config), out_(out), fplan_(config.pipeline.faults) {}

  ~Coordinator() {
    sampler_.reset();  // its thread records through the sink below
    if (sink_installed_) obs::set_sink(prev_sink_);
    shutdown_workers();
    if (telem_ != nullptr) std::fclose(telem_);
  }

  bool init() {
    ChaCha20Prng rng(cfg_.victim_seed);
    victim_ = falcon::keygen(cfg_.logn, rng);
    n_ = victim_.sk.params.n;

    session_.logn = cfg_.logn;
    session_.victim_seed = cfg_.victim_seed;
    session_.attack = cfg_.pipeline.attack;
    session_.faults = cfg_.pipeline.faults;
    session_.quality = cfg_.pipeline.quality;
    session_.single_pass = cfg_.pipeline.single_pass;
    session_.checkpoint_every = cfg_.pipeline.checkpoint_every;
    session_.heartbeat_interval_ms = cfg_.heartbeat_interval_ms;
    session_.profile_interval_ms =
        cfg_.telemetry_path.empty() ? 0 : cfg_.profile_interval_ms;
    // trace_id is still 0 while hashing, then derived from the hash:
    // the same experiment always produces the same trace tree, and the
    // checkpoint binding is independent of the trace identity.
    session_.session_hash = hash_session(session_);
    session_.trace_id = exec::mix64(session_.session_hash ^ kTraceSalt);
    obs::set_trace_root(session_.trace_id);

    results_.assign(n_, attack::ComponentResult{});
    accepted_.assign(n_, 0);

    if (!cfg_.telemetry_path.empty()) {
      telem_ = std::fopen(cfg_.telemetry_path.c_str(), "wb");
      if (telem_ == nullptr) {
        out_.error = "fleet: cannot open telemetry file " + cfg_.telemetry_path;
        return false;
      }
      // Route the coordinator's own obs events (stage spans, thread
      // names, resource samples) into the unified stream, tagged
      // "coord" so no row is untagged.
      coord_sink_ = std::make_unique<CoordSink>(*this);
      prev_sink_ = obs::sink();
      obs::set_sink(coord_sink_.get());
      sink_installed_ = true;
      obs::set_thread_name("fd-coord");
      if (session_.profile_interval_ms > 0) {
        sampler_ = std::make_unique<obs::ResourceSampler>(session_.profile_interval_ms);
      }
    }
    if (cfg_.worker_binary.empty()) {
      out_.error = "fleet: worker_binary not set";
      return false;
    }
    if (cfg_.pipeline.archive_path.empty()) {
      out_.error = "fleet: archive_path not set";
      return false;
    }
    return true;
  }

  const falcon::KeyPair& victim() { return victim_; }

  // --- stages --------------------------------------------------------------

  void stage_spawn() {
    const std::size_t want = std::max<std::size_t>(1, cfg_.workers);
    for (std::size_t i = 0; i < want; ++i) {
      if (!spawn_worker()) throw std::runtime_error("fleet: cannot spawn worker: " + spawn_error_);
    }
  }

  std::uint64_t capture_round(std::size_t round, std::size_t num_traces,
                              std::size_t query_offset, const std::string& path) {
    const std::uint64_t round_seed =
        round == 0 ? cfg_.pipeline.attack.seed
                   : exec::split_seed(cfg_.pipeline.attack.seed, 0xAD0 + round);
    const auto plan = exec::static_chunks(
        num_traces, std::max<std::size_t>(1, cfg_.pipeline.capture_shards));
    const std::size_t max_attempts =
        std::max<std::size_t>(1, cfg_.pipeline.remeasure.max_capture_attempts);
    for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
      ++out_.capture_attempts;
      if (fplan_.capture_fails(round, attempt)) {
        // Rig down: the same deterministic (round, attempt) keying and
        // backoff as the single-process pipeline.
        obs::MetricsRegistry::global().counter("attack.pipeline.capture_failures").add(1);
        if (cfg_.pipeline.remeasure.backoff_base_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(cfg_.pipeline.remeasure.backoff_base_ms << attempt));
        }
        continue;
      }
      // One capture task per shard, replicating run_campaign_sharded's
      // per-shard recipe bit for bit (seed lane, global fault offset,
      // chunk damage deferred past the merge).
      std::vector<Task> tasks(plan.size());
      std::vector<std::string> shard_paths(plan.size());
      for (std::size_t i = 0; i < plan.size(); ++i) {
        shard_paths[i] = path + ".shard" + std::to_string(i);
        TaskSpec& spec = tasks[i].spec;
        spec.task_id = next_task_id_++;
        spec.kind = TaskKind::kCapture;
        spec.capture_traces = plan[i].size();
        spec.capture_seed = exec::split_seed(round_seed, i);
        spec.fault_query_offset = query_offset + plan[i].begin;
        spec.out_path = shard_paths[i];
        // The enclosing exec.job.capture span: the worker re-parents
        // its task span under it (DESIGN.md section 13).
        spec.parent_span = obs::Span::current_context().span_id;
      }
      run_tasks(tasks);
      std::uint64_t records = 0;
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        if (tasks[i].state != Task::State::kDone) {
          // Capture shards are load-bearing: without the shard file the
          // merged archive (and every later stage) is wrong.
          for (const auto& p : shard_paths) std::remove(p.c_str());
          throw std::runtime_error("fleet: capture shard " + std::to_string(i) +
                                   " failed permanently: " + tasks[i].result.error);
        }
        records += tasks[i].result.records;
      }
      std::string err;
      if (!tracestore::merge_archives(shard_paths, path, &err)) {
        for (const auto& p : shard_paths) std::remove(p.c_str());
        throw std::runtime_error("fleet: capture merge failed: " + err);
      }
      for (const auto& p : shard_paths) std::remove(p.c_str());
      if (cfg_.pipeline.faults.chunk_corrupt_rate > 0.0) {
        std::string cerr;
        if (!sca::corrupt_archive_chunks(path, fplan_, nullptr, &cerr)) {
          throw std::runtime_error("fleet: " + cerr);
        }
      }
      emit_event("fleet.capture.round", {{"round", round},
                                         {"shards", plan.size()},
                                         {"records", records}});
      return records;
    }
    throw std::runtime_error(
        "fleet: capture round " + std::to_string(round) + ": rig down after " +
        std::to_string(max_attempts) + " attempts");
  }

  void stage_capture() {
    out_.captured_records = static_cast<std::size_t>(
        capture_round(0, cfg_.pipeline.attack.num_traces, 0, cfg_.pipeline.archive_path));
  }

  // Dispatches the listed components as contiguous component-range
  // shards and merges every returned result by global component id.
  // `allow_hooks` arms the kill/hang test hooks (main attack stage
  // only, first attempt only).
  void attack_components(const std::vector<std::size_t>& comps, bool allow_hooks) {
    if (comps.empty()) return;
    const std::size_t per =
        std::max<std::size_t>(1, cfg_.components_per_shard);
    std::vector<Task> tasks;
    for (std::size_t b = 0; b < comps.size(); b += per) {
      const std::size_t shard = tasks.size();
      Task t;
      TaskSpec& spec = t.spec;
      spec.task_id = next_task_id_++;
      spec.kind = TaskKind::kAttack;
      spec.parent_span = obs::Span::current_context().span_id;
      spec.archive_path = cfg_.pipeline.archive_path;
      spec.checkpoint_path = cfg_.pipeline.archive_path + ".task" +
                             std::to_string(spec.task_id) + ".fdckpt";
      checkpoint_paths_.push_back(spec.checkpoint_path);
      const std::size_t end = std::min(comps.size(), b + per);
      for (std::size_t i = b; i < end; ++i) {
        spec.components.push_back(static_cast<std::uint32_t>(comps[i]));
      }
      if (allow_hooks && shard == cfg_.kill_shard) spec.kill_after = cfg_.kill_after;
      if (allow_hooks && shard == cfg_.hang_shard) spec.hang_ms = cfg_.hang_ms;
      tasks.push_back(std::move(t));
    }
    out_.attack_shards += tasks.size();
    run_tasks(tasks);
    for (const Task& t : tasks) {
      if (t.state != Task::State::kDone) {
        // Graceful degradation: the shard's components stay at their
        // current (possibly default) results and ride into assemble
        // flagged; the run is partial, never silently wrong.
        for (const std::uint32_t comp : t.spec.components) {
          failed_components_.push_back(comp);
        }
        continue;
      }
      for (const ComponentOutcome& o : t.result.outcomes) {
        results_[o.component] = o.result;
        accepted_[o.component] = static_cast<std::size_t>(o.accepted);
      }
      out_.quality.add(t.result.quality);
      out_.archive_scans += t.result.archive_scans;
    }
  }

  void stage_attack() {
    std::vector<std::size_t> all(n_);
    for (std::size_t i = 0; i < n_; ++i) all[i] = i;
    attack_components(all, /*allow_hooks=*/true);
  }

  [[nodiscard]] std::vector<std::size_t> low_confidence_set() const {
    std::vector<std::size_t> low;
    if (!cfg_.pipeline.adaptive) return low;
    for (std::size_t idx = 0; idx < n_; ++idx) {
      if (!attack::component_confidence(results_[idx], accepted_[idx],
                                        cfg_.pipeline.remeasure.confidence)
               .confident) {
        low.push_back(idx);
      }
    }
    return low;
  }

  void stage_remeasure() {
    if (cfg_.pipeline.adaptive) {
      std::size_t round = 0;
      std::vector<std::size_t> low = low_confidence_set();
      const std::size_t round_traces = cfg_.pipeline.remeasure.round_traces == 0
                                           ? cfg_.pipeline.attack.num_traces
                                           : cfg_.pipeline.remeasure.round_traces;
      const std::string& archive = cfg_.pipeline.archive_path;
      while (!low.empty() && round < cfg_.pipeline.remeasure.max_rounds) {
        ++round;
        emit_event("fleet.remeasure.round",
                   {{"round", round}, {"low_confidence", low.size()}});
        const std::string extra = archive + ".r" + std::to_string(round);
        const std::size_t offset =
            cfg_.pipeline.attack.num_traces + (round - 1) * round_traces;
        capture_round(round, round_traces, offset, extra);
        const std::string merged = archive + ".merge";
        const std::string inputs[] = {archive, extra};
        std::string err;
        if (!tracestore::merge_archives(inputs, merged, &err)) {
          std::remove(extra.c_str());
          throw std::runtime_error("fleet: re-measurement merge failed: " + err);
        }
        std::remove(extra.c_str());
        if (std::rename(merged.c_str(), archive.c_str()) != 0) {
          std::remove(merged.c_str());
          throw std::runtime_error("fleet: re-measurement merge rename failed");
        }
        attack_components(low, /*allow_hooks=*/false);
        low = low_confidence_set();
      }
      out_.remeasure_rounds = round;
      out_.flagged_components = std::move(low);
    }
    // Permanently failed shards degrade the run the same way an
    // exhausted re-measurement budget does.
    out_.flagged_components.insert(out_.flagged_components.end(),
                                   failed_components_.begin(), failed_components_.end());
    std::sort(out_.flagged_components.begin(), out_.flagged_components.end());
    out_.flagged_components.erase(
        std::unique(out_.flagged_components.begin(), out_.flagged_components.end()),
        out_.flagged_components.end());
    out_.partial = !out_.flagged_components.empty();
  }

  void stage_assemble() {
    // Snapshot the merge surface before assemble_row's in-place alias
    // repair mutates it.
    out_.results = results_;
    out_.accepted_traces = accepted_;
    assembled_ = attack::assemble_row(results_, victim_.sk.params.logn, /*row=*/0);
    const auto& secret_row = victim_.sk.b01;
    out_.recovery.components_total = n_;
    for (std::size_t idx = 0; idx < n_; ++idx) {
      out_.recovery.components_correct +=
          assembled_.recovered[idx].bits() == secret_row[idx].bits();
    }
    out_.recovery.recovered_f = assembled_.poly;
    out_.recovery.f_exact = std::equal(assembled_.poly.begin(), assembled_.poly.end(),
                                       victim_.sk.f.begin(), victim_.sk.f.end());
  }

  void stage_forge() {
    auto forged = attack::forge_key(out_.recovery.recovered_f, victim_.pk);
    if (!forged) return;  // attack failed to land; not a fleet error
    out_.recovery.ntru_solved = true;
    out_.recovery.derived_g = forged->g;
    ChaCha20Prng rng(cfg_.pipeline.attack.seed ^ 0xF04C3);
    const auto sig = falcon::sign(*forged, "forged by the falcon-down adversary", rng);
    out_.recovery.forgery_verified =
        falcon::verify(victim_.pk, "forged by the falcon-down adversary", sig);
  }

  void cleanup(bool ok) {
    shutdown_workers();
    for (const auto& p : checkpoint_paths_) std::remove(p.c_str());
    if (ok && !cfg_.pipeline.keep_archive) {
      std::remove(cfg_.pipeline.archive_path.c_str());
    }
    emit_event("fleet.done", {{"ok", ok ? 1u : 0u},
                              {"workers_spawned", out_.workers_spawned},
                              {"worker_deaths", out_.worker_deaths},
                              {"reassignments", out_.reassignments}});
  }

 private:
  // --- worker lifecycle ----------------------------------------------------

  bool spawn_worker() {
    int to_pipe[2];    // coordinator writes, worker reads (stdin)
    int from_pipe[2];  // worker writes (stdout), coordinator reads
    if (::pipe(to_pipe) != 0) {
      spawn_error_ = std::strerror(errno);
      return false;
    }
    if (::pipe(from_pipe) != 0) {
      spawn_error_ = std::strerror(errno);
      ::close(to_pipe[0]);
      ::close(to_pipe[1]);
      return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      spawn_error_ = std::strerror(errno);
      for (const int fd : {to_pipe[0], to_pipe[1], from_pipe[0], from_pipe[1]}) ::close(fd);
      return false;
    }
    if (pid == 0) {
      // Child: protocol on stdin/stdout, everything else inherited.
      ::dup2(to_pipe[0], STDIN_FILENO);
      ::dup2(from_pipe[1], STDOUT_FILENO);
      for (const int fd : {to_pipe[0], to_pipe[1], from_pipe[0], from_pipe[1]}) ::close(fd);
      const char* argv[] = {cfg_.worker_binary.c_str(), "--worker", nullptr};
      ::execv(cfg_.worker_binary.c_str(), const_cast<char* const*>(argv));
      std::fprintf(stderr, "fleet worker: exec %s failed: %s\n", cfg_.worker_binary.c_str(),
                   std::strerror(errno));
      ::_exit(127);
    }
    ::close(to_pipe[0]);
    ::close(from_pipe[1]);
    const int flags = ::fcntl(from_pipe[0], F_GETFL, 0);
    ::fcntl(from_pipe[0], F_SETFL, flags | O_NONBLOCK);

    WorkerProc w;
    w.id = next_worker_id_++;
    w.pid = pid;
    w.to_fd = to_pipe[1];
    w.from_fd = from_pipe[0];
    w.last_seen = Clock::now();
    w.alive = true;
    ++out_.workers_spawned;
    emit_event("fleet.worker.spawn", {{"worker", static_cast<std::uint64_t>(w.id)},
                                      {"pid", static_cast<std::uint64_t>(pid)}});

    // Ship the session immediately; the worker processes frames in
    // order, so config-before-task holds without a handshake wait.
    std::vector<std::uint8_t> payload;
    encode_session(payload, session_);
    if (!write_frame(w, FrameType::kConfig, payload)) {
      reap_worker(w, "config write failed");
      return false;
    }
    workers_.push_back(std::move(w));
    return true;
  }

  // Full blocking write of one frame into the worker's stdin.
  bool write_frame(WorkerProc& w, FrameType type, std::span<const std::uint8_t> payload) {
    std::vector<std::uint8_t> frame;
    encode_frame(frame, type, payload);
    std::size_t off = 0;
    while (off < frame.size()) {
      const ssize_t k = ::write(w.to_fd, frame.data() + off, frame.size() - off);
      if (k < 0) {
        if (errno == EINTR) continue;
        return false;  // EPIPE: worker died (SIGPIPE is blocked below)
      }
      off += static_cast<std::size_t>(k);
    }
    return true;
  }

  // Kills (if still running) and reaps one worker; does NOT requeue its
  // task -- callers do that so the reason can be recorded first.
  void reap_worker(WorkerProc& w, const std::string& why) {
    if (!w.alive) return;
    ::kill(w.pid, SIGKILL);
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    ::close(w.to_fd);
    ::close(w.from_fd);
    w.alive = false;
    ++out_.worker_deaths;
    emit_event("fleet.worker.dead", {{"worker", static_cast<std::uint64_t>(w.id)}}, why);
  }

  void shutdown_workers() {
    for (WorkerProc& w : workers_) {
      if (!w.alive) continue;
      write_frame(w, FrameType::kShutdown, {});
    }
    // Grace window for clean exits, then the hammer.
    const auto deadline = Clock::now() + std::chrono::milliseconds(2000);
    for (WorkerProc& w : workers_) {
      if (!w.alive) continue;
      for (;;) {
        int status = 0;
        const pid_t got = ::waitpid(w.pid, &status, WNOHANG);
        if (got == w.pid || got < 0) break;
        if (Clock::now() >= deadline) {
          ::kill(w.pid, SIGKILL);
          ::waitpid(w.pid, &status, 0);
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      ::close(w.to_fd);
      ::close(w.from_fd);
      w.alive = false;
    }
    workers_.clear();
  }

  // --- the scheduler loop --------------------------------------------------

  static bool finished(const Task& t) {
    return t.state == Task::State::kDone || t.state == Task::State::kFailed;
  }

  void requeue(std::vector<Task>& tasks, std::ptrdiff_t idx) {
    if (idx < 0) return;
    Task& t = tasks[static_cast<std::size_t>(idx)];
    if (t.state != Task::State::kRunning) return;
    if (t.attempts >= std::max<std::size_t>(1, cfg_.max_task_attempts)) {
      t.state = Task::State::kFailed;
      if (t.result.error.empty()) t.result.error = "retry budget exhausted";
      emit_event("fleet.task.failed", {{"task", t.spec.task_id}});
      return;
    }
    t.state = Task::State::kPending;
    const std::size_t backoff =
        cfg_.backoff_base_ms == 0 ? 0 : cfg_.backoff_base_ms << (t.attempts - 1);
    t.eligible_at = Clock::now() + std::chrono::milliseconds(backoff);
    ++out_.reassignments;
    emit_event("fleet.task.reassign",
               {{"task", t.spec.task_id}, {"attempt", t.attempts}});
  }

  void on_worker_death(std::vector<Task>& tasks, WorkerProc& w, const std::string& why) {
    const std::ptrdiff_t task = w.task;
    w.task = -1;
    reap_worker(w, why);
    requeue(tasks, task);
  }

  void handle_frame(std::vector<Task>& tasks, WorkerProc& w, const Frame& frame) {
    w.last_seen = Clock::now();
    switch (frame.type) {
      case FrameType::kHello:
      case FrameType::kHeartbeat:
        break;
      case FrameType::kTelemetry:
        write_worker_line(w.id, frame.payload);
        break;
      case FrameType::kProgress: {
        Progress p;
        if (decode_progress(frame.payload, p)) {
          emit_event("fleet.progress", {{"worker", static_cast<std::uint64_t>(w.id)},
                                        {"task", p.task_id},
                                        {"completed", p.completed},
                                        {"total", p.total}});
        }
        break;
      }
      case FrameType::kResult: {
        TaskResult res;
        if (!decode_result(frame.payload, res)) {
          on_worker_death(tasks, w, "undecodable result frame");
          break;
        }
        const std::ptrdiff_t idx = w.task;
        w.task = -1;
        if (idx < 0 || tasks[static_cast<std::size_t>(idx)].spec.task_id != res.task_id) {
          break;  // stale result from before a reassignment: drop it
        }
        Task& t = tasks[static_cast<std::size_t>(idx)];
        t.result = std::move(res);
        if (t.result.ok) {
          t.state = Task::State::kDone;
          emit_event("fleet.task.done", {{"task", t.spec.task_id},
                                         {"worker", static_cast<std::uint64_t>(w.id)}});
        } else {
          // The worker is healthy; the task itself reported failure.
          // Bounded retries still apply (the failure may be a dead
          // archive shard a previous attempt will have rewritten).
          emit_event("fleet.task.error", {{"task", t.spec.task_id}}, t.result.error);
          requeue(tasks, idx);
        }
        break;
      }
      case FrameType::kError: {
        const std::string msg(reinterpret_cast<const char*>(frame.payload.data()),
                              frame.payload.size());
        on_worker_death(tasks, w, "worker error: " + msg);
        break;
      }
      default:
        break;
    }
  }

  // Runs every task to kDone or kFailed, spawning/replacing workers as
  // needed. Throws only when no worker can be spawned at all.
  void run_tasks(std::vector<Task>& tasks) {
    const auto remaining = [&] {
      std::size_t r = 0;
      for (const Task& t : tasks) r += !finished(t);
      return r;
    };
    while (remaining() > 0) {
      // Reap exits the pipe hasn't surfaced yet (a SIGKILLed worker's
      // EOF usually arrives first, but don't depend on ordering).
      for (WorkerProc& w : workers_) {
        if (!w.alive) continue;
        int status = 0;
        if (::waitpid(w.pid, &status, WNOHANG) == w.pid) {
          ::close(w.to_fd);
          ::close(w.from_fd);
          w.alive = false;
          ++out_.worker_deaths;
          const std::ptrdiff_t task = w.task;
          w.task = -1;
          emit_event("fleet.worker.dead", {{"worker", static_cast<std::uint64_t>(w.id)}},
                     WIFSIGNALED(status) ? "killed by signal" : "exited");
          requeue(tasks, task);
        }
      }
      std::erase_if(workers_, [](const WorkerProc& w) { return !w.alive; });

      // Keep the fleet at strength while work remains.
      const std::size_t want =
          std::min(std::max<std::size_t>(1, cfg_.workers), remaining());
      while (workers_.size() < want) {
        if (!spawn_worker()) {
          if (workers_.empty()) {
            throw std::runtime_error("fleet: no workers could be spawned: " + spawn_error_);
          }
          break;  // degrade to the workers we have
        }
      }

      // Assign eligible pending tasks to idle workers, both in index
      // order (scheduling order is observability-only; results merge by
      // component id).
      const auto now = Clock::now();
      for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
        Task& t = tasks[ti];
        if (t.state != Task::State::kPending || t.eligible_at > now) continue;
        WorkerProc* idle = nullptr;
        for (WorkerProc& w : workers_) {
          if (w.alive && w.task < 0) {
            idle = &w;
            break;
          }
        }
        if (idle == nullptr) break;
        TaskSpec spec = t.spec;
        if (t.attempts > 0) {
          // Failure hooks fire on the first attempt only -- the retry
          // must complete, that's the scenario under test.
          spec.kill_after = 0;
          spec.hang_ms = 0;
        }
        std::vector<std::uint8_t> payload;
        encode_task(payload, spec);
        ++t.attempts;
        if (!write_frame(*idle, FrameType::kTask, payload)) {
          on_worker_death(tasks, *idle, "task write failed");
          continue;
        }
        t.state = Task::State::kRunning;
        idle->task = static_cast<std::ptrdiff_t>(ti);
        emit_event("fleet.task.assign",
                   {{"task", spec.task_id},
                    {"worker", static_cast<std::uint64_t>(idle->id)},
                    {"attempt", t.attempts},
                    {"components", spec.components.size()}});
      }

      // Wait for traffic.
      std::vector<pollfd> fds;
      fds.reserve(workers_.size());
      for (const WorkerProc& w : workers_) {
        fds.push_back({w.from_fd, POLLIN, 0});
      }
      const int timeout_ms = static_cast<int>(
          std::clamp<std::size_t>(cfg_.heartbeat_interval_ms, 5, 200));
      ::poll(fds.data(), fds.size(), timeout_ms);

      for (std::size_t i = 0; i < fds.size(); ++i) {
        WorkerProc& w = workers_[i];
        if (!w.alive || (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        bool eof = false;
        std::uint8_t buf[64 << 10];
        for (;;) {
          const ssize_t k = ::read(w.from_fd, buf, sizeof buf);
          if (k > 0) {
            w.decoder.feed({buf, static_cast<std::size_t>(k)});
            continue;
          }
          if (k == 0) eof = true;
          if (k < 0 && errno == EINTR) continue;
          break;  // EAGAIN (drained) or EOF or error
        }
        Frame frame;
        while (w.alive && w.decoder.next(frame)) handle_frame(tasks, w, frame);
        if (w.alive && w.decoder.corrupt()) {
          on_worker_death(tasks, w, "corrupt frame stream: " + w.decoder.error());
        } else if (w.alive && eof) {
          on_worker_death(tasks, w, "pipe closed");
        }
      }

      // Heartbeat timeouts: any frame counts as liveness.
      const auto deadline_now = Clock::now();
      for (WorkerProc& w : workers_) {
        if (!w.alive) continue;
        const auto silent = std::chrono::duration_cast<std::chrono::milliseconds>(
                                deadline_now - w.last_seen)
                                .count();
        if (silent > static_cast<long long>(cfg_.heartbeat_timeout_ms)) {
          on_worker_death(tasks, w, "heartbeat timeout");
        }
      }
    }
  }

  // --- telemetry -----------------------------------------------------------

  void write_line(std::string_view line) {
    if (telem_ == nullptr || line.empty()) return;
    // The resource-sampler thread records through CoordSink while the
    // poll loop writes worker lines; one lock keeps lines whole.
    const std::lock_guard<std::mutex> lock(telem_mu_);
    std::fwrite(line.data(), 1, line.size(), telem_);
    std::fputc('\n', telem_);
    std::fflush(telem_);  // per-line flush: --follow tails a live run
    ++out_.telemetry_lines;
  }

  // Tags a worker's JSONL line with its id: `..}` -> `..,"worker":N}`.
  void write_worker_line(int worker_id, std::span<const std::uint8_t> payload) {
    if (telem_ == nullptr) return;
    std::string line(reinterpret_cast<const char*>(payload.data()), payload.size());
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) line.pop_back();
    const std::size_t brace = line.rfind('}');
    if (brace != std::string::npos) {
      line.insert(brace, ",\"worker\":" + std::to_string(worker_id));
    }
    write_line(line);
  }

  // Coordinator-side fleet.* lines, built on the always-compiled Event
  // model so they flow even in FD_OBS=OFF builds.
  void emit_event(std::string_view name,
                  std::initializer_list<std::pair<const char*, std::uint64_t>> fields,
                  const std::string& detail = {}) {
    if (telem_ == nullptr) return;
    obs::Event ev;
    ev.name = std::string(name);
    ev.add("ts_us", obs::FieldValue::of(steady_us()));
    for (const auto& [key, value] : fields) ev.add(key, obs::FieldValue::of(value));
    if (!detail.empty()) ev.add("detail", obs::FieldValue::of(std::string_view(detail)));
    write_coord_event(ev);
  }

  // Tags an event "worker":"coord" (unless it already carries a numeric
  // "worker" subject field, e.g. fleet.worker.spawn) and writes it, so
  // the unified stream has no untagged rows.
  void write_coord_event(const obs::Event& ev) {
    if (ev.find("worker") != nullptr) {
      write_line(obs::to_jsonl(ev));
      return;
    }
    obs::Event tagged = ev;
    tagged.add("worker", obs::FieldValue::of(std::string_view("coord")));
    write_line(obs::to_jsonl(tagged));
  }

  // Sink for the coordinator's own obs events (JobGraph stage spans,
  // resource samples, thread names): straight into the unified file.
  class CoordSink final : public obs::TelemetrySink {
   public:
    explicit CoordSink(Coordinator& coord) : coord_(coord) {}
    void record(const obs::Event& ev) override { coord_.write_coord_event(ev); }

   private:
    Coordinator& coord_;
  };

  const FleetConfig& cfg_;
  FleetResult& out_;
  sca::FaultPlan fplan_;
  falcon::KeyPair victim_;
  std::size_t n_ = 0;
  SessionConfig session_;

  std::vector<WorkerProc> workers_;
  int next_worker_id_ = 0;
  std::uint32_t next_task_id_ = 1;
  std::string spawn_error_;

  std::vector<attack::ComponentResult> results_;
  std::vector<std::size_t> accepted_;
  std::vector<std::uint32_t> failed_components_;
  std::vector<std::string> checkpoint_paths_;
  attack::RowAssembly assembled_;

  std::unique_ptr<CoordSink> coord_sink_;
  obs::TelemetrySink* prev_sink_ = nullptr;
  bool sink_installed_ = false;
  std::unique_ptr<obs::ResourceSampler> sampler_;
  std::mutex telem_mu_;
  std::FILE* telem_ = nullptr;
};

// Writing into a pipe whose worker just died must surface as EPIPE, not
// kill the coordinator. Scoped so library users keep their disposition.
class ScopedSigpipeIgnore {
 public:
  ScopedSigpipeIgnore() { prev_ = ::signal(SIGPIPE, SIG_IGN); }
  ~ScopedSigpipeIgnore() { ::signal(SIGPIPE, prev_); }

 private:
  void (*prev_)(int);
};

}  // namespace

FleetResult run_fleet(const FleetConfig& config) {
  FleetResult out;
  ScopedSigpipeIgnore sigpipe;
  Coordinator coord(config, out);
  if (!coord.init()) return out;

  {
    // The campaign root: stage spans (exec.job.*) nest under it via the
    // thread-local span stack, and its ids adopt the ambient context
    // installed by init()'s set_trace_root, so every process in the run
    // shares one trace_id.
    obs::Span root("fleet.pipeline", obs::Span::Root::kAdopt);
    exec::JobGraph graph;
    const auto spawn = graph.add("spawn", [&] { coord.stage_spawn(); });
    const auto capture = graph.add("capture", [&] { coord.stage_capture(); }, {spawn});
    const auto attack = graph.add("attack", [&] { coord.stage_attack(); }, {capture});
    const auto remeasure = graph.add("remeasure", [&] { coord.stage_remeasure(); }, {attack});
    const auto assemble = graph.add("assemble", [&] { coord.stage_assemble(); }, {remeasure});
    graph.add("forge", [&] { coord.stage_forge(); }, {assemble});

    out.stages = graph.run_collect(nullptr, &out.error);
    out.ok = out.error.empty();
  }
  coord.cleanup(out.ok);
  obs::MetricsRegistry::global().counter("fleet.runs").add(1);
  return out;
}

}  // namespace fd::fleet
