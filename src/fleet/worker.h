#pragma once
// Fleet worker: the subprocess side of fleet mode.
//
// `fd-attack --worker` calls run_worker with its inherited pipe fds and
// never touches argv beyond that -- everything about the experiment
// arrives as a kConfig frame, tasks as kTask frames, and the loop exits
// on kShutdown (or EOF, when the coordinator died). The worker wraps
// the existing single-process pipeline stages:
//
//   capture tasks  -> sca::run_campaign_to_archive with the exact
//                     per-shard (seed, fault offset) the coordinator
//                     computed from the shard plan, so shard files are
//                     byte-identical to a single-process sharded run;
//   attack tasks   -> attack::attack_components_gated over the task's
//                     component ids in sub-batches of checkpoint_every,
//                     persisting its own .fdckpt (at the task-stable
//                     path from the spec) after every batch -- a
//                     reassigned shard resumes from the dead worker's
//                     checkpoint and completes bit-identically.
//
// Liveness is a dedicated heartbeat thread ticking kHeartbeat frames
// every heartbeat_interval_ms; all pipe writes go through one mutex so
// frames from the heartbeat thread, the telemetry-forwarding sink, and
// the task loop never interleave mid-frame.

namespace fd::fleet {

// Runs the worker protocol loop reading frames from `in_fd` and writing
// frames to `out_fd` (blocking I/O on both). Returns the process exit
// code: 0 after a clean kShutdown or coordinator EOF, nonzero on a
// corrupt stream or an unrecoverable local error.
int run_worker(int in_fd, int out_fd);

}  // namespace fd::fleet
