#include "fleet/worker.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "attack/checkpoint.h"
#include "attack/parallel_attack.h"
#include "common/rng.h"
#include "exec/seed_split.h"
#include "falcon/falcon.h"
#include "fleet/protocol.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/sink.h"
#include "obs/span.h"
#include "sca/campaign.h"

namespace fd::fleet {

namespace {

// Serializes every frame write onto one fd: the task loop, the
// heartbeat thread, and the telemetry sink all write here, and a frame
// must hit the pipe atomically (the decoder has no resync marker).
class FrameWriter {
 public:
  explicit FrameWriter(int fd) : fd_(fd) {}

  bool send(FrameType type, std::span<const std::uint8_t> payload) {
    std::vector<std::uint8_t> frame;
    frame.reserve(kFrameHeaderSize + payload.size());
    encode_frame(frame, type, payload);
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t off = 0;
    while (off < frame.size()) {
      const ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;  // coordinator gone; caller decides how to die
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool send(FrameType type) { return send(type, {}); }

  bool send_string(FrameType type, std::string_view s) {
    return send(type, {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }

 private:
  int fd_;
  std::mutex mu_;
};

// Forwards every locally emitted obs event to the coordinator as a
// kTelemetry frame (one JSONL line per frame). The coordinator tags the
// line with this worker's id and appends it to the unified stream.
class ForwardingSink final : public obs::TelemetrySink {
 public:
  explicit ForwardingSink(FrameWriter& writer) : writer_(writer) {}
  void record(const obs::Event& ev) override {
    writer_.send_string(FrameType::kTelemetry, obs::to_jsonl(ev));
  }

 private:
  FrameWriter& writer_;
};

// Liveness ticks on their own thread so a long CPA batch never reads
// as a dead worker. `mute` is the hang_ms test hook: a muted heartbeat
// is exactly what a wedged worker looks like from the coordinator.
class Heartbeat {
 public:
  Heartbeat(FrameWriter& writer, std::size_t interval_ms)
      : writer_(writer), interval_ms_(interval_ms == 0 ? 50 : interval_ms) {
    thread_ = std::thread([this] { run(); });
  }
  ~Heartbeat() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }
  void mute(bool on) { mute_.store(on, std::memory_order_relaxed); }

 private:
  void run() {
    obs::set_thread_name("fd-heartbeat");
    while (!stop_.load(std::memory_order_relaxed)) {
      if (!mute_.load(std::memory_order_relaxed)) writer_.send(FrameType::kHeartbeat);
      // Sleep in short slices so destruction never waits a full interval.
      std::size_t slept = 0;
      while (slept < interval_ms_ && !stop_.load(std::memory_order_relaxed)) {
        const std::size_t slice = std::min<std::size_t>(10, interval_ms_ - slept);
        std::this_thread::sleep_for(std::chrono::milliseconds(slice));
        slept += slice;
      }
    }
  }

  FrameWriter& writer_;
  std::size_t interval_ms_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> mute_{false};
  std::thread thread_;
};

// Per-session worker state, built once the kConfig frame arrives.
struct Session {
  SessionConfig cfg;
  falcon::KeyPair victim;
  std::unique_ptr<exec::ThreadPool> pool;
};

TaskResult run_capture_task(const Session& s, const TaskSpec& spec) {
  // Graft this task under the coordinator's JobGraph stage span: the
  // propagated parent becomes the ambient context, the task span its
  // child, and every span the campaign opens below nests inside.
  const obs::ScopedSpanParent reparent(
      obs::SpanContext{s.cfg.trace_id, spec.parent_span, 0},
      static_cast<std::uint64_t>(spec.task_id) << 32);
  obs::Span task_span("fleet.task.capture");
  task_span.note("task", spec.task_id);
  TaskResult res;
  res.task_id = spec.task_id;
  res.kind = TaskKind::kCapture;
  res.span = task_span.context().span_id;
  sca::CampaignConfig camp;
  camp.num_traces = static_cast<std::size_t>(spec.capture_traces);
  camp.device = s.cfg.attack.device;
  camp.seed = spec.capture_seed;
  camp.row = 0;
  camp.faults = s.cfg.faults;
  // Chunk damage keys on the MERGED archive's chunk ordinals; the
  // coordinator applies it after the merge, exactly like
  // run_campaign_sharded defers it past the shard files.
  camp.faults.chunk_corrupt_rate = 0.0;
  camp.fault_query_offset = static_cast<std::size_t>(spec.fault_query_offset);
  const auto campaign = sca::run_campaign_to_archive(s.victim.sk, camp, spec.out_path);
  if (!campaign.ok) {
    res.error = "capture: " + campaign.error;
    return res;
  }
  res.queries = campaign.queries;
  res.records = campaign.records;
  res.ok = true;
  return res;
}

TaskResult run_attack_task(const Session& s, const TaskSpec& spec, FrameWriter& writer,
                           Heartbeat& heartbeat) {
  const obs::ScopedSpanParent reparent(
      obs::SpanContext{s.cfg.trace_id, spec.parent_span, 0},
      static_cast<std::uint64_t>(spec.task_id) << 32);
  obs::Span task_span("fleet.task.attack");
  task_span.note("task", spec.task_id);
  TaskResult res;
  res.task_id = spec.task_id;
  res.kind = TaskKind::kAttack;
  res.span = task_span.context().span_id;
  if (spec.hang_ms > 0) {
    // Wedge simulation: stop announcing liveness and stall. The
    // coordinator's heartbeat timeout must fire and reassign the shard;
    // when it SIGKILLs us mid-sleep we never wake up.
    heartbeat.mute(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(spec.hang_ms));
    heartbeat.mute(false);
  }

  const std::size_t n = s.victim.sk.params.n;
  const auto config_for = [&](const attack::ComponentIndex& ci) {
    return attack::component_attack_config(s.victim.sk, s.cfg.attack, /*row=*/0, ci.slot,
                                           ci.imag);
  };

  // The shard's own checkpoint, bound to (session, task) so a worker
  // restarted on the SAME task resumes it and any other task refuses
  // the file. Components finished by a dead predecessor are skipped --
  // their results come out of the checkpoint bit-identical.
  const std::uint64_t ckpt_hash = s.cfg.session_hash ^ exec::mix64(spec.task_id + 1);
  attack::CheckpointState st;
  st.reset(n);
  st.config_hash = ckpt_hash;
  if (!spec.checkpoint_path.empty()) {
    attack::CheckpointState loaded;
    if (attack::load_checkpoint(spec.checkpoint_path, loaded) &&
        loaded.config_hash == ckpt_hash && loaded.done.size() == n) {
      st = std::move(loaded);
    }
  }

  std::vector<attack::ComponentResult> results(n);
  std::vector<std::size_t> accepted(n, 0);
  std::vector<std::size_t> todo;
  std::uint64_t done_before = 0;
  for (const std::uint32_t comp : spec.components) {
    if (comp >= n) {
      res.error = "attack: component id out of range";
      return res;
    }
    if (st.done[comp] != 0) {
      results[comp] = st.results[comp];
      accepted[comp] = static_cast<std::size_t>(st.accepted_traces[comp]);
      ++done_before;
    } else {
      todo.push_back(comp);
    }
  }

  auto& scans = obs::MetricsRegistry::global().counter("attack.archive.scans");
  const std::uint64_t scans_before = scans.value();
  const std::size_t batch_size =
      s.cfg.checkpoint_every == 0 ? std::max<std::size_t>(1, todo.size())
                                  : s.cfg.checkpoint_every;
  std::uint64_t completed_this_run = 0;
  for (std::size_t b = 0; b < todo.size(); b += batch_size) {
    const std::size_t end = std::min(todo.size(), b + batch_size);
    const std::span<const std::size_t> batch(todo.data() + b, end - b);
    attack::QualityReport q;
    std::string err;
    if (!attack::attack_components_gated(spec.archive_path, s.cfg.quality, config_for,
                                         s.pool.get(), batch, results, accepted, &q, &err,
                                         s.cfg.single_pass)) {
      res.error = "attack: " + err;
      return res;
    }
    res.quality.add(q);
    for (const std::size_t idx : batch) {
      st.done[idx] = 1;
      st.results[idx] = results[idx];
      st.accepted_traces[idx] = accepted[idx];
    }
    completed_this_run += batch.size();
    if (!spec.checkpoint_path.empty()) {
      std::string perr;
      if (!attack::save_checkpoint(spec.checkpoint_path, st, &perr)) {
        res.error = perr;
        return res;
      }
    }
    Progress p;
    p.task_id = spec.task_id;
    p.completed = done_before + completed_this_run;
    p.total = spec.components.size();
    p.span = task_span.context().span_id;
    std::vector<std::uint8_t> payload;
    encode_progress(payload, p);
    writer.send(FrameType::kProgress, payload);
    if (spec.kill_after > 0 && completed_this_run >= spec.kill_after) {
      // Crash simulation with the persist-then-die ordering the
      // reassignment test relies on: the checkpoint above has this
      // batch, the kResult frame never goes out.
      std::raise(SIGKILL);
    }
  }

  res.archive_scans = scans.value() - scans_before;
  res.outcomes.reserve(spec.components.size());
  for (const std::uint32_t comp : spec.components) {
    ComponentOutcome o;
    o.component = comp;
    o.result = results[comp];
    o.accepted = accepted[comp];
    res.outcomes.push_back(std::move(o));
  }
  // The shard is done and reported; its checkpoint must not shadow a
  // later experiment reusing the path.
  if (!spec.checkpoint_path.empty()) std::remove(spec.checkpoint_path.c_str());
  res.ok = true;
  return res;
}

}  // namespace

int run_worker(int in_fd, int out_fd) {
  FrameWriter writer(out_fd);
  FrameDecoder decoder;
  std::optional<Session> session;
  std::unique_ptr<Heartbeat> heartbeat;
  std::unique_ptr<ForwardingSink> telemetry;
  std::unique_ptr<obs::ResourceSampler> sampler;

  {
    Hello hello;
    hello.pid = static_cast<std::uint64_t>(::getpid());
    std::vector<std::uint8_t> payload;
    encode_hello(payload, hello);
    writer.send(FrameType::kHello, payload);
  }

  // Uninstall the forwarding sink before any exit -- the heartbeat and
  // sink objects die with this scope, and a dangling global sink in a
  // still-winding-down process is a use-after-free waiting to happen.
  const auto finish = [&](int code) {
    sampler.reset();  // stop sampling before the sink goes away
    obs::set_sink(nullptr);
    return code;
  };

  std::uint8_t buf[64 << 10];
  for (;;) {
    Frame frame;
    while (!decoder.next(frame)) {
      if (decoder.corrupt()) {
        writer.send_string(FrameType::kError, "worker: " + decoder.error());
        return finish(1);
      }
      const ssize_t n = ::read(in_fd, buf, sizeof buf);
      if (n < 0) {
        if (errno == EINTR) continue;
        return finish(1);
      }
      if (n == 0) return finish(0);  // coordinator closed the pipe: orderly exit
      decoder.feed({buf, static_cast<std::size_t>(n)});
    }

    switch (frame.type) {
      case FrameType::kConfig: {
        SessionConfig cfg;
        if (!decode_session(frame.payload, cfg)) {
          writer.send_string(FrameType::kError, "worker: bad session config");
          return finish(1);
        }
        // Trace identity + telemetry come up BEFORE the session is
        // built: pool threads announce their names through the sink as
        // they start, and every span from here on carries the
        // campaign's propagated trace id.
        obs::set_trace_root(cfg.trace_id);
        telemetry = std::make_unique<ForwardingSink>(writer);
        obs::set_sink(telemetry.get());
        obs::set_thread_name("fd-worker");
        if (cfg.profile_interval_ms > 0) {
          sampler = std::make_unique<obs::ResourceSampler>(cfg.profile_interval_ms);
        }
        heartbeat = std::make_unique<Heartbeat>(writer, cfg.heartbeat_interval_ms);
        Session s;
        s.cfg = cfg;
        ChaCha20Prng rng(cfg.victim_seed);
        s.victim = falcon::keygen(cfg.logn, rng);
        if (cfg.attack.threads > 1) {
          s.pool = std::make_unique<exec::ThreadPool>(cfg.attack.threads);
        }
        session.emplace(std::move(s));
        break;
      }
      case FrameType::kTask: {
        if (!session) {
          writer.send_string(FrameType::kError, "worker: task before config");
          return finish(1);
        }
        TaskSpec spec;
        if (!decode_task(frame.payload, spec)) {
          writer.send_string(FrameType::kError, "worker: bad task spec");
          return finish(1);
        }
        const TaskResult res = spec.kind == TaskKind::kCapture
                                   ? run_capture_task(*session, spec)
                                   : run_attack_task(*session, spec, writer, *heartbeat);
        std::vector<std::uint8_t> payload;
        encode_result(payload, res);
        writer.send(FrameType::kResult, payload);
        break;
      }
      case FrameType::kShutdown:
        return finish(0);
      default:
        // Unknown-but-well-framed types are skipped: a newer
        // coordinator may speak frames this worker predates.
        break;
    }
  }
}

}  // namespace fd::fleet
