#include "attack/checkpoint.h"

#include <bit>
#include <cstdio>
#include <cstring>

#include "tracestore/archive.h"

namespace fd::attack {

namespace {

constexpr char kMagic[8] = {'F', 'D', 'C', 'K', 'P', 'T', '1', '\0'};

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v >> 16));
  b.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  put_u32(b, static_cast<std::uint32_t>(v));
  put_u32(b, static_cast<std::uint32_t>(v >> 32));
}

void put_phase(std::vector<std::uint8_t>& b, const PhaseOutcome& p) {
  put_u32(b, p.value);
  put_u64(b, std::bit_cast<std::uint64_t>(p.score));
  put_u32(b, static_cast<std::uint32_t>(p.top.size()));
  for (const auto& s : p.top) {
    put_u32(b, s.guess);
    put_u64(b, std::bit_cast<std::uint64_t>(s.score));
  }
}

void put_result(std::vector<std::uint8_t>& b, const ComponentResult& r) {
  b.push_back(r.sign ? 1 : 0);
  put_u32(b, r.exponent);
  put_u32(b, r.x0);
  put_u32(b, r.x1);
  put_u64(b, r.bits);
  for (const PhaseOutcome* p : {&r.sign_phase, &r.exp_phase, &r.low_extend, &r.low_prune,
                                &r.high_extend, &r.high_prune}) {
    put_phase(b, *p);
  }
}

// Bounds-checked little-endian cursor; any overrun latches `fail`.
struct Cursor {
  const std::uint8_t* p = nullptr;
  std::size_t size = 0;
  std::size_t off = 0;
  bool fail = false;

  [[nodiscard]] bool take(std::size_t n) {
    if (fail || size - off < n) {
      fail = true;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!take(1)) return 0;
    return p[off++];
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    const std::uint32_t v = static_cast<std::uint32_t>(p[off]) |
                            static_cast<std::uint32_t>(p[off + 1]) << 8 |
                            static_cast<std::uint32_t>(p[off + 2]) << 16 |
                            static_cast<std::uint32_t>(p[off + 3]) << 24;
    off += 4;
    return v;
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | static_cast<std::uint64_t>(u32()) << 32;
  }
};

void get_phase(Cursor& c, PhaseOutcome& p) {
  p.value = c.u32();
  p.score = std::bit_cast<double>(c.u64());
  const std::uint32_t count = c.u32();
  p.top.clear();
  if (c.fail || count > c.size) {  // count can't exceed remaining bytes / 12
    c.fail = true;
    return;
  }
  p.top.reserve(count);
  for (std::uint32_t i = 0; i < count && !c.fail; ++i) {
    StreamingScan::Scored s;
    s.guess = c.u32();
    s.score = std::bit_cast<double>(c.u64());
    p.top.push_back(s);
  }
}

void get_result(Cursor& c, ComponentResult& r) {
  r.sign = c.u8() != 0;
  r.exponent = c.u32();
  r.x0 = c.u32();
  r.x1 = c.u32();
  r.bits = c.u64();
  for (PhaseOutcome* p : {&r.sign_phase, &r.exp_phase, &r.low_extend, &r.low_prune,
                          &r.high_extend, &r.high_prune}) {
    get_phase(c, *p);
  }
}

}  // namespace

void serialize_component_result(std::vector<std::uint8_t>& out, const ComponentResult& r) {
  put_result(out, r);
}

bool deserialize_component_result(std::span<const std::uint8_t> bytes, std::size_t& offset,
                                  ComponentResult& out) {
  if (offset > bytes.size()) return false;
  Cursor c{bytes.data() + offset, bytes.size() - offset, 0, false};
  get_result(c, out);
  if (c.fail) return false;
  offset += c.off;
  return true;
}

bool save_checkpoint(const std::string& path, const CheckpointState& state,
                     std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = "checkpoint save: " + what + ": " + path;
    return false;
  };
  const std::size_t n = state.done.size();
  if (state.results.size() != n || state.accepted_traces.size() != n) {
    return fail("inconsistent state vectors");
  }

  std::vector<std::uint8_t> payload;
  put_u64(payload, state.config_hash);
  put_u32(payload, static_cast<std::uint32_t>(n));
  put_u32(payload, state.remeasure_round);
  for (std::size_t i = 0; i < n; ++i) {
    payload.push_back(state.done[i] != 0 ? 1 : 0);
    if (state.done[i] != 0) {
      put_result(payload, state.results[i]);
      put_u64(payload, state.accepted_traces[i]);
    }
  }
  const std::uint32_t crc = tracestore::crc32({payload.data(), payload.size()});

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return fail("cannot open temp file");
  bool ok = std::fwrite(kMagic, 1, sizeof(kMagic), f) == sizeof(kMagic);
  std::uint8_t crc_le[4] = {static_cast<std::uint8_t>(crc), static_cast<std::uint8_t>(crc >> 8),
                            static_cast<std::uint8_t>(crc >> 16),
                            static_cast<std::uint8_t>(crc >> 24)};
  ok = ok && std::fwrite(crc_le, 1, 4, f) == 4;
  ok = ok && (payload.empty() ||
              std::fwrite(payload.data(), 1, payload.size(), f) == payload.size());
  ok = std::fflush(f) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return fail("write failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return fail("rename failed");
  }
  return true;
}

bool load_checkpoint(const std::string& path, CheckpointState& state, std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = "checkpoint load: " + what + ": " + path;
    return false;
  };
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail("cannot open");
  char magic[8];
  std::uint8_t crc_le[4];
  if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    std::fclose(f);
    return fail("bad magic");
  }
  if (std::fread(crc_le, 1, 4, f) != 4) {
    std::fclose(f);
    return fail("truncated header");
  }
  std::vector<std::uint8_t> payload;
  std::uint8_t buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    payload.insert(payload.end(), buf, buf + got);
  }
  std::fclose(f);
  const std::uint32_t want = static_cast<std::uint32_t>(crc_le[0]) |
                             static_cast<std::uint32_t>(crc_le[1]) << 8 |
                             static_cast<std::uint32_t>(crc_le[2]) << 16 |
                             static_cast<std::uint32_t>(crc_le[3]) << 24;
  if (tracestore::crc32({payload.data(), payload.size()}) != want) {
    return fail("CRC mismatch");
  }

  Cursor c{payload.data(), payload.size(), 0, false};
  state.config_hash = c.u64();
  const std::uint32_t n = c.u32();
  state.remeasure_round = c.u32();
  if (c.fail || n > (1U << 20)) return fail("corrupt payload");
  state.done.assign(n, 0);
  state.results.assign(n, ComponentResult{});
  state.accepted_traces.assign(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    state.done[i] = c.u8();
    if (state.done[i] != 0) {
      get_result(c, state.results[i]);
      state.accepted_traces[i] = c.u64();
    }
    if (c.fail) return fail("corrupt payload");
  }
  if (c.off != c.size) return fail("trailing bytes");
  return true;
}

}  // namespace fd::attack
