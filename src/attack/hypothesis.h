#pragma once
// Leakage hypothesis models.
//
// Given a guess for one component of the secret (sign, 11-bit exponent,
// 25-bit low mantissa half, 28-bit high mantissa half) and the known
// operand of a trace, each model predicts the Hamming weight of the
// corresponding soft-float intermediate. The models call the exact same
// mul_mantissa_steps() pipeline as the device, so predictions match the
// leaked values bit for bit; only the measurement noise separates them.

#include <bit>
#include <cstdint>

#include "fpr/fpr.h"

namespace fd::attack {

// Decomposition of a known 64-bit operand as the y-side of fpr_mul.
struct KnownOperand {
  std::uint32_t y0;   // low 25 bits of the significand
  std::uint32_t y1;   // high 28 bits
  unsigned exponent;  // biased 11-bit exponent
  bool sign;

  [[nodiscard]] static KnownOperand from(fpr::Fpr v) {
    const std::uint64_t m = v.significand();
    return {static_cast<std::uint32_t>(m) & fpr::kMantLowMask,
            static_cast<std::uint32_t>(m >> fpr::kMantLowBits), v.biased_exponent(), v.sign()};
  }
};

// --- sign / exponent ------------------------------------------------------

[[nodiscard]] inline double hyp_sign(bool guess_sign, const KnownOperand& k) {
  return static_cast<double>(guess_sign != k.sign);  // HW of a single XOR bit
}

// Models the signed 32-bit intermediate e = Eg + Ey - 2100 of the
// reference FPEMU exponent datapath; the two's-complement wrap around
// zero is what separates exponent guesses whose plain sums would be
// Hamming-weight aliases.
[[nodiscard]] inline double hyp_exponent(unsigned guess_exp, const KnownOperand& k) {
  const auto e = static_cast<std::uint32_t>(
      static_cast<std::int32_t>(guess_exp + k.exponent) - 2100);
  return std::popcount(e);
}

// --- mantissa low half (25 bits, the paper's "D" with known "B"=y0, "A"=y1)

// Extend targets: the two schoolbook partial products involving x0.
[[nodiscard]] inline double hyp_low_mul_ll(std::uint32_t x0, const KnownOperand& k) {
  return std::popcount(static_cast<std::uint64_t>(x0) * k.y0);
}
[[nodiscard]] inline double hyp_low_mul_lh(std::uint32_t x0, const KnownOperand& k) {
  return std::popcount(static_cast<std::uint64_t>(x0) * k.y1);
}

// Prune target: the z1a accumulation (depends on x0 and knowns only --
// the alignment of the two x0 products differs, which is exactly what
// breaks the shift false positives).
[[nodiscard]] inline double hyp_low_add_z1a(std::uint32_t x0, const KnownOperand& k) {
  const std::uint64_t ym =
      (static_cast<std::uint64_t>(k.y1) << fpr::kMantLowBits) | k.y0;
  // z1a is independent of x1 (property-tested); use any valid high half.
  const std::uint64_t xm = (std::uint64_t{1} << 52) | x0;
  return std::popcount(static_cast<std::uint64_t>(fpr::mul_mantissa_steps(xm, ym).z1a));
}

// --- mantissa high half (28 bits, top bit always 1: 2^27 guesses) ---------

[[nodiscard]] inline double hyp_high_mul_hl(std::uint32_t x1, const KnownOperand& k) {
  return std::popcount(static_cast<std::uint64_t>(x1) * k.y0);
}
[[nodiscard]] inline double hyp_high_mul_hh(std::uint32_t x1, const KnownOperand& k) {
  return std::popcount(static_cast<std::uint64_t>(x1) * k.y1);
}

// Prune target: the final zu accumulation; requires the previously
// recovered low half x0.
[[nodiscard]] inline double hyp_high_add_zu(std::uint32_t x1, std::uint32_t x0,
                                            const KnownOperand& k) {
  const std::uint64_t ym =
      (static_cast<std::uint64_t>(k.y1) << fpr::kMantLowBits) | k.y0;
  const std::uint64_t xm = (static_cast<std::uint64_t>(x1) << fpr::kMantLowBits) | x0;
  return std::popcount(fpr::mul_mantissa_steps(xm, ym).zu);
}

// Secondary prune target z1b (also x0- and x1-dependent).
[[nodiscard]] inline double hyp_high_add_z1b(std::uint32_t x1, std::uint32_t x0,
                                             const KnownOperand& k) {
  const std::uint64_t ym =
      (static_cast<std::uint64_t>(k.y1) << fpr::kMantLowBits) | k.y0;
  const std::uint64_t xm = (static_cast<std::uint64_t>(x1) << fpr::kMantLowBits) | x0;
  return std::popcount(static_cast<std::uint64_t>(fpr::mul_mantissa_steps(xm, ym).z1b));
}

}  // namespace fd::attack
