#pragma once
// Blocked, batch-buffered CPA accumulation kernel.
//
// The Pearson distinguisher is the repo's hottest loop: per coefficient
// it folds D traces x G hypotheses x S sample points into five running
// sums. The naive per-trace rank-1 update (one add_trace per trace)
// serializes every accumulator on the FP-add latency chain and walks
// the whole G x S table once per trace. This kernel restructures the
// fold the way the FALCON FFT/IFFT hardware work batches its butterfly
// arithmetic: traces are buffered in batches of B and each batch is
// folded as a tiled H^T.S matrix-multiply update into sum_ht -- per
// (guess, sample) cell a length-B dot product over contiguous double
// rows, which the 4-lane reduction below turns into four independent
// FMA chains (ILP/auto-vectorization friendly) while each sum_ht row is
// touched once per batch instead of once per trace.
//
// Canonical accumulation order (the determinism contract):
//   - batches are folded in arrival order; within a batch every
//     accumulator cell is updated exactly once, so the traversal order
//     of the guess/sample tiling never affects any cell's value --
//     tile sizes are pure performance knobs;
//   - every per-cell reduction over the batch runs in the fixed 4-lane
//     order of lanes4_* below (lane j takes elements j, j+4, j+8, ...;
//     lanes combine as (l0+l1)+(l2+l3)).
// Results are therefore a pure function of (trace stream, batch_traces)
// at any worker count and any tiling. batch_traces = 1 degenerates to
// the exact historical per-trace fold order (the "naive" reference the
// equivalence tests and bench_cpa_kernel compare against); other batch
// sizes differ from it only by the documented <=ULP-level reassociation
// inside each batch.
//
// Numerical stability (the cancellation bugfix): all sums are
// accumulated over SHIFTED data -- the first trace folded becomes the
// reference (ref_h per guess, ref_t per sample) and every later value
// enters as (x - ref). Pearson correlation is invariant under the
// shift, but the one-pass moment forms dn*sum2 - sum*sum no longer
// cancel catastrophically when traces carry a large DC offset (samples
// ~ 1e7 +- HW used to drive var_t negative and silently zero r).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace fd::attack {

inline constexpr std::size_t kDefaultCpaBatch = 64;

// --- fixed-order reduction primitives -------------------------------------
//
// Four independent accumulator lanes over the index stream (lane j sums
// elements j, j+4, j+8, ...), combined as (l0+l1)+(l2+l3). The order is
// part of the kernel's determinism contract: it depends only on n,
// never on alignment, tiling, or the surrounding call site.

[[nodiscard]] double lanes4_sum(const double* x, std::size_t n);
[[nodiscard]] double lanes4_sumsq(const double* x, std::size_t n);
[[nodiscard]] double lanes4_dot(const double* a, const double* b, std::size_t n);

// Fused per-guess fold over one batch/block: sh = sum h, sh2 = sum h^2,
// sht = sum h*t, all in the same 4-lane order.
struct HFold {
  double sh = 0.0;
  double sh2 = 0.0;
  double sht = 0.0;
};
[[nodiscard]] HFold lanes4_fold_h(const double* h, const double* t, std::size_t n);

// --- kernel configuration -------------------------------------------------

struct CpaKernelConfig {
  // Traces buffered before a fold. Part of the statistics' identity
  // (reassociation within a batch): experiments hash it alongside the
  // seed. 1 = the naive per-trace reference fold.
  std::size_t batch_traces = kDefaultCpaBatch;
  // Tile heights of the blocked H^T.S update. Pure performance knobs:
  // every cell is updated once per batch regardless of tiling, so these
  // never change a single bit of the result.
  std::size_t guess_block = 32;
  std::size_t sample_block = 64;
};

// --- accumulated sufficient statistics ------------------------------------

// The five running sums of the Pearson fold over shifted data, plus the
// shift references captured from the first trace. Kept separate from
// the batching machinery so naive and blocked kernels write the same
// state and correlation() is a pure read.
struct CpaSums {
  std::size_t num_guesses = 0;
  std::size_t num_samples = 0;
  std::size_t traces = 0;  // folded + still buffered in the kernel
  bool have_ref = false;
  std::vector<double> ref_h, ref_t;      // first-trace shift references
  std::vector<double> sum_h, sum_h2;     // per guess (shifted)
  std::vector<double> sum_t, sum_t2;     // per sample (shifted)
  std::vector<double> sum_ht;            // guess-major G x S (shifted)

  void reset(std::size_t g, std::size_t s);

  // Pearson r over the shifted sums; 0 when either side is constant.
  // Only meaningful once the owning kernel has flushed its buffer.
  [[nodiscard]] double correlation(std::size_t guess, std::size_t sample) const;
};

// --- shard-fold merge and wire serde (fleet / distributed CPA) ------------
//
// A trace stream cut into shards can be folded shard-by-shard (each
// shard its own CpaSums, possibly in another process) and recombined:
// merge_cpa_sums rebases `src`'s shifted sums onto `dst`'s first-trace
// references with the exact cross-term expansion
//   sum (x - r_dst)   = sum (x - r_src)   + n*d
//   sum (x - r_dst)^2 = sum (x - r_src)^2 + 2d*sum(x - r_src) + n*d^2
//   (d = r_src - r_dst, per guess / per sample; sum_ht gains the
//    corresponding dh/dt cross terms)
// and accumulates in a fixed per-cell expression order. Merging is
// therefore a pure function of the shard decomposition: folding shards
// in shard-index order through merge_cpa_sums gives bit-identical sums
// whether the shard folds were produced in this process, on another
// thread (exec::parallel_reduce with this as the merge), or round-
// tripped through the fleet wire format -- the determinism pin of
// tests/test_fleet.cpp. The merged sums agree with the unsharded serial
// fold exactly in real arithmetic (ULP-level differences in floating
// point; the shard plan is part of the statistics' identity, like
// batch_traces). An empty `dst` adopts `src` wholesale; shapes must
// match otherwise.
void merge_cpa_sums(CpaSums& dst, const CpaSums& src);

// Byte-exact serde of a fold: every double travels as its raw IEEE-754
// bit pattern (little-endian), so deserialize(serialize(s)) == s bit
// for bit. `deserialize` reads one fold at `offset` (advanced past it
// on success) and returns false on truncated or malformed input.
void serialize_cpa_sums(std::vector<std::uint8_t>& out, const CpaSums& sums);
[[nodiscard]] bool deserialize_cpa_sums(std::span<const std::uint8_t> bytes,
                                        std::size_t& offset, CpaSums& out);

// --- the batch-buffered kernel --------------------------------------------

// Buffers up to batch_traces (hypotheses, samples) pairs in row-per-
// guess / row-per-sample layout (contiguous over the batch index) and
// folds full batches into a CpaSums. flush() folds a partial tail; the
// owner must flush before reading correlations.
class CpaBatchKernel {
 public:
  CpaBatchKernel(std::size_t num_guesses, std::size_t num_samples,
                 CpaKernelConfig config = {});

  // Buffers one trace (capturing the shift reference from the first)
  // and folds the batch when full. hypotheses.size() == G,
  // samples.size() == S.
  void add_trace(CpaSums& sums, std::span<const double> hypotheses,
                 std::span<const float> samples);

  // Folds any buffered tail. Idempotent.
  void flush(CpaSums& sums);

  [[nodiscard]] std::size_t pending() const { return pending_; }
  [[nodiscard]] const CpaKernelConfig& config() const { return cfg_; }

 private:
  void fold_batch(CpaSums& sums);

  std::size_t g_, s_;
  CpaKernelConfig cfg_;
  std::vector<double> hbuf_;  // G rows x B, row-contiguous over batch index
  std::vector<double> tbuf_;  // S rows x B
  std::size_t pending_ = 0;
};

}  // namespace fd::attack
