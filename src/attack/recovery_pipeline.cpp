#include "attack/recovery_pipeline.h"

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <utility>

#include "attack/parallel_attack.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace fd::attack {

RecoveryPipelineResult run_recovery_pipeline(const falcon::KeyPair& victim,
                                             const RecoveryPipelineConfig& config) {
  obs::Span span("attack.pipeline");
  RecoveryPipelineResult out;
  if (config.archive_path.empty()) {
    out.error = "recovery pipeline needs an archive_path";
    return out;
  }
  const unsigned logn = victim.sk.params.logn;
  const std::size_t n = victim.sk.params.n;
  const KeyRecoveryConfig& atk = config.attack;

  std::unique_ptr<exec::ThreadPool> pool;
  if (atk.threads > 1) pool = std::make_unique<exec::ThreadPool>(atk.threads);

  std::vector<ComponentResult> results;
  RowAssembly assembled;

  exec::JobGraph graph;
  const auto capture = graph.add("capture", [&] {
    sca::ShardedCampaignConfig camp;
    camp.base.num_traces = atk.num_traces;
    camp.base.device = atk.device;
    camp.base.seed = atk.seed;
    camp.base.row = 0;
    camp.num_shards = config.capture_shards;
    const auto res =
        sca::run_campaign_sharded(victim.sk, camp, config.archive_path, pool.get());
    if (!res.ok) throw std::runtime_error("capture failed: " + res.error);
    out.captured_records = res.records;
  });
  const auto attack = graph.add("attack", [&] {
    const auto config_for = [&](const ComponentIndex& ci) {
      return component_attack_config(victim.sk, atk, /*row=*/0, ci.slot, ci.imag);
    };
    std::string err;
    if (!attack_all_components_from_archive(config.archive_path, config_for, pool.get(),
                                            results, &err)) {
      throw std::runtime_error("component attack failed: " + err);
    }
  }, {capture});
  const auto assemble = graph.add("assemble", [&] {
    assembled = assemble_row(results, logn, /*row=*/0);
    const auto& secret_row = victim.sk.b01;
    out.recovery.components_total = n;
    for (std::size_t idx = 0; idx < n; ++idx) {
      out.recovery.components_correct +=
          assembled.recovered[idx].bits() == secret_row[idx].bits();
    }
    out.recovery.recovered_f = assembled.poly;
    out.recovery.f_exact = std::equal(assembled.poly.begin(), assembled.poly.end(),
                                      victim.sk.f.begin(), victim.sk.f.end());
  }, {attack});
  graph.add("forge", [&] {
    auto forged = forge_key(out.recovery.recovered_f, victim.pk);
    if (!forged) return;  // attack failed to land; not a pipeline error
    out.recovery.ntru_solved = true;
    out.recovery.derived_g = forged->g;
    ChaCha20Prng rng(atk.seed ^ 0xF04C3);
    const auto sig = falcon::sign(*forged, "forged by the falcon-down adversary", rng);
    out.recovery.forgery_verified =
        falcon::verify(victim.pk, "forged by the falcon-down adversary", sig);
  }, {assemble});

  try {
    out.stages = graph.run(pool.get());
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  if (!config.keep_archive) std::remove(config.archive_path.c_str());
  obs::MetricsRegistry::global()
      .counter("attack.pipeline.runs")
      .add(1);
  return out;
}

}  // namespace fd::attack
