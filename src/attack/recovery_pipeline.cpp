#include "attack/recovery_pipeline.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "attack/checkpoint.h"
#include "attack/parallel_attack.h"
#include "common/rng.h"
#include "exec/seed_split.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/span.h"

namespace fd::attack {

namespace {

// Binds a checkpoint to its experiment: everything that changes the
// captured bytes or the per-component decisions participates; the
// thread count, checkpoint cadence, and archive I/O strategy
// (single_pass) are wall-time knobs and deliberately do not. The CPA
// kernel batch DOES participate: reassociation inside a batch shifts
// correlations at the ULP level (cpa_kernel.h).
std::uint64_t hash_experiment(const falcon::KeyPair& victim,
                              const RecoveryPipelineConfig& config) {
  std::uint64_t h = 0x46444350;  // "FDCP"
  const auto mix = [&h](std::uint64_t v) { h = exec::mix64(h ^ exec::mix64(v)); };
  const auto mixd = [&](double v) { mix(std::bit_cast<std::uint64_t>(v)); };
  const KeyRecoveryConfig& a = config.attack;
  mix(a.num_traces);
  mixd(a.device.alpha);
  mixd(a.device.noise_sigma);
  mix(a.device.samples_per_event);
  mix(a.device.jitter_max);
  mix(a.device.constant_weight ? 1 : 0);
  mix(a.extend_top_k);
  mix(a.adversarial_random);
  mix(a.cpa_batch);
  mix(a.seed);
  mix(config.capture_shards);
  const sca::FaultConfig& fc = config.faults;
  mixd(fc.drop_rate);
  mixd(fc.desync_rate);
  mix(fc.desync_min);
  mix(fc.desync_max);
  mixd(fc.saturate_rate);
  mixd(fc.saturate_level);
  mixd(fc.glitch_rate);
  mixd(fc.glitch_amplitude);
  mixd(fc.chunk_corrupt_rate);
  mixd(fc.capture_fail_rate);
  mix(fc.seed);
  const QualityConfig& q = config.quality;
  mix(q.enabled ? 1 : 0);
  mixd(q.saturation_pinned_frac);
  mix(q.saturation_min_pinned);
  mixd(q.energy_mad_k);
  mix(q.max_lag);
  mixd(q.min_alignment_corr);
  mix(q.refine_iters);
  mix(config.adaptive ? 1 : 0);
  mix(config.remeasure.max_rounds);
  mix(config.remeasure.round_traces);
  mixd(config.remeasure.confidence.confidence);
  mixd(config.remeasure.confidence.margin_factor);
  for (const std::uint32_t c : victim.pk.h) mix(c);
  return h;
}

bool file_readable(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

std::size_t count_archive_records(const std::string& path) {
  tracestore::ArchiveReader reader;
  if (!reader.open(path)) return 0;
  tracestore::TraceRecord rec;
  std::size_t count = 0;
  while (reader.next(rec)) ++count;
  return count;
}

}  // namespace

RecoveryPipelineResult run_recovery_pipeline(const falcon::KeyPair& victim,
                                             const RecoveryPipelineConfig& config) {
  RecoveryPipelineResult out;
  if (config.archive_path.empty()) {
    out.error = "recovery pipeline needs an archive_path";
    return out;
  }
  const unsigned logn = victim.sk.params.logn;
  const std::size_t n = victim.sk.params.n;
  const KeyRecoveryConfig& atk = config.attack;
  const sca::FaultPlan fplan(config.faults);
  const std::uint64_t experiment = hash_experiment(victim, config);
  // Root the trace in the experiment hash ("TRAC" salt, matching the
  // fleet coordinator's derivation) so the single-process pipeline
  // produces the same replay-stable span ids on every run.
  obs::set_trace_root(exec::mix64(experiment ^ 0x54524143ULL));
  obs::Span span("attack.pipeline", obs::Span::Root::kAdopt);
  const bool checkpointing = config.checkpoint || config.resume;
  if (checkpointing) out.checkpoint_path = config.archive_path + ".fdckpt";

  std::unique_ptr<exec::ThreadPool> pool;
  if (atk.threads > 1) pool = std::make_unique<exec::ThreadPool>(atk.threads);

  // One capture round: the initial campaign (round 0) or a
  // re-measurement top-up (round >= 1, its own seed lane and a
  // fault-plan query offset past everything captured before it).
  // Rig-down simulation retries with exponential backoff.
  const auto capture_round = [&](std::size_t round, std::size_t num_traces,
                                 std::size_t query_offset, const std::string& path) {
    sca::ShardedCampaignConfig camp;
    camp.base.num_traces = num_traces;
    camp.base.device = atk.device;
    camp.base.seed = round == 0 ? atk.seed : exec::split_seed(atk.seed, 0xAD0 + round);
    camp.base.row = 0;
    camp.base.faults = config.faults;
    camp.base.fault_query_offset = query_offset;
    camp.num_shards = config.capture_shards;
    for (std::size_t attempt = 0;
         attempt < std::max<std::size_t>(1, config.remeasure.max_capture_attempts);
         ++attempt) {
      ++out.capture_attempts;
      if (fplan.capture_fails(round, attempt)) {
        obs::MetricsRegistry::global().counter("attack.pipeline.capture_failures").add(1);
        if (config.remeasure.backoff_base_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(config.remeasure.backoff_base_ms << attempt));
        }
        continue;
      }
      const auto res = sca::run_campaign_sharded(victim.sk, camp, path, pool.get());
      if (!res.ok) throw std::runtime_error("capture failed: " + res.error);
      return res.records;
    }
    throw std::runtime_error(
        "capture round " + std::to_string(round) + ": rig down after " +
        std::to_string(std::max<std::size_t>(1, config.remeasure.max_capture_attempts)) +
        " attempts");
  };

  const auto config_for = [&](const ComponentIndex& ci) {
    return component_attack_config(victim.sk, atk, /*row=*/0, ci.slot, ci.imag);
  };

  CheckpointState st;
  st.reset(n);
  st.config_hash = experiment;
  std::vector<ComponentResult> results(n);
  std::vector<std::size_t> accepted(n, 0);
  RowAssembly assembled;

  const auto persist = [&] {
    if (!checkpointing) return;
    std::string err;
    if (!save_checkpoint(out.checkpoint_path, st, &err)) throw std::runtime_error(err);
  };

  // Cooperative-shutdown check, called at batch boundaries: persists a
  // final checkpoint first so the interrupt never strands a finished
  // batch, then unwinds through the stage-failure path.
  const auto check_interrupt = [&] {
    if (config.interrupt_flag == nullptr || *config.interrupt_flag == 0) return;
    persist();
    out.interrupted = true;
    obs::event("pipeline.interrupted")
        .with("completed", st.completed())
        .with("checkpoint", out.checkpoint_path)
        .emit();
    throw std::runtime_error("interrupted by signal");
  };

  // Confidence of one finished component under the acceptance criterion.
  const auto confident = [&](std::size_t idx) {
    return component_confidence(results[idx], accepted[idx], config.remeasure.confidence)
        .confident;
  };
  const auto low_confidence_set = [&] {
    std::vector<std::size_t> low;
    if (!config.adaptive) return low;
    for (std::size_t idx = 0; idx < n; ++idx) {
      if (!confident(idx)) low.push_back(idx);
    }
    return low;
  };

  exec::JobGraph graph;
  const auto capture = graph.add("capture", [&] {
    if (config.resume && file_readable(out.checkpoint_path) &&
        file_readable(config.archive_path)) {
      CheckpointState loaded;
      std::string err;
      if (load_checkpoint(out.checkpoint_path, loaded, &err) &&
          loaded.config_hash == experiment && loaded.done.size() == n) {
        // Same experiment, archive still on disk (including any merged
        // re-measurement rounds): reuse both instead of recapturing.
        st = std::move(loaded);
        for (std::size_t idx = 0; idx < n; ++idx) {
          if (st.done[idx] != 0) {
            results[idx] = st.results[idx];
            accepted[idx] = static_cast<std::size_t>(st.accepted_traces[idx]);
          }
        }
        out.resumed = true;
        out.captured_records = count_archive_records(config.archive_path);
        obs::MetricsRegistry::global().counter("attack.pipeline.resumes").add(1);
        return;
      }
      // Incompatible or unreadable checkpoint: fall through to a clean
      // capture (the stale file is overwritten at the first batch).
    }
    out.captured_records = capture_round(0, atk.num_traces, 0, config.archive_path);
  });

  const auto attack = graph.add("attack", [&] {
    std::vector<std::size_t> todo;
    for (std::size_t idx = 0; idx < n; ++idx) {
      if (st.done[idx] == 0) todo.push_back(idx);
    }
    // Without checkpointing there is nothing to persist between
    // batches, so the whole todo set runs as one batch -- with
    // single_pass that makes the attack round exactly ONE archive scan.
    const std::size_t batch_size =
        !checkpointing || config.checkpoint_every == 0
            ? std::max<std::size_t>(1, todo.size())
            : config.checkpoint_every;
    std::size_t completed = st.completed();
    for (std::size_t b = 0; b < todo.size(); b += batch_size) {
      check_interrupt();
      if (config.abort_after_components != 0 &&
          completed >= config.abort_after_components) {
        throw std::runtime_error("aborted after " + std::to_string(completed) +
                                 " components (simulated kill)");
      }
      const std::size_t end = std::min(todo.size(), b + batch_size);
      const std::span<const std::size_t> batch(todo.data() + b, end - b);
      QualityReport q;
      std::string err;
      if (!attack_components_gated(config.archive_path, config.quality, config_for,
                                   pool.get(), batch, results, accepted, &q, &err,
                                   config.single_pass)) {
        throw std::runtime_error("component attack failed: " + err);
      }
      out.quality.add(q);
      for (const std::size_t idx : batch) {
        st.done[idx] = 1;
        st.results[idx] = results[idx];
        st.accepted_traces[idx] = accepted[idx];
        ++completed;
      }
      persist();
    }
  }, {capture});

  const auto remeasure = graph.add("remeasure", [&] {
    if (!config.adaptive) return;
    std::size_t round = st.remeasure_round;
    std::vector<std::size_t> low = low_confidence_set();
    const std::size_t round_traces = config.remeasure.round_traces == 0
                                         ? atk.num_traces
                                         : config.remeasure.round_traces;
    while (!low.empty() && round < config.remeasure.max_rounds) {
      check_interrupt();
      ++round;
      obs::event("attack.pipeline.remeasure")
          .with("round", round)
          .with("low_confidence", low.size())
          .emit();
      // Top-up capture under the round's own seed lane; its fault-plan
      // offset starts past every query captured in earlier rounds.
      const std::string extra = config.archive_path + ".r" + std::to_string(round);
      const std::size_t offset = atk.num_traces + (round - 1) * round_traces;
      capture_round(round, round_traces, offset, extra);
      // Merge into the main archive (merge cannot write in place).
      const std::string merged = config.archive_path + ".merge";
      const std::string inputs[] = {config.archive_path, extra};
      std::string err;
      if (!tracestore::merge_archives(inputs, merged, &err)) {
        std::remove(extra.c_str());
        throw std::runtime_error("re-measurement merge failed: " + err);
      }
      std::remove(extra.c_str());
      if (std::rename(merged.c_str(), config.archive_path.c_str()) != 0) {
        std::remove(merged.c_str());
        throw std::runtime_error("re-measurement merge rename failed");
      }
      // Only the doubtful components re-run, now over the larger D.
      QualityReport q;
      if (!attack_components_gated(config.archive_path, config.quality, config_for,
                                   pool.get(), low, results, accepted, &q, &err,
                                   config.single_pass)) {
        throw std::runtime_error("re-measurement attack failed: " + err);
      }
      out.quality.add(q);
      st.remeasure_round = static_cast<std::uint32_t>(round);
      for (const std::size_t idx : low) {
        st.results[idx] = results[idx];
        st.accepted_traces[idx] = accepted[idx];
      }
      persist();
      low = low_confidence_set();
    }
    out.remeasure_rounds = round;
    if (!low.empty()) {
      // Budget exhausted: degrade gracefully. The flagged components
      // ride into assemble, where the exponent-alias repair gets a shot
      // at them; the result is marked partial either way.
      out.flagged_components = std::move(low);
      out.partial = true;
      obs::MetricsRegistry::global()
          .counter("attack.pipeline.flagged_components")
          .add(out.flagged_components.size());
    }
  }, {attack});

  const auto assemble = graph.add("assemble", [&] {
    assembled = assemble_row(results, logn, /*row=*/0);
    const auto& secret_row = victim.sk.b01;
    out.recovery.components_total = n;
    for (std::size_t idx = 0; idx < n; ++idx) {
      out.recovery.components_correct +=
          assembled.recovered[idx].bits() == secret_row[idx].bits();
    }
    out.recovery.recovered_f = assembled.poly;
    out.recovery.f_exact = std::equal(assembled.poly.begin(), assembled.poly.end(),
                                      victim.sk.f.begin(), victim.sk.f.end());
  }, {remeasure});

  graph.add("forge", [&] {
    auto forged = forge_key(out.recovery.recovered_f, victim.pk);
    if (!forged) return;  // attack failed to land; not a pipeline error
    out.recovery.ntru_solved = true;
    out.recovery.derived_g = forged->g;
    ChaCha20Prng rng(atk.seed ^ 0xF04C3);
    const auto sig = falcon::sign(*forged, "forged by the falcon-down adversary", rng);
    out.recovery.forgery_verified =
        falcon::verify(victim.pk, "forged by the falcon-down adversary", sig);
  }, {assemble});

  // Collected, never thrown: a failed stage leaves its message in
  // `error` and the downstream reports with ran == false.
  out.stages = graph.run_collect(pool.get(), &out.error);
  out.ok = out.error.empty();

  if (out.ok) {
    // A finished run's checkpoint must not shadow a future experiment.
    if (checkpointing) std::remove(out.checkpoint_path.c_str());
    if (!config.keep_archive) std::remove(config.archive_path.c_str());
  } else if (!checkpointing) {
    if (!config.keep_archive) std::remove(config.archive_path.c_str());
  }
  // On failure with checkpointing on, BOTH the archive and the .fdckpt
  // stay behind -- that pair is what --resume picks back up.
  obs::MetricsRegistry::global().counter("attack.pipeline.runs").add(1);
  return out;
}

}  // namespace fd::attack
