#include "attack/parallel_attack.h"

#include <algorithm>
#include <mutex>
#include <optional>

#include "exec/parallel_for.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace fd::attack {

namespace {

// One count per record-reading pass an attack-layer caller starts over
// an archive. The single-pass pins (tests, DESIGN.md section 11) watch
// this counter; capture-side readers (shard merging, record counting)
// deliberately don't feed it.
void count_archive_scan() {
  obs::MetricsRegistry::global().counter("attack.archive.scans").add(1);
}

}  // namespace

std::vector<ComponentResult> attack_all_components_parallel(
    const std::vector<sca::TraceSet>& sets, const ComponentConfigFn& config_for,
    exec::ThreadPool* pool) {
  obs::Span span("attack.all_components");
  const std::size_t hn = sets.size();
  const std::size_t n = hn * 2;
  std::vector<ComponentResult> results(n);
  // One component per chunk: component attacks are the coarse unit of
  // work (seconds each at paper sizes), so finer chunking buys nothing
  // and per-index chunks keep the static plan trivially balanced.
  exec::parallel_for_chunks(pool, n, n, [&](exec::ChunkRange r, std::size_t) {
    for (std::size_t idx = r.begin; idx < r.end; ++idx) {
      const ComponentIndex ci = component_index(idx, hn);
      const ComponentDataset ds = build_component_dataset(sets[ci.slot], ci.imag);
      results[idx] = attack_component(ds, config_for(ci));
    }
  });
  obs::MetricsRegistry::global().counter("attack.components").add(n);
  return results;
}

bool attack_all_components_from_archive(const std::string& archive_path,
                                        const ComponentConfigFn& config_for,
                                        exec::ThreadPool* pool,
                                        std::vector<ComponentResult>& out,
                                        std::string* error, bool single_pass) {
  obs::Span span("attack.all_components.archive");
  std::size_t hn = 0;
  {
    tracestore::ArchiveReader probe;
    if (!probe.open(archive_path)) {
      if (error != nullptr) *error = probe.error();
      return false;
    }
    hn = probe.meta().num_slots;
  }
  const std::size_t n = hn * 2;
  out.assign(n, ComponentResult{});

  if (single_pass) {
    // One serial demux scan, then the attacks fan out in memory.
    tracestore::ArchiveReader reader;
    if (!reader.open(archive_path)) {
      if (error != nullptr) *error = reader.error();
      return false;
    }
    count_archive_scan();
    std::vector<sca::TraceSet> sets;
    if (!sca::load_all_trace_sets(reader, sets)) {
      if (error != nullptr) *error = "failed to demux archive records";
      return false;
    }
    for (std::size_t slot = 0; slot < hn; ++slot) {
      if (sets[slot].traces.empty()) {
        if (error != nullptr) *error = "no records for slot " + std::to_string(slot);
        return false;
      }
    }
    exec::parallel_for_chunks(pool, n, n, [&](exec::ChunkRange r, std::size_t) {
      for (std::size_t idx = r.begin; idx < r.end; ++idx) {
        const ComponentIndex ci = component_index(idx, hn);
        const ComponentDataset ds = build_component_dataset(sets[ci.slot], ci.imag);
        out[idx] = attack_component(ds, config_for(ci));
      }
    });
    obs::MetricsRegistry::global().counter("attack.components").add(n);
    return true;
  }

  std::mutex err_mu;
  std::string first_error;
  exec::parallel_for_chunks(pool, n, n, [&](exec::ChunkRange r, std::size_t) {
    for (std::size_t idx = r.begin; idx < r.end; ++idx) {
      const ComponentIndex ci = component_index(idx, hn);
      tracestore::ArchiveReader reader;  // private reader per task
      if (!reader.open(archive_path)) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (first_error.empty()) first_error = reader.error();
        continue;
      }
      if (!attack_component_from_archive(reader, ci.slot, ci.imag, config_for(ci),
                                         out[idx])) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (first_error.empty()) {
          first_error = "no records for slot " + std::to_string(ci.slot);
        }
      }
    }
  });
  if (!first_error.empty()) {
    if (error != nullptr) *error = first_error;
    return false;
  }
  obs::MetricsRegistry::global().counter("attack.components").add(n);
  return true;
}

bool attack_components_gated(const std::string& archive_path, const QualityConfig& gate,
                             const ComponentConfigFn& config_for, exec::ThreadPool* pool,
                             std::span<const std::size_t> components,
                             std::vector<ComponentResult>& results,
                             std::vector<std::size_t>& accepted_traces,
                             QualityReport* quality, std::string* error, bool single_pass) {
  obs::Span span("attack.components.gated");
  std::size_t hn = 0;
  unsigned jitter_max = 0;
  {
    tracestore::ArchiveReader probe;
    if (!probe.open(archive_path)) {
      if (error != nullptr) *error = probe.error();
      return false;
    }
    hn = probe.meta().num_slots;
    jitter_max = probe.meta().jitter_max;
  }
  const std::size_t n = hn * 2;
  if (results.size() != n) results.assign(n, ComponentResult{});
  if (accepted_traces.size() != n) accepted_traces.assign(n, 0);

  std::mutex mu;  // guards first_error and the aggregate report
  std::string first_error;
  QualityReport total;

  // Single-pass demux: collect the requested components' unique slots,
  // fill them in ONE serial archive scan, then screen/attack private
  // copies in parallel. The screened copy per component keeps results
  // and the aggregate report identical to the per-component path.
  std::vector<sca::TraceSet> slot_sets;
  std::vector<std::size_t> slot_of;  // slot -> index into slot_sets
  if (single_pass) {
    std::vector<std::size_t> slots;
    for (const std::size_t idx : components) {
      if (idx >= n) {
        if (first_error.empty()) {
          first_error = "component id " + std::to_string(idx) + " out of range";
        }
        continue;
      }
      slots.push_back(component_index(idx, hn).slot);
    }
    std::sort(slots.begin(), slots.end());
    slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
    tracestore::ArchiveReader reader;
    if (!reader.open(archive_path)) {
      if (error != nullptr) *error = reader.error();
      return false;
    }
    count_archive_scan();
    if (!sca::load_trace_sets_for(reader, slots, slot_sets)) {
      if (error != nullptr) *error = "failed to demux archive records";
      return false;
    }
    slot_of.assign(hn, static_cast<std::size_t>(-1));
    for (std::size_t i = 0; i < slots.size(); ++i) slot_of[slots[i]] = i;
  }

  exec::parallel_for_chunks(pool, components.size(), components.size(),
                            [&](exec::ChunkRange r, std::size_t) {
    for (std::size_t k = r.begin; k < r.end; ++k) {
      const std::size_t idx = components[k];
      if (idx >= n) {
        std::lock_guard<std::mutex> lock(mu);
        if (first_error.empty()) {
          first_error = "component id " + std::to_string(idx) + " out of range";
        }
        continue;
      }
      const ComponentIndex ci = component_index(idx, hn);
      sca::TraceSet set;
      if (single_pass) {
        set = slot_sets[slot_of[ci.slot]];  // private screened copy
      } else {
        tracestore::ArchiveReader reader;  // private reader per task
        if (!reader.open(archive_path)) {
          std::lock_guard<std::mutex> lock(mu);
          if (first_error.empty()) first_error = reader.error();
          continue;
        }
        count_archive_scan();
        if (!sca::load_trace_set(reader, ci.slot, set)) set.traces.clear();
      }
      if (set.traces.empty()) {
        std::lock_guard<std::mutex> lock(mu);
        if (first_error.empty()) {
          first_error = "no records for slot " + std::to_string(ci.slot);
        }
        continue;
      }
      const QualityReport rep = screen_trace_set(set, gate, jitter_max);
      if (set.traces.empty()) {
        std::lock_guard<std::mutex> lock(mu);
        if (first_error.empty()) {
          first_error =
              "quality gate rejected every trace of slot " + std::to_string(ci.slot);
        }
        continue;
      }
      const ComponentDataset ds = build_component_dataset(set, ci.imag);
      results[idx] = attack_component(ds, config_for(ci));
      accepted_traces[idx] = set.traces.size();
      std::lock_guard<std::mutex> lock(mu);
      total.add(rep);
    }
  });
  if (quality != nullptr) *quality = total;
  if (!first_error.empty()) {
    if (error != nullptr) *error = first_error;
    return false;
  }
  obs::MetricsRegistry::global().counter("attack.components").add(components.size());
  return true;
}

bool run_cpa_streaming_many(const std::string& archive_path,
                            std::span<const StreamingCpaSpec> specs, exec::ThreadPool* pool,
                            std::vector<CpaEngine>& results, std::string* error) {
  obs::Span span("attack.cpa_many");
  std::vector<std::optional<CpaEngine>> slots(specs.size());
  std::mutex err_mu;
  std::string first_error;
  exec::parallel_for_chunks(pool, specs.size(), specs.size(),
                            [&](exec::ChunkRange r, std::size_t) {
    for (std::size_t i = r.begin; i < r.end; ++i) {
      tracestore::ArchiveReader reader;
      if (!reader.open(archive_path)) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (first_error.empty()) first_error = reader.error();
        continue;
      }
      slots[i].emplace(run_cpa_streaming(reader, specs[i]));
    }
  });
  if (!first_error.empty()) {
    if (error != nullptr) *error = first_error;
    return false;
  }
  results.clear();
  results.reserve(specs.size());
  for (auto& s : slots) results.push_back(std::move(*s));  // index order
  return true;
}

}  // namespace fd::attack
