#include "attack/parallel_attack.h"

#include <mutex>
#include <optional>

#include "exec/parallel_for.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace fd::attack {

std::vector<ComponentResult> attack_all_components_parallel(
    const std::vector<sca::TraceSet>& sets, const ComponentConfigFn& config_for,
    exec::ThreadPool* pool) {
  obs::Span span("attack.all_components");
  const std::size_t hn = sets.size();
  const std::size_t n = hn * 2;
  std::vector<ComponentResult> results(n);
  // One component per chunk: component attacks are the coarse unit of
  // work (seconds each at paper sizes), so finer chunking buys nothing
  // and per-index chunks keep the static plan trivially balanced.
  exec::parallel_for_chunks(pool, n, n, [&](exec::ChunkRange r, std::size_t) {
    for (std::size_t idx = r.begin; idx < r.end; ++idx) {
      const ComponentIndex ci = component_index(idx, hn);
      const ComponentDataset ds = build_component_dataset(sets[ci.slot], ci.imag);
      results[idx] = attack_component(ds, config_for(ci));
    }
  });
  obs::MetricsRegistry::global().counter("attack.components").add(n);
  return results;
}

bool attack_all_components_from_archive(const std::string& archive_path,
                                        const ComponentConfigFn& config_for,
                                        exec::ThreadPool* pool,
                                        std::vector<ComponentResult>& out,
                                        std::string* error) {
  obs::Span span("attack.all_components.archive");
  std::size_t hn = 0;
  {
    tracestore::ArchiveReader probe;
    if (!probe.open(archive_path)) {
      if (error != nullptr) *error = probe.error();
      return false;
    }
    hn = probe.meta().num_slots;
  }
  const std::size_t n = hn * 2;
  out.assign(n, ComponentResult{});
  std::mutex err_mu;
  std::string first_error;
  exec::parallel_for_chunks(pool, n, n, [&](exec::ChunkRange r, std::size_t) {
    for (std::size_t idx = r.begin; idx < r.end; ++idx) {
      const ComponentIndex ci = component_index(idx, hn);
      tracestore::ArchiveReader reader;  // private reader per task
      if (!reader.open(archive_path)) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (first_error.empty()) first_error = reader.error();
        continue;
      }
      if (!attack_component_from_archive(reader, ci.slot, ci.imag, config_for(ci),
                                         out[idx])) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (first_error.empty()) {
          first_error = "no records for slot " + std::to_string(ci.slot);
        }
      }
    }
  });
  if (!first_error.empty()) {
    if (error != nullptr) *error = first_error;
    return false;
  }
  obs::MetricsRegistry::global().counter("attack.components").add(n);
  return true;
}

bool run_cpa_streaming_many(const std::string& archive_path,
                            std::span<const StreamingCpaSpec> specs, exec::ThreadPool* pool,
                            std::vector<CpaEngine>& results, std::string* error) {
  obs::Span span("attack.cpa_many");
  std::vector<std::optional<CpaEngine>> slots(specs.size());
  std::mutex err_mu;
  std::string first_error;
  exec::parallel_for_chunks(pool, specs.size(), specs.size(),
                            [&](exec::ChunkRange r, std::size_t) {
    for (std::size_t i = r.begin; i < r.end; ++i) {
      tracestore::ArchiveReader reader;
      if (!reader.open(archive_path)) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (first_error.empty()) first_error = reader.error();
        continue;
      }
      slots[i].emplace(run_cpa_streaming(reader, specs[i]));
    }
  });
  if (!first_error.empty()) {
    if (error != nullptr) *error = first_error;
    return false;
  }
  results.clear();
  results.reserve(specs.size());
  for (auto& s : slots) results.push_back(std::move(*s));  // index order
  return true;
}

}  // namespace fd::attack
