#include "attack/quality.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "attack/cpa.h"
#include "obs/metrics.h"

namespace fd::attack {

namespace {

// Pearson correlation between `w` samples of `a` (starting at a_off) and
// the reference `ref` (length w).
double window_corr(const std::vector<float>& a, std::size_t a_off,
                   const std::vector<double>& ref) {
  const std::size_t w = ref.size();
  double sa = 0.0;
  double sr = 0.0;
  for (std::size_t i = 0; i < w; ++i) {
    sa += a[a_off + i];
    sr += ref[i];
  }
  const double ma = sa / static_cast<double>(w);
  const double mr = sr / static_cast<double>(w);
  double caa = 0.0;
  double crr = 0.0;
  double car = 0.0;
  for (std::size_t i = 0; i < w; ++i) {
    const double da = a[a_off + i] - ma;
    const double dr = ref[i] - mr;
    caa += da * da;
    crr += dr * dr;
    car += da * dr;
  }
  if (caa <= 0.0 || crr <= 0.0) return 0.0;
  return car / std::sqrt(caa * crr);
}

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid - 1),
                     v.begin() + static_cast<std::ptrdiff_t>(mid));
    m = (m + v[mid - 1]) / 2.0;
  }
  return m;
}

}  // namespace

QualityReport screen_trace_set(sca::TraceSet& set, const QualityConfig& config,
                               unsigned jitter_max) {
  QualityReport rep;
  rep.total = set.traces.size();
  if (!config.enabled || set.traces.empty()) {
    rep.accepted = rep.total;
    return rep;
  }

  const std::size_t num = set.traces.size();
  std::vector<bool> reject(num, false);

  // --- 1. saturation: exact-value pile-ups at the extremes ------------------
  for (std::size_t t = 0; t < num; ++t) {
    const auto& s = set.traces[t].trace.samples;
    if (s.empty()) {
      reject[t] = true;  // an empty window is unusable for any column
      ++rep.rejected_saturated;
      continue;
    }
    float lo = s[0];
    float hi = s[0];
    for (const float v : s) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    std::size_t pinned = 0;
    for (const float v : s) {
      if (v == lo || v == hi) ++pinned;
    }
    const auto cut = std::max<std::size_t>(
        config.saturation_min_pinned,
        static_cast<std::size_t>(config.saturation_pinned_frac *
                                 static_cast<double>(s.size())));
    if (pinned >= cut) {
      reject[t] = true;
      ++rep.rejected_saturated;
    }
  }

  // --- 2. energy: robust outlier screen -------------------------------------
  {
    std::vector<double> energy(num, 0.0);
    std::vector<double> pool;
    pool.reserve(num);
    for (std::size_t t = 0; t < num; ++t) {
      if (reject[t]) continue;
      double e = 0.0;
      for (const float v : set.traces[t].trace.samples) {
        e += static_cast<double>(v) * static_cast<double>(v);
      }
      energy[t] = e;
      pool.push_back(e);
    }
    if (pool.size() >= 4) {
      const double med = median_of(pool);
      std::vector<double> dev;
      dev.reserve(pool.size());
      for (const double e : pool) dev.push_back(std::abs(e - med));
      // 1.4826 * MAD estimates sigma under normality; the relative floor
      // keeps a near-degenerate spread from rejecting everything.
      const double sigma = std::max(1.4826 * median_of(std::move(dev)), 1e-9 * (1.0 + med));
      for (std::size_t t = 0; t < num; ++t) {
        if (reject[t]) continue;
        if (std::abs(energy[t] - med) > config.energy_mad_k * sigma) {
          reject[t] = true;
          ++rep.rejected_energy;
        }
      }
    }
  }

  // --- 3. alignment: boxcar anchor + reference refinement -------------------
  // Window length is uniform per archive; use the shortest survivor
  // defensively. W = S - L is the jitter-free span every lag can serve.
  std::size_t slen = std::numeric_limits<std::size_t>::max();
  for (std::size_t t = 0; t < num; ++t) {
    if (!reject[t]) slen = std::min(slen, set.traces[t].trace.samples.size());
  }
  const std::size_t lag_max =
      config.max_lag != 0 ? config.max_lag : static_cast<std::size_t>(jitter_max);
  if (slen != std::numeric_limits<std::size_t>::max() && slen > lag_max) {
    const std::size_t w = slen - lag_max;
    std::vector<std::size_t> lag(num, 0);

    // Boxcar matched filter: signal samples are positive amplitudes over
    // zero-mean noise, so the lag whose w-window holds the most mass is
    // the trigger offset. This anchors each trace ABSOLUTELY -- a
    // correlation-only refinement could converge to a common nonzero
    // offset and silently shift every CPA column.
    if (lag_max > 0) {
      for (std::size_t t = 0; t < num; ++t) {
        if (reject[t]) continue;
        const auto& s = set.traces[t].trace.samples;
        double sum = 0.0;
        for (std::size_t i = 0; i < w; ++i) sum += s[i];
        double best = sum;
        std::size_t best_lag = 0;
        for (std::size_t l = 1; l <= lag_max; ++l) {
          sum += s[l + w - 1] - s[l - 1];
          if (sum > best) {
            best = sum;
            best_lag = l;
          }
        }
        lag[t] = best_lag;
      }
    }

    std::vector<double> ref(w, 0.0);
    std::vector<double> corr(num, 1.0);
    const unsigned rounds = std::max(1U, config.refine_iters);
    for (unsigned it = 0; it < rounds; ++it) {
      std::fill(ref.begin(), ref.end(), 0.0);
      std::size_t contributors = 0;
      for (std::size_t t = 0; t < num; ++t) {
        if (reject[t]) continue;
        const auto& s = set.traces[t].trace.samples;
        for (std::size_t i = 0; i < w; ++i) ref[i] += s[lag[t] + i];
        ++contributors;
      }
      if (contributors == 0) break;
      for (auto& v : ref) v /= static_cast<double>(contributors);
      for (std::size_t t = 0; t < num; ++t) {
        if (reject[t]) continue;
        const auto& s = set.traces[t].trace.samples;
        double best = -2.0;
        std::size_t best_lag = lag[t];
        for (std::size_t l = 0; l <= lag_max; ++l) {
          const double c = window_corr(s, l, ref);
          if (c > best) {
            best = c;
            best_lag = l;
          }
        }
        lag[t] = best_lag;
        corr[t] = best;
      }
    }
    for (std::size_t t = 0; t < num; ++t) {
      if (reject[t]) continue;
      if (corr[t] < config.min_alignment_corr) {
        reject[t] = true;
        ++rep.rejected_alignment;
      } else if (lag[t] > 0) {
        // Shift the window back to lag 0; the tail the trigger offset
        // pushed out of frame is zero-filled (columns past w are never
        // read once every accepted trace is anchored).
        auto& s = set.traces[t].trace.samples;
        for (std::size_t i = 0; i + lag[t] < s.size(); ++i) s[i] = s[i + lag[t]];
        std::fill(s.end() - static_cast<std::ptrdiff_t>(lag[t]), s.end(), 0.0F);
        ++rep.realigned;
      }
    }
  }

  // --- erase the rejects, preserving order ----------------------------------
  std::size_t keep = 0;
  for (std::size_t t = 0; t < num; ++t) {
    if (!reject[t]) {
      if (keep != t) set.traces[keep] = std::move(set.traces[t]);
      ++keep;
    }
  }
  set.traces.resize(keep);
  rep.accepted = keep;

  auto& reg = obs::MetricsRegistry::global();
  reg.counter("attack.quality.screened").add(rep.total);
  reg.counter("attack.quality.accepted").add(rep.accepted);
  reg.counter("attack.quality.rejected_saturated").add(rep.rejected_saturated);
  reg.counter("attack.quality.rejected_energy").add(rep.rejected_energy);
  reg.counter("attack.quality.rejected_alignment").add(rep.rejected_alignment);
  reg.counter("attack.quality.realigned").add(rep.realigned);
  return rep;
}

ComponentConfidence component_confidence(const ComponentResult& result,
                                         std::size_t num_traces,
                                         const ConfidenceConfig& config) {
  ComponentConfidence cc;
  cc.threshold = num_traces == 0
                     ? std::numeric_limits<double>::infinity()
                     : config.margin_factor * confidence_interval(config.confidence, num_traces);
  double margin = std::numeric_limits<double>::infinity();
  const PhaseOutcome* decisive[] = {&result.sign_phase, &result.low_prune,
                                    &result.high_prune};
  for (const PhaseOutcome* phase : decisive) {
    if (phase->top.size() < 2) continue;  // unopposed phase: no gap to doubt
    margin = std::min(margin, phase->top[0].score - phase->top[1].score);
  }
  cc.margin = std::isinf(margin) ? 0.0 : margin;
  cc.confident = num_traces > 0 && (std::isinf(margin) || margin >= cc.threshold);
  return cc;
}

}  // namespace fd::attack
