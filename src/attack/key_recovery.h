#pragma once
// Full key recovery and signature forging (the paper's end goal).
//
// The adversary attacks every component of FFT(-f) (n/2 complex slots,
// real and imaginary part each), inverts the FFT (one-to-one), rounds to
// the integer polynomial f, derives g = h*f mod q (small by
// construction), re-solves the NTRU equation for F and G, rebuilds the
// complete signing key, and signs arbitrary messages that verify under
// the victim's *public* key.
//
// Hypothesis-space note (see DESIGN.md): with empty candidate lists the
// attack enumerates the full 2^25/2^27 spaces per component exactly as
// the paper describes (minutes of CPU per component on one core). The
// default "adversarial candidate" mode evaluates the truth against its
// entire shift-family (the false-positive sources) plus random fillers,
// testing the extend-and-prune logic at full strength in bounded time.

#include <optional>
#include <vector>

#include "attack/extend_prune.h"
#include "falcon/falcon.h"
#include "sca/campaign.h"

namespace fd::attack {

struct KeyRecoveryConfig {
  std::size_t num_traces = 2000;
  sca::DeviceConfig device;
  std::size_t extend_top_k = 16;
  // 0 => exhaustive enumeration; otherwise adversarial candidate count.
  std::size_t adversarial_random = 150;
  // CPA kernel batch size (cpa_kernel.h): traces buffered per blocked
  // fold. Part of the result's numerical identity (ULP-level
  // reassociation inside a batch), so it joins the experiment hash;
  // 1 reproduces the exact naive per-trace fold.
  std::size_t cpa_batch = kDefaultCpaBatch;
  std::uint64_t seed = 1;
  // Worker threads for the per-component attack fan-out (src/exec).
  // 1 runs the serial path; any value yields bit-identical results --
  // components are independent and reduced in index order.
  std::size_t threads = 1;
};

// The candidate-mode adversary's per-component attack config -- shared
// by recover_key/recover_row_poly and the RecoveryPipeline so both
// attack exactly the same hypothesis spaces. Pure function of
// (victim key, config, row, component index): safe to call from worker
// threads.
[[nodiscard]] ComponentAttackConfig component_attack_config(const falcon::SecretKey& victim_sk,
                                                            const KeyRecoveryConfig& config,
                                                            unsigned row, std::size_t slot,
                                                            bool imag);

// Component results -> row polynomial: exponent-alias repair (greedy
// descent on magnitude excess then integrality, see DESIGN.md), invFFT,
// negate-and-round. `results` is in component-index order (re parts of
// all slots, then im parts) and is updated in place by the repair.
struct RowAssembly {
  std::vector<fpr::Fpr> recovered;  // FFT-domain components, post-repair
  std::vector<std::int32_t> poly;   // the integer row polynomial
};
[[nodiscard]] RowAssembly assemble_row(std::vector<ComponentResult>& results, unsigned logn,
                                       unsigned row);

struct KeyRecoveryResult {
  std::size_t components_total = 0;
  std::size_t components_correct = 0;  // exact 64-bit matches
  std::vector<std::int32_t> recovered_f;
  std::vector<std::int32_t> derived_g;
  bool f_exact = false;        // recovered f equals the victim's f
  bool ntru_solved = false;    // F, G re-derived from (f, g)
  bool forgery_verified = false;  // forged signature accepted by pk
};

// Runs the complete attack against a victim key (the victim secret is
// used only to run the device and, in candidate mode, to build the
// adversarial hypothesis sets).
[[nodiscard]] KeyRecoveryResult recover_key(const falcon::KeyPair& victim,
                                            const KeyRecoveryConfig& config);

// Attacks a single basis row: row 0 recovers f (from the FFT(-f)
// windows), row 1 recovers F (from the FFT(-F) windows -- the second
// multiplication of Alg. 2 line 3). Recovering the F row independently
// cross-validates the attack: together with f and the public key it must
// satisfy the NTRU equation f*G - g*F = q.
struct RowRecoveryResult {
  std::size_t components_total = 0;
  std::size_t components_correct = 0;
  std::vector<std::int32_t> poly;  // f (row 0) or F (row 1)
  bool exact = false;              // equals the victim's polynomial
};
[[nodiscard]] RowRecoveryResult recover_row_poly(const falcon::KeyPair& victim,
                                                 const KeyRecoveryConfig& config, unsigned row);

// Given a recovered f, completes the attack: derives g from the public
// key, solves NTRU, expands a signing key, and checks a forged signature
// against the victim public key. Returns the forged secret key on success.
[[nodiscard]] std::optional<falcon::SecretKey> forge_key(std::span<const std::int32_t> f,
                                                         const falcon::PublicKey& pk);

}  // namespace fd::attack
