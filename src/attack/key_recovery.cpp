#include "attack/key_recovery.h"

#include <cmath>
#include <memory>
#include <string>

#include "attack/parallel_attack.h"
#include "exec/thread_pool.h"
#include "falcon/ntru_solve.h"
#include "fft/fft.h"
#include "obs/span.h"
#include "zq/zq.h"

namespace fd::attack {

using fpr::Fpr;

std::optional<falcon::SecretKey> forge_key(std::span<const std::int32_t> f,
                                           const falcon::PublicKey& pk) {
  const unsigned logn = pk.params.logn;
  const std::size_t n = pk.params.n;

  // g = h * f mod q; a correct f makes every centered coefficient small.
  std::vector<std::int32_t> g(n);
  {
    obs::Span phase("key_recovery.derive_g");
    std::vector<std::uint32_t> fq(n);
    for (std::size_t i = 0; i < n; ++i) fq[i] = zq::from_signed(f[i]);
    const auto gq = zq::poly_mul(pk.h, fq, logn);
    for (std::size_t i = 0; i < n; ++i) {
      const std::int32_t c = zq::center(gq[i]);
      if (std::abs(c) > 2048) return std::nullopt;  // f is wrong
      g[i] = c;
    }
  }

  // Re-solve the NTRU equation for F, G -- the adversary runs the same
  // public keygen machinery the victim did.
  falcon::ZPoly zf(n), zg(n);
  for (std::size_t i = 0; i < n; ++i) {
    zf[i] = BigInt(f[i]);
    zg[i] = BigInt(g[i]);
  }
  std::optional<falcon::NtruSolution> sol;
  {
    obs::Span phase("key_recovery.ntru_solve");
    sol = falcon::ntru_solve(zf, zg, falcon::kQ);
  }
  if (!sol) return std::nullopt;

  falcon::SecretKey sk;
  sk.params = pk.params;
  sk.f.assign(f.begin(), f.end());
  sk.g = std::move(g);
  sk.big_f.resize(n);
  sk.big_g.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!sol->big_f[i].fits_int64() || !sol->big_g[i].fits_int64()) return std::nullopt;
    sk.big_f[i] = static_cast<std::int32_t>(sol->big_f[i].to_int64());
    sk.big_g[i] = static_cast<std::int32_t>(sol->big_g[i].to_int64());
  }
  {
    obs::Span phase("key_recovery.expand");
    if (!falcon::expand_secret_key(sk)) return std::nullopt;
  }
  return sk;
}

ComponentAttackConfig component_attack_config(const falcon::SecretKey& victim_sk,
                                              const KeyRecoveryConfig& config, unsigned row,
                                              std::size_t slot, bool imag) {
  const std::size_t hn = victim_sk.params.n >> 1;
  const std::size_t idx = slot + (imag ? hn : 0);
  const auto& secret_row = row == 0 ? victim_sk.b01 : victim_sk.b11;

  ComponentAttackConfig cac;
  cac.extend_top_k = config.extend_top_k;
  cac.kernel.batch_traces = config.cpa_batch;
  cac.obs_label = "slot" + std::to_string(slot) + (imag ? ".im" : ".re");
  if (row == 1) {
    // FFT(F) components are larger than FFT(f)'s: shift the
    // exponent prior/window accordingly (|F_i| ~ a few hundred).
    cac.exp_prior = 1035;
    cac.exp_max = 1060;
  }
  if (config.adversarial_random > 0) {
    const KnownOperand split = KnownOperand::from(secret_row[idx]);
    cac.low_candidates = MantissaCandidates::adversarial(
        split.y0, /*high=*/false, config.adversarial_random, config.seed ^ (idx * 17));
    cac.high_candidates = MantissaCandidates::adversarial(
        split.y1, /*high=*/true, config.adversarial_random, config.seed ^ (idx * 31 + 1));
  }
  return cac;
}

namespace {

// Exponent-alias repair on a recovered FFT row (see DESIGN.md): greedy
// descent first on the additive magnitude excess (wrong exponents blow
// components up by 2^(+-k)), then on the integrality residual.
void repair_row(std::vector<Fpr>& recovered, std::vector<ComponentResult>& results,
                unsigned logn, double magnitude_limit) {
  obs::Span phase("key_recovery.repair");
  const std::size_t n = std::size_t{1} << logn;

  // Stage 1 metric: magnitude blowups (a wrong exponent scales its
  // component by 2^(+-k), pushing time-domain values far outside the
  // legal coefficient range). Strictly additive, so greedy descent on it
  // is sound even with many simultaneous errors.
  const auto magnitude_excess = [&](const std::vector<Fpr>& vec) {
    std::vector<Fpr> tmp(vec);
    fft::ifft(tmp, logn);
    double sum = 0.0;
    for (const auto& v : tmp) {
      const double mag = std::fabs(v.to_double());
      if (mag > magnitude_limit) sum += mag;
    }
    return sum;
  };
  // Stage 2 metric: distance to the integer lattice.
  const auto integrality = [&](const std::vector<Fpr>& vec) {
    std::vector<Fpr> tmp(vec);
    fft::ifft(tmp, logn);
    double sum = 0.0;
    for (const auto& v : tmp) {
      const double d = v.to_double();
      const double frac = d - std::nearbyint(d);
      sum += frac * frac;
    }
    return sum;
  };
  const auto greedy = [&](auto&& metric, double tol, double min_gain) {
    double residual = metric(recovered);
    for (int round = 0; round < 6 && residual > tol; ++round) {
      bool improved = false;
      for (std::size_t idx = 0; idx < n; ++idx) {
        for (const auto& alt : results[idx].exp_phase.top) {
          if (alt.guess == results[idx].exponent) continue;
          const Fpr prev = recovered[idx];
          recovered[idx] = Fpr::from_bits(
              assemble_bits(results[idx].sign, alt.guess, results[idx].x1, results[idx].x0));
          const double r2 = metric(recovered);
          if (r2 < residual - min_gain) {
            residual = r2;
            results[idx].exponent = alt.guess;
            improved = true;
          } else {
            recovered[idx] = prev;
          }
        }
      }
      if (!improved) break;
    }
    return residual;
  };
  greedy(magnitude_excess, /*tol=*/1e-9, /*min_gain=*/1.0);
  greedy(integrality, /*tol=*/1e-6, /*min_gain=*/0.05);
}

}  // namespace

RowAssembly assemble_row(std::vector<ComponentResult>& results, unsigned logn, unsigned row) {
  const std::size_t n = std::size_t{1} << logn;
  RowAssembly out;
  out.recovered.resize(n);
  for (std::size_t idx = 0; idx < n; ++idx) {
    out.recovered[idx] = Fpr::from_bits(results[idx].bits);
  }
  // Row-1 (F) time-domain coefficients run into the low thousands, so
  // the magnitude stage needs a wider legal window than row 0's f.
  repair_row(out.recovered, results, logn, row == 0 ? 1024.0 : 4096.0);

  std::vector<Fpr> time_domain(out.recovered);
  {
    obs::Span phase("key_recovery.invfft");
    fft::ifft(time_domain, logn);
  }
  out.poly.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.poly[i] = static_cast<std::int32_t>(-fpr::fpr_rint(time_domain[i]));
  }
  return out;
}

RowRecoveryResult recover_row_poly(const falcon::KeyPair& victim,
                                   const KeyRecoveryConfig& config, unsigned row) {
  const unsigned logn = victim.sk.params.logn;
  const std::size_t n = victim.sk.params.n;
  const auto& secret_row = row == 0 ? victim.sk.b01 : victim.sk.b11;
  const auto& true_poly = row == 0 ? victim.sk.f : victim.sk.big_f;

  sca::CampaignConfig camp;
  camp.num_traces = config.num_traces;
  camp.device = config.device;
  camp.seed = config.seed;
  camp.row = row;
  std::vector<sca::TraceSet> trace_sets;
  {
    obs::Span phase("key_recovery.campaign");
    trace_sets = sca::run_full_campaign(victim.sk, camp);
  }

  // The per-component fan-out: bit-identical at any thread count (see
  // parallel_attack.h), so `threads` is a pure wall-clock knob.
  std::unique_ptr<exec::ThreadPool> pool;
  if (config.threads > 1) pool = std::make_unique<exec::ThreadPool>(config.threads);
  const auto config_for = [&](const ComponentIndex& ci) {
    return component_attack_config(victim.sk, config, row, ci.slot, ci.imag);
  };
  std::vector<ComponentResult> results =
      attack_all_components_parallel(trace_sets, config_for, pool.get());

  RowAssembly assembled = assemble_row(results, logn, row);

  RowRecoveryResult out;
  out.components_total = n;
  for (std::size_t idx = 0; idx < n; ++idx) {
    out.components_correct += assembled.recovered[idx].bits() == secret_row[idx].bits();
  }
  out.poly = std::move(assembled.poly);
  out.exact = std::equal(out.poly.begin(), out.poly.end(), true_poly.begin(), true_poly.end());
  return out;
}

KeyRecoveryResult recover_key(const falcon::KeyPair& victim, const KeyRecoveryConfig& config) {
  obs::Span span("key_recovery");
  KeyRecoveryResult out;
  out.components_total = victim.sk.params.n;

  RowRecoveryResult f_row = recover_row_poly(victim, config, /*row=*/0);
  out.components_correct = f_row.components_correct;
  out.recovered_f = std::move(f_row.poly);
  out.f_exact = f_row.exact;

  // Complete the key and forge.
  auto forged = forge_key(out.recovered_f, victim.pk);
  if (forged) {
    out.ntru_solved = true;
    out.derived_g = forged->g;
    ChaCha20Prng rng(config.seed ^ 0xF04C3);
    const auto sig =
        falcon::sign(*forged, "forged by the falcon-down adversary", rng);
    out.forgery_verified =
        falcon::verify(victim.pk, "forged by the falcon-down adversary", sig);
  }
  return out;
}

}  // namespace fd::attack
