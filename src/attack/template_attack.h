#pragma once
// Profiled (template) attack -- the Section V.A extension.
//
// The paper's attack is deliberately non-profiled; it notes that "it is
// possible to extend our attack by template [20] ... profiling
// techniques". This module implements that extension for the linear
// Hamming-weight channel: the adversary first characterizes a *clone*
// device running a key they chose (classical template setting), fitting
// per-sample gain/offset/noise (alpha, beta, sigma); attacking the
// victim then scores candidates by Gaussian log-likelihood across ALL
// key-dependent samples of the window simultaneously -- mantissa
// products and additions in one joint score -- instead of phase-by-phase
// Pearson ranking. The payoff is a smaller trace budget (quantified in
// bench_template_attack).

#include <array>
#include <cstdint>
#include <optional>

#include "attack/extend_prune.h"
#include "sca/device.h"

namespace fd::attack {

struct TemplatePoint {
  double alpha = 0.0;
  double beta = 0.0;
  double sigma = 1.0;  // residual noise std after the linear fit
};

// One template per event offset of a multiplication block.
struct DeviceProfile {
  std::array<TemplatePoint, sca::window::kEventsPerMul> points;
};

// Characterizes the device from a profiling dataset whose secret
// component is known to the adversary (their own key on the clone).
[[nodiscard]] DeviceProfile profile_device(const ComponentDataset& ds,
                                           fpr::Fpr known_secret);
// Pooled profiling over several known components (one dataset each).
// Needed to fit the offsets whose Hamming weight is constant for any
// single component (e.g. the secret-exponent register load).
[[nodiscard]] DeviceProfile profile_device_multi(std::span<const ComponentDataset> dss,
                                                 std::span<const fpr::Fpr> known_secrets);

// Joint log-likelihood template attack on one component of the victim.
// Enumerates sign x exponent-window x mantissa candidates; mantissa
// candidate lists as in ComponentAttackConfig.
struct TemplateAttackResult {
  bool sign = false;
  unsigned exponent = 0;
  std::uint32_t x0 = 0;
  std::uint32_t x1 = 0;
  std::uint64_t bits = 0;
  double log_likelihood = 0.0;  // of the winning assembly
};

[[nodiscard]] TemplateAttackResult template_attack_component(
    const ComponentDataset& ds, const DeviceProfile& profile,
    const ComponentAttackConfig& config);

// Log-likelihood of a full 64-bit candidate given the dataset + profile,
// summed over the window's key-dependent samples (exposed for tests and
// the MTD bench).
[[nodiscard]] double template_log_likelihood(const ComponentDataset& ds,
                                             const DeviceProfile& profile,
                                             std::uint64_t candidate_bits,
                                             std::size_t max_traces = 0);

}  // namespace fd::attack
