#pragma once
// End-to-end recovery as a staged job graph over the exec pool.
//
// The pipeline is the attack of key_recovery.h restructured for
// production-scale runs: capture streams to a .fdtrace archive in
// parallel shards (bounded memory), the per-component attack fans out
// across the pool reading that archive, and assembly/forging complete
// the key. Stages are a linear exec::JobGraph -- each stage runs inline
// while its *inside* (shards, components) uses the pool -- and every
// stage's wall time is reported, which is what bench_parallel_scaling
// measures.
//
// Robustness layer (DESIGN.md section 10): the pipeline survives a
// hostile rig instead of assuming a pristine one.
//   - `faults` injects the deterministic failure plan of sca/faults.h
//     into capture (drops, desync, clipping, glitches, chunk damage,
//     whole-round capture failures);
//   - `quality` screens each slot's traces before CPA (attack/quality.h)
//     and realigns jittered windows;
//   - `adaptive` gates every component on the paper's 99.99%-confidence
//     top1/top2 margin and re-measures the doubtful ones: bounded extra
//     capture rounds (retried with exponential backoff when the rig is
//     down) merged into the archive, after which only the low-confidence
//     components are re-attacked. Components still unconvincing when the
//     budget runs out are *flagged* (partial = true) and handed to the
//     assemble-stage alias repair rather than silently trusted;
//   - `checkpoint` persists per-component results to an .fdckpt beside
//     the archive after every batch; `resume` picks a killed run back up
//     bit-identically, skipping finished components.
//
// Stage failures are collected, never thrown: a missing archive
// directory or an exhausted capture budget lands in `error` with the
// partial stage reports intact.
//
// Determinism: the result is a pure function of (victim key, config) --
// the worker count changes wall time only. The capture shard count IS
// part of the config (different shard seeds => different traces), the
// thread count is not; fault plans and re-measurement rounds derive
// from seeds, so a faulted adaptive run is as reproducible as a clean
// one.

#include <csignal>
#include <cstddef>
#include <string>
#include <vector>

#include "attack/key_recovery.h"
#include "attack/quality.h"
#include "exec/job_graph.h"
#include "sca/faults.h"

namespace fd::attack {

// Budget for the adaptive re-measurement controller.
struct RemeasureConfig {
  std::size_t max_rounds = 2;     // extra capture rounds after the first
  std::size_t round_traces = 0;   // queries per round; 0 = attack.num_traces
  std::size_t max_capture_attempts = 5;  // per round, incl. the first try
  std::size_t backoff_base_ms = 0;       // attempt k sleeps base << k; 0 = no sleep
  ConfidenceConfig confidence;           // the acceptance criterion
};

struct RecoveryPipelineConfig {
  KeyRecoveryConfig attack;       // attack.threads sizes the shared pool
  std::size_t capture_shards = 1; // sharded-capture fan-out (seed plan)
  std::string archive_path;       // where the campaign archive lives
  bool keep_archive = false;      // leave the .fdtrace behind for reuse

  sca::FaultConfig faults;        // injected rig failures (default: pristine)
  QualityConfig quality;          // trace gate in front of CPA
  RemeasureConfig remeasure;
  bool adaptive = false;          // confidence gating + re-measurement

  // Demultiplex each attack round's slots in ONE archive scan instead
  // of one scan per component (attack_components_gated's single_pass).
  // Bit-identical either way -- pure I/O strategy, excluded from the
  // checkpoint's experiment hash.
  bool single_pass = true;

  bool checkpoint = false;        // persist .fdckpt progress
  bool resume = false;            // reuse a compatible .fdckpt + archive
  std::size_t checkpoint_every = 8;  // components per checkpointed batch
  // Test hook simulating a kill: once this many components have been
  // checkpointed the attack stage throws. 0 = never.
  std::size_t abort_after_components = 0;

  // Cooperative shutdown: when non-null and the pointee becomes nonzero
  // (a signal handler flipping a sig_atomic_t), the pipeline stops at
  // the next batch boundary -- after persisting a final checkpoint and
  // emitting `pipeline.interrupted` -- and fails with result.interrupted
  // set. A later resume run continues bit-identically (the kill-then-
  // resume contract of tools/fd_attack.cpp's SIGTERM handler).
  const volatile std::sig_atomic_t* interrupt_flag = nullptr;
};

struct RecoveryPipelineResult {
  KeyRecoveryResult recovery;
  std::vector<exec::JobGraph::JobReport> stages;  // capture/attack/remeasure/assemble/forge
  std::size_t captured_records = 0;

  QualityReport quality;               // aggregate gate counts (all rounds)
  std::size_t capture_attempts = 0;    // capture tries incl. rig-down retries
  std::size_t remeasure_rounds = 0;    // extra rounds actually run
  std::vector<std::size_t> flagged_components;  // low confidence at budget end
  bool partial = false;                // flagged_components nonempty
  bool resumed = false;                // a checkpoint was loaded
  bool interrupted = false;            // stopped by config.interrupt_flag
  std::string checkpoint_path;         // set when checkpointing was on

  bool ok = false;
  std::string error;
};

// Runs capture -> component attack -> (remeasure) -> assemble -> forge
// against the victim. Recovers row 0 (f); g/F/G come from the public
// machinery as in recover_key.
[[nodiscard]] RecoveryPipelineResult run_recovery_pipeline(const falcon::KeyPair& victim,
                                                           const RecoveryPipelineConfig& config);

}  // namespace fd::attack
