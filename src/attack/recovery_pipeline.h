#pragma once
// End-to-end recovery as a staged job graph over the exec pool.
//
// The pipeline is the attack of key_recovery.h restructured for
// production-scale runs: capture streams to a .fdtrace archive in
// parallel shards (bounded memory), the per-component attack fans out
// across the pool reading that archive, and assembly/forging complete
// the key. Stages are a linear exec::JobGraph -- each stage runs inline
// while its *inside* (shards, components) uses the pool -- and every
// stage's wall time is reported, which is what bench_parallel_scaling
// measures.
//
// Determinism: the result is a pure function of (victim key, config) --
// the worker count changes wall time only. The capture shard count IS
// part of the config (different shard seeds => different traces), the
// thread count is not.

#include <string>
#include <vector>

#include "attack/key_recovery.h"
#include "exec/job_graph.h"

namespace fd::attack {

struct RecoveryPipelineConfig {
  KeyRecoveryConfig attack;       // attack.threads sizes the shared pool
  std::size_t capture_shards = 1; // sharded-capture fan-out (seed plan)
  std::string archive_path;       // where the campaign archive lives
  bool keep_archive = false;      // leave the .fdtrace behind for reuse
};

struct RecoveryPipelineResult {
  KeyRecoveryResult recovery;
  std::vector<exec::JobGraph::JobReport> stages;  // capture/attack/assemble/forge
  std::size_t captured_records = 0;
  bool ok = false;
  std::string error;
};

// Runs capture -> component attack -> assemble -> forge against the
// victim. Recovers row 0 (f); g/F/G come from the public machinery as
// in recover_key.
[[nodiscard]] RecoveryPipelineResult run_recovery_pipeline(const falcon::KeyPair& victim,
                                                           const RecoveryPipelineConfig& config);

}  // namespace fd::attack
