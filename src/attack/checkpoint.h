#pragma once
// Pipeline checkpoint persistence (.fdckpt).
//
// A long attack run dies for boring reasons -- OOM kill, power loss,
// ctrl-C -- and at paper scale (n = 1024 components, minutes each) a
// restart from zero is expensive. The pipeline therefore persists its
// per-component progress beside the trace archive: which components are
// finished, their full ComponentResult (every score as raw IEEE-754
// bits, so a resumed run reproduces the original bit-for-bit), and the
// post-quality-gate trace count each decision was based on (the D of
// its confidence interval -- re-measurement needs it to re-evaluate
// acceptance identically after a resume).
//
// Format (little-endian):
//   magic "FDCKPT1\0" | u32 payload_crc32 | payload
//   payload: u64 config_hash | u32 num_components | u32 remeasure_round
//            | per component: u8 done, then iff done:
//                the serialized ComponentResult + u64 accepted_traces
//
// config_hash binds the file to (victim key, attack config, fault plan,
// quality gate): a checkpoint from a different experiment refuses to
// load rather than silently mixing results. Writes are atomic
// (write-then-rename), so a kill during save leaves the previous
// checkpoint intact.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "attack/extend_prune.h"

namespace fd::attack {

// The checkpoint's ComponentResult encoding, exposed as a standalone
// serde pair because the fleet wire protocol (src/fleet) ships the same
// records between processes. Scores travel as raw IEEE-754 bits, so a
// round trip is bit-exact -- the property both the resume and the
// coordinator-merge determinism contracts stand on.
void serialize_component_result(std::vector<std::uint8_t>& out, const ComponentResult& r);
// Reads one record at `offset` (advanced past it on success). Returns
// false on a truncated or malformed buffer; `out` is unspecified then.
[[nodiscard]] bool deserialize_component_result(std::span<const std::uint8_t> bytes,
                                                std::size_t& offset, ComponentResult& out);

struct CheckpointState {
  std::uint64_t config_hash = 0;
  std::uint32_t remeasure_round = 0;       // re-measurement rounds already merged
  std::vector<std::uint8_t> done;          // 1 = component finished
  std::vector<ComponentResult> results;    // valid where done[i]
  std::vector<std::uint64_t> accepted_traces;  // post-gate D where done[i]

  void reset(std::size_t num_components) {
    config_hash = 0;
    remeasure_round = 0;
    done.assign(num_components, 0);
    results.assign(num_components, ComponentResult{});
    accepted_traces.assign(num_components, 0);
  }
  [[nodiscard]] std::size_t completed() const {
    std::size_t c = 0;
    for (const auto d : done) c += d != 0;
    return c;
  }
};

// Atomic save: serializes to `path` + ".tmp" and renames over `path`.
[[nodiscard]] bool save_checkpoint(const std::string& path, const CheckpointState& state,
                                   std::string* error = nullptr);

// Loads and CRC-checks `path`. Fails (with a message) on missing file,
// bad magic, CRC mismatch, or a truncated/overlong payload; checking
// config_hash against the current experiment is the caller's job.
[[nodiscard]] bool load_checkpoint(const std::string& path, CheckpointState& state,
                                   std::string* error = nullptr);

}  // namespace fd::attack
