#include "attack/template_attack.h"

#include <cmath>

namespace fd::attack {

namespace ww = sca::window;
using fpr::Fpr;

namespace {

// Predicted Hamming weight of each key-dependent event of one mul block,
// for a candidate secret component against a known operand. Offsets not
// modeled (pure-known events, the final result store) return -1.
double predicted_hw(std::size_t offset, std::uint64_t bits, const KnownOperand& k) {
  const Fpr cand = Fpr::from_bits(bits);
  const KnownOperand s = KnownOperand::from(cand);
  switch (offset) {
    case ww::kOffSign:
      return hyp_sign(cand.sign(), k);
    case ww::kOffExpX:
      return std::popcount(cand.biased_exponent());
    case ww::kOffExpSum:
      return hyp_exponent(cand.biased_exponent(), k);
    case ww::kOffXLo:
      return std::popcount(s.y0);
    case ww::kOffXHi:
      return std::popcount(s.y1);
    case ww::kOffProdLL:
      return hyp_low_mul_ll(s.y0, k);
    case ww::kOffProdLH:
      return hyp_low_mul_lh(s.y0, k);
    case ww::kOffAccZ1a:
      return hyp_low_add_z1a(s.y0, k);
    case ww::kOffProdHL:
      return hyp_high_mul_hl(s.y1, k);
    case ww::kOffProdHH:
      return hyp_high_mul_hh(s.y1, k);
    case ww::kOffAccZ1b:
      return hyp_high_add_z1b(s.y1, s.y0, k);
    case ww::kOffAccZu:
      return hyp_high_add_zu(s.y1, s.y0, k);
    default:
      return -1.0;
  }
}

constexpr std::size_t kModeledOffsets[] = {
    ww::kOffSign, ww::kOffExpX,   ww::kOffExpSum, ww::kOffXLo,    ww::kOffXHi,
    ww::kOffProdLL, ww::kOffProdLH, ww::kOffAccZ1a, ww::kOffProdHL, ww::kOffProdHH,
    ww::kOffAccZ1b, ww::kOffAccZu};

}  // namespace

DeviceProfile profile_device_multi(std::span<const ComponentDataset> dss,
                                   std::span<const Fpr> known_secrets) {
  DeviceProfile prof;
  for (std::size_t off = 0; off < ww::kEventsPerMul; ++off) {
    double sh = 0.0, sh2 = 0.0, st = 0.0, sht = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < dss.size(); ++i) {
      const auto& ds = dss[i];
      for (unsigned v = 0; v < 2; ++v) {
        for (std::size_t t = 0; t < ds.num_traces; ++t) {
          const double h = predicted_hw(off, known_secrets[i].bits(), ds.views[v].known[t]);
          if (h < 0.0) continue;
          const double smp = ds.views[v].samples[off][t];
          sh += h;
          sh2 += h * h;
          st += smp;
          sht += h * smp;
          ++count;
        }
      }
    }
    TemplatePoint& p = prof.points[off];
    if (count < 8) continue;
    const double dn = static_cast<double>(count);
    const double var_h = dn * sh2 - sh * sh;
    p.alpha = var_h > 1e-9 ? (dn * sht - sh * st) / var_h : 0.0;
    p.beta = (st - p.alpha * sh) / dn;
    // Residual variance of the fit.
    double rss = 0.0;
    for (std::size_t i = 0; i < dss.size(); ++i) {
      const auto& ds = dss[i];
      for (unsigned v = 0; v < 2; ++v) {
        for (std::size_t t = 0; t < ds.num_traces; ++t) {
          const double h = predicted_hw(off, known_secrets[i].bits(), ds.views[v].known[t]);
          if (h < 0.0) continue;
          const double e = ds.views[v].samples[off][t] - (p.alpha * h + p.beta);
          rss += e * e;
        }
      }
    }
    p.sigma = std::sqrt(std::max(rss / dn, 1e-12));
  }
  return prof;
}

DeviceProfile profile_device(const ComponentDataset& ds, Fpr known_secret) {
  return profile_device_multi({&ds, 1}, {&known_secret, 1});
}

double template_log_likelihood(const ComponentDataset& ds, const DeviceProfile& profile,
                               std::uint64_t candidate_bits, std::size_t max_traces) {
  const std::size_t d =
      max_traces == 0 ? ds.num_traces : std::min(max_traces, ds.num_traces);
  double ll = 0.0;
  for (const std::size_t off : kModeledOffsets) {
    const TemplatePoint& p = profile.points[off];
    if (p.alpha == 0.0) continue;
    const double inv2s2 = 1.0 / (2.0 * p.sigma * p.sigma);
    for (unsigned v = 0; v < 2; ++v) {
      for (std::size_t t = 0; t < d; ++t) {
        const double h = predicted_hw(off, candidate_bits, ds.views[v].known[t]);
        if (h < 0.0) continue;
        const double e = ds.views[v].samples[off][t] - (p.alpha * h + p.beta);
        ll -= e * e * inv2s2;
      }
    }
  }
  return ll;
}

TemplateAttackResult template_attack_component(const ComponentDataset& ds,
                                               const DeviceProfile& profile,
                                               const ComponentAttackConfig& config) {
  // Stage the search like the non-profiled attack (full joint
  // enumeration is infeasible), but rank every stage by template
  // likelihood restricted to the offsets that the stage's part touches.
  TemplateAttackResult res;

  const auto score_part = [&](std::span<const std::size_t> offsets, auto&& hyp_fn,
                              std::uint64_t guess_count, auto&& guess_at) {
    double best = -1e300;
    std::uint64_t best_guess = 0;
    for (std::uint64_t gi = 0; gi < guess_count; ++gi) {
      const auto guess = guess_at(gi);
      double ll = 0.0;
      for (const std::size_t off : offsets) {
        const TemplatePoint& p = profile.points[off];
        if (p.alpha == 0.0) continue;
        const double inv2s2 = 1.0 / (2.0 * p.sigma * p.sigma);
        for (unsigned v = 0; v < 2; ++v) {
          for (std::size_t t = 0; t < ds.num_traces; ++t) {
            const double h = hyp_fn(guess, ds.views[v].known[t], off);
            const double e = ds.views[v].samples[off][t] - (p.alpha * h + p.beta);
            ll -= e * e * inv2s2;
          }
        }
      }
      if (ll > best) {
        best = ll;
        best_guess = guess;
      }
    }
    return best_guess;
  };

  // Sign.
  {
    const std::size_t offs[] = {ww::kOffSign};
    res.sign = score_part(
                   offs,
                   [](std::uint64_t g, const KnownOperand& k, std::size_t) {
                     return hyp_sign(g != 0, k);
                   },
                   2, [](std::uint64_t i) { return i; }) != 0;
  }
  // Exponent: ExpX (absolute) + ExpSum (relative) jointly -- no aliasing.
  {
    const std::size_t offs[] = {ww::kOffExpX, ww::kOffExpSum};
    res.exponent = static_cast<unsigned>(score_part(
        offs,
        [](std::uint64_t g, const KnownOperand& k, std::size_t off) {
          return off == ww::kOffExpX
                     ? static_cast<double>(std::popcount(static_cast<unsigned>(g)))
                     : hyp_exponent(static_cast<unsigned>(g), k);
        },
        config.exp_max - config.exp_min + 1,
        [&](std::uint64_t i) { return config.exp_min + i; }));
  }
  // Mantissa low: products + z1a jointly (extend and prune in one score).
  {
    const std::size_t offs[] = {ww::kOffXLo, ww::kOffProdLL, ww::kOffProdLH, ww::kOffAccZ1a};
    res.x0 = static_cast<std::uint32_t>(score_part(
        offs,
        [](std::uint64_t g, const KnownOperand& k, std::size_t off) {
          const auto x0 = static_cast<std::uint32_t>(g);
          switch (off) {
            case ww::kOffXLo: return static_cast<double>(std::popcount(x0));
            case ww::kOffProdLL: return hyp_low_mul_ll(x0, k);
            case ww::kOffProdLH: return hyp_low_mul_lh(x0, k);
            default: return hyp_low_add_z1a(x0, k);
          }
        },
        config.low_candidates.size(),
        [&](std::uint64_t i) { return config.low_candidates[i]; }));
  }
  // Mantissa high: products + z1b + zu jointly, with the recovered x0.
  {
    const std::uint32_t x0 = res.x0;
    const std::size_t offs[] = {ww::kOffXHi, ww::kOffProdHL, ww::kOffProdHH, ww::kOffAccZ1b,
                                ww::kOffAccZu};
    res.x1 = static_cast<std::uint32_t>(score_part(
        offs,
        [x0](std::uint64_t g, const KnownOperand& k, std::size_t off) {
          const auto x1 = static_cast<std::uint32_t>(g);
          switch (off) {
            case ww::kOffXHi: return static_cast<double>(std::popcount(x1));
            case ww::kOffProdHL: return hyp_high_mul_hl(x1, k);
            case ww::kOffProdHH: return hyp_high_mul_hh(x1, k);
            case ww::kOffAccZ1b: return hyp_high_add_z1b(x1, x0, k);
            default: return hyp_high_add_zu(x1, x0, k);
          }
        },
        config.high_candidates.size(),
        [&](std::uint64_t i) { return config.high_candidates[i]; }));
  }

  res.bits = assemble_bits(res.sign, res.exponent, res.x1, res.x0);
  res.log_likelihood = template_log_likelihood(ds, profile, res.bits);
  return res;
}

}  // namespace fd::attack
