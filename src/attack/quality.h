#pragma once
// Trace quality gate in front of the CPA stack.
//
// A real rig hands the attacker a mix of usable and worthless windows:
// clipped front-ends, glitched records, windows the trigger placed off
// by dozens of samples. Feeding those straight into Pearson folds costs
// correlation (saturation destroys the HW-amplitude linearity, a single
// 500-unit spike dominates a column's variance, a desynced window is
// noise against every hypothesis). The gate screens each slot's trace
// set BEFORE dataset extraction:
//
//   1. saturation  -- clipping creates exact-value pile-ups at the trace
//                     extremes (float noise never collides); a trace
//                     whose max/min values repeat across >= pinned_frac
//                     of its samples is rejected;
//   2. energy      -- robust outlier screen: reject traces whose energy
//                     (sum of squares) sits further than energy_mad_k
//                     scaled-MADs from the slot median (catches glitch
//                     spikes and other gross amplitude damage);
//   3. alignment   -- every surviving trace is lag-searched over
//                     [0, max_lag] with a boxcar matched filter (signal
//                     samples are positive, noise is zero-mean, so the
//                     densest-energy window is the true one), then
//                     refined against the surviving traces' mean
//                     reference; traces whose best correlation stays
//                     under min_alignment_corr are rejected (gross
//                     desync), the rest are shifted back to lag 0 in
//                     place (recovering jitter_max > 0 captures the
//                     naive path loses).
//
// Determinism: the gate is a pure function of the trace bytes and the
// config -- no RNG, no thread-count dependence -- so gated attacks keep
// the DESIGN.md section 9 bit-identity contract.

#include <cstddef>

#include "attack/extend_prune.h"
#include "sca/campaign.h"

namespace fd::attack {

struct QualityConfig {
  bool enabled = false;  // off = bit-identical to the ungated path
  // Saturation screen: reject when >= max(min_pinned, pinned_frac * S)
  // samples sit exactly at the trace max or min.
  double saturation_pinned_frac = 0.05;
  std::size_t saturation_min_pinned = 6;
  // Energy screen: reject when |energy - median| > energy_mad_k * MAD
  // (MAD scaled by 1.4826 to estimate sigma under normality).
  double energy_mad_k = 8.0;
  // Alignment: search lags [0, max_lag] (max_lag = 0 uses the archive's
  // jitter_max); reject below min_alignment_corr at the best lag.
  unsigned max_lag = 0;
  double min_alignment_corr = 0.5;
  unsigned refine_iters = 2;  // reference re-estimation rounds
};

struct QualityReport {
  std::size_t total = 0;
  std::size_t accepted = 0;
  std::size_t rejected_saturated = 0;
  std::size_t rejected_energy = 0;
  std::size_t rejected_alignment = 0;
  std::size_t realigned = 0;  // accepted after a nonzero-lag shift

  void add(const QualityReport& other) {
    total += other.total;
    accepted += other.accepted;
    rejected_saturated += other.rejected_saturated;
    rejected_energy += other.rejected_energy;
    rejected_alignment += other.rejected_alignment;
    realigned += other.realigned;
  }
};

// Screens `set` in place: rejected traces are erased (original order
// preserved), realigned traces are shifted to lag 0 with a zero-filled
// tail. `jitter_max` is the capture-time jitter bound from the archive
// meta, used when config.max_lag == 0. Accept/reject counts also flow
// through obs metrics (attack.quality.*).
QualityReport screen_trace_set(sca::TraceSet& set, const QualityConfig& config,
                               unsigned jitter_max);

// --- acceptance confidence -------------------------------------------------
//
// The paper accepts a CPA decision once the top-ranked hypothesis
// separates from the runner-up by the 99.99%-confidence interval
// z / sqrt(D) of a Pearson correlation at D traces. Re-measurement
// applies that criterion per component: the margin is the minimum
// top1 - top2 gap across the decisive phases (sign + the two prune
// re-rankings; the exponent phase is excluded because its top class is
// a structural Pearson-alias family the assemble-stage repair owns).
//
// The raw z/sqrt(D) bound treats the two candidates' score estimates as
// independent, but rival hypotheses predict strongly correlated Hamming
// weights, so the variance of the top1 - top2 *difference* is far below
// the independent-samples bound. margin_factor deflates the threshold
// to compensate; the default 0.1 is calibrated so clean bench-scale
// captures (sigma 2, ~350 traces) certify every component within at
// most one re-measurement round, while heavily faulted captures still
// fall under the bar and trigger the controller.

struct ConfidenceConfig {
  double confidence = 0.9999;  // the paper's acceptance criterion
  double margin_factor = 0.1;  // threshold = margin_factor * z / sqrt(D)
};

struct ComponentConfidence {
  double margin = 0.0;     // min decisive top1 - top2 gap
  double threshold = 0.0;  // margin_factor * confidence_interval(D)
  bool confident = false;
};

[[nodiscard]] ComponentConfidence component_confidence(const ComponentResult& result,
                                                       std::size_t num_traces,
                                                       const ConfidenceConfig& config);

}  // namespace fd::attack
