#include "attack/extend_prune.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/span.h"

namespace fd::attack {

namespace ww = sca::window;

ComponentDataset build_component_dataset(const sca::TraceSet& set, bool imag_part,
                                         std::size_t max_traces) {
  const std::size_t d =
      max_traces == 0 ? set.traces.size() : std::min(max_traces, set.traces.size());
  ComponentDataset ds;
  ds.num_traces = d;
  for (unsigned v = 0; v < 2; ++v) {
    const std::size_t base = ww::mul_base(
        static_cast<unsigned>(ww::mul_block_for(imag_part, v)));
    auto& view = ds.views[v];
    view.known.reserve(d);
    view.samples.assign(ww::kEventsPerMul, std::vector<float>(d));
    for (std::size_t t = 0; t < d; ++t) {
      const auto& ct = set.traces[t];
      // Known operand of this block: re*re and im*im use matching parts,
      // re*im and im*re the crossed ones -- encoded in mul_block_for:
      // blocks 0/1 use (re, im) known respectively, blocks 2/3 crossed.
      const std::size_t block = ww::mul_block_for(imag_part, v);
      const fpr::Fpr known =
          (block == 0 || block == 3) ? ct.known_re : ct.known_im;
      view.known.push_back(KnownOperand::from(known));
      for (std::size_t s = 0; s < ww::kEventsPerMul; ++s) {
        view.samples[s][t] = ct.trace.samples[base + s];
      }
    }
  }
  return ds;
}

std::vector<std::uint32_t> MantissaCandidates::adversarial(std::uint32_t truth, bool high,
                                                           std::size_t random_count,
                                                           std::uint64_t seed) {
  const std::uint32_t lo_bound = high ? (1U << 27) : 0;
  const std::uint32_t hi_bound = high ? (1U << 28) : (1U << 25);
  const auto in_range = [&](std::uint32_t v) { return v >= lo_bound && v < hi_bound; };

  std::set<std::uint32_t> cand;
  const auto add_shift_family = [&](std::uint32_t v) {
    cand.insert(v);
    for (int k = 1; k <= 6; ++k) {
      const std::uint64_t left = static_cast<std::uint64_t>(v) << k;
      if (left < hi_bound && in_range(static_cast<std::uint32_t>(left))) {
        cand.insert(static_cast<std::uint32_t>(left));
      }
      const std::uint32_t right = v >> k;
      // Only exact shifts (no bits dropped) reproduce the Hamming weight.
      if ((static_cast<std::uint64_t>(right) << k) == v && in_range(right)) {
        cand.insert(right);
      }
    }
  };
  add_shift_family(truth);

  ChaCha20Prng rng(seed);
  while (cand.size() < random_count + 1) {
    const std::uint32_t v =
        lo_bound + static_cast<std::uint32_t>(rng.uniform(hi_bound - lo_bound));
    add_shift_family(v);
  }
  return {cand.begin(), cand.end()};
}

namespace {

PhaseOutcome run_scan(const ComponentDataset& ds, std::span<const std::size_t> offsets,
                      std::span<const std::uint32_t> candidates, std::size_t keep,
                      const CpaKernelConfig& kernel, auto&& model_for_offset) {
  // Build one column per (view, offset) pair.
  std::vector<std::vector<float>> cols;
  std::vector<std::pair<unsigned, std::size_t>> col_meta;  // (view, offset)
  for (unsigned v = 0; v < 2; ++v) {
    for (const std::size_t off : offsets) {
      cols.push_back(ds.views[v].samples[off]);
      col_meta.emplace_back(v, off);
    }
  }
  StreamingScan scan(std::move(cols), kernel);
  auto model = [&](std::uint32_t guess, std::size_t t, std::size_t c) {
    const auto [view, off] = col_meta[c];
    return model_for_offset(guess, ds.views[view].known[t], off);
  };
  PhaseOutcome out;
  out.top = scan.top_k_list(candidates, model, keep);
  if (!out.top.empty()) {
    out.value = out.top[0].guess;
    out.score = out.top[0].score;
  }
  return out;
}

// One "ep.phase" event per pipeline stage: how many candidates went in,
// how many survived the keep cut, and the winner. The kept/pruned split
// also feeds the global attack.ep.* counters.
void note_phase(const ComponentAttackConfig& config, std::string_view phase,
                std::size_t candidates_in, const PhaseOutcome& out) {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("attack.ep.candidates").add(candidates_in);
  reg.counter("attack.ep.pruned").add(candidates_in - out.top.size());
  if (obs::sink() == nullptr) return;
  obs::event("ep.phase")
      .with("label", config.obs_label)
      .with("phase", phase)
      .with("candidates_in", candidates_in)
      .with("kept", out.top.size())
      .with("value", out.value)
      .with("score", out.score)
      .emit();
}

}  // namespace

LinearCalibration calibrate_device(const ComponentDataset& ds) {
  // Regress trace samples against the Hamming weights of events whose
  // values the adversary fully knows: the known-operand mantissa splits
  // and exponent (offsets YLo/YHi/ExpY). No key material involved.
  double sh = 0.0, sh2 = 0.0, st = 0.0, sht = 0.0;
  std::size_t count = 0;
  for (unsigned v = 0; v < 2; ++v) {
    const auto& view = ds.views[v];
    for (std::size_t t = 0; t < ds.num_traces; ++t) {
      const KnownOperand& k = view.known[t];
      const double hws[3] = {static_cast<double>(std::popcount(k.y0)),
                             static_cast<double>(std::popcount(k.y1)),
                             static_cast<double>(std::popcount(k.exponent))};
      const std::size_t offs[3] = {ww::kOffYLo, ww::kOffYHi, ww::kOffExpY};
      for (int i = 0; i < 3; ++i) {
        const double h = hws[i];
        const double s = view.samples[offs[i]][t];
        sh += h;
        sh2 += h * h;
        st += s;
        sht += h * s;
        ++count;
      }
    }
  }
  const double dn = static_cast<double>(count);
  const double var_h = dn * sh2 - sh * sh;
  LinearCalibration cal;
  cal.alpha = var_h > 0.0 ? (dn * sht - sh * st) / var_h : 0.0;
  cal.beta = (st - cal.alpha * sh) / dn;
  return cal;
}

std::uint64_t assemble_bits(bool sign, unsigned exponent, std::uint32_t x1, std::uint32_t x0) {
  const std::uint64_t mant53 =
      (static_cast<std::uint64_t>(x1) << fpr::kMantLowBits) | x0;
  return (static_cast<std::uint64_t>(sign) << 63) |
         (static_cast<std::uint64_t>(exponent & 0x7FF) << 52) |
         (mant53 & 0x000FFFFFFFFFFFFFULL);
}

PhaseOutcome attack_low_mul_only(const ComponentDataset& ds,
                                 std::span<const std::uint32_t> candidates, std::size_t keep) {
  const std::size_t offsets[] = {ww::kOffProdLL, ww::kOffProdLH};
  return run_scan(ds, offsets, candidates, keep, CpaKernelConfig{},
                  [](std::uint32_t g, const KnownOperand& k, std::size_t off) {
                    return off == ww::kOffProdLL ? hyp_low_mul_ll(g, k) : hyp_low_mul_lh(g, k);
                  });
}

ComponentResult attack_component(const ComponentDataset& ds,
                                 const ComponentAttackConfig& config) {
  obs::Span span("attack.component");
  ComponentResult res;

  // 1. Sign: two guesses on the XOR event.
  {
    const std::size_t offsets[] = {ww::kOffSign};
    const std::uint32_t guesses[] = {0, 1};
    res.sign_phase = run_scan(ds, offsets, guesses, 2, config.kernel,
                              [](std::uint32_t g, const KnownOperand& k, std::size_t) {
                                return hyp_sign(g != 0, k);
                              });
    res.sign = res.sign_phase.value != 0;
    note_phase(config, "sign", 2, res.sign_phase);
  }

  // 2. Exponent: enumeration of the plausible window on the
  // exponent-sum addition, then alias-tie resolution by the magnitude
  // prior (see ComponentAttackConfig::exp_min).
  {
    const std::size_t offsets[] = {ww::kOffExpSum};
    std::vector<std::uint32_t> guesses;
    guesses.reserve(config.exp_max - config.exp_min + 1);
    for (std::uint32_t e = config.exp_min; e <= config.exp_max; ++e) guesses.push_back(e);
    res.exp_phase = run_scan(ds, offsets, guesses, guesses.size(), config.kernel,
                             [](std::uint32_t g, const KnownOperand& k, std::size_t) {
                               return hyp_exponent(g, k);
                             });
    // Keep only the tie class, then prefer the guess nearest the prior.
    const double eps =
        config.exp_tie_epsilon >= 0.0
            ? config.exp_tie_epsilon
            : std::max(1e-6, 4.0 / std::sqrt(static_cast<double>(ds.num_traces)));
    const double best = res.exp_phase.top.empty() ? 0.0 : res.exp_phase.top[0].score;
    std::uint32_t pick = res.exp_phase.value;
    std::vector<StreamingScan::Scored> ties;
    for (const auto& s : res.exp_phase.top) {
      if (s.score >= best - eps) ties.push_back(s);
    }
    // Tie resolution: Pearson is blind to affine prediction shifts, but
    // the aliases DO predict different absolute per-trace amplitudes.
    // With the device gain/offset self-calibrated from known-value
    // events, template-match each tie member: pick the guess minimizing
    // the per-trace squared error against alpha*h + beta.
    const LinearCalibration cal = calibrate_device(ds);
    if (std::fabs(cal.alpha) > 1e-6) {
      double best_sse = 1e300;
      for (const auto& s : ties) {
        double sse = 0.0;
        for (unsigned v = 0; v < 2; ++v) {
          // The exponent-sum addition (per-trace varying) plus the
          // secret-exponent register load (constant Hamming weight --
          // invisible to Pearson, decisive for the template).
          const auto& col_sum = ds.views[v].samples[ww::kOffExpSum];
          const auto& col_x = ds.views[v].samples[ww::kOffExpX];
          const double pred_x =
              cal.alpha * std::popcount(s.guess) + cal.beta;
          for (std::size_t t = 0; t < ds.num_traces; ++t) {
            const double pred_sum =
                cal.alpha * hyp_exponent(s.guess, ds.views[v].known[t]) + cal.beta;
            const double e1 = col_sum[t] - pred_sum;
            const double e2 = col_x[t] - pred_x;
            sse += e1 * e1 + e2 * e2;
          }
        }
        if (sse < best_sse) {
          best_sse = sse;
          pick = s.guess;
        }
      }
    } else {
      // Degenerate calibration (e.g. a hiding countermeasure): fall back
      // to the magnitude prior.
      for (const auto& s : ties) {
        const auto dist = [&](std::uint32_t e) {
          return e > config.exp_prior ? e - config.exp_prior : config.exp_prior - e;
        };
        if (dist(s.guess) < dist(pick)) pick = s.guess;
      }
    }
    res.exp_phase.top = std::move(ties);
    res.exp_phase.value = pick;
    res.exponent = pick;
    note_phase(config, "exponent", guesses.size(), res.exp_phase);
  }

  // 3. Mantissa low half: extend on the partial products...
  {
    std::vector<std::uint32_t> full;
    std::span<const std::uint32_t> cands;
    if (config.low_candidates.empty()) {
      full.resize(std::size_t{1} << 25);
      for (std::uint32_t v = 0; v < (1U << 25); ++v) full[v] = v;
      cands = full;
    } else {
      cands = config.low_candidates;
    }
    const std::size_t mul_offsets[] = {ww::kOffProdLL, ww::kOffProdLH};
    res.low_extend =
        run_scan(ds, mul_offsets, cands, config.extend_top_k, config.kernel,
                 [](std::uint32_t g, const KnownOperand& k, std::size_t off) {
                   return off == ww::kOffProdLL ? hyp_low_mul_ll(g, k) : hyp_low_mul_lh(g, k);
                 });
    note_phase(config, "low_extend", cands.size(), res.low_extend);

    // ...prune on the z1a addition over the surviving top-K.
    std::vector<std::uint32_t> survivors;
    survivors.reserve(res.low_extend.top.size());
    for (const auto& s : res.low_extend.top) survivors.push_back(s.guess);
    const std::size_t add_offsets[] = {ww::kOffAccZ1a};
    res.low_prune = run_scan(ds, add_offsets, survivors, survivors.size(), config.kernel,
                             [](std::uint32_t g, const KnownOperand& k, std::size_t) {
                               return hyp_low_add_z1a(g, k);
                             });
    res.x0 = res.low_prune.value;
    note_phase(config, "low_prune", survivors.size(), res.low_prune);
  }

  // 4. Mantissa high half: same extend-and-prune with the recovered x0.
  {
    std::vector<std::uint32_t> full;
    std::span<const std::uint32_t> cands;
    if (config.high_candidates.empty()) {
      full.resize(std::size_t{1} << 27);
      for (std::uint32_t i = 0; i < (1U << 27); ++i) full[i] = (1U << 27) | i;
      cands = full;
    } else {
      cands = config.high_candidates;
    }
    const std::size_t mul_offsets[] = {ww::kOffProdHL, ww::kOffProdHH};
    res.high_extend =
        run_scan(ds, mul_offsets, cands, config.extend_top_k, config.kernel,
                 [](std::uint32_t g, const KnownOperand& k, std::size_t off) {
                   return off == ww::kOffProdHL ? hyp_high_mul_hl(g, k) : hyp_high_mul_hh(g, k);
                 });
    note_phase(config, "high_extend", cands.size(), res.high_extend);

    std::vector<std::uint32_t> survivors;
    survivors.reserve(res.high_extend.top.size());
    for (const auto& s : res.high_extend.top) survivors.push_back(s.guess);
    const std::size_t add_offsets[] = {ww::kOffAccZ1b, ww::kOffAccZu};
    const std::uint32_t x0 = res.x0;
    res.high_prune = run_scan(ds, add_offsets, survivors, survivors.size(), config.kernel,
                              [x0](std::uint32_t g, const KnownOperand& k, std::size_t off) {
                                return off == ww::kOffAccZu ? hyp_high_add_zu(g, x0, k)
                                                            : hyp_high_add_z1b(g, x0, k);
                              });
    res.x1 = res.high_prune.value;
    note_phase(config, "high_prune", survivors.size(), res.high_prune);
  }

  res.bits = assemble_bits(res.sign, res.exponent, res.x1, res.x0);
  if (obs::sink() != nullptr) {
    obs::event("ep.component")
        .with("label", config.obs_label)
        .with("traces", ds.num_traces)
        .with("bits", res.bits)
        .with("wall_us", span.elapsed_us())
        .emit();
  }
  return res;
}

}  // namespace fd::attack
