#include "attack/streaming_cpa.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "obs/metrics.h"
#include "obs/sink.h"
#include "sca/device.h"

namespace fd::attack {

namespace {

namespace ww = sca::window;

// Folds one captured window into the accumulator: one add_trace per
// view, with hypotheses recomputed from that view's known operand. The
// streamed and in-memory paths share this fold so their floating-point
// operation order is identical by construction.
class CpaFold {
 public:
  explicit CpaFold(const StreamingCpaSpec& spec)
      : spec_(spec),
        engine_(spec.guesses.size(), spec.sample_offsets.size(), spec.kernel,
                spec.rank_mode),
        hyps_(spec.guesses.size()),
        samps_(spec.sample_offsets.size()) {
    assert(!spec.guesses.empty() && !spec.sample_offsets.empty() && spec.model);
  }

  void add_window(fpr::Fpr known_re, fpr::Fpr known_im, std::span<const float> samples) {
    bool contributed = false;
    for (unsigned v = 0; v < 2; ++v) {
      const std::size_t block = ww::mul_block_for(spec_.imag_part, v);
      const std::size_t base = ww::mul_base(static_cast<unsigned>(block));
      if (base + ww::kEventsPerMul > samples.size()) continue;  // foreign layout
      const fpr::Fpr known = (block == 0 || block == 3) ? known_re : known_im;
      const KnownOperand k = KnownOperand::from(known);
      for (std::size_t g = 0; g < spec_.guesses.size(); ++g) {
        hyps_[g] = spec_.model(spec_.guesses[g], k);
      }
      for (std::size_t c = 0; c < spec_.sample_offsets.size(); ++c) {
        samps_[c] = samples[base + spec_.sample_offsets[c]];
      }
      engine_.add_trace(hyps_, samps_);
      contributed = true;
    }
    // A window whose layout had no room for either view folded nothing:
    // it must not advance attack.cpa.windows or the snapshot cadence.
    if (!contributed) return;
    ++windows_;
    if (spec_.snapshot_every != 0 && windows_ % spec_.snapshot_every == 0) {
      snapshot();
      snapshot_emitted_ = true;
    } else if (spec_.snapshot_every != 0) {
      snapshot_emitted_ = false;
    }
  }

  [[nodiscard]] CpaEngine take() {
    // Final snapshot so the end state is always on record, even when
    // the trace count is not a multiple of the cadence.
    if (spec_.snapshot_every != 0 && !snapshot_emitted_ && windows_ > 0) snapshot();
    obs::MetricsRegistry::global().counter("attack.cpa.windows").add(windows_);
    return std::move(engine_);
  }

 private:
  // Reads the accumulator (never mutates it) and emits one
  // "cpa.snapshot" event: the guess-rank state after `windows_` traces.
  void snapshot() const {
    if (obs::sink() == nullptr) return;
    const std::vector<std::size_t> order = engine_.ranking();
    const double top1_r = engine_.peak(order[0]);
    const double top2_r = order.size() > 1 ? engine_.peak(order[1]) : top1_r;
    std::int64_t truth_rank = -1;
    double truth_r = 0.0;
    if (spec_.truth_guess >= 0) {
      for (std::size_t pos = 0; pos < order.size(); ++pos) {
        if (spec_.guesses[order[pos]] == static_cast<std::uint32_t>(spec_.truth_guess)) {
          truth_rank = static_cast<std::int64_t>(pos);
          truth_r = engine_.peak(order[pos]);
          break;
        }
      }
    }
    obs::event("cpa.snapshot")
        .with("label", spec_.label)
        .with("traces", windows_)
        .with("guesses", spec_.guesses.size())
        .with("top1_guess", spec_.guesses[order[0]])
        .with("top1_r", top1_r)
        .with("top2_r", top2_r)
        .with("margin", top1_r - top2_r)
        .with("truth_rank", truth_rank)
        .with("truth_r", truth_r)
        .emit();
  }

  const StreamingCpaSpec& spec_;
  CpaEngine engine_;
  std::vector<double> hyps_;
  std::vector<float> samps_;
  std::size_t windows_ = 0;
  bool snapshot_emitted_ = false;
};

void count_archive_scan() {
  obs::MetricsRegistry::global().counter("attack.archive.scans").add(1);
}

}  // namespace

CpaEngine run_cpa_streaming(tracestore::ArchiveReader& reader,
                            const StreamingCpaSpec& spec) {
  CpaFold fold(spec);
  reader.rewind();
  count_archive_scan();
  tracestore::TraceRecord rec;
  std::size_t used = 0;
  while ((spec.max_traces == 0 || used < spec.max_traces) && reader.next(rec)) {
    if (rec.slot != spec.slot) continue;
    fold.add_window(fpr::Fpr::from_bits(rec.known_re_bits),
                    fpr::Fpr::from_bits(rec.known_im_bits), rec.samples);
    ++used;
  }
  return fold.take();
}

std::vector<CpaEngine> run_cpa_streaming_multi(tracestore::ArchiveReader& reader,
                                               std::span<const StreamingCpaSpec> specs) {
  // One fold per spec; CpaFold pins a reference to its spec, so folds
  // live behind stable pointers.
  std::vector<std::unique_ptr<CpaFold>> folds;
  folds.reserve(specs.size());
  std::size_t max_slot = 0;
  for (const auto& spec : specs) {
    folds.push_back(std::make_unique<CpaFold>(spec));
    max_slot = std::max(max_slot, spec.slot);
  }
  // Slot -> interested spec indices (specs may share a slot).
  std::vector<std::vector<std::size_t>> by_slot(max_slot + 1);
  for (std::size_t i = 0; i < specs.size(); ++i) by_slot[specs[i].slot].push_back(i);

  std::vector<std::size_t> used(specs.size(), 0);
  // The scan can stop early only if every spec has a trace budget.
  std::size_t unsaturated = 0;
  for (const auto& spec : specs) {
    if (spec.max_traces == 0) unsaturated = specs.size() + 1;  // never early-exit
  }
  if (unsaturated == 0) unsaturated = specs.size();

  reader.rewind();
  if (!specs.empty()) count_archive_scan();
  tracestore::TraceRecord rec;
  while (unsaturated > 0 && reader.next(rec)) {
    if (rec.slot >= by_slot.size()) continue;
    for (const std::size_t i : by_slot[rec.slot]) {
      const auto& spec = specs[i];
      if (spec.max_traces != 0 && used[i] >= spec.max_traces) continue;
      folds[i]->add_window(fpr::Fpr::from_bits(rec.known_re_bits),
                           fpr::Fpr::from_bits(rec.known_im_bits), rec.samples);
      ++used[i];
      if (spec.max_traces != 0 && used[i] == spec.max_traces && unsaturated <= specs.size()) {
        --unsaturated;
      }
    }
  }

  std::vector<CpaEngine> out;
  out.reserve(specs.size());
  for (auto& fold : folds) out.push_back(fold->take());
  return out;
}

CpaEngine run_cpa_inmemory(const sca::TraceSet& set, const StreamingCpaSpec& spec) {
  CpaFold fold(spec);
  const std::size_t limit = spec.max_traces == 0
                                ? set.traces.size()
                                : std::min(spec.max_traces, set.traces.size());
  for (std::size_t t = 0; t < limit; ++t) {
    const auto& ct = set.traces[t];
    fold.add_window(ct.known_re, ct.known_im, ct.trace.samples);
  }
  return fold.take();
}

bool attack_component_from_archive(tracestore::ArchiveReader& reader, std::size_t slot,
                                   bool imag_part, const ComponentAttackConfig& config,
                                   ComponentResult& out) {
  sca::TraceSet set;
  count_archive_scan();
  if (!sca::load_trace_set(reader, slot, set) || set.traces.empty()) return false;
  const ComponentDataset ds = build_component_dataset(set, imag_part);
  out = attack_component(ds, config);
  return true;
}

}  // namespace fd::attack
