#include "attack/cpa_kernel.h"

#include <bit>
#include <cassert>
#include <cmath>

namespace fd::attack {

// --- fixed-order reduction primitives -------------------------------------

double lanes4_sum(const double* x, std::size_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += x[i];
    l1 += x[i + 1];
    l2 += x[i + 2];
    l3 += x[i + 3];
  }
  if (i < n) l0 += x[i];
  if (i + 1 < n) l1 += x[i + 1];
  if (i + 2 < n) l2 += x[i + 2];
  return (l0 + l1) + (l2 + l3);
}

double lanes4_sumsq(const double* x, std::size_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += x[i] * x[i];
    l1 += x[i + 1] * x[i + 1];
    l2 += x[i + 2] * x[i + 2];
    l3 += x[i + 3] * x[i + 3];
  }
  if (i < n) l0 += x[i] * x[i];
  if (i + 1 < n) l1 += x[i + 1] * x[i + 1];
  if (i + 2 < n) l2 += x[i + 2] * x[i + 2];
  return (l0 + l1) + (l2 + l3);
}

double lanes4_dot(const double* a, const double* b, std::size_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += a[i] * b[i];
    l1 += a[i + 1] * b[i + 1];
    l2 += a[i + 2] * b[i + 2];
    l3 += a[i + 3] * b[i + 3];
  }
  if (i < n) l0 += a[i] * b[i];
  if (i + 1 < n) l1 += a[i + 1] * b[i + 1];
  if (i + 2 < n) l2 += a[i + 2] * b[i + 2];
  return (l0 + l1) + (l2 + l3);
}

HFold lanes4_fold_h(const double* h, const double* t, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  double q0 = 0.0, q1 = 0.0, q2 = 0.0, q3 = 0.0;
  double d0 = 0.0, d1 = 0.0, d2 = 0.0, d3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += h[i];
    s1 += h[i + 1];
    s2 += h[i + 2];
    s3 += h[i + 3];
    q0 += h[i] * h[i];
    q1 += h[i + 1] * h[i + 1];
    q2 += h[i + 2] * h[i + 2];
    q3 += h[i + 3] * h[i + 3];
    d0 += h[i] * t[i];
    d1 += h[i + 1] * t[i + 1];
    d2 += h[i + 2] * t[i + 2];
    d3 += h[i + 3] * t[i + 3];
  }
  if (i < n) {
    s0 += h[i];
    q0 += h[i] * h[i];
    d0 += h[i] * t[i];
  }
  if (i + 1 < n) {
    s1 += h[i + 1];
    q1 += h[i + 1] * h[i + 1];
    d1 += h[i + 1] * t[i + 1];
  }
  if (i + 2 < n) {
    s2 += h[i + 2];
    q2 += h[i + 2] * h[i + 2];
    d2 += h[i + 2] * t[i + 2];
  }
  HFold out;
  out.sh = (s0 + s1) + (s2 + s3);
  out.sh2 = (q0 + q1) + (q2 + q3);
  out.sht = (d0 + d1) + (d2 + d3);
  return out;
}

// --- CpaSums ---------------------------------------------------------------

void CpaSums::reset(std::size_t g, std::size_t s) {
  num_guesses = g;
  num_samples = s;
  traces = 0;
  have_ref = false;
  ref_h.assign(g, 0.0);
  ref_t.assign(s, 0.0);
  sum_h.assign(g, 0.0);
  sum_h2.assign(g, 0.0);
  sum_t.assign(s, 0.0);
  sum_t2.assign(s, 0.0);
  sum_ht.assign(g * s, 0.0);
}

double CpaSums::correlation(std::size_t guess, std::size_t sample) const {
  assert(guess < num_guesses && sample < num_samples);
  if (traces < 2) return 0.0;
  const double dn = static_cast<double>(traces);
  const double sh = sum_h[guess];
  const double st = sum_t[sample];
  // Shifted-data moments: with every value entering as (x - x_first)
  // these no longer cancel catastrophically under a large DC offset.
  const double cov = dn * sum_ht[guess * num_samples + sample] - sh * st;
  const double var_h = dn * sum_h2[guess] - sh * sh;
  const double var_t = dn * sum_t2[sample] - st * st;
  if (var_h <= 0.0 || var_t <= 0.0) return 0.0;
  return cov / std::sqrt(var_h * var_t);
}

// --- shard-fold merge and wire serde ---------------------------------------

void merge_cpa_sums(CpaSums& dst, const CpaSums& src) {
  if (src.traces == 0 || !src.have_ref) return;
  if (dst.traces == 0 || !dst.have_ref) {
    dst = src;
    return;
  }
  assert(dst.num_guesses == src.num_guesses && dst.num_samples == src.num_samples);
  const std::size_t gs = dst.num_guesses;
  const std::size_t ss = dst.num_samples;
  const double n = static_cast<double>(src.traces);
  // Rebase src's shifted sums onto dst's references: each src value x
  // entered its sums as (x - r_src); relative to dst's reference it is
  // (x - r_dst) = (x - r_src) + d with d = r_src - r_dst. Per-cell
  // expression order below is fixed -- it is the determinism contract.
  for (std::size_t g = 0; g < gs; ++g) {
    const double dh = src.ref_h[g] - dst.ref_h[g];
    dst.sum_h[g] += src.sum_h[g] + n * dh;
    dst.sum_h2[g] += src.sum_h2[g] + 2.0 * dh * src.sum_h[g] + n * dh * dh;
  }
  for (std::size_t s = 0; s < ss; ++s) {
    const double dt = src.ref_t[s] - dst.ref_t[s];
    dst.sum_t[s] += src.sum_t[s] + n * dt;
    dst.sum_t2[s] += src.sum_t2[s] + 2.0 * dt * src.sum_t[s] + n * dt * dt;
  }
  for (std::size_t g = 0; g < gs; ++g) {
    const double dh = src.ref_h[g] - dst.ref_h[g];
    const double* sht = src.sum_ht.data() + g * ss;
    double* dht = dst.sum_ht.data() + g * ss;
    for (std::size_t s = 0; s < ss; ++s) {
      const double dt = src.ref_t[s] - dst.ref_t[s];
      dht[s] += sht[s] + dh * src.sum_t[s] + dt * src.sum_h[g] + n * dh * dt;
    }
  }
  dst.traces += src.traces;
}

namespace {

void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& b, double v) {
  put_u64(b, std::bit_cast<std::uint64_t>(v));
}

// Bounds-checked little-endian reader over the fold wire format.
struct FoldCursor {
  std::span<const std::uint8_t> bytes;
  std::size_t off;
  bool fail = false;

  std::uint64_t u64() {
    if (fail || bytes.size() - off < 8) {
      fail = true;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes[off + i]) << (8 * i);
    off += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  void f64_vec(std::vector<double>& out, std::size_t n) {
    out.clear();
    if (fail || (bytes.size() - off) / 8 < n) {
      fail = true;
      return;
    }
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(f64());
  }
};

}  // namespace

void serialize_cpa_sums(std::vector<std::uint8_t>& out, const CpaSums& sums) {
  put_u64(out, sums.num_guesses);
  put_u64(out, sums.num_samples);
  put_u64(out, sums.traces);
  put_u64(out, sums.have_ref ? 1 : 0);
  for (const auto* v :
       {&sums.ref_h, &sums.sum_h, &sums.sum_h2}) {
    for (const double x : *v) put_f64(out, x);
  }
  for (const auto* v : {&sums.ref_t, &sums.sum_t, &sums.sum_t2}) {
    for (const double x : *v) put_f64(out, x);
  }
  for (const double x : sums.sum_ht) put_f64(out, x);
}

bool deserialize_cpa_sums(std::span<const std::uint8_t> bytes, std::size_t& offset,
                          CpaSums& out) {
  if (offset > bytes.size()) return false;
  FoldCursor c{bytes, offset};
  const std::uint64_t g = c.u64();
  const std::uint64_t s = c.u64();
  const std::uint64_t traces = c.u64();
  const std::uint64_t have_ref = c.u64();
  // Shape sanity bound: a fold's G x S table never exceeds the wire
  // payload it arrived in, so this rejects garbage before allocating.
  if (c.fail || have_ref > 1 || g > (1U << 20) || s > (1U << 20) ||
      (bytes.size() - c.off) / 8 < g * s) {
    return false;
  }
  out.num_guesses = static_cast<std::size_t>(g);
  out.num_samples = static_cast<std::size_t>(s);
  out.traces = static_cast<std::size_t>(traces);
  out.have_ref = have_ref != 0;
  c.f64_vec(out.ref_h, g);
  c.f64_vec(out.sum_h, g);
  c.f64_vec(out.sum_h2, g);
  c.f64_vec(out.ref_t, s);
  c.f64_vec(out.sum_t, s);
  c.f64_vec(out.sum_t2, s);
  c.f64_vec(out.sum_ht, g * s);
  if (c.fail) return false;
  offset = c.off;
  return true;
}

// --- CpaBatchKernel --------------------------------------------------------

CpaBatchKernel::CpaBatchKernel(std::size_t num_guesses, std::size_t num_samples,
                               CpaKernelConfig config)
    : g_(num_guesses), s_(num_samples), cfg_(config) {
  if (cfg_.batch_traces == 0) cfg_.batch_traces = 1;
  if (cfg_.guess_block == 0) cfg_.guess_block = 1;
  if (cfg_.sample_block == 0) cfg_.sample_block = 1;
  hbuf_.assign(g_ * cfg_.batch_traces, 0.0);
  tbuf_.assign(s_ * cfg_.batch_traces, 0.0);
}

void CpaBatchKernel::add_trace(CpaSums& sums, std::span<const double> hypotheses,
                               std::span<const float> samples) {
  assert(hypotheses.size() == g_ && samples.size() == s_);
  if (sums.num_guesses != g_ || sums.num_samples != s_) sums.reset(g_, s_);
  if (!sums.have_ref) {
    for (std::size_t g = 0; g < g_; ++g) sums.ref_h[g] = hypotheses[g];
    for (std::size_t s = 0; s < s_; ++s) sums.ref_t[s] = static_cast<double>(samples[s]);
    sums.have_ref = true;
  }
  const std::size_t b = cfg_.batch_traces;
  const std::size_t p = pending_;
  for (std::size_t g = 0; g < g_; ++g) hbuf_[g * b + p] = hypotheses[g] - sums.ref_h[g];
  for (std::size_t s = 0; s < s_; ++s)
    tbuf_[s * b + p] = static_cast<double>(samples[s]) - sums.ref_t[s];
  ++pending_;
  ++sums.traces;
  if (pending_ == b) fold_batch(sums);
}

void CpaBatchKernel::flush(CpaSums& sums) {
  if (pending_ > 0) fold_batch(sums);
}

void CpaBatchKernel::fold_batch(CpaSums& sums) {
  const std::size_t b = cfg_.batch_traces;
  const std::size_t n = pending_;
  // Sample-side moments first (each cell updated once per batch).
  for (std::size_t s = 0; s < s_; ++s) {
    const double* row = tbuf_.data() + s * b;
    sums.sum_t[s] += lanes4_sum(row, n);
    sums.sum_t2[s] += lanes4_sumsq(row, n);
  }
  // Tiled H^T.S update: guess tiles x sample tiles, each sum_ht cell a
  // length-n dot product over contiguous rows. Tiling only reorders
  // *which cell* is visited next, never the reduction inside a cell, so
  // the tile sizes cannot change any value.
  for (std::size_t g0 = 0; g0 < g_; g0 += cfg_.guess_block) {
    const std::size_t g1 = std::min(g_, g0 + cfg_.guess_block);
    for (std::size_t s0 = 0; s0 < s_; s0 += cfg_.sample_block) {
      const std::size_t s1 = std::min(s_, s0 + cfg_.sample_block);
      for (std::size_t g = g0; g < g1; ++g) {
        const double* hrow = hbuf_.data() + g * b;
        if (s0 == 0) {
          // Guess-side moments ride the first sample tile so the hrow
          // load is shared with the dot products below.
          sums.sum_h[g] += lanes4_sum(hrow, n);
          sums.sum_h2[g] += lanes4_sumsq(hrow, n);
        }
        double* ht = sums.sum_ht.data() + g * s_;
        for (std::size_t s = s0; s < s1; ++s) {
          ht[s] += lanes4_dot(hrow, tbuf_.data() + s * b, n);
        }
      }
    }
  }
  pending_ = 0;
}

}  // namespace fd::attack
