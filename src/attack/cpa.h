#pragma once
// Correlation power/EM analysis (CPA) engine.
//
// Implements the paper's distinguisher (eq. (1)): Pearson correlation
// between per-guess Hamming-weight predictions and trace samples,
// accumulated incrementally so that the correlation-vs-trace-count
// evolution (Fig. 4 e-h) falls out of snapshots of the same pass.
//
// The accumulation itself lives in cpa_kernel.h: traces are buffered in
// batches and folded blocked (see that header for the canonical-order
// and shifted-data contracts). CpaEngine and StreamingScan are both
// thin owners of that kernel, so the streamed and in-memory attack
// paths share one arithmetic by construction.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "attack/cpa_kernel.h"

namespace fd::attack {

// Two-sided normal quantile for the given confidence (e.g. 0.9999).
// The paper draws its confidence interval at +-z/sqrt(D).
[[nodiscard]] double confidence_z(double confidence);
[[nodiscard]] inline double confidence_interval(double confidence, std::size_t num_traces) {
  return confidence_z(confidence) / std::sqrt(static_cast<double>(num_traces));
}

// How peak()/ranking() score a guess across sample points.
enum class CpaRankMode {
  // Paper-faithful: rank by max |r|. An inverted leakage model (HW
  // anti-correlated with the measured amplitude) leaks exactly as much
  // as the upright one; signed ranking is blind to it.
  kAbsPeak,
  // Legacy behavior: rank by the signed maximum correlation.
  kSignedMax,
};

// Incremental Pearson-correlation accumulator over G guesses x S samples.
class CpaEngine {
 public:
  explicit CpaEngine(std::size_t num_guesses, std::size_t num_samples,
                     CpaKernelConfig kernel = {},
                     CpaRankMode rank_mode = CpaRankMode::kAbsPeak);

  // hypotheses: G predicted leakage values; samples: S trace samples.
  void add_trace(std::span<const double> hypotheses, std::span<const float> samples);

  [[nodiscard]] std::size_t num_traces() const { return sums_.traces; }
  [[nodiscard]] std::size_t num_guesses() const { return sums_.num_guesses; }
  [[nodiscard]] std::size_t num_samples() const { return sums_.num_samples; }
  [[nodiscard]] CpaRankMode rank_mode() const { return mode_; }
  [[nodiscard]] const CpaKernelConfig& kernel_config() const { return kernel_.config(); }

  // Pearson r for one (guess, sample); 0 when either side is constant.
  // Reads flush any batched tail first, so they are always exact.
  [[nodiscard]] double correlation(std::size_t guess, std::size_t sample) const;
  // The "leakiest point" score: max over samples of |r| (kAbsPeak,
  // returned as the magnitude) or of signed r (kSignedMax).
  [[nodiscard]] double peak(std::size_t guess) const;
  // Guess indices sorted by descending peak().
  [[nodiscard]] std::vector<std::size_t> ranking() const;

 private:
  CpaRankMode mode_;
  // Reads must fold the buffered tail; the buffer is pure caching
  // state, so it is mutable behind the const accessors.
  mutable CpaBatchKernel kernel_;
  mutable CpaSums sums_;
};

// Memory-light streaming scan for huge guess spaces (the 2^25 / 2^27
// exhaustive enumerations): traces are stored once, then each guess is
// scored in a single pass without per-guess state. Scores are the mean,
// over the provided sample columns, of the Pearson correlation.
//
// Columns are stored shifted by their first trace (doubles), and the
// per-guess fold runs block-batched in the kernel's 4-lane order, so
// scores are a pure function of (columns, kernel.batch_traces) -- same
// contract as CpaEngine.
class StreamingScan {
 public:
  // samples: column-major: samples[col][trace].
  explicit StreamingScan(std::vector<std::vector<float>> sample_columns,
                         CpaKernelConfig kernel = {});

  struct Scored {
    std::uint32_t guess;
    double score;
  };
  // model(guess, trace, col) -> predicted leakage. Returns the keep
  // highest-scoring guesses in descending order.
  template <typename ModelFn>
  [[nodiscard]] std::vector<Scored> top_k(std::uint64_t guess_begin, std::uint64_t guess_end,
                                          ModelFn&& model, std::size_t keep) const;
  template <typename ModelFn>
  [[nodiscard]] std::vector<Scored> top_k_list(std::span<const std::uint32_t> guesses,
                                               ModelFn&& model, std::size_t keep) const;

  // Correlation of a single guess (diagnostics).
  template <typename ModelFn>
  [[nodiscard]] double score_one(std::uint32_t guess, ModelFn&& model) const;

  [[nodiscard]] std::size_t num_traces() const { return d_; }

 private:
  template <typename ModelFn, typename GuessAt>
  [[nodiscard]] std::vector<Scored> top_k_impl(std::uint64_t count, GuessAt&& guess_at,
                                               ModelFn&& model, std::size_t keep) const;

  CpaKernelConfig kernel_;
  std::vector<std::vector<double>> cols_;   // shifted by the first trace
  std::vector<double> col_sum_, col_var_;   // shifted sums / dn*var forms
  std::size_t d_;
};

// ---- template implementations ------------------------------------------

template <typename ModelFn, typename GuessAt>
std::vector<StreamingScan::Scored> StreamingScan::top_k_impl(std::uint64_t count,
                                                             GuessAt&& guess_at,
                                                             ModelFn&& model,
                                                             std::size_t keep) const {
  std::vector<Scored> best;
  best.reserve(keep + 1);
  const double dn = static_cast<double>(d_);
  const std::size_t bsz = kernel_.batch_traces == 0 ? 1 : kernel_.batch_traces;
  std::vector<double> hblk(bsz);
  for (std::uint64_t gi = 0; gi < count; ++gi) {
    const std::uint32_t guess = guess_at(gi);
    double score_sum = 0.0;
    for (std::size_t c = 0; c < cols_.size(); ++c) {
      double sh = 0.0;
      double sh2 = 0.0;
      double sht = 0.0;
      if (d_ > 0) {
        // Shift hypotheses by the first trace's prediction, mirroring
        // the column shift: the one-pass moment forms below then stay
        // cancellation-safe under arbitrary DC offsets.
        const double h0 = model(guess, 0, c);
        const double* col = cols_[c].data();
        for (std::size_t t0 = 0; t0 < d_; t0 += bsz) {
          const std::size_t n = std::min(bsz, d_ - t0);
          for (std::size_t b = 0; b < n; ++b) hblk[b] = model(guess, t0 + b, c) - h0;
          const HFold f = lanes4_fold_h(hblk.data(), col + t0, n);
          sh += f.sh;
          sh2 += f.sh2;
          sht += f.sht;
        }
      }
      const double var_h = dn * sh2 - sh * sh;
      const double cov = dn * sht - sh * col_sum_[c];
      const double denom = var_h * col_var_[c];
      score_sum += denom > 0.0 ? cov / std::sqrt(denom) : 0.0;
    }
    const double score = score_sum / static_cast<double>(cols_.size());
    if (best.size() < keep || score > best.back().score) {
      // Insert in sorted (descending) order.
      auto it = best.begin();
      while (it != best.end() && it->score >= score) ++it;
      best.insert(it, {guess, score});
      if (best.size() > keep) best.pop_back();
    }
  }
  return best;
}

template <typename ModelFn>
std::vector<StreamingScan::Scored> StreamingScan::top_k(std::uint64_t guess_begin,
                                                        std::uint64_t guess_end,
                                                        ModelFn&& model,
                                                        std::size_t keep) const {
  return top_k_impl(
      guess_end - guess_begin,
      [guess_begin](std::uint64_t i) { return static_cast<std::uint32_t>(guess_begin + i); },
      std::forward<ModelFn>(model), keep);
}

template <typename ModelFn>
std::vector<StreamingScan::Scored> StreamingScan::top_k_list(
    std::span<const std::uint32_t> guesses, ModelFn&& model, std::size_t keep) const {
  return top_k_impl(
      guesses.size(), [guesses](std::uint64_t i) { return guesses[i]; },
      std::forward<ModelFn>(model), keep);
}

template <typename ModelFn>
double StreamingScan::score_one(std::uint32_t guess, ModelFn&& model) const {
  const std::uint32_t list[1] = {guess};
  const auto r = top_k_list(list, std::forward<ModelFn>(model), 1);
  return r.empty() ? 0.0 : r[0].score;
}

}  // namespace fd::attack
