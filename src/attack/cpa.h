#pragma once
// Correlation power/EM analysis (CPA) engine.
//
// Implements the paper's distinguisher (eq. (1)): Pearson correlation
// between per-guess Hamming-weight predictions and trace samples,
// accumulated incrementally so that the correlation-vs-trace-count
// evolution (Fig. 4 e-h) falls out of snapshots of the same pass.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace fd::attack {

// Two-sided normal quantile for the given confidence (e.g. 0.9999).
// The paper draws its confidence interval at +-z/sqrt(D).
[[nodiscard]] double confidence_z(double confidence);
[[nodiscard]] inline double confidence_interval(double confidence, std::size_t num_traces) {
  return confidence_z(confidence) / std::sqrt(static_cast<double>(num_traces));
}

// Incremental Pearson-correlation accumulator over G guesses x S samples.
class CpaEngine {
 public:
  CpaEngine(std::size_t num_guesses, std::size_t num_samples);

  // hypotheses: G predicted leakage values; samples: S trace samples.
  void add_trace(std::span<const double> hypotheses, std::span<const float> samples);

  [[nodiscard]] std::size_t num_traces() const { return d_; }
  [[nodiscard]] std::size_t num_guesses() const { return g_; }
  [[nodiscard]] std::size_t num_samples() const { return s_; }

  // Pearson r for one (guess, sample); 0 when either side is constant.
  [[nodiscard]] double correlation(std::size_t guess, std::size_t sample) const;
  // max over samples of r(guess, sample) -- the "leakiest point" score.
  [[nodiscard]] double peak(std::size_t guess) const;
  // Guess indices sorted by descending peak().
  [[nodiscard]] std::vector<std::size_t> ranking() const;

 private:
  std::size_t g_, s_;
  std::size_t d_ = 0;
  std::vector<double> sum_h_, sum_h2_;   // per guess
  std::vector<double> sum_t_, sum_t2_;   // per sample
  std::vector<double> sum_ht_;           // per guess x sample
};

// Memory-light streaming scan for huge guess spaces (the 2^25 / 2^27
// exhaustive enumerations): traces are stored once, then each guess is
// scored in a single pass without per-guess state. Scores are the mean,
// over the provided sample columns, of the Pearson correlation.
class StreamingScan {
 public:
  // samples: column-major: samples[col][trace].
  explicit StreamingScan(std::vector<std::vector<float>> sample_columns);

  struct Scored {
    std::uint32_t guess;
    double score;
  };
  // model(guess, trace, col) -> predicted leakage. Returns the keep
  // highest-scoring guesses in descending order.
  template <typename ModelFn>
  [[nodiscard]] std::vector<Scored> top_k(std::uint64_t guess_begin, std::uint64_t guess_end,
                                          ModelFn&& model, std::size_t keep) const;
  template <typename ModelFn>
  [[nodiscard]] std::vector<Scored> top_k_list(std::span<const std::uint32_t> guesses,
                                               ModelFn&& model, std::size_t keep) const;

  // Correlation of a single guess (diagnostics).
  template <typename ModelFn>
  [[nodiscard]] double score_one(std::uint32_t guess, ModelFn&& model) const;

  [[nodiscard]] std::size_t num_traces() const { return d_; }

 private:
  template <typename ModelFn, typename GuessAt>
  [[nodiscard]] std::vector<Scored> top_k_impl(std::uint64_t count, GuessAt&& guess_at,
                                               ModelFn&& model, std::size_t keep) const;

  std::vector<std::vector<float>> cols_;
  std::vector<double> col_mean_, col_var_;  // D*var actually: centered sums
  std::size_t d_;
};

// ---- template implementations ------------------------------------------

template <typename ModelFn, typename GuessAt>
std::vector<StreamingScan::Scored> StreamingScan::top_k_impl(std::uint64_t count,
                                                             GuessAt&& guess_at,
                                                             ModelFn&& model,
                                                             std::size_t keep) const {
  std::vector<Scored> best;
  best.reserve(keep + 1);
  const double dn = static_cast<double>(d_);
  for (std::uint64_t gi = 0; gi < count; ++gi) {
    const std::uint32_t guess = guess_at(gi);
    double score_sum = 0.0;
    for (std::size_t c = 0; c < cols_.size(); ++c) {
      double sh = 0.0;
      double sh2 = 0.0;
      double sht = 0.0;
      const auto& col = cols_[c];
      for (std::size_t t = 0; t < d_; ++t) {
        const double h = model(guess, t, c);
        sh += h;
        sh2 += h * h;
        sht += h * col[t];
      }
      const double var_h = dn * sh2 - sh * sh;
      const double cov = dn * sht - sh * (col_mean_[c] * dn);
      const double denom = var_h * col_var_[c];
      score_sum += denom > 0.0 ? cov / std::sqrt(denom) : 0.0;
    }
    const double score = score_sum / static_cast<double>(cols_.size());
    if (best.size() < keep || score > best.back().score) {
      // Insert in sorted (descending) order.
      auto it = best.begin();
      while (it != best.end() && it->score >= score) ++it;
      best.insert(it, {guess, score});
      if (best.size() > keep) best.pop_back();
    }
  }
  return best;
}

template <typename ModelFn>
std::vector<StreamingScan::Scored> StreamingScan::top_k(std::uint64_t guess_begin,
                                                        std::uint64_t guess_end,
                                                        ModelFn&& model,
                                                        std::size_t keep) const {
  return top_k_impl(
      guess_end - guess_begin,
      [guess_begin](std::uint64_t i) { return static_cast<std::uint32_t>(guess_begin + i); },
      std::forward<ModelFn>(model), keep);
}

template <typename ModelFn>
std::vector<StreamingScan::Scored> StreamingScan::top_k_list(
    std::span<const std::uint32_t> guesses, ModelFn&& model, std::size_t keep) const {
  return top_k_impl(
      guesses.size(), [guesses](std::uint64_t i) { return guesses[i]; },
      std::forward<ModelFn>(model), keep);
}

template <typename ModelFn>
double StreamingScan::score_one(std::uint32_t guess, ModelFn&& model) const {
  const std::uint32_t list[1] = {guess};
  const auto r = top_k_list(list, std::forward<ModelFn>(model), 1);
  return r.empty() ? 0.0 : r[0].score;
}

}  // namespace fd::attack
