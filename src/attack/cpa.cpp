#include "attack/cpa.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fd::attack {

double confidence_z(double confidence) {
  // Inverse normal CDF at (1 + confidence) / 2 via bisection on erf --
  // evaluated rarely, so simplicity beats speed.
  assert(confidence > 0.0 && confidence < 1.0);
  const double target = (1.0 + confidence) / 2.0;
  double lo = 0.0;
  double hi = 10.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double cdf = 0.5 * (1.0 + std::erf(mid / std::sqrt(2.0)));
    if (cdf < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

CpaEngine::CpaEngine(std::size_t num_guesses, std::size_t num_samples,
                     CpaKernelConfig kernel, CpaRankMode rank_mode)
    : mode_(rank_mode), kernel_(num_guesses, num_samples, kernel) {
  sums_.reset(num_guesses, num_samples);
}

void CpaEngine::add_trace(std::span<const double> hypotheses, std::span<const float> samples) {
  kernel_.add_trace(sums_, hypotheses, samples);
}

double CpaEngine::correlation(std::size_t guess, std::size_t sample) const {
  kernel_.flush(sums_);
  return sums_.correlation(guess, sample);
}

double CpaEngine::peak(std::size_t guess) const {
  kernel_.flush(sums_);
  double best = -2.0;
  for (std::size_t s = 0; s < sums_.num_samples; ++s) {
    const double r = sums_.correlation(guess, s);
    best = std::max(best, mode_ == CpaRankMode::kAbsPeak ? std::fabs(r) : r);
  }
  return best;
}

std::vector<std::size_t> CpaEngine::ranking() const {
  const std::size_t g_ = sums_.num_guesses;
  std::vector<double> peaks(g_);
  for (std::size_t g = 0; g < g_; ++g) peaks[g] = peak(g);
  std::vector<std::size_t> order(g_);
  for (std::size_t g = 0; g < g_; ++g) order[g] = g;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return peaks[a] > peaks[b]; });
  return order;
}

StreamingScan::StreamingScan(std::vector<std::vector<float>> sample_columns,
                             CpaKernelConfig kernel)
    : kernel_(kernel) {
  assert(!sample_columns.empty());
  d_ = sample_columns[0].size();
  cols_.resize(sample_columns.size());
  col_sum_.resize(sample_columns.size());
  col_var_.resize(sample_columns.size());
  const double dn = static_cast<double>(d_);
  for (std::size_t c = 0; c < sample_columns.size(); ++c) {
    const auto& src = sample_columns[c];
    assert(src.size() == d_);
    // Store the column shifted by its first trace: Pearson r is
    // shift-invariant, and the dn*st2 - st*st form below no longer
    // cancels catastrophically when the raw samples carry a large DC
    // offset (the old float-column code silently zeroed r there).
    auto& col = cols_[c];
    col.resize(d_);
    const double t0 = d_ > 0 ? static_cast<double>(src[0]) : 0.0;
    for (std::size_t t = 0; t < d_; ++t) col[t] = static_cast<double>(src[t]) - t0;
    const double st = lanes4_sum(col.data(), d_);
    const double st2 = lanes4_sumsq(col.data(), d_);
    col_sum_[c] = st;
    col_var_[c] = dn * st2 - st * st;
  }
}

}  // namespace fd::attack
