#include "attack/cpa.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fd::attack {

double confidence_z(double confidence) {
  // Inverse normal CDF at (1 + confidence) / 2 via bisection on erf --
  // evaluated rarely, so simplicity beats speed.
  assert(confidence > 0.0 && confidence < 1.0);
  const double target = (1.0 + confidence) / 2.0;
  double lo = 0.0;
  double hi = 10.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double cdf = 0.5 * (1.0 + std::erf(mid / std::sqrt(2.0)));
    if (cdf < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

CpaEngine::CpaEngine(std::size_t num_guesses, std::size_t num_samples)
    : g_(num_guesses),
      s_(num_samples),
      sum_h_(num_guesses, 0.0),
      sum_h2_(num_guesses, 0.0),
      sum_t_(num_samples, 0.0),
      sum_t2_(num_samples, 0.0),
      sum_ht_(num_guesses * num_samples, 0.0) {}

void CpaEngine::add_trace(std::span<const double> hypotheses, std::span<const float> samples) {
  assert(hypotheses.size() == g_ && samples.size() == s_);
  for (std::size_t s = 0; s < s_; ++s) {
    sum_t_[s] += samples[s];
    sum_t2_[s] += static_cast<double>(samples[s]) * samples[s];
  }
  for (std::size_t g = 0; g < g_; ++g) {
    const double h = hypotheses[g];
    sum_h_[g] += h;
    sum_h2_[g] += h * h;
    double* row = &sum_ht_[g * s_];
    for (std::size_t s = 0; s < s_; ++s) row[s] += h * samples[s];
  }
  ++d_;
}

double CpaEngine::correlation(std::size_t guess, std::size_t sample) const {
  const double dn = static_cast<double>(d_);
  const double var_h = dn * sum_h2_[guess] - sum_h_[guess] * sum_h_[guess];
  const double var_t = dn * sum_t2_[sample] - sum_t_[sample] * sum_t_[sample];
  const double cov = dn * sum_ht_[guess * s_ + sample] - sum_h_[guess] * sum_t_[sample];
  const double denom = var_h * var_t;
  return denom > 0.0 ? cov / std::sqrt(denom) : 0.0;
}

double CpaEngine::peak(std::size_t guess) const {
  double best = -2.0;
  for (std::size_t s = 0; s < s_; ++s) best = std::max(best, correlation(guess, s));
  return best;
}

std::vector<std::size_t> CpaEngine::ranking() const {
  std::vector<double> peaks(g_);
  for (std::size_t g = 0; g < g_; ++g) peaks[g] = peak(g);
  std::vector<std::size_t> order(g_);
  for (std::size_t g = 0; g < g_; ++g) order[g] = g;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return peaks[a] > peaks[b]; });
  return order;
}

StreamingScan::StreamingScan(std::vector<std::vector<float>> sample_columns)
    : cols_(std::move(sample_columns)) {
  assert(!cols_.empty());
  d_ = cols_[0].size();
  col_mean_.resize(cols_.size());
  col_var_.resize(cols_.size());
  const double dn = static_cast<double>(d_);
  for (std::size_t c = 0; c < cols_.size(); ++c) {
    assert(cols_[c].size() == d_);
    double st = 0.0;
    double st2 = 0.0;
    for (const float v : cols_[c]) {
      st += v;
      st2 += static_cast<double>(v) * v;
    }
    col_mean_[c] = st / dn;
    col_var_[c] = dn * st2 - st * st;
  }
}

}  // namespace fd::attack
