#pragma once
// The paper's extend-and-prune attack on one FFT(f) component.
//
// Pipeline per secret 64-bit component (Section III):
//   1. sign:      2-way CPA on the XOR event;
//   2. exponent:  2^11-way CPA on the exponent-sum addition;
//   3. mantissa low 25 bits:
//        extend -- CPA on the x0*y0 / x0*y1 partial products. Bit-shifted
//                  guesses produce identical Hamming weights, so this
//                  phase keeps the top-K (the false positives survive);
//        prune  -- CPA on the z1a intermediate addition, which is not
//                  shift-invariant, re-ranks the K candidates and kills
//                  the false positives;
//   4. mantissa high 27 free bits: same extend (x1*y0 / x1*y1) and prune
//      (zu accumulation, using the recovered x0).
//
// Each component is multiplied by two known values per trace (the real
// and imaginary part of the FFT(c) slot), giving two independent "views"
// whose correlations are averaged.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "attack/cpa.h"
#include "attack/hypothesis.h"
#include "sca/campaign.h"
#include "sca/device.h"

namespace fd::attack {

// Per-component trace view: the 17 samples of one fpr_mul block plus the
// known operand, for each of the two multiplications involving this
// component.
struct ComponentDataset {
  struct View {
    std::vector<KnownOperand> known;           // D entries
    std::vector<std::vector<float>> samples;   // 17 columns x D
  };
  View views[2];
  std::size_t num_traces = 0;

  // Column c of view v as a StreamingScan input.
  [[nodiscard]] std::vector<std::vector<float>> columns(std::size_t offset) const {
    return {views[0].samples[offset], views[1].samples[offset]};
  }
};

// Extracts the dataset for the real (imag_part=false) or imaginary part
// of the slot captured in the trace set. max_traces == 0 means all.
[[nodiscard]] ComponentDataset build_component_dataset(const sca::TraceSet& set, bool imag_part,
                                                       std::size_t max_traces = 0);

// Candidate generators for the mantissa phases.
struct MantissaCandidates {
  // The adversarial evaluation set: the true value, every in-range shift
  // of it (the paper's false-positive family), shifts-of-shifts, and
  // `random_count` random fillers. `high` selects the [2^27, 2^28) space.
  [[nodiscard]] static std::vector<std::uint32_t> adversarial(std::uint32_t truth, bool high,
                                                              std::size_t random_count,
                                                              std::uint64_t seed);
};

struct ComponentAttackConfig {
  std::size_t extend_top_k = 16;
  // CPA accumulation kernel driving every phase's StreamingScan. The
  // batch size is part of the scores' numerical identity (ULP-level
  // reassociation, see cpa_kernel.h), so pipelines hash it into their
  // experiment id.
  CpaKernelConfig kernel;
  // Candidate lists; empty means exhaustive enumeration of the full
  // space (2^25 / 2^27 guesses -- minutes of CPU per component).
  std::vector<std::uint32_t> low_candidates;
  std::vector<std::uint32_t> high_candidates;
  // Exponent guess window and tie-breaking prior. The known FFT(c)
  // exponents cluster in a narrow band, so HW predictions for guesses
  // offset by +-2^k (k >= 4, no carry crossing in the observed band) are
  // exact affine shifts of each other -- Pearson-identical aliases, a
  // structural false-positive family of the exponent addition that no
  // amount of traces resolves. attack_component therefore returns the
  // whole tie class (exp_phase.top) and picks the member closest to
  // exp_prior (the Rayleigh mode of |FFT(f)| magnitudes); key recovery
  // repairs any residually wrong picks with the integrality constraint
  // on invFFT(FFT(f)). See DESIGN.md "exponent aliasing".
  unsigned exp_min = 1005;
  unsigned exp_max = 1053;
  unsigned exp_prior = 1029;
  // Width of the tie class around the best exponent score; negative
  // selects the adaptive default max(1e-6, 4/sqrt(D)), which keeps every
  // statistical near-alias in the class at any noise level.
  double exp_tie_epsilon = -1.0;
  // Telemetry tag for "ep.phase" events emitted while attacking this
  // component (e.g. "slot3.im"). Purely observational: rankings and
  // recovered values are identical with or without a sink installed.
  std::string obs_label;
};

// Device gain/offset estimated by regressing samples of known-value
// events against their Hamming weights (unsupervised profiling on public
// data; see calibrate_device).
struct LinearCalibration {
  double alpha = 0.0;
  double beta = 0.0;
};
[[nodiscard]] LinearCalibration calibrate_device(const ComponentDataset& ds);

struct PhaseOutcome {
  std::uint32_t value = 0;
  double score = 0.0;                        // winning correlation
  std::vector<StreamingScan::Scored> top;    // ranked candidates (diagnostics)
};

struct ComponentResult {
  bool sign = false;
  unsigned exponent = 0;
  std::uint32_t x0 = 0;  // low 25 mantissa bits
  std::uint32_t x1 = 0;  // high 28 mantissa bits (top bit 1)
  std::uint64_t bits = 0;  // assembled IEEE-754 pattern

  PhaseOutcome sign_phase, exp_phase;
  PhaseOutcome low_extend, low_prune, high_extend, high_prune;
};

// Runs the full extend-and-prune pipeline on one component.
[[nodiscard]] ComponentResult attack_component(const ComponentDataset& ds,
                                               const ComponentAttackConfig& config);

// Straw-man baseline (Section III.B): multiplication-only attack with no
// prune phase; picks the top multiplication guess. Used by the ablation
// bench to count false positives.
[[nodiscard]] PhaseOutcome attack_low_mul_only(const ComponentDataset& ds,
                                               std::span<const std::uint32_t> candidates,
                                               std::size_t keep);

[[nodiscard]] std::uint64_t assemble_bits(bool sign, unsigned exponent, std::uint32_t x1,
                                          std::uint32_t x0);

}  // namespace fd::attack
