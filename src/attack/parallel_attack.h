#pragma once
// All-slot attack fan-out over the exec pool.
//
// The paper's cost model is embarrassingly parallel across the n/2
// complex slots (each component's extend-and-prune pipeline touches
// only its own slot's traces), so the parallel surface here is
// *across* components and CPA passes, never inside one: each task runs
// the unmodified serial attack on one component (or one streamed CPA
// pass on its own ArchiveReader) and writes the result into its own
// index of a pre-sized output vector. Reduction is "collect in index
// order", which makes every function below bit-identical to its serial
// loop at any worker count -- the determinism pin of
// tests/test_exec.cpp.

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "attack/extend_prune.h"
#include "attack/quality.h"
#include "attack/streaming_cpa.h"
#include "exec/thread_pool.h"
#include "sca/campaign.h"

namespace fd::attack {

// Component index convention (matches falcon::SecretKey::b01 layout):
// idx in [0, n) maps to slot = idx % (n/2), imaginary part iff
// idx >= n/2.
struct ComponentIndex {
  std::size_t idx = 0;
  std::size_t slot = 0;
  bool imag = false;
};
[[nodiscard]] inline ComponentIndex component_index(std::size_t idx, std::size_t hn) {
  return {idx, idx % hn, idx >= hn};
}

// Builds the attack config of one component; called from worker
// threads, so it must be a pure function of the index (the adversarial
// candidate generators already are: their RNG is seeded per index).
using ComponentConfigFn = std::function<ComponentAttackConfig(const ComponentIndex&)>;

// Attacks all n = 2 * hn components of `sets` (hn slots, re + im each)
// and returns results in component-index order. Null pool -> the same
// loop runs serially; results are identical either way.
[[nodiscard]] std::vector<ComponentResult> attack_all_components_parallel(
    const std::vector<sca::TraceSet>& sets, const ComponentConfigFn& config_for,
    exec::ThreadPool* pool);

// Serial twin, spelled out for callers that want the intent explicit.
[[nodiscard]] inline std::vector<ComponentResult> attack_all_components_serial(
    const std::vector<sca::TraceSet>& sets, const ComponentConfigFn& config_for) {
  return attack_all_components_parallel(sets, config_for, nullptr);
}

// Archive-backed variant. single_pass = true (default): ONE serial
// archive scan demultiplexes every slot's records up front
// (sca::load_all_trace_sets), then the component attacks fan out over
// the pool in memory -- 1 archive pass total instead of one per
// component, at the price of holding the whole campaign resident.
// single_pass = false keeps the legacy shape: every task opens its OWN
// ArchiveReader (readers are single-threaded objects) and loads just
// its slot's records, so peak memory is one slot per in-flight task.
// Results are bit-identical either way: both paths hand each component
// its slot's records in archive order.
[[nodiscard]] bool attack_all_components_from_archive(const std::string& archive_path,
                                                      const ComponentConfigFn& config_for,
                                                      exec::ThreadPool* pool,
                                                      std::vector<ComponentResult>& out,
                                                      std::string* error = nullptr,
                                                      bool single_pass = true);

// Quality-gated, subset-capable variant: attacks only the listed global
// component ids (resume and re-measurement both need "just these"),
// screening each task's slot records through the quality gate before
// dataset extraction. `results` and `accepted_traces` are indexed by
// global component id and resized to n when they aren't already --
// entries of ids NOT in `components` are left untouched, which is what
// lets checkpoint resume and retry rounds fill in around completed
// work. accepted_traces[idx] is the post-gate trace count feeding that
// component's CPA (the D of its confidence interval). The aggregate
// gate report lands in `quality` (summed in task-completion order; the
// sums are order-invariant). Bit-identity contract: results depend only
// on (archive bytes, gate config, per-component config), never the
// worker count.
//
// single_pass = true (default): the listed components' slots are
// demultiplexed in ONE serial archive scan (sca::load_trace_sets_for),
// then each component screens and attacks a private copy of its slot's
// set in parallel -- 1 archive pass per call instead of one per
// component, with memory O(requested slots). Each component still gets
// its own screened copy, so results, accepted_traces, and the summed
// QualityReport (a slot shared by Re and Im counts twice, as before)
// are identical to the per-component path. single_pass = false keeps
// the legacy one-reader-per-task shape.
[[nodiscard]] bool attack_components_gated(const std::string& archive_path,
                                           const QualityConfig& gate,
                                           const ComponentConfigFn& config_for,
                                           exec::ThreadPool* pool,
                                           std::span<const std::size_t> components,
                                           std::vector<ComponentResult>& results,
                                           std::vector<std::size_t>& accepted_traces,
                                           QualityReport* quality = nullptr,
                                           std::string* error = nullptr,
                                           bool single_pass = true);

// Fans independent streamed CPA passes across the pool, one private
// ArchiveReader per task. results[i] is the engine of specs[i]; each
// pass is the unsplit serial fold (bit-identical to run_cpa_streaming
// on the same spec) -- parallelism is across passes only.
[[nodiscard]] bool run_cpa_streaming_many(const std::string& archive_path,
                                          std::span<const StreamingCpaSpec> specs,
                                          exec::ThreadPool* pool,
                                          std::vector<CpaEngine>& results,
                                          std::string* error = nullptr);

}  // namespace fd::attack
