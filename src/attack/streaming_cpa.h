#pragma once
// Disk-streamed CPA: feed CpaEngine straight from a trace archive.
//
// The in-memory pipeline materializes a whole TraceSet before any
// statistics run; at production campaign sizes (millions of queries x
// n/2 slots) that does not fit. The streaming entry point here walks an
// ArchiveReader chunk by chunk and folds each record of the target slot
// into the same incremental CpaEngine accumulator, so attack memory is
// O(guesses x samples) + one archive chunk, independent of trace count.
//
// Determinism contract: run_cpa_streaming over an archive written by
// sca::run_campaign_to_archive produces bit-identical sums -- and hence
// an identical ranking() -- to run_cpa_inmemory over the matching
// run_full_campaign trace sets, because both visit the same traces in
// the same (query, view) order and the archive stores samples and known
// operands losslessly (both paths own the same CpaBatchKernel fold).
// Tests pin this equivalence exactly.
//
// run_cpa_streaming_multi extends the contract across components: ONE
// archive pass demultiplexes records by slot into per-spec folds, and
// each spec's engine is bit-identical to what a dedicated
// run_cpa_streaming pass would have produced, because the records of
// one slot arrive in the same order either way.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "attack/cpa.h"
#include "attack/extend_prune.h"
#include "attack/hypothesis.h"
#include "sca/campaign.h"
#include "tracestore/archive.h"

namespace fd::attack {

// One CPA pass specification: which slot/component, which sample
// offsets inside each fpr_mul block, and how a guess predicts leakage
// from the trace's known operand.
struct StreamingCpaSpec {
  std::size_t slot = 0;
  bool imag_part = false;  // attack Im FFT(-row)[slot] instead of Re
  // Offsets within one fpr_mul block (sca::window::kOff*); each offset
  // contributes one sample column per view (both views are folded in,
  // like the in-memory extend-and-prune scans).
  std::vector<std::size_t> sample_offsets;
  std::vector<std::uint32_t> guesses;
  // model(guess, known operand) -> predicted Hamming-weight leakage.
  std::function<double(std::uint32_t, const KnownOperand&)> model;
  std::size_t max_traces = 0;  // 0 = every trace in the archive
  // Accumulation kernel (batch size is part of the statistics'
  // identity, see cpa_kernel.h) and ranking mode of the engine.
  CpaKernelConfig kernel;
  CpaRankMode rank_mode = CpaRankMode::kAbsPeak;

  // --- telemetry (no effect on the accumulated statistics) ---------------
  //
  // When `snapshot_every` > 0 and a telemetry sink is installed
  // (obs::set_sink), a "cpa.snapshot" event is emitted after every that
  // many windows folded, and once more at the end of the pass: current
  // trace count, top-1 guess and peak correlation, top-1/top-2 margin,
  // and -- if `truth_guess` names a member of `guesses` -- the rank and
  // peak of the true value. A file of these snapshots is enough to
  // reconstruct the paper's Fig. 4 e-h convergence curves offline
  // (fd-report renders them). Both the streamed and in-memory paths
  // emit identical snapshot streams, since they share the fold. Only
  // windows that actually contributed at least one add_trace count
  // toward the cadence and the `traces` field (a record whose sample
  // layout has no room for this spec's views folds nothing).
  std::size_t snapshot_every = 0;
  std::int64_t truth_guess = -1;  // guess *value* to track, -1 = none
  std::string label;              // event tag, e.g. "slot3.im"
};

// Streams the archive once (rewinding first) and returns the filled
// accumulator; ranking()/correlation() behave exactly as in the
// in-memory path. Guess i of the engine is spec.guesses[i].
[[nodiscard]] CpaEngine run_cpa_streaming(tracestore::ArchiveReader& reader,
                                          const StreamingCpaSpec& spec);

// Single-pass multi-component driver: ONE rewind+scan of the archive
// demultiplexes records by slot into a fold per spec. result[i] is
// bit-identical to run_cpa_streaming(reader, specs[i]) -- at 1 archive
// pass instead of specs.size(). Specs may share a slot (e.g. the Re and
// Im components of one FFT coefficient); each fold then consumes the
// same records independently. Per-spec max_traces is honored, and the
// scan stops early once every spec is saturated.
[[nodiscard]] std::vector<CpaEngine> run_cpa_streaming_multi(
    tracestore::ArchiveReader& reader, std::span<const StreamingCpaSpec> specs);

// The same fold over an in-memory TraceSet -- the reference the
// streamed path must reproduce bit for bit.
[[nodiscard]] CpaEngine run_cpa_inmemory(const sca::TraceSet& set,
                                         const StreamingCpaSpec& spec);

// Capture-once/attack-many convenience: reload one slot's traces from
// the archive and run the full extend-and-prune component attack on
// them. Memory is bounded by that single slot's records.
[[nodiscard]] bool attack_component_from_archive(tracestore::ArchiveReader& reader,
                                                 std::size_t slot, bool imag_part,
                                                 const ComponentAttackConfig& config,
                                                 ComponentResult& out);

}  // namespace fd::attack
