#pragma once
// Persistent trace archive (.fdtrace): capture once, attack many times.
//
// Campaigns used to live only in process memory, so every analysis
// variant re-ran the victim signer. This subsystem gives captured traces
// a durable, streamable on-disk form, the way a lab stores scope
// captures: a campaign is written once (optionally sharded across
// workers under different seeds) and re-read arbitrarily often with
// bounded memory, independent of campaign size.
//
// On-disk layout (all integers and floats little-endian):
//
//   +--------------------------------------------------+
//   | file header (80 bytes, kHeaderBytes)             |
//   |   0  magic   "FDTRACE1"                  8 bytes |
//   |   8  version u32  (kFormatVersion)               |
//   |  12  header_bytes u32 (= 80)                     |
//   |  16  logn u32   | 20 row u32                     |
//   |  24  num_slots u32 (n/2)                         |
//   |  28  samples_per_trace u32                       |
//   |  32  traces_per_chunk u32                        |
//   |  36  flags u32 (bit0 constant_weight, bit1 merged)|
//   |  40  alpha f64  | 48 noise_sigma f64             |
//   |  56  samples_per_event u32 | 60 jitter_max u32   |
//   |  64  seed u64   | 72 reserved u64 (zero)         |
//   +--------------------------------------------------+
//   | chunk 0: header (16 bytes) + payload             |
//   |   magic "CHNK" u32 | record_count u32            |
//   |   payload_crc32 u32 | reserved u32               |
//   |   payload = record_count * record_size bytes     |
//   | chunk 1: ...                                     |
//   +--------------------------------------------------+
//
// One record (24 + 4*samples_per_trace bytes):
//   slot u32 | index u32 (signing-query index) |
//   known_re u64 (IEEE-754 bits) | known_im u64 | samples f32[S]
//
// Integrity policy: each chunk's payload carries a CRC32 (IEEE
// reflected polynomial 0xEDB88320). A reader that hits a CRC mismatch
// skips that chunk (its size is known from the header) and keeps
// going; a short chunk header or short payload marks a truncated tail
// and ends the stream cleanly. Neither case crashes or loses the
// records of intact chunks.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

namespace fd::tracestore {

inline constexpr char kFileMagic[8] = {'F', 'D', 'T', 'R', 'A', 'C', 'E', '1'};
inline constexpr std::uint32_t kChunkMagic = 0x4B4E4843;  // "CHNK"
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kHeaderBytes = 80;
inline constexpr std::size_t kChunkHeaderBytes = 16;
inline constexpr std::size_t kDefaultTracesPerChunk = 64;

inline constexpr std::uint32_t kFlagConstantWeight = 1U << 0;
inline constexpr std::uint32_t kFlagMerged = 1U << 1;

// CRC32 (IEEE 802.3, reflected, init/final xor 0xFFFFFFFF), the policy
// checksum of chunk payloads. Exposed for tests and external tooling.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data,
                                  std::uint32_t seed = 0);

// Capture context stored in the file header. Mirrors
// sca::CampaignConfig + sca::DeviceConfig without depending on them:
// the format layer stays free of capture-layer types so offline tools
// link only this library.
struct ArchiveMeta {
  std::uint32_t version = kFormatVersion;
  std::uint32_t logn = 0;
  std::uint32_t row = 0;        // 0 = f-row windows, 1 = F-row windows
  std::uint32_t num_slots = 0;  // n/2 complex slots
  std::uint32_t samples_per_trace = 0;
  std::uint32_t traces_per_chunk = kDefaultTracesPerChunk;
  std::uint32_t flags = 0;
  double alpha = 1.0;
  double noise_sigma = 0.0;
  std::uint32_t samples_per_event = 1;
  std::uint32_t jitter_max = 0;
  std::uint64_t seed = 0;

  [[nodiscard]] std::size_t record_bytes() const {
    return 24 + 4 * static_cast<std::size_t>(samples_per_trace);
  }
  // Everything that must match for two shards to be mergeable (seed and
  // flags may differ -- that is the point of sharding).
  [[nodiscard]] bool compatible_with(const ArchiveMeta& other) const;
};

// One captured window: the adversary-visible trace of a single
// (signing query, complex slot) pair plus the known FFT(c) operands.
struct TraceRecord {
  std::uint32_t slot = 0;
  std::uint32_t index = 0;  // signing-query index within the campaign
  std::uint64_t known_re_bits = 0;
  std::uint64_t known_im_bits = 0;
  std::vector<float> samples;
};

struct ArchiveStats {
  std::size_t records_read = 0;
  std::size_t chunks_ok = 0;
  std::size_t chunks_corrupt = 0;  // CRC mismatch, skipped
  // File-order ordinals (0-based) of the chunks that failed their CRC
  // -- which shard of a campaign is damaged, not just how many.
  std::vector<std::size_t> corrupt_chunk_indices;
  bool truncated_tail = false;  // short chunk header or payload
  [[nodiscard]] bool clean() const { return chunks_corrupt == 0 && !truncated_tail; }
};

// Buffered writer: records accumulate into one chunk's payload and are
// flushed (with their CRC) every `traces_per_chunk` appends. Memory is
// one chunk regardless of campaign size.
class ArchiveWriter {
 public:
  ArchiveWriter() = default;
  ~ArchiveWriter();
  ArchiveWriter(const ArchiveWriter&) = delete;
  ArchiveWriter& operator=(const ArchiveWriter&) = delete;

  [[nodiscard]] bool open(const std::string& path, const ArchiveMeta& meta);
  // Fails if `rec.samples.size() != meta.samples_per_trace`.
  [[nodiscard]] bool append(const TraceRecord& rec);
  // Flushes any partial chunk and closes the file. Idempotent.
  [[nodiscard]] bool close();

  [[nodiscard]] bool is_open() const { return file_ != nullptr; }
  [[nodiscard]] std::size_t records_written() const { return records_written_; }
  [[nodiscard]] const ArchiveMeta& meta() const { return meta_; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  bool flush_chunk();
  void fail(const std::string& what);

  std::FILE* file_ = nullptr;
  ArchiveMeta meta_;
  std::vector<std::uint8_t> payload_;  // pending chunk payload
  std::size_t pending_records_ = 0;
  std::size_t records_written_ = 0;
  std::string error_;
};

// Streaming reader. Decodes one chunk at a time, so peak memory is
// O(traces_per_chunk * record_bytes) no matter how many traces the
// archive holds. Corrupt chunks are skipped and counted; a truncated
// tail ends the stream without error.
class ArchiveReader {
 public:
  ArchiveReader() = default;
  ~ArchiveReader();
  ArchiveReader(const ArchiveReader&) = delete;
  ArchiveReader& operator=(const ArchiveReader&) = delete;

  [[nodiscard]] bool open(const std::string& path);
  // Next record in file order; false at end of stream.
  [[nodiscard]] bool next(TraceRecord& out);
  // Appends up to `max_records` records to `out`; returns how many.
  std::size_t next_batch(std::vector<TraceRecord>& out, std::size_t max_records);
  // Back to the first record (stats reset).
  void rewind();

  [[nodiscard]] bool is_open() const { return file_ != nullptr; }
  [[nodiscard]] const ArchiveMeta& meta() const { return meta_; }
  [[nodiscard]] const ArchiveStats& stats() const { return stats_; }
  // High-water mark of decoded records held at once -- the bounded-
  // memory guarantee, asserted by tests to be <= traces_per_chunk.
  [[nodiscard]] std::size_t max_resident_records() const { return max_resident_; }
  // Record-reading passes started on this reader: the first next() after
  // open() or each rewind() counts one. Single-pass attack drivers pin
  // "exactly one archive scan" against this (and against the
  // attack.archive.scans metric for cross-reader totals).
  [[nodiscard]] std::size_t scans_started() const { return scans_started_; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  bool load_next_chunk();  // false when the stream is exhausted

  std::FILE* file_ = nullptr;
  ArchiveMeta meta_;
  ArchiveStats stats_;
  std::vector<TraceRecord> chunk_;  // decoded records of current chunk
  std::size_t chunk_pos_ = 0;
  std::size_t chunk_ordinal_ = 0;  // file-order index of the next chunk
  std::size_t max_resident_ = 0;
  std::size_t scans_started_ = 0;
  bool scan_counted_ = false;  // current pass already in scans_started_
  std::string error_;
};

// Full-file integrity pass (the `fd-tracedb verify` core).
struct VerifyReport {
  ArchiveMeta meta;
  std::size_t records = 0;
  std::size_t chunks_ok = 0;
  std::size_t chunks_corrupt = 0;
  std::vector<std::size_t> corrupt_chunks;  // file-order chunk ordinals
  bool truncated_tail = false;
  [[nodiscard]] bool clean() const { return chunks_corrupt == 0 && !truncated_tail; }
};
[[nodiscard]] bool verify_archive(const std::string& path, VerifyReport& report,
                                  std::string* error = nullptr);

// Joins shards captured under different seeds/workers into one archive.
// Inputs must be pairwise compatible (same logn/row/slot count/trace
// length/device model); signing-query indices are re-based so the merged
// campaign reads as one contiguous query sequence. Corrupt chunks in the
// inputs are skipped, not propagated. Streams both passes, so merge
// memory is one chunk per side.
[[nodiscard]] bool merge_archives(std::span<const std::string> inputs,
                                  const std::string& out_path,
                                  std::string* error = nullptr);

// Salvage pass (the `fd-tracedb repair` core): copies every CRC-valid
// chunk's records of `in_path` into a fresh archive at `out_path`,
// dropping damaged chunks. The report names exactly what was lost:
// the ordinals of the dropped chunks and the file-order record
// ordinals they held (counts come from the chunk headers, which stay
// readable when only the payload is damaged -- a chunk whose header
// itself is unreadable ends the walk as a truncated tail). Streaming
// both sides, memory is one chunk per side.
struct RepairReport {
  ArchiveMeta meta;
  std::size_t records_kept = 0;
  std::size_t chunks_kept = 0;
  std::size_t chunks_dropped = 0;
  std::vector<std::size_t> dropped_chunks;           // file-order chunk ordinals
  std::vector<std::size_t> dropped_record_ordinals;  // file-order record ordinals
  bool truncated_tail = false;
};
[[nodiscard]] bool repair_archive(const std::string& in_path, const std::string& out_path,
                                  RepairReport& report, std::string* error = nullptr);

// Inverse of merge_archives: cuts one archive into `num_shards` shards
// "<out_prefix>.shard<i>" along contiguous signing-query ranges (the
// same leading-heavy plan exec::static_chunks uses, so split and
// sharded capture agree on shard boundaries). Each shard's indices are
// re-based to start at 0 and its kFlagMerged bit is cleared, so for a
// query-ordered archive merge_archives(split_archive(A)) reproduces A's
// record stream exactly. num_shards is capped at the query count.
// `out_paths`, when non-null, receives the shard files written.
[[nodiscard]] bool split_archive(const std::string& in_path, const std::string& out_prefix,
                                 std::size_t num_shards,
                                 std::vector<std::string>* out_paths = nullptr,
                                 std::string* error = nullptr);

}  // namespace fd::tracestore
