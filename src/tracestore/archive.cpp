#include "tracestore/archive.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <memory>

#include "obs/metrics.h"

namespace fd::tracestore {

namespace {

// Registry lookups hoisted out of the per-chunk paths; references are
// stable for the process lifetime.
obs::Counter& write_chunks_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("tracestore.write.chunks");
  return c;
}
obs::Counter& write_bytes_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("tracestore.write.bytes");
  return c;
}
obs::Counter& read_chunks_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("tracestore.read.chunks");
  return c;
}
obs::Counter& read_crc_failures_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("tracestore.read.crc_failures");
  return c;
}

// --- little-endian (de)serialization into byte buffers --------------------

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  put_u32(out, std::bit_cast<std::uint32_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         static_cast<std::uint64_t>(get_u32(p + 4)) << 32;
}

float get_f32(const std::uint8_t* p) { return std::bit_cast<float>(get_u32(p)); }
double get_f64(const std::uint8_t* p) { return std::bit_cast<double>(get_u64(p)); }

std::vector<std::uint8_t> encode_header(const ArchiveMeta& m) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes);
  out.insert(out.end(), kFileMagic, kFileMagic + sizeof(kFileMagic));
  put_u32(out, m.version);
  put_u32(out, static_cast<std::uint32_t>(kHeaderBytes));
  put_u32(out, m.logn);
  put_u32(out, m.row);
  put_u32(out, m.num_slots);
  put_u32(out, m.samples_per_trace);
  put_u32(out, m.traces_per_chunk);
  put_u32(out, m.flags);
  put_f64(out, m.alpha);
  put_f64(out, m.noise_sigma);
  put_u32(out, m.samples_per_event);
  put_u32(out, m.jitter_max);
  put_u64(out, m.seed);
  put_u64(out, 0);  // reserved
  return out;
}

// Parses and sanity-checks a header buffer; returns false with a reason
// on any structural problem (bad magic, unknown version, zero geometry).
bool decode_header(std::span<const std::uint8_t> buf, ArchiveMeta& m, std::string& why) {
  if (buf.size() < kHeaderBytes) {
    why = "file shorter than the archive header";
    return false;
  }
  if (std::memcmp(buf.data(), kFileMagic, sizeof(kFileMagic)) != 0) {
    why = "bad magic (not an .fdtrace archive)";
    return false;
  }
  m.version = get_u32(buf.data() + 8);
  if (m.version != kFormatVersion) {
    why = "unsupported format version " + std::to_string(m.version) + " (reader speaks " +
          std::to_string(kFormatVersion) + ")";
    return false;
  }
  const std::uint32_t header_bytes = get_u32(buf.data() + 12);
  if (header_bytes != kHeaderBytes) {
    why = "unexpected header size " + std::to_string(header_bytes);
    return false;
  }
  m.logn = get_u32(buf.data() + 16);
  m.row = get_u32(buf.data() + 20);
  m.num_slots = get_u32(buf.data() + 24);
  m.samples_per_trace = get_u32(buf.data() + 28);
  m.traces_per_chunk = get_u32(buf.data() + 32);
  m.flags = get_u32(buf.data() + 36);
  m.alpha = get_f64(buf.data() + 40);
  m.noise_sigma = get_f64(buf.data() + 48);
  m.samples_per_event = get_u32(buf.data() + 56);
  m.jitter_max = get_u32(buf.data() + 60);
  m.seed = get_u64(buf.data() + 64);
  if (m.samples_per_trace == 0 || m.traces_per_chunk == 0) {
    why = "degenerate geometry (zero samples_per_trace or traces_per_chunk)";
    return false;
  }
  return true;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = seed ^ 0xFFFFFFFFU;
  for (const std::uint8_t b : data) c = table[(c ^ b) & 0xFFU] ^ (c >> 8);
  return c ^ 0xFFFFFFFFU;
}

bool ArchiveMeta::compatible_with(const ArchiveMeta& other) const {
  return version == other.version && logn == other.logn && row == other.row &&
         num_slots == other.num_slots && samples_per_trace == other.samples_per_trace &&
         alpha == other.alpha && noise_sigma == other.noise_sigma &&
         samples_per_event == other.samples_per_event && jitter_max == other.jitter_max &&
         (flags & kFlagConstantWeight) == (other.flags & kFlagConstantWeight);
}

// --- writer ---------------------------------------------------------------

ArchiveWriter::~ArchiveWriter() { (void)close(); }

void ArchiveWriter::fail(const std::string& what) {
  error_ = what;
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool ArchiveWriter::open(const std::string& path, const ArchiveMeta& meta) {
  if (file_ != nullptr) {
    error_ = "writer already open";
    return false;
  }
  if (meta.samples_per_trace == 0 || meta.traces_per_chunk == 0) {
    error_ = "meta needs nonzero samples_per_trace and traces_per_chunk";
    return false;
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    error_ = "cannot open '" + path + "' for writing";
    return false;
  }
  meta_ = meta;
  meta_.version = kFormatVersion;
  records_written_ = 0;
  pending_records_ = 0;
  payload_.clear();
  payload_.reserve(meta_.traces_per_chunk * meta_.record_bytes());
  const auto header = encode_header(meta_);
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    fail("short write on header");
    return false;
  }
  return true;
}

bool ArchiveWriter::append(const TraceRecord& rec) {
  if (file_ == nullptr) {
    error_ = "writer not open";
    return false;
  }
  if (rec.samples.size() != meta_.samples_per_trace) {
    fail("record has " + std::to_string(rec.samples.size()) + " samples, archive expects " +
         std::to_string(meta_.samples_per_trace));
    return false;
  }
  put_u32(payload_, rec.slot);
  put_u32(payload_, rec.index);
  put_u64(payload_, rec.known_re_bits);
  put_u64(payload_, rec.known_im_bits);
  for (const float s : rec.samples) put_f32(payload_, s);
  ++pending_records_;
  ++records_written_;
  if (pending_records_ == meta_.traces_per_chunk) return flush_chunk();
  return true;
}

bool ArchiveWriter::flush_chunk() {
  if (pending_records_ == 0) return true;
  std::vector<std::uint8_t> header;
  header.reserve(kChunkHeaderBytes);
  put_u32(header, kChunkMagic);
  put_u32(header, static_cast<std::uint32_t>(pending_records_));
  put_u32(header, crc32(payload_));
  put_u32(header, 0);  // reserved
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      std::fwrite(payload_.data(), 1, payload_.size(), file_) != payload_.size()) {
    fail("short write on chunk");
    return false;
  }
  write_chunks_counter().add(1);
  write_bytes_counter().add(header.size() + payload_.size());
  payload_.clear();
  pending_records_ = 0;
  return true;
}

bool ArchiveWriter::close() {
  if (file_ == nullptr) return error_.empty();
  const bool flushed = flush_chunk();
  if (file_ != nullptr) {
    const bool closed = std::fclose(file_) == 0;
    file_ = nullptr;
    if (flushed && !closed) error_ = "close failed";
    return flushed && closed;
  }
  return flushed;
}

// --- reader ---------------------------------------------------------------

ArchiveReader::~ArchiveReader() {
  if (file_ != nullptr) std::fclose(file_);
}

bool ArchiveReader::open(const std::string& path) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  stats_ = {};
  chunk_.clear();
  chunk_pos_ = 0;
  chunk_ordinal_ = 0;
  max_resident_ = 0;
  scans_started_ = 0;
  scan_counted_ = false;
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    error_ = "cannot open '" + path + "' for reading";
    return false;
  }
  std::array<std::uint8_t, kHeaderBytes> buf;
  const std::size_t got = std::fread(buf.data(), 1, buf.size(), file_);
  std::string why;
  if (!decode_header({buf.data(), got}, meta_, why)) {
    error_ = why;
    std::fclose(file_);
    file_ = nullptr;
    return false;
  }
  return true;
}

bool ArchiveReader::load_next_chunk() {
  chunk_.clear();
  chunk_pos_ = 0;
  const std::size_t record_bytes = meta_.record_bytes();
  std::vector<std::uint8_t> payload;
  for (;;) {
    std::array<std::uint8_t, kChunkHeaderBytes> head;
    const std::size_t got = std::fread(head.data(), 1, head.size(), file_);
    if (got == 0) return false;  // clean end of stream
    if (got < head.size()) {
      stats_.truncated_tail = true;
      return false;
    }
    const std::uint32_t magic = get_u32(head.data());
    const std::uint32_t count = get_u32(head.data() + 4);
    const std::uint32_t want_crc = get_u32(head.data() + 8);
    if (magic != kChunkMagic || count == 0 || count > meta_.traces_per_chunk) {
      // Structure is gone; without a trustworthy length there is nothing
      // to skip over, so treat the rest of the file as a damaged tail.
      stats_.truncated_tail = true;
      return false;
    }
    payload.resize(count * record_bytes);
    if (std::fread(payload.data(), 1, payload.size(), file_) != payload.size()) {
      stats_.truncated_tail = true;
      return false;
    }
    const std::size_t ordinal = chunk_ordinal_++;
    if (crc32(payload) != want_crc) {
      ++stats_.chunks_corrupt;
      stats_.corrupt_chunk_indices.push_back(ordinal);
      read_crc_failures_counter().add(1);
      continue;  // chunk length was intact, so the next header is right here
    }
    ++stats_.chunks_ok;
    read_chunks_counter().add(1);
    chunk_.resize(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint8_t* p = payload.data() + i * record_bytes;
      TraceRecord& r = chunk_[i];
      r.slot = get_u32(p);
      r.index = get_u32(p + 4);
      r.known_re_bits = get_u64(p + 8);
      r.known_im_bits = get_u64(p + 16);
      r.samples.resize(meta_.samples_per_trace);
      for (std::uint32_t s = 0; s < meta_.samples_per_trace; ++s) {
        r.samples[s] = get_f32(p + 24 + 4 * s);
      }
    }
    max_resident_ = std::max(max_resident_, chunk_.size());
    return true;
  }
}

bool ArchiveReader::next(TraceRecord& out) {
  if (file_ == nullptr) return false;
  if (!scan_counted_) {
    scan_counted_ = true;
    ++scans_started_;
  }
  if (chunk_pos_ == chunk_.size() && !load_next_chunk()) return false;
  out = std::move(chunk_[chunk_pos_]);
  ++chunk_pos_;
  ++stats_.records_read;
  return true;
}

std::size_t ArchiveReader::next_batch(std::vector<TraceRecord>& out,
                                      std::size_t max_records) {
  std::size_t n = 0;
  TraceRecord rec;
  while (n < max_records && next(rec)) {
    out.push_back(std::move(rec));
    ++n;
  }
  return n;
}

void ArchiveReader::rewind() {
  if (file_ == nullptr) return;
  std::fseek(file_, static_cast<long>(kHeaderBytes), SEEK_SET);
  stats_ = {};
  chunk_.clear();
  chunk_pos_ = 0;
  chunk_ordinal_ = 0;
  scan_counted_ = false;  // the next next() starts a new counted pass
}

// --- verify / merge -------------------------------------------------------

bool verify_archive(const std::string& path, VerifyReport& report, std::string* error) {
  ArchiveReader reader;
  if (!reader.open(path)) {
    if (error != nullptr) *error = reader.error();
    return false;
  }
  TraceRecord rec;
  while (reader.next(rec)) {
  }
  report.meta = reader.meta();
  report.records = reader.stats().records_read;
  report.chunks_ok = reader.stats().chunks_ok;
  report.chunks_corrupt = reader.stats().chunks_corrupt;
  report.corrupt_chunks = reader.stats().corrupt_chunk_indices;
  report.truncated_tail = reader.stats().truncated_tail;
  return true;
}

bool repair_archive(const std::string& in_path, const std::string& out_path,
                    RepairReport& report, std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  report = RepairReport{};

  ArchiveReader reader;
  if (!reader.open(in_path)) return fail(reader.error());
  report.meta = reader.meta();
  const std::size_t record_bytes = reader.meta().record_bytes();

  // Header walk first: per-chunk record counts stay readable over a
  // damaged payload (only payload bytes are CRC-protected), which is
  // what lets the report name the exact record ordinals lost.
  std::vector<std::size_t> chunk_records;
  {
    std::FILE* f = std::fopen(in_path.c_str(), "rb");
    if (f == nullptr) return fail("repair: cannot reopen: " + in_path);
    bool walked = std::fseek(f, static_cast<long>(kHeaderBytes), SEEK_SET) == 0;
    std::uint8_t hdr[kChunkHeaderBytes];
    while (walked) {
      if (std::fread(hdr, 1, sizeof(hdr), f) != sizeof(hdr)) break;
      if (get_u32(hdr) != kChunkMagic) break;  // tail damage: same stop as the reader
      const std::uint32_t count = get_u32(hdr + 4);
      chunk_records.push_back(count);
      if (std::fseek(f, static_cast<long>(count * record_bytes), SEEK_CUR) != 0) break;
    }
    std::fclose(f);
    if (!walked) return fail("repair: seek failed: " + in_path);
  }

  ArchiveWriter writer;
  if (!writer.open(out_path, reader.meta())) return fail(writer.error());
  TraceRecord rec;
  while (reader.next(rec)) {
    if (!writer.append(rec)) return fail(writer.error());
  }
  if (!writer.close()) return fail(writer.error());

  const ArchiveStats& st = reader.stats();
  report.records_kept = st.records_read;
  report.chunks_kept = st.chunks_ok;
  report.chunks_dropped = st.chunks_corrupt;
  report.dropped_chunks = st.corrupt_chunk_indices;
  report.truncated_tail = st.truncated_tail;
  std::vector<std::size_t> base(chunk_records.size() + 1, 0);
  for (std::size_t i = 0; i < chunk_records.size(); ++i) {
    base[i + 1] = base[i] + chunk_records[i];
  }
  for (const std::size_t o : st.corrupt_chunk_indices) {
    if (o >= chunk_records.size()) continue;
    for (std::size_t r = 0; r < chunk_records[o]; ++r) {
      report.dropped_record_ordinals.push_back(base[o] + r);
    }
  }
  return true;
}

bool merge_archives(std::span<const std::string> inputs, const std::string& out_path,
                    std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (inputs.empty()) return fail("merge needs at least one input");

  // Pass 1: check compatibility and count each shard's signing queries
  // (max index + 1), which re-bases the indices of later shards.
  ArchiveMeta base;
  std::vector<std::uint64_t> query_counts(inputs.size(), 0);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    ArchiveReader reader;
    if (!reader.open(inputs[i])) return fail(inputs[i] + ": " + reader.error());
    if (i == 0) {
      base = reader.meta();
    } else if (!base.compatible_with(reader.meta())) {
      return fail(inputs[i] + ": incompatible with " + inputs[0] +
                  " (logn/row/slots/trace-length/device must match)");
    }
    TraceRecord rec;
    while (reader.next(rec)) {
      query_counts[i] = std::max(query_counts[i], static_cast<std::uint64_t>(rec.index) + 1);
    }
  }

  ArchiveMeta out_meta = base;
  out_meta.flags |= kFlagMerged;
  ArchiveWriter writer;
  if (!writer.open(out_path, out_meta)) return fail(writer.error());

  // Pass 2: stream every intact record through, shifting indices.
  std::uint64_t index_base = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    ArchiveReader reader;
    if (!reader.open(inputs[i])) return fail(inputs[i] + ": " + reader.error());
    TraceRecord rec;
    while (reader.next(rec)) {
      rec.index = static_cast<std::uint32_t>(index_base + rec.index);
      if (!writer.append(rec)) return fail(writer.error());
    }
    index_base += query_counts[i];
  }
  if (!writer.close()) return fail(writer.error());
  return true;
}

bool split_archive(const std::string& in_path, const std::string& out_prefix,
                   std::size_t num_shards, std::vector<std::string>* out_paths,
                   std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (num_shards == 0) return fail("split needs at least one shard");

  // Pass 1: total signing queries (max index + 1).
  std::uint64_t queries = 0;
  {
    ArchiveReader reader;
    if (!reader.open(in_path)) return fail(in_path + ": " + reader.error());
    TraceRecord rec;
    while (reader.next(rec)) {
      queries = std::max(queries, static_cast<std::uint64_t>(rec.index) + 1);
    }
    if (queries == 0) return fail(in_path + ": no records to split");
  }

  // Contiguous leading-heavy ranges: the first (queries % k) shards get
  // one extra query, mirroring exec::static_chunks (the format layer
  // does not link src/exec, so the plan is restated here).
  const std::size_t k = static_cast<std::size_t>(
      std::min<std::uint64_t>(queries, static_cast<std::uint64_t>(num_shards)));
  const std::uint64_t base_size = queries / k;
  const std::uint64_t remainder = queries % k;
  std::vector<std::uint64_t> range_begin(k + 1, 0);
  for (std::size_t i = 0; i < k; ++i) {
    range_begin[i + 1] = range_begin[i] + base_size + (i < remainder ? 1 : 0);
  }

  ArchiveReader reader;
  if (!reader.open(in_path)) return fail(in_path + ": " + reader.error());
  ArchiveMeta shard_meta = reader.meta();
  shard_meta.flags &= ~kFlagMerged;

  std::vector<std::unique_ptr<ArchiveWriter>> writers(k);
  std::vector<std::string> paths(k);
  for (std::size_t i = 0; i < k; ++i) {
    paths[i] = out_prefix + ".shard" + std::to_string(i);
    writers[i] = std::make_unique<ArchiveWriter>();
    if (!writers[i]->open(paths[i], shard_meta)) {
      return fail(paths[i] + ": " + writers[i]->error());
    }
  }

  // Pass 2: route every record to the shard owning its query range,
  // re-based to that range's origin. One streamed pass; memory is one
  // pending chunk per shard.
  TraceRecord rec;
  while (reader.next(rec)) {
    const std::uint64_t q = rec.index;
    const std::size_t shard =
        static_cast<std::size_t>(std::upper_bound(range_begin.begin(), range_begin.end(), q) -
                                 range_begin.begin()) - 1;
    rec.index = static_cast<std::uint32_t>(q - range_begin[shard]);
    if (!writers[shard]->append(rec)) return fail(paths[shard] + ": " + writers[shard]->error());
  }
  for (std::size_t i = 0; i < k; ++i) {
    if (!writers[i]->close()) return fail(paths[i] + ": " + writers[i]->error());
  }
  if (out_paths != nullptr) *out_paths = std::move(paths);
  return true;
}

}  // namespace fd::tracestore
