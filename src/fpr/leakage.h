#pragma once
// Leakage instrumentation hooks for the soft-float emulation.
//
// FALCON's reference implementation emulates IEEE-754 binary64 in pure
// integer code (FPEMU). On a microcontroller every intermediate of that
// integer code drives data-dependent CMOS switching activity, which is
// what the paper's EM probe picks up. We reproduce that by emitting a
// LeakageEvent for each intermediate value the reference `fpr_mul` /
// `fpr_add` pipelines compute. A device model (src/sca) turns the event
// stream into noisy traces; the attack (src/attack) predicts the same
// intermediates from key hypotheses.
//
// When no sink is installed the hooks cost a single predictable branch.

#include <cstdint>

namespace fd::fpr {

enum class LeakageTag : std::uint8_t {
  // Markers, not device activity: the capture logic uses them the way a
  // lab setup uses a scope trigger line.
  kTriggerBegin,
  kTriggerEnd,

  // fpr_mul: operand mantissa halves after the 25/28 split (Fig. 2).
  kMulOperandXLo,  // x0 = secret mantissa low 25 bits ("D" in the paper)
  kMulOperandXHi,  // x1 = secret mantissa high 28 bits
  kMulOperandYLo,  // y0 = known mantissa low 25 bits  ("B")
  kMulOperandYHi,  // y1 = known mantissa high 28 bits ("A")

  // fpr_mul: schoolbook partial products (the paper's "extend" targets).
  kMulProdLL,  // x0*y0
  kMulProdLH,  // x0*y1
  kMulProdHL,  // x1*y0
  kMulProdHH,  // x1*y1

  // fpr_mul: intermediate additions (the paper's "prune" targets).
  kMulAccZ1a,  // (x0*y0 >> 25) + (x0*y1 & mask25)   - depends on x0 only
  kMulAccZ1b,  // kMulAccZ1a + (x1*y0 & mask25)
  kMulAccZ2,   // (x0*y1 >> 25) + (x1*y0 >> 25)
  kMulAccZu,   // x1*y1 + kMulAccZ2 + (kMulAccZ1b >> 25) - full-mantissa add

  // fpr_mul: exponent and sign datapath.
  kMulExpX,    // biased 11-bit exponent of x
  kMulExpY,    // biased 11-bit exponent of y
  kMulExpSum,  // ex + ey - 2100 as a 32-bit register (the attacked addition)
  kMulSign,    // sign(x) XOR sign(y)

  kMulResult,  // assembled 64-bit product bits

  // fpr_add pipeline (background activity in the captured window).
  kAddAlignShift,  // exponent difference used to align mantissas
  kAddMantSum,     // aligned mantissa sum/difference before normalization
  kAddResult,      // assembled 64-bit sum bits

  // Integer NTT modmul pipeline (src/zq): used by the paper's §V.C
  // NTT-vs-FFT side-channel comparison, not by FALCON itself.
  kNttProd,          // 32-bit product a*b before reduction
  kNttReduced,       // product after reduction mod q
  kNttButterflyAdd,  // butterfly sum mod q
  kNttButterflySub,  // butterfly difference mod q

  kNumTags,
};

[[nodiscard]] const char* leakage_tag_name(LeakageTag tag);

struct LeakageEvent {
  LeakageTag tag;
  std::uint64_t value;
};

class LeakageSink {
 public:
  virtual ~LeakageSink() = default;
  virtual void on_event(const LeakageEvent& ev) = 0;
};

namespace detail {
extern thread_local LeakageSink* tl_sink;
}

// Installs (or clears, with nullptr) the current thread's sink; returns
// the previous one so scopes can nest.
inline LeakageSink* set_leakage_sink(LeakageSink* sink) {
  LeakageSink* prev = detail::tl_sink;
  detail::tl_sink = sink;
  return prev;
}

[[nodiscard]] inline LeakageSink* leakage_sink() { return detail::tl_sink; }

inline void leak(LeakageTag tag, std::uint64_t value) {
  if (LeakageSink* s = detail::tl_sink) s->on_event({tag, value});
}

// RAII scope helper.
class ScopedLeakageSink {
 public:
  explicit ScopedLeakageSink(LeakageSink* sink) : prev_(set_leakage_sink(sink)) {}
  ~ScopedLeakageSink() { set_leakage_sink(prev_); }
  ScopedLeakageSink(const ScopedLeakageSink&) = delete;
  ScopedLeakageSink& operator=(const ScopedLeakageSink&) = delete;

 private:
  LeakageSink* prev_;
};

}  // namespace fd::fpr
