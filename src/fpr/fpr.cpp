#include "fpr/fpr.h"

#include <array>
#include <cassert>

namespace fd::fpr {

namespace detail {
thread_local LeakageSink* tl_sink = nullptr;
}

const char* leakage_tag_name(LeakageTag tag) {
  switch (tag) {
    case LeakageTag::kTriggerBegin: return "TRIGGER_BEGIN";
    case LeakageTag::kTriggerEnd: return "TRIGGER_END";
    case LeakageTag::kMulOperandXLo: return "MUL_X_LO";
    case LeakageTag::kMulOperandXHi: return "MUL_X_HI";
    case LeakageTag::kMulOperandYLo: return "MUL_Y_LO";
    case LeakageTag::kMulOperandYHi: return "MUL_Y_HI";
    case LeakageTag::kMulProdLL: return "MUL_PROD_LL";
    case LeakageTag::kMulProdLH: return "MUL_PROD_LH";
    case LeakageTag::kMulProdHL: return "MUL_PROD_HL";
    case LeakageTag::kMulProdHH: return "MUL_PROD_HH";
    case LeakageTag::kMulAccZ1a: return "MUL_ACC_Z1A";
    case LeakageTag::kMulAccZ1b: return "MUL_ACC_Z1B";
    case LeakageTag::kMulAccZ2: return "MUL_ACC_Z2";
    case LeakageTag::kMulAccZu: return "MUL_ACC_ZU";
    case LeakageTag::kMulExpX: return "MUL_EXP_X";
    case LeakageTag::kMulExpY: return "MUL_EXP_Y";
    case LeakageTag::kMulExpSum: return "MUL_EXP_SUM";
    case LeakageTag::kMulSign: return "MUL_SIGN";
    case LeakageTag::kMulResult: return "MUL_RESULT";
    case LeakageTag::kAddAlignShift: return "ADD_ALIGN_SHIFT";
    case LeakageTag::kAddMantSum: return "ADD_MANT_SUM";
    case LeakageTag::kAddResult: return "ADD_RESULT";
    case LeakageTag::kNttProd: return "NTT_PROD";
    case LeakageTag::kNttReduced: return "NTT_REDUCED";
    case LeakageTag::kNttButterflyAdd: return "NTT_BFLY_ADD";
    case LeakageTag::kNttButterflySub: return "NTT_BFLY_SUB";
    case LeakageTag::kNumTags: break;
  }
  return "?";
}

namespace {

constexpr std::uint64_t kSignBit = 0x8000000000000000ULL;
constexpr std::uint64_t kMagMask = 0x7FFFFFFFFFFFFFFFULL;

// Assembles (-1)^s * m * 2^e with m in [2^54, 2^55), where m's bit 1 is
// the round bit and bit 0 the sticky bit; round-to-nearest-even via the
// 0xC8 lookup trick of FALCON's FPR(). m == 0 or an underflowing exponent
// yields a (signed) zero.
Fpr make_fpr(unsigned s, int e, std::uint64_t m) {
  e += 1076;
  if (m == 0 || e < 0) return Fpr::from_bits(static_cast<std::uint64_t>(s) << 63);
  std::uint64_t x = (static_cast<std::uint64_t>(s) << 63) | (m >> 2);
  x += static_cast<std::uint64_t>(static_cast<std::uint32_t>(e)) << 52;
  const unsigned f = static_cast<unsigned>(m) & 7U;
  x += (0xC8U >> f) & 1U;
  return Fpr::from_bits(x);
}

}  // namespace

Fpr fpr_mul(Fpr x, Fpr y) {
  const unsigned s = static_cast<unsigned>((x.bits() ^ y.bits()) >> 63);
  leak(LeakageTag::kMulSign, s);

  const unsigned ex_field = x.biased_exponent();
  const unsigned ey_field = y.biased_exponent();
  // Zero or subnormal operand: flush to (signed) zero.
  if (ex_field == 0 || ey_field == 0) {
    return Fpr::from_bits(static_cast<std::uint64_t>(s) << 63);
  }

  leak(LeakageTag::kMulExpX, ex_field);
  leak(LeakageTag::kMulExpY, ey_field);
  // The reference FPEMU computes the signed intermediate
  // e = ex + ey - 2100 in a 32-bit register; its two's-complement
  // pattern (typically a small negative) is what switches on the bus.
  leak(LeakageTag::kMulExpSum,
       static_cast<std::uint32_t>(static_cast<std::int32_t>(ex_field + ey_field) - 2100));

  const MulMantissaSteps st = mul_mantissa_steps(x.significand(), y.significand());
  leak(LeakageTag::kMulOperandXLo, st.x0);
  leak(LeakageTag::kMulOperandXHi, st.x1);
  leak(LeakageTag::kMulOperandYLo, st.y0);
  leak(LeakageTag::kMulOperandYHi, st.y1);
  leak(LeakageTag::kMulProdLL, st.prod_ll);
  leak(LeakageTag::kMulProdLH, st.prod_lh);
  leak(LeakageTag::kMulAccZ1a, st.z1a);
  leak(LeakageTag::kMulProdHL, st.prod_hl);
  leak(LeakageTag::kMulAccZ1b, st.z1b);
  leak(LeakageTag::kMulAccZ2, st.z2);
  leak(LeakageTag::kMulProdHH, st.prod_hh);
  leak(LeakageTag::kMulAccZu, st.zu);

  // Reassemble: product P = zu*2^50 + z1*2^25 + z0 in [2^104, 2^106).
  const int ex = static_cast<int>(ex_field) - 1075;
  const int ey = static_cast<int>(ey_field) - 1075;
  std::uint64_t m;
  int e;
  if ((st.zu >> 55) != 0) {  // P >= 2^105
    const bool sticky = ((st.zu & 3) | st.z1 | st.z0) != 0;
    m = ((st.zu >> 2) << 1) | static_cast<std::uint64_t>(sticky);
    e = ex + ey + 51;
  } else {  // P < 2^105
    const bool sticky = ((st.zu & 1) | st.z1 | st.z0) != 0;
    m = ((st.zu >> 1) << 1) | static_cast<std::uint64_t>(sticky);
    e = ex + ey + 50;
  }
  const Fpr r = make_fpr(s, e, m);
  leak(LeakageTag::kMulResult, r.bits());
  return r;
}

Fpr fpr_add(Fpr x, Fpr y) {
  std::uint64_t xb = x.bits();
  std::uint64_t yb = y.bits();
  // Operand with the larger magnitude goes first.
  if ((xb & kMagMask) < (yb & kMagMask)) std::swap(xb, yb);

  const unsigned sx = static_cast<unsigned>(xb >> 63);
  const unsigned sy = static_cast<unsigned>(yb >> 63);
  const unsigned ex_field = static_cast<unsigned>((xb >> 52) & 0x7FF);
  const unsigned ey_field = static_cast<unsigned>((yb >> 52) & 0x7FF);

  // Mantissas scaled to 2^55..2^56-1 (3 guard bits); subnormals flush to 0.
  std::uint64_t xu = xb & 0x000FFFFFFFFFFFFFULL;
  std::uint64_t yu = yb & 0x000FFFFFFFFFFFFFULL;
  if (ex_field != 0) xu |= 0x0010000000000000ULL; else xu = 0;
  if (ey_field != 0) yu |= 0x0010000000000000ULL; else yu = 0;
  xu <<= 3;
  yu <<= 3;

  // Align y to x's exponent; dropped bits collapse into the sticky bit 0.
  const unsigned delta = ex_field - ey_field;  // >= 0 by the swap above
  leak(LeakageTag::kAddAlignShift, delta);
  if (delta > 59) {
    yu = (yu != 0) ? 1 : 0;
  } else if (delta > 0) {
    const std::uint64_t dropped = yu & ((std::uint64_t{1} << delta) - 1);
    yu = (yu >> delta) | static_cast<std::uint64_t>(dropped != 0);
  }

  std::uint64_t zm = (sx == sy) ? (xu + yu) : (xu - yu);
  leak(LeakageTag::kAddMantSum, zm);
  if (zm == 0) {
    // Exact cancellation rounds to +0; (-0)+(-0) stays -0.
    return Fpr::from_bits(static_cast<std::uint64_t>(sx & sy) << 63);
  }

  int e = static_cast<int>(ex_field) - 1078;  // value == zm * 2^e
  while (zm >= (std::uint64_t{1} << 55)) {
    zm = (zm >> 1) | (zm & 1);
    ++e;
  }
  while (zm < (std::uint64_t{1} << 54)) {
    zm <<= 1;
    --e;
  }
  const Fpr r = make_fpr(sx, e, zm);
  leak(LeakageTag::kAddResult, r.bits());
  return r;
}

Fpr fpr_sub(Fpr x, Fpr y) { return fpr_add(x, fpr_neg(y)); }

Fpr fpr_neg(Fpr x) { return Fpr::from_bits(x.bits() ^ kSignBit); }

Fpr fpr_half(Fpr x) {
  const unsigned e = x.biased_exponent();
  if (e <= 1) return Fpr::from_bits(x.bits() & kSignBit);  // underflow flush
  return Fpr::from_bits(x.bits() - (std::uint64_t{1} << 52));
}

Fpr fpr_double(Fpr x) {
  if (x.biased_exponent() == 0) return Fpr::from_bits(x.bits() & kSignBit);
  return Fpr::from_bits(x.bits() + (std::uint64_t{1} << 52));
}

Fpr fpr_div(Fpr x, Fpr y) {
  const unsigned s = static_cast<unsigned>((x.bits() ^ y.bits()) >> 63);
  if (x.biased_exponent() == 0 || y.biased_exponent() == 0) {
    // x == 0 (or subnormal) -> signed zero; division by zero is
    // unspecified in FPEMU, we return signed zero as well.
    return Fpr::from_bits(static_cast<std::uint64_t>(s) << 63);
  }
  const std::uint64_t xm = x.significand();
  const std::uint64_t ym = y.significand();
  const unsigned __int128 num = static_cast<unsigned __int128>(xm) << 55;
  std::uint64_t q = static_cast<std::uint64_t>(num / ym);
  bool sticky = (num % ym) != 0;
  int e = static_cast<int>(x.biased_exponent()) - static_cast<int>(y.biased_exponent()) - 55;
  if ((q >> 55) != 0) {
    sticky = sticky || (q & 1);
    q >>= 1;
    ++e;
  }
  const std::uint64_t m = q | static_cast<std::uint64_t>(sticky);
  return make_fpr(s, e, m);
}

Fpr fpr_inv(Fpr x) { return fpr_div(kOne, x); }

namespace {

unsigned __int128 isqrt_u128(unsigned __int128 t) {
  unsigned __int128 r = 0;
  unsigned __int128 bit = static_cast<unsigned __int128>(1) << 126;
  while (bit > t) bit >>= 2;
  while (bit != 0) {
    if (t >= r + bit) {
      t -= r + bit;
      r = (r >> 1) + bit;
    } else {
      r >>= 1;
    }
    bit >>= 2;
  }
  return r;
}

}  // namespace

Fpr fpr_sqrt(Fpr x) {
  assert(!x.sign() || x.is_zero());
  if (x.biased_exponent() == 0) return Fpr::from_bits(0);
  std::uint64_t xm = x.significand();
  int e = static_cast<int>(x.biased_exponent()) - 1075;  // value = xm * 2^e
  if (e & 1) {
    xm <<= 1;
    --e;
  }
  const unsigned __int128 t = static_cast<unsigned __int128>(xm) << 56;
  const unsigned __int128 rt = isqrt_u128(t);
  const bool sticky = rt * rt != t;
  const std::uint64_t m = static_cast<std::uint64_t>(rt) | static_cast<std::uint64_t>(sticky);
  return make_fpr(0, e / 2 - 28, m);
}

Fpr fpr_scaled(std::int64_t i, int sc) {
  if (i == 0) return Fpr::from_bits(0);
  const unsigned s = i < 0;
  std::uint64_t m = s ? ~static_cast<std::uint64_t>(i) + 1 : static_cast<std::uint64_t>(i);
  int e = sc;
  while (m >= (std::uint64_t{1} << 55)) {
    m = (m >> 1) | (m & 1);
    ++e;
  }
  while (m < (std::uint64_t{1} << 54)) {
    m <<= 1;
    --e;
  }
  return make_fpr(s, e, m);
}

Fpr fpr_of(std::int64_t i) { return fpr_scaled(i, 0); }

std::int64_t fpr_trunc(Fpr x) {
  if (x.biased_exponent() == 0) return 0;
  const int e = static_cast<int>(x.biased_exponent()) - 1075;  // value = xm * 2^e
  const std::uint64_t xm = x.significand();
  std::uint64_t mag;
  if (e >= 0) {
    mag = (e >= 11) ? (xm << 11) : (xm << e);  // callers keep |x| < 2^63
  } else {
    const unsigned sh = static_cast<unsigned>(-e);
    mag = (sh >= 64) ? 0 : (xm >> sh);
  }
  const std::int64_t r = static_cast<std::int64_t>(mag);
  return x.sign() ? -r : r;
}

std::int64_t fpr_rint(Fpr x) {
  if (x.biased_exponent() == 0) return 0;
  const int e = static_cast<int>(x.biased_exponent()) - 1075;
  const std::uint64_t xm = x.significand();
  std::uint64_t mag;
  if (e >= 0) {
    mag = (e >= 11) ? (xm << 11) : (xm << e);
  } else {
    const unsigned sh = static_cast<unsigned>(-e);
    if (sh >= 54) {
      mag = 0;  // |x| < 0.5 rounds to 0; |x| == 0.5 rounds to 0 (even)
    } else {
      const std::uint64_t kept = xm >> sh;
      const std::uint64_t rem = xm & ((std::uint64_t{1} << sh) - 1);
      const std::uint64_t half = std::uint64_t{1} << (sh - 1);
      mag = kept + ((rem > half || (rem == half && (kept & 1))) ? 1 : 0);
    }
  }
  const std::int64_t r = static_cast<std::int64_t>(mag);
  return x.sign() ? -r : r;
}

std::int64_t fpr_floor(Fpr x) {
  const std::int64_t t = fpr_trunc(x);
  if (!x.sign()) return t;
  // Negative: subtract 1 when x has a fractional part.
  const int e = static_cast<int>(x.biased_exponent()) - 1075;
  if (x.biased_exponent() == 0 || e >= 0) return t;
  const unsigned sh = static_cast<unsigned>(-e);
  const std::uint64_t xm = x.significand();
  const bool fractional = (sh >= 64) ? (xm != 0) : ((xm & ((std::uint64_t{1} << sh) - 1)) != 0);
  return fractional ? t - 1 : t;
}

bool fpr_lt(Fpr x, Fpr y) {
  const auto key = [](std::uint64_t b) {
    return (b >> 63) ? ~b : (b | kSignBit);
  };
  return key(x.bits()) < key(y.bits());
}

namespace {

constexpr int kExpmTerms = 16;

constexpr std::array<std::uint64_t, kExpmTerms + 1> make_expm_table() {
  std::array<std::uint64_t, kExpmTerms + 1> c{};
  for (int i = 0; i <= kExpmTerms; ++i) {
    const int k = kExpmTerms - i;  // coefficient of x^k is 2^63 / k!
    std::uint64_t fact = 1;
    for (int j = 2; j <= k; ++j) fact *= static_cast<std::uint64_t>(j);
    if (k == 0) {
      c[i] = std::uint64_t{1} << 63;
    } else {
      const std::uint64_t q = (std::uint64_t{1} << 63) / fact;
      const std::uint64_t r = (std::uint64_t{1} << 63) % fact;
      c[i] = q + ((2 * r >= fact) ? 1 : 0);
    }
  }
  return c;
}

constexpr std::array<std::uint64_t, kExpmTerms + 1> kExpmTable = make_expm_table();

inline std::uint64_t mul_hi64(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b)) >> 64);
}

}  // namespace

std::uint64_t fpr_expm_p63(Fpr x, Fpr ccs) {
  assert(fpr_lt(x, kOne) && !x.sign());
  // z = x in 0.64 fixed point (x < 1).
  const std::uint64_t z = static_cast<std::uint64_t>(fpr_trunc(fpr_mul(x, kPtwo63))) << 1;
  std::uint64_t y = kExpmTable[0];
  for (std::size_t u = 1; u < kExpmTable.size(); ++u) {
    y = kExpmTable[u] - mul_hi64(z, y);
  }
  // Scale by ccs; ccs == 1 saturates the 0.64 fixed-point representation
  // (it occurs when a sampling sigma equals sigma_min exactly).
  const std::uint64_t zc =
      fpr_lt(ccs, kOne)
          ? (static_cast<std::uint64_t>(fpr_trunc(fpr_mul(ccs, kPtwo63))) << 1)
          : ~std::uint64_t{0};
  return mul_hi64(zc, y);
}

}  // namespace fd::fpr
