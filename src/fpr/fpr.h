#pragma once
// Soft-float emulation of IEEE-754 binary64, mirroring FALCON's FPEMU.
//
// FALCON mandates a specific floating-point behaviour (round-to-nearest-
// even binary64 with subnormals flushed to zero) and ships an integer-only
// emulation for targets without an FPU — the ARM Cortex-M4 of the paper's
// experiment runs exactly that code. The multiplication splits each 53-bit
// mantissa into a low 25-bit and a high 28-bit half and performs schoolbook
// multiplication with intermediate additions; those intermediates are the
// paper's attack targets, so this module both computes them and (optionally)
// leaks them through fd::fpr::leak().
//
// The bit layout is standard binary64, so conversions to/from native
// double are bit casts, and every arithmetic op here is testable against
// the host FPU.

#include <bit>
#include <cstdint>

#include "fpr/leakage.h"

namespace fd::fpr {

class Fpr {
 public:
  constexpr Fpr() = default;

  [[nodiscard]] static constexpr Fpr from_bits(std::uint64_t bits) { return Fpr(bits); }
  [[nodiscard]] static constexpr Fpr from_double(double d) {
    return Fpr(std::bit_cast<std::uint64_t>(d));
  }

  [[nodiscard]] constexpr std::uint64_t bits() const { return v_; }
  [[nodiscard]] constexpr double to_double() const { return std::bit_cast<double>(v_); }

  [[nodiscard]] constexpr bool sign() const { return (v_ >> 63) != 0; }
  [[nodiscard]] constexpr unsigned biased_exponent() const {
    return static_cast<unsigned>((v_ >> 52) & 0x7FF);
  }
  [[nodiscard]] constexpr std::uint64_t mantissa_field() const {
    return v_ & 0x000FFFFFFFFFFFFFULL;
  }
  // Full 53-bit significand with the hidden bit set (normal values only).
  [[nodiscard]] constexpr std::uint64_t significand() const {
    return mantissa_field() | 0x0010000000000000ULL;
  }
  [[nodiscard]] constexpr bool is_zero() const { return (v_ << 1) == 0; }

  friend constexpr bool operator==(Fpr a, Fpr b) { return a.v_ == b.v_; }

 private:
  explicit constexpr Fpr(std::uint64_t bits) : v_(bits) {}
  std::uint64_t v_ = 0;
};

// Every intermediate of the reference fpr_mul mantissa pipeline, in
// execution order. This is the single source of truth shared by the
// arithmetic (below) and by the attack's hypothesis models: both sides
// compute byte-identical values, just like device and attacker share the
// instruction stream on real hardware.
struct MulMantissaSteps {
  std::uint32_t x0, x1;  // secret operand: low 25 / high 28 bits
  std::uint32_t y0, y1;  // known operand:  low 25 / high 28 bits
  std::uint64_t prod_ll;  // x0*y0
  std::uint64_t prod_lh;  // x0*y1
  std::uint64_t prod_hl;  // x1*y0
  std::uint64_t prod_hh;  // x1*y1
  std::uint32_t z1a;      // (prod_ll>>25) + (prod_lh & mask25): prune target (low)
  std::uint32_t z1b;      // z1a + (prod_hl & mask25)
  std::uint32_t z2;       // (prod_lh>>25) + (prod_hl>>25)
  std::uint64_t zu;       // prod_hh + z2 + (z1b>>25): prune target (high)
  std::uint32_t z1;       // z1b & mask25
  std::uint32_t z0;       // prod_ll & mask25
};

inline constexpr std::uint32_t kMantLowMask = 0x01FFFFFF;  // 25 bits
inline constexpr unsigned kMantLowBits = 25;
inline constexpr unsigned kMantHighBits = 28;

// Pure function: runs the split/schoolbook pipeline on two 53-bit
// significands (hidden bit included).
[[nodiscard]] constexpr MulMantissaSteps mul_mantissa_steps(std::uint64_t xm, std::uint64_t ym) {
  MulMantissaSteps s{};
  s.x0 = static_cast<std::uint32_t>(xm) & kMantLowMask;
  s.x1 = static_cast<std::uint32_t>(xm >> kMantLowBits);
  s.y0 = static_cast<std::uint32_t>(ym) & kMantLowMask;
  s.y1 = static_cast<std::uint32_t>(ym >> kMantLowBits);
  s.prod_ll = static_cast<std::uint64_t>(s.x0) * s.y0;
  s.prod_lh = static_cast<std::uint64_t>(s.x0) * s.y1;
  s.prod_hl = static_cast<std::uint64_t>(s.x1) * s.y0;
  s.prod_hh = static_cast<std::uint64_t>(s.x1) * s.y1;
  s.z0 = static_cast<std::uint32_t>(s.prod_ll) & kMantLowMask;
  s.z1a = static_cast<std::uint32_t>(s.prod_ll >> kMantLowBits) +
          (static_cast<std::uint32_t>(s.prod_lh) & kMantLowMask);
  s.z1b = s.z1a + (static_cast<std::uint32_t>(s.prod_hl) & kMantLowMask);
  s.z2 = static_cast<std::uint32_t>(s.prod_lh >> kMantLowBits) +
         static_cast<std::uint32_t>(s.prod_hl >> kMantLowBits);
  s.zu = s.prod_hh + s.z2 + (s.z1b >> kMantLowBits);
  s.z1 = s.z1b & kMantLowMask;
  return s;
}

// Arithmetic (round-to-nearest-even; subnormal inputs/outputs flushed to
// zero; NaN/Inf behaviour unspecified, as in FALCON's FPEMU).
[[nodiscard]] Fpr fpr_add(Fpr x, Fpr y);
[[nodiscard]] Fpr fpr_sub(Fpr x, Fpr y);
[[nodiscard]] Fpr fpr_mul(Fpr x, Fpr y);
[[nodiscard]] Fpr fpr_div(Fpr x, Fpr y);
[[nodiscard]] Fpr fpr_sqrt(Fpr x);
[[nodiscard]] Fpr fpr_neg(Fpr x);
[[nodiscard]] Fpr fpr_half(Fpr x);    // x * 0.5 (exponent decrement)
[[nodiscard]] Fpr fpr_double(Fpr x);  // x * 2   (exponent increment)
[[nodiscard]] inline Fpr fpr_sqr(Fpr x) { return fpr_mul(x, x); }
[[nodiscard]] Fpr fpr_inv(Fpr x);

// Conversions.
[[nodiscard]] Fpr fpr_of(std::int64_t i);
// i * 2^sc, as FALCON's fpr_scaled.
[[nodiscard]] Fpr fpr_scaled(std::int64_t i, int sc);
[[nodiscard]] std::int64_t fpr_rint(Fpr x);   // round to nearest even
[[nodiscard]] std::int64_t fpr_trunc(Fpr x);  // round toward zero
[[nodiscard]] std::int64_t fpr_floor(Fpr x);  // round toward -inf

// Comparison: x < y (total order on the values; -0 < +0).
[[nodiscard]] bool fpr_lt(Fpr x, Fpr y);

// round(2^63 * ccs * exp(-x)) for x in [0, ln 2], ccs in [0, 1).
// Used by the BerExp rejection step of SamplerZ. Taylor-16 fixed-point
// Horner evaluation (FALCON uses a degree-12 minimax variant of the same
// scheme; both are far below the sampler's statistical noise floor).
[[nodiscard]] std::uint64_t fpr_expm_p63(Fpr x, Fpr ccs);

// Operator sugar.
inline Fpr operator+(Fpr a, Fpr b) { return fpr_add(a, b); }
inline Fpr operator-(Fpr a, Fpr b) { return fpr_sub(a, b); }
inline Fpr operator*(Fpr a, Fpr b) { return fpr_mul(a, b); }
inline Fpr operator/(Fpr a, Fpr b) { return fpr_div(a, b); }
inline Fpr operator-(Fpr a) { return fpr_neg(a); }

// Common constants.
inline constexpr Fpr kZero = Fpr::from_double(0.0);
inline constexpr Fpr kOne = Fpr::from_double(1.0);
inline constexpr Fpr kTwo = Fpr::from_double(2.0);
inline constexpr Fpr kOneHalf = Fpr::from_double(0.5);
inline constexpr Fpr kLn2 = Fpr::from_double(0.69314718055994531);
inline constexpr Fpr kInvLn2 = Fpr::from_double(1.4426950408889634);
inline constexpr Fpr kInvSqrt2 = Fpr::from_double(0.70710678118654752);
inline constexpr Fpr kPtwo63 = Fpr::from_double(9223372036854775808.0);

}  // namespace fd::fpr
