#!/usr/bin/env python3
"""Benchmark regression gate.

Runs the fast bench_* executables with --json, merges their JSONL
measurements, and compares wall times against the committed baseline
(BENCH_7.json at the repo root):

    tools/fd_bench.py                  # compare against the baseline
    tools/fd_bench.py --update         # rewrite the baseline in place
    tools/fd_bench.py --build-dir b2   # non-default build tree

Exit status is nonzero when any metric regresses by more than
--threshold (default 20%) over the baseline. Noise control: every bench
runs --repeat times (default 3) and the minimum wall time per metric is
used; metrics faster than --floor-ms (default 1 ms) are reported but
never fail the gate, since at that scale scheduler jitter exceeds the
threshold. New metrics (absent from the baseline) and metrics the
current build no longer emits are reported as informational only --
update the baseline to adopt them.

Stdlib only; no third-party packages.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# (executable, positional args) -- sized so the whole suite stays in
# single-digit seconds; the baseline pins these exact shapes.
BENCHES = [
    ("bench_cpa_kernel", ["4000"]),
    ("bench_tracestore", ["4"]),
]


def run_bench(build_dir, name, args, repeat):
    """Return {metric_key: {"wall_ms": min_ms, "params": str}}."""
    exe = os.path.join(build_dir, "bench", name)
    if not os.path.exists(exe):
        sys.exit(f"fd_bench: missing {exe} (build the tree first)")
    merged = {}
    for _ in range(repeat):
        with tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False) as tmp:
            json_path = tmp.name
        try:
            proc = subprocess.run(
                [exe, *args, "--json", json_path],
                stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE,
                text=True,
            )
            if proc.returncode != 0:
                sys.exit(f"fd_bench: {name} failed:\n{proc.stderr}")
            with open(json_path, encoding="utf-8") as f:
                for line in f:
                    line = line.strip()
                    if not line:
                        continue
                    row = json.loads(line)
                    if row.get("ev") != "bench":
                        continue
                    key = f'{row["bench"]}.{row["name"]}'
                    wall = float(row["wall_ms"])
                    prev = merged.get(key)
                    if prev is None or wall < prev["wall_ms"]:
                        merged[key] = {"wall_ms": wall, "params": row.get("params", "")}
        finally:
            os.unlink(json_path)
    return merged


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--baseline", default=None, help="default: <repo>/BENCH_7.json")
    parser.add_argument("--update", action="store_true", help="rewrite the baseline")
    parser.add_argument("--threshold", type=float, default=0.20)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--floor-ms", type=float, default=1.0)
    opts = parser.parse_args()

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline_path = opts.baseline or os.path.join(repo, "BENCH_7.json")
    build_dir = (
        opts.build_dir
        if os.path.isabs(opts.build_dir)
        else os.path.join(repo, opts.build_dir)
    )

    current = {}
    for name, args in BENCHES:
        current.update(run_bench(build_dir, name, args, opts.repeat))
    if not current:
        sys.exit("fd_bench: no measurements collected")

    if opts.update:
        doc = {
            "schema": 1,
            "threshold": opts.threshold,
            "benches": {k: current[k] for k in sorted(current)},
        }
        with open(baseline_path, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"fd_bench: wrote {len(current)} baselines to {baseline_path}")
        return 0

    if not os.path.exists(baseline_path):
        sys.exit(f"fd_bench: no baseline at {baseline_path}; run with --update first")
    with open(baseline_path, encoding="utf-8") as f:
        baseline = json.load(f)["benches"]

    regressions = []
    width = max(len(k) for k in sorted(set(current) | set(baseline)))
    print(f'{"metric":<{width}} {"base_ms":>10} {"now_ms":>10} {"delta":>8}')
    for key in sorted(set(current) | set(baseline)):
        now = current.get(key)
        base = baseline.get(key)
        if base is None:
            print(f'{key:<{width}} {"-":>10} {now["wall_ms"]:>10.3f}      new')
            continue
        if now is None:
            print(f'{key:<{width}} {base["wall_ms"]:>10.3f} {"-":>10}     gone')
            continue
        ratio = now["wall_ms"] / base["wall_ms"] if base["wall_ms"] > 0 else 1.0
        mark = ""
        if ratio > 1.0 + opts.threshold:
            if base["wall_ms"] >= opts.floor_ms:
                mark = "  REGRESSED"
                regressions.append(key)
            else:
                mark = "  (noisy, under floor)"
        print(
            f'{key:<{width}} {base["wall_ms"]:>10.3f} {now["wall_ms"]:>10.3f} '
            f"{100.0 * (ratio - 1.0):>+7.1f}%{mark}"
        )

    if regressions:
        print(
            f"\nfd_bench: {len(regressions)} metric(s) regressed more than "
            f"{opts.threshold:.0%}: {', '.join(regressions)}"
        )
        return 1
    print("\nfd_bench: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
