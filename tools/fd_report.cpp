// fd-report: render a telemetry JSONL file (obs::JsonLinesSink output)
// into human-readable attack summaries.
//
//   fd-report <telemetry.jsonl>            per-label summary tables
//   fd-report <telemetry.jsonl> --label L  full convergence curve of one label
//
// The headline table is the per-coefficient trace-count-vs-rank view of
// the "cpa.snapshot" stream: for every component label it shows the
// final top-1 guess, the top-1/top-2 margin, and the trace count from
// which the true value holds rank 0 to the end ("disclosed@") -- the
// offline reconstruction of the paper's Fig. 4 e-h convergence curves.
//
// Links only the always-compiled obs core (jsonl parser), so it reads
// telemetry from instrumented builds even when built with FD_OBS=OFF.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/jsonl.h"

namespace jsonl = fd::obs::jsonl;

namespace {

struct Snapshot {
  std::size_t traces = 0;
  std::uint64_t top1_guess = 0;
  double top1_r = 0.0;
  double top2_r = 0.0;
  double margin = 0.0;
  long truth_rank = -1;
  double truth_r = 0.0;
};

struct Phase {
  std::string phase;
  std::size_t candidates_in = 0;
  std::size_t kept = 0;
  std::uint64_t value = 0;
  double score = 0.0;
};

struct Campaign {
  std::string mode;
  std::size_t queries = 0;
  std::size_t records = 0;
  double wall_us = 0.0;
};

struct SpanStats {
  std::size_t count = 0;
  double total_us = 0.0;
};

// Per-label series, kept in first-seen order so the report is stable
// across runs of the same telemetry file.
template <typename T>
class LabelSeries {
 public:
  std::vector<T>& at(std::string_view label) {
    const auto it = index_.find(std::string(label));
    if (it != index_.end()) return series_[it->second].second;
    index_.emplace(label, series_.size());
    series_.emplace_back(label, std::vector<T>());
    return series_.back().second;
  }
  [[nodiscard]] const auto& all() const { return series_; }
  [[nodiscard]] const std::vector<T>* find(std::string_view label) const {
    const auto it = index_.find(std::string(label));
    return it == index_.end() ? nullptr : &series_[it->second].second;
  }

 private:
  std::vector<std::pair<std::string, std::vector<T>>> series_;
  std::map<std::string, std::size_t> index_;
};

struct Report {
  LabelSeries<Snapshot> snapshots;
  LabelSeries<Phase> phases;
  std::vector<Campaign> campaigns;
  std::vector<std::pair<std::string, SpanStats>> spans;  // first-seen order
  std::size_t events = 0;
  std::size_t parse_errors = 0;
};

void add_span(Report& rep, std::string_view name, double wall_us) {
  for (auto& [n, st] : rep.spans) {
    if (n == name) {
      ++st.count;
      st.total_us += wall_us;
      return;
    }
  }
  rep.spans.emplace_back(name, SpanStats{1, wall_us});
}

void ingest_line(Report& rep, std::string_view line) {
  // Skip blank lines quietly; count malformed ones.
  std::size_t ws = 0;
  while (ws < line.size() && (line[ws] == ' ' || line[ws] == '\t' || line[ws] == '\r')) ++ws;
  if (ws == line.size()) return;

  jsonl::Object obj;
  if (!jsonl::parse_object(line, obj)) {
    ++rep.parse_errors;
    return;
  }
  ++rep.events;
  const std::string_view ev = obj.str("ev");
  if (ev == "cpa.snapshot") {
    Snapshot s;
    s.traces = static_cast<std::size_t>(obj.num("traces"));
    s.top1_guess = static_cast<std::uint64_t>(obj.num("top1_guess"));
    s.top1_r = obj.num("top1_r");
    s.top2_r = obj.num("top2_r");
    s.margin = obj.num("margin");
    s.truth_rank = static_cast<long>(obj.num("truth_rank", -1.0));
    s.truth_r = obj.num("truth_r");
    rep.snapshots.at(obj.str("label")).push_back(s);
  } else if (ev == "ep.phase") {
    Phase p;
    p.phase = obj.str("phase");
    p.candidates_in = static_cast<std::size_t>(obj.num("candidates_in"));
    p.kept = static_cast<std::size_t>(obj.num("kept"));
    p.value = static_cast<std::uint64_t>(obj.num("value"));
    p.score = obj.num("score");
    rep.phases.at(obj.str("label")).push_back(p);
  } else if (ev == "sca.campaign") {
    Campaign c;
    c.mode = obj.str("mode");
    c.queries = static_cast<std::size_t>(obj.num("queries"));
    c.records = static_cast<std::size_t>(obj.num("records"));
    c.wall_us = obj.num("wall_us");
    rep.campaigns.push_back(c);
  } else if (ev == "span") {
    add_span(rep, obj.str("name"), obj.num("wall_us"));
  }
}

// Smallest trace count from which the truth holds rank 0 through the
// final snapshot; -1 if it never stabilizes (or was not tracked).
long disclosed_at(const std::vector<Snapshot>& snaps) {
  long at = -1;
  for (const auto& s : snaps) {
    if (s.truth_rank == 0) {
      if (at < 0) at = static_cast<long>(s.traces);
    } else {
      at = -1;  // lost rank 0 again; restart
    }
  }
  return at;
}

void print_summary(const Report& rep) {
  if (!rep.campaigns.empty()) {
    std::printf("== campaigns ==\n");
    for (const auto& c : rep.campaigns) {
      std::printf("  mode=%-9s queries=%-8zu records=%-10zu wall=%.3fs\n", c.mode.c_str(),
                  c.queries, c.records, c.wall_us / 1e6);
    }
    std::printf("\n");
  }

  if (!rep.snapshots.all().empty()) {
    std::printf("== per-component convergence (cpa.snapshot) ==\n");
    std::printf("  %-14s %6s %8s %12s %9s %9s %6s %11s\n", "label", "snaps", "traces", "top1",
                "top1_r", "margin", "rank", "disclosed@");
    for (const auto& [label, snaps] : rep.snapshots.all()) {
      const Snapshot& last = snaps.back();
      const long at = disclosed_at(snaps);
      char at_buf[24];
      if (at < 0) {
        std::snprintf(at_buf, sizeof(at_buf), "%s", "-");
      } else {
        std::snprintf(at_buf, sizeof(at_buf), "%ld", at);
      }
      char rank_buf[24];
      if (last.truth_rank < 0) {
        std::snprintf(rank_buf, sizeof(rank_buf), "%s", "-");
      } else {
        std::snprintf(rank_buf, sizeof(rank_buf), "%ld", last.truth_rank);
      }
      std::printf("  %-14s %6zu %8zu %12llu %9.5f %9.5f %6s %11s\n", label.c_str(),
                  snaps.size(), last.traces,
                  static_cast<unsigned long long>(last.top1_guess), last.top1_r, last.margin,
                  rank_buf, at_buf);
    }
    std::printf("\n");
  }

  if (!rep.phases.all().empty()) {
    std::printf("== extend-and-prune (ep.phase) ==\n");
    std::printf("  %-14s %-12s %12s %8s %12s %9s\n", "label", "phase", "candidates", "kept",
                "value", "score");
    for (const auto& [label, phases] : rep.phases.all()) {
      for (const auto& p : phases) {
        std::printf("  %-14s %-12s %12zu %8zu %12llu %9.5f\n", label.c_str(),
                    p.phase.c_str(), p.candidates_in, p.kept,
                    static_cast<unsigned long long>(p.value), p.score);
      }
    }
    std::printf("\n");
  }

  if (!rep.spans.empty()) {
    std::printf("== spans ==\n");
    std::printf("  %-28s %8s %12s %12s\n", "name", "count", "total_ms", "mean_us");
    for (const auto& [name, st] : rep.spans) {
      std::printf("  %-28s %8zu %12.3f %12.1f\n", name.c_str(), st.count, st.total_us / 1e3,
                  st.total_us / static_cast<double>(st.count));
    }
    std::printf("\n");
  }
}

int print_curve(const Report& rep, const std::string& label) {
  const std::vector<Snapshot>* snaps = rep.snapshots.find(label);
  if (snaps == nullptr || snaps->empty()) {
    std::fprintf(stderr, "fd-report: no cpa.snapshot events for label '%s'\n", label.c_str());
    return 1;
  }
  std::printf("# convergence curve: %s\n", label.c_str());
  std::printf("%8s %12s %9s %9s %9s %6s %9s\n", "traces", "top1", "top1_r", "top2_r",
              "margin", "rank", "truth_r");
  for (const auto& s : *snaps) {
    char rank_buf[24];
    if (s.truth_rank < 0) {
      std::snprintf(rank_buf, sizeof(rank_buf), "%s", "-");
    } else {
      std::snprintf(rank_buf, sizeof(rank_buf), "%ld", s.truth_rank);
    }
    std::printf("%8zu %12llu %9.5f %9.5f %9.5f %6s %9.5f\n", s.traces,
                static_cast<unsigned long long>(s.top1_guess), s.top1_r, s.top2_r, s.margin,
                rank_buf, s.truth_r);
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: fd-report <telemetry.jsonl>\n"
               "       fd-report <telemetry.jsonl> --label <label>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string label;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--label") {
      if (i + 1 >= argc) return usage();
      label = argv[++i];
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "fd-report: cannot open %s\n", path.c_str());
    return 2;
  }
  Report rep;
  std::string line;
  int ch;
  while ((ch = std::fgetc(f)) != EOF) {
    if (ch == '\n') {
      ingest_line(rep, line);
      line.clear();
    } else {
      line.push_back(static_cast<char>(ch));
    }
  }
  if (!line.empty()) ingest_line(rep, line);
  std::fclose(f);

  if (!label.empty()) return print_curve(rep, label);

  std::printf("fd-report: %s -- %zu events", path.c_str(), rep.events);
  if (rep.parse_errors > 0) std::printf(", %zu malformed lines", rep.parse_errors);
  std::printf("\n\n");
  print_summary(rep);
  return 0;
}
