// fd-report: render a telemetry JSONL file (obs::JsonLinesSink output)
// into human-readable attack summaries.
//
//   fd-report <telemetry.jsonl>            per-label summary tables
//   fd-report <telemetry.jsonl> --label L  full convergence curve of one label
//   fd-report <telemetry.jsonl> --follow   tail a live run (fleet telemetry)
//   fd-report <telemetry.jsonl> --export-trace <out.json>
//                                          Chrome/Perfetto trace export
//
// --follow tails the file like `tail -f`, feeding whatever bytes are
// there through obs::jsonl::StreamReader -- which tolerates a
// mid-record final line (a writer caught between write() calls) -- and
// renders each cpa.snapshot / fleet.* event as it lands, so a running
// `fd-attack --fleet N --telemetry F` shows per-component convergence
// and worker lifecycle live. --poll-ms sets the poll cadence;
// --exit-after-idle-ms N exits once the file has been quiet that long
// (0 = follow forever), then prints the usual summary tables.
//
// The headline table is the per-coefficient trace-count-vs-rank view of
// the "cpa.snapshot" stream: for every component label it shows the
// final top-1 guess, the top-1/top-2 margin, and the trace count from
// which the true value holds rank 0 to the end ("disclosed@") -- the
// offline reconstruction of the paper's Fig. 4 e-h convergence curves.
//
// Links only the always-compiled obs core (jsonl parser), so it reads
// telemetry from instrumented builds even when built with FD_OBS=OFF.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/jsonl.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace_export.h"

namespace jsonl = fd::obs::jsonl;

namespace {

struct Snapshot {
  std::size_t traces = 0;
  std::uint64_t top1_guess = 0;
  double top1_r = 0.0;
  double top2_r = 0.0;
  double margin = 0.0;
  long truth_rank = -1;
  double truth_r = 0.0;
};

struct Phase {
  std::string phase;
  std::size_t candidates_in = 0;
  std::size_t kept = 0;
  std::uint64_t value = 0;
  double score = 0.0;
};

struct Campaign {
  std::string mode;
  std::size_t queries = 0;
  std::size_t records = 0;
  double wall_us = 0.0;
};

struct SpanStats {
  std::size_t count = 0;
  double total_us = 0.0;
  // Duration distribution in the shared log-bucket geometry, so the
  // always-compiled histogram_percentile gives p50/p95/p99.
  fd::obs::HistogramView hist;
};

// One span occurrence with its propagated ids -- the raw material for
// self-time (total minus direct children) in the summary table.
struct SpanInstance {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::size_t name_idx = 0;  // into Report::spans
  double dur_us = 0.0;
};

// Per-label series, kept in first-seen order so the report is stable
// across runs of the same telemetry file.
template <typename T>
class LabelSeries {
 public:
  std::vector<T>& at(std::string_view label) {
    const auto it = index_.find(std::string(label));
    if (it != index_.end()) return series_[it->second].second;
    index_.emplace(label, series_.size());
    series_.emplace_back(label, std::vector<T>());
    return series_.back().second;
  }
  [[nodiscard]] const auto& all() const { return series_; }
  [[nodiscard]] const std::vector<T>* find(std::string_view label) const {
    const auto it = index_.find(std::string(label));
    return it == index_.end() ? nullptr : &series_[it->second].second;
  }

 private:
  std::vector<std::pair<std::string, std::vector<T>>> series_;
  std::map<std::string, std::size_t> index_;
};

// Coordinator-side fleet.* lines (worker lifecycle, task scheduling).
struct FleetStats {
  std::size_t workers_spawned = 0;
  std::size_t worker_deaths = 0;
  std::size_t reassignments = 0;
  std::size_t tasks_assigned = 0;
  std::size_t tasks_done = 0;
  std::size_t tasks_failed = 0;
  std::size_t remeasure_rounds = 0;
  bool seen = false;
};

struct Report {
  LabelSeries<Snapshot> snapshots;
  LabelSeries<Phase> phases;
  std::vector<Campaign> campaigns;
  std::vector<std::pair<std::string, SpanStats>> spans;  // first-seen order
  std::vector<SpanInstance> span_instances;
  FleetStats fleet;
  std::size_t events = 0;
  std::size_t parse_errors = 0;
};

void add_span(Report& rep, const jsonl::Object& obj) {
  const std::string_view name = obj.str("name");
  const double wall_us = obj.num("wall_us");
  std::size_t idx = rep.spans.size();
  for (std::size_t i = 0; i < rep.spans.size(); ++i) {
    if (rep.spans[i].first == name) {
      idx = i;
      break;
    }
  }
  if (idx == rep.spans.size()) rep.spans.emplace_back(name, SpanStats{});
  SpanStats& st = rep.spans[idx].second;
  ++st.count;
  st.total_us += wall_us;
  if (st.hist.count == 0) {
    st.hist.min = st.hist.max = wall_us;
  } else {
    st.hist.min = std::min(st.hist.min, wall_us);
    st.hist.max = std::max(st.hist.max, wall_us);
  }
  ++st.hist.count;
  st.hist.sum += wall_us;
  ++st.hist.buckets[fd::obs::histogram_bucket_index(wall_us)];

  const std::uint64_t id = fd::obs::parse_span_id_hex(obj.str("span"));
  if (id != 0) {
    rep.span_instances.push_back(
        {id, fd::obs::parse_span_id_hex(obj.str("parent")), idx, wall_us});
  }
}

void ingest_object(Report& rep, const jsonl::Object& obj) {
  ++rep.events;
  const std::string_view ev = obj.str("ev");
  if (ev == "cpa.snapshot") {
    Snapshot s;
    s.traces = static_cast<std::size_t>(obj.num("traces"));
    s.top1_guess = static_cast<std::uint64_t>(obj.num("top1_guess"));
    s.top1_r = obj.num("top1_r");
    s.top2_r = obj.num("top2_r");
    s.margin = obj.num("margin");
    s.truth_rank = static_cast<long>(obj.num("truth_rank", -1.0));
    s.truth_r = obj.num("truth_r");
    rep.snapshots.at(obj.str("label")).push_back(s);
  } else if (ev == "ep.phase") {
    Phase p;
    p.phase = obj.str("phase");
    p.candidates_in = static_cast<std::size_t>(obj.num("candidates_in"));
    p.kept = static_cast<std::size_t>(obj.num("kept"));
    p.value = static_cast<std::uint64_t>(obj.num("value"));
    p.score = obj.num("score");
    rep.phases.at(obj.str("label")).push_back(p);
  } else if (ev == "sca.campaign") {
    Campaign c;
    c.mode = obj.str("mode");
    c.queries = static_cast<std::size_t>(obj.num("queries"));
    c.records = static_cast<std::size_t>(obj.num("records"));
    c.wall_us = obj.num("wall_us");
    rep.campaigns.push_back(c);
  } else if (ev == "span") {
    add_span(rep, obj);
  } else if (ev.substr(0, 6) == "fleet.") {
    rep.fleet.seen = true;
    if (ev == "fleet.worker.spawn") ++rep.fleet.workers_spawned;
    if (ev == "fleet.worker.dead") ++rep.fleet.worker_deaths;
    if (ev == "fleet.task.reassign") ++rep.fleet.reassignments;
    if (ev == "fleet.task.assign") ++rep.fleet.tasks_assigned;
    if (ev == "fleet.task.done") ++rep.fleet.tasks_done;
    if (ev == "fleet.task.failed") ++rep.fleet.tasks_failed;
    if (ev == "fleet.remeasure.round") ++rep.fleet.remeasure_rounds;
  }
}

void ingest_line(Report& rep, std::string_view line) {
  // Skip blank lines quietly; count malformed ones.
  std::size_t ws = 0;
  while (ws < line.size() && (line[ws] == ' ' || line[ws] == '\t' || line[ws] == '\r')) ++ws;
  if (ws == line.size()) return;

  jsonl::Object obj;
  if (!jsonl::parse_object(line, obj)) {
    ++rep.parse_errors;
    return;
  }
  ingest_object(rep, obj);
}

// Smallest trace count from which the truth holds rank 0 through the
// final snapshot; -1 if it never stabilizes (or was not tracked).
long disclosed_at(const std::vector<Snapshot>& snaps) {
  long at = -1;
  for (const auto& s : snaps) {
    if (s.truth_rank == 0) {
      if (at < 0) at = static_cast<long>(s.traces);
    } else {
      at = -1;  // lost rank 0 again; restart
    }
  }
  return at;
}

void print_summary(const Report& rep) {
  if (rep.fleet.seen) {
    std::printf("== fleet ==\n");
    std::printf("  workers: %zu spawned, %zu died\n", rep.fleet.workers_spawned,
                rep.fleet.worker_deaths);
    std::printf("  tasks: %zu assigned, %zu done, %zu failed, %zu reassignment%s\n",
                rep.fleet.tasks_assigned, rep.fleet.tasks_done, rep.fleet.tasks_failed,
                rep.fleet.reassignments, rep.fleet.reassignments == 1 ? "" : "s");
    if (rep.fleet.remeasure_rounds > 0) {
      std::printf("  re-measurement rounds: %zu\n", rep.fleet.remeasure_rounds);
    }
    std::printf("\n");
  }

  if (!rep.campaigns.empty()) {
    std::printf("== campaigns ==\n");
    for (const auto& c : rep.campaigns) {
      std::printf("  mode=%-9s queries=%-8zu records=%-10zu wall=%.3fs\n", c.mode.c_str(),
                  c.queries, c.records, c.wall_us / 1e6);
    }
    std::printf("\n");
  }

  if (!rep.snapshots.all().empty()) {
    std::printf("== per-component convergence (cpa.snapshot) ==\n");
    std::printf("  %-14s %6s %8s %12s %9s %9s %6s %11s\n", "label", "snaps", "traces", "top1",
                "top1_r", "margin", "rank", "disclosed@");
    for (const auto& [label, snaps] : rep.snapshots.all()) {
      const Snapshot& last = snaps.back();
      const long at = disclosed_at(snaps);
      char at_buf[24];
      if (at < 0) {
        std::snprintf(at_buf, sizeof(at_buf), "%s", "-");
      } else {
        std::snprintf(at_buf, sizeof(at_buf), "%ld", at);
      }
      char rank_buf[24];
      if (last.truth_rank < 0) {
        std::snprintf(rank_buf, sizeof(rank_buf), "%s", "-");
      } else {
        std::snprintf(rank_buf, sizeof(rank_buf), "%ld", last.truth_rank);
      }
      std::printf("  %-14s %6zu %8zu %12llu %9.5f %9.5f %6s %11s\n", label.c_str(),
                  snaps.size(), last.traces,
                  static_cast<unsigned long long>(last.top1_guess), last.top1_r, last.margin,
                  rank_buf, at_buf);
    }
    std::printf("\n");
  }

  if (!rep.phases.all().empty()) {
    std::printf("== extend-and-prune (ep.phase) ==\n");
    std::printf("  %-14s %-12s %12s %8s %12s %9s\n", "label", "phase", "candidates", "kept",
                "value", "score");
    for (const auto& [label, phases] : rep.phases.all()) {
      for (const auto& p : phases) {
        std::printf("  %-14s %-12s %12zu %8zu %12llu %9.5f\n", label.c_str(),
                    p.phase.c_str(), p.candidates_in, p.kept,
                    static_cast<unsigned long long>(p.value), p.score);
      }
    }
    std::printf("\n");
  }

  if (!rep.spans.empty()) {
    // Self time: each instance's duration minus its direct children's.
    // Works from the propagated span/parent ids, so in a fleet file a
    // worker task span counts against the coordinator stage span that
    // spawned it. Files without ids degrade to self == total.
    std::map<std::uint64_t, std::size_t> by_id;
    for (std::size_t i = 0; i < rep.span_instances.size(); ++i) {
      by_id[rep.span_instances[i].id] = i;
    }
    std::vector<double> child_us(rep.span_instances.size(), 0.0);
    for (const SpanInstance& inst : rep.span_instances) {
      const auto it = by_id.find(inst.parent);
      if (it != by_id.end()) child_us[it->second] += inst.dur_us;
    }
    std::vector<double> self_us(rep.spans.size(), 0.0);
    std::vector<bool> has_ids(rep.spans.size(), false);
    for (std::size_t i = 0; i < rep.span_instances.size(); ++i) {
      const SpanInstance& inst = rep.span_instances[i];
      has_ids[inst.name_idx] = true;
      self_us[inst.name_idx] += std::max(0.0, inst.dur_us - child_us[i]);
    }

    std::printf("== spans ==\n");
    std::printf("  %-28s %8s %11s %11s %10s %10s %10s\n", "name", "count", "total_ms",
                "self_ms", "p50_us", "p95_us", "p99_us");
    for (std::size_t i = 0; i < rep.spans.size(); ++i) {
      const auto& [name, st] = rep.spans[i];
      const double self = has_ids[i] ? self_us[i] : st.total_us;
      std::printf("  %-28s %8zu %11.3f %11.3f %10.1f %10.1f %10.1f\n", name.c_str(), st.count,
                  st.total_us / 1e3, self / 1e3, fd::obs::histogram_percentile(st.hist, 50.0),
                  fd::obs::histogram_percentile(st.hist, 95.0),
                  fd::obs::histogram_percentile(st.hist, 99.0));
    }
    std::printf("\n");
  }
}

int print_curve(const Report& rep, const std::string& label) {
  const std::vector<Snapshot>* snaps = rep.snapshots.find(label);
  if (snaps == nullptr || snaps->empty()) {
    std::fprintf(stderr, "fd-report: no cpa.snapshot events for label '%s'\n", label.c_str());
    return 1;
  }
  std::printf("# convergence curve: %s\n", label.c_str());
  std::printf("%8s %12s %9s %9s %9s %6s %9s\n", "traces", "top1", "top1_r", "top2_r",
              "margin", "rank", "truth_r");
  for (const auto& s : *snaps) {
    char rank_buf[24];
    if (s.truth_rank < 0) {
      std::snprintf(rank_buf, sizeof(rank_buf), "%s", "-");
    } else {
      std::snprintf(rank_buf, sizeof(rank_buf), "%ld", s.truth_rank);
    }
    std::printf("%8zu %12llu %9.5f %9.5f %9.5f %6s %9.5f\n", s.traces,
                static_cast<unsigned long long>(s.top1_guess), s.top1_r, s.top2_r, s.margin,
                rank_buf, s.truth_r);
  }
  return 0;
}

// One line per live event: convergence for cpa.snapshot, lifecycle for
// fleet.*. Everything else accumulates silently into the report.
void render_live(const jsonl::Object& obj) {
  const std::string_view ev = obj.str("ev");
  char wtag[32] = "";
  if (const jsonl::Value* wv = obj.find("worker"); wv != nullptr) {
    if (wv->kind == jsonl::Value::Kind::kString) {
      std::snprintf(wtag, sizeof(wtag), " [%s]", wv->str.c_str());
    } else if (wv->kind == jsonl::Value::Kind::kNumber && wv->num >= 0.0) {
      std::snprintf(wtag, sizeof(wtag), " [w%ld]", static_cast<long>(wv->num));
    }
  }

  if (ev == "cpa.snapshot") {
    const long rank = static_cast<long>(obj.num("truth_rank", -1.0));
    char rank_buf[24];
    if (rank < 0) {
      std::snprintf(rank_buf, sizeof(rank_buf), "%s", "-");
    } else {
      std::snprintf(rank_buf, sizeof(rank_buf), "%ld", rank);
    }
    std::printf("%-14s traces=%-7zu top1=%-8llu margin=%8.5f rank=%s%s\n",
                std::string(obj.str("label")).c_str(),
                static_cast<std::size_t>(obj.num("traces")),
                static_cast<unsigned long long>(obj.num("top1_guess")), obj.num("margin"),
                rank_buf, wtag);
  } else if (ev == "ep.phase") {
    std::printf("%-14s phase=%-12s candidates=%-5zu kept=%-5zu score=%8.5f%s\n",
                std::string(obj.str("label")).c_str(), std::string(obj.str("phase")).c_str(),
                static_cast<std::size_t>(obj.num("candidates_in")),
                static_cast<std::size_t>(obj.num("kept")), obj.num("score"), wtag);
  } else if (ev == "fleet.worker.spawn") {
    std::printf("fleet: worker %ld up (pid %llu)\n", static_cast<long>(obj.num("worker")),
                static_cast<unsigned long long>(obj.num("pid")));
  } else if (ev == "fleet.worker.dead") {
    std::printf("fleet: worker %ld DOWN (%s)\n", static_cast<long>(obj.num("worker")),
                std::string(obj.str("detail")).c_str());
  } else if (ev == "fleet.task.assign") {
    std::printf("fleet: task %llu -> worker %ld (attempt %llu, %llu components)\n",
                static_cast<unsigned long long>(obj.num("task")),
                static_cast<long>(obj.num("worker")),
                static_cast<unsigned long long>(obj.num("attempt")),
                static_cast<unsigned long long>(obj.num("components")));
  } else if (ev == "fleet.task.done") {
    std::printf("fleet: task %llu done%s\n", static_cast<unsigned long long>(obj.num("task")),
                wtag);
  } else if (ev == "fleet.task.reassign") {
    std::printf("fleet: task %llu REASSIGNED (attempt %llu)\n",
                static_cast<unsigned long long>(obj.num("task")),
                static_cast<unsigned long long>(obj.num("attempt")));
  } else if (ev == "fleet.progress") {
    std::printf("fleet: task %llu %llu/%llu components%s\n",
                static_cast<unsigned long long>(obj.num("task")),
                static_cast<unsigned long long>(obj.num("completed")),
                static_cast<unsigned long long>(obj.num("total")), wtag);
  } else if (ev == "fleet.remeasure.round") {
    std::printf("fleet: re-measurement round %llu (%llu components low-confidence)\n",
                static_cast<unsigned long long>(obj.num("round")),
                static_cast<unsigned long long>(obj.num("low_confidence")));
  } else if (ev == "fleet.done") {
    std::printf("fleet: run finished (ok=%s)\n", obj.num("ok") != 0.0 ? "yes" : "NO");
  }
}

int follow(const std::string& path, std::size_t poll_ms, std::size_t idle_exit_ms) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "fd-report: cannot open %s\n", path.c_str());
    return 2;
  }
  Report rep;
  jsonl::StreamReader reader;
  jsonl::Object obj;
  std::size_t idle_ms = 0;
  char buf[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof buf, f);
    if (n > 0) {
      idle_ms = 0;
      reader.feed({buf, n});
      while (reader.next(obj)) {
        ingest_object(rep, obj);
        render_live(obj);
      }
      std::fflush(stdout);
      continue;
    }
    // At EOF for now; the writer may still be appending.
    std::clearerr(f);
    if (idle_exit_ms > 0 && idle_ms >= idle_exit_ms) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    idle_ms += poll_ms;
  }
  std::fclose(f);
  // Promote a parseable unterminated tail (writer died mid-flush).
  reader.finish();
  while (reader.next(obj)) {
    ingest_object(rep, obj);
    render_live(obj);
  }
  rep.parse_errors += reader.malformed_lines();

  std::printf("\nfd-report: %s -- %zu events", path.c_str(), rep.events);
  if (rep.parse_errors > 0) std::printf(", %zu malformed lines", rep.parse_errors);
  if (reader.had_truncated_tail()) std::printf(", truncated tail");
  std::printf("\n\n");
  print_summary(rep);
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: fd-report <telemetry.jsonl>\n"
               "       fd-report <telemetry.jsonl> --label <label>\n"
               "       fd-report <telemetry.jsonl> --follow [--poll-ms N]\n"
               "                                   [--exit-after-idle-ms N]\n"
               "       fd-report <telemetry.jsonl> --export-trace <out.json>\n");
  return 2;
}

int export_trace(const std::string& path, const std::string& out_path) {
  fd::obs::trace::ExportStats st;
  std::string err;
  if (!fd::obs::trace::export_chrome_trace(path, out_path, &err, &st)) {
    std::fprintf(stderr, "fd-report: %s\n", err.c_str());
    return 2;
  }
  std::printf("fd-report: %s -> %s\n", path.c_str(), out_path.c_str());
  std::printf("  %zu events -> %zu slices, %zu counter samples, %zu instants, %zu flow arrows\n",
              st.events_in, st.spans, st.counter_samples, st.instants, st.flow_arrows);
  std::printf("  %zu process track%s, %zu named threads\n", st.processes,
              st.processes == 1 ? "" : "s", st.thread_names);
  if (st.malformed_lines > 0) std::printf("  %zu malformed lines skipped\n", st.malformed_lines);
  if (st.orphan_spans > 0) {
    std::printf("  WARNING: %zu span%s with a missing parent (stream cut mid-run?)\n",
                st.orphan_spans, st.orphan_spans == 1 ? "" : "s");
  }
  std::printf("  open in https://ui.perfetto.dev or chrome://tracing\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string label;
  std::string export_path;
  bool follow_mode = false;
  std::size_t poll_ms = 50;
  std::size_t idle_exit_ms = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--label") {
      if (i + 1 >= argc) return usage();
      label = argv[++i];
    } else if (arg == "--export-trace") {
      if (i + 1 >= argc) return usage();
      export_path = argv[++i];
    } else if (arg == "--follow") {
      follow_mode = true;
    } else if (arg == "--poll-ms") {
      if (i + 1 >= argc) return usage();
      poll_ms = std::strtoull(argv[++i], nullptr, 0);
      if (poll_ms == 0) poll_ms = 1;
    } else if (arg == "--exit-after-idle-ms") {
      if (i + 1 >= argc) return usage();
      idle_exit_ms = std::strtoull(argv[++i], nullptr, 0);
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();
  if (!export_path.empty()) return export_trace(path, export_path);
  if (follow_mode) return follow(path, poll_ms, idle_exit_ms);

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "fd-report: cannot open %s\n", path.c_str());
    return 2;
  }
  Report rep;
  std::string line;
  int ch;
  while ((ch = std::fgetc(f)) != EOF) {
    if (ch == '\n') {
      ingest_line(rep, line);
      line.clear();
    } else {
      line.push_back(static_cast<char>(ch));
    }
  }
  if (!line.empty()) ingest_line(rep, line);
  std::fclose(f);

  if (!label.empty()) return print_curve(rep, label);

  std::printf("fd-report: %s -- %zu events", path.c_str(), rep.events);
  if (rep.parse_errors > 0) std::printf(", %zu malformed lines", rep.parse_errors);
  std::printf("\n\n");
  print_summary(rep);
  return 0;
}
