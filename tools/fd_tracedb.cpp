// fd-tracedb: offline tooling for .fdtrace archives.
//
//   fd-tracedb info <archive> [--json]        header + record census
//   fd-tracedb verify <archive> [--json]      CRC walk; exit 1 on damage
//   fd-tracedb repair <in> <out> [--json]     salvage CRC-valid chunks
//   fd-tracedb merge <out> <in1> <in2> [...]  join shards into one archive
//   fd-tracedb split <in> <out-prefix> <k>    cut into k query-range shards
//   fd-tracedb export-csv <archive> [slot [max_records]]
//
// --json replaces the human output of info/verify with one flat JSON
// object on stdout (the telemetry JSONL dialect), for scripting and CI.
//
// Links only fd_tracestore: the tool runs anywhere the capture rig does
// not (analysis boxes, CI), which is the point of a persistent format.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "obs/jsonl.h"
#include "tracestore/archive.h"

using namespace fd::tracestore;
namespace jsonl = fd::obs::jsonl;

namespace {

// Tiny flat-JSON object writer over the canonical jsonl helpers.
class JsonOut {
 public:
  JsonOut& field(std::string_view key, double v) {
    key_(key);
    jsonl::append_number(buf_, v);
    return *this;
  }
  // Integral values route through double explicitly; without this, a
  // size_t argument is ambiguous between the double and bool overloads.
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  JsonOut& field(std::string_view key, T v) {
    return field(key, static_cast<double>(v));
  }
  JsonOut& field(std::string_view key, std::string_view v) {
    key_(key);
    buf_ += '"';
    buf_ += jsonl::escape(v);
    buf_ += '"';
    return *this;
  }
  JsonOut& field(std::string_view key, const char* v) {
    return field(key, std::string_view(v));
  }
  JsonOut& field(std::string_view key, bool v) {
    key_(key);
    buf_ += v ? "true" : "false";
    return *this;
  }
  JsonOut& field(std::string_view key, std::span<const std::size_t> values) {
    key_(key);
    buf_ += '[';
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i != 0) buf_ += ',';
      jsonl::append_number(buf_, static_cast<double>(values[i]));
    }
    buf_ += ']';
    return *this;
  }
  void print() { std::printf("{%s}\n", buf_.c_str()); }

 private:
  void key_(std::string_view key) {
    if (!buf_.empty()) buf_ += ',';
    buf_ += '"';
    buf_ += jsonl::escape(key);
    buf_ += "\":";
  }
  std::string buf_;
};

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llX", static_cast<unsigned long long>(v));
  return buf;
}

void print_meta(const ArchiveMeta& m) {
  std::printf("format version     %u\n", m.version);
  std::printf("logn               %u (n = %u)\n", m.logn, 1U << m.logn);
  std::printf("basis row          %u (%s)\n", m.row, m.row == 0 ? "f-row" : "F-row");
  std::printf("complex slots      %u\n", m.num_slots);
  std::printf("samples per trace  %u\n", m.samples_per_trace);
  std::printf("traces per chunk   %u\n", m.traces_per_chunk);
  std::printf("device             alpha=%g sigma=%g spe=%u jitter=%u%s\n", m.alpha,
              m.noise_sigma, m.samples_per_event, m.jitter_max,
              (m.flags & kFlagConstantWeight) != 0 ? " constant-weight" : "");
  std::printf("capture seed       0x%llX%s\n", static_cast<unsigned long long>(m.seed),
              (m.flags & kFlagMerged) != 0 ? " (merged shards)" : "");
}

int cmd_info(const std::string& path, bool json) {
  ArchiveReader reader;
  if (!reader.open(path)) {
    std::fprintf(stderr, "fd-tracedb: %s\n", reader.error().c_str());
    return 2;
  }
  TraceRecord rec;
  std::size_t per_slot_min = SIZE_MAX;
  std::size_t per_slot_max = 0;
  std::vector<std::size_t> per_slot(reader.meta().num_slots, 0);
  while (reader.next(rec)) {
    if (rec.slot < per_slot.size()) ++per_slot[rec.slot];
  }
  for (const std::size_t c : per_slot) {
    per_slot_min = std::min(per_slot_min, c);
    per_slot_max = std::max(per_slot_max, c);
  }
  if (per_slot.empty()) per_slot_min = 0;
  const auto& m = reader.meta();
  const auto& st = reader.stats();
  if (json) {
    JsonOut out;
    out.field("archive", path)
        .field("version", m.version)
        .field("logn", m.logn)
        .field("n", 1U << m.logn)
        .field("row", m.row)
        .field("num_slots", m.num_slots)
        .field("samples_per_trace", m.samples_per_trace)
        .field("traces_per_chunk", m.traces_per_chunk)
        .field("alpha", m.alpha)
        .field("noise_sigma", m.noise_sigma)
        .field("samples_per_event", m.samples_per_event)
        .field("jitter_max", m.jitter_max)
        .field("constant_weight", (m.flags & kFlagConstantWeight) != 0)
        .field("merged", (m.flags & kFlagMerged) != 0)
        .field("seed", hex64(m.seed))  // string: a 64-bit seed can exceed 2^53
        .field("records", st.records_read)
        .field("per_slot_min", per_slot_min)
        .field("per_slot_max", per_slot_max)
        .field("chunks_ok", st.chunks_ok)
        .field("chunks_corrupt", st.chunks_corrupt)
        .field("corrupt_chunks", std::span<const std::size_t>(st.corrupt_chunk_indices))
        .field("truncated_tail", st.truncated_tail);
    out.print();
    return 0;
  }
  print_meta(m);
  std::printf("records            %zu (%zu..%zu per slot)\n", st.records_read, per_slot_min,
              per_slot_max);
  std::printf("chunks             %zu ok, %zu corrupt%s\n", st.chunks_ok, st.chunks_corrupt,
              st.truncated_tail ? ", truncated tail" : "");
  return 0;
}

int cmd_verify(const std::string& path, bool json) {
  VerifyReport report;
  std::string error;
  if (!verify_archive(path, report, &error)) {
    if (json) {
      JsonOut out;
      out.field("archive", path).field("ok", false).field("error", error);
      out.print();
    } else {
      std::fprintf(stderr, "fd-tracedb: %s\n", error.c_str());
    }
    return 2;
  }
  if (json) {
    JsonOut out;
    out.field("archive", path)
        .field("ok", true)
        .field("clean", report.clean())
        .field("records", report.records)
        .field("chunks_ok", report.chunks_ok)
        .field("chunks_corrupt", report.chunks_corrupt)
        .field("corrupt_chunks", std::span<const std::size_t>(report.corrupt_chunks))
        .field("truncated_tail", report.truncated_tail);
    out.print();
    return report.clean() ? 0 : 1;
  }
  std::printf("%s: %zu records in %zu chunks", path.c_str(), report.records,
              report.chunks_ok + report.chunks_corrupt);
  if (report.clean()) {
    std::printf(" -- OK\n");
    return 0;
  }
  std::printf(" -- DAMAGED (%zu corrupt chunk%s%s)\n", report.chunks_corrupt,
              report.chunks_corrupt == 1 ? "" : "s",
              report.truncated_tail ? ", truncated tail" : "");
  for (const std::size_t c : report.corrupt_chunks) {
    std::printf("  corrupt chunk #%zu (CRC mismatch)\n", c);
  }
  return 1;
}

int cmd_repair(const std::string& in, const std::string& out_path, bool json) {
  RepairReport report;
  std::string error;
  if (!repair_archive(in, out_path, report, &error)) {
    if (json) {
      JsonOut out;
      out.field("archive", in).field("ok", false).field("error", error);
      out.print();
    } else {
      std::fprintf(stderr, "fd-tracedb: repair failed: %s\n", error.c_str());
    }
    return 2;
  }
  if (json) {
    JsonOut out;
    out.field("archive", in)
        .field("repaired", out_path)
        .field("ok", true)
        .field("records_kept", report.records_kept)
        .field("chunks_kept", report.chunks_kept)
        .field("chunks_dropped", report.chunks_dropped)
        .field("dropped_chunks", std::span<const std::size_t>(report.dropped_chunks))
        .field("dropped_records",
               std::span<const std::size_t>(report.dropped_record_ordinals))
        .field("truncated_tail", report.truncated_tail);
    out.print();
    return report.chunks_dropped == 0 && !report.truncated_tail ? 0 : 1;
  }
  std::printf("repaired %s -> %s: kept %zu records (%zu chunks), dropped %zu chunk%s%s\n",
              in.c_str(), out_path.c_str(), report.records_kept, report.chunks_kept,
              report.chunks_dropped, report.chunks_dropped == 1 ? "" : "s",
              report.truncated_tail ? ", truncated tail" : "");
  for (const std::size_t o : report.dropped_chunks) {
    std::printf("  dropped chunk #%zu (CRC mismatch)\n", o);
  }
  if (!report.dropped_record_ordinals.empty()) {
    std::printf("  dropped record ordinals:");
    for (const std::size_t r : report.dropped_record_ordinals) std::printf(" %zu", r);
    std::printf("\n");
  }
  return report.chunks_dropped == 0 && !report.truncated_tail ? 0 : 1;
}

int cmd_merge(const std::string& out, std::span<const std::string> inputs) {
  std::string error;
  if (!merge_archives(inputs, out, &error)) {
    std::fprintf(stderr, "fd-tracedb: merge failed: %s\n", error.c_str());
    return 2;
  }
  VerifyReport report;
  if (!verify_archive(out, report, &error)) {
    std::fprintf(stderr, "fd-tracedb: merged archive unreadable: %s\n", error.c_str());
    return 2;
  }
  std::printf("merged %zu input%s -> %s (%zu records)\n", inputs.size(),
              inputs.size() == 1 ? "" : "s", out.c_str(), report.records);
  return 0;
}

int cmd_split(const std::string& in, const std::string& prefix, std::size_t k) {
  std::string error;
  std::vector<std::string> paths;
  if (!split_archive(in, prefix, k, &paths, &error)) {
    std::fprintf(stderr, "fd-tracedb: split failed: %s\n", error.c_str());
    return 2;
  }
  std::size_t records = 0;
  for (const auto& p : paths) {
    VerifyReport report;
    if (!verify_archive(p, report, &error)) {
      std::fprintf(stderr, "fd-tracedb: shard unreadable: %s: %s\n", p.c_str(), error.c_str());
      return 2;
    }
    records += report.records;
  }
  std::printf("split %s -> %zu shard%s at %s.shard* (%zu records)\n", in.c_str(), paths.size(),
              paths.size() == 1 ? "" : "s", prefix.c_str(), records);
  return 0;
}

int cmd_export_csv(const std::string& path, long slot, std::size_t max_records) {
  ArchiveReader reader;
  if (!reader.open(path)) {
    std::fprintf(stderr, "fd-tracedb: %s\n", reader.error().c_str());
    return 2;
  }
  std::printf("slot,index,known_re_bits,known_im_bits");
  for (std::uint32_t s = 0; s < reader.meta().samples_per_trace; ++s) {
    std::printf(",s%u", s);
  }
  std::printf("\n");
  TraceRecord rec;
  std::size_t emitted = 0;
  while (emitted < max_records && reader.next(rec)) {
    if (slot >= 0 && rec.slot != static_cast<std::uint32_t>(slot)) continue;
    std::printf("%u,%u,0x%016llX,0x%016llX", rec.slot, rec.index,
                static_cast<unsigned long long>(rec.known_re_bits),
                static_cast<unsigned long long>(rec.known_im_bits));
    for (const float v : rec.samples) std::printf(",%.9g", v);
    std::printf("\n");
    ++emitted;
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: fd-tracedb info <archive> [--json]\n"
               "       fd-tracedb verify <archive> [--json]\n"
               "       fd-tracedb repair <in> <out> [--json]\n"
               "       fd-tracedb merge <out> <in1> <in2> [...]\n"
               "       fd-tracedb split <in> <out-prefix> <k>\n"
               "       fd-tracedb export-csv <archive> [slot [max_records]]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --json wherever it appears; positional arguments keep their order.
  bool json = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") {
      json = true;
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.size() < 2) return usage();
  const std::string& cmd = args[0];
  if (cmd == "info") return cmd_info(args[1], json);
  if (cmd == "verify") return cmd_verify(args[1], json);
  if (cmd == "repair") {
    if (args.size() < 3) return usage();
    return cmd_repair(args[1], args[2], json);
  }
  if (cmd == "merge") {
    if (args.size() < 3) return usage();
    const std::vector<std::string> inputs(args.begin() + 2, args.end());
    return cmd_merge(args[1], inputs);
  }
  if (cmd == "split") {
    if (args.size() < 4) return usage();
    const long long k = std::atoll(args[3].c_str());
    if (k <= 0) return usage();
    return cmd_split(args[1], args[2], static_cast<std::size_t>(k));
  }
  if (cmd == "export-csv") {
    const long slot = args.size() > 2 ? std::atol(args[2].c_str()) : -1;
    const std::size_t max_records =
        args.size() > 3 ? static_cast<std::size_t>(std::atoll(args[3].c_str())) : SIZE_MAX;
    return cmd_export_csv(args[1], slot, max_records);
  }
  return usage();
}
