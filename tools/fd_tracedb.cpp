// fd-tracedb: offline tooling for .fdtrace archives.
//
//   fd-tracedb info <archive>                 header + record census
//   fd-tracedb verify <archive>               CRC walk; exit 1 on damage
//   fd-tracedb merge <out> <in1> <in2> [...]  join shards into one archive
//   fd-tracedb export-csv <archive> [slot [max_records]]
//
// Links only fd_tracestore: the tool runs anywhere the capture rig does
// not (analysis boxes, CI), which is the point of a persistent format.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "tracestore/archive.h"

using namespace fd::tracestore;

namespace {

void print_meta(const ArchiveMeta& m) {
  std::printf("format version     %u\n", m.version);
  std::printf("logn               %u (n = %u)\n", m.logn, 1U << m.logn);
  std::printf("basis row          %u (%s)\n", m.row, m.row == 0 ? "f-row" : "F-row");
  std::printf("complex slots      %u\n", m.num_slots);
  std::printf("samples per trace  %u\n", m.samples_per_trace);
  std::printf("traces per chunk   %u\n", m.traces_per_chunk);
  std::printf("device             alpha=%g sigma=%g spe=%u jitter=%u%s\n", m.alpha,
              m.noise_sigma, m.samples_per_event, m.jitter_max,
              (m.flags & kFlagConstantWeight) != 0 ? " constant-weight" : "");
  std::printf("capture seed       0x%llX%s\n", static_cast<unsigned long long>(m.seed),
              (m.flags & kFlagMerged) != 0 ? " (merged shards)" : "");
}

int cmd_info(const std::string& path) {
  ArchiveReader reader;
  if (!reader.open(path)) {
    std::fprintf(stderr, "fd-tracedb: %s\n", reader.error().c_str());
    return 2;
  }
  print_meta(reader.meta());
  TraceRecord rec;
  std::size_t per_slot_min = SIZE_MAX;
  std::size_t per_slot_max = 0;
  std::vector<std::size_t> per_slot(reader.meta().num_slots, 0);
  while (reader.next(rec)) {
    if (rec.slot < per_slot.size()) ++per_slot[rec.slot];
  }
  for (const std::size_t c : per_slot) {
    per_slot_min = std::min(per_slot_min, c);
    per_slot_max = std::max(per_slot_max, c);
  }
  const auto& st = reader.stats();
  std::printf("records            %zu (%zu..%zu per slot)\n", st.records_read,
              per_slot.empty() ? 0 : per_slot_min, per_slot_max);
  std::printf("chunks             %zu ok, %zu corrupt%s\n", st.chunks_ok, st.chunks_corrupt,
              st.truncated_tail ? ", truncated tail" : "");
  return 0;
}

int cmd_verify(const std::string& path) {
  VerifyReport report;
  std::string error;
  if (!verify_archive(path, report, &error)) {
    std::fprintf(stderr, "fd-tracedb: %s\n", error.c_str());
    return 2;
  }
  std::printf("%s: %zu records in %zu chunks", path.c_str(), report.records,
              report.chunks_ok + report.chunks_corrupt);
  if (report.clean()) {
    std::printf(" -- OK\n");
    return 0;
  }
  std::printf(" -- DAMAGED (%zu corrupt chunk%s%s)\n", report.chunks_corrupt,
              report.chunks_corrupt == 1 ? "" : "s",
              report.truncated_tail ? ", truncated tail" : "");
  return 1;
}

int cmd_merge(const std::string& out, std::span<const std::string> inputs) {
  std::string error;
  if (!merge_archives(inputs, out, &error)) {
    std::fprintf(stderr, "fd-tracedb: merge failed: %s\n", error.c_str());
    return 2;
  }
  VerifyReport report;
  if (!verify_archive(out, report, &error)) {
    std::fprintf(stderr, "fd-tracedb: merged archive unreadable: %s\n", error.c_str());
    return 2;
  }
  std::printf("merged %zu input%s -> %s (%zu records)\n", inputs.size(),
              inputs.size() == 1 ? "" : "s", out.c_str(), report.records);
  return 0;
}

int cmd_export_csv(const std::string& path, long slot, std::size_t max_records) {
  ArchiveReader reader;
  if (!reader.open(path)) {
    std::fprintf(stderr, "fd-tracedb: %s\n", reader.error().c_str());
    return 2;
  }
  std::printf("slot,index,known_re_bits,known_im_bits");
  for (std::uint32_t s = 0; s < reader.meta().samples_per_trace; ++s) {
    std::printf(",s%u", s);
  }
  std::printf("\n");
  TraceRecord rec;
  std::size_t emitted = 0;
  while (emitted < max_records && reader.next(rec)) {
    if (slot >= 0 && rec.slot != static_cast<std::uint32_t>(slot)) continue;
    std::printf("%u,%u,0x%016llX,0x%016llX", rec.slot, rec.index,
                static_cast<unsigned long long>(rec.known_re_bits),
                static_cast<unsigned long long>(rec.known_im_bits));
    for (const float v : rec.samples) std::printf(",%.9g", v);
    std::printf("\n");
    ++emitted;
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: fd-tracedb info <archive>\n"
               "       fd-tracedb verify <archive>\n"
               "       fd-tracedb merge <out> <in1> <in2> [...]\n"
               "       fd-tracedb export-csv <archive> [slot [max_records]]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  if (cmd == "info") return cmd_info(argv[2]);
  if (cmd == "verify") return cmd_verify(argv[2]);
  if (cmd == "merge") {
    if (argc < 4) return usage();
    const std::vector<std::string> inputs(argv + 3, argv + argc);
    return cmd_merge(argv[2], inputs);
  }
  if (cmd == "export-csv") {
    const long slot = argc > 3 ? std::atol(argv[3]) : -1;
    const std::size_t max_records =
        argc > 4 ? static_cast<std::size_t>(std::atoll(argv[4])) : SIZE_MAX;
    return cmd_export_csv(argv[2], slot, max_records);
  }
  return usage();
}
