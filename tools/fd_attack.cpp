// fd-attack: end-to-end key recovery from the command line.
//
//   fd-attack recover [--logn N] [--traces N] [--threads N] [--shards N]
//                     [--sigma F] [--seed 0xN] [--archive PATH]
//                     [--keep-archive] [--json] [--batch N] [--single-pass 0|1]
//                     [--fault-plan SPEC] [--adaptive] [--checkpoint]
//                     [--resume] [--checkpoint-every N]
//
// Runs the staged recovery pipeline (sharded capture -> parallel
// per-component attack -> assemble -> NTRU solve + forgery) against a
// freshly generated victim key. The result is a pure function of
// (--logn, --traces, --shards, --sigma, --seed): --threads changes wall
// time only (see DESIGN.md section 9), which makes this binary the
// canonical way to drive the attack at every core count. Exit 0 iff the
// forged signature verifies under the victim's public key.
//
// Performance (DESIGN.md section 11): --batch sets the CPA kernel's
// trace batch (1 = the naive per-trace reference fold; batch changes
// correlations only at the ULP level but is part of the experiment
// hash); --single-pass 0 falls back to one archive scan per component
// instead of the default one-scan-per-round demux.
//
// Robustness (DESIGN.md section 10): --fault-plan injects the
// deterministic rig-failure plan of sca/faults.h (and arms the trace
// quality gate plus adaptive re-measurement, since a faulted capture is
// what they exist for); --adaptive turns on confidence gating alone;
// --checkpoint persists .fdckpt progress beside the archive and
// --resume picks a killed run back up bit-identically. SIGTERM/SIGINT
// stop the run at the next batch boundary after writing a final
// checkpoint (exit 130); a second signal exits immediately.
//
// Fleet mode (DESIGN.md section 12): --fleet N shards the same
// experiment across N `fd-attack --worker` subprocesses; the recovered
// key is bit-identical to the single-process run at any N. --telemetry
// writes the unified obs JSONL stream (worker lines tagged with
// "worker":id) that `fd-report --follow` tails live. `--worker` is the
// internal subprocess entry: the protocol runs on stdin/stdout and
// nothing else may print there.

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>

#include "attack/recovery_pipeline.h"
#include "common/rng.h"
#include "falcon/falcon.h"
#include "fleet/coordinator.h"
#include "fleet/worker.h"
#include "obs/jsonl.h"
#include "obs/profile.h"
#include "obs/sink.h"

using namespace fd;
namespace jsonl = fd::obs::jsonl;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: fd-attack recover [--logn N] [--traces N] [--threads N]\n"
               "                         [--shards N] [--sigma F] [--seed 0xN]\n"
               "                         [--archive PATH] [--keep-archive] [--json]\n"
               "                         [--batch N] [--single-pass 0|1]\n"
               "                         [--fault-plan SPEC] [--adaptive] [--checkpoint]\n"
               "                         [--resume] [--checkpoint-every N]\n"
               "                         [--fleet N] [--telemetry PATH]\n"
               "  SPEC: comma-separated key=value, e.g.\n"
               "        drop=0.1,desync=0.05,sat=0.02,glitch=0.01,chunk=0.02,fail=0.25\n");
  return 2;
}

// SIGTERM/SIGINT: first signal asks the pipeline to stop at the next
// batch boundary (final checkpoint + pipeline.interrupted event); a
// second signal means "now" and exits without cleanup.
volatile std::sig_atomic_t g_interrupted = 0;

extern "C" void handle_interrupt(int) {
  if (g_interrupted != 0) _exit(130);
  g_interrupted = 1;
}

// The coordinator re-execs this binary as its worker; /proc/self/exe is
// exact even when argv[0] came from PATH lookup.
std::string self_binary(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) return std::string(buf, static_cast<std::size_t>(n));
  return argv0;
}

struct Options {
  unsigned logn = 5;
  std::size_t traces = 900;
  std::size_t threads = 1;
  std::size_t shards = 1;
  double sigma = 2.0;
  std::uint64_t seed = 0xDE40;
  std::string archive = "fd_attack_campaign.fdtrace";
  bool keep_archive = false;
  bool json = false;
  std::size_t batch = attack::kDefaultCpaBatch;
  bool single_pass = true;
  std::string fault_plan;
  bool adaptive = false;
  bool checkpoint = false;
  bool resume = false;
  std::size_t checkpoint_every = 8;
  std::size_t fleet = 0;  // 0 = single-process pipeline
  std::string telemetry;
};

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--keep-archive") {
      opt.keep_archive = true;
    } else if (arg == "--logn") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.logn = static_cast<unsigned>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--traces") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.traces = std::strtoull(v, nullptr, 0);
    } else if (arg == "--threads") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.threads = std::strtoull(v, nullptr, 0);
    } else if (arg == "--shards") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.shards = std::strtoull(v, nullptr, 0);
    } else if (arg == "--sigma") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.sigma = std::strtod(v, nullptr);
    } else if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--archive") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.archive = v;
    } else if (arg == "--batch") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.batch = std::strtoull(v, nullptr, 0);
    } else if (arg == "--single-pass") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.single_pass = std::strtoul(v, nullptr, 0) != 0;
    } else if (arg == "--fault-plan") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.fault_plan = v;
    } else if (arg == "--adaptive") {
      opt.adaptive = true;
    } else if (arg == "--checkpoint") {
      opt.checkpoint = true;
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (arg == "--checkpoint-every") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.checkpoint_every = std::strtoull(v, nullptr, 0);
    } else if (arg == "--fleet") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.fleet = std::strtoull(v, nullptr, 0);
      if (opt.fleet == 0) return false;
    } else if (arg == "--telemetry") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.telemetry = v;
    } else {
      std::fprintf(stderr, "fd-attack: unknown option '%s'\n", std::string(arg).c_str());
      return false;
    }
  }
  return opt.logn >= 1 && opt.logn <= 10 && opt.traces > 0 && opt.threads > 0 &&
         opt.shards > 0 && opt.batch > 0;
}

// Fleet mode: same experiment, N worker subprocesses, same key.
int run_fleet_main(const Options& opt, const attack::RecoveryPipelineConfig& cfg,
                   const char* argv0) {
  fleet::FleetConfig fc;
  fc.pipeline = cfg;
  fc.logn = opt.logn;
  fc.workers = opt.fleet;
  // Matching the shard size to the pipeline's checkpoint cadence keeps
  // attack.archive.scans identical to a checkpointed single-process run.
  fc.components_per_shard = opt.checkpoint_every;
  fc.worker_binary = self_binary(argv0);
  fc.telemetry_path = opt.telemetry;

  if (!opt.json) {
    std::printf("fd-attack: fleet of %zu worker%s, %zu traces, %zu thread%s per worker\n",
                opt.fleet, opt.fleet == 1 ? "" : "s", opt.traces, opt.threads,
                opt.threads == 1 ? "" : "s");
  }
  const auto res = fleet::run_fleet(fc);
  if (!res.ok) {
    std::fprintf(stderr, "fd-attack: %s\n", res.error.c_str());
    return 2;
  }
  if (opt.json) {
    std::string buf;
    const auto field = [&](std::string_view key, const std::string& v) {
      if (!buf.empty()) buf += ',';
      buf += '"';
      buf += jsonl::escape(key);
      buf += "\":";
      buf += v;
    };
    field("workers", std::to_string(opt.fleet));
    field("records", std::to_string(res.captured_records));
    field("components_correct", std::to_string(res.recovery.components_correct));
    field("components_total", std::to_string(res.recovery.components_total));
    field("f_exact", res.recovery.f_exact ? "true" : "false");
    field("workers_spawned", std::to_string(res.workers_spawned));
    field("worker_deaths", std::to_string(res.worker_deaths));
    field("reassignments", std::to_string(res.reassignments));
    field("attack_shards", std::to_string(res.attack_shards));
    field("remeasure_rounds", std::to_string(res.remeasure_rounds));
    field("partial", res.partial ? "true" : "false");
    field("forgery_verified", res.recovery.forgery_verified ? "true" : "false");
    std::printf("{%s}\n", buf.c_str());
  } else {
    for (const auto& stage : res.stages) {
      std::printf("  stage %-9s %s (%.1f ms)\n", stage.name.c_str(),
                  stage.ran ? "done" : "skipped", stage.wall_ms);
    }
    std::printf("captured records: %zu\n", res.captured_records);
    std::printf("fleet: %zu spawned, %zu died, %zu reassignment%s, %zu attack shard%s\n",
                res.workers_spawned, res.worker_deaths, res.reassignments,
                res.reassignments == 1 ? "" : "s", res.attack_shards,
                res.attack_shards == 1 ? "" : "s");
    if (res.partial) {
      std::printf("PARTIAL: %zu component%s flagged\n", res.flagged_components.size(),
                  res.flagged_components.size() == 1 ? "" : "s");
    }
    std::printf("components recovered exactly: %zu / %zu\n", res.recovery.components_correct,
                res.recovery.components_total);
    std::printf("f recovered exactly: %s\n", res.recovery.f_exact ? "YES" : "no");
    std::printf("forged signature verified by victim's PUBLIC key: %s\n",
                res.recovery.forgery_verified ? "YES -- key fully compromised" : "no");
  }
  return res.recovery.forgery_verified ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string_view(argv[1]) == "--worker") {
    // Subprocess entry: the frame protocol owns stdin/stdout.
    return fleet::run_worker(STDIN_FILENO, STDOUT_FILENO);
  }
  if (argc < 2 || std::string_view(argv[1]) != "recover") return usage();
  Options opt;
  if (!parse(argc, argv, opt)) return usage();

  std::signal(SIGINT, handle_interrupt);
  std::signal(SIGTERM, handle_interrupt);

  ChaCha20Prng rng("victim key seed");
  const auto victim = falcon::keygen(opt.logn, rng);

  attack::RecoveryPipelineConfig cfg;
  cfg.attack.num_traces = opt.traces;
  cfg.attack.device.noise_sigma = opt.sigma;
  cfg.attack.seed = opt.seed;
  cfg.attack.threads = opt.threads;
  cfg.attack.cpa_batch = opt.batch;
  cfg.single_pass = opt.single_pass;
  cfg.capture_shards = opt.shards;
  cfg.archive_path = opt.archive;
  cfg.keep_archive = opt.keep_archive;
  if (!opt.fault_plan.empty()) {
    std::string err;
    if (!sca::parse_fault_plan(opt.fault_plan, cfg.faults, &err)) {
      std::fprintf(stderr, "fd-attack: %s\n", err.c_str());
      return 2;
    }
    // A faulted rig is exactly what the gate and the re-measurement
    // controller exist for; arm both alongside the plan.
    cfg.quality.enabled = true;
    cfg.adaptive = true;
  }
  if (opt.adaptive) cfg.adaptive = true;
  cfg.checkpoint = opt.checkpoint;
  cfg.resume = opt.resume;
  cfg.checkpoint_every = opt.checkpoint_every;
  cfg.interrupt_flag = &g_interrupted;

  if (opt.fleet > 0) return run_fleet_main(opt, cfg, argv[0]);

  // Single-process telemetry: same JSONL stream the fleet coordinator
  // writes, so fd-report works identically against either mode.
  std::unique_ptr<obs::JsonLinesSink> telemetry_sink;
  std::unique_ptr<obs::ResourceSampler> sampler;
  if (!opt.telemetry.empty()) {
    telemetry_sink = std::make_unique<obs::JsonLinesSink>(opt.telemetry);
    obs::set_sink(telemetry_sink.get());
    obs::set_thread_name("fd-attack");
    sampler = std::make_unique<obs::ResourceSampler>();
  }

  if (!opt.json) {
    std::printf("fd-attack: FALCON-%zu victim, %zu traces, %zu shard%s, %zu thread%s\n",
                victim.pk.params.n, opt.traces, opt.shards, opt.shards == 1 ? "" : "s",
                opt.threads, opt.threads == 1 ? "" : "s");
  }
  const auto res = attack::run_recovery_pipeline(victim, cfg);
  if (res.interrupted) {
    // The final checkpoint is already on disk (atomic write-then-rename
    // happens before pipeline.interrupted is emitted).
    std::fprintf(stderr, "fd-attack: interrupted -- progress saved to %s; rerun with --resume\n",
                 res.checkpoint_path.c_str());
    return 130;
  }
  if (!res.ok) {
    std::fprintf(stderr, "fd-attack: %s\n", res.error.c_str());
    for (const auto& stage : res.stages) {
      std::fprintf(stderr, "  stage %-9s %s\n", stage.name.c_str(),
                   !stage.ran ? "skipped" : (stage.ok ? "done" : stage.error.c_str()));
    }
    if (cfg.checkpoint || cfg.resume) {
      std::fprintf(stderr, "fd-attack: progress kept in %s -- rerun with --resume\n",
                   res.checkpoint_path.c_str());
    }
    return 2;
  }

  if (opt.json) {
    std::string buf;
    const auto field = [&](std::string_view key, const std::string& v, bool quote) {
      if (!buf.empty()) buf += ',';
      buf += '"';
      buf += jsonl::escape(key);
      buf += "\":";
      if (quote) buf += '"';
      buf += v;
      if (quote) buf += '"';
    };
    field("n", std::to_string(victim.pk.params.n), false);
    field("traces", std::to_string(opt.traces), false);
    field("shards", std::to_string(opt.shards), false);
    field("threads", std::to_string(opt.threads), false);
    field("cpa_batch", std::to_string(opt.batch), false);
    field("single_pass", opt.single_pass ? "true" : "false", false);
    field("records", std::to_string(res.captured_records), false);
    field("components_correct", std::to_string(res.recovery.components_correct), false);
    field("components_total", std::to_string(res.recovery.components_total), false);
    field("f_exact", res.recovery.f_exact ? "true" : "false", false);
    field("quality_screened", std::to_string(res.quality.total), false);
    field("quality_accepted", std::to_string(res.quality.accepted), false);
    field("quality_rejected_saturated", std::to_string(res.quality.rejected_saturated), false);
    field("quality_rejected_energy", std::to_string(res.quality.rejected_energy), false);
    field("quality_rejected_alignment", std::to_string(res.quality.rejected_alignment), false);
    field("quality_realigned", std::to_string(res.quality.realigned), false);
    field("capture_attempts", std::to_string(res.capture_attempts), false);
    field("remeasure_rounds", std::to_string(res.remeasure_rounds), false);
    field("flagged_components", std::to_string(res.flagged_components.size()), false);
    field("partial", res.partial ? "true" : "false", false);
    field("resumed", res.resumed ? "true" : "false", false);
    field("ntru_solved", res.recovery.ntru_solved ? "true" : "false", false);
    field("forgery_verified", res.recovery.forgery_verified ? "true" : "false", false);
    for (const auto& stage : res.stages) {
      std::string ms;
      jsonl::append_number(ms, stage.wall_ms);
      field("stage_" + stage.name + "_ms", ms, false);
    }
    std::printf("{%s}\n", buf.c_str());
  } else {
    for (const auto& stage : res.stages) {
      std::printf("  stage %-8s %s (%.1f ms)\n", stage.name.c_str(),
                  stage.ran ? "done" : "skipped", stage.wall_ms);
    }
    std::printf("captured records: %zu\n", res.captured_records);
    if (res.quality.total > 0) {
      std::printf("quality gate: %zu/%zu traces accepted (%zu saturated, %zu energy, "
                  "%zu misaligned rejected; %zu realigned)\n",
                  res.quality.accepted, res.quality.total, res.quality.rejected_saturated,
                  res.quality.rejected_energy, res.quality.rejected_alignment,
                  res.quality.realigned);
    }
    if (res.resumed) std::printf("resumed from checkpoint: %s\n", res.checkpoint_path.c_str());
    if (res.remeasure_rounds > 0 || res.capture_attempts > 1) {
      std::printf("adaptive re-measurement: %zu extra round%s, %zu capture attempt%s\n",
                  res.remeasure_rounds, res.remeasure_rounds == 1 ? "" : "s",
                  res.capture_attempts, res.capture_attempts == 1 ? "" : "s");
    }
    if (res.partial) {
      std::printf("PARTIAL: %zu component%s below the confidence bar at budget end\n",
                  res.flagged_components.size(), res.flagged_components.size() == 1 ? "" : "s");
    }
    std::printf("components recovered exactly: %zu / %zu\n", res.recovery.components_correct,
                res.recovery.components_total);
    std::printf("f recovered exactly: %s\n", res.recovery.f_exact ? "YES" : "no");
    std::printf("NTRU equation re-solved: %s\n", res.recovery.ntru_solved ? "YES" : "no");
    std::printf("forged signature verified by victim's PUBLIC key: %s\n",
                res.recovery.forgery_verified ? "YES -- key fully compromised" : "no");
  }
  return res.recovery.forgery_verified ? 0 : 1;
}
