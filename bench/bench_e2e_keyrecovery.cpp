// End-to-end reproduction of Section IV's conclusion: extract the entire
// signing key from EM traces of the signing operation, then forge
// signatures on arbitrary messages.
//
// Runs the complete pipeline (trace campaign over real signing queries,
// extend-and-prune on every FFT(f) component, invFFT + rounding,
// g = h*f mod q, NTRUSolve, forge, verify with the public key) at
// several ring sizes -- the per-coefficient attack is identical at every
// n; the paper makes the same argument for FALCON-512 vs -1024.

#include <chrono>
#include <cstdio>

#include "attack/key_recovery.h"
#include "bench_harness.h"
#include "common/rng.h"
#include "falcon/falcon.h"

using namespace fd;

int main(int argc, char** argv) {
  bench::Harness harness("e2e_keyrecovery", argc, argv);
  std::printf("== End-to-end key recovery + forgery ==\n\n");
  std::printf("%6s %8s %10s %12s %8s %8s %8s %10s\n", "n", "traces", "components",
              "recovered", "f-exact", "NTRU", "forged", "seconds");

  bool all_ok = true;
  for (const unsigned logn : {3U, 4U, 5U, 6U}) {
    ChaCha20Prng rng(0xE2E0 + logn);
    const auto victim = falcon::keygen(logn, rng);

    attack::KeyRecoveryConfig cfg;
    cfg.num_traces = 900;
    cfg.device.noise_sigma = 2.0;
    cfg.adversarial_random = 120;
    cfg.seed = 0xE2E0 + logn;

    const auto t0 = std::chrono::steady_clock::now();
    const auto res = attack::recover_key(victim, cfg);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    std::printf("%6zu %8zu %10zu %9zu/%-2zu %8s %8s %8s %10.2f\n", victim.pk.params.n,
                cfg.num_traces, res.components_total, res.components_correct,
                res.components_total, res.f_exact ? "YES" : "no",
                res.ntru_solved ? "YES" : "no", res.forgery_verified ? "YES" : "no", secs);
    char params[96];
    std::snprintf(params, sizeof params, "n=%zu traces=%zu noise=%.0f", victim.pk.params.n,
                  cfg.num_traces, cfg.device.noise_sigma);
    harness.report("recover_key", params, secs * 1e3,
                   static_cast<double>(res.components_total) / secs, "components/s");
    all_ok = all_ok && res.forgery_verified;
  }
  std::printf("\npaper: 'the adversary can recover the entire secret key and\n"
              "successfully sign arbitrary messages' -- reproduced: %s\n",
              all_ok ? "YES" : "NO");
  return all_ok ? 0 : 1;
}
