// Section V.C: "NTT vs FFT -- a side-channel perspective". The paper
// conjectures that NTT-based schemes leak harder than FALCON's FFT
// because modular reduction adds non-linearity that separates wrong
// guesses faster. This bench runs the comparison quantitatively on the
// same device model:
//  - NTT side: CPA on the pointwise modmul c*s mod q of an NTT-based
//    scheme (the computation prior attacks like [19] target), guessing
//    the secret coefficient s in [0, q);
//  - FFT side: CPA on FALCON's mantissa product (extend phase) with an
//    equal-size guess set.
// Reported: measurements-to-disclosure on each, at equal noise.

#include <cstdio>
#include <bit>

#include "bench_harness.h"
#include "bench_util.h"
#include "zq/zq.h"

using namespace fd;
using namespace fd::bench;

namespace {

constexpr std::size_t kTraces = 14000;
constexpr std::size_t kStep = 100;
constexpr double kNoise = 11.0;

// NTT-side campaign: each trace leaks the product and reduction of
// s * a_d for a known uniform a_d.
struct NttTraceSet {
  std::vector<std::uint32_t> known;
  std::vector<float> prod_sample;
  std::vector<float> red_sample;
};

NttTraceSet ntt_campaign(std::uint32_t secret, std::size_t num, double noise,
                         std::uint64_t seed) {
  ChaCha20Prng rng(seed);
  sca::DeviceConfig dc;
  dc.noise_sigma = noise;
  sca::EmDeviceModel device(dc, seed ^ 0xD01CE);
  NttTraceSet set;
  set.known.reserve(num);
  for (std::size_t d = 0; d < num; ++d) {
    const auto a = static_cast<std::uint32_t>(rng.uniform(zq::kQ));
    sca::FullRecorder rec;
    {
      fpr::ScopedLeakageSink scope(&rec);
      (void)zq::mul(secret, a);
    }
    const auto tr = device.synthesize(rec.events());
    set.known.push_back(a);
    set.prod_sample.push_back(tr.samples[0]);
    set.red_sample.push_back(tr.samples[1]);
  }
  return set;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("ntt_vs_fft", argc, argv);
  char params[96];
  std::snprintf(params, sizeof params, "traces=%zu noise=%.0f", kTraces, kNoise);
  std::printf("== NTT vs FFT leakage comparison (Section V.C), sigma = %.0f ==\n\n", kNoise);

  // ---- NTT side -----------------------------------------------------------
  bench::WallTimer timer;
  const std::uint32_t ntt_secret = 6781;  // arbitrary coefficient in [0, q)
  const auto ntt = ntt_campaign(ntt_secret, kTraces, kNoise, 0x717A);

  // CPA over a guess set including the secret and structured decoys.
  const std::vector<std::uint32_t> ntt_guesses = {ntt_secret,
                                                  (2 * ntt_secret) % zq::kQ,
                                                  zq::kQ - ntt_secret,
                                                  (ntt_secret + 1) % zq::kQ,
                                                  4321};
  attack::CpaEngine ntt_eng(ntt_guesses.size(), 2);
  std::size_t ntt_mtd = 0;
  {
    std::vector<double> hyps(ntt_guesses.size());
    std::size_t streak_start = 0;
    bool in_streak = false;
    for (std::size_t t = 0; t < kTraces; ++t) {
      for (std::size_t g = 0; g < ntt_guesses.size(); ++g) {
        // Leakage of the reduced product (the post-reduction register).
        hyps[g] = std::popcount(zq::mul(ntt_guesses[g], ntt.known[t]));
      }
      const float samples[2] = {ntt.prod_sample[t], ntt.red_sample[t]};
      ntt_eng.add_trace(hyps, samples);
      if ((t + 1) % kStep == 0) {
        const double ci = attack::confidence_interval(0.9999, t + 1);
        bool leads = ntt_eng.peak(0) > ci;
        for (std::size_t g = 1; g < ntt_guesses.size() && leads; ++g) {
          leads = ntt_eng.peak(g) < ntt_eng.peak(0);
        }
        if (leads && !in_streak) {
          streak_start = t + 1;
          in_streak = true;
        } else if (!leads) {
          in_streak = false;
        }
      }
    }
    ntt_mtd = in_streak ? streak_start : 0;
  }
  std::printf("NTT pointwise modmul: secret coefficient disclosed after %zu traces\n",
              ntt_mtd);
  harness.report("ntt_side", params, timer.ms(),
                 static_cast<double>(kTraces) / timer.s(), "traces/s");

  // ---- FFT side -----------------------------------------------------------
  timer.reset();
  const fpr::Fpr secret = fpr::Fpr::from_bits(kPaperCoefficient);
  const auto split = attack::KnownOperand::from(secret);
  sca::DeviceConfig dev;
  dev.noise_sigma = kNoise;
  const auto set = synthetic_coefficient_campaign(secret, fpr::Fpr::from_double(5555.5),
                                                  kTraces, dev, 9, 0x717B);
  const auto ds = attack::build_component_dataset(set, false);

  const std::vector<std::uint32_t> fft_guesses = {split.y0, split.y0 ^ 0x00003,
                                                  split.y0 ^ 0x15A5A,
                                                  (split.y0 + 1) & fpr::kMantLowMask,
                                                  0x0A5A5A5 & fpr::kMantLowMask};
  const auto evo = correlation_evolution(
      ds, sca::window::kOffProdLL, fft_guesses.size(),
      [&](std::size_t g, const attack::KnownOperand& k) {
        return attack::hyp_low_mul_ll(fft_guesses[g], k);
      },
      kStep);
  const std::size_t fft_mtd = measurements_to_disclosure(evo, 0);
  std::printf("FFT mantissa product: low half disclosed after %zu traces\n", fft_mtd);

  // Plus the sign bit, FALCON's slowest component (the FFT attack cannot
  // finish before it).
  const auto sign_evo = correlation_evolution(
      ds, sca::window::kOffSign, 2,
      [&](std::size_t g, const attack::KnownOperand& k) {
        return attack::hyp_sign(g != 0, k);
      },
      kStep);
  const std::size_t sign_mtd = measurements_to_disclosure(sign_evo, secret.sign() ? 1 : 0);
  if (sign_mtd != 0) {
    std::printf("FFT full coefficient is gated by the sign bit: %zu traces\n\n", sign_mtd);
  } else {
    std::printf("FFT full coefficient is gated by the sign bit: > %zu traces\n\n", kTraces);
  }

  if (ntt_mtd != 0) {
    const std::size_t fft_full = sign_mtd != 0 ? std::max(fft_mtd, sign_mtd) : kTraces;
    std::printf("ratio (FFT full coefficient / NTT coefficient) %s %.1fx\n",
                sign_mtd != 0 ? "=" : ">=",
                static_cast<double>(fft_full) / static_cast<double>(ntt_mtd));
  }
  std::printf("paper's conjecture: FFT needs ~10k traces while NTT attacks succeed\n"
              "with far fewer (even single traces in [19]) -- the modular reduction's\n"
              "non-linearity separates wrong guesses faster. Shape reproduced iff the\n"
              "NTT MTD is substantially smaller.\n");
  harness.report("fft_side", params, timer.ms(),
                 static_cast<double>(kTraces) / timer.s(), "traces/s");
  return 0;
}
