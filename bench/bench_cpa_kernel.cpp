// The blocked CPA kernel vs the naive per-trace fold, and the
// single-pass multi-component archive driver vs one scan per component.
//
//   ./bench_cpa_kernel [traces] [--json out.jsonl]
//   (default: 20000 traces for the fold shapes, 240 for the archive)
//
// Fold shapes: g49/s1 is the default attack shape (the exponent phase's
// 49-guess scan over one sample column); g49/s17 folds a full fpr_mul
// window; g256/s17 is the wide-hypothesis stress shape. batch=1 is the
// exact naive per-trace reference fold (same arithmetic the engine
// always produced), batch=64 the blocked kernel -- the speedup column
// is the tentpole acceptance number (>= 2x at the default shape).
//
// The archive comparison attacks all 2N exponent components of a
// FALCON-16 campaign twice: per-component streaming (2N archive scans,
// run_cpa_streaming_many) vs the single-pass demux
// (run_cpa_streaming_multi, ONE scan). Rankings are cross-checked:
// the speedup must come with bit-identical results.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "attack/parallel_attack.h"
#include "attack/streaming_cpa.h"
#include "bench_harness.h"
#include "common/rng.h"
#include "falcon/falcon.h"
#include "obs/profile.h"
#include "sca/campaign.h"
#include "tracestore/archive.h"

using namespace fd;

namespace {

struct FoldData {
  std::size_t guesses = 0;
  std::size_t samples = 0;
  std::vector<std::vector<double>> hyps;   // [trace][guess]
  std::vector<std::vector<float>> traces;  // [trace][sample]
};

FoldData make_data(std::size_t traces, std::size_t guesses, std::size_t samples,
                   std::uint64_t seed) {
  ChaCha20Prng rng(seed);
  FoldData d;
  d.guesses = guesses;
  d.samples = samples;
  d.hyps.resize(traces);
  d.traces.resize(traces);
  for (std::size_t t = 0; t < traces; ++t) {
    d.hyps[t].resize(guesses);
    for (std::size_t g = 0; g < guesses; ++g) {
      d.hyps[t][g] = static_cast<double>(rng.next_u8() & 0x3F);
    }
    d.traces[t].resize(samples);
    for (std::size_t s = 0; s < samples; ++s) {
      d.traces[t][s] = static_cast<float>(d.hyps[t][0] + 2.0 * rng.gaussian());
    }
  }
  return d;
}

// Best-of-reps wall time of one full fold (construct, add every trace,
// flush via a correlation read). The read also keeps the optimizer
// honest.
double fold_ms(const FoldData& d, const attack::CpaKernelConfig& cfg, int reps,
               double& sink) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    bench::WallTimer timer;
    attack::CpaEngine engine(d.guesses, d.samples, cfg);
    for (std::size_t t = 0; t < d.hyps.size(); ++t) {
      engine.add_trace(d.hyps[t], d.traces[t]);
    }
    sink += engine.correlation(0, 0);
    best = std::min(best, timer.ms());
  }
  return best;
}

attack::StreamingCpaSpec exponent_spec(std::size_t slot, bool imag) {
  attack::StreamingCpaSpec spec;
  spec.slot = slot;
  spec.imag_part = imag;
  spec.sample_offsets = {sca::window::kOffExpSum};
  for (std::uint32_t e = 1005; e <= 1053; ++e) spec.guesses.push_back(e);
  spec.model = [](std::uint32_t guess, const attack::KnownOperand& k) {
    return attack::hyp_exponent(guess, k);
  };
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("cpa_kernel", argc, argv);
  // Run with the profiling thread live: the EXPERIMENTS.md tracing
  // overhead budget (<5% vs FD_OBS=OFF) is measured sampler-on, so the
  // numbers here include the cost a profiled campaign actually pays.
  // No-op struct under FD_OBS=OFF.
  const obs::ResourceSampler sampler;
  const std::size_t fold_traces =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 20000;

  // --- blocked kernel vs naive per-trace fold -----------------------------
  struct Shape {
    std::size_t guesses, samples;
  };
  const Shape shapes[] = {{49, 1}, {49, 17}, {256, 17}};
  const int reps = 5;
  double sink = 0.0;

  std::printf("CPA fold: naive (batch=1) vs blocked (batch=64), %zu traces, best of %d\n\n",
              fold_traces, reps);
  std::printf("%-12s %12s %12s %10s %14s\n", "shape", "naive_ms", "blocked_ms", "speedup",
              "Mcells/s");
  for (const auto& sh : shapes) {
    const FoldData d = make_data(fold_traces, sh.guesses, sh.samples, 0xF01D + sh.guesses);
    const double naive_ms = fold_ms(d, {.batch_traces = 1}, reps, sink);
    const double blocked_ms = fold_ms(d, {.batch_traces = 64}, reps, sink);
    const double speedup = naive_ms / blocked_ms;
    const double mcells =
        static_cast<double>(fold_traces * sh.guesses * sh.samples) / (blocked_ms * 1e3);
    const std::string label =
        "g" + std::to_string(sh.guesses) + "_s" + std::to_string(sh.samples);
    std::printf("%-12s %12.1f %12.1f %9.2fx %14.1f\n", label.c_str(), naive_ms, blocked_ms,
                speedup, mcells);
    const std::string params = "traces=" + std::to_string(fold_traces) +
                               " guesses=" + std::to_string(sh.guesses) +
                               " samples=" + std::to_string(sh.samples);
    harness.report("fold_naive_" + label, params, naive_ms);
    harness.report("fold_blocked_" + label, params, blocked_ms, speedup, "x_vs_naive");
  }

  // --- single-pass demux vs one archive scan per component ----------------
  const unsigned logn = 4;
  const std::size_t campaign_traces = 240;
  ChaCha20Prng rng("cpa kernel bench key");
  const auto kp = falcon::keygen(logn, rng);
  sca::CampaignConfig camp;
  camp.num_traces = campaign_traces;
  camp.device.noise_sigma = 2.0;
  camp.seed = 0xF01D;
  const std::string path = "bench_cpa_kernel.fdtrace";
  if (!sca::run_campaign_to_archive(kp.sk, camp, path).ok) {
    std::fprintf(stderr, "capture failed\n");
    return 2;
  }

  const std::size_t hn = kp.sk.params.n >> 1;
  std::vector<attack::StreamingCpaSpec> specs;
  for (std::size_t slot = 0; slot < hn; ++slot) {
    specs.push_back(exponent_spec(slot, false));
    specs.push_back(exponent_spec(slot, true));
  }
  const std::string params = "logn=" + std::to_string(logn) +
                             " traces=" + std::to_string(campaign_traces) +
                             " components=" + std::to_string(specs.size());

  bench::WallTimer timer;
  std::vector<attack::CpaEngine> per_component;
  std::string err;
  if (!attack::run_cpa_streaming_many(path, specs, nullptr, per_component, &err)) {
    std::fprintf(stderr, "per-component streaming failed: %s\n", err.c_str());
    return 2;
  }
  const double many_ms = timer.ms();

  tracestore::ArchiveReader reader;
  if (!reader.open(path)) {
    std::fprintf(stderr, "reopen failed: %s\n", reader.error().c_str());
    return 2;
  }
  timer.reset();
  const std::vector<attack::CpaEngine> demuxed =
      attack::run_cpa_streaming_multi(reader, specs);
  const double multi_ms = timer.ms();
  std::remove(path.c_str());

  // The speedup only counts if the results are identical.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (demuxed[i].ranking() != per_component[i].ranking()) {
      std::fprintf(stderr, "ranking mismatch on spec %zu\n", i);
      return 2;
    }
  }

  const double speedup = many_ms / multi_ms;
  std::printf("\nall-%zu-component exponent attack, FALCON-%zu, %zu traces:\n", specs.size(),
              kp.pk.params.n, campaign_traces);
  std::printf("%-22s %10.1f ms  (%zu archive scans)\n", "per_component", many_ms,
              specs.size());
  std::printf("%-22s %10.1f ms  (1 archive scan), %.2fx\n", "single_pass_demux", multi_ms,
              speedup);
  harness.report("archive_per_component", params, many_ms);
  harness.report("archive_single_pass", params, multi_ms, speedup, "x_vs_per_component");

  if (sink == 12345.0) std::printf("%f\n", sink);  // defeat dead-code elimination
  return 0;
}
