// Section V.A extension, quantified: the profiled template attack vs.
// the paper's non-profiled CPA, as a function of the trace budget.
// A clone device (attacker-chosen key) provides the profile; the attack
// then runs on the victim with a sweep of trace counts, reporting which
// components each method recovers.

#include <cstdio>

#include "attack/template_attack.h"
#include "bench_harness.h"
#include "bench_util.h"
#include "falcon/falcon.h"

using namespace fd;
using namespace fd::bench;

int main(int argc, char** argv) {
  Harness harness("template_attack", argc, argv);
  std::printf("== Profiled template attack vs non-profiled CPA (Sec. V.A) ==\n\n");

  constexpr double kNoise = 11.0;
  constexpr std::size_t kMaxTraces = 12000;
  char params[96];
  std::snprintf(params, sizeof params, "max_traces=%zu noise=%.0f", kMaxTraces, kNoise);
  WallTimer timer;

  // Profiling rig: clone device, several known coefficients (spreading
  // sign/exponent values so every template offset gets variance).
  const fpr::Fpr clone_secrets[3] = {fpr::Fpr::from_bits(0xC0E53A2F9B7C6D5EULL),
                                     fpr::Fpr::from_bits(0x40B1122334455667ULL),
                                     fpr::Fpr::from_bits(0xC07FEDCBA9876543ULL)};
  sca::DeviceConfig dev;
  dev.noise_sigma = kNoise;
  std::vector<attack::ComponentDataset> clone_dss;
  for (int i = 0; i < 3; ++i) {
    const auto clone_set = synthetic_coefficient_campaign(
        clone_secrets[i], fpr::Fpr::from_double(4242.5), 2000, dev, 9,
        0x7E41 + static_cast<std::uint64_t>(i));
    clone_dss.push_back(attack::build_component_dataset(clone_set, false));
  }
  const auto profile = attack::profile_device_multi(clone_dss, clone_secrets);
  harness.report("profile_clone", params, timer.ms());
  timer.reset();
  std::printf("profiled on a clone device: alpha=%.3f beta=%.3f sigma=%.3f (ProdLL)\n\n",
              profile.points[sca::window::kOffProdLL].alpha,
              profile.points[sca::window::kOffProdLL].beta,
              profile.points[sca::window::kOffProdLL].sigma);

  // Victim rig: the paper's coefficient.
  const fpr::Fpr secret = fpr::Fpr::from_bits(kPaperCoefficient);
  const auto split = attack::KnownOperand::from(secret);
  const auto victim_set = synthetic_coefficient_campaign(
      secret, fpr::Fpr::from_double(-31337.75), kMaxTraces, dev, 9, 0x7E42);

  attack::ComponentAttackConfig cac;
  cac.low_candidates = attack::MantissaCandidates::adversarial(split.y0, false, 150, 0x7E43);
  cac.high_candidates = attack::MantissaCandidates::adversarial(split.y1, true, 150, 0x7E44);

  std::printf("%-8s | %-28s | %-28s\n", "traces", "template (sign exp x0 x1)",
              "CPA      (sign exp x0 x1)");
  std::size_t template_full = 0;
  std::size_t cpa_full = 0;
  for (const std::size_t d : {250UL, 500UL, 1000UL, 2000UL, 4000UL, 8000UL, 12000UL}) {
    const auto ds = attack::build_component_dataset(victim_set, false, d);

    const auto tmpl = attack::template_attack_component(ds, profile, cac);
    const bool t_ok[4] = {tmpl.sign == secret.sign(),
                          tmpl.exponent == secret.biased_exponent(), tmpl.x0 == split.y0,
                          tmpl.x1 == split.y1};

    const auto cpa = attack::attack_component(ds, cac);
    const bool c_ok[4] = {cpa.sign == secret.sign(),
                          cpa.exponent == secret.biased_exponent(), cpa.x0 == split.y0,
                          cpa.x1 == split.y1};

    std::printf("%-8zu |   %-4s %-4s %-4s %-13s |   %-4s %-4s %-4s %-4s\n", d,
                t_ok[0] ? "OK" : "-", t_ok[1] ? "OK" : "-", t_ok[2] ? "OK" : "-",
                t_ok[3] ? "OK" : "-", c_ok[0] ? "OK" : "-", c_ok[1] ? "OK" : "-",
                c_ok[2] ? "OK" : "-", c_ok[3] ? "OK" : "-");
    if (template_full == 0 && t_ok[0] && t_ok[1] && t_ok[2] && t_ok[3]) template_full = d;
    if (cpa_full == 0 && c_ok[0] && c_ok[1] && c_ok[2] && c_ok[3]) cpa_full = d;
  }

  std::printf("\nfull coefficient first recovered: template at %zu traces, CPA at %zu\n",
              template_full, cpa_full);
  std::printf("(the paper: 'it is possible to extend our attack by template ...\n"
              " profiling techniques'. Measured: the profiled joint-likelihood\n"
              " attack resolves the exponent EXACTLY -- no Pearson alias class to\n"
              " repair -- and matches or beats the unprofiled trace budget; both\n"
              " are gated by the prune phase of this coefficient's mantissa.)\n");
  harness.report("budget_sweep", params, timer.ms());
  return 0;
}
