// Section V.B countermeasure study: how the attack degrades under
//  - noise amplification (hiding, cheap variant): MTD grows ~ sigma^2;
//  - constant-weight EM (hiding, ideal variant): attack fails outright;
//  - trace misalignment jitter;
// measured as per-component recovery success and sign-bit MTD.

#include <cstdio>

#include "bench_harness.h"
#include "bench_util.h"
#include "falcon/falcon.h"
#include "falcon/masked_sign.h"

using namespace fd;
using namespace fd::bench;

namespace {

constexpr std::size_t kTraces = 12000;
constexpr std::size_t kStep = 500;

struct Row {
  const char* name;
  sca::DeviceConfig dev;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("countermeasures", argc, argv);
  std::printf("== Countermeasures (Section V.B): sign-bit MTD and mantissa recovery ==\n\n");

  const fpr::Fpr secret = fpr::Fpr::from_bits(kPaperCoefficient);
  const auto split = attack::KnownOperand::from(secret);

  std::vector<Row> rows;
  for (const double sigma : {4.0, 12.0, 24.0, 48.0}) {
    Row r{"", {}};
    r.dev.noise_sigma = sigma;
    rows.push_back(r);
  }
  rows[0].name = "noise sigma=4";
  rows[1].name = "noise sigma=12 (baseline)";
  rows[2].name = "noise sigma=24";
  rows[3].name = "noise sigma=48";
  {
    Row r{"hiding: constant-weight", {}};
    r.dev.noise_sigma = 12.0;
    r.dev.constant_weight = true;
    rows.push_back(r);
  }
  {
    Row r{"jitter <= 4 samples", {}};
    r.dev.noise_sigma = 12.0;
    r.dev.jitter_max = 4;
    rows.push_back(r);
  }

  std::printf("%-28s %12s %12s %12s\n", "device", "sign MTD", "mant-add MTD", "x0 recovered");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    bench::WallTimer timer;
    const auto set = synthetic_coefficient_campaign(secret, fpr::Fpr::from_double(7777.25),
                                                    kTraces, rows[i].dev, 9,
                                                    0xC0DE + static_cast<std::uint64_t>(i));
    const auto ds = attack::build_component_dataset(set, false);

    const auto sign_evo = correlation_evolution(
        ds, sca::window::kOffSign, 2,
        [&](std::size_t g, const attack::KnownOperand& k) {
          return attack::hyp_sign(g != 0, k);
        },
        kStep);
    const std::size_t sign_mtd =
        measurements_to_disclosure(sign_evo, secret.sign() ? 1 : 0);

    const std::vector<std::uint32_t> add_guesses = {
        split.y0, (split.y0 << 1) & fpr::kMantLowMask, split.y0 ^ 0x15A5A};
    const auto add_evo = correlation_evolution(
        ds, sca::window::kOffAccZ1a, add_guesses.size(),
        [&](std::size_t g, const attack::KnownOperand& k) {
          return attack::hyp_low_add_z1a(add_guesses[g], k);
        },
        kStep);
    const std::size_t add_mtd = measurements_to_disclosure(add_evo, 0);

    attack::ComponentAttackConfig cac;
    cac.low_candidates = attack::MantissaCandidates::adversarial(split.y0, false, 100, 0x77);
    cac.high_candidates = attack::MantissaCandidates::adversarial(split.y1, true, 100, 0x78);
    const auto comp = attack::attack_component(ds, cac);

    char sign_s[16], add_s[16];
    std::snprintf(sign_s, sizeof sign_s, sign_mtd ? "%zu" : "never", sign_mtd);
    std::snprintf(add_s, sizeof add_s, add_mtd ? "%zu" : "never", add_mtd);
    std::printf("%-28s %12s %12s %12s\n", rows[i].name, sign_s, add_s,
                comp.x0 == split.y0 ? "YES" : "no");
    char params[96];
    std::snprintf(params, sizeof params, "device=%s traces=%zu", rows[i].name, kTraces);
    harness.report("countermeasure_row", params, timer.ms());
  }

  // ---- masking (the countermeasure the paper calls for) ------------------
  std::printf("\n-- two-share additive masking of the t-computation (Sec. V.B) --\n");
  {
    ChaCha20Prng keyrng("masking bench key");
    const auto kp = falcon::keygen(5, keyrng);
    for (const bool masked : {false, true}) {
      bench::WallTimer timer;
      sca::CampaignConfig camp;
      camp.num_traces = 1500;
      camp.device.noise_sigma = 1.0;  // very generous to the attacker
      camp.seed = 0x3A5C + masked;
      if (masked) {
        camp.signer = [](const falcon::SecretKey& sk, std::string_view msg,
                         RandomSource& r) { return falcon::sign_masked(sk, msg, r); };
      }
      const auto set = sca::run_signing_campaign(kp.sk, 0, camp);
      const auto truth = kp.sk.b01[0];
      const auto tsplit = attack::KnownOperand::from(truth);
      const auto ds = attack::build_component_dataset(set, false);
      attack::ComponentAttackConfig cac;
      cac.low_candidates = attack::MantissaCandidates::adversarial(tsplit.y0, false, 120, 5);
      cac.high_candidates = attack::MantissaCandidates::adversarial(tsplit.y1, true, 120, 6);
      const auto comp = attack::attack_component(ds, cac);
      std::printf("%-28s mantissa recovered: %-4s prune r = %+.4f\n",
                  masked ? "masked signer" : "plain signer",
                  (comp.x0 == tsplit.y0 && comp.x1 == tsplit.y1) ? "YES" : "no",
                  comp.low_prune.score);
      harness.report(masked ? "masked_signer" : "plain_signer", "logn=5 traces=1500",
                     timer.ms());
    }
  }

  std::printf("\nexpected shape: MTD grows roughly with sigma^2 under noise\n"
              "amplification; constant-weight hiding defeats the attack entirely;\n"
              "small jitter raises MTD but does not stop recovery; two-share\n"
              "masking randomizes every targeted intermediate and the CPA collapses.\n");
  return 0;
}
