#pragma once
// Shared reporting harness for the bench_* executables.
//
// Every bench accepts `--json <path>` (stripped from argv before the
// bench parses its positional arguments). When given, each call to
// report() appends one flat JSON object to the file, in the telemetry
// JSONL dialect the obs layer emits:
//
//   {"ev":"bench","bench":"tracestore","name":"stream_read",
//    "params":"logn=5 traces=600","wall_ms":123.4,
//    "throughput":812.5,"unit":"MiB/s"}
//
// so CI can diff benchmark runs without scraping the human output,
// and fd-report/jq can consume bench results and campaign telemetry
// from the same pipeline. Without --json, report() is print-free: the
// benches keep their existing human-readable stdout.
//
// Wall times come from the caller (benches already time their phases);
// WallTimer is provided for the common measure-this-scope case.

#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>

#include "obs/jsonl.h"

namespace fd::bench {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start_)
        .count();
  }
  [[nodiscard]] double s() const { return ms() / 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

class Harness {
 public:
  // Strips "--json <path>" from (argc, argv) in place so positional
  // argument parsing downstream is unaffected by where the flag sits.
  Harness(std::string_view bench_name, int& argc, char** argv) : bench_(bench_name) {
    int w = 1;
    for (int r = 1; r < argc; ++r) {
      if (std::string_view(argv[r]) == "--json" && r + 1 < argc) {
        path_ = argv[r + 1];
        ++r;
        continue;
      }
      argv[w++] = argv[r];
    }
    argc = w;
    if (!path_.empty()) {
      file_ = std::fopen(path_.c_str(), "wb");
      if (file_ == nullptr) {
        std::fprintf(stderr, "%s: cannot open --json file %s\n", bench_.c_str(),
                     path_.c_str());
      }
    }
  }
  ~Harness() {
    if (file_ != nullptr) std::fclose(file_);
  }
  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  [[nodiscard]] bool json_enabled() const { return file_ != nullptr; }

  // One measurement. `throughput` <= 0 omits the throughput/unit pair
  // (for benches that measure a count or a pure latency).
  void report(std::string_view name, std::string_view params, double wall_ms,
              double throughput = 0.0, std::string_view unit = "") {
    if (file_ == nullptr) return;
    namespace jsonl = fd::obs::jsonl;
    const auto str = [](std::string_view s) { return "\"" + jsonl::escape(s) + "\""; };
    std::string line = "{\"ev\":\"bench\",\"bench\":";
    line += str(bench_);
    line += ",\"name\":";
    line += str(name);
    line += ",\"params\":";
    line += str(params);
    line += ",\"wall_ms\":";
    jsonl::append_number(line, wall_ms);
    if (throughput > 0.0) {
      line += ",\"throughput\":";
      jsonl::append_number(line, throughput);
      line += ",\"unit\":";
      line += str(unit);
    }
    line += "}\n";
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fflush(file_);
  }

 private:
  std::string bench_;
  std::string path_;
  std::FILE* file_ = nullptr;
};

}  // namespace fd::bench
