// Single-trace attack on key expansion -- the quantitative version of
// the paper's Section III.A remark that "key generation steps may also
// leak information".
//
// Every time a stored key is loaded, the device recomputes the FFT basis
// (expand_secret_key). The FIRST butterfly stage of FFT(-f) multiplies
// raw key coefficients -- plain integers in [-127, 127] -- by public
// roots. A profiled adversary (Sec. V.A setting: device gain/offset/
// noise known) can therefore score all 255 candidate values per exposed
// coefficient against the 17-event multiply records of ONE trace:
// no repeated measurements, no known-plaintext variation needed.
//
// The bench recovers the n/2 stage-1-exposed coefficients of f from a
// single key-load trace across noise levels.

#include <bit>
#include <cstdio>
#include <vector>

#include "bench_harness.h"
#include "common/rng.h"
#include "falcon/falcon.h"
#include "sca/capture.h"
#include "sca/device.h"
#include "fft/fft.h"
#include "sca/op_parser.h"

using namespace fd;

namespace {

// Attacker-side simulation: the exact event values of fpr_mul(of(v), s).
std::vector<fpr::LeakageEvent> simulate_mul(std::int32_t v, fpr::Fpr root) {
  sca::FullRecorder rec;
  {
    fpr::ScopedLeakageSink scope(&rec);
    (void)fpr::fpr_mul(fpr::fpr_of(v), root);
  }
  return rec.events();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("single_trace_keyload", argc, argv);
  constexpr unsigned kLogn = 6;
  constexpr std::size_t kN = 1U << kLogn;

  std::printf("== Single-trace attack on key expansion (key load), FALCON-%zu ==\n\n", kN);

  ChaCha20Prng rng("single trace victim");
  const auto kp = falcon::keygen(kLogn, rng);

  // The first FFT stage's butterflies expose f[n/4 .. n/2) and
  // f[3n/4 .. n) (negated) as direct multiply operands.
  // Record layout: per FFT, (logn-1)*(n/4) butterflies of 10 op records
  // each (4 muls + 6 adds); FFT #2 (b01 = FFT(-f)) follows FFT #1.
  constexpr std::size_t kRecordsPerFft = (kLogn - 1) * (kN / 4) * 10;

  // Public knowledge: the stage-1 roots (slot gm[2+0] for all j).
  // Recover them the same way fft() computes them: run the public code.
  // Here we simply re-derive the known operand per butterfly by
  // simulating the multiply with candidate values below.
  std::vector<fpr::Fpr> stage1_roots(2);
  {
    // Root for stage u=1 is gm[2]: extract it via a probe FFT of x.
    const fft::Cplx z = fft::fft_root(0, 2);  // exp(i*pi/4) at logn=2 slot 0
    stage1_roots[0] = z.re;
    stage1_roots[1] = z.im;
  }

  std::printf("%-12s %-22s %-14s\n", "noise sigma", "recovered coefficients",
              "of exposed n/2");
  for (const double sigma : {0.5, 1.0, 2.0, 4.0}) {
    bench::WallTimer timer;
    // Victim: one key-load (basis re-expansion) under capture.
    sca::FullRecorder rec;
    {
      falcon::SecretKey sk_copy = kp.sk;
      fpr::ScopedLeakageSink scope(&rec);
      (void)falcon::expand_secret_key(sk_copy);
    }
    sca::DeviceConfig dc;
    dc.noise_sigma = sigma;
    sca::EmDeviceModel device(dc, 0x57AC + static_cast<std::uint64_t>(sigma * 10));
    const auto trace = device.synthesize(rec.events());

    // Adversary: segment the stream into op records.
    const auto ops = sca::parse_op_records(rec.events());

    // Index mul records; FFT #2 stage 1 occupies the first n/4
    // butterflies after kRecordsPerFft records.
    std::size_t recovered = 0;
    std::size_t exposed = 0;
    for (std::size_t j = 0; j < kN / 4; ++j) {
      const std::size_t base = kRecordsPerFft + j * 10;
      // Records base..base+3 are the four multiplies; 0/2 expose the
      // "real" coefficient -f[j + n/4], 1/3 the "imag" -f[j + 3n/4].
      for (const unsigned part : {0U, 1U}) {
        const std::size_t coeff_idx = part == 0 ? j + kN / 4 : j + 3 * kN / 4;
        const std::int32_t truth = -kp.sk.f[coeff_idx];
        ++exposed;

        double best_ll = -1e300;
        std::int32_t best_v = -9999;
        for (std::int32_t v = -127; v <= 127; ++v) {
          double ll = 0.0;
          // The two multiply records exposing this part (by s_re, s_im).
          for (const unsigned which : {0U, 1U}) {
            const std::size_t rec_idx = base + (part == 0 ? (which == 0 ? 0 : 2)
                                                          : (which == 0 ? 1 : 3));
            const auto& op = ops[rec_idx];
            const auto predicted = simulate_mul(v, stage1_roots[which]);
            if (predicted.size() != op.num_events) {
              ll -= 1e6;  // zero/nonzero structure mismatch
              continue;
            }
            for (std::size_t e = 0; e < predicted.size(); ++e) {
              const double h = std::popcount(predicted[e].value);
              const double s = trace.samples[op.first_event + e];
              ll -= (s - h) * (s - h) / (2.0 * sigma * sigma + 1e-9);
            }
          }
          if (ll > best_ll) {
            best_ll = ll;
            best_v = v;
          }
        }
        recovered += best_v == truth;
      }
    }
    std::printf("%-12.1f %10zu / %-11zu %s\n", sigma, recovered, exposed,
                recovered == exposed ? "(all, from ONE trace)" : "");
    char params[48];
    std::snprintf(params, sizeof params, "logn=%u sigma=%.1f", kLogn, sigma);
    harness.report("keyload_recovery", params, timer.ms(),
                   static_cast<double>(exposed) / timer.s(), "coeffs/s");
  }

  std::printf(
      "\nthe remaining coefficients propagate into later butterfly stages with\n"
      "already-recovered co-operands and fall to the same template scoring; a\n"
      "full horizontal key-load attack is the paper's flagged future work.\n"
      "Mitigation: treat key expansion as secret-dependent code (mask or\n"
      "precompute and store the expanded basis in protected memory).\n");
  return 0;
}
