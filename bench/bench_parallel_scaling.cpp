// Scaling of the exec engine's two parallel surfaces: sharded capture
// and the all-component attack, serial vs 2/4/8 workers -- plus the
// process-level fleet (DESIGN.md section 12): the full end-to-end
// campaign through `fd-attack --worker` subprocesses at 1/2/4 workers.
//
//   ./bench_parallel_scaling [logn] [traces] [--json out.jsonl]
//   (defaults: logn = 4, 240 traces)
//
// Each worker count runs the IDENTICAL experiment (same shard plan,
// same seeds -- the determinism contract of DESIGN.md section 9), so
// wall-clock ratios are pure scheduling, not different work. Speedup is
// reported against the pool-less serial path (fleet_e2e: against one
// worker). On a single-core host the expected result is ~1.0x across
// the board (the engine adds no speedup where the machine has no
// parallelism to give) -- the bench then documents overhead, not
// scaling. fleet_e2e additionally pays fork/exec + pipe-framing costs,
// so its ratio vs in-process is the price of process isolation.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "attack/key_recovery.h"
#include "attack/parallel_attack.h"
#include "bench_harness.h"
#include "common/rng.h"
#include "exec/thread_pool.h"
#include "falcon/falcon.h"
#include "fleet/coordinator.h"
#include "sca/campaign.h"
#include "tracestore/archive.h"

using namespace fd;

namespace {

constexpr std::size_t kWorkerCounts[] = {0, 2, 4, 8};  // 0 = no pool (serial)
constexpr std::size_t kShards = 8;

double run_capture(const falcon::SecretKey& sk, std::size_t traces, std::size_t workers,
                   const std::string& path) {
  sca::ShardedCampaignConfig cfg;
  cfg.base.num_traces = traces;
  cfg.base.device.noise_sigma = 2.0;
  cfg.base.seed = 0xBE7C;
  cfg.num_shards = kShards;
  std::unique_ptr<exec::ThreadPool> pool;
  if (workers > 0) pool = std::make_unique<exec::ThreadPool>(workers);
  bench::WallTimer timer;
  const auto res = sca::run_campaign_sharded(sk, cfg, path, pool.get());
  const double ms = timer.ms();
  if (!res.ok) {
    std::fprintf(stderr, "capture failed: %s\n", res.error.c_str());
    std::exit(2);
  }
  return ms;
}

double run_attack(const falcon::KeyPair& kp, const std::vector<sca::TraceSet>& sets,
                  std::size_t workers) {
  attack::KeyRecoveryConfig cfg;
  cfg.seed = 0xBE7C;
  cfg.adversarial_random = 60;
  const auto config_for = [&](const attack::ComponentIndex& ci) {
    return attack::component_attack_config(kp.sk, cfg, /*row=*/0, ci.slot, ci.imag);
  };
  std::unique_ptr<exec::ThreadPool> pool;
  if (workers > 0) pool = std::make_unique<exec::ThreadPool>(workers);
  bench::WallTimer timer;
  const auto results = attack::attack_all_components_parallel(sets, config_for, pool.get());
  const double ms = timer.ms();
  if (results.size() != kp.sk.params.n) {
    std::fprintf(stderr, "attack returned %zu components\n", results.size());
    std::exit(2);
  }
  return ms;
}

#ifdef FD_ATTACK_BIN
// One full fleet campaign (capture -> attack -> assemble -> forge)
// through real worker subprocesses. The shard plan is fixed (same
// capture shards, same component shards) so every worker count does
// identical work; only the process scheduling changes.
double run_fleet(unsigned logn, std::size_t traces, std::size_t workers,
                 const std::string& path) {
  fleet::FleetConfig fc;
  fc.logn = logn;
  fc.victim_seed = "scaling bench key";
  fc.pipeline.attack.num_traces = traces;
  fc.pipeline.attack.device.noise_sigma = 2.0;
  fc.pipeline.attack.seed = 0xBE7C;
  fc.pipeline.attack.adversarial_random = 60;
  fc.pipeline.capture_shards = kShards;
  fc.pipeline.checkpoint_every = 4;
  fc.pipeline.archive_path = path;
  fc.components_per_shard = 4;
  fc.workers = workers;
  fc.worker_binary = FD_ATTACK_BIN;
  bench::WallTimer timer;
  const auto res = fleet::run_fleet(fc);
  const double ms = timer.ms();
  if (!res.ok) {
    std::fprintf(stderr, "fleet failed at %zu workers: %s\n", workers, res.error.c_str());
    std::exit(2);
  }
  return ms;
}
#endif  // FD_ATTACK_BIN

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("parallel_scaling", argc, argv);
  const unsigned logn = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const std::size_t traces = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 240;

  ChaCha20Prng rng("scaling bench key");
  const auto kp = falcon::keygen(logn, rng);
  std::printf("parallel scaling, FALCON-%zu, %zu traces, %zu capture shards, hardware %zu\n",
              kp.pk.params.n, traces, kShards, exec::ThreadPool::hardware_workers());
  const std::string params = "logn=" + std::to_string(logn) +
                             " traces=" + std::to_string(traces) +
                             " shards=" + std::to_string(kShards);

  // Attack input: one in-memory campaign shared by every worker count
  // (the attack stage parallelism is independent of how capture ran).
  sca::CampaignConfig camp;
  camp.num_traces = traces;
  camp.device.noise_sigma = 2.0;
  camp.seed = 0xBE7C;
  const auto sets = sca::run_full_campaign(kp.sk, camp);

  std::printf("\n%-22s %10s %10s %10s\n", "surface", "workers", "wall_ms", "speedup");
  double capture_serial_ms = 0.0;
  double attack_serial_ms = 0.0;
  for (const std::size_t workers : kWorkerCounts) {
    const std::string path = "bench_scaling_" + std::to_string(workers) + ".fdtrace";
    const double cap_ms = run_capture(kp.sk, traces, workers, path);
    std::remove(path.c_str());
    if (workers == 0) capture_serial_ms = cap_ms;
    const double cap_speedup = capture_serial_ms / cap_ms;
    const std::string label = workers == 0 ? "serial" : std::to_string(workers);
    std::printf("%-22s %10s %10.1f %9.2fx\n", "sharded_capture", label.c_str(), cap_ms,
                cap_speedup);
    harness.report("capture_w" + label, params, cap_ms, cap_speedup, "x_vs_serial");
  }
  for (const std::size_t workers : kWorkerCounts) {
    const double atk_ms = run_attack(kp, sets, workers);
    if (workers == 0) attack_serial_ms = atk_ms;
    const double atk_speedup = attack_serial_ms / atk_ms;
    const std::string label = workers == 0 ? "serial" : std::to_string(workers);
    std::printf("%-22s %10s %10.1f %9.2fx\n", "component_attack", label.c_str(), atk_ms,
                atk_speedup);
    harness.report("attack_w" + label, params, atk_ms, atk_speedup, "x_vs_serial");
  }
#ifdef FD_ATTACK_BIN
  double fleet_base_ms = 0.0;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const std::string path = "bench_fleet_" + std::to_string(workers) + ".fdtrace";
    const double ms = run_fleet(logn, traces, workers, path);
    if (workers == 1) fleet_base_ms = ms;
    const double speedup = fleet_base_ms / ms;
    const std::string label = std::to_string(workers);
    std::printf("%-22s %10s %10.1f %9.2fx\n", "fleet_e2e", label.c_str(), ms, speedup);
    harness.report("fleet_w" + label, params, ms, speedup, "x_vs_1worker");
  }
#endif  // FD_ATTACK_BIN
  return 0;
}
