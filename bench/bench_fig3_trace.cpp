// Reproduces Fig. 3: an example EM measurement trace of one targeted
// floating-point multiplication, annotated with the mantissa, exponent
// and sign computation regions.
//
// The paper shows a raw probe trace with dashed region markers; we print
// the synthesized trace with the same region annotation, captured from a
// real FALCON-512 signing run.

#include <cstdio>
#include <bit>

#include "bench_harness.h"
#include "common/rng.h"
#include "falcon/falcon.h"
#include "sca/capture.h"
#include "sca/device.h"

using namespace fd;

namespace {

const char* region_of(fpr::LeakageTag tag) {
  using T = fpr::LeakageTag;
  switch (tag) {
    case T::kMulSign: return "sign";
    case T::kMulExpX:
    case T::kMulExpY:
    case T::kMulExpSum: return "exponent";
    case T::kAddAlignShift:
    case T::kAddMantSum:
    case T::kAddResult: return "fp-add";
    default: return "mantissa";
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("fig3_trace", argc, argv);
  std::printf("== Fig. 3: annotated trace of one FFT(c).FFT(f) multiplication ==\n");
  std::printf("victim: FALCON-512 reference signing flow, simulated EM probe\n\n");

  ChaCha20Prng rng("fig3 victim key");
  bench::WallTimer timer;
  const auto kp = falcon::keygen(9, rng);
  harness.report("keygen", "logn=9", timer.ms());

  sca::EventWindowRecorder recorder(/*slot=*/0);
  timer.reset();
  {
    fpr::ScopedLeakageSink scope(&recorder);
    (void)falcon::sign(kp.sk, "fig3 message", rng);
  }
  harness.report("sign_capture", "logn=9", timer.ms());

  sca::DeviceConfig cfg;
  cfg.noise_sigma = 12.0;
  sca::EmDeviceModel device(cfg, 0xF163);
  timer.reset();
  const auto trace = device.synthesize(recorder.events());
  harness.report("synthesize_window", "logn=9 noise=12", timer.ms(),
                 static_cast<double>(recorder.events().size()) / timer.s(), "events/s");

  std::printf("%-4s %-9s %-14s %4s %9s\n", "t", "region", "operation", "HW", "EM");
  for (std::size_t i = 0; i < recorder.events().size(); ++i) {
    const auto& ev = recorder.events()[i];
    std::printf("%-4zu %-9s %-14s %4d %9.2f\n", i, region_of(ev.tag),
                fpr::leakage_tag_name(ev.tag), std::popcount(ev.value), trace.samples[i]);
  }
  std::printf("\nwindow length: %zu samples (4 soft-float multiplies + 2 adds);\n"
              "the mantissa region dominates the window, the sign is a single\n"
              "1-bit event -- matching the paper's annotation of its Fig. 3 trace.\n",
              recorder.events().size());
  return 0;
}
