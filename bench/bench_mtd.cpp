// Headline reproduction: "approximately 10k measurements are sufficient
// to extract the entire key" and "the sign bit is the most challenging
// portion (~9k traces); exponent and mantissa addition become
// statistically significant within about a thousand".
//
// Measures, over a set of coefficients drawn from real FALCON-512 keys,
// the per-component measurements-to-disclosure (traces until the correct
// guess leads with 99.99% significance), and the per-coefficient maximum.

#include <algorithm>
#include <cstdio>

#include "bench_harness.h"
#include "bench_util.h"
#include "falcon/falcon.h"

using namespace fd;
using namespace fd::bench;

namespace {

constexpr std::size_t kTraces = 14000;
constexpr std::size_t kStep = 250;
constexpr double kNoise = 11.0;
constexpr int kCoefficients = 8;

struct ComponentMtd {
  std::size_t sign, exponent, mant_mul, mant_add;
};

std::size_t median(std::vector<std::size_t> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("mtd", argc, argv);
  char params[96];
  std::snprintf(params, sizeof params, "coeffs=%d traces=%zu step=%zu noise=%.0f",
                kCoefficients, kTraces, kStep, kNoise);
  bench::WallTimer timer;
  std::printf("== Measurements-to-disclosure, FALCON-512 coefficients, noise sigma=%.0f ==\n\n",
              kNoise);

  // Real FALCON-512 key: its FFT(-f) components are the attacked secrets.
  ChaCha20Prng rng("mtd bench key");
  const auto kp = falcon::keygen(9, rng);

  std::vector<ComponentMtd> rows;
  std::printf("%-22s %8s %9s %9s %9s %12s\n", "coefficient", "sign", "exponent", "mant-mul",
              "mant-add", "full coeff");
  for (int i = 0; i < kCoefficients; ++i) {
    const fpr::Fpr secret = kp.sk.b01[static_cast<std::size_t>(i * 7 + 1)];
    const fpr::Fpr secret_im = kp.sk.b01[static_cast<std::size_t>(i * 7 + 2)];
    const auto split = attack::KnownOperand::from(secret);

    sca::DeviceConfig dev;
    dev.noise_sigma = kNoise;
    const auto set = synthetic_coefficient_campaign(secret, secret_im, kTraces, dev, 9,
                                                    0x111D + static_cast<std::uint64_t>(i));
    const auto ds = attack::build_component_dataset(set, false);

    ComponentMtd m{};
    {
      const auto evo = correlation_evolution(
          ds, sca::window::kOffSign, 2,
          [&](std::size_t g, const attack::KnownOperand& k) {
            return attack::hyp_sign(g != 0, k);
          },
          kStep);
      m.sign = measurements_to_disclosure(evo, secret.sign() ? 1 : 0);
    }
    {
      std::vector<std::uint32_t> guesses;
      for (std::uint32_t e = 1005; e <= 1053; ++e) guesses.push_back(e);
      const std::size_t correct = secret.biased_exponent() - 1005;
      const auto evo = correlation_evolution(
          ds, sca::window::kOffExpSum, guesses.size(),
          [&](std::size_t g, const attack::KnownOperand& k) {
            return attack::hyp_exponent(guesses[g], k);
          },
          kStep);
      // Exponent: CPA equivalence class only -- measure time-to-lead of
      // the correct guess's alias family (members tie by construction).
      std::size_t mtd = 0;
      for (std::size_t c = 0; c < evo.checkpoints.size(); ++c) {
        const double ci = attack::confidence_interval(0.9999, evo.checkpoints[c]);
        const double rc = evo.r[c][correct];
        bool leads = rc > ci;
        for (std::size_t g = 0; g < guesses.size() && leads; ++g) {
          if (g != correct && evo.r[c][g] > rc + 1e-9) leads = false;
        }
        if (leads) {
          if (mtd == 0) mtd = evo.checkpoints[c];
        } else {
          mtd = 0;
        }
      }
      m.exponent = mtd;
    }
    {
      // Mantissa multiplication vs. non-shift guesses (the shift family
      // never separates; that is the prune phase's job).
      const std::vector<std::uint32_t> guesses = {split.y0, split.y0 ^ 0x15A5A,
                                                  (split.y0 + 9991) & fpr::kMantLowMask,
                                                  split.y0 ^ 0x00041};
      const auto evo = correlation_evolution(
          ds, sca::window::kOffProdLL, guesses.size(),
          [&](std::size_t g, const attack::KnownOperand& k) {
            return attack::hyp_low_mul_ll(guesses[g], k);
          },
          kStep);
      m.mant_mul = measurements_to_disclosure(evo, 0);
    }
    {
      const std::vector<std::uint32_t> guesses = {split.y0,
                                                  (split.y0 << 1) & fpr::kMantLowMask,
                                                  split.y0 >> 1, split.y0 ^ 0x15A5A};
      const auto evo = correlation_evolution(
          ds, sca::window::kOffAccZ1a, guesses.size(),
          [&](std::size_t g, const attack::KnownOperand& k) {
            return attack::hyp_low_add_z1a(guesses[g], k);
          },
          kStep);
      m.mant_add = measurements_to_disclosure(evo, 0);
    }
    rows.push_back(m);
    const std::size_t full =
        (m.sign && m.exponent && m.mant_mul && m.mant_add)
            ? std::max({m.sign, m.exponent, m.mant_mul, m.mant_add})
            : 0;
    char name[32];
    std::snprintf(name, sizeof name, "0x%016llX",
                  static_cast<unsigned long long>(secret.bits()));
    std::printf("%-22s %8zu %9zu %9zu %9zu %12zu\n", name, m.sign, m.exponent, m.mant_mul,
                m.mant_add, full);
  }

  std::vector<std::size_t> signs, exps, muls, adds, fulls;
  for (const auto& m : rows) {
    signs.push_back(m.sign);
    exps.push_back(m.exponent);
    muls.push_back(m.mant_mul);
    adds.push_back(m.mant_add);
    fulls.push_back((m.sign && m.exponent && m.mant_mul && m.mant_add)
                        ? std::max({m.sign, m.exponent, m.mant_mul, m.mant_add})
                        : 0);
  }
  int fully = 0;
  for (const auto f : fulls) fully += (f != 0);
  std::printf("\nmedian MTD: sign %zu, exponent %zu, mant-mul %zu, mant-add %zu; "
              "full coefficient %zu (paper: sign ~9k, others ~1k, total <10k)\n",
              median(signs), median(exps), median(muls), median(adds), median(fulls));
  std::printf("coefficients fully disclosed by plain CPA within %zu traces: %d / %d\n",
              kTraces, fully, kCoefficients);
  std::printf("('0' = not disclosed by plain CPA: the exponent's Pearson alias\n"
              " classes never separate -- the key-recovery pipeline resolves them\n"
              " with the calibrated template + invFFT integrality instead, so these\n"
              " components still fall; see DESIGN.md 'exponent aliasing')\n");
  harness.report("mtd_sweep", params, timer.ms(),
                 static_cast<double>(kCoefficients) * static_cast<double>(kTraces) / timer.s(),
                 "traces/s");
  return 0;
}
