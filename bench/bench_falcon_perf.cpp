// Implementation performance context (google-benchmark): keygen, sign,
// verify, and the underlying transforms across parameter sets. Not a
// paper figure, but the numbers situate the attack cost (one trace = one
// signing operation on the victim).

#include <benchmark/benchmark.h>

#include "bench_harness.h"
#include "common/rng.h"
#include "falcon/falcon.h"
#include "fft/fft.h"
#include "zq/zq.h"

namespace {

using namespace fd;

void BM_Keygen(benchmark::State& state) {
  const auto logn = static_cast<unsigned>(state.range(0));
  ChaCha20Prng rng(0x9E7F + logn);
  for (auto _ : state) {
    benchmark::DoNotOptimize(falcon::keygen(logn, rng));
  }
}
BENCHMARK(BM_Keygen)->Arg(4)->Arg(6)->Arg(8)->Arg(9)->Unit(benchmark::kMillisecond);

void BM_Sign(benchmark::State& state) {
  const auto logn = static_cast<unsigned>(state.range(0));
  ChaCha20Prng rng(0x516E + logn);
  const auto kp = falcon::keygen(logn, rng);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(falcon::sign(kp.sk, "bench message", rng));
    ++i;
  }
}
BENCHMARK(BM_Sign)->Arg(4)->Arg(6)->Arg(9)->Arg(10)->Unit(benchmark::kMicrosecond);

void BM_Verify(benchmark::State& state) {
  const auto logn = static_cast<unsigned>(state.range(0));
  ChaCha20Prng rng(0xF17 + logn);
  const auto kp = falcon::keygen(logn, rng);
  const auto sig = falcon::sign(kp.sk, "bench message", rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(falcon::verify(kp.pk, "bench message", sig));
  }
}
BENCHMARK(BM_Verify)->Arg(4)->Arg(6)->Arg(9)->Arg(10)->Unit(benchmark::kMicrosecond);

void BM_Fft(benchmark::State& state) {
  const auto logn = static_cast<unsigned>(state.range(0));
  const std::size_t n = std::size_t{1} << logn;
  ChaCha20Prng rng(0xFF7 + logn);
  std::vector<fpr::Fpr> f(n);
  for (auto& c : f) c = fpr::Fpr::from_double(rng.gaussian() * 100.0);
  for (auto _ : state) {
    fft::fft(f, logn);
    fft::ifft(f, logn);
    benchmark::DoNotOptimize(f.data());
  }
}
BENCHMARK(BM_Fft)->Arg(6)->Arg(9)->Arg(10)->Unit(benchmark::kMicrosecond);

void BM_Ntt(benchmark::State& state) {
  const auto logn = static_cast<unsigned>(state.range(0));
  const std::size_t n = std::size_t{1} << logn;
  ChaCha20Prng rng(0x177 + logn);
  std::vector<std::uint32_t> f(n);
  for (auto& c : f) c = static_cast<std::uint32_t>(rng.uniform(zq::kQ));
  for (auto _ : state) {
    zq::ntt(f, logn);
    zq::intt(f, logn);
    benchmark::DoNotOptimize(f.data());
  }
}
BENCHMARK(BM_Ntt)->Arg(6)->Arg(9)->Arg(10)->Unit(benchmark::kMicrosecond);

void BM_HashToPoint(benchmark::State& state) {
  const auto logn = static_cast<unsigned>(state.range(0));
  const std::uint8_t salt[falcon::kSaltBytes] = {7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(falcon::hash_to_point(salt, "bench", logn));
  }
}
BENCHMARK(BM_HashToPoint)->Arg(9)->Arg(10)->Unit(benchmark::kMicrosecond);

void BM_SamplerZ(benchmark::State& state) {
  ChaCha20Prng rng(0x5A);
  falcon::SamplerZ samp(1.2778, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        samp.sample(fpr::Fpr::from_double(0.37), fpr::Fpr::from_double(1.5)));
  }
}
BENCHMARK(BM_SamplerZ);

void BM_FprMul(benchmark::State& state) {
  const fpr::Fpr a = fpr::Fpr::from_double(3.14159);
  const fpr::Fpr b = fpr::Fpr::from_double(-2.71828);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fpr::fpr_mul(a, b));
  }
}
BENCHMARK(BM_FprMul);

// Forwards every finished benchmark run to the shared JSON harness, so
// `--json <path>` yields the same one-object-per-measurement stream as
// the plain benches while stdout keeps google-benchmark's console table.
class HarnessReporter : public benchmark::ConsoleReporter {
 public:
  explicit HarnessReporter(fd::bench::Harness& harness) : harness_(harness) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;
      const double iters = static_cast<double>(run.iterations);
      const double wall_ms = iters > 0.0 ? run.real_accumulated_time / iters * 1e3 : 0.0;
      const double per_s =
          run.real_accumulated_time > 0.0 ? iters / run.real_accumulated_time : 0.0;
      harness_.report(run.benchmark_name(), "", wall_ms, per_s, "iters/s");
    }
  }

 private:
  fd::bench::Harness& harness_;
};

}  // namespace

int main(int argc, char** argv) {
  fd::bench::Harness harness("falcon_perf", argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  HarnessReporter reporter(harness);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
