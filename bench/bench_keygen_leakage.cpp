// Section III.A remark: "Other parts of the algorithm such as the key
// generation steps may also leak information."
//
// This bench quantifies that attack surface in our device model: a
// single key-generation run emits every intermediate of FFT(f), FFT(g),
// FFT(F), FFT(G) and the whole ffLDL tree construction through the same
// instrumented soft-float pipeline the signing attack exploits -- and
// keygen runs ONCE, so a keygen adversary gets exactly one trace.
// We count the key-dependent events and show what a single noiseless
// trace would expose (the HW profile of the secret FFT coefficients),
// motivating the paper's warning.

#include <bit>
#include <cstdio>

#include "bench_harness.h"
#include "common/rng.h"
#include "falcon/falcon.h"
#include "sca/capture.h"

using namespace fd;

int main(int argc, char** argv) {
  bench::Harness harness("keygen_leakage", argc, argv);
  std::printf("== Key-generation leakage surface (Sec. III.A remark) ==\n\n");

  for (const unsigned logn : {6U, 8U, 9U}) {
    ChaCha20Prng rng(0x6E1 + logn);
    sca::FullRecorder rec;
    falcon::KeyPair kp;
    bench::WallTimer timer;
    {
      fpr::ScopedLeakageSink scope(&rec);
      kp = falcon::keygen(logn, rng);
    }
    char params[32];
    std::snprintf(params, sizeof params, "logn=%u", logn);
    harness.report("keygen_capture", params, timer.ms(),
                   static_cast<double>(rec.events().size()) / timer.s(), "events/s");
    std::size_t mul_events = 0;
    std::size_t add_events = 0;
    for (const auto& ev : rec.events()) {
      const auto tag = static_cast<unsigned>(ev.tag);
      if (tag >= static_cast<unsigned>(fpr::LeakageTag::kMulOperandXLo) &&
          tag <= static_cast<unsigned>(fpr::LeakageTag::kMulResult)) {
        ++mul_events;
      }
      if (tag >= static_cast<unsigned>(fpr::LeakageTag::kAddAlignShift) &&
          tag <= static_cast<unsigned>(fpr::LeakageTag::kAddResult)) {
        ++add_events;
      }
    }
    std::printf("FALCON-%-5zu one keygen run: %9zu events "
                "(%zu mul-pipeline, %zu add-pipeline)\n",
                kp.pk.params.n, rec.events().size(), mul_events, add_events);
  }

  std::printf(
      "\nevery one of those events is a key-dependent intermediate of the\n"
      "same soft-float pipeline attacked during signing, but keygen offers\n"
      "only a single trace -- a single-trace (horizontal / template) attack\n"
      "setting, exactly the future-work direction the paper flags.\n");
  return 0;
}
