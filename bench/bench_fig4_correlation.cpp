// Reproduces Fig. 4 (a)-(d): correlation-vs-time traces on the paper's
// example coefficient 0xC06017BC8036B580 with 10k measurements.
//
//  (a) sign         -- correct guess crosses the 99.99% CI;
//  (b) exponent     -- correct guess separates from false ones;
//  (c) mantissa multiplication -- the top guesses TIE exactly (the
//      shift false positives: correct + shifted variants are
//      indistinguishable, "shown slightly different in the figure for
//      visual clarity" per the paper);
//  (d) mantissa addition (prune) -- the ties are broken and the correct
//      guess wins alone.
//
// Set FALCONDOWN_FULL=1 to run the extend phase over the full 2^25
// hypothesis space instead of the adversarial candidate set (minutes of
// CPU; result: the same tie set at the top).

#include <cstdio>
#include <cstdlib>

#include "bench_harness.h"
#include "bench_util.h"

using namespace fd;
using namespace fd::bench;

namespace {

constexpr std::size_t kTraces = 10000;
constexpr double kNoise = 12.0;

void print_corr_row(const char* label, double r, std::size_t traces, bool correct) {
  const double ci = attack::confidence_interval(0.9999, traces);
  std::printf("  %-28s r = %+0.5f  %s CI(+-%.5f)%s\n", label, r,
              std::fabs(r) > ci ? "ABOVE" : "below", ci, correct ? "   <-- correct" : "");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("fig4_correlation", argc, argv);
  char params[64];
  std::snprintf(params, sizeof params, "traces=%zu noise=%.0f", kTraces, kNoise);
  std::printf("== Fig. 4 (a)-(d): CPA on coefficient 0x%016llX, %zu traces ==\n\n",
              static_cast<unsigned long long>(kPaperCoefficient), kTraces);

  const fpr::Fpr secret = fpr::Fpr::from_bits(kPaperCoefficient);
  const fpr::Fpr secret_im = fpr::Fpr::from_double(-31337.75);  // co-resident im part
  const auto split = attack::KnownOperand::from(secret);
  std::printf("true sign = %d, exponent = 0x%03X, mantissa high/low = 0x%07X / 0x%07X\n\n",
              secret.sign(), secret.biased_exponent(), split.y1, split.y0);

  sca::DeviceConfig dev;
  dev.noise_sigma = kNoise;
  bench::WallTimer timer;
  const auto set = synthetic_coefficient_campaign(secret, secret_im, kTraces, dev,
                                                  /*logn=*/9, /*seed=*/0xF164);
  harness.report("campaign", params, timer.ms(),
                 static_cast<double>(kTraces) / timer.s(), "traces/s");
  const auto ds = attack::build_component_dataset(set, false);

  // (a) sign.
  std::printf("(a) sign bit, sample = SIGN event:\n");
  timer.reset();
  {
    attack::StreamingScan scan(ds.columns(sca::window::kOffSign));
    for (const unsigned g : {0U, 1U}) {
      const double r = scan.score_one(g, [&](std::uint32_t gg, std::size_t t, std::size_t c) {
        return attack::hyp_sign(gg != 0, ds.views[c].known[t]);
      });
      char label[64];
      std::snprintf(label, sizeof label, "guess sign=%u", g);
      print_corr_row(label, r, kTraces, (g != 0) == secret.sign());
    }
    std::printf("  (wrong sign guess has r of equal magnitude and opposite direction --\n"
                "   the paper's 'symmetric sign leakage'; the positive peak identifies it)\n");
  }
  harness.report("cpa_sign", params, timer.ms());

  // (b) exponent.
  std::printf("\n(b) exponent, sample = EXP_SUM event (top 5 of the window):\n");
  timer.reset();
  {
    attack::StreamingScan scan(ds.columns(sca::window::kOffExpSum));
    std::vector<std::uint32_t> guesses;
    for (std::uint32_t e = 1005; e <= 1053; ++e) guesses.push_back(e);
    const auto top = scan.top_k_list(
        guesses,
        [&](std::uint32_t g, std::size_t t, std::size_t c) {
          return attack::hyp_exponent(g, ds.views[c].known[t]);
        },
        5);
    for (const auto& s : top) {
      char label[64];
      std::snprintf(label, sizeof label, "guess exp=0x%03X", s.guess);
      print_corr_row(label, s.score, kTraces, s.guess == secret.biased_exponent());
    }
  }
  harness.report("cpa_exponent", params, timer.ms());

  // Candidates for the mantissa phases.
  std::vector<std::uint32_t> low_cands =
      attack::MantissaCandidates::adversarial(split.y0, false, 200, 0xF165);
  const char* full_env = std::getenv("FALCONDOWN_FULL");
  const bool full = full_env != nullptr && full_env[0] == '1';

  // (c) mantissa multiplication: extend phase (exact ties expected).
  std::printf("\n(c) mantissa (low 25 bits) MULTIPLICATION attack, top 5 of %s:\n",
              full ? "the full 2^25 space" : "the adversarial candidate set");
  timer.reset();
  std::vector<attack::StreamingScan::Scored> extend_top;
  if (full) {
    // Exhaustive 2^25 enumeration: single view/column and a reduced
    // trace count keep this in the minutes range on one core (the tie
    // structure is identical; more traces only sharpen the correlations).
    const std::size_t d_full = 1500;
    const auto ds_full = attack::build_component_dataset(set, false, d_full);
    attack::StreamingScan scan({ds_full.views[0].samples[sca::window::kOffProdLL]});
    const auto model = [&](std::uint32_t g, std::size_t t, std::size_t) {
      return attack::hyp_low_mul_ll(g, ds_full.views[0].known[t]);
    };
    std::printf("  [exhaustive mode: scanning all 2^25 low-mantissa guesses over %zu traces]\n",
                d_full);
    extend_top = scan.top_k(0, std::uint64_t{1} << 25, model, 8);
  } else {
    attack::StreamingScan scan(ds.columns(sca::window::kOffProdLL));
    const auto model = [&](std::uint32_t g, std::size_t t, std::size_t c) {
      return attack::hyp_low_mul_ll(g, ds.views[c].known[t]);
    };
    extend_top = scan.top_k_list(low_cands, model, 8);
  }
  for (std::size_t i = 0; i < 5 && i < extend_top.size(); ++i) {
    char label[64];
    std::snprintf(label, sizeof label, "guess x0=0x%07X", extend_top[i].guess);
    print_corr_row(label, extend_top[i].score, kTraces, extend_top[i].guess == split.y0);
  }
  std::printf("  (the top guesses tie EXACTLY: shifted mantissas produce identical\n"
              "   Hamming weights on the product -- the false positives of Sec. III.B)\n");
  harness.report(full ? "cpa_mant_mul_full" : "cpa_mant_mul", params, timer.ms());

  // (d) mantissa addition: prune phase.
  std::printf("\n(d) mantissa ADDITION (prune) attack on the extend survivors:\n");
  timer.reset();
  {
    attack::StreamingScan scan(ds.columns(sca::window::kOffAccZ1a));
    std::vector<std::uint32_t> survivors;
    for (const auto& s : extend_top) survivors.push_back(s.guess);
    const auto top = scan.top_k_list(
        survivors,
        [&](std::uint32_t g, std::size_t t, std::size_t c) {
          return attack::hyp_low_add_z1a(g, ds.views[c].known[t]);
        },
        5);
    for (const auto& s : top) {
      char label[64];
      std::snprintf(label, sizeof label, "guess x0=0x%07X", s.guess);
      print_corr_row(label, s.score, kTraces, s.guess == split.y0);
    }
    std::printf("  (false positives eliminated: only the correct guess survives)\n");
    if (!top.empty() && top[0].guess == split.y0) {
      std::printf("\nRESULT: extend-and-prune recovered x0 = 0x%07X correctly.\n", top[0].guess);
    } else {
      std::printf("\nRESULT: FAILED to recover x0.\n");
      return 1;
    }
  }
  harness.report("cpa_mant_add", params, timer.ms());
  if (!full) {
    std::printf("\n(rerun with FALCONDOWN_FULL=1 for the exhaustive 2^25 extend phase)\n");
  }
  return 0;
}
