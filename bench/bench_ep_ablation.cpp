// Ablation of the paper's central algorithmic claim (Section III.B/C):
// a straightforward CPA on the mantissa *multiplication* yields false
// positives (bit-shifted guesses with identical correlation), while the
// extend-and-prune strategy -- re-ranking the multiplication's top
// guesses by the intermediate *addition* -- removes them.
//
// Over many random coefficients: count how often the multiplication-only
// attack leaves the correct value tied or beaten, vs. how often the full
// pipeline recovers it uniquely.

#include <cstdio>

#include "bench_harness.h"
#include "bench_util.h"

using namespace fd;
using namespace fd::bench;

namespace {

constexpr int kCoefficients = 60;
constexpr std::size_t kTraces = 3000;
constexpr double kNoise = 4.0;

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("ep_ablation", argc, argv);
  char params[96];
  std::snprintf(params, sizeof params, "coeffs=%d traces=%zu noise=%.0f", kCoefficients,
                kTraces, kNoise);
  bench::WallTimer timer;
  std::printf("== Extend-and-prune ablation: %d coefficients, %zu traces each ==\n\n",
              kCoefficients, kTraces);

  ChaCha20Prng keyrng("ablation secrets");
  int mul_only_unique_correct = 0;
  int mul_only_tied = 0;
  int mul_only_wrong = 0;
  int ep_correct = 0;
  int had_structural_shift = 0;

  for (int i = 0; i < kCoefficients; ++i) {
    // Random plausible FFT(f) component (sign/exponent in the realistic
    // band, uniform mantissa).
    const std::uint64_t mant = keyrng.next_u64() & 0x000FFFFFFFFFFFFFULL;
    const std::uint64_t expo = 1023 + keyrng.uniform(8);
    const std::uint64_t sign = keyrng.next_u64() & (1ULL << 63);
    const fpr::Fpr secret = fpr::Fpr::from_bits(sign | (expo << 52) | mant);
    const auto split = attack::KnownOperand::from(secret);

    sca::DeviceConfig dev;
    dev.noise_sigma = kNoise;
    const auto set = synthetic_coefficient_campaign(
        secret, fpr::Fpr::from_double(12345.5), kTraces, dev, 9,
        0xAB7A + static_cast<std::uint64_t>(i));
    const auto ds = attack::build_component_dataset(set, false);

    const auto cands =
        attack::MantissaCandidates::adversarial(split.y0, false, 120,
                                                0xCAFE + static_cast<std::uint64_t>(i));
    const bool has_shift = (split.y0 << 1) < (1U << 25) || (split.y0 & 1U) == 0;
    had_structural_shift += has_shift;

    // Straw man: multiplication only.
    const auto mul_only = attack::attack_low_mul_only(ds, cands, 4);
    if (mul_only.top.size() >= 2 &&
        std::fabs(mul_only.top[0].score - mul_only.top[1].score) < 1e-9) {
      ++mul_only_tied;
    } else if (!mul_only.top.empty() && mul_only.top[0].guess == split.y0) {
      ++mul_only_unique_correct;
    } else {
      ++mul_only_wrong;
    }

    // Full pipeline.
    attack::ComponentAttackConfig cac;
    cac.low_candidates = cands;
    cac.high_candidates =
        attack::MantissaCandidates::adversarial(split.y1, true, 120,
                                                0xBEEF + static_cast<std::uint64_t>(i));
    const auto r = attack::attack_component(ds, cac);
    ep_correct += (r.x0 == split.y0 && r.x1 == split.y1);
  }

  std::printf("%-46s %6d / %d\n", "coefficients with an in-range shift variant:",
              had_structural_shift, kCoefficients);
  std::printf("\nmultiplication-only attack (paper Sec. III.B straw man):\n");
  std::printf("%-46s %6d\n", "  top guess TIED (false positives persist):", mul_only_tied);
  std::printf("%-46s %6d\n", "  top guess uniquely correct:", mul_only_unique_correct);
  std::printf("%-46s %6d\n", "  top guess wrong outright:", mul_only_wrong);
  std::printf("\nextend-and-prune (paper Sec. III.C):\n");
  std::printf("%-46s %6d / %d\n", "  full mantissa recovered uniquely:", ep_correct,
              kCoefficients);
  std::printf("\npaper's claim: the mult-only attack cannot resolve the shift family;\n"
              "extend-and-prune eliminates the false positives. Reproduced iff the\n"
              "tied count is large and the extend-and-prune count is ~all.\n");
  harness.report("ablation", params, timer.ms(),
                 static_cast<double>(kCoefficients) / timer.s(), "coeffs/s");
  return ep_correct >= kCoefficients * 9 / 10 ? 0 : 1;
}
