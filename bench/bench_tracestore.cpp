// Trace-archive throughput: write and stream-read bandwidth of the
// .fdtrace format, plus streamed-CPA (disk) vs in-memory CPA wall time
// on the same seeded campaign -- the cost of capture-once/attack-many.
//
//   ./bench_tracestore [logn] [num_traces] [--json <path>]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "attack/streaming_cpa.h"
#include "bench_harness.h"
#include "bench_util.h"
#include "common/rng.h"
#include "falcon/falcon.h"
#include "sca/campaign.h"
#include "tracestore/archive.h"

using namespace fd;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double file_mib(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return 0.0;
  std::fseek(f, 0, SEEK_END);
  const long bytes = std::ftell(f);
  std::fclose(f);
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("tracestore", argc, argv);
  const unsigned logn = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 5;
  const std::size_t num_traces = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 600;
  const char* path = "bench_tracestore.fdtrace";
  char params[64];
  std::snprintf(params, sizeof params, "logn=%u traces=%zu", logn, num_traces);

  ChaCha20Prng rng(0xA2C417);
  const auto kp = falcon::keygen(logn, rng);
  sca::CampaignConfig cfg;
  cfg.num_traces = num_traces;
  cfg.device.noise_sigma = 2.0;
  cfg.seed = 0xA2C417;

  std::printf("== tracestore throughput (logn=%u, %zu queries x %zu slots) ==\n", logn,
              num_traces, kp.sk.params.n >> 1);

  // Write path: victim signing dominates, so also report the pure
  // serialization share by re-writing the loaded records.
  auto t0 = Clock::now();
  const auto capture = sca::run_campaign_to_archive(kp.sk, cfg, path);
  const double capture_s = seconds_since(t0);
  if (!capture.ok) {
    std::fprintf(stderr, "capture failed: %s\n", capture.error.c_str());
    return 1;
  }
  const double mib = file_mib(path);
  std::printf("capture+write  %8.3f s  (%zu records, %.1f MiB, %.1f MiB/s incl. signing)\n",
              capture_s, capture.records, mib, mib / capture_s);
  harness.report("capture_write", params, capture_s * 1e3, mib / capture_s, "MiB/s");

  tracestore::ArchiveReader reader;
  if (!reader.open(path)) {
    std::fprintf(stderr, "open failed: %s\n", reader.error().c_str());
    return 1;
  }
  std::vector<tracestore::TraceRecord> all;
  t0 = Clock::now();
  while (reader.next_batch(all, 1024) > 0) {
  }
  const double read_s = seconds_since(t0);
  std::printf("stream read    %8.3f s  (%.1f MiB/s, max resident %zu records/chunk)\n",
              read_s, mib / read_s, reader.max_resident_records());
  harness.report("stream_read", params, read_s * 1e3, mib / read_s, "MiB/s");

  t0 = Clock::now();
  {
    tracestore::ArchiveWriter rewriter;
    if (!rewriter.open("bench_tracestore_rw.fdtrace", reader.meta())) return 1;
    for (const auto& rec : all) {
      if (!rewriter.append(rec)) return 1;
    }
    if (!rewriter.close()) return 1;
  }
  const double write_s = seconds_since(t0);
  std::printf("pure write     %8.3f s  (%.1f MiB/s)\n", write_s, mib / write_s);
  harness.report("pure_write", params, write_s * 1e3, mib / write_s, "MiB/s");
  all.clear();
  all.shrink_to_fit();

  // Exponent-phase CPA on one slot: streamed from disk vs in memory.
  attack::StreamingCpaSpec spec;
  spec.slot = 1;
  spec.sample_offsets = {sca::window::kOffExpSum};
  for (std::uint32_t e = 1005; e <= 1053; ++e) spec.guesses.push_back(e);
  spec.model = [](std::uint32_t guess, const attack::KnownOperand& k) {
    return attack::hyp_exponent(guess, k);
  };

  t0 = Clock::now();
  const auto streamed = attack::run_cpa_streaming(reader, spec);
  const double cpa_stream_s = seconds_since(t0);

  t0 = Clock::now();
  const auto sets = sca::run_full_campaign(kp.sk, cfg);
  const double recapture_s = seconds_since(t0);
  t0 = Clock::now();
  const auto inmem = attack::run_cpa_inmemory(sets[spec.slot], spec);
  const double cpa_mem_s = seconds_since(t0);

  std::printf("CPA streamed   %8.3f s  (archive already on disk)\n", cpa_stream_s);
  std::printf("CPA in-memory  %8.3f s  (+%.3f s to re-run the victim)\n", cpa_mem_s,
              recapture_s);
  harness.report("cpa_streamed", params, cpa_stream_s * 1e3,
                 static_cast<double>(streamed.num_traces()) / cpa_stream_s, "traces/s");
  harness.report("cpa_inmemory", params, cpa_mem_s * 1e3,
                 static_cast<double>(inmem.num_traces()) / cpa_mem_s, "traces/s");
  std::printf("rankings match %s  (top guess %u vs %u)\n",
              streamed.ranking() == inmem.ranking() ? "yes" : "NO",
              spec.guesses[streamed.ranking()[0]], spec.guesses[inmem.ranking()[0]]);

  std::remove(path);
  std::remove("bench_tracestore_rw.fdtrace");
  return 0;
}
