#pragma once
// Shared helpers for the reproduction benches.
//
// The figure benches target *one specific coefficient* (the paper's
// Fig. 4 uses 0xC06017BC8036B580), so instead of generating keys until
// that value appears in FFT(f), the rig plants the coefficient as the
// secret operand and drives the exact window computation the signer
// performs (4 fpr_mul + fpr_sub + fpr_add, trigger-bracketed), with
// known operands drawn from the FFT(c) slot distribution (complex
// Gaussian with sigma = q*sqrt(n/24); the real campaign's hashed points
// produce the same statistics).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "attack/cpa.h"
#include "attack/extend_prune.h"
#include "common/rng.h"
#include "fpr/fpr.h"
#include "sca/campaign.h"
#include "sca/capture.h"
#include "sca/device.h"

namespace fd::bench {

// The coefficient attacked in the paper's Fig. 4.
inline constexpr std::uint64_t kPaperCoefficient = 0xC06017BC8036B580ULL;

inline sca::TraceSet synthetic_coefficient_campaign(fpr::Fpr secret_re, fpr::Fpr secret_im,
                                                    std::size_t num_traces,
                                                    const sca::DeviceConfig& device_cfg,
                                                    unsigned logn, std::uint64_t seed) {
  const double sigma_c =
      12289.0 * std::sqrt(static_cast<double>(std::size_t{1} << logn) / 24.0);
  ChaCha20Prng rng(seed ^ 0x51E6);
  sca::EmDeviceModel device(device_cfg, seed ^ 0xD01CE);

  sca::TraceSet set;
  set.slot = 0;
  set.traces.reserve(num_traces);
  for (std::size_t d = 0; d < num_traces; ++d) {
    const fpr::Fpr known_re = fpr::Fpr::from_double(rng.gaussian() * sigma_c);
    const fpr::Fpr known_im = fpr::Fpr::from_double(rng.gaussian() * sigma_c);

    sca::EventWindowRecorder recorder(/*slot=*/0);
    {
      fpr::ScopedLeakageSink scope(&recorder);
      fpr::leak(fpr::LeakageTag::kTriggerBegin, 0);
      const fpr::Fpr t_rr = fpr::fpr_mul(secret_re, known_re);
      const fpr::Fpr t_ii = fpr::fpr_mul(secret_im, known_im);
      const fpr::Fpr t_ri = fpr::fpr_mul(secret_re, known_im);
      const fpr::Fpr t_ir = fpr::fpr_mul(secret_im, known_re);
      (void)fpr::fpr_sub(t_rr, t_ii);
      (void)fpr::fpr_add(t_ri, t_ir);
      fpr::leak(fpr::LeakageTag::kTriggerEnd, 0);
    }
    sca::CapturedTrace ct;
    ct.trace = device.synthesize(recorder.events());
    ct.known_re = known_re;
    ct.known_im = known_im;
    set.traces.push_back(std::move(ct));
  }
  return set;
}

// Correlation evolution of a set of guesses at one sample offset:
// snapshots of r(guess) every `step` traces.
struct Evolution {
  std::vector<std::size_t> checkpoints;
  std::vector<std::vector<double>> r;  // [checkpoint][guess]
};

// Uses view 0 (the multiplication by Re FFT(c)), like the paper's
// single-multiplication plots.
template <typename HypFn>
Evolution correlation_evolution(const attack::ComponentDataset& ds, std::size_t offset,
                                std::size_t num_guesses, HypFn&& hyp, std::size_t step) {
  attack::CpaEngine eng(num_guesses, 1);
  Evolution evo;
  std::vector<double> hyps(num_guesses);
  for (std::size_t t = 0; t < ds.num_traces; ++t) {
    for (std::size_t g = 0; g < num_guesses; ++g) hyps[g] = hyp(g, ds.views[0].known[t]);
    const float sample = ds.views[0].samples[offset][t];
    eng.add_trace(hyps, {&sample, 1});
    if ((t + 1) % step == 0 || t + 1 == ds.num_traces) {
      evo.checkpoints.push_back(t + 1);
      std::vector<double> snap(num_guesses);
      for (std::size_t g = 0; g < num_guesses; ++g) snap[g] = eng.correlation(g, 0);
      evo.r.push_back(std::move(snap));
    }
  }
  return evo;
}

// First checkpoint at which the correct guess is strictly the best AND
// exceeds the 99.99% confidence bound, and stays so until the end.
// Returns 0 if never.
inline std::size_t measurements_to_disclosure(const Evolution& evo, std::size_t correct) {
  std::size_t mtd = 0;
  for (std::size_t c = 0; c < evo.checkpoints.size(); ++c) {
    const double ci = attack::confidence_interval(0.9999, evo.checkpoints[c]);
    bool leads = evo.r[c][correct] > ci;
    for (std::size_t g = 0; g < evo.r[c].size() && leads; ++g) {
      if (g != correct && evo.r[c][g] >= evo.r[c][correct]) leads = false;
    }
    if (leads) {
      if (mtd == 0) mtd = evo.checkpoints[c];
    } else {
      mtd = 0;
    }
  }
  return mtd;
}

}  // namespace fd::bench
