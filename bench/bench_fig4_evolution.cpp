// Reproduces Fig. 4 (e)-(h): correlation evolution at the leakiest
// sample vs. number of traces, for sign / exponent / mantissa-mult /
// mantissa-add on the paper's example coefficient, with the 99.99%
// confidence bound. Reports the measurements-to-disclosure (MTD) per
// component -- the paper's "sign takes ~9k, others become significant
// within ~1k" observation.

#include <cstdio>

#include "bench_harness.h"
#include "bench_util.h"

using namespace fd;
using namespace fd::bench;

namespace {

constexpr std::size_t kTraces = 14000;
constexpr std::size_t kStep = 250;
constexpr double kNoise = 11.0;

void print_evolution(const char* title, const Evolution& evo, std::size_t correct,
                     const std::vector<std::string>& names) {
  std::printf("%s\n", title);
  std::printf("  %-8s %-10s", "traces", "CI(99.99%)");
  for (const auto& n : names) std::printf(" %12s", n.c_str());
  std::printf("\n");
  for (std::size_t c = 0; c < evo.checkpoints.size(); c += 4) {
    std::printf("  %-8zu %-10.5f", evo.checkpoints[c],
                attack::confidence_interval(0.9999, evo.checkpoints[c]));
    for (std::size_t g = 0; g < names.size(); ++g) {
      std::printf(" %+12.5f", evo.r[c][g]);
    }
    std::printf("\n");
  }
  const std::size_t mtd = measurements_to_disclosure(evo, correct);
  if (mtd != 0) {
    std::printf("  -> statistically significant (99.99%%) and leading from %zu traces\n\n", mtd);
  } else {
    std::printf("  -> NOT disclosed within %zu traces\n\n", kTraces);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("fig4_evolution", argc, argv);
  char params[64];
  std::snprintf(params, sizeof params, "traces=%zu step=%zu noise=%.0f", kTraces, kStep,
                kNoise);
  std::printf("== Fig. 4 (e)-(h): correlation vs. trace count, coefficient 0x%016llX ==\n\n",
              static_cast<unsigned long long>(kPaperCoefficient));

  const fpr::Fpr secret = fpr::Fpr::from_bits(kPaperCoefficient);
  const auto split = attack::KnownOperand::from(secret);

  sca::DeviceConfig dev;
  dev.noise_sigma = kNoise;
  bench::WallTimer timer;
  const auto set = synthetic_coefficient_campaign(secret, fpr::Fpr::from_double(-31337.75),
                                                  kTraces, dev, 9, 0xE7);
  harness.report("campaign", params, timer.ms(),
                 static_cast<double>(kTraces) / timer.s(), "traces/s");
  const auto ds = attack::build_component_dataset(set, false);

  // (e) sign: guesses {0 (correct is index secret.sign()), 1}.
  timer.reset();
  {
    const auto evo = correlation_evolution(
        ds, sca::window::kOffSign, 2,
        [&](std::size_t g, const attack::KnownOperand& k) {
          return attack::hyp_sign(g != 0, k);
        },
        kStep);
    print_evolution("(e) sign bit", evo, secret.sign() ? 1 : 0, {"sign=0", "sign=1"});
  }
  harness.report("evolution_sign", params, timer.ms());

  // (f) exponent: correct plus four nearby false guesses.
  timer.reset();
  {
    const std::vector<std::uint32_t> guesses = {secret.biased_exponent(),
                                                secret.biased_exponent() - 3,
                                                secret.biased_exponent() - 1,
                                                secret.biased_exponent() + 1,
                                                secret.biased_exponent() + 3};
    const auto evo = correlation_evolution(
        ds, sca::window::kOffExpSum, guesses.size(),
        [&](std::size_t g, const attack::KnownOperand& k) {
          return attack::hyp_exponent(guesses[g], k);
        },
        kStep);
    print_evolution("(f) exponent", evo, 0,
                    {"correct", "exp-3", "exp-1", "exp+1", "exp+3"});
  }
  harness.report("evolution_exponent", params, timer.ms());

  // (g) mantissa multiplication: correct, its shift (exact tie), randoms.
  timer.reset();
  {
    const std::vector<std::uint32_t> guesses = {
        split.y0, (split.y0 << 1) & fpr::kMantLowMask, split.y0 ^ 0x5A5A5,
        (split.y0 + 0x1234) & fpr::kMantLowMask};
    const auto evo = correlation_evolution(
        ds, sca::window::kOffProdLL, guesses.size(),
        [&](std::size_t g, const attack::KnownOperand& k) {
          return attack::hyp_low_mul_ll(guesses[g], k);
        },
        kStep);
    print_evolution("(g) mantissa multiplication (note the correct/shift tie)", evo, 0,
                    {"correct", "correct<<1", "xor-noise", "offset"});
    const std::size_t last = evo.r.size() - 1;
    std::printf("  tie check at %zu traces: r(correct) - r(correct<<1) = %+.2e\n\n",
                kTraces, evo.r[last][0] - evo.r[last][1]);
  }
  harness.report("evolution_mant_mul", params, timer.ms());

  // (h) mantissa addition: the same guesses, now separable.
  timer.reset();
  {
    const std::vector<std::uint32_t> guesses = {
        split.y0, (split.y0 << 1) & fpr::kMantLowMask, split.y0 ^ 0x5A5A5,
        (split.y0 + 0x1234) & fpr::kMantLowMask};
    const auto evo = correlation_evolution(
        ds, sca::window::kOffAccZ1a, guesses.size(),
        [&](std::size_t g, const attack::KnownOperand& k) {
          return attack::hyp_low_add_z1a(guesses[g], k);
        },
        kStep);
    print_evolution("(h) mantissa addition (prune: the shift tie is broken)", evo, 0,
                    {"correct", "correct<<1", "xor-noise", "offset"});
  }
  harness.report("evolution_mant_add", params, timer.ms());

  return 0;
}
