// Trace inspection: capture a tiny campaign into an .fdtrace archive,
// re-open it with the streaming reader, and print the slot-0 window
// sample by sample with its region annotation -- the pedagogical version
// of the paper's Fig. 3 (which marks the mantissa, exponent and sign
// regions on a real EM trace), now exercising the capture-once path the
// real attack uses.
//
//   ./trace_inspection [logn] [noise_sigma]

#include <cstdio>
#include <cmath>
#include <cstdlib>

#include "common/rng.h"
#include "falcon/falcon.h"
#include "sca/campaign.h"
#include "sca/device.h"
#include "tracestore/archive.h"

using namespace fd;

namespace {

// Event layout of one captured window (4 fpr_mul of 17 events + 2
// fpr_add of 3), mirrored from sca::window. The archive stores only the
// adversary-visible samples; this table restores the Fig. 3 annotation.
struct SampleLabel {
  const char* event;
  const char* region;
};

SampleLabel label_of(std::size_t t) {
  static constexpr SampleLabel kMulLabels[sca::window::kEventsPerMul] = {
      {"sign-xor", "SIGN"},      {"exp-x", "EXPONENT"},   {"exp-y", "EXPONENT"},
      {"exp-sum", "EXPONENT"},   {"x0", "MANTISSA"},      {"x1", "MANTISSA"},
      {"y0", "MANTISSA"},        {"y1", "MANTISSA"},      {"x0*y0", "MANTISSA"},
      {"x0*y1", "MANTISSA"},     {"z1a", "MANTISSA"},     {"x1*y0", "MANTISSA"},
      {"z1b", "MANTISSA"},       {"z2", "MANTISSA"},      {"x1*y1", "MANTISSA"},
      {"zu", "MANTISSA"},        {"mul-result", "MANTISSA"},
  };
  static constexpr SampleLabel kAddLabels[sca::window::kEventsPerAdd] = {
      {"align-shift", "FP-ADD"}, {"mant-sum", "FP-ADD"}, {"add-result", "FP-ADD"},
  };
  const std::size_t mul_span = 4 * sca::window::kEventsPerMul;
  if (t < mul_span) return kMulLabels[t % sca::window::kEventsPerMul];
  return kAddLabels[(t - mul_span) % sca::window::kEventsPerAdd];
}

// Mean absolute sample-to-sample delta: the "is there data-dependent
// structure" eyeball metric used for the hiding comparison.
double mean_delta(const std::vector<float>& samples) {
  double sum = 0.0;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    sum += std::fabs(samples[i] - samples[i - 1]);
  }
  return sum / static_cast<double>(samples.size() - 1);
}

// Captures a 1-query campaign into `path` and streams back the slot-0
// record. Returns false (with a message) on any archive failure.
bool capture_and_reload(const falcon::SecretKey& sk, const sca::CampaignConfig& cfg,
                        const char* path, tracestore::TraceRecord& out,
                        tracestore::ArchiveMeta& meta) {
  const auto res = sca::run_campaign_to_archive(sk, cfg, path);
  if (!res.ok) {
    std::fprintf(stderr, "capture failed: %s\n", res.error.c_str());
    return false;
  }
  tracestore::ArchiveReader reader;
  if (!reader.open(path)) {
    std::fprintf(stderr, "reopen failed: %s\n", reader.error().c_str());
    return false;
  }
  meta = reader.meta();
  while (reader.next(out)) {
    if (out.slot == 0) return true;
  }
  std::fprintf(stderr, "no slot-0 record in the archive\n");
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned logn = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 6;
  const double noise = argc > 2 ? std::atof(argv[2]) : 2.0;
  const char* path = "trace_inspection.fdtrace";

  ChaCha20Prng rng("trace inspection");
  const auto kp = falcon::keygen(logn, rng);

  sca::CampaignConfig cfg;
  cfg.num_traces = 1;
  cfg.device.noise_sigma = noise;
  cfg.seed = 42;

  tracestore::TraceRecord rec;
  tracestore::ArchiveMeta meta;
  if (!capture_and_reload(kp.sk, cfg, path, rec, meta)) return 1;

  std::printf("campaign archived to %s and re-read via ArchiveReader\n", path);
  std::printf("  n=%u, %u slots, %u samples/trace, device sigma=%g, seed=0x%llX\n\n",
              1U << meta.logn, meta.num_slots, meta.samples_per_trace, meta.noise_sigma,
              static_cast<unsigned long long>(meta.seed));
  std::printf("slot-0 window of query %u  (known FFT(c)[0] = %g + %gi)\n\n", rec.index,
              fpr::Fpr::from_bits(rec.known_re_bits).to_double(),
              fpr::Fpr::from_bits(rec.known_im_bits).to_double());

  std::printf("%-5s %-12s %-9s %10s\n", "t", "event", "region", "amplitude");
  for (std::size_t i = 0; i < rec.samples.size(); ++i) {
    const SampleLabel label = label_of(i);
    std::printf("%-5zu %-12s %-9s %10.3f\n", i, label.event, label.region, rec.samples[i]);
  }

  // The hiding countermeasure, seen through the same archive pipeline.
  std::printf("\nsame capture under the 'hiding' countermeasure (constant weight):\n");
  sca::CampaignConfig hid = cfg;
  hid.device.constant_weight = true;
  tracestore::TraceRecord hidden;
  tracestore::ArchiveMeta hidden_meta;
  if (!capture_and_reload(kp.sk, hid, path, hidden, hidden_meta)) return 1;
  std::printf("  archive flags it: constant_weight=%s\n",
              (hidden_meta.flags & tracestore::kFlagConstantWeight) != 0 ? "yes" : "no");
  std::printf("  mean |delta amplitude| data-dependent: %.3f, hidden: %.3f\n",
              mean_delta(rec.samples), mean_delta(hidden.samples));

  std::remove(path);
  return 0;
}
