// Trace inspection: capture one window of the attacked multiplication
// and print it sample by sample with its event annotation -- the
// pedagogical version of the paper's Fig. 3 (which marks the mantissa,
// exponent and sign regions on a real EM trace).
//
//   ./trace_inspection [logn] [noise_sigma]

#include <cstdio>
#include <cmath>
#include <cstdlib>

#include "common/rng.h"
#include "falcon/falcon.h"
#include "sca/campaign.h"
#include "sca/capture.h"
#include "sca/device.h"

using namespace fd;

namespace {

const char* region_of(fpr::LeakageTag tag) {
  using T = fpr::LeakageTag;
  switch (tag) {
    case T::kMulSign:
      return "SIGN";
    case T::kMulExpX:
    case T::kMulExpY:
    case T::kMulExpSum:
      return "EXPONENT";
    case T::kAddAlignShift:
    case T::kAddMantSum:
    case T::kAddResult:
      return "FP-ADD";
    default:
      return "MANTISSA";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned logn = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 6;
  const double noise = argc > 2 ? std::atof(argv[2]) : 2.0;

  ChaCha20Prng rng("trace inspection");
  const auto kp = falcon::keygen(logn, rng);

  // Capture the raw event window of slot 0 from one signing run.
  sca::EventWindowRecorder recorder(/*slot=*/0);
  {
    fpr::ScopedLeakageSink scope(&recorder);
    (void)falcon::sign(kp.sk, "inspected message", rng);
  }
  const auto& events = recorder.events();
  std::printf("captured %zu events in the slot-0 window "
              "(4 fpr_mul of 17 events + 2 fpr_add of 3 events)\n\n",
              events.size());

  sca::DeviceConfig dc;
  dc.noise_sigma = noise;
  sca::EmDeviceModel device(dc, /*noise_seed=*/42);
  const auto trace = device.synthesize(events);

  std::printf("%-5s %-14s %-9s %18s %4s  %9s\n", "t", "event", "region", "value", "HW",
              "amplitude");
  for (std::size_t i = 0; i < events.size(); ++i) {
    std::printf("%-5zu %-14s %-9s 0x%016llX %4d  %9.3f\n", i,
                fpr::leakage_tag_name(events[i].tag), region_of(events[i].tag),
                static_cast<unsigned long long>(events[i].value),
                std::popcount(events[i].value), trace.samples[i]);
  }

  std::printf("\nsame window under the 'hiding' countermeasure (constant weight):\n");
  sca::DeviceConfig hid = dc;
  hid.constant_weight = true;
  sca::EmDeviceModel hidden_device(hid, /*noise_seed=*/42);
  const auto hidden = hidden_device.synthesize(events);
  double spread = 0.0;
  double hidden_spread = 0.0;
  for (std::size_t i = 1; i < events.size(); ++i) {
    spread += std::fabs(trace.samples[i] - trace.samples[i - 1]);
    hidden_spread += std::fabs(hidden.samples[i] - hidden.samples[i - 1]);
  }
  std::printf("  mean |delta amplitude| data-dependent: %.3f, hidden: %.3f\n",
              spread / static_cast<double>(events.size() - 1),
              hidden_spread / static_cast<double>(events.size() - 1));
  return 0;
}
