// Countermeasure evaluation (paper Section V.B): run the same component
// attack against devices protected by hiding (noise amplification,
// constant-weight EM) and misalignment jitter, and report what survives.
//
//   ./countermeasure_eval [logn] [traces]

#include <cstdio>
#include <cstdlib>

#include "attack/extend_prune.h"
#include "common/rng.h"
#include "falcon/falcon.h"
#include "falcon/masked_sign.h"
#include "sca/campaign.h"

using namespace fd;

namespace {

struct Outcome {
  bool sign_ok;
  bool exp_ok;
  bool x0_ok;
  bool x1_ok;
};

Outcome attack_under(const falcon::KeyPair& kp, const sca::DeviceConfig& device,
                     std::size_t traces, std::uint64_t seed) {
  sca::CampaignConfig camp;
  camp.num_traces = traces;
  camp.device = device;
  camp.seed = seed;
  const std::size_t slot = 0;
  const auto set = sca::run_signing_campaign(kp.sk, slot, camp);

  const auto truth = kp.sk.b01[slot];
  const auto split = attack::KnownOperand::from(truth);
  const auto ds = attack::build_component_dataset(set, false);

  attack::ComponentAttackConfig cac;
  cac.low_candidates = attack::MantissaCandidates::adversarial(split.y0, false, 120, seed);
  cac.high_candidates = attack::MantissaCandidates::adversarial(split.y1, true, 120, seed + 1);
  const auto r = attack::attack_component(ds, cac);
  return {r.sign == truth.sign(), r.exponent == truth.biased_exponent(), r.x0 == split.y0,
          r.x1 == split.y1};
}

void report(const char* name, const Outcome& o) {
  std::printf("%-34s sign:%-4s exp:%-4s mant-lo:%-4s mant-hi:%-4s\n", name,
              o.sign_ok ? "OK" : "FAIL", o.exp_ok ? "OK" : "FAIL", o.x0_ok ? "OK" : "FAIL",
              o.x1_ok ? "OK" : "FAIL");
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned logn = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 5;
  const std::size_t traces = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 1200;

  ChaCha20Prng rng("countermeasure eval");
  const auto kp = falcon::keygen(logn, rng);
  std::printf("attacking one FFT(f) component with %zu traces under different devices\n\n",
              traces);

  sca::DeviceConfig base;
  base.noise_sigma = 2.0;
  report("unprotected (sigma = 2)", attack_under(kp, base, traces, 1));

  sca::DeviceConfig noisy = base;
  noisy.noise_sigma = 30.0;
  report("noise amplification (sigma = 30)", attack_under(kp, noisy, traces, 2));

  sca::DeviceConfig hidden = base;
  hidden.constant_weight = true;
  report("hiding (constant-weight EM)", attack_under(kp, hidden, traces, 3));

  sca::DeviceConfig jitter = base;
  jitter.jitter_max = 8;
  report("misalignment jitter (<= 8 samples)", attack_under(kp, jitter, traces, 4));

  // Two-share masking (the countermeasure the paper calls for): same
  // unprotected device, but the signer splits the secret rows per query.
  {
    sca::CampaignConfig camp;
    camp.num_traces = traces;
    camp.device = base;
    camp.seed = 5;
    camp.signer = [](const falcon::SecretKey& sk, std::string_view msg, RandomSource& r) {
      return falcon::sign_masked(sk, msg, r);
    };
    const auto set = sca::run_signing_campaign(kp.sk, 0, camp);
    const auto truth = kp.sk.b01[0];
    const auto split = attack::KnownOperand::from(truth);
    const auto ds = attack::build_component_dataset(set, false);
    attack::ComponentAttackConfig cac;
    cac.low_candidates = attack::MantissaCandidates::adversarial(split.y0, false, 120, 50);
    cac.high_candidates = attack::MantissaCandidates::adversarial(split.y1, true, 120, 51);
    const auto r = attack::attack_component(ds, cac);
    report("masking (two-share signer)",
           {r.sign == truth.sign(), r.exponent == truth.biased_exponent(),
            r.x0 == split.y0, r.x1 == split.y1});
  }

  std::printf(
      "\nhiding removes the data dependence entirely; masking randomizes the\n"
      "intermediates themselves; noise and jitter only raise the number of\n"
      "traces the adversary needs (Section V.B).\n");
  return 0;
}
