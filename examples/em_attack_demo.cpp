// The full "Falcon Down" attack, narrated: capture EM traces of a victim
// signer, run extend-and-prune on one coefficient (showing the
// multiplication false positives and their pruning), then recover the
// whole key and forge a signature the victim's public key accepts.
//
//   ./em_attack_demo [logn] [traces] [threads]
//   (defaults: logn = 5, 900 traces, 1 thread; the thread count changes
//   wall time only -- recovery is bit-identical at any value)

#include <cstdio>
#include <cstdlib>

#include "attack/key_recovery.h"
#include "common/rng.h"
#include "falcon/falcon.h"
#include "sca/campaign.h"

using namespace fd;

int main(int argc, char** argv) {
  const unsigned logn = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 5;
  const std::size_t traces = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 900;
  const std::size_t threads = argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 1;

  std::printf("=== Falcon Down: EM side-channel attack demo ===\n\n");
  ChaCha20Prng rng("victim key seed");
  const auto victim = falcon::keygen(logn, rng);
  std::printf("victim: FALCON-%zu key generated (the adversary sees only h)\n",
              victim.pk.params.n);

  // ---- Phase A: one coefficient, in detail -------------------------------
  std::printf("\n--- phase A: extend-and-prune on one FFT(f) coefficient ---\n");
  sca::CampaignConfig camp;
  camp.num_traces = traces;
  camp.device.noise_sigma = 2.0;
  camp.seed = 0xDE40;
  const std::size_t slot = 1;
  const auto set = sca::run_signing_campaign(victim.sk, slot, camp);
  std::printf("captured %zu aligned windows of the FFT(c).FFT(-f) multiply, slot %zu\n",
              set.traces.size(), slot);

  const auto truth = victim.sk.b01[slot];
  const auto split = attack::KnownOperand::from(truth);
  const auto ds = attack::build_component_dataset(set, /*imag_part=*/false);

  attack::ComponentAttackConfig cac;
  cac.low_candidates = attack::MantissaCandidates::adversarial(split.y0, false, 150, 1);
  cac.high_candidates = attack::MantissaCandidates::adversarial(split.y1, true, 150, 2);

  // Straw man first: multiplication-only attack.
  const auto mul_only = attack::attack_low_mul_only(ds, cac.low_candidates, 6);
  std::printf("\nmultiplication-only attack, top guesses (note the exact ties -- the\n"
              "shift false positives the paper describes):\n");
  for (const auto& s : mul_only.top) {
    std::printf("  x0 guess 0x%07x  r = %+.6f%s\n", s.guess, s.score,
                s.guess == split.y0 ? "   <-- true value" : "");
  }

  const auto comp = attack::attack_component(ds, cac);
  std::printf("\nextend-and-prune result:\n");
  std::printf("  sign      : %d (true %d)\n", comp.sign, truth.sign());
  std::printf("  exponent  : %u (true %u, tie class of %zu resolved by template)\n",
              comp.exponent, truth.biased_exponent(), comp.exp_phase.top.size());
  std::printf("  mant low  : 0x%07x (true 0x%07x), prune r = %+.4f\n", comp.x0, split.y0,
              comp.low_prune.score);
  std::printf("  mant high : 0x%07x (true 0x%07x), prune r = %+.4f\n", comp.x1, split.y1,
              comp.high_prune.score);
  std::printf("  assembled : 0x%016llX\n  true      : 0x%016llX\n",
              static_cast<unsigned long long>(comp.bits),
              static_cast<unsigned long long>(truth.bits()));

  // ---- Phase B: the whole key, then forgery ------------------------------
  std::printf("\n--- phase B: full key recovery and forgery ---\n");
  attack::KeyRecoveryConfig cfg;
  cfg.num_traces = traces;
  cfg.device.noise_sigma = 2.0;
  cfg.adversarial_random = 150;
  cfg.seed = 0xDE40;
  cfg.threads = threads;
  const auto res = attack::recover_key(victim, cfg);

  std::printf("components recovered exactly: %zu / %zu\n", res.components_correct,
              res.components_total);
  std::printf("f recovered exactly: %s\n", res.f_exact ? "YES" : "no");
  std::printf("g derived from public key: %s\n", res.derived_g == victim.sk.g ? "YES" : "no");
  std::printf("NTRU equation re-solved for F, G: %s\n", res.ntru_solved ? "YES" : "no");
  std::printf("forged signature verified by victim's PUBLIC key: %s\n",
              res.forgery_verified ? "YES -- key fully compromised" : "no");

  return res.forgery_verified ? 0 : 1;
}
