// Telemetry end to end: run a fixed-seed mini-campaign with a JSONL
// sink installed, attack a few components with rank-evolution snapshots
// enabled, and leave behind a telemetry file that fd-report renders as
// per-coefficient convergence tables (the paper's Fig. 4 e-h, offline).
//
//   ./convergence_report [logn] [traces] [out.jsonl] [threads]
//   ./fd-report out.jsonl
//   ./fd-report out.jsonl --label slot1.re
//
// With threads > 1 the per-component analyses fan out across an exec
// pool: the numbers are bit-identical (each component's CPA fold stays
// serial), only the interleaving of telemetry lines in out.jsonl
// changes -- fd-report groups by label, so its tables do not.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "attack/extend_prune.h"
#include "attack/hypothesis.h"
#include "attack/streaming_cpa.h"
#include "common/rng.h"
#include "exec/parallel_for.h"
#include "exec/thread_pool.h"
#include "falcon/falcon.h"
#include "obs/obs.h"
#include "sca/campaign.h"

using namespace fd;

int main(int argc, char** argv) {
  const unsigned logn = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const std::size_t traces = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 400;
  const std::string out_path = argc > 3 ? argv[3] : "convergence.jsonl";
  const std::size_t threads = argc > 4 ? static_cast<std::size_t>(std::atoll(argv[4])) : 1;

  if (!FD_OBS_ENABLED) {
    std::printf("built with FD_OBS=OFF: telemetry compiles to no-ops, the attack\n"
                "still runs but %s will stay empty.\n", out_path.c_str());
  }

  obs::JsonLinesSink jsonl_sink(out_path);
  if (!jsonl_sink.ok()) {
    std::fprintf(stderr, "cannot open %s: %s\n", out_path.c_str(),
                 jsonl_sink.error().c_str());
    return 2;
  }
  obs::ScopedTelemetrySink scope(&jsonl_sink);

  std::printf("=== convergence telemetry demo (FALCON-%u, %zu traces) ===\n",
              1U << logn, traces);
  ChaCha20Prng rng("victim key seed");
  const auto victim = falcon::keygen(logn, rng);

  sca::CampaignConfig camp;
  camp.num_traces = traces;
  camp.device.noise_sigma = 2.0;
  camp.seed = 0xC04F;
  camp.progress_every = traces / 4 == 0 ? 1 : traces / 4;
  camp.progress = [](std::size_t done, std::size_t total) {
    std::printf("  campaign: %zu / %zu signing queries\n", done, total);
  };
  const auto sets = sca::run_full_campaign(victim.sk, camp);

  const std::size_t hn = victim.sk.params.n >> 1;
  const std::size_t demo_slots[] = {0, 1, hn - 1};
  struct DemoJob {
    std::size_t slot = 0;
    bool imag = false;
  };
  std::vector<DemoJob> jobs;
  for (const std::size_t slot : demo_slots) {
    for (const bool imag : {false, true}) jobs.push_back({slot, imag});
  }

  struct DemoResult {
    std::string label;
    std::uint32_t top_guess = 0;
    std::uint32_t truth_y0 = 0;
    double peak = 0.0;
    std::uint64_t res_bits = 0;
    std::uint64_t truth_bits = 0;
  };
  std::unique_ptr<exec::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<exec::ThreadPool>(threads);
  const std::vector<DemoResult> results =
      exec::parallel_map<DemoResult>(pool.get(), jobs.size(), [&](std::size_t j) {
        const auto [slot, imag] = jobs[j];
        DemoResult out;
        out.label = "slot" + std::to_string(slot) + (imag ? ".im" : ".re");
        const fpr::Fpr truth = victim.sk.b01[slot + (imag ? hn : 0)];
        const attack::KnownOperand split = attack::KnownOperand::from(truth);
        out.truth_y0 = split.y0;
        out.truth_bits = truth.bits();

        // Rank-evolution snapshots of the low-mantissa *prune* CPA (the
        // z1a addition): unlike the multiplication, it is not
        // shift-invariant, so the truth's rank converges to 0 as traces
        // accumulate -- the Fig. 4 e-h curve shape. Candidates are the
        // truth's shift-family plus random fillers.
        attack::StreamingCpaSpec spec;
        spec.slot = slot;
        spec.imag_part = imag;
        spec.sample_offsets = {sca::window::kOffAccZ1a};
        spec.guesses = attack::MantissaCandidates::adversarial(
            split.y0, /*high=*/false, 60, 0xC04F ^ (slot * 2 + imag));
        spec.model = [](std::uint32_t guess, const attack::KnownOperand& k) {
          return attack::hyp_low_add_z1a(guess, k);
        };
        spec.snapshot_every = traces / 8 == 0 ? 1 : traces / 8;
        spec.truth_guess = split.y0;
        spec.label = out.label;
        const attack::CpaEngine eng = attack::run_cpa_inmemory(sets[slot], spec);
        const auto order = eng.ranking();
        out.top_guess = spec.guesses[order[0]];
        out.peak = eng.peak(order[0]);

        // Full extend-and-prune on the same component: ep.phase events.
        attack::ComponentAttackConfig cac;
        cac.obs_label = out.label;
        cac.low_candidates = spec.guesses;
        cac.high_candidates = attack::MantissaCandidates::adversarial(
            split.y1, /*high=*/true, 60, 0xC04F ^ (slot * 5 + imag));
        const attack::ComponentDataset ds = attack::build_component_dataset(sets[slot], imag);
        out.res_bits = attack::attack_component(ds, cac).bits;
        return out;
      });
  for (const auto& r : results) {
    std::printf("  %-10s final top-1 x0 guess 0x%07x (truth 0x%07x)%s, r = %+.4f\n",
                r.label.c_str(), r.top_guess, r.truth_y0,
                r.top_guess == r.truth_y0 ? " CORRECT" : "", r.peak);
    if (r.res_bits != r.truth_bits) {
      std::printf("  %-10s component not exact (0x%016llX vs 0x%016llX)\n", r.label.c_str(),
                  static_cast<unsigned long long>(r.res_bits),
                  static_cast<unsigned long long>(r.truth_bits));
    }
  }

  obs::MetricsRegistry::global().export_to(jsonl_sink);
  jsonl_sink.flush();
  std::printf("\ntelemetry written to %s -- render it with:\n  fd-report %s\n",
              out_path.c_str(), out_path.c_str());
  return 0;
}
