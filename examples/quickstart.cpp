// Quickstart: generate a FALCON key pair, sign a message, verify it, and
// round-trip everything through the wire formats.
//
//   ./quickstart [logn]        (default logn = 9, i.e. FALCON-512)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/hex.h"
#include "common/rng.h"
#include "falcon/falcon.h"

int main(int argc, char** argv) {
  const unsigned logn = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 9;
  if (logn < 2 || logn > 10) {
    std::fprintf(stderr, "usage: %s [logn in 2..10]\n", argv[0]);
    return 1;
  }

  fd::ChaCha20Prng rng("quickstart example seed");

  std::printf("== FALCON-%zu (logn = %u) ==\n", std::size_t{1} << logn, logn);
  const auto params = fd::falcon::Params::get(logn);
  std::printf("sigma = %.3f, sigma_min = %.6f, bound^2 = %llu, sig bytes = %zu\n\n",
              params.sigma, params.sigma_min,
              static_cast<unsigned long long>(params.bound_sq), params.sig_bytes);

  std::printf("[1] key generation...\n");
  const auto kp = fd::falcon::keygen(logn, rng);
  std::printf("    f[0..7]  =");
  for (int i = 0; i < 8; ++i) std::printf(" %d", kp.sk.f[i]);
  std::printf("\n    h[0..7]  =");
  for (int i = 0; i < 8; ++i) std::printf(" %u", kp.pk.h[i]);
  std::printf("\n");

  const auto pk_bytes = fd::falcon::encode_public_key(kp.pk);
  const auto sk_bytes = fd::falcon::encode_secret_key(kp.sk);
  std::printf("    public key: %zu bytes, secret key: %zu bytes\n\n", pk_bytes.size(),
              sk_bytes.size());

  const std::string message = "FALCON quickstart message";
  std::printf("[2] signing \"%s\"...\n", message.c_str());
  const auto sig = fd::falcon::sign(kp.sk, message, rng);
  const auto sig_bytes = fd::falcon::encode_signature(sig, params);
  if (!sig_bytes) {
    std::fprintf(stderr, "signature encoding failed\n");
    return 1;
  }
  std::printf("    signature: %zu bytes, salt = %s...\n", sig_bytes->size(),
              fd::to_hex({sig.salt, 8}).c_str());

  std::printf("[3] verifying...\n");
  const bool ok = fd::falcon::verify(kp.pk, message, sig);
  std::printf("    genuine message: %s\n", ok ? "ACCEPT" : "REJECT");
  const bool bad = fd::falcon::verify(kp.pk, "tampered message", sig);
  std::printf("    tampered message: %s\n", bad ? "ACCEPT" : "REJECT");

  std::printf("[4] wire-format round trip...\n");
  const auto pk2 = fd::falcon::decode_public_key(pk_bytes);
  const auto sig2 = fd::falcon::decode_signature(*sig_bytes, params);
  const bool ok2 = pk2 && sig2 && fd::falcon::verify(*pk2, message, *sig2);
  std::printf("    decoded pk + decoded sig: %s\n", ok2 ? "ACCEPT" : "REJECT");

  return ok && !bad && ok2 ? 0 : 1;
}
