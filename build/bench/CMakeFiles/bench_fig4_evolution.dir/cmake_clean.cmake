file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_evolution.dir/bench_fig4_evolution.cpp.o"
  "CMakeFiles/bench_fig4_evolution.dir/bench_fig4_evolution.cpp.o.d"
  "bench_fig4_evolution"
  "bench_fig4_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
