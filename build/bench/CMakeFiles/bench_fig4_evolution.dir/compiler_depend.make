# Empty compiler generated dependencies file for bench_fig4_evolution.
# This may be replaced when dependencies are built.
