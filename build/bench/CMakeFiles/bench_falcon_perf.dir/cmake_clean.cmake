file(REMOVE_RECURSE
  "CMakeFiles/bench_falcon_perf.dir/bench_falcon_perf.cpp.o"
  "CMakeFiles/bench_falcon_perf.dir/bench_falcon_perf.cpp.o.d"
  "bench_falcon_perf"
  "bench_falcon_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_falcon_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
