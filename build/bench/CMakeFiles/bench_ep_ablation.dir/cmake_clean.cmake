file(REMOVE_RECURSE
  "CMakeFiles/bench_ep_ablation.dir/bench_ep_ablation.cpp.o"
  "CMakeFiles/bench_ep_ablation.dir/bench_ep_ablation.cpp.o.d"
  "bench_ep_ablation"
  "bench_ep_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ep_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
