file(REMOVE_RECURSE
  "CMakeFiles/bench_single_trace_keyload.dir/bench_single_trace_keyload.cpp.o"
  "CMakeFiles/bench_single_trace_keyload.dir/bench_single_trace_keyload.cpp.o.d"
  "bench_single_trace_keyload"
  "bench_single_trace_keyload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_single_trace_keyload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
