# Empty dependencies file for bench_single_trace_keyload.
# This may be replaced when dependencies are built.
