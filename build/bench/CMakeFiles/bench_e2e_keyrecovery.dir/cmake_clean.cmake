file(REMOVE_RECURSE
  "CMakeFiles/bench_e2e_keyrecovery.dir/bench_e2e_keyrecovery.cpp.o"
  "CMakeFiles/bench_e2e_keyrecovery.dir/bench_e2e_keyrecovery.cpp.o.d"
  "bench_e2e_keyrecovery"
  "bench_e2e_keyrecovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2e_keyrecovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
