
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e2e_keyrecovery.cpp" "bench/CMakeFiles/bench_e2e_keyrecovery.dir/bench_e2e_keyrecovery.cpp.o" "gcc" "bench/CMakeFiles/bench_e2e_keyrecovery.dir/bench_e2e_keyrecovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/fd_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/sca/CMakeFiles/fd_sca.dir/DependInfo.cmake"
  "/root/repo/build/src/falcon/CMakeFiles/fd_falcon.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/fd_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/zq/CMakeFiles/fd_zq.dir/DependInfo.cmake"
  "/root/repo/build/src/fpr/CMakeFiles/fd_fpr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
