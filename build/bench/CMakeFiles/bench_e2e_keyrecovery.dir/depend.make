# Empty dependencies file for bench_e2e_keyrecovery.
# This may be replaced when dependencies are built.
