# Empty dependencies file for bench_fig4_correlation.
# This may be replaced when dependencies are built.
