file(REMOVE_RECURSE
  "CMakeFiles/bench_template_attack.dir/bench_template_attack.cpp.o"
  "CMakeFiles/bench_template_attack.dir/bench_template_attack.cpp.o.d"
  "bench_template_attack"
  "bench_template_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_template_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
