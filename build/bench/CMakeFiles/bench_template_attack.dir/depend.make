# Empty dependencies file for bench_template_attack.
# This may be replaced when dependencies are built.
