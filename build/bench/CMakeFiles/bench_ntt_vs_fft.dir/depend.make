# Empty dependencies file for bench_ntt_vs_fft.
# This may be replaced when dependencies are built.
