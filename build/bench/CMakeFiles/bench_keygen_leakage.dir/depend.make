# Empty dependencies file for bench_keygen_leakage.
# This may be replaced when dependencies are built.
