file(REMOVE_RECURSE
  "CMakeFiles/bench_keygen_leakage.dir/bench_keygen_leakage.cpp.o"
  "CMakeFiles/bench_keygen_leakage.dir/bench_keygen_leakage.cpp.o.d"
  "bench_keygen_leakage"
  "bench_keygen_leakage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_keygen_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
