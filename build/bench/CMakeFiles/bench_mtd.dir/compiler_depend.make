# Empty compiler generated dependencies file for bench_mtd.
# This may be replaced when dependencies are built.
