file(REMOVE_RECURSE
  "CMakeFiles/bench_mtd.dir/bench_mtd.cpp.o"
  "CMakeFiles/bench_mtd.dir/bench_mtd.cpp.o.d"
  "bench_mtd"
  "bench_mtd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mtd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
