# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bigint[1]_include.cmake")
include("/root/repo/build/tests/test_shake256[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_fpr[1]_include.cmake")
include("/root/repo/build/tests/test_fpr_leakage[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_zq[1]_include.cmake")
include("/root/repo/build/tests/test_params[1]_include.cmake")
include("/root/repo/build/tests/test_sampler[1]_include.cmake")
include("/root/repo/build/tests/test_ntru_solve[1]_include.cmake")
include("/root/repo/build/tests/test_falcon[1]_include.cmake")
include("/root/repo/build/tests/test_codec[1]_include.cmake")
include("/root/repo/build/tests/test_sca[1]_include.cmake")
include("/root/repo/build/tests/test_attack[1]_include.cmake")
include("/root/repo/build/tests/test_key_recovery[1]_include.cmake")
include("/root/repo/build/tests/test_masked_sign[1]_include.cmake")
include("/root/repo/build/tests/test_template_attack[1]_include.cmake")
include("/root/repo/build/tests/test_tree[1]_include.cmake")
include("/root/repo/build/tests/test_fpr_edges[1]_include.cmake")
include("/root/repo/build/tests/test_attack_internals[1]_include.cmake")
include("/root/repo/build/tests/test_zq_leakage[1]_include.cmake")
include("/root/repo/build/tests/test_falcon_full_sizes[1]_include.cmake")
include("/root/repo/build/tests/test_f_row_attack[1]_include.cmake")
include("/root/repo/build/tests/test_op_parser[1]_include.cmake")
include("/root/repo/build/tests/test_reproducibility[1]_include.cmake")
