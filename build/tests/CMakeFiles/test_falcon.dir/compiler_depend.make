# Empty compiler generated dependencies file for test_falcon.
# This may be replaced when dependencies are built.
