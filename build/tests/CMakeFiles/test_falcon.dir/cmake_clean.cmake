file(REMOVE_RECURSE
  "CMakeFiles/test_falcon.dir/test_falcon.cpp.o"
  "CMakeFiles/test_falcon.dir/test_falcon.cpp.o.d"
  "test_falcon"
  "test_falcon.pdb"
  "test_falcon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_falcon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
