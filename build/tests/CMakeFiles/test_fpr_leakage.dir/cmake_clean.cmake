file(REMOVE_RECURSE
  "CMakeFiles/test_fpr_leakage.dir/test_fpr_leakage.cpp.o"
  "CMakeFiles/test_fpr_leakage.dir/test_fpr_leakage.cpp.o.d"
  "test_fpr_leakage"
  "test_fpr_leakage.pdb"
  "test_fpr_leakage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpr_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
