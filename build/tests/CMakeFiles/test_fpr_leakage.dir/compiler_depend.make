# Empty compiler generated dependencies file for test_fpr_leakage.
# This may be replaced when dependencies are built.
