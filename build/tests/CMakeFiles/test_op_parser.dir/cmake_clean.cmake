file(REMOVE_RECURSE
  "CMakeFiles/test_op_parser.dir/test_op_parser.cpp.o"
  "CMakeFiles/test_op_parser.dir/test_op_parser.cpp.o.d"
  "test_op_parser"
  "test_op_parser.pdb"
  "test_op_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_op_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
