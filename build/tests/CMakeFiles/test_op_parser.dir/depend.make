# Empty dependencies file for test_op_parser.
# This may be replaced when dependencies are built.
