file(REMOVE_RECURSE
  "CMakeFiles/test_shake256.dir/test_shake256.cpp.o"
  "CMakeFiles/test_shake256.dir/test_shake256.cpp.o.d"
  "test_shake256"
  "test_shake256.pdb"
  "test_shake256[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shake256.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
