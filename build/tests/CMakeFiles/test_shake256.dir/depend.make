# Empty dependencies file for test_shake256.
# This may be replaced when dependencies are built.
