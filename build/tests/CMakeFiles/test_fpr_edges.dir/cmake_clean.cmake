file(REMOVE_RECURSE
  "CMakeFiles/test_fpr_edges.dir/test_fpr_edges.cpp.o"
  "CMakeFiles/test_fpr_edges.dir/test_fpr_edges.cpp.o.d"
  "test_fpr_edges"
  "test_fpr_edges.pdb"
  "test_fpr_edges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpr_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
