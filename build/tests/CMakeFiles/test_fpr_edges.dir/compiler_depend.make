# Empty compiler generated dependencies file for test_fpr_edges.
# This may be replaced when dependencies are built.
