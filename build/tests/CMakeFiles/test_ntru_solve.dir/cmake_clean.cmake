file(REMOVE_RECURSE
  "CMakeFiles/test_ntru_solve.dir/test_ntru_solve.cpp.o"
  "CMakeFiles/test_ntru_solve.dir/test_ntru_solve.cpp.o.d"
  "test_ntru_solve"
  "test_ntru_solve.pdb"
  "test_ntru_solve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ntru_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
