file(REMOVE_RECURSE
  "CMakeFiles/test_fpr.dir/test_fpr.cpp.o"
  "CMakeFiles/test_fpr.dir/test_fpr.cpp.o.d"
  "test_fpr"
  "test_fpr.pdb"
  "test_fpr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
