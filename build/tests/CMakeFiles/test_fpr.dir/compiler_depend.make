# Empty compiler generated dependencies file for test_fpr.
# This may be replaced when dependencies are built.
