file(REMOVE_RECURSE
  "CMakeFiles/test_falcon_full_sizes.dir/test_falcon_full_sizes.cpp.o"
  "CMakeFiles/test_falcon_full_sizes.dir/test_falcon_full_sizes.cpp.o.d"
  "test_falcon_full_sizes"
  "test_falcon_full_sizes.pdb"
  "test_falcon_full_sizes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_falcon_full_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
