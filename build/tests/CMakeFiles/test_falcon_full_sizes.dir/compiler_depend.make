# Empty compiler generated dependencies file for test_falcon_full_sizes.
# This may be replaced when dependencies are built.
