file(REMOVE_RECURSE
  "CMakeFiles/test_zq_leakage.dir/test_zq_leakage.cpp.o"
  "CMakeFiles/test_zq_leakage.dir/test_zq_leakage.cpp.o.d"
  "test_zq_leakage"
  "test_zq_leakage.pdb"
  "test_zq_leakage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zq_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
