# Empty compiler generated dependencies file for test_zq_leakage.
# This may be replaced when dependencies are built.
