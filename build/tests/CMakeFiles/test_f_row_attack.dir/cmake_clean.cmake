file(REMOVE_RECURSE
  "CMakeFiles/test_f_row_attack.dir/test_f_row_attack.cpp.o"
  "CMakeFiles/test_f_row_attack.dir/test_f_row_attack.cpp.o.d"
  "test_f_row_attack"
  "test_f_row_attack.pdb"
  "test_f_row_attack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_f_row_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
