# Empty dependencies file for test_f_row_attack.
# This may be replaced when dependencies are built.
