# Empty dependencies file for test_attack_internals.
# This may be replaced when dependencies are built.
