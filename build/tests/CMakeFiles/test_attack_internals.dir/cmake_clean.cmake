file(REMOVE_RECURSE
  "CMakeFiles/test_attack_internals.dir/test_attack_internals.cpp.o"
  "CMakeFiles/test_attack_internals.dir/test_attack_internals.cpp.o.d"
  "test_attack_internals"
  "test_attack_internals.pdb"
  "test_attack_internals[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attack_internals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
