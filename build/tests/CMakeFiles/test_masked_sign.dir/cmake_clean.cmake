file(REMOVE_RECURSE
  "CMakeFiles/test_masked_sign.dir/test_masked_sign.cpp.o"
  "CMakeFiles/test_masked_sign.dir/test_masked_sign.cpp.o.d"
  "test_masked_sign"
  "test_masked_sign.pdb"
  "test_masked_sign[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_masked_sign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
