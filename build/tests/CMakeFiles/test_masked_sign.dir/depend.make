# Empty dependencies file for test_masked_sign.
# This may be replaced when dependencies are built.
