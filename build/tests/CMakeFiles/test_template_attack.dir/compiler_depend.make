# Empty compiler generated dependencies file for test_template_attack.
# This may be replaced when dependencies are built.
