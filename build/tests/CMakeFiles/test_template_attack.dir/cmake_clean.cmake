file(REMOVE_RECURSE
  "CMakeFiles/test_template_attack.dir/test_template_attack.cpp.o"
  "CMakeFiles/test_template_attack.dir/test_template_attack.cpp.o.d"
  "test_template_attack"
  "test_template_attack.pdb"
  "test_template_attack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_template_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
