file(REMOVE_RECURSE
  "CMakeFiles/test_zq.dir/test_zq.cpp.o"
  "CMakeFiles/test_zq.dir/test_zq.cpp.o.d"
  "test_zq"
  "test_zq.pdb"
  "test_zq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
