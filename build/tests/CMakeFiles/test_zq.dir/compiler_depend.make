# Empty compiler generated dependencies file for test_zq.
# This may be replaced when dependencies are built.
