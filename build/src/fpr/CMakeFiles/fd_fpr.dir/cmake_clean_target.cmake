file(REMOVE_RECURSE
  "libfd_fpr.a"
)
