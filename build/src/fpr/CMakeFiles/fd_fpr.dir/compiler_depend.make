# Empty compiler generated dependencies file for fd_fpr.
# This may be replaced when dependencies are built.
