file(REMOVE_RECURSE
  "CMakeFiles/fd_fpr.dir/fpr.cpp.o"
  "CMakeFiles/fd_fpr.dir/fpr.cpp.o.d"
  "libfd_fpr.a"
  "libfd_fpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_fpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
