file(REMOVE_RECURSE
  "libfd_zq.a"
)
