# Empty compiler generated dependencies file for fd_zq.
# This may be replaced when dependencies are built.
