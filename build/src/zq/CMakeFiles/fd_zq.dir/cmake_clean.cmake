file(REMOVE_RECURSE
  "CMakeFiles/fd_zq.dir/zq.cpp.o"
  "CMakeFiles/fd_zq.dir/zq.cpp.o.d"
  "libfd_zq.a"
  "libfd_zq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_zq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
