file(REMOVE_RECURSE
  "CMakeFiles/fd_attack.dir/cpa.cpp.o"
  "CMakeFiles/fd_attack.dir/cpa.cpp.o.d"
  "CMakeFiles/fd_attack.dir/extend_prune.cpp.o"
  "CMakeFiles/fd_attack.dir/extend_prune.cpp.o.d"
  "CMakeFiles/fd_attack.dir/key_recovery.cpp.o"
  "CMakeFiles/fd_attack.dir/key_recovery.cpp.o.d"
  "CMakeFiles/fd_attack.dir/template_attack.cpp.o"
  "CMakeFiles/fd_attack.dir/template_attack.cpp.o.d"
  "libfd_attack.a"
  "libfd_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
