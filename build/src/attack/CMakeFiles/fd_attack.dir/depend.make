# Empty dependencies file for fd_attack.
# This may be replaced when dependencies are built.
