file(REMOVE_RECURSE
  "libfd_attack.a"
)
