
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/falcon/codec.cpp" "src/falcon/CMakeFiles/fd_falcon.dir/codec.cpp.o" "gcc" "src/falcon/CMakeFiles/fd_falcon.dir/codec.cpp.o.d"
  "/root/repo/src/falcon/keygen.cpp" "src/falcon/CMakeFiles/fd_falcon.dir/keygen.cpp.o" "gcc" "src/falcon/CMakeFiles/fd_falcon.dir/keygen.cpp.o.d"
  "/root/repo/src/falcon/ntru_solve.cpp" "src/falcon/CMakeFiles/fd_falcon.dir/ntru_solve.cpp.o" "gcc" "src/falcon/CMakeFiles/fd_falcon.dir/ntru_solve.cpp.o.d"
  "/root/repo/src/falcon/params.cpp" "src/falcon/CMakeFiles/fd_falcon.dir/params.cpp.o" "gcc" "src/falcon/CMakeFiles/fd_falcon.dir/params.cpp.o.d"
  "/root/repo/src/falcon/sampler.cpp" "src/falcon/CMakeFiles/fd_falcon.dir/sampler.cpp.o" "gcc" "src/falcon/CMakeFiles/fd_falcon.dir/sampler.cpp.o.d"
  "/root/repo/src/falcon/sign.cpp" "src/falcon/CMakeFiles/fd_falcon.dir/sign.cpp.o" "gcc" "src/falcon/CMakeFiles/fd_falcon.dir/sign.cpp.o.d"
  "/root/repo/src/falcon/tree.cpp" "src/falcon/CMakeFiles/fd_falcon.dir/tree.cpp.o" "gcc" "src/falcon/CMakeFiles/fd_falcon.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fpr/CMakeFiles/fd_fpr.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/fd_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/zq/CMakeFiles/fd_zq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
