file(REMOVE_RECURSE
  "libfd_falcon.a"
)
