# Empty dependencies file for fd_falcon.
# This may be replaced when dependencies are built.
