file(REMOVE_RECURSE
  "CMakeFiles/fd_falcon.dir/codec.cpp.o"
  "CMakeFiles/fd_falcon.dir/codec.cpp.o.d"
  "CMakeFiles/fd_falcon.dir/keygen.cpp.o"
  "CMakeFiles/fd_falcon.dir/keygen.cpp.o.d"
  "CMakeFiles/fd_falcon.dir/ntru_solve.cpp.o"
  "CMakeFiles/fd_falcon.dir/ntru_solve.cpp.o.d"
  "CMakeFiles/fd_falcon.dir/params.cpp.o"
  "CMakeFiles/fd_falcon.dir/params.cpp.o.d"
  "CMakeFiles/fd_falcon.dir/sampler.cpp.o"
  "CMakeFiles/fd_falcon.dir/sampler.cpp.o.d"
  "CMakeFiles/fd_falcon.dir/sign.cpp.o"
  "CMakeFiles/fd_falcon.dir/sign.cpp.o.d"
  "CMakeFiles/fd_falcon.dir/tree.cpp.o"
  "CMakeFiles/fd_falcon.dir/tree.cpp.o.d"
  "libfd_falcon.a"
  "libfd_falcon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_falcon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
