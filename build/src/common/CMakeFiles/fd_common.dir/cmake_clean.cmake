file(REMOVE_RECURSE
  "CMakeFiles/fd_common.dir/bigint.cpp.o"
  "CMakeFiles/fd_common.dir/bigint.cpp.o.d"
  "CMakeFiles/fd_common.dir/hex.cpp.o"
  "CMakeFiles/fd_common.dir/hex.cpp.o.d"
  "CMakeFiles/fd_common.dir/rng.cpp.o"
  "CMakeFiles/fd_common.dir/rng.cpp.o.d"
  "CMakeFiles/fd_common.dir/shake256.cpp.o"
  "CMakeFiles/fd_common.dir/shake256.cpp.o.d"
  "libfd_common.a"
  "libfd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
