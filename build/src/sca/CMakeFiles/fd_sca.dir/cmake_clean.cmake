file(REMOVE_RECURSE
  "CMakeFiles/fd_sca.dir/campaign.cpp.o"
  "CMakeFiles/fd_sca.dir/campaign.cpp.o.d"
  "libfd_sca.a"
  "libfd_sca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_sca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
