# Empty compiler generated dependencies file for fd_sca.
# This may be replaced when dependencies are built.
