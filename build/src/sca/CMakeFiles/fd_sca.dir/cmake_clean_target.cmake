file(REMOVE_RECURSE
  "libfd_sca.a"
)
