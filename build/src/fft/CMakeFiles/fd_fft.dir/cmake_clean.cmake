file(REMOVE_RECURSE
  "CMakeFiles/fd_fft.dir/fft.cpp.o"
  "CMakeFiles/fd_fft.dir/fft.cpp.o.d"
  "libfd_fft.a"
  "libfd_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
