# Empty dependencies file for fd_fft.
# This may be replaced when dependencies are built.
