file(REMOVE_RECURSE
  "libfd_fft.a"
)
