file(REMOVE_RECURSE
  "CMakeFiles/em_attack_demo.dir/em_attack_demo.cpp.o"
  "CMakeFiles/em_attack_demo.dir/em_attack_demo.cpp.o.d"
  "em_attack_demo"
  "em_attack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/em_attack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
