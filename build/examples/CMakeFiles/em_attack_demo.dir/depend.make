# Empty dependencies file for em_attack_demo.
# This may be replaced when dependencies are built.
