# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "5")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_em_attack_demo "/root/repo/build/examples/em_attack_demo" "3" "500")
set_tests_properties(example_em_attack_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_inspection "/root/repo/build/examples/trace_inspection" "4" "1.0")
set_tests_properties(example_trace_inspection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_countermeasure_eval "/root/repo/build/examples/countermeasure_eval" "4" "600")
set_tests_properties(example_countermeasure_eval PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
