// Capture-once/attack-many equivalence: a seeded campaign streamed to
// an .fdtrace archive and re-read through ArchiveReader must reproduce
// the in-memory pipeline exactly -- same traces, same CpaEngine sums,
// same ranking, same recovered component -- with reader memory bounded
// by the chunk size rather than the campaign size.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "attack/streaming_cpa.h"
#include "common/rng.h"
#include "falcon/falcon.h"
#include "sca/campaign.h"
#include "tracestore/archive.h"

namespace fd::attack {
namespace {

using fpr::Fpr;

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) { std::remove(path.c_str()); }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

sca::CampaignConfig small_config(std::uint64_t seed) {
  sca::CampaignConfig cfg;
  cfg.num_traces = 220;
  cfg.device.noise_sigma = 2.0;
  cfg.seed = seed;
  return cfg;
}

StreamingCpaSpec exponent_spec(std::size_t slot) {
  StreamingCpaSpec spec;
  spec.slot = slot;
  spec.sample_offsets = {sca::window::kOffExpSum};
  for (std::uint32_t e = 1005; e <= 1053; ++e) spec.guesses.push_back(e);
  spec.model = [](std::uint32_t guess, const KnownOperand& k) {
    return hyp_exponent(guess, k);
  };
  return spec;
}

TEST(StreamingCpa, ArchiveReproducesInMemoryCampaignBitExactly) {
  ChaCha20Prng rng(0xC0FE);
  const auto kp = falcon::keygen(4, rng);
  const auto cfg = small_config(0xC0FE);

  const auto sets = sca::run_full_campaign(kp.sk, cfg);

  TempFile tmp("sc_campaign.fdtrace");
  const auto res = sca::run_campaign_to_archive(kp.sk, cfg, tmp.path);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.queries, cfg.num_traces);
  EXPECT_EQ(res.records, cfg.num_traces * (kp.sk.params.n >> 1));

  tracestore::ArchiveReader reader;
  ASSERT_TRUE(reader.open(tmp.path)) << reader.error();
  EXPECT_EQ(reader.meta().logn, 4U);
  EXPECT_EQ(reader.meta().seed, cfg.seed);

  std::vector<sca::TraceSet> loaded;
  ASSERT_TRUE(sca::load_all_trace_sets(reader, loaded));
  ASSERT_EQ(loaded.size(), sets.size());
  for (std::size_t s = 0; s < sets.size(); ++s) {
    ASSERT_EQ(loaded[s].traces.size(), sets[s].traces.size()) << "slot " << s;
    for (std::size_t t = 0; t < sets[s].traces.size(); ++t) {
      const auto& mem = sets[s].traces[t];
      const auto& disk = loaded[s].traces[t];
      EXPECT_EQ(disk.known_re.bits(), mem.known_re.bits());
      EXPECT_EQ(disk.known_im.bits(), mem.known_im.bits());
      ASSERT_EQ(disk.trace.samples.size(), mem.trace.samples.size());
      for (std::size_t i = 0; i < mem.trace.samples.size(); ++i) {
        EXPECT_EQ(disk.trace.samples[i], mem.trace.samples[i]);  // bit-exact floats
      }
    }
  }
}

TEST(StreamingCpa, StreamedEngineMatchesInMemoryEngineExactly) {
  ChaCha20Prng rng(0xC0FF);
  const auto kp = falcon::keygen(4, rng);
  const auto cfg = small_config(0xC0FF);

  const auto sets = sca::run_full_campaign(kp.sk, cfg);
  TempFile tmp("sc_engine.fdtrace");
  ASSERT_TRUE(sca::run_campaign_to_archive(kp.sk, cfg, tmp.path).ok);
  tracestore::ArchiveReader reader;
  ASSERT_TRUE(reader.open(tmp.path));

  const std::size_t slot = 2;
  const auto spec = exponent_spec(slot);
  const CpaEngine streamed = run_cpa_streaming(reader, spec);
  const CpaEngine inmem = run_cpa_inmemory(sets[slot], spec);

  ASSERT_EQ(streamed.num_traces(), inmem.num_traces());
  ASSERT_EQ(streamed.num_guesses(), inmem.num_guesses());
  for (std::size_t g = 0; g < streamed.num_guesses(); ++g) {
    for (std::size_t s = 0; s < streamed.num_samples(); ++s) {
      // Identical fold order on identical data: exact double equality,
      // not approximate -- the acceptance bar for the archive path.
      EXPECT_EQ(streamed.correlation(g, s), inmem.correlation(g, s));
    }
  }
  EXPECT_EQ(streamed.ranking(), inmem.ranking());

  // And the engine is actually attacking: the true exponent clears the
  // paper's 99.99% confidence bound (exact resolution of its alias tie
  // class is key recovery's job).
  const unsigned truth = kp.sk.b01[slot].biased_exponent();
  const double truth_peak = streamed.peak(truth - 1005);
  EXPECT_GT(truth_peak, confidence_interval(0.9999, streamed.num_traces()));
}

TEST(StreamingCpa, StreamedComponentAttackMatchesInMemory) {
  ChaCha20Prng rng(0xC100);
  const auto kp = falcon::keygen(4, rng);
  auto cfg = small_config(0xC100);
  cfg.num_traces = 500;

  const std::size_t slot = 3;
  TempFile tmp("sc_component.fdtrace");
  ASSERT_TRUE(sca::run_campaign_to_archive(kp.sk, cfg, tmp.path).ok);
  tracestore::ArchiveReader reader;
  ASSERT_TRUE(reader.open(tmp.path));

  const auto sets = sca::run_full_campaign(kp.sk, cfg);

  for (const bool imag : {false, true}) {
    const Fpr truth = kp.sk.b01[slot + (imag ? kp.sk.params.n / 2 : 0)];
    const KnownOperand split = KnownOperand::from(truth);
    ComponentAttackConfig cac;
    cac.low_candidates = MantissaCandidates::adversarial(split.y0, false, 100, 21);
    cac.high_candidates = MantissaCandidates::adversarial(split.y1, true, 100, 22);

    const ComponentDataset mem_ds = build_component_dataset(sets[slot], imag);
    const ComponentResult mem = attack_component(mem_ds, cac);

    ComponentResult disk;
    ASSERT_TRUE(attack_component_from_archive(reader, slot, imag, cac, disk));

    EXPECT_EQ(disk.bits, mem.bits) << "imag=" << imag;
    EXPECT_EQ(disk.sign, mem.sign);
    EXPECT_EQ(disk.exponent, mem.exponent);
    EXPECT_EQ(disk.x0, mem.x0);
    EXPECT_EQ(disk.x1, mem.x1);
    // The archive path recovers the real component, not just the same
    // answer: mantissa and sign must match the victim's secret.
    EXPECT_EQ(disk.sign, truth.sign()) << "imag=" << imag;
    EXPECT_EQ(disk.x0, split.y0) << "imag=" << imag;
    EXPECT_EQ(disk.x1, split.y1) << "imag=" << imag;
  }
}

TEST(StreamingCpa, ReaderMemoryIndependentOfCampaignSize) {
  ChaCha20Prng rng(0xC200);
  const auto kp = falcon::keygen(4, rng);

  std::size_t residents[2];
  const std::size_t sizes[2] = {40, 200};
  for (int i = 0; i < 2; ++i) {
    auto cfg = small_config(0xC200);
    cfg.num_traces = sizes[i];
    TempFile tmp("sc_bounded_" + std::to_string(i) + ".fdtrace");
    ASSERT_TRUE(sca::run_campaign_to_archive(kp.sk, cfg, tmp.path, /*traces_per_chunk=*/32).ok);
    tracestore::ArchiveReader reader;
    ASSERT_TRUE(reader.open(tmp.path));
    const auto spec = exponent_spec(1);
    const CpaEngine eng = run_cpa_streaming(reader, spec);
    EXPECT_EQ(eng.num_traces(), 2 * sizes[i]);  // two views per captured trace
    residents[i] = reader.max_resident_records();
    EXPECT_LE(residents[i], 32U);
  }
  // 5x the traces, same peak resident decode buffer.
  EXPECT_EQ(residents[0], residents[1]);
}

TEST(StreamingCpa, MergedShardsMatchConcatenatedInMemoryCampaigns) {
  ChaCha20Prng rng(0xC300);
  const auto kp = falcon::keygen(4, rng);
  auto cfg_a = small_config(0xAA);
  cfg_a.num_traces = 120;
  auto cfg_b = small_config(0xBB);
  cfg_b.num_traces = 80;

  TempFile shard_a("sc_shard_a.fdtrace");
  TempFile shard_b("sc_shard_b.fdtrace");
  TempFile merged("sc_merged.fdtrace");
  ASSERT_TRUE(sca::run_campaign_to_archive(kp.sk, cfg_a, shard_a.path).ok);
  ASSERT_TRUE(sca::run_campaign_to_archive(kp.sk, cfg_b, shard_b.path).ok);
  const std::string inputs[2] = {shard_a.path, shard_b.path};
  std::string error;
  ASSERT_TRUE(tracestore::merge_archives(inputs, merged.path, &error)) << error;

  tracestore::ArchiveReader reader;
  ASSERT_TRUE(reader.open(merged.path));
  tracestore::TraceRecord rec;
  std::size_t n = 0;
  while (reader.next(rec)) ++n;
  EXPECT_EQ(n, (cfg_a.num_traces + cfg_b.num_traces) * (kp.sk.params.n >> 1));

  // Streamed CPA over the merged archive == in-memory engine fed with
  // shard A's traces then shard B's, in order.
  const std::size_t slot = 1;
  const auto spec = exponent_spec(slot);
  const CpaEngine streamed = run_cpa_streaming(reader, spec);

  const auto sets_a = sca::run_full_campaign(kp.sk, cfg_a);
  const auto sets_b = sca::run_full_campaign(kp.sk, cfg_b);
  sca::TraceSet joined;
  joined.slot = slot;
  joined.traces = sets_a[slot].traces;
  joined.traces.insert(joined.traces.end(), sets_b[slot].traces.begin(),
                       sets_b[slot].traces.end());
  const CpaEngine inmem = run_cpa_inmemory(joined, spec);

  ASSERT_EQ(streamed.num_traces(), inmem.num_traces());
  for (std::size_t g = 0; g < streamed.num_guesses(); ++g) {
    EXPECT_EQ(streamed.peak(g), inmem.peak(g));
  }
  EXPECT_EQ(streamed.ranking(), inmem.ranking());
}

}  // namespace
}  // namespace fd::attack
