// Parameter derivation must reproduce the FALCON specification's values
// for the standardized sets.

#include <gtest/gtest.h>

#include <cmath>

#include "falcon/params.h"

namespace fd::falcon {
namespace {

TEST(Params, Falcon512MatchesSpec) {
  const Params p = Params::get(9);
  EXPECT_EQ(p.n, 512U);
  EXPECT_NEAR(p.sigma, 165.736617183, 0.05);
  EXPECT_NEAR(p.sigma_min, 1.277833697, 4e-4);
  EXPECT_NEAR(p.sigma_max, 1.8205, 1e-9);
  EXPECT_NEAR(static_cast<double>(p.bound_sq), 34034726.0, 35000.0);  // within 0.1%
  EXPECT_EQ(p.sig_bytes, 666U);
  EXPECT_NEAR(p.sigma_fg, 1.17 * std::sqrt(12289.0 / 1024.0), 1e-9);
}

TEST(Params, Falcon1024MatchesSpec) {
  const Params p = Params::get(10);
  EXPECT_EQ(p.n, 1024U);
  EXPECT_NEAR(p.sigma, 168.388571447, 0.05);
  EXPECT_NEAR(p.sigma_min, 1.298280334, 4e-4);
  EXPECT_NEAR(static_cast<double>(p.bound_sq), 70265242.0, 71000.0);
  EXPECT_EQ(p.sig_bytes, 1280U);
}

TEST(Params, MonotoneInLogn) {
  double prev_sigma = 0.0;
  for (unsigned logn = 2; logn <= 10; ++logn) {
    const Params p = Params::get(logn);
    EXPECT_EQ(p.n, std::size_t{1} << logn);
    EXPECT_GT(p.sigma, prev_sigma);  // sigma grows with n
    EXPECT_GT(p.sigma_min, 1.0);
    EXPECT_LT(p.sigma_min, p.sigma_max);
    EXPECT_GT(p.bound_sq, 0U);
    EXPECT_GT(p.sig_bytes, kSaltBytes + 1);
    prev_sigma = p.sigma;
  }
}

TEST(Params, SigmaFgShrinksWithN) {
  // Keygen deviation halves as n quadruples: coefficients stay small for
  // the standard sets (|f_i| <= 127 with overwhelming probability).
  EXPECT_GT(Params::get(2).sigma_fg, Params::get(10).sigma_fg);
  EXPECT_LT(Params::get(9).sigma_fg, 5.0);
}

}  // namespace
}  // namespace fd::falcon
