// End-to-end FALCON: keygen invariants, sign/verify round trips,
// signature non-malleability, tree properties, hash-to-point behaviour.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/rng.h"
#include "falcon/falcon.h"
#include "falcon/ntru_solve.h"
#include "zq/zq.h"

namespace fd::falcon {
namespace {

class FalconParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(FalconParam, KeygenInvariants) {
  const unsigned logn = GetParam();
  ChaCha20Prng rng(0x8000 + logn);
  const KeyPair kp = keygen(logn, rng);
  const std::size_t n = kp.sk.params.n;

  ASSERT_EQ(kp.sk.f.size(), n);
  ASSERT_EQ(kp.pk.h.size(), n);

  // NTRU equation f*G - g*F == q over Z[x]/(x^n+1).
  ZPoly zf(n), zg(n), zF(n), zG(n);
  for (std::size_t i = 0; i < n; ++i) {
    zf[i] = BigInt(kp.sk.f[i]);
    zg[i] = BigInt(kp.sk.g[i]);
    zF[i] = BigInt(kp.sk.big_f[i]);
    zG[i] = BigInt(kp.sk.big_g[i]);
  }
  const ZPoly lhs = zpoly_sub(zpoly_mul(zf, zG), zpoly_mul(zg, zF));
  EXPECT_EQ(lhs[0], BigInt(12289));
  for (std::size_t i = 1; i < n; ++i) EXPECT_TRUE(lhs[i].is_zero());

  // h * f == g mod q.
  std::vector<std::uint32_t> fq(n), gq(n);
  for (std::size_t i = 0; i < n; ++i) {
    fq[i] = zq::from_signed(kp.sk.f[i]);
    gq[i] = zq::from_signed(kp.sk.g[i]);
  }
  EXPECT_EQ(zq::poly_mul(kp.pk.h, fq, logn), gq);

  // Tree leaves (sigmas) must lie in the sampler's admissible range.
  const LeafRange r = tree_leaf_range(kp.sk.tree, logn);
  EXPECT_GE(r.min_value, kp.sk.params.sigma_min * 0.99);
  EXPECT_LE(r.max_value, kp.sk.params.sigma_max * 1.01);
}

TEST_P(FalconParam, SignVerifyRoundTrip) {
  const unsigned logn = GetParam();
  ChaCha20Prng rng(0x8100 + logn);
  const KeyPair kp = keygen(logn, rng);

  for (const std::string_view msg : {"", "hello falcon", "a slightly longer message body"}) {
    const Signature sig = sign(kp.sk, msg, rng);
    EXPECT_TRUE(verify(kp.pk, msg, sig)) << "msg='" << msg << "'";
    EXPECT_FALSE(verify(kp.pk, "tampered", sig));
  }
}

TEST_P(FalconParam, SignatureNormIsTight) {
  // Accepted signatures should use a decent fraction of the bound --
  // a sanity check that ffSampling produces Gaussian-quality vectors,
  // not just barely-valid ones.
  const unsigned logn = GetParam();
  ChaCha20Prng rng(0x8200 + logn);
  const KeyPair kp = keygen(logn, rng);
  const Signature sig = sign(kp.sk, "norm check", rng);

  const auto c = hash_to_point(sig.salt, "norm check", logn);
  std::vector<std::uint32_t> s2q(kp.pk.h.size());
  for (std::size_t i = 0; i < s2q.size(); ++i) s2q[i] = zq::from_signed(sig.s2[i]);
  const auto s2h = zq::poly_mul(s2q, kp.pk.h, logn);
  std::uint64_t norm_sq = 0;
  for (std::size_t i = 0; i < s2q.size(); ++i) {
    const std::int64_t s1 = zq::center(zq::sub(c[i], s2h[i]));
    norm_sq += static_cast<std::uint64_t>(s1 * s1) +
               static_cast<std::uint64_t>(static_cast<std::int64_t>(sig.s2[i]) * sig.s2[i]);
  }
  EXPECT_LE(norm_sq, kp.pk.params.bound_sq);
  // Expected norm ~ 2n sigma^2; bound is (1.1)^2x that. Require above
  // a loose floor to catch degenerate (all-zero-ish) signatures.
  EXPECT_GT(norm_sq, kp.pk.params.bound_sq / 10);
}

TEST_P(FalconParam, TamperedSignatureRejected) {
  const unsigned logn = GetParam();
  ChaCha20Prng rng(0x8300 + logn);
  const KeyPair kp = keygen(logn, rng);
  Signature sig = sign(kp.sk, "tamper", rng);

  Signature bad = sig;
  bad.s2[0] = static_cast<std::int16_t>(bad.s2[0] + 1);
  // A one-off change keeps the norm nearly identical but breaks
  // s1 = c - s2 h by a huge amount (h is dense).
  EXPECT_FALSE(verify(kp.pk, "tamper", bad));

  Signature bad_salt = sig;
  bad_salt.salt[0] ^= 1;
  EXPECT_FALSE(verify(kp.pk, "tamper", bad_salt));
}

INSTANTIATE_TEST_SUITE_P(ToySizes, FalconParam, ::testing::Values(2U, 3U, 4U, 5U, 6U));

TEST(Falcon, DistinctSaltsPerSignature) {
  ChaCha20Prng rng(0x8400);
  const KeyPair kp = keygen(4, rng);
  const Signature a = sign(kp.sk, "same message", rng);
  const Signature b = sign(kp.sk, "same message", rng);
  EXPECT_NE(std::memcmp(a.salt, b.salt, kSaltBytes), 0);
  EXPECT_TRUE(verify(kp.pk, "same message", a));
  EXPECT_TRUE(verify(kp.pk, "same message", b));
}

TEST(Falcon, HashToPointProperties) {
  const std::uint8_t salt_a[kSaltBytes] = {1};
  const std::uint8_t salt_b[kSaltBytes] = {2};
  const auto c1 = hash_to_point(salt_a, "msg", 6);
  const auto c2 = hash_to_point(salt_a, "msg", 6);
  const auto c3 = hash_to_point(salt_b, "msg", 6);
  const auto c4 = hash_to_point(salt_a, "msh", 6);
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, c3);
  EXPECT_NE(c1, c4);
  for (const auto v : c1) EXPECT_LT(v, 12289U);
}

TEST(Falcon, HashToPointIsUniformish) {
  // Mean of uniform [0, q) is ~q/2; check over many coefficients.
  std::uint8_t salt[kSaltBytes] = {42};
  double sum = 0.0;
  std::size_t count = 0;
  for (int i = 0; i < 64; ++i) {
    salt[1] = static_cast<std::uint8_t>(i);
    for (const auto v : hash_to_point(salt, "uniformity", 6)) {
      sum += v;
      ++count;
    }
  }
  EXPECT_NEAR(sum / static_cast<double>(count), 12289.0 / 2.0,
              5.0 * 12289.0 / std::sqrt(12.0 * static_cast<double>(count)));
}

TEST(Falcon, ExpandSecretKeyRejectsGarbage) {
  // A "secret key" with nonsense polynomials must fail the leaf-sigma
  // range check instead of producing a broken signer.
  SecretKey sk;
  sk.params = Params::get(4);
  sk.f.assign(16, 0);
  sk.g.assign(16, 0);
  sk.big_f.assign(16, 0);
  sk.big_g.assign(16, 0);
  sk.f[0] = 1;  // f = 1, g = 0: Gram matrix is singular-ish
  EXPECT_FALSE(expand_secret_key(sk));
}

TEST(Falcon, CrossKeyVerificationFails) {
  ChaCha20Prng rng(0x8500);
  const KeyPair kp1 = keygen(4, rng);
  const KeyPair kp2 = keygen(4, rng);
  const Signature sig = sign(kp1.sk, "cross", rng);
  EXPECT_TRUE(verify(kp1.pk, "cross", sig));
  EXPECT_FALSE(verify(kp2.pk, "cross", sig));
}

}  // namespace
}  // namespace fd::falcon
