// ffLDL* tree and ffSampling properties: the LDL identity, tree layout
// invariants, leaf statistics, and the Gaussian quality of the sampled
// lattice points.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "falcon/falcon.h"
#include "fft/fft.h"

namespace fd::falcon {
namespace {

using fpr::Fpr;

TEST(Tree, SizeFormula) {
  EXPECT_EQ(tree_size(0), 1U);
  EXPECT_EQ(tree_size(1), 4U);
  EXPECT_EQ(tree_size(2), 12U);
  EXPECT_EQ(tree_size(9), 10U << 9);
  // Recurrence: size(l) = 2^l + 2 * size(l-1).
  for (unsigned l = 1; l <= 10; ++l) {
    EXPECT_EQ(tree_size(l), (std::size_t{1} << l) + 2 * tree_size(l - 1));
  }
}

TEST(Tree, LdlReconstructsGram) {
  // poly_ldl_fft: G = L D L* with L = [[1,0],[l10,1]], D = diag(g00, d11).
  // Check the identities g01 == l10 * g00 and g11 == d11 + |l10|^2 g00.
  ChaCha20Prng rng(0xF001);
  const unsigned logn = 5;
  const std::size_t n = 32;
  const std::size_t hn = 16;

  // Build a Hermitian-positive Gram from a random basis row pair.
  std::vector<Fpr> a(n), b(n);
  for (auto& c : a) c = Fpr::from_double(rng.gaussian() * 10.0);
  for (auto& c : b) c = Fpr::from_double(rng.gaussian() * 10.0);
  fft::fft(a, logn);
  fft::fft(b, logn);
  std::vector<Fpr> g00(a), g01(a), g11(b);
  fft::poly_mulselfadj_fft(g00, logn);
  {
    auto t = b;
    fft::poly_mulselfadj_fft(t, logn);
    fft::poly_add(g00, t, logn);  // g00 = |a|^2 + |b|^2 (positive)
  }
  fft::poly_muladj_fft(g01, b, logn);  // g01 = a * adj(b)
  fft::poly_mulselfadj_fft(g11, logn); // g11 = |b|^2
  const auto g01_orig = g01;
  const auto g11_orig = g11;

  fft::poly_ldl_fft(g00, g01, g11, logn);  // g01 := l10, g11 := d11

  for (std::size_t u = 0; u < hn; ++u) {
    // Stored value is L10 = adj(g01)/g00 (the lower-left entry of L for
    // a Hermitian Gram with G10 = adj(G01)); g00 is real per slot.
    const double g00_re = g00[u].to_double();
    const double tol = 1e-5 * std::fabs(g01_orig[u].to_double()) +
                       1e-5 * std::fabs(g01_orig[u + hn].to_double()) + 1e-9;
    EXPECT_NEAR(g01[u].to_double() * g00_re, g01_orig[u].to_double(), tol);
    EXPECT_NEAR(g01[u + hn].to_double() * g00_re, -g01_orig[u + hn].to_double(), tol);
    // d11 + |l10|^2 g00 == g11_orig.
    const double l2 = g01[u].to_double() * g01[u].to_double() +
                      g01[u + hn].to_double() * g01[u + hn].to_double();
    EXPECT_NEAR(g11[u].to_double() + l2 * g00_re, g11_orig[u].to_double(),
                1e-5 * std::fabs(g11_orig[u].to_double()) + 1e-8);
  }
}

TEST(Tree, LeafRangeMatchesNormalization) {
  ChaCha20Prng rng(0xF002);
  const auto kp = keygen(5, rng);
  const LeafRange r = tree_leaf_range(kp.sk.tree, 5);
  // Leaves are sigma / sqrt(d): all within the SamplerZ-admissible band.
  EXPECT_GE(r.min_value, kp.sk.params.sigma_min * 0.99);
  EXPECT_LE(r.max_value, kp.sk.params.sigma_max * 1.01);
  EXPECT_LT(r.min_value, r.max_value);
}

TEST(Tree, FfSamplingCloseToTarget) {
  // z = ffSampling(t) is an integer lattice point near t: in coefficient
  // space, each |z_i - t_i| should be O(sigma_leaf), not O(n).
  ChaCha20Prng rng(0xF003);
  const auto kp = keygen(5, rng);
  const unsigned logn = 5;
  const std::size_t n = 32;

  std::vector<Fpr> t0(n), t1(n);
  for (auto& c : t0) c = Fpr::from_double(rng.gaussian() * 20.0);
  for (auto& c : t1) c = Fpr::from_double(rng.gaussian() * 20.0);
  fft::fft(t0, logn);
  fft::fft(t1, logn);

  SamplerZ samp(kp.sk.params.sigma_min, rng);
  std::vector<Fpr> z0(n), z1(n);
  ff_sampling(samp, z0, z1, kp.sk.tree, t0, t1, logn);

  // Back to coefficient domain: z must be (numerically) integral.
  auto z0c = z0;
  auto z1c = z1;
  fft::ifft(z0c, logn);
  fft::ifft(z1c, logn);
  auto t0c = t0;
  auto t1c = t1;
  fft::ifft(t0c, logn);
  fft::ifft(t1c, logn);
  double max_dev = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& [zv, tv] : {std::pair{z0c[i], t0c[i]}, std::pair{z1c[i], t1c[i]}}) {
      const double z = zv.to_double();
      EXPECT_NEAR(z, std::nearbyint(z), 1e-6);
      max_dev = std::max(max_dev, std::fabs(z - tv.to_double()));
    }
  }
  // Within ~8 "sigmas" of the per-coordinate Gaussian (sigma <= 1.82,
  // but coordinates mix through the basis: allow a wide constant).
  EXPECT_LT(max_dev, 40.0);
}

TEST(Tree, FfSamplingIsRandomized) {
  ChaCha20Prng rng(0xF004);
  const auto kp = keygen(4, rng);
  const std::size_t n = 16;
  std::vector<Fpr> t0(n, fpr::kZero), t1(n, fpr::kZero);

  SamplerZ samp(kp.sk.params.sigma_min, rng);
  std::vector<Fpr> a0(n), a1(n), b0(n), b1(n);
  ff_sampling(samp, a0, a1, kp.sk.tree, t0, t1, 4);
  ff_sampling(samp, b0, b1, kp.sk.tree, t0, t1, 4);
  bool differs = false;
  for (std::size_t i = 0; i < n; ++i) {
    differs = differs || !(a0[i] == b0[i]) || !(a1[i] == b1[i]);
  }
  EXPECT_TRUE(differs);
}

TEST(Tree, ExpandedKeysAreDeterministic) {
  // expand_secret_key is a pure function of (f, g, F, G).
  ChaCha20Prng rng(0xF005);
  const auto kp = keygen(4, rng);
  SecretKey copy;
  copy.params = kp.sk.params;
  copy.f = kp.sk.f;
  copy.g = kp.sk.g;
  copy.big_f = kp.sk.big_f;
  copy.big_g = kp.sk.big_g;
  ASSERT_TRUE(expand_secret_key(copy));
  for (std::size_t i = 0; i < copy.tree.size(); ++i) {
    EXPECT_EQ(copy.tree[i].bits(), kp.sk.tree[i].bits()) << i;
  }
  for (std::size_t i = 0; i < copy.b01.size(); ++i) {
    EXPECT_EQ(copy.b01[i].bits(), kp.sk.b01[i].bits());
  }
}

}  // namespace
}  // namespace fd::falcon
