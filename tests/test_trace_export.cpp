// Trace exporter (DESIGN.md section 13): telemetry JSONL -> Chrome
// trace-event JSON.
//
//   - synthetic streams pin the exact output shape: process tracks and
//     pid order (coordinator, then workers numerically), "X" slices,
//     "C" counter samples, "i" instants, "M" metadata, flow arrows
//     chaining reassigned-task spans, orphan detection, and
//     byte-identical re-export;
//   - a real fixed-seed 2-worker fleet run pins the cross-process tree:
//     every line worker-tagged, every span's parent present,
//     fleet.task.* spans nested under exec.job.* stage spans nested
//     under the fleet.pipeline root, profile counters from all three
//     processes, span IDs replay-stable across runs, and the recovered
//     key bit-identical to a tracing-disabled run.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "obs/jsonl.h"
#include "obs/span.h"
#include "obs/trace_export.h"

#if defined(FD_ATTACK_BIN)
#include "attack/checkpoint.h"
#include "attack/recovery_pipeline.h"
#include "fleet/coordinator.h"
#endif

namespace fd {
namespace {

using obs::trace::ExportStats;

std::vector<obs::jsonl::Object> parse_lines(const std::vector<std::string>& lines) {
  std::vector<obs::jsonl::Object> out;
  for (const std::string& line : lines) {
    obs::jsonl::Object obj;
    EXPECT_TRUE(obs::jsonl::parse_object(line, obj)) << line;
    out.push_back(std::move(obj));
  }
  return out;
}

std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// --- synthetic streams -----------------------------------------------------

TEST(TraceExport, SyntheticStreamExportsTracksFlowsAndCounters) {
  // A miniature campaign: coordinator root + stage span, one task that
  // ran twice (reassignment), one profile sample, one instant, one
  // orphan, one thread name. Worker tags mix string ("coord") and
  // numeric (0, 1) forms like the real unified stream.
  const auto events = parse_lines({
      R"({"ev":"thread.name","tid":1,"name":"fd-coord","worker":"coord"})",
      R"({"ev":"fleet.worker.spawn","ts_us":1005,"pid":4242,"worker":"coord"})",
      R"({"ev":"span","name":"fleet.pipeline","trace":"00000000000000aa","span":"00000000000000a1","parent":"0000000000000000","tid":1,"depth":0,"ts_us":1000,"wall_us":500,"worker":"coord"})",
      R"({"ev":"span","name":"exec.job.attack","trace":"00000000000000aa","span":"00000000000000a2","parent":"00000000000000a1","tid":1,"depth":1,"ts_us":1010,"wall_us":300,"worker":"coord"})",
      R"({"ev":"span","name":"fleet.task.attack","trace":"00000000000000aa","span":"00000000000000b1","parent":"00000000000000a2","tid":1,"depth":1,"ts_us":1020,"wall_us":50,"task":7,"worker":0})",
      R"({"ev":"profile","ts_us":1030,"rss_bytes":1048576,"cpu_user_ms":12,"cpu_sys_ms":3,"read_bytes":2048,"worker":0})",
      R"({"ev":"span","name":"sca.capture","trace":"00000000000000aa","span":"00000000000000c1","parent":"00000000000000ff","tid":1,"depth":1,"ts_us":1040,"wall_us":5,"worker":1})",
      R"({"ev":"span","name":"fleet.task.attack","trace":"00000000000000aa","span":"00000000000000b2","parent":"00000000000000a2","tid":1,"depth":1,"ts_us":1080,"wall_us":60,"task":7,"worker":1})",
  });

  ExportStats st;
  const std::string json = obs::trace::chrome_trace_json(events, &st);

  EXPECT_EQ(st.events_in, 8u);
  EXPECT_EQ(st.spans, 5u);
  EXPECT_EQ(st.counter_samples, 1u);
  EXPECT_EQ(st.instants, 1u);
  EXPECT_EQ(st.flow_arrows, 1u);  // attempt 1 -> attempt 2 of task 7
  EXPECT_EQ(st.thread_names, 1u);
  EXPECT_EQ(st.processes, 3u);  // coord, w0, w1
  EXPECT_EQ(st.orphan_spans, 1u);
  EXPECT_EQ(st.malformed_lines, 0u);  // only the file front end sets it

  // Envelope.
  EXPECT_EQ(json.substr(0, 17), "{\"traceEvents\":[\n");
  EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");

  // Process tracks: coordinator is always pid 1, then workers in
  // numeric order; each gets a name and a sort index.
  EXPECT_NE(json.find(R"({"name":"process_name","ph":"M","pid":1,"args":{"name":"coordinator"}})"),
            std::string::npos);
  EXPECT_NE(json.find(R"({"name":"process_name","ph":"M","pid":2,"args":{"name":"worker 0"}})"),
            std::string::npos);
  EXPECT_NE(json.find(R"({"name":"process_name","ph":"M","pid":3,"args":{"name":"worker 1"}})"),
            std::string::npos);
  EXPECT_EQ(count_of(json, "\"process_sort_index\""), 3u);
  EXPECT_NE(json.find(R"({"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"fd-coord"}})"),
            std::string::npos);

  // Timestamps re-based to the earliest event: the root span (raw
  // ts_us 1000) starts the trace at ts 0, the spawn instant lands at 5.
  EXPECT_NE(
      json.find(
          R"({"name":"fleet.pipeline","ph":"X","ts":0,"pid":1,"tid":1,"dur":500,"args":{"trace":"00000000000000aa","span":"00000000000000a1","parent":"0000000000000000","depth":0}})"),
      std::string::npos);
  EXPECT_NE(json.find(R"({"name":"fleet.worker.spawn","ph":"i","ts":5,"pid":1,"tid":0,"s":"p","args":{"pid":4242}})"),
            std::string::npos);

  // Reassignment flow: first attempt emits the arrow, second receives
  // it, both bound to the fleet task id.
  EXPECT_NE(json.find("\"span\":\"00000000000000b1\""), std::string::npos);
  const std::size_t b1 = json.find("00000000000000b1");
  const std::size_t b2 = json.find("00000000000000b2");
  ASSERT_NE(b1, std::string::npos);
  ASSERT_NE(b2, std::string::npos);
  EXPECT_EQ(count_of(json, "\"bind_id\":\"0x7\""), 2u);
  EXPECT_EQ(count_of(json, "\"flow_out\":true"), 1u);
  EXPECT_EQ(count_of(json, "\"flow_in\":true"), 1u);

  // Counter tracks from the profile sample, on worker 0's track.
  EXPECT_NE(json.find(R"({"name":"rss_bytes","ph":"C","ts":30,"pid":2,"tid":0,"args":{"rss":1048576}})"),
            std::string::npos);
  EXPECT_NE(json.find(R"({"name":"cpu_ms","ph":"C","ts":30,"pid":2,"tid":0,"args":{"user":12,"sys":3}})"),
            std::string::npos);
  EXPECT_NE(json.find(R"({"name":"read_bytes","ph":"C","ts":30,"pid":2,"tid":0,"args":{"read":2048}})"),
            std::string::npos);

  // Pure function: identical input -> byte-identical output.
  EXPECT_EQ(obs::trace::chrome_trace_json(events), json);
}

TEST(TraceExport, UntaggedStreamMapsToSingleProcessTrack) {
  const auto events = parse_lines({
      R"({"ev":"span","name":"attack.pipeline","trace":"0000000000000001","span":"0000000000000002","parent":"0000000000000000","tid":1,"depth":0,"ts_us":50,"wall_us":10})",
      R"({"ev":"pipeline.stage","ts_us":52,"stage":"capture"})",
  });
  ExportStats st;
  const std::string json = obs::trace::chrome_trace_json(events, &st);
  EXPECT_EQ(st.processes, 1u);
  EXPECT_EQ(st.spans, 1u);
  EXPECT_EQ(st.instants, 1u);
  EXPECT_EQ(st.orphan_spans, 0u);
  EXPECT_NE(json.find(R"({"name":"process_name","ph":"M","pid":1,"args":{"name":"fd-attack"}})"),
            std::string::npos);
}

TEST(TraceExport, FileFrontEndSkipsAndCountsTornLines) {
  const std::string in_path = "trace_export_in.jsonl";
  const std::string out_path = "trace_export_out.json";
  {
    std::ofstream out(in_path, std::ios::binary);
    out << R"({"ev":"span","name":"a","trace":"0000000000000001","span":"0000000000000002","parent":"0000000000000000","tid":1,"ts_us":1,"wall_us":2})"
        << "\n";
    out << "{\"ev\":\"span\",\"nam";  // torn mid-write, no newline
  }
  ExportStats st;
  std::string err;
  ASSERT_TRUE(obs::trace::export_chrome_trace(in_path, out_path, &err, &st)) << err;
  EXPECT_EQ(st.events_in, 1u);
  EXPECT_EQ(st.spans, 1u);
  EXPECT_EQ(st.malformed_lines, 1u);  // the truncated tail

  std::ifstream check(out_path, std::ios::binary);
  const std::string written((std::istreambuf_iterator<char>(check)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(written.substr(0, 17), "{\"traceEvents\":[\n");
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

TEST(TraceExport, MissingInputFileFailsWithReason) {
  std::string err;
  EXPECT_FALSE(obs::trace::export_chrome_trace("no_such_telemetry.jsonl", "out.json", &err));
  EXPECT_NE(err.find("no_such_telemetry.jsonl"), std::string::npos);
}

// --- real fleet run --------------------------------------------------------
//
// Needs worker subprocesses (the fd-attack binary) and an instrumented
// build: span/profile forwarding is what is under test.

#if FD_OBS_ENABLED && defined(FD_ATTACK_BIN)

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) { clear(); }
  ~TempFile() { clear(); }
  void clear() const {
    std::remove(path.c_str());
    std::remove((path + ".fdckpt").c_str());
    std::remove((path + ".fdckpt.tmp").c_str());
    for (int i = 0; i < 8; ++i) {
      std::remove((path + ".shard" + std::to_string(i)).c_str());
    }
    for (int i = 1; i < 16; ++i) {
      const std::string t = path + ".task" + std::to_string(i) + ".fdckpt";
      std::remove(t.c_str());
      std::remove((t + ".tmp").c_str());
    }
  }
  std::string path;
};

fleet::FleetConfig export_fleet(const std::string& archive, const std::string& telemetry) {
  fleet::FleetConfig fc;
  fc.logn = 3;
  fc.pipeline.attack.num_traces = 240;
  fc.pipeline.attack.device.noise_sigma = 2.0;
  fc.pipeline.attack.adversarial_random = 100;
  fc.pipeline.attack.seed = 0xFD06;
  fc.pipeline.archive_path = archive;
  fc.pipeline.capture_shards = 2;
  fc.pipeline.checkpoint_every = 4;
  fc.workers = 2;
  fc.components_per_shard = 4;
  fc.worker_binary = FD_ATTACK_BIN;
  fc.telemetry_path = telemetry;
  return fc;
}

struct SpanRow {
  std::string name;
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
};

struct TelemetryScan {
  std::size_t lines = 0;
  std::size_t untagged = 0;
  std::vector<SpanRow> spans;
  std::set<std::string> profile_workers;  // process keys that sampled
};

TelemetryScan scan_telemetry(const std::string& path) {
  TelemetryScan scan;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    ++scan.lines;
    obs::jsonl::Object obj;
    EXPECT_TRUE(obs::jsonl::parse_object(line, obj)) << line;
    const obs::jsonl::Value* w = obj.find("worker");
    if (w == nullptr) {
      ++scan.untagged;
    }
    const auto ev = obj.str("ev");
    if (ev == "span") {
      SpanRow row;
      row.name = std::string(obj.str("name"));
      row.trace = obs::parse_span_id_hex(obj.str("trace"));
      row.span = obs::parse_span_id_hex(obj.str("span"));
      row.parent = obs::parse_span_id_hex(obj.str("parent"));
      scan.spans.push_back(std::move(row));
    } else if (ev == "profile" && w != nullptr) {
      scan.profile_workers.insert(w->kind == obs::jsonl::Value::Kind::kString
                                      ? std::string(w->str)
                                      : "w" + std::to_string(static_cast<long long>(w->num)));
    }
  }
  return scan;
}

using SpanTuple = std::tuple<std::string, std::uint64_t, std::uint64_t, std::uint64_t>;

std::set<SpanTuple> tree_tuples(const TelemetryScan& scan) {
  // The cross-process campaign tree the ISSUE pins: pipeline root,
  // JobGraph stage spans, fleet task spans. (Leaf spans inside workers
  // are also replay-stable, but their set is allowed to grow as
  // instrumentation is added; the tree shape is the contract.)
  std::set<SpanTuple> out;
  for (const SpanRow& r : scan.spans) {
    if (r.name == "fleet.pipeline" || r.name.rfind("exec.job.", 0) == 0 ||
        r.name.rfind("fleet.task.", 0) == 0) {
      out.insert({r.name, r.trace, r.span, r.parent});
    }
  }
  return out;
}

std::vector<std::uint8_t> result_bytes(const attack::ComponentResult& r) {
  std::vector<std::uint8_t> out;
  attack::serialize_component_result(out, r);
  return out;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(TraceExportFleet, CampaignFormsOneReplayStableTreeAndExportIsDeterministic) {
  TempFile tmp_a("trace_fleet_a.fdtrace");
  TempFile telem_a("trace_fleet_a.jsonl");
  const auto res_a = fleet::run_fleet(export_fleet(tmp_a.path, telem_a.path));
  ASSERT_TRUE(res_a.ok) << res_a.error;
  ASSERT_TRUE(res_a.recovery.f_exact);

  const TelemetryScan scan_a = scan_telemetry(telem_a.path);
  ASSERT_GT(scan_a.lines, 0u);
  EXPECT_EQ(scan_a.lines, res_a.telemetry_lines);
  // Satellite pin: no untagged rows -- coordinator events carry
  // "worker":"coord", worker events their numeric id.
  EXPECT_EQ(scan_a.untagged, 0u);

  // Resource counters flowed from all three processes.
  EXPECT_TRUE(scan_a.profile_workers.count("coord")) << "coordinator sampler missing";
  EXPECT_TRUE(scan_a.profile_workers.count("w0")) << "worker 0 sampler missing";
  EXPECT_TRUE(scan_a.profile_workers.count("w1")) << "worker 1 sampler missing";

  // One tree: a single root, every parent resolvable, stage spans under
  // the root, task spans under stage spans -- across process boundaries.
  std::set<std::uint64_t> ids;
  std::set<std::uint64_t> stage_ids;
  std::uint64_t root_span = 0;
  std::size_t roots = 0;
  std::size_t tasks = 0;
  for (const SpanRow& r : scan_a.spans) {
    ASSERT_NE(r.span, 0u) << r.name;
    EXPECT_TRUE(ids.insert(r.span).second) << "duplicate span id for " << r.name;
    if (r.name == "fleet.pipeline") {
      ++roots;
      root_span = r.span;
      EXPECT_EQ(r.parent, 0u);
    }
    if (r.name.rfind("exec.job.", 0) == 0) stage_ids.insert(r.span);
  }
  EXPECT_EQ(roots, 1u);
  ASSERT_NE(root_span, 0u);
  ASSERT_FALSE(stage_ids.empty());
  for (const SpanRow& r : scan_a.spans) {
    EXPECT_EQ(r.trace, scan_a.spans.front().trace) << r.name;  // one trace id
    if (r.parent != 0) {
      EXPECT_TRUE(ids.count(r.parent)) << "orphan span " << r.name;
    }
    if (r.name.rfind("exec.job.", 0) == 0) {
      EXPECT_EQ(r.parent, root_span) << r.name;
    }
    if (r.name.rfind("fleet.task.", 0) == 0) {
      ++tasks;
      EXPECT_TRUE(stage_ids.count(r.parent)) << r.name << " not under a stage span";
    }
  }
  EXPECT_GT(tasks, 0u);

  // Replay stability: the same fixed-seed campaign again yields the
  // same (name, trace, span, parent) tree -- IDs derive from the
  // session hash, never wall clock.
  TempFile tmp_b("trace_fleet_b.fdtrace");
  TempFile telem_b("trace_fleet_b.jsonl");
  const auto res_b = fleet::run_fleet(export_fleet(tmp_b.path, telem_b.path));
  ASSERT_TRUE(res_b.ok) << res_b.error;
  const TelemetryScan scan_b = scan_telemetry(telem_b.path);
  EXPECT_EQ(tree_tuples(scan_a), tree_tuples(scan_b));

  // Tracing is observation only: a run with telemetry disabled recovers
  // the identical key with the identical amount of work.
  TempFile tmp_c("trace_fleet_c.fdtrace");
  const auto res_c = fleet::run_fleet(export_fleet(tmp_c.path, ""));
  ASSERT_TRUE(res_c.ok) << res_c.error;
  EXPECT_EQ(res_c.telemetry_lines, 0u);
  EXPECT_EQ(res_a.recovery.recovered_f, res_c.recovery.recovered_f);
  EXPECT_TRUE(res_c.recovery.f_exact);
  EXPECT_EQ(res_a.archive_scans, res_c.archive_scans);
  EXPECT_EQ(res_a.accepted_traces, res_c.accepted_traces);
  ASSERT_EQ(res_a.results.size(), res_c.results.size());
  for (std::size_t i = 0; i < res_a.results.size(); ++i) {
    EXPECT_EQ(result_bytes(res_a.results[i]), result_bytes(res_c.results[i]))
        << "component " << i;
  }

  // Export: three process tracks, no orphans, byte-identical across
  // repeated invocations on the same input.
  const std::string out1 = "trace_fleet_a.trace1.json";
  const std::string out2 = "trace_fleet_a.trace2.json";
  ExportStats st;
  std::string err;
  ASSERT_TRUE(obs::trace::export_chrome_trace(telem_a.path, out1, &err, &st)) << err;
  EXPECT_EQ(st.processes, 3u);
  EXPECT_EQ(st.orphan_spans, 0u);
  EXPECT_GT(st.spans, 0u);
  EXPECT_GT(st.counter_samples, 0u);
  EXPECT_GT(st.instants, 0u);
  EXPECT_EQ(st.malformed_lines, 0u);
  ASSERT_TRUE(obs::trace::export_chrome_trace(telem_a.path, out2, &err)) << err;
  const auto bytes1 = read_file(out1);
  EXPECT_FALSE(bytes1.empty());
  EXPECT_EQ(bytes1, read_file(out2));

  const std::string json(bytes1.begin(), bytes1.end());
  EXPECT_NE(json.find("\"name\":\"coordinator\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker 1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rss_bytes\""), std::string::npos);

  std::remove(out1.c_str());
  std::remove(out2.c_str());
}

#endif  // FD_OBS_ENABLED && defined(FD_ATTACK_BIN)

}  // namespace
}  // namespace fd
