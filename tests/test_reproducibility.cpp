// Determinism guarantees: every experiment in this repository is seeded,
// so identical seeds must give bit-identical keys, signatures, traces,
// and attack outcomes -- the property EXPERIMENTS.md relies on when it
// quotes exact numbers.

#include <gtest/gtest.h>

#include <cstring>

#include "attack/extend_prune.h"
#include "common/rng.h"
#include "falcon/falcon.h"
#include "sca/campaign.h"

namespace fd {
namespace {

TEST(Reproducibility, KeygenIsSeedDeterministic) {
  ChaCha20Prng a(std::uint64_t{0x0DD});
  ChaCha20Prng b(std::uint64_t{0x0DD});
  const auto ka = falcon::keygen(4, a);
  const auto kb = falcon::keygen(4, b);
  EXPECT_EQ(ka.sk.f, kb.sk.f);
  EXPECT_EQ(ka.sk.g, kb.sk.g);
  EXPECT_EQ(ka.sk.big_f, kb.sk.big_f);
  EXPECT_EQ(ka.pk.h, kb.pk.h);
  for (std::size_t i = 0; i < ka.sk.tree.size(); ++i) {
    EXPECT_EQ(ka.sk.tree[i].bits(), kb.sk.tree[i].bits());
  }

  ChaCha20Prng c(std::uint64_t{0x0DE});
  const auto kc = falcon::keygen(4, c);
  EXPECT_NE(ka.pk.h, kc.pk.h);
}

TEST(Reproducibility, SigningIsSeedDeterministic) {
  ChaCha20Prng kr(std::uint64_t{0x1DD});
  const auto kp = falcon::keygen(4, kr);
  ChaCha20Prng a(std::uint64_t{0x2DD});
  ChaCha20Prng b(std::uint64_t{0x2DD});
  const auto sa = falcon::sign(kp.sk, "deterministic", a);
  const auto sb = falcon::sign(kp.sk, "deterministic", b);
  EXPECT_EQ(std::memcmp(sa.salt, sb.salt, falcon::kSaltBytes), 0);
  EXPECT_EQ(sa.s2, sb.s2);
}

TEST(Reproducibility, CampaignTracesAreSeedDeterministic) {
  ChaCha20Prng kr(std::uint64_t{0x3DD});
  const auto kp = falcon::keygen(3, kr);
  sca::CampaignConfig cfg;
  cfg.num_traces = 5;
  cfg.seed = 77;
  const auto s1 = sca::run_signing_campaign(kp.sk, 0, cfg);
  const auto s2 = sca::run_signing_campaign(kp.sk, 0, cfg);
  ASSERT_EQ(s1.traces.size(), s2.traces.size());
  for (std::size_t t = 0; t < s1.traces.size(); ++t) {
    EXPECT_EQ(s1.traces[t].known_re.bits(), s2.traces[t].known_re.bits());
    EXPECT_EQ(s1.traces[t].trace.samples, s2.traces[t].trace.samples);
  }
  cfg.seed = 78;
  const auto s3 = sca::run_signing_campaign(kp.sk, 0, cfg);
  EXPECT_NE(s1.traces[0].trace.samples, s3.traces[0].trace.samples);
}

TEST(Reproducibility, AttackOutcomeIsDeterministic) {
  ChaCha20Prng kr(std::uint64_t{0x4DD});
  const auto kp = falcon::keygen(4, kr);
  sca::CampaignConfig cfg;
  cfg.num_traces = 300;
  cfg.device.noise_sigma = 2.0;
  cfg.seed = 99;
  const auto set = sca::run_signing_campaign(kp.sk, 1, cfg);
  const auto split = attack::KnownOperand::from(kp.sk.b01[1]);

  attack::ComponentAttackConfig cac;
  cac.low_candidates = attack::MantissaCandidates::adversarial(split.y0, false, 60, 5);
  cac.high_candidates = attack::MantissaCandidates::adversarial(split.y1, true, 60, 6);

  const auto ds = attack::build_component_dataset(set, false);
  const auto r1 = attack::attack_component(ds, cac);
  const auto r2 = attack::attack_component(ds, cac);
  EXPECT_EQ(r1.bits, r2.bits);
  EXPECT_EQ(r1.low_prune.score, r2.low_prune.score);
}

}  // namespace
}  // namespace fd
