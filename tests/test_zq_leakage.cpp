// Instrumentation of the Z_q datapath (the Section V.C comparison
// substrate): modmul and NTT butterflies must emit the documented events.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "fpr/leakage.h"
#include "zq/zq.h"

namespace fd::zq {
namespace {

class Recorder final : public fpr::LeakageSink {
 public:
  void on_event(const fpr::LeakageEvent& ev) override { events.push_back(ev); }
  std::vector<fpr::LeakageEvent> events;
};

TEST(ZqLeakage, MulEmitsProductAndReduction) {
  Recorder rec;
  {
    fpr::ScopedLeakageSink scope(&rec);
    (void)mul(123, 456);
  }
  ASSERT_EQ(rec.events.size(), 2U);
  EXPECT_EQ(rec.events[0].tag, fpr::LeakageTag::kNttProd);
  EXPECT_EQ(rec.events[0].value, 123U * 456U);
  EXPECT_EQ(rec.events[1].tag, fpr::LeakageTag::kNttReduced);
  EXPECT_EQ(rec.events[1].value, (123U * 456U) % kQ);
}

TEST(ZqLeakage, NttEmitsButterflyEvents) {
  Recorder rec;
  std::vector<std::uint32_t> f(16);
  for (std::size_t i = 0; i < f.size(); ++i) f[i] = static_cast<std::uint32_t>(i * 37 % kQ);
  {
    fpr::ScopedLeakageSink scope(&rec);
    ntt(f, 4);
  }
  // n/2 * logn butterflies, each: prod, reduced, add, sub = 4 events.
  EXPECT_EQ(rec.events.size(), 8U * 4U * 4U);
  int adds = 0;
  int subs = 0;
  for (const auto& ev : rec.events) {
    adds += ev.tag == fpr::LeakageTag::kNttButterflyAdd;
    subs += ev.tag == fpr::LeakageTag::kNttButterflySub;
    // Every butterfly output is a valid residue.
    if (ev.tag == fpr::LeakageTag::kNttButterflyAdd ||
        ev.tag == fpr::LeakageTag::kNttButterflySub ||
        ev.tag == fpr::LeakageTag::kNttReduced) {
      EXPECT_LT(ev.value, kQ);
    }
  }
  EXPECT_EQ(adds, 32);
  EXPECT_EQ(subs, 32);
}

TEST(ZqLeakage, NoSinkIsSilentAndCorrect) {
  // Instrumentation must not perturb results.
  std::vector<std::uint32_t> f(32);
  ChaCha20Prng rng(0xAB01);
  for (auto& c : f) c = static_cast<std::uint32_t>(rng.uniform(kQ));
  auto plain = f;
  ntt(plain, 5);

  Recorder rec;
  auto instrumented = f;
  {
    fpr::ScopedLeakageSink scope(&rec);
    ntt(instrumented, 5);
  }
  EXPECT_EQ(plain, instrumented);
  EXPECT_FALSE(rec.events.empty());
}

}  // namespace
}  // namespace fd::zq
