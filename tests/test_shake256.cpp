// SHAKE256 against FIPS 202 / NIST CAVP known-answer vectors.

#include <gtest/gtest.h>

#include "common/hex.h"
#include "common/shake256.h"

namespace fd {
namespace {

std::string shake_hex(std::string_view msg, std::size_t out_len) {
  Shake256 sh;
  sh.inject(msg);
  sh.flip();
  std::vector<std::uint8_t> out(out_len);
  sh.extract(out);
  return to_hex(out);
}

TEST(Shake256, EmptyMessage) {
  // SHAKE256(""), first 32 bytes (NIST example values).
  EXPECT_EQ(shake_hex("", 32),
            "46b9dd2b0ba88d13233b3feb743eeb243fcd52ea62b81b82b50c27646ed5762f");
}

TEST(Shake256, EmptyMessage64) {
  EXPECT_EQ(shake_hex("", 64),
            "46b9dd2b0ba88d13233b3feb743eeb243fcd52ea62b81b82b50c27646ed5762f"
            "d75dc4ddd8c0f200cb05019d67b592f6fc821c49479ab48640292eacb3b7c4be");
}

TEST(Shake256, Abc) {
  EXPECT_EQ(shake_hex("abc", 32),
            "483366601360a8771c6863080cc4114d8db44530f8f1e1ee4f94ea37e78b5739");
}

TEST(Shake256, LongInputCrossesRate) {
  // 200 'a' bytes: spans more than one 136-byte rate block.
  const std::string msg(200, 'a');
  Shake256 sh;
  sh.inject(msg);
  sh.flip();
  std::vector<std::uint8_t> out1(16);
  sh.extract(out1);
  // Same message injected in two chunks must give the same stream.
  Shake256 sh2;
  sh2.inject(std::string_view(msg).substr(0, 77));
  sh2.inject(std::string_view(msg).substr(77));
  sh2.flip();
  std::vector<std::uint8_t> out2(16);
  sh2.extract(out2);
  EXPECT_EQ(to_hex(out1), to_hex(out2));
}

TEST(Shake256, ExtractGranularityIrrelevant) {
  Shake256 a;
  a.inject("falcon");
  a.flip();
  std::vector<std::uint8_t> big(300);
  a.extract(big);

  Shake256 b;
  b.inject("falcon");
  b.flip();
  std::vector<std::uint8_t> pieced;
  while (pieced.size() < 300) {
    pieced.push_back(b.extract_u8());
  }
  EXPECT_EQ(to_hex(big), to_hex(pieced));
}

TEST(Shake256, U16BigEndianOrder) {
  Shake256 a;
  a.inject("x");
  a.flip();
  std::uint8_t bytes[2];
  a.extract(bytes);

  Shake256 b;
  b.inject("x");
  b.flip();
  const std::uint16_t v = b.extract_u16_be();
  EXPECT_EQ(v, (bytes[0] << 8) | bytes[1]);
}

TEST(Shake256, ResetReusesObject) {
  Shake256 sh;
  sh.inject("first");
  sh.flip();
  (void)sh.extract_u64();
  sh.reset();
  sh.inject("abc");
  sh.flip();
  std::vector<std::uint8_t> out(32);
  sh.extract(out);
  EXPECT_EQ(to_hex(out),
            "483366601360a8771c6863080cc4114d8db44530f8f1e1ee4f94ea37e78b5739");
}

TEST(Hex, RoundTrip) {
  const std::vector<std::uint8_t> data = {0x00, 0xFF, 0x12, 0xAB};
  EXPECT_EQ(to_hex(data), "00ff12ab");
  EXPECT_EQ(from_hex("00ff12ab"), data);
  EXPECT_EQ(from_hex("00FF12AB"), data);
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

}  // namespace
}  // namespace fd
