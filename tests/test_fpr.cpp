// Property tests for the soft-float emulation: every operation must agree
// bit-for-bit with the host FPU (x86-64 SSE2 is IEEE-754 binary64 with
// round-to-nearest-even), over the normal range FALCON exercises.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "common/rng.h"
#include "fpr/fpr.h"

namespace fd::fpr {
namespace {

// Draws a random normal double with exponent restricted so that products
// and quotients stay normal (no overflow/underflow): |exponent bias|
// within +-300 of 1023.
double random_normal_double(RandomSource& rng) {
  const std::uint64_t sign = rng.next_u64() & (std::uint64_t{1} << 63);
  const std::uint64_t exp = 1023 - 300 + rng.uniform(601);
  const std::uint64_t mant = rng.next_u64() & 0x000FFFFFFFFFFFFFULL;
  return std::bit_cast<double>(sign | (exp << 52) | mant);
}

TEST(Fpr, RoundTripBits) {
  ChaCha20Prng rng(0x1001);
  for (int i = 0; i < 1000; ++i) {
    const double d = random_normal_double(rng);
    EXPECT_EQ(Fpr::from_double(d).to_double(), d);
    EXPECT_EQ(Fpr::from_double(d).bits(), std::bit_cast<std::uint64_t>(d));
  }
}

TEST(Fpr, FieldAccessors) {
  const Fpr x = Fpr::from_bits(0xC06017BC8036B580ULL);  // the paper's coefficient
  EXPECT_TRUE(x.sign());
  EXPECT_EQ(x.biased_exponent(), 0x406U);
  EXPECT_EQ(x.mantissa_field(), 0x017BC8036B580ULL);
  EXPECT_EQ(x.significand(), 0x1017BC8036B580ULL);
}

TEST(Fpr, AddMatchesHardware) {
  ChaCha20Prng rng(0x1002);
  for (int i = 0; i < 200000; ++i) {
    const double a = random_normal_double(rng);
    const double b = random_normal_double(rng);
    const double expect = a + b;
    const Fpr got = fpr_add(Fpr::from_double(a), Fpr::from_double(b));
    if (std::fpclassify(expect) == FP_SUBNORMAL) continue;  // FPEMU flushes
    ASSERT_EQ(got.bits(), std::bit_cast<std::uint64_t>(expect))
        << "a=" << a << " b=" << b;
  }
}

TEST(Fpr, AddCloseExponents) {
  // Cancellation and near-cancellation cases: exponents within +-2,
  // opposite signs -- the hard paths of the adder.
  ChaCha20Prng rng(0x1003);
  for (int i = 0; i < 200000; ++i) {
    const std::uint64_t mant_a = rng.next_u64() & 0x000FFFFFFFFFFFFFULL;
    const std::uint64_t mant_b = rng.next_u64() & 0x000FFFFFFFFFFFFFULL;
    const std::uint64_t exp_a = 1000;
    const std::uint64_t exp_b = 998 + rng.uniform(5);
    const double a = std::bit_cast<double>((exp_a << 52) | mant_a);
    const double b = std::bit_cast<double>((std::uint64_t{1} << 63) | (exp_b << 52) | mant_b);
    const double expect = a + b;
    const Fpr got = fpr_add(Fpr::from_double(a), Fpr::from_double(b));
    if (std::fpclassify(expect) == FP_SUBNORMAL || expect == 0.0) {
      // Flushed, or exact-zero sign conventions; check value only.
      ASSERT_EQ(got.to_double(), expect);
      continue;
    }
    ASSERT_EQ(got.bits(), std::bit_cast<std::uint64_t>(expect))
        << "a=" << a << " b=" << b;
  }
}

TEST(Fpr, AddZeroIdentities) {
  const Fpr pz = Fpr::from_double(0.0);
  const Fpr nz = Fpr::from_double(-0.0);
  const Fpr x = Fpr::from_double(3.25);
  EXPECT_EQ(fpr_add(x, pz).to_double(), 3.25);
  EXPECT_EQ(fpr_add(pz, x).to_double(), 3.25);
  EXPECT_EQ(fpr_add(pz, nz).bits(), 0U);                          // +0
  EXPECT_EQ(fpr_add(nz, nz).bits(), std::uint64_t{1} << 63);      // -0
  EXPECT_EQ(fpr_add(x, fpr_neg(x)).bits(), 0U);                   // exact cancel -> +0
}

TEST(Fpr, MulMatchesHardware) {
  ChaCha20Prng rng(0x1004);
  for (int i = 0; i < 200000; ++i) {
    const double a = random_normal_double(rng);
    const double b = random_normal_double(rng);
    const double expect = a * b;
    const Fpr got = fpr_mul(Fpr::from_double(a), Fpr::from_double(b));
    if (std::fpclassify(expect) == FP_SUBNORMAL) continue;
    ASSERT_EQ(got.bits(), std::bit_cast<std::uint64_t>(expect))
        << "a=" << a << " b=" << b;
  }
}

TEST(Fpr, MulZero) {
  const Fpr x = Fpr::from_double(-7.5);
  EXPECT_EQ(fpr_mul(x, kZero).to_double(), -0.0);
  EXPECT_TRUE(fpr_mul(x, kZero).sign());
  EXPECT_FALSE(fpr_mul(x, fpr_neg(kZero)).sign());
}

TEST(Fpr, DivMatchesHardware) {
  ChaCha20Prng rng(0x1005);
  for (int i = 0; i < 100000; ++i) {
    const double a = random_normal_double(rng);
    const double b = random_normal_double(rng);
    const double expect = a / b;
    const Fpr got = fpr_div(Fpr::from_double(a), Fpr::from_double(b));
    if (std::fpclassify(expect) == FP_SUBNORMAL) continue;
    ASSERT_EQ(got.bits(), std::bit_cast<std::uint64_t>(expect))
        << "a=" << a << " b=" << b;
  }
}

TEST(Fpr, SqrtMatchesHardware) {
  ChaCha20Prng rng(0x1006);
  for (int i = 0; i < 100000; ++i) {
    const double a = std::fabs(random_normal_double(rng));
    const double expect = std::sqrt(a);
    const Fpr got = fpr_sqrt(Fpr::from_double(a));
    ASSERT_EQ(got.bits(), std::bit_cast<std::uint64_t>(expect)) << "a=" << a;
  }
}

TEST(Fpr, HalfDouble) {
  ChaCha20Prng rng(0x1007);
  for (int i = 0; i < 10000; ++i) {
    const double a = random_normal_double(rng);
    EXPECT_EQ(fpr_half(Fpr::from_double(a)).to_double(), a * 0.5);
    EXPECT_EQ(fpr_double(Fpr::from_double(a)).to_double(), a * 2.0);
  }
}

TEST(Fpr, OfAndScaled) {
  ChaCha20Prng rng(0x1008);
  for (int i = 0; i < 50000; ++i) {
    const std::int64_t v = static_cast<std::int64_t>(rng.next_u64()) >> rng.uniform(40);
    EXPECT_EQ(fpr_of(v).to_double(), static_cast<double>(v)) << v;
  }
  EXPECT_EQ(fpr_scaled(3, 4).to_double(), 48.0);
  EXPECT_EQ(fpr_scaled(-5, -2).to_double(), -1.25);
  EXPECT_EQ(fpr_of(0).bits(), 0U);
}

TEST(Fpr, RintMatchesHardware) {
  ChaCha20Prng rng(0x1009);
  for (int i = 0; i < 100000; ++i) {
    // Values around the integer range the sampler uses.
    const double scale = std::ldexp(1.0, static_cast<int>(rng.uniform(40)));
    const double a = (static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53 - 0.5) * scale;
    EXPECT_EQ(fpr_rint(Fpr::from_double(a)), std::llrint(a)) << a;
  }
  EXPECT_EQ(fpr_rint(Fpr::from_double(0.5)), 0);   // ties to even
  EXPECT_EQ(fpr_rint(Fpr::from_double(1.5)), 2);
  EXPECT_EQ(fpr_rint(Fpr::from_double(2.5)), 2);
  EXPECT_EQ(fpr_rint(Fpr::from_double(-0.5)), 0);
  EXPECT_EQ(fpr_rint(Fpr::from_double(-1.5)), -2);
}

TEST(Fpr, TruncFloor) {
  ChaCha20Prng rng(0x100A);
  for (int i = 0; i < 100000; ++i) {
    const double scale = std::ldexp(1.0, static_cast<int>(rng.uniform(40)));
    const double a = (static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53 - 0.5) * scale;
    EXPECT_EQ(fpr_trunc(Fpr::from_double(a)), static_cast<std::int64_t>(std::trunc(a))) << a;
    EXPECT_EQ(fpr_floor(Fpr::from_double(a)), static_cast<std::int64_t>(std::floor(a))) << a;
  }
}

TEST(Fpr, Lt) {
  ChaCha20Prng rng(0x100B);
  for (int i = 0; i < 100000; ++i) {
    const double a = random_normal_double(rng);
    const double b = random_normal_double(rng);
    EXPECT_EQ(fpr_lt(Fpr::from_double(a), Fpr::from_double(b)), a < b);
  }
}

TEST(Fpr, ExpmP63Accuracy) {
  // 2^63 * ccs * exp(-x) for x in [0, ln 2): compare against long double.
  ChaCha20Prng rng(0x100C);
  for (int i = 0; i < 2000; ++i) {
    const double x = static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53 * 0.6931;
    const double ccs = static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53 * 0.999;
    const std::uint64_t got = fpr_expm_p63(Fpr::from_double(x), Fpr::from_double(ccs));
    const long double expect =
        std::exp(-static_cast<long double>(x)) * static_cast<long double>(ccs) * 0x1.0p63L;
    const long double err = std::fabs(static_cast<long double>(got) - expect);
    // Taylor-13 truncation + fixed-point rounding: a few parts in 2^51.
    EXPECT_LT(err, 16384.0L) << "x=" << x << " ccs=" << ccs;
  }
}

TEST(Fpr, MulMantissaStepsReassembly) {
  // The split pipeline must reassemble to the exact 106-bit product.
  ChaCha20Prng rng(0x100D);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t xm = (rng.next_u64() & 0x000FFFFFFFFFFFFFULL) | (1ULL << 52);
    const std::uint64_t ym = (rng.next_u64() & 0x000FFFFFFFFFFFFFULL) | (1ULL << 52);
    const MulMantissaSteps s = mul_mantissa_steps(xm, ym);
    const unsigned __int128 p = static_cast<unsigned __int128>(xm) * ym;
    const unsigned __int128 re = (static_cast<unsigned __int128>(s.zu) << 50) |
                                 (static_cast<unsigned __int128>(s.z1) << 25) | s.z0;
    ASSERT_EQ(static_cast<std::uint64_t>(p), static_cast<std::uint64_t>(re));
    ASSERT_EQ(static_cast<std::uint64_t>(p >> 64), static_cast<std::uint64_t>(re >> 64));
  }
}

TEST(Fpr, MulMantissaStepsShiftFalsePositiveStructure) {
  // The paper's core observation, as an invariant: for mantissa-halves D
  // and D' = D << 1, the partial product D'*B is exactly (D*B) << 1 --
  // same Hamming weight, hence indistinguishable by an HW-model CPA on
  // the multiplication -- while the accumulation z1a differs in a
  // carry-dependent (not shift-invariant) way.
  ChaCha20Prng rng(0x100E);
  int z1a_shift_collisions = 0;
  constexpr int kCases = 20000;
  for (int i = 0; i < kCases; ++i) {
    const std::uint64_t ym = (rng.next_u64() & 0x000FFFFFFFFFFFFFULL) | (1ULL << 52);
    const std::uint32_t d = static_cast<std::uint32_t>(rng.next_u64()) & (kMantLowMask >> 1);
    const std::uint64_t xm_lo_d = (1ULL << 52) | d;           // x0 = d (top bits fixed)
    const std::uint64_t xm_lo_2d = (1ULL << 52) | (d << 1);   // x0 = 2d
    const MulMantissaSteps a = mul_mantissa_steps(xm_lo_d, ym);
    const MulMantissaSteps b = mul_mantissa_steps(xm_lo_2d, ym);
    // Multiplication: exact shift relation => identical popcount.
    ASSERT_EQ(b.prod_ll, a.prod_ll << 1);
    ASSERT_EQ(std::popcount(b.prod_ll), std::popcount(a.prod_ll));
    // Addition: the shift relation breaks for most inputs.
    if (std::popcount(b.z1a) == std::popcount(a.z1a)) ++z1a_shift_collisions;
  }
  // Additions still collide occasionally by chance, but not structurally.
  EXPECT_LT(z1a_shift_collisions, kCases / 2);
}

}  // namespace
}  // namespace fd::fpr
