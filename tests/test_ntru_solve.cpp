// NTRUSolve: ring-helper identities and the NTRU equation itself across
// sizes, with Gaussian-sampled inputs like real keygen.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "falcon/ntru_solve.h"
#include "falcon/params.h"
#include "falcon/sampler.h"

namespace fd::falcon {
namespace {

ZPoly sample_small(RandomSource& rng, std::size_t n, double sigma) {
  KeygenGaussian g(sigma);
  ZPoly f(n);
  for (auto& c : f) c = BigInt(g.sample(rng));
  return f;
}

bool is_q(const ZPoly& p, std::uint32_t q) {
  if (p[0] != BigInt(static_cast<std::int64_t>(q))) return false;
  for (std::size_t i = 1; i < p.size(); ++i) {
    if (!p[i].is_zero()) return false;
  }
  return true;
}

TEST(ZPoly, MulIsNegacyclic) {
  // (x^(n-1)) * x = -1 in Z[x]/(x^n + 1).
  ZPoly a(4, BigInt(0)), b(4, BigInt(0));
  a[3] = BigInt(1);
  b[1] = BigInt(1);
  const ZPoly r = zpoly_mul(a, b);
  EXPECT_EQ(r[0], BigInt(-1));
  EXPECT_TRUE(r[1].is_zero());
  EXPECT_TRUE(r[2].is_zero());
  EXPECT_TRUE(r[3].is_zero());
}

TEST(ZPoly, GaloisConjugateIsInvolution) {
  ChaCha20Prng rng(0x7001);
  const ZPoly f = sample_small(rng, 16, 20.0);
  EXPECT_EQ(zpoly_galois_conjugate(zpoly_galois_conjugate(f)), f);
}

TEST(ZPoly, FieldNormIdentity) {
  // N(f)(x^2) == f(x) * f(-x) for every f.
  ChaCha20Prng rng(0x7002);
  for (const std::size_t n : {2U, 4U, 8U, 16U, 32U}) {
    const ZPoly f = sample_small(rng, n, 15.0);
    const ZPoly lhs = zpoly_lift(zpoly_field_norm(f));
    const ZPoly rhs = zpoly_mul(f, zpoly_galois_conjugate(f));
    EXPECT_EQ(lhs, rhs) << "n=" << n;
  }
}

TEST(ZPoly, FieldNormMultiplicative) {
  // N(f*g) == N(f) * N(g).
  ChaCha20Prng rng(0x7003);
  const ZPoly f = sample_small(rng, 8, 10.0);
  const ZPoly g = sample_small(rng, 8, 10.0);
  EXPECT_EQ(zpoly_field_norm(zpoly_mul(f, g)),
            zpoly_mul(zpoly_field_norm(f), zpoly_field_norm(g)));
}

TEST(ZPoly, ReduceKeepsLatticeCoset) {
  // Babai reduction changes (F, G) by multiples of (f, g) only, so
  // f*G - g*F is invariant.
  ChaCha20Prng rng(0x7004);
  const std::size_t n = 16;
  const ZPoly f = sample_small(rng, n, 5.0);
  const ZPoly g = sample_small(rng, n, 5.0);
  // Start from artificially bloated F, G: (F0 + t*f, G0 + t*g).
  ZPoly big_f = sample_small(rng, n, 1000.0);
  ZPoly big_g = sample_small(rng, n, 1000.0);
  const ZPoly before = zpoly_sub(zpoly_mul(f, big_g), zpoly_mul(g, big_f));
  const std::size_t bits_before = zpoly_max_bitlen(big_f);
  zpoly_reduce(big_f, big_g, f, g);
  const ZPoly after = zpoly_sub(zpoly_mul(f, big_g), zpoly_mul(g, big_f));
  EXPECT_EQ(before, after);
  EXPECT_LE(zpoly_max_bitlen(big_f), bits_before);
}

class NtruSolveParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(NtruSolveParam, SolvesNtruEquation) {
  const unsigned logn = GetParam();
  const std::size_t n = std::size_t{1} << logn;
  const double sigma = Params::get(std::max(2U, logn)).sigma_fg;
  ChaCha20Prng rng(0x7100 + logn);
  int solved = 0;
  for (int attempt = 0; attempt < 8 && solved < 2; ++attempt) {
    const ZPoly f = sample_small(rng, n, sigma);
    const ZPoly g = sample_small(rng, n, sigma);
    auto sol = ntru_solve(f, g, kQ);
    if (!sol) continue;  // non-coprime resultants: legitimate retry
    ++solved;
    const ZPoly check = zpoly_sub(zpoly_mul(f, sol->big_g), zpoly_mul(g, sol->big_f));
    EXPECT_TRUE(is_q(check, kQ)) << "logn=" << logn;
    // Size-reduced F, G stay comfortably below 2^20 for these sizes.
    EXPECT_LT(zpoly_max_bitlen(sol->big_f), 24U);
    EXPECT_LT(zpoly_max_bitlen(sol->big_g), 24U);
  }
  EXPECT_GE(solved, 1) << "no coprime (f,g) pair in 8 attempts at logn=" << logn;
}

INSTANTIATE_TEST_SUITE_P(Sizes, NtruSolveParam, ::testing::Values(0U, 1U, 2U, 3U, 4U, 5U, 6U));

TEST(NtruSolve, Degree1Bezout) {
  // n=1: plain Bezout. gcd(3, 5) = 1 -> exact solution.
  const ZPoly f = {BigInt(3)};
  const ZPoly g = {BigInt(5)};
  auto sol = ntru_solve(f, g, kQ);
  ASSERT_TRUE(sol.has_value());
  const BigInt check = f[0] * sol->big_g[0] - g[0] * sol->big_f[0];
  EXPECT_EQ(check, BigInt(12289));
}

TEST(NtruSolve, NonCoprimeFails) {
  // f and g both even: gcd of resultants is even, never 1.
  const ZPoly f = {BigInt(2)};
  const ZPoly g = {BigInt(4)};
  EXPECT_FALSE(ntru_solve(f, g, kQ).has_value());
}

}  // namespace
}  // namespace fd::falcon
