// Fleet mode (DESIGN.md section 12): wire protocol round-trips, shard
// fold merge/serde, and the orchestration acceptance pins:
//
//   - a fleet at 1, 2, and 4 workers recovers a BYTE-IDENTICAL key,
//     identical per-component results/accepted sets, an identical
//     captured archive, and identical attack.archive.scans totals vs
//     the single-process checkpointed pipeline;
//   - SIGKILLing a worker mid-shard completes the campaign through
//     reassignment (resuming the dead worker's checkpoint) with the
//     same key; a hung worker goes down the heartbeat-timeout path;
//   - a shard that exhausts its retry budget degrades the run to
//     `partial` with its components flagged;
//   - the SIGTERM/interrupt contract of tools/fd_attack.cpp: stop at a
//     batch boundary with a final checkpoint, resume bit-identically.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "attack/checkpoint.h"
#include "attack/cpa_kernel.h"
#include "attack/recovery_pipeline.h"
#include "common/rng.h"
#include "exec/parallel_for.h"
#include "exec/seed_split.h"
#include "exec/thread_pool.h"
#include "falcon/falcon.h"
#include "fleet/coordinator.h"
#include "fleet/protocol.h"
#include "obs/jsonl.h"

namespace fd {
namespace {

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) { clear(); }
  ~TempFile() { clear(); }
  void clear() const {
    std::remove(path.c_str());
    std::remove((path + ".fdckpt").c_str());
    std::remove((path + ".fdckpt.tmp").c_str());
    for (int i = 0; i < 8; ++i) {
      std::remove((path + ".shard" + std::to_string(i)).c_str());
    }
    for (int i = 1; i < 16; ++i) {
      const std::string t = path + ".task" + std::to_string(i) + ".fdckpt";
      std::remove(t.c_str());
      std::remove((t + ".tmp").c_str());
    }
  }
  std::string path;
};

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

std::vector<std::uint8_t> result_bytes(const attack::ComponentResult& r) {
  std::vector<std::uint8_t> out;
  attack::serialize_component_result(out, r);
  return out;
}

// The same experiment in fleet and single-process terms. Sized so one
// run takes tens of milliseconds: logn 3 = 8 components, two attack
// shards of 4.
constexpr std::size_t kTraces = 240;
constexpr std::uint64_t kSeed = 0xFD06;

attack::RecoveryPipelineConfig base_pipeline(const std::string& archive) {
  attack::RecoveryPipelineConfig cfg;
  cfg.attack.num_traces = kTraces;
  cfg.attack.device.noise_sigma = 2.0;
  cfg.attack.adversarial_random = 100;
  cfg.attack.seed = kSeed;
  cfg.archive_path = archive;
  cfg.capture_shards = 2;
  cfg.checkpoint_every = 4;
  return cfg;
}

fleet::FleetConfig base_fleet(const std::string& archive, std::size_t workers) {
  fleet::FleetConfig fc;
  fc.logn = 3;
  fc.pipeline = base_pipeline(archive);
  fc.workers = workers;
  fc.components_per_shard = 4;  // == checkpoint_every: scan parity
#ifdef FD_ATTACK_BIN
  fc.worker_binary = FD_ATTACK_BIN;
#endif
  return fc;
}

falcon::KeyPair fleet_victim(unsigned logn = 3) {
  // The same keygen seed run_fleet uses internally, so single-process
  // reference runs attack the identical key.
  ChaCha20Prng rng("victim key seed");
  return falcon::keygen(logn, rng);
}

// --- frame protocol --------------------------------------------------------

TEST(FleetProtocol, FramesSurviveArbitraryFragmentation) {
  std::vector<std::uint8_t> wire;
  const std::vector<std::uint8_t> p1 = {1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> p2 = {};
  std::vector<std::uint8_t> p3(1000);
  for (std::size_t i = 0; i < p3.size(); ++i) p3[i] = static_cast<std::uint8_t>(i * 7);
  fleet::encode_frame(wire, fleet::FrameType::kTask, p1);
  fleet::encode_frame(wire, fleet::FrameType::kHeartbeat, p2);
  fleet::encode_frame(wire, fleet::FrameType::kTelemetry, p3);

  const auto decode_all = [&](std::size_t step) {
    fleet::FrameDecoder dec;
    std::vector<fleet::Frame> frames;
    for (std::size_t off = 0; off < wire.size(); off += step) {
      const std::size_t n = std::min(step, wire.size() - off);
      dec.feed(std::span<const std::uint8_t>(wire.data() + off, n));
      fleet::Frame f;
      while (dec.next(f)) frames.push_back(f);
    }
    return frames;
  };

  for (const std::size_t step : {wire.size(), std::size_t{1}, std::size_t{7}}) {
    const auto frames = decode_all(step);
    ASSERT_EQ(frames.size(), 3u) << "step " << step;
    EXPECT_EQ(frames[0].type, fleet::FrameType::kTask);
    EXPECT_EQ(frames[0].payload, p1);
    EXPECT_EQ(frames[1].type, fleet::FrameType::kHeartbeat);
    EXPECT_TRUE(frames[1].payload.empty());
    EXPECT_EQ(frames[2].type, fleet::FrameType::kTelemetry);
    EXPECT_EQ(frames[2].payload, p3);
  }
}

TEST(FleetProtocol, CorruptStreamLatches) {
  fleet::FrameDecoder dec;
  const std::uint8_t garbage[] = {'n', 'o', 't', ' ', 'a', ' ', 'f', 'r', 'a', 'm', 'e', '!'};
  dec.feed(garbage);
  fleet::Frame f;
  EXPECT_FALSE(dec.next(f));
  EXPECT_TRUE(dec.corrupt());
  EXPECT_FALSE(dec.error().empty());

  // A valid frame after the garbage is NOT recovered -- no resync by
  // design; the coordinator kills the worker instead.
  std::vector<std::uint8_t> good;
  fleet::encode_frame(good, fleet::FrameType::kHello, {});
  dec.feed(good);
  EXPECT_FALSE(dec.next(f));
  EXPECT_TRUE(dec.corrupt());
}

TEST(FleetProtocol, BadVersionAndOversizeLengthRejected) {
  std::vector<std::uint8_t> wire;
  fleet::encode_frame(wire, fleet::FrameType::kHello, {});
  {
    auto bad = wire;
    bad[4] = 0xFF;  // version LSB
    fleet::FrameDecoder dec;
    dec.feed(bad);
    fleet::Frame f;
    EXPECT_FALSE(dec.next(f));
    EXPECT_TRUE(dec.corrupt());
  }
  {
    auto bad = wire;
    bad[8] = 0xFF;  // payload_len bytes -> far beyond kMaxPayload
    bad[9] = 0xFF;
    bad[10] = 0xFF;
    bad[11] = 0xFF;
    fleet::FrameDecoder dec;
    dec.feed(bad);
    fleet::Frame f;
    EXPECT_FALSE(dec.next(f));
    EXPECT_TRUE(dec.corrupt());
  }
}

TEST(FleetProtocol, SessionRoundTrip) {
  fleet::SessionConfig s;
  s.logn = 7;
  s.victim_seed = "a different victim";
  s.attack.num_traces = 1234;
  s.attack.device.alpha = 1.25;
  s.attack.device.noise_sigma = 3.5;
  s.attack.device.samples_per_event = 9;
  s.attack.device.jitter_max = 4;
  s.attack.device.constant_weight = true;
  s.attack.extend_top_k = 17;
  s.attack.adversarial_random = 99;
  s.attack.cpa_batch = 33;
  s.attack.seed = 0xABCDEF0123456789ULL;
  s.attack.threads = 3;
  s.faults.drop_rate = 0.125;
  s.faults.desync_rate = 0.0625;
  s.faults.desync_min = 11;
  s.faults.desync_max = 77;
  s.faults.saturate_rate = 0.25;
  s.faults.saturate_level = 19.5;
  s.faults.glitch_rate = 0.03125;
  s.faults.glitch_amplitude = 321.0;
  s.faults.chunk_corrupt_rate = 0.015625;
  s.faults.capture_fail_rate = 0.5;
  s.faults.seed = 0xFA0;
  s.quality.enabled = true;
  s.quality.saturation_pinned_frac = 0.07;
  s.quality.saturation_min_pinned = 5;
  s.quality.energy_mad_k = 6.5;
  s.quality.max_lag = 3;
  s.quality.min_alignment_corr = 0.625;
  s.quality.refine_iters = 4;
  s.single_pass = false;
  s.checkpoint_every = 3;
  s.session_hash = 0x1122334455667788ULL;
  s.heartbeat_interval_ms = 123;
  s.trace_id = 0x99AABBCCDDEEFF00ULL;
  s.profile_interval_ms = 15;

  std::vector<std::uint8_t> bytes;
  fleet::encode_session(bytes, s);
  fleet::SessionConfig back;
  ASSERT_TRUE(fleet::decode_session(bytes, back));
  EXPECT_EQ(back.logn, s.logn);
  EXPECT_EQ(back.victim_seed, s.victim_seed);
  EXPECT_EQ(back.attack.num_traces, s.attack.num_traces);
  EXPECT_EQ(back.attack.device.alpha, s.attack.device.alpha);
  EXPECT_EQ(back.attack.device.noise_sigma, s.attack.device.noise_sigma);
  EXPECT_EQ(back.attack.device.samples_per_event, s.attack.device.samples_per_event);
  EXPECT_EQ(back.attack.device.jitter_max, s.attack.device.jitter_max);
  EXPECT_EQ(back.attack.device.constant_weight, s.attack.device.constant_weight);
  EXPECT_EQ(back.attack.extend_top_k, s.attack.extend_top_k);
  EXPECT_EQ(back.attack.adversarial_random, s.attack.adversarial_random);
  EXPECT_EQ(back.attack.cpa_batch, s.attack.cpa_batch);
  EXPECT_EQ(back.attack.seed, s.attack.seed);
  EXPECT_EQ(back.attack.threads, s.attack.threads);
  EXPECT_EQ(back.faults.drop_rate, s.faults.drop_rate);
  EXPECT_EQ(back.faults.desync_rate, s.faults.desync_rate);
  EXPECT_EQ(back.faults.desync_min, s.faults.desync_min);
  EXPECT_EQ(back.faults.desync_max, s.faults.desync_max);
  EXPECT_EQ(back.faults.saturate_rate, s.faults.saturate_rate);
  EXPECT_EQ(back.faults.saturate_level, s.faults.saturate_level);
  EXPECT_EQ(back.faults.glitch_rate, s.faults.glitch_rate);
  EXPECT_EQ(back.faults.glitch_amplitude, s.faults.glitch_amplitude);
  EXPECT_EQ(back.faults.chunk_corrupt_rate, s.faults.chunk_corrupt_rate);
  EXPECT_EQ(back.faults.capture_fail_rate, s.faults.capture_fail_rate);
  EXPECT_EQ(back.faults.seed, s.faults.seed);
  EXPECT_EQ(back.quality.enabled, s.quality.enabled);
  EXPECT_EQ(back.quality.saturation_pinned_frac, s.quality.saturation_pinned_frac);
  EXPECT_EQ(back.quality.saturation_min_pinned, s.quality.saturation_min_pinned);
  EXPECT_EQ(back.quality.energy_mad_k, s.quality.energy_mad_k);
  EXPECT_EQ(back.quality.max_lag, s.quality.max_lag);
  EXPECT_EQ(back.quality.min_alignment_corr, s.quality.min_alignment_corr);
  EXPECT_EQ(back.quality.refine_iters, s.quality.refine_iters);
  EXPECT_EQ(back.single_pass, s.single_pass);
  EXPECT_EQ(back.checkpoint_every, s.checkpoint_every);
  EXPECT_EQ(back.session_hash, s.session_hash);
  EXPECT_EQ(back.heartbeat_interval_ms, s.heartbeat_interval_ms);
  EXPECT_EQ(back.trace_id, s.trace_id);
  EXPECT_EQ(back.profile_interval_ms, s.profile_interval_ms);

  // Decoders are total: every strict prefix is rejected, no throw.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    fleet::SessionConfig t;
    EXPECT_FALSE(fleet::decode_session(
        std::span<const std::uint8_t>(bytes.data(), cut), t))
        << "prefix " << cut << " accepted";
  }
}

TEST(FleetProtocol, TaskAndResultRoundTrip) {
  fleet::TaskSpec spec;
  spec.task_id = 42;
  spec.kind = fleet::TaskKind::kAttack;
  spec.capture_traces = 120;
  spec.capture_seed = 0xC0FFEE;
  spec.fault_query_offset = 360;
  spec.out_path = "out/shard.fdtrace";
  spec.archive_path = "camp.fdtrace";
  spec.checkpoint_path = "camp.fdtrace.task42.fdckpt";
  spec.components = {3, 5, 9, 11};
  spec.kill_after = 2;
  spec.hang_ms = 150;
  spec.parent_span = 0xFEDCBA9876543210ULL;
  std::vector<std::uint8_t> bytes;
  fleet::encode_task(bytes, spec);
  fleet::TaskSpec spec_back;
  ASSERT_TRUE(fleet::decode_task(bytes, spec_back));
  EXPECT_EQ(spec_back.task_id, spec.task_id);
  EXPECT_EQ(spec_back.kind, spec.kind);
  EXPECT_EQ(spec_back.capture_traces, spec.capture_traces);
  EXPECT_EQ(spec_back.capture_seed, spec.capture_seed);
  EXPECT_EQ(spec_back.fault_query_offset, spec.fault_query_offset);
  EXPECT_EQ(spec_back.out_path, spec.out_path);
  EXPECT_EQ(spec_back.archive_path, spec.archive_path);
  EXPECT_EQ(spec_back.checkpoint_path, spec.checkpoint_path);
  EXPECT_EQ(spec_back.components, spec.components);
  EXPECT_EQ(spec_back.kill_after, spec.kill_after);
  EXPECT_EQ(spec_back.hang_ms, spec.hang_ms);
  EXPECT_EQ(spec_back.parent_span, spec.parent_span);

  fleet::TaskResult res;
  res.task_id = 42;
  res.kind = fleet::TaskKind::kAttack;
  res.ok = true;
  res.error = "not really";
  res.queries = 7;
  res.records = 28;
  res.archive_scans = 3;
  res.span = 0x1234000056780000ULL;
  res.quality.total = 100;
  res.quality.accepted = 93;
  res.quality.rejected_saturated = 3;
  res.quality.rejected_energy = 2;
  res.quality.rejected_alignment = 2;
  res.quality.realigned = 5;
  for (std::uint32_t c : {3u, 9u}) {
    fleet::ComponentOutcome o;
    o.component = c;
    o.accepted = 200 + c;
    o.result.sign = (c == 9);
    o.result.exponent = 1020 + c;
    o.result.x0 = 0x1ABCDEF;
    o.result.x1 = 0x89ABCDE | (1u << 27);
    o.result.bits = 0xBFF123456789ABCDULL + c;
    o.result.low_prune.value = 0x155555;
    o.result.low_prune.score = 0.8123456789012345;  // bit-exactness probe
    o.result.high_prune.score = -0.0;               // sign of zero survives
    res.outcomes.push_back(o);
  }
  bytes.clear();
  fleet::encode_result(bytes, res);
  fleet::TaskResult res_back;
  ASSERT_TRUE(fleet::decode_result(bytes, res_back));
  EXPECT_EQ(res_back.task_id, res.task_id);
  EXPECT_EQ(res_back.kind, res.kind);
  EXPECT_EQ(res_back.ok, res.ok);
  EXPECT_EQ(res_back.error, res.error);
  EXPECT_EQ(res_back.queries, res.queries);
  EXPECT_EQ(res_back.records, res.records);
  EXPECT_EQ(res_back.archive_scans, res.archive_scans);
  EXPECT_EQ(res_back.span, res.span);
  EXPECT_EQ(res_back.quality.total, res.quality.total);
  EXPECT_EQ(res_back.quality.accepted, res.quality.accepted);
  EXPECT_EQ(res_back.quality.realigned, res.quality.realigned);
  ASSERT_EQ(res_back.outcomes.size(), res.outcomes.size());
  for (std::size_t i = 0; i < res.outcomes.size(); ++i) {
    EXPECT_EQ(res_back.outcomes[i].component, res.outcomes[i].component);
    EXPECT_EQ(res_back.outcomes[i].accepted, res.outcomes[i].accepted);
    EXPECT_EQ(result_bytes(res_back.outcomes[i].result), result_bytes(res.outcomes[i].result))
        << "component result not bit-exact at " << i;
  }

  fleet::Hello h;
  h.pid = 4321;
  bytes.clear();
  fleet::encode_hello(bytes, h);
  fleet::Hello h2;
  ASSERT_TRUE(fleet::decode_hello(bytes, h2));
  EXPECT_EQ(h2.version, fleet::kProtocolVersion);
  EXPECT_EQ(h2.pid, 4321u);

  fleet::Progress p;
  p.task_id = 42;
  p.completed = 3;
  p.total = 4;
  p.span = 0xA5A5A5A5A5A5A5A5ULL;
  bytes.clear();
  fleet::encode_progress(bytes, p);
  fleet::Progress p2;
  ASSERT_TRUE(fleet::decode_progress(bytes, p2));
  EXPECT_EQ(p2.task_id, 42u);
  EXPECT_EQ(p2.completed, 3u);
  EXPECT_EQ(p2.total, 4u);
  EXPECT_EQ(p2.span, p.span);
}

// --- shard folds: merge + wire serde ---------------------------------------

constexpr std::size_t kFoldGuesses = 8;
constexpr std::size_t kFoldSamples = 16;
constexpr std::size_t kFoldTraces = 64;

void synth_trace(std::size_t t, std::vector<double>& h, std::vector<float>& s) {
  h.resize(kFoldGuesses);
  s.resize(kFoldSamples);
  for (std::size_t g = 0; g < kFoldGuesses; ++g) {
    h[g] = static_cast<double>(exec::mix64(t * 1000 + g) % 97) * 0.25;
  }
  for (std::size_t j = 0; j < kFoldSamples; ++j) {
    s[j] = static_cast<float>(
        static_cast<double>(exec::mix64((t << 20) + j) % 1311) * 0.01 - 3.0);
  }
}

attack::CpaSums fold_range(std::size_t begin, std::size_t end) {
  attack::CpaSums sums;
  attack::CpaBatchKernel kernel(kFoldGuesses, kFoldSamples);
  std::vector<double> h;
  std::vector<float> s;
  for (std::size_t t = begin; t < end; ++t) {
    synth_trace(t, h, s);
    kernel.add_trace(sums, h, s);
  }
  kernel.flush(sums);
  return sums;
}

void expect_sums_bitexact(const attack::CpaSums& a, const attack::CpaSums& b) {
  ASSERT_EQ(a.num_guesses, b.num_guesses);
  ASSERT_EQ(a.num_samples, b.num_samples);
  EXPECT_EQ(a.traces, b.traces);
  EXPECT_EQ(a.have_ref, b.have_ref);
  const auto vec_eq = [](const std::vector<double>& x, const std::vector<double>& y,
                         const char* what) {
    ASSERT_EQ(x.size(), y.size()) << what;
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(x[i]), std::bit_cast<std::uint64_t>(y[i]))
          << what << "[" << i << "]";
    }
  };
  vec_eq(a.ref_h, b.ref_h, "ref_h");
  vec_eq(a.ref_t, b.ref_t, "ref_t");
  vec_eq(a.sum_h, b.sum_h, "sum_h");
  vec_eq(a.sum_h2, b.sum_h2, "sum_h2");
  vec_eq(a.sum_t, b.sum_t, "sum_t");
  vec_eq(a.sum_t2, b.sum_t2, "sum_t2");
  vec_eq(a.sum_ht, b.sum_ht, "sum_ht");
}

TEST(FleetFold, WireRoundTripIsBitExact) {
  const auto sums = fold_range(0, kFoldTraces);
  std::vector<std::uint8_t> bytes;
  attack::serialize_cpa_sums(bytes, sums);
  attack::CpaSums back;
  std::size_t off = 0;
  ASSERT_TRUE(attack::deserialize_cpa_sums(bytes, off, back));
  EXPECT_EQ(off, bytes.size());
  expect_sums_bitexact(back, sums);

  // Truncations rejected without advancing the cursor.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{7}, bytes.size() - 1}) {
    attack::CpaSums t;
    std::size_t o = 0;
    EXPECT_FALSE(
        attack::deserialize_cpa_sums(std::span<const std::uint8_t>(bytes.data(), cut), o, t));
    EXPECT_EQ(o, 0u);
  }
}

TEST(FleetFold, ShardMergeEqualsParallelReduceAndWireRoundTrip) {
  const auto plan = exec::static_chunks(kFoldTraces, 4);
  ASSERT_EQ(plan.size(), 4u);

  // In-process shard folds merged in shard-index order.
  attack::CpaSums merged;
  std::vector<attack::CpaSums> folds;
  for (const auto& r : plan) folds.push_back(fold_range(r.begin, r.end));
  for (const auto& f : folds) attack::merge_cpa_sums(merged, f);

  // The exec engine's reduce over the same plan must match bit for bit.
  exec::ThreadPool pool(3);
  const auto reduced = exec::parallel_reduce(
      &pool, kFoldTraces, 4, attack::CpaSums{},
      [](exec::ChunkRange r) { return fold_range(r.begin, r.end); },
      [](attack::CpaSums acc, attack::CpaSums src) {
        attack::merge_cpa_sums(acc, src);
        return acc;
      });
  expect_sums_bitexact(reduced, merged);

  // ... as must folds that crossed the fleet wire.
  std::vector<std::uint8_t> wire;
  for (const auto& f : folds) attack::serialize_cpa_sums(wire, f);
  attack::CpaSums from_wire;
  std::size_t off = 0;
  for (std::size_t i = 0; i < folds.size(); ++i) {
    attack::CpaSums shard;
    ASSERT_TRUE(attack::deserialize_cpa_sums(wire, off, shard)) << "shard " << i;
    attack::merge_cpa_sums(from_wire, shard);
  }
  EXPECT_EQ(off, wire.size());
  expect_sums_bitexact(from_wire, merged);

  // And the merged statistics agree with the unsharded serial fold to
  // ULP-level: same correlations up to reassociation noise.
  const auto serial = fold_range(0, kFoldTraces);
  ASSERT_EQ(merged.traces, serial.traces);
  for (std::size_t g = 0; g < kFoldGuesses; ++g) {
    for (std::size_t s = 0; s < kFoldSamples; ++s) {
      EXPECT_NEAR(merged.correlation(g, s), serial.correlation(g, s), 1e-9)
          << "corr(" << g << "," << s << ")";
    }
  }

  // FoldFrame transport round-trip.
  fleet::FoldFrame ff;
  ff.task_id = 17;
  ff.sums = folds[1];
  std::vector<std::uint8_t> fb;
  fleet::encode_fold(fb, ff);
  fleet::FoldFrame ff2;
  ASSERT_TRUE(fleet::decode_fold(fb, ff2));
  EXPECT_EQ(ff2.task_id, 17u);
  expect_sums_bitexact(ff2.sums, folds[1]);
}

// --- fleet orchestration ---------------------------------------------------

#ifdef FD_ATTACK_BIN

TEST(Fleet, BitIdenticalToSingleProcessAtAnyWorkerCount) {
  const auto victim = fleet_victim();

  // Single-process reference: checkpointed so the attack stage batches
  // in fours, same as the fleet's component shards -- then the
  // archive-scan totals must agree too.
  TempFile ref_tmp("fleet_ref.fdtrace");
  auto ref_cfg = base_pipeline(ref_tmp.path);
  ref_cfg.checkpoint = true;
  ref_cfg.keep_archive = true;
  const auto ref = attack::run_recovery_pipeline(victim, ref_cfg);
  ASSERT_TRUE(ref.ok) << ref.error;
  ASSERT_TRUE(ref.recovery.f_exact);
  ASSERT_TRUE(ref.recovery.forgery_verified);
  const auto ref_archive = read_file(ref_tmp.path);
  ASSERT_FALSE(ref_archive.empty());

  std::vector<std::vector<std::uint8_t>> first_results;
  std::vector<std::size_t> first_accepted;
  std::uint64_t first_scans = 0;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    TempFile tmp("fleet_w" + std::to_string(workers) + ".fdtrace");
    auto fc = base_fleet(tmp.path, workers);
    fc.pipeline.keep_archive = true;
    const auto res = fleet::run_fleet(fc);
    ASSERT_TRUE(res.ok) << workers << " workers: " << res.error;
    EXPECT_EQ(res.workers_spawned, workers);
    EXPECT_EQ(res.worker_deaths, 0u);
    EXPECT_EQ(res.attack_shards, 2u);

    // The recovered key is byte-identical to the single-process run.
    EXPECT_EQ(res.recovery.recovered_f, ref.recovery.recovered_f) << workers << " workers";
    EXPECT_TRUE(res.recovery.f_exact);
    EXPECT_TRUE(res.recovery.forgery_verified);
    EXPECT_EQ(res.recovery.components_correct, ref.recovery.components_correct);
    EXPECT_EQ(res.captured_records, ref.captured_records);

    // So is the captured archive (shard seeds + merge order replicate
    // run_campaign_sharded exactly).
    EXPECT_EQ(read_file(tmp.path), ref_archive) << workers << " workers";

    // Per-component results and accepted sets: identical across worker
    // counts, compared as serialized bytes (bit-exact doubles).
    ASSERT_EQ(res.results.size(), victim.sk.params.n);
    std::vector<std::vector<std::uint8_t>> bytes;
    bytes.reserve(res.results.size());
    for (const auto& r : res.results) bytes.push_back(result_bytes(r));
    if (first_results.empty()) {
      first_results = std::move(bytes);
      first_accepted = res.accepted_traces;
      first_scans = res.archive_scans;
    } else {
      EXPECT_EQ(bytes, first_results) << workers << " workers";
      EXPECT_EQ(res.accepted_traces, first_accepted) << workers << " workers";
      EXPECT_EQ(res.archive_scans, first_scans) << workers << " workers";
    }
  }
  // Scan parity with the checkpointed pipeline: two batches of four ->
  // two single-pass scans, in process or across it. (Both sides count
  // zero when the build has FD_OBS=OFF -- the equality still pins.)
  EXPECT_EQ(first_scans, 2u * (FD_OBS_ENABLED ? 1u : 0u));
}

TEST(Fleet, SigkillMidShardCompletesViaReassignment) {
  TempFile clean_tmp("fleet_clean.fdtrace");
  const auto clean = fleet::run_fleet(base_fleet(clean_tmp.path, 2));
  ASSERT_TRUE(clean.ok) << clean.error;
  ASSERT_TRUE(clean.recovery.f_exact);

  TempFile tmp("fleet_kill.fdtrace");
  auto fc = base_fleet(tmp.path, 2);
  fc.pipeline.checkpoint_every = 2;  // kill strikes mid-task, after 2 of 4
  fc.kill_shard = 0;
  fc.kill_after = 1;
  const auto res = fleet::run_fleet(fc);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_GE(res.worker_deaths, 1u);
  EXPECT_GE(res.reassignments, 1u);
  EXPECT_GT(res.workers_spawned, 2u);  // a replacement was spawned

  // Same key, same per-component results: the retry resumed from the
  // dead worker's checkpoint and finished the shard bit-identically.
  EXPECT_EQ(res.recovery.recovered_f, clean.recovery.recovered_f);
  EXPECT_TRUE(res.recovery.f_exact);
  EXPECT_TRUE(res.recovery.forgery_verified);
  ASSERT_EQ(res.results.size(), clean.results.size());
  for (std::size_t i = 0; i < res.results.size(); ++i) {
    EXPECT_EQ(result_bytes(res.results[i]), result_bytes(clean.results[i])) << "component " << i;
  }
  EXPECT_EQ(res.accepted_traces, clean.accepted_traces);
}

TEST(Fleet, HungWorkerGoesDownTheHeartbeatTimeoutPath) {
  TempFile clean_tmp("fleet_clean2.fdtrace");
  const auto clean = fleet::run_fleet(base_fleet(clean_tmp.path, 2));
  ASSERT_TRUE(clean.ok) << clean.error;

  TempFile tmp("fleet_hang.fdtrace");
  auto fc = base_fleet(tmp.path, 2);
  fc.hang_shard = 0;
  fc.hang_ms = 10000;  // far beyond the timeout; the kill cuts it short
  fc.heartbeat_interval_ms = 10;
  fc.heartbeat_timeout_ms = 250;
  const auto res = fleet::run_fleet(fc);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_GE(res.worker_deaths, 1u);
  EXPECT_GE(res.reassignments, 1u);
  EXPECT_EQ(res.recovery.recovered_f, clean.recovery.recovered_f);
  EXPECT_TRUE(res.recovery.f_exact);
}

TEST(Fleet, ExhaustedRetryBudgetDegradesToPartial) {
  TempFile tmp("fleet_partial.fdtrace");
  auto fc = base_fleet(tmp.path, 2);
  fc.kill_shard = 0;
  fc.kill_after = 1;
  fc.max_task_attempts = 1;  // the one attempt dies -> permanent failure
  const auto res = fleet::run_fleet(fc);
  ASSERT_TRUE(res.ok) << res.error;  // graceful degradation, not an error
  EXPECT_TRUE(res.partial);
  ASSERT_EQ(res.flagged_components.size(), 4u);  // shard 0 = components 0..3
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(res.flagged_components[i], i);
  EXPECT_FALSE(res.recovery.f_exact);  // half the components defaulted
}

TEST(Fleet, UnspawnableWorkerBinaryFailsCleanly) {
  TempFile tmp("fleet_nobin.fdtrace");
  auto fc = base_fleet(tmp.path, 1);
  fc.worker_binary = "/nonexistent/fd-attack";
  fc.max_task_attempts = 2;
  const auto res = fleet::run_fleet(fc);
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.error.empty());
}

TEST(Fleet, TelemetryIsUnifiedAndWorkerTagged) {
  TempFile tmp("fleet_telem.fdtrace");
  TempFile telem("fleet_telem.jsonl");
  auto fc = base_fleet(tmp.path, 2);
  fc.telemetry_path = telem.path;
  const auto res = fleet::run_fleet(fc);
  ASSERT_TRUE(res.ok) << res.error;

  std::ifstream in(telem.path);
  std::string line;
  std::size_t lines = 0;
  std::size_t tagged = 0;
  std::size_t spawns = 0;
  while (std::getline(in, line)) {
    ++lines;
    obs::jsonl::Object obj;
    ASSERT_TRUE(obs::jsonl::parse_object(line, obj)) << "unparseable: " << line;
    if (obj.find("worker") != nullptr) ++tagged;
    if (obj.str("ev") == "fleet.worker.spawn") ++spawns;
  }
  EXPECT_EQ(lines, res.telemetry_lines);
  EXPECT_EQ(spawns, res.workers_spawned);
  // Coordinator fleet.* lines always flow; worker-forwarded lines (the
  // ones tagged by id) require an instrumented build.
  EXPECT_GT(lines, 0u);
  if (FD_OBS_ENABLED) {
    EXPECT_GT(tagged, 0u);
  }
}

#endif  // FD_ATTACK_BIN

// --- SIGTERM / interrupt contract ------------------------------------------

TEST(PipelineInterrupt, StopsAtBatchBoundaryAndResumesBitIdentically) {
  const auto victim = fleet_victim();

  TempFile ref_tmp("fleet_int_ref.fdtrace");
  const auto ref = attack::run_recovery_pipeline(victim, base_pipeline(ref_tmp.path));
  ASSERT_TRUE(ref.ok) << ref.error;

  TempFile tmp("fleet_int.fdtrace");
  auto cfg = base_pipeline(tmp.path);
  cfg.checkpoint = true;
  volatile std::sig_atomic_t flag = 1;  // "signal" already delivered
  cfg.interrupt_flag = &flag;
  const auto stopped = attack::run_recovery_pipeline(victim, cfg);
  EXPECT_FALSE(stopped.ok);
  EXPECT_TRUE(stopped.interrupted);
  // The final checkpoint and the archive survive for the resume run.
  EXPECT_FALSE(read_file(stopped.checkpoint_path).empty());
  EXPECT_FALSE(read_file(tmp.path).empty());

  cfg.interrupt_flag = nullptr;
  cfg.resume = true;
  const auto resumed = attack::run_recovery_pipeline(victim, cfg);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.recovery.recovered_f, ref.recovery.recovered_f);
  EXPECT_EQ(resumed.recovery.components_correct, ref.recovery.components_correct);
  EXPECT_TRUE(resumed.recovery.forgery_verified);
}

#ifdef FD_ATTACK_BIN

// Process-level kill-then-resume: SIGTERM a checkpointing fd-attack,
// then finish the run with --resume. The signal races the (fast) run,
// so both outcomes are legal: interrupted (exit 130) then resumed, or
// already finished. Either way the final result must match.
TEST(PipelineInterrupt, SigtermKillThenResumeProcessLevel) {
  const std::string bin = FD_ATTACK_BIN;
  TempFile tmp("fleet_sigterm.fdtrace");

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    const int null_fd = ::open("/dev/null", O_WRONLY);
    if (null_fd >= 0) {
      ::dup2(null_fd, STDOUT_FILENO);
      ::dup2(null_fd, STDERR_FILENO);
      ::close(null_fd);
    }
    ::execl(bin.c_str(), bin.c_str(), "recover", "--logn", "3", "--traces", "240", "--seed",
            "0xFD06", "--archive", tmp.path.c_str(), "--checkpoint", nullptr);
    _exit(127);
  }
  ::usleep(30 * 1000);
  ::kill(pid, SIGTERM);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "fd-attack did not exit cleanly on SIGTERM";
  const int code = WEXITSTATUS(status);
  ASSERT_TRUE(code == 130 || code == 0 || code == 1) << "exit " << code;

  if (code == 130) {
    // Interrupted: checkpoint + archive must be there, and --resume
    // must complete the recovery.
    EXPECT_FALSE(read_file(tmp.path + ".fdckpt").empty());
    const std::string cmd = bin + " recover --logn 3 --traces 240 --seed 0xFD06 --archive " +
                            tmp.path + " --checkpoint --resume --json 2>/dev/null";
    std::FILE* out = ::popen(cmd.c_str(), "r");
    ASSERT_NE(out, nullptr);
    std::string json;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, out)) > 0) json.append(buf, n);
    const int rc = ::pclose(out);
    EXPECT_EQ(WEXITSTATUS(rc), 0) << json;
    EXPECT_NE(json.find("\"resumed\":true"), std::string::npos) << json;
    EXPECT_NE(json.find("\"f_exact\":true"), std::string::npos) << json;
    EXPECT_NE(json.find("\"forgery_verified\":true"), std::string::npos) << json;
  }
}

#endif  // FD_ATTACK_BIN

}  // namespace
}  // namespace fd
