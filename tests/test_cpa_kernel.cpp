// The blocked CPA kernel's contracts (cpa_kernel.h):
//   - equivalence: batch sizes 1/7/64 agree with the exact two-pass
//     Pearson reference at trace counts not divisible by B, batch 1
//     reproduces the naive per-trace fold bit for bit, and tiling never
//     changes a single bit;
//   - the cancellation bugfix: a large DC offset (samples ~ 1e8 + HW)
//     drives the legacy unshifted moment form dn*sum2 - sum*sum
//     negative (the old code silently returned r = 0) while the shifted
//     kernel still recovers the key guess;
//   - ranking modes: |r| ranking catches inverted leakage that signed
//     ranking is blind to;
//   - a foreign-layout window (samples too short for the spec's views)
//     folds nothing and does not advance the window count;
//   - single-pass drivers: run_cpa_streaming_multi equals per-spec
//     run_cpa_streaming at ONE reader scan, single-pass
//     attack_components_gated equals the legacy per-component path at
//     one archive scan per call, and the whole pipeline attack round
//     costs exactly one archive pass.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "attack/cpa.h"
#include "attack/cpa_kernel.h"
#include "attack/parallel_attack.h"
#include "attack/recovery_pipeline.h"
#include "attack/streaming_cpa.h"
#include "common/rng.h"
#include "falcon/falcon.h"
#include "obs/metrics.h"
#include "sca/campaign.h"
#include "tracestore/archive.h"

namespace fd::attack {
namespace {

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) { std::remove(path.c_str()); }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

sca::CampaignConfig small_config(std::uint64_t seed) {
  sca::CampaignConfig cfg;
  cfg.num_traces = 220;
  cfg.device.noise_sigma = 2.0;
  cfg.seed = seed;
  return cfg;
}

StreamingCpaSpec exponent_spec(std::size_t slot, bool imag = false) {
  StreamingCpaSpec spec;
  spec.slot = slot;
  spec.imag_part = imag;
  spec.sample_offsets = {sca::window::kOffExpSum};
  for (std::uint32_t e = 1005; e <= 1053; ++e) spec.guesses.push_back(e);
  spec.model = [](std::uint32_t guess, const KnownOperand& k) {
    return hyp_exponent(guess, k);
  };
  return spec;
}

// Synthetic Hamming-weight leakage: operand d leaks popcount(v_d);
// guess g predicts popcount(v_d ^ mask_g) with mask_0 = 0 (the truth).
struct SyntheticCpa {
  std::size_t num_guesses = 0;
  std::size_t num_samples = 0;
  std::vector<std::uint64_t> masks;         // per guess
  std::vector<std::vector<double>> hyps;    // [trace][guess]
  std::vector<std::vector<float>> samples;  // [trace][sample]
};

SyntheticCpa make_synthetic(std::size_t traces, std::size_t guesses, std::size_t samples,
                            double noise_sigma, double dc_offset, double gain,
                            std::uint64_t seed) {
  ChaCha20Prng rng(seed);
  constexpr std::uint64_t kMask50 = (1ULL << 50) - 1;
  SyntheticCpa s;
  s.num_guesses = guesses;
  s.num_samples = samples;
  s.masks.push_back(0);  // guess 0 = truth
  for (std::size_t g = 1; g < guesses; ++g) s.masks.push_back(rng.next_u64() & kMask50);
  s.hyps.resize(traces);
  s.samples.resize(traces);
  for (std::size_t d = 0; d < traces; ++d) {
    const std::uint64_t v = rng.next_u64() & kMask50;
    const double hw = static_cast<double>(std::popcount(v));
    s.hyps[d].resize(guesses);
    for (std::size_t g = 0; g < guesses; ++g) {
      s.hyps[d][g] = static_cast<double>(std::popcount(v ^ s.masks[g]));
    }
    s.samples[d].resize(samples);
    for (std::size_t c = 0; c < samples; ++c) {
      const double noise = noise_sigma == 0.0 ? 0.0 : noise_sigma * rng.gaussian();
      s.samples[d][c] =
          static_cast<float>(dc_offset + 10.0 * static_cast<double>(c) + gain * hw + noise);
    }
  }
  return s;
}

// Exact two-pass mean-centered Pearson in extended precision: the
// ground truth every batched fold must agree with.
double exact_pearson(const SyntheticCpa& s, std::size_t g, std::size_t c) {
  const std::size_t d = s.hyps.size();
  long double mh = 0.0L, mt = 0.0L;
  for (std::size_t i = 0; i < d; ++i) {
    mh += s.hyps[i][g];
    mt += s.samples[i][c];
  }
  mh /= static_cast<long double>(d);
  mt /= static_cast<long double>(d);
  long double vh = 0.0L, vt = 0.0L, cov = 0.0L;
  for (std::size_t i = 0; i < d; ++i) {
    const long double a = s.hyps[i][g] - mh;
    const long double b = s.samples[i][c] - mt;
    vh += a * a;
    vt += b * b;
    cov += a * b;
  }
  if (vh <= 0.0L || vt <= 0.0L) return 0.0;
  return static_cast<double>(cov / std::sqrt(vh * vt));
}

CpaEngine fold_synthetic(const SyntheticCpa& s, CpaKernelConfig kernel,
                         CpaRankMode mode = CpaRankMode::kAbsPeak) {
  CpaEngine engine(s.num_guesses, s.num_samples, kernel, mode);
  for (std::size_t d = 0; d < s.hyps.size(); ++d) engine.add_trace(s.hyps[d], s.samples[d]);
  return engine;
}

// --- kernel equivalence ----------------------------------------------------

TEST(CpaKernel, BatchSizesAgreeWithExactReference) {
  // Trace counts deliberately not divisible by 7 or 64: the flush of a
  // partial tail batch must not change the statistics.
  for (const std::size_t traces : {63U, 100U, 101U}) {
    const auto s = make_synthetic(traces, 16, 3, 2.0, 0.0, 1.5, 0xA11CE + traces);
    const CpaEngine e1 = fold_synthetic(s, {.batch_traces = 1});
    const CpaEngine e7 = fold_synthetic(s, {.batch_traces = 7});
    const CpaEngine e64 = fold_synthetic(s, {.batch_traces = 64});
    ASSERT_EQ(e64.num_traces(), traces);
    for (std::size_t g = 0; g < s.num_guesses; ++g) {
      for (std::size_t c = 0; c < s.num_samples; ++c) {
        const double exact = exact_pearson(s, g, c);
        // Shifted data keeps every batch within rounding noise of the
        // two-pass reference...
        EXPECT_NEAR(e1.correlation(g, c), exact, 1e-10) << "D=" << traces;
        EXPECT_NEAR(e7.correlation(g, c), exact, 1e-10);
        EXPECT_NEAR(e64.correlation(g, c), exact, 1e-10);
        // ...and batch sizes differ from each other only by the
        // documented in-batch reassociation.
        EXPECT_NEAR(e7.correlation(g, c), e1.correlation(g, c), 1e-12);
        EXPECT_NEAR(e64.correlation(g, c), e1.correlation(g, c), 1e-12);
      }
    }
    EXPECT_EQ(e7.ranking(), e1.ranking());
    EXPECT_EQ(e64.ranking(), e1.ranking());
    EXPECT_EQ(e1.ranking().front(), 0U);  // and the fold is attacking
  }
}

TEST(CpaKernel, BatchOneReproducesNaiveFoldBitForBit) {
  const auto s = make_synthetic(101, 12, 2, 2.0, 0.0, 1.5, 0xBEE);
  const CpaEngine e1 = fold_synthetic(s, {.batch_traces = 1});

  // The naive per-trace fold, spelled out: first trace is the shift
  // reference, every later value enters the five sums as (x - ref) in
  // trace order. Batch 1 must reproduce this arithmetic exactly.
  const std::size_t gcount = s.num_guesses, scount = s.num_samples;
  std::vector<double> ref_h(gcount), ref_t(scount);
  std::vector<double> sh(gcount, 0.0), sh2(gcount, 0.0);
  std::vector<double> st(scount, 0.0), st2(scount, 0.0), sht(gcount * scount, 0.0);
  for (std::size_t d = 0; d < s.hyps.size(); ++d) {
    if (d == 0) {
      for (std::size_t g = 0; g < gcount; ++g) ref_h[g] = s.hyps[0][g];
      for (std::size_t c = 0; c < scount; ++c) ref_t[c] = s.samples[0][c];
    }
    for (std::size_t c = 0; c < scount; ++c) {
      const double t = static_cast<double>(s.samples[d][c]) - ref_t[c];
      st[c] += t;
      st2[c] += t * t;
    }
    for (std::size_t g = 0; g < gcount; ++g) {
      const double h = s.hyps[d][g] - ref_h[g];
      sh[g] += h;
      sh2[g] += h * h;
      for (std::size_t c = 0; c < scount; ++c) {
        const double t = static_cast<double>(s.samples[d][c]) - ref_t[c];
        sht[g * scount + c] += h * t;
      }
    }
  }
  const double dn = static_cast<double>(s.hyps.size());
  for (std::size_t g = 0; g < gcount; ++g) {
    for (std::size_t c = 0; c < scount; ++c) {
      const double var_h = dn * sh2[g] - sh[g] * sh[g];
      const double var_t = dn * st2[c] - st[c] * st[c];
      const double cov = dn * sht[g * scount + c] - sh[g] * st[c];
      const double r = (var_h <= 0.0 || var_t <= 0.0) ? 0.0 : cov / std::sqrt(var_h * var_t);
      EXPECT_EQ(e1.correlation(g, c), r) << "g=" << g << " c=" << c;
    }
  }
}

TEST(CpaKernel, TilingNeverChangesABit) {
  const auto s = make_synthetic(150, 49, 4, 2.0, 0.0, 1.5, 0x711E5);
  const CpaEngine base =
      fold_synthetic(s, {.batch_traces = 64, .guess_block = 32, .sample_block = 64});
  const CpaKernelConfig tilings[] = {
      {.batch_traces = 64, .guess_block = 1, .sample_block = 1},
      {.batch_traces = 64, .guess_block = 3, .sample_block = 5},
      {.batch_traces = 64, .guess_block = 1000, .sample_block = 1000},
  };
  for (const auto& cfg : tilings) {
    const CpaEngine e = fold_synthetic(s, cfg);
    for (std::size_t g = 0; g < s.num_guesses; ++g) {
      for (std::size_t c = 0; c < s.num_samples; ++c) {
        // Tile sizes are pure performance knobs: exact double equality.
        EXPECT_EQ(e.correlation(g, c), base.correlation(g, c))
            << "gb=" << cfg.guess_block << " sb=" << cfg.sample_block;
      }
    }
    EXPECT_EQ(e.ranking(), base.ranking());
  }
}

// --- the cancellation bugfix -----------------------------------------------

TEST(CpaKernel, DcOffsetRegressionRecoversKeyGuess) {
  // samples = 1e8 + HW, no noise. float quantization (ULP = 8 at 1e8)
  // coarsens but does not destroy the signal; what used to destroy it
  // is the legacy unshifted moment form, whose double-precision
  // accumulation error swamps the tiny true variance.
  const auto s = make_synthetic(2000, 16, 1, 0.0, 1e8, 1.0, 0xDC0FF);

  // The bug was real: the legacy form goes negative, and the old
  // correlation() then silently returned r = 0 for every guess.
  double st = 0.0, st2 = 0.0;
  for (const auto& row : s.samples) {
    const double x = row[0];
    st += x;
    st2 += x * x;
  }
  const double dn = static_cast<double>(s.samples.size());
  EXPECT_LE(dn * st2 - st * st, 0.0)
      << "DC offset no longer drives the legacy moment form negative; "
         "pick a larger offset to keep this regression meaningful";

  // The shifted kernel recovers the key guess at any batch size.
  for (const std::size_t batch : {1U, 64U}) {
    const CpaEngine e = fold_synthetic(s, {.batch_traces = batch});
    EXPECT_EQ(e.ranking().front(), 0U) << "batch=" << batch;
    EXPECT_GT(e.peak(0), 0.5) << "batch=" << batch;
    const double exact = exact_pearson(s, 0, 0);
    EXPECT_NEAR(e.correlation(0, 0), exact, 1e-6) << "batch=" << batch;
  }

  // StreamingScan shares the fix: the huge-guess-space path scores the
  // truth on top too.
  std::vector<std::vector<float>> cols(1);
  cols[0].reserve(s.samples.size());
  for (const auto& row : s.samples) cols[0].push_back(row[0]);
  const StreamingScan scan(std::move(cols));
  const auto& hyps = s.hyps;
  const auto model = [&hyps](std::uint32_t guess, std::size_t trace, std::size_t) {
    return hyps[trace][guess];
  };
  const auto top = scan.top_k(0, s.num_guesses, model, s.num_guesses);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top.front().guess, 0U);
  EXPECT_GT(top.front().score, 0.5);
}

TEST(CpaKernel, CorrelationIsShiftInvariantBitForBit) {
  // t and t - 2^26 are within a factor of two of each other, so the
  // float subtraction is exact (Sterbenz): both engines see identical
  // shifted values and must produce identical doubles.
  const auto s =
      make_synthetic(300, 8, 2, 1.0, static_cast<double>(1 << 26), 1.0, 0x5111F7);
  auto shifted = s;
  for (auto& row : shifted.samples) {
    for (auto& x : row) x -= static_cast<float>(1 << 26);
  }
  const CpaEngine a = fold_synthetic(s, {});
  const CpaEngine b = fold_synthetic(shifted, {});
  for (std::size_t g = 0; g < s.num_guesses; ++g) {
    for (std::size_t c = 0; c < s.num_samples; ++c) {
      EXPECT_EQ(a.correlation(g, c), b.correlation(g, c));
    }
  }
  EXPECT_EQ(a.ranking(), b.ranking());
}

// --- ranking modes ---------------------------------------------------------

TEST(CpaKernel, AbsPeakRankingCatchesInvertedLeakage) {
  // Inverted device: amplitude DROPS with the Hamming weight. The truth
  // correlates near -1; signed ranking prefers any wrong guess with a
  // small positive fluctuation, |r| ranking is polarity-blind.
  auto s = make_synthetic(500, 16, 1, 0.5, 0.0, 1.0, 0x1EAF);
  for (std::size_t d = 0; d < s.samples.size(); ++d) {
    s.samples[d][0] = 200.0f - s.samples[d][0];
  }
  const CpaEngine by_abs = fold_synthetic(s, {}, CpaRankMode::kAbsPeak);
  const CpaEngine by_sign = fold_synthetic(s, {}, CpaRankMode::kSignedMax);

  // Same accumulated statistics either way...
  for (std::size_t g = 0; g < s.num_guesses; ++g) {
    EXPECT_EQ(by_abs.correlation(g, 0), by_sign.correlation(g, 0));
  }
  EXPECT_LT(by_abs.correlation(0, 0), -0.9);  // the leak really is inverted

  // ...but only |r| ranking finds the key.
  EXPECT_EQ(by_abs.rank_mode(), CpaRankMode::kAbsPeak);
  EXPECT_EQ(by_abs.ranking().front(), 0U);
  EXPECT_GT(by_abs.peak(0), 0.9);
  EXPECT_NE(by_sign.ranking().front(), 0U);
  EXPECT_LT(by_sign.peak(0), 0.0);
}

// --- foreign-layout windows (satellite bugfix) -----------------------------

TEST(CpaKernel, ForeignLayoutWindowFoldsNothingAndDoesNotCount) {
  const fpr::Fpr known = fpr::Fpr::from_bits(0x3FF8000000000000ULL);  // 1.5
  sca::TraceSet set;
  set.slot = 0;
  for (int i = 0; i < 5; ++i) {
    sca::CapturedTrace ct;
    ct.known_re = known;
    ct.known_im = known;
    ct.trace.samples.assign(4, 0.0f);  // no room for any fpr_mul view
    set.traces.push_back(ct);
  }
  const auto spec = exponent_spec(0);
  auto& windows = obs::MetricsRegistry::global().counter("attack.cpa.windows");

  const std::uint64_t before = windows.value();
  const CpaEngine empty = run_cpa_inmemory(set, spec);
  EXPECT_EQ(empty.num_traces(), 0U);
  if (FD_OBS_ENABLED) {
    // Foreign windows must not advance the cadence/window count.
    EXPECT_EQ(windows.value() - before, 0U);
  }

  // One well-formed window among the foreign ones: exactly it counts.
  set.traces[2].trace.samples.assign(sca::window::kEventsPerMul * 6, 0.0f);
  const std::uint64_t before2 = windows.value();
  const CpaEngine one = run_cpa_inmemory(set, spec);
  EXPECT_EQ(one.num_traces(), 2U);  // both views of the one good window
  if (FD_OBS_ENABLED) {
    EXPECT_EQ(windows.value() - before2, 1U);
  }
}

// --- single-pass multi-component streaming ---------------------------------

TEST(CpaKernel, MultiStreamingMatchesPerSpecAtOneScan) {
  ChaCha20Prng rng(0xD340);
  const auto kp = falcon::keygen(4, rng);
  const auto cfg = small_config(0xD340);
  TempFile tmp("ck_multi.fdtrace");
  ASSERT_TRUE(sca::run_campaign_to_archive(kp.sk, cfg, tmp.path).ok);

  // All 2N components of the key -- every slot, Re and Im -- plus one
  // budgeted spec, in a single demuxed pass.
  const std::size_t hn = kp.sk.params.n >> 1;
  std::vector<StreamingCpaSpec> specs;
  for (std::size_t slot = 0; slot < hn; ++slot) {
    specs.push_back(exponent_spec(slot, /*imag=*/false));
    specs.push_back(exponent_spec(slot, /*imag=*/true));
  }
  specs.push_back(exponent_spec(1));
  specs.back().max_traces = 150;

  tracestore::ArchiveReader reader;
  ASSERT_TRUE(reader.open(tmp.path)) << reader.error();
  auto& scans = obs::MetricsRegistry::global().counter("attack.archive.scans");
  const std::uint64_t metric_before = scans.value();
  const std::size_t reader_before = reader.scans_started();

  const std::vector<CpaEngine> engines = run_cpa_streaming_multi(reader, specs);

  // The whole-key attack cost ONE archive pass, not 2N.
  EXPECT_EQ(reader.scans_started() - reader_before, 1U);
  if (FD_OBS_ENABLED) {
    EXPECT_EQ(scans.value() - metric_before, 1U);
  }

  // And each engine is bit-identical to its dedicated serial pass.
  ASSERT_EQ(engines.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const CpaEngine solo = run_cpa_streaming(reader, specs[i]);
    ASSERT_EQ(engines[i].num_traces(), solo.num_traces()) << "spec " << i;
    for (std::size_t g = 0; g < solo.num_guesses(); ++g) {
      for (std::size_t c = 0; c < solo.num_samples(); ++c) {
        EXPECT_EQ(engines[i].correlation(g, c), solo.correlation(g, c)) << "spec " << i;
      }
    }
    EXPECT_EQ(engines[i].ranking(), solo.ranking()) << "spec " << i;
  }

  // The demuxed pass is attacking, not just matching: the true exponent
  // of a Re component clears the paper's 99.99% confidence bound.
  const unsigned truth = kp.sk.b01[2].biased_exponent();
  const CpaEngine& eng2 = engines[4];  // slot 2, Re
  EXPECT_GT(eng2.peak(truth - 1005), confidence_interval(0.9999, eng2.num_traces()));
}

// --- single-pass gated component fan-out -----------------------------------

TEST(CpaKernel, SinglePassGatedMatchesLegacyAtOneScan) {
  ChaCha20Prng rng(0xD341);
  const auto kp = falcon::keygen(4, rng);
  auto cfg = small_config(0xD341);
  cfg.num_traces = 300;
  TempFile tmp("ck_gated.fdtrace");
  ASSERT_TRUE(sca::run_campaign_to_archive(kp.sk, cfg, tmp.path).ok);

  KeyRecoveryConfig krc;
  const auto config_for = [&](const ComponentIndex& ci) {
    return component_attack_config(kp.sk, krc, /*row=*/0, ci.slot, ci.imag);
  };
  QualityConfig gate;
  gate.enabled = true;

  const std::vector<std::size_t> components = {0, 3, 11};
  auto& scans = obs::MetricsRegistry::global().counter("attack.archive.scans");

  std::vector<ComponentResult> res_sp, res_legacy;
  std::vector<std::size_t> acc_sp, acc_legacy;
  QualityReport q_sp, q_legacy;
  std::string err;

  const std::uint64_t before_sp = scans.value();
  ASSERT_TRUE(attack_components_gated(tmp.path, gate, config_for, nullptr, components,
                                      res_sp, acc_sp, &q_sp, &err, /*single_pass=*/true))
      << err;
  if (FD_OBS_ENABLED) {
    EXPECT_EQ(scans.value() - before_sp, 1U);  // one demux scan for all 3
  }

  const std::uint64_t before_legacy = scans.value();
  ASSERT_TRUE(attack_components_gated(tmp.path, gate, config_for, nullptr, components,
                                      res_legacy, acc_legacy, &q_legacy, &err,
                                      /*single_pass=*/false))
      << err;
  if (FD_OBS_ENABLED) {
    EXPECT_EQ(scans.value() - before_legacy, components.size());
  }

  // Bit-identical results, accepted-trace counts, and gate report.
  ASSERT_EQ(res_sp.size(), res_legacy.size());
  for (const std::size_t idx : components) {
    EXPECT_EQ(res_sp[idx].bits, res_legacy[idx].bits) << "component " << idx;
    EXPECT_EQ(res_sp[idx].sign, res_legacy[idx].sign);
    EXPECT_EQ(res_sp[idx].exponent, res_legacy[idx].exponent);
    EXPECT_EQ(res_sp[idx].x0, res_legacy[idx].x0);
    EXPECT_EQ(res_sp[idx].x1, res_legacy[idx].x1);
    EXPECT_EQ(acc_sp[idx], acc_legacy[idx]);
  }
  EXPECT_EQ(q_sp.total, q_legacy.total);
  EXPECT_EQ(q_sp.accepted, q_legacy.accepted);
  EXPECT_EQ(q_sp.rejected_saturated, q_legacy.rejected_saturated);
  EXPECT_EQ(q_sp.rejected_energy, q_legacy.rejected_energy);
  EXPECT_EQ(q_sp.rejected_alignment, q_legacy.rejected_alignment);
  EXPECT_EQ(q_sp.realigned, q_legacy.realigned);
}

// --- the pipeline's one-pass-per-round pin ---------------------------------

TEST(CpaKernel, PipelineAttackRoundScansArchiveOnce) {
  if (!FD_OBS_ENABLED) GTEST_SKIP() << "built with FD_OBS=OFF";
  ChaCha20Prng rng(0xD00D);
  const auto victim = falcon::keygen(4, rng);

  TempFile tmp("ck_pipeline.fdtrace");
  RecoveryPipelineConfig cfg;
  cfg.attack.num_traces = 400;
  cfg.attack.device.noise_sigma = 2.0;
  cfg.attack.seed = 0xD00D;
  cfg.archive_path = tmp.path;

  auto& scans = obs::MetricsRegistry::global().counter("attack.archive.scans");
  const std::uint64_t before = scans.value();
  const auto res = run_recovery_pipeline(victim, cfg);
  ASSERT_TRUE(res.ok) << res.error;
  // The full-key attack round (all 2N components, demuxed) is exactly
  // one archive pass.
  EXPECT_EQ(scans.value() - before, 1U);
  EXPECT_EQ(res.recovery.components_total, victim.pk.params.n);
}

}  // namespace
}  // namespace fd::attack
