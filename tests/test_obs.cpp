// Observability layer: metric correctness, span nesting and exception
// unwinding, event JSONL round-trips, sink behavior, and the two
// contracts the attack code depends on:
//  - fixed-seed runs emit deterministic telemetry (wall-clock fields
//    excepted, by the _us/_ms/_per_s key convention);
//  - instrumentation never perturbs attack results: rankings and
//    correlations are bit-identical with and without a sink installed.
// When built with FD_OBS=OFF the recording tests skip and the no-op
// stubs plus the always-compiled jsonl/sink core are exercised instead.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "attack/hypothesis.h"
#include "attack/streaming_cpa.h"
#include "common/rng.h"
#include "falcon/falcon.h"
#include "obs/obs.h"
#include "sca/campaign.h"

using namespace fd;

namespace {

class TempFile {
 public:
  explicit TempFile(const char* name) : path_(std::string("obs_test_") + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<std::string> read_lines(const std::string& path) {
  std::vector<std::string> lines;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return lines;
  std::string line;
  int ch;
  while ((ch = std::fgetc(f)) != EOF) {
    if (ch == '\n') {
      lines.push_back(line);
      line.clear();
    } else {
      line.push_back(static_cast<char>(ch));
    }
  }
  if (!line.empty()) lines.push_back(line);
  std::fclose(f);
  return lines;
}

bool is_wallclock_key(std::string_view key) {
  const auto ends_with = [&](std::string_view suffix) {
    return key.size() >= suffix.size() &&
           key.substr(key.size() - suffix.size()) == suffix;
  };
  return ends_with("_us") || ends_with("_ms") || ends_with("_per_s");
}

// Serialized event with wall-clock fields dropped: the deterministic
// residue two identical fixed-seed runs must agree on byte for byte.
std::string deterministic_view(const obs::Event& ev) {
  obs::Event filtered;
  filtered.name = ev.name;
  for (const auto& [key, value] : ev.fields) {
    if (!is_wallclock_key(key)) filtered.fields.emplace_back(key, value);
  }
  return obs::to_jsonl(filtered);
}

}  // namespace

// ---- always-compiled core: jsonl + event serialization -------------------

TEST(ObsJsonl, EventRoundTripsThroughParser) {
  obs::Event ev;
  ev.name = "unit.test";
  ev.add("count", obs::FieldValue::of(std::uint64_t{12345678901234ULL}));
  ev.add("delta", obs::FieldValue::of(std::int64_t{-42}));
  ev.add("ratio", obs::FieldValue::of(0.625));
  ev.add("flag", obs::FieldValue::of(true));
  ev.add("label", obs::FieldValue::of(std::string_view("slot7.im \"q\"\n")));

  const std::string line = obs::to_jsonl(ev);
  obs::jsonl::Object obj;
  std::string err;
  ASSERT_TRUE(obs::jsonl::parse_object(line, obj, &err)) << err << " in " << line;

  EXPECT_EQ(obj.str("ev"), "unit.test");
  EXPECT_EQ(obj.num("count"), 12345678901234.0);
  EXPECT_EQ(obj.num("delta"), -42.0);
  EXPECT_EQ(obj.num("ratio"), 0.625);
  ASSERT_NE(obj.find("flag"), nullptr);
  EXPECT_EQ(obj.find("flag")->kind, obs::jsonl::Value::Kind::kBool);
  EXPECT_TRUE(obj.find("flag")->b);
  EXPECT_EQ(obj.str("label"), "slot7.im \"q\"\n");

  // Insertion order is preserved ("ev" leads).
  ASSERT_EQ(obj.fields.size(), 6u);
  EXPECT_EQ(obj.fields[0].first, "ev");
  EXPECT_EQ(obj.fields[1].first, "count");
  EXPECT_EQ(obj.fields[5].first, "label");
}

TEST(ObsJsonl, NumberRenderingIsCanonical) {
  std::string out;
  obs::jsonl::append_number(out, 300.0);
  EXPECT_EQ(out, "300");  // integral -> no decimal point
  out.clear();
  obs::jsonl::append_number(out, 0.5);
  EXPECT_EQ(out, "0.5");
}

TEST(ObsJsonl, ParserRejectsNestedObjects) {
  obs::jsonl::Object obj;
  EXPECT_FALSE(obs::jsonl::parse_object(R"({"a":{"b":1}})", obj));
  EXPECT_FALSE(obs::jsonl::parse_object("not json", obj));
}

// ---- StreamReader: tolerant incremental reads over live streams ----------

TEST(ObsJsonl, StreamReaderRecordsMidRecordCutAsTruncatedTail) {
  // The stream a SIGKILLed worker leaves behind: complete lines, then a
  // record cut mid-write with no trailing newline.
  obs::jsonl::StreamReader reader;
  reader.feed("{\"ev\":\"a\",\"n\":1}\n{\"ev\":\"b\",\"n\":2}\n{\"ev\":\"c\",\"n\"");

  obs::jsonl::Object obj;
  ASSERT_TRUE(reader.next(obj));
  EXPECT_EQ(obj.str("ev"), "a");
  ASSERT_TRUE(reader.next(obj));
  EXPECT_EQ(obj.str("ev"), "b");
  // The cut record is buffered, not delivered: more bytes could arrive.
  EXPECT_FALSE(reader.next(obj));

  reader.finish();
  EXPECT_FALSE(reader.next(obj));  // unparseable tail is never delivered
  EXPECT_EQ(reader.lines_delivered(), 2u);
  EXPECT_EQ(reader.malformed_lines(), 0u);  // a cut is not "malformed"
  EXPECT_TRUE(reader.had_truncated_tail());
  EXPECT_EQ(reader.truncated_tail(), "{\"ev\":\"c\",\"n\"");
}

TEST(ObsJsonl, StreamReaderPromotesParseableUnterminatedTail) {
  // A writer that died between write() and the newline: the final line
  // is complete JSON, just unterminated. finish() promotes it.
  obs::jsonl::StreamReader reader;
  reader.feed("{\"ev\":\"a\"}\n{\"ev\":\"b\",\"n\":2}");
  obs::jsonl::Object obj;
  ASSERT_TRUE(reader.next(obj));
  EXPECT_FALSE(reader.next(obj));  // tail still pending
  reader.finish();
  ASSERT_TRUE(reader.next(obj));
  EXPECT_EQ(obj.str("ev"), "b");
  EXPECT_EQ(obj.num("n"), 2.0);
  EXPECT_EQ(reader.lines_delivered(), 2u);
  EXPECT_FALSE(reader.had_truncated_tail());
}

TEST(ObsJsonl, StreamReaderSkipsInterleavedGarbageLines) {
  // Two writers appending without line atomicity interleave torn
  // records; the good lines around them must still flow.
  obs::jsonl::StreamReader reader;
  reader.feed("{\"ev\":\"good1\"}\n");
  reader.feed("{\"ev\":\"tor{\"ev\":\"n\"}\n");  // two writes fused mid-line
  reader.feed("\n");                             // blank: ignored, not malformed
  reader.feed("{\"ev\":\"good2\"}\n");
  reader.finish();

  std::vector<std::string> seen;
  obs::jsonl::Object obj;
  while (reader.next(obj)) seen.emplace_back(obj.str("ev"));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "good1");
  EXPECT_EQ(seen[1], "good2");
  EXPECT_EQ(reader.lines_delivered(), 2u);
  EXPECT_EQ(reader.malformed_lines(), 1u);
  EXPECT_FALSE(reader.had_truncated_tail());
}

TEST(ObsJsonl, StreamReaderIsFramingIndependent) {
  // Byte-at-a-time delivery (the worst pipe fragmentation) must match
  // one whole-buffer feed exactly.
  const std::string stream =
      "{\"ev\":\"x\",\"n\":1}\njunk line\n{\"ev\":\"y\",\"n\":2}\n{\"ev\":\"z\"";

  obs::jsonl::StreamReader whole;
  whole.feed(stream);
  whole.finish();

  obs::jsonl::StreamReader bytewise;
  for (const char c : stream) bytewise.feed(std::string_view(&c, 1));
  bytewise.finish();

  for (auto* r : {&whole, &bytewise}) {
    obs::jsonl::Object obj;
    ASSERT_TRUE(r->next(obj));
    EXPECT_EQ(obj.str("ev"), "x");
    ASSERT_TRUE(r->next(obj));
    EXPECT_EQ(obj.str("ev"), "y");
    EXPECT_FALSE(r->next(obj));
    EXPECT_EQ(r->lines_delivered(), 2u);
    EXPECT_EQ(r->malformed_lines(), 1u);
    EXPECT_TRUE(r->had_truncated_tail());
    EXPECT_EQ(r->truncated_tail(), "{\"ev\":\"z\"");
  }
}

TEST(ObsSink, JsonLinesSinkWritesParseableLines) {
  TempFile tmp("jsonl_sink.jsonl");
  {
    obs::JsonLinesSink sink(tmp.path());
    ASSERT_TRUE(sink.ok()) << sink.error();
    obs::Event ev;
    ev.name = "first";
    ev.add("x", obs::FieldValue::of(std::uint64_t{1}));
    sink.record(ev);
    ev.name = "second";
    sink.record(ev);
    sink.flush();
  }
  const auto lines = read_lines(tmp.path());
  ASSERT_EQ(lines.size(), 2u);
  obs::jsonl::Object obj;
  ASSERT_TRUE(obs::jsonl::parse_object(lines[0], obj));
  EXPECT_EQ(obj.str("ev"), "first");
  ASSERT_TRUE(obs::jsonl::parse_object(lines[1], obj));
  EXPECT_EQ(obj.str("ev"), "second");
}

// ---- metrics --------------------------------------------------------------

TEST(ObsMetrics, HistogramBucketGeometry) {
  if (!FD_OBS_ENABLED) GTEST_SKIP() << "built with FD_OBS=OFF";
  // Bucket 0 is [0,1); bucket i >= 1 is [2^(i-1), 2^i).
  EXPECT_EQ(obs::histogram_bucket_index(0.0), 0u);
  EXPECT_EQ(obs::histogram_bucket_index(0.99), 0u);
  EXPECT_EQ(obs::histogram_bucket_index(1.0), 1u);
  EXPECT_EQ(obs::histogram_bucket_index(2.0), 2u);
  EXPECT_EQ(obs::histogram_bucket_index(3.0), 2u);
  EXPECT_EQ(obs::histogram_bucket_index(4.0), 3u);
  EXPECT_EQ(obs::histogram_bucket_index(1e300), obs::kHistogramBuckets - 1);
  for (std::size_t b = 1; b + 1 < obs::kHistogramBuckets; ++b) {
    const double lo = obs::histogram_bucket_lower_bound(b);
    EXPECT_EQ(obs::histogram_bucket_index(lo), b);
    EXPECT_EQ(obs::histogram_bucket_index(std::nextafter(lo, 0.0)), b - 1);
  }
}

TEST(ObsMetrics, CounterGaugeHistogramAndIdentity) {
  if (!FD_OBS_ENABLED) GTEST_SKIP() << "built with FD_OBS=OFF";
  auto& reg = obs::MetricsRegistry::global();

  auto& c = reg.counter("test.obs.counter");
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Lookup-or-create returns the same object for the same name.
  EXPECT_EQ(&c, &reg.counter("test.obs.counter"));
  EXPECT_NE(&c, &reg.counter("test.obs.counter2"));

  auto& g = reg.gauge("test.obs.gauge");
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);

  auto& h = reg.histogram("test.obs.hist");
  h.reset();
  h.record(0.5);
  h.record(3.0);
  h.record(100.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 103.5);
  EXPECT_EQ(h.min(), 0.5);
  EXPECT_EQ(h.max(), 100.0);
  EXPECT_EQ(h.bucket_count(0), 1u);                                  // 0.5
  EXPECT_EQ(h.bucket_count(obs::histogram_bucket_index(3.0)), 1u);   // 3
  EXPECT_EQ(h.bucket_count(obs::histogram_bucket_index(100.0)), 1u); // 100

  const auto snap = reg.snapshot();
  bool found = false;
  for (const auto& cv : snap.counters) {
    if (cv.name == "test.obs.counter") {
      found = true;
      EXPECT_EQ(cv.value, 42u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ObsMetrics, ExportToSinkEmitsMetricEvents) {
  if (!FD_OBS_ENABLED) GTEST_SKIP() << "built with FD_OBS=OFF";
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("test.obs.export").reset();
  reg.counter("test.obs.export").add(7);
  obs::CollectingSink sink;
  reg.export_to(sink);
  bool found = false;
  for (const auto& ev : sink.events()) {
    if (ev.name != "metric") continue;
    const auto* name = ev.find("name");
    if (name == nullptr || name->s != "test.obs.export") continue;
    found = true;
    const auto* value = ev.find("value");
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(value->as_double(), 7.0);
  }
  EXPECT_TRUE(found);
}

TEST(ObsMetrics, PercentileOverHandBuiltView) {
  // Always compiled: fd-report runs this estimator over parsed
  // telemetry even in FD_OBS=OFF builds.
  obs::HistogramView v;
  EXPECT_EQ(obs::histogram_percentile(v, 50.0), 0.0);  // empty

  // 100 identical samples of 3.0: every percentile is exactly 3.0
  // (interpolation inside bucket [2,4) is clamped to [min,max]).
  v.count = 100;
  v.sum = 300.0;
  v.min = v.max = 3.0;
  v.buckets[obs::histogram_bucket_index(3.0)] = 100;
  EXPECT_EQ(obs::histogram_percentile(v, 50.0), 3.0);
  EXPECT_EQ(obs::histogram_percentile(v, 95.0), 3.0);
  EXPECT_EQ(obs::histogram_percentile(v, 99.0), 3.0);

  // Bimodal 50x1.5 + 50x8.0: p50 interpolates to the top of the low
  // bucket [1,2); the tail percentiles clamp to the observed max.
  obs::HistogramView w;
  w.count = 100;
  w.sum = 50 * 1.5 + 50 * 8.0;
  w.min = 1.5;
  w.max = 8.0;
  w.buckets[obs::histogram_bucket_index(1.5)] = 50;
  w.buckets[obs::histogram_bucket_index(8.0)] = 50;
  EXPECT_EQ(obs::histogram_percentile(w, 50.0), 2.0);
  EXPECT_EQ(obs::histogram_percentile(w, 95.0), 8.0);
  EXPECT_EQ(obs::histogram_percentile(w, 99.0), 8.0);
  EXPECT_EQ(obs::histogram_percentile(w, 0.0), 1.5);  // rank clamps to 1
}

TEST(ObsMetrics, HistogramPercentileMatchesFreeFunction) {
  if (!FD_OBS_ENABLED) GTEST_SKIP() << "built with FD_OBS=OFF";
  auto& h = obs::MetricsRegistry::global().histogram("test.obs.pct");
  h.reset();
  for (int i = 0; i < 100; ++i) h.record(3.0);
  EXPECT_EQ(h.percentile(50.0), 3.0);
  EXPECT_EQ(h.percentile(99.0), 3.0);
  h.reset();
  for (int i = 0; i < 50; ++i) h.record(1.5);
  for (int i = 0; i < 50; ++i) h.record(8.0);
  EXPECT_EQ(h.percentile(50.0), 2.0);
  EXPECT_EQ(h.percentile(95.0), 8.0);
}

// ---- spans ----------------------------------------------------------------

TEST(ObsSpan, SpanIdHexRoundTrip) {
  // Always compiled (wire form of span IDs in JSONL).
  EXPECT_EQ(obs::span_id_hex(0x0123456789ABCDEFULL), "0123456789abcdef");
  EXPECT_EQ(obs::span_id_hex(0), "0000000000000000");
  EXPECT_EQ(obs::parse_span_id_hex("0123456789abcdef"), 0x0123456789ABCDEFULL);
  EXPECT_EQ(obs::parse_span_id_hex(obs::span_id_hex(0xDEADBEEFCAFEF00DULL)),
            0xDEADBEEFCAFEF00DULL);
  // Malformed inputs degrade to 0 ("no parent").
  EXPECT_EQ(obs::parse_span_id_hex(""), 0u);
  EXPECT_EQ(obs::parse_span_id_hex("abc"), 0u);
  EXPECT_EQ(obs::parse_span_id_hex("0123456789abcde"), 0u);    // 15 chars
  EXPECT_EQ(obs::parse_span_id_hex("0123456789abcdefg"), 0u);  // 17 chars
  EXPECT_EQ(obs::parse_span_id_hex("0123456789abcdzz"), 0u);   // non-hex
}

TEST(ObsSpan, ContextDerivationIsReplayStable) {
  if (!FD_OBS_ENABLED) GTEST_SKIP() << "built with FD_OBS=OFF";
  const auto capture_tree = [] {
    std::vector<obs::SpanContext> out;
    obs::Span root("ctx.root", obs::Span::Root::kAdopt);
    out.push_back(root.context());
    {
      obs::Span a("ctx.a");
      out.push_back(a.context());
      obs::Span aa("ctx.aa");
      out.push_back(aa.context());
    }
    obs::Span b("ctx.b");
    out.push_back(b.context());
    return out;
  };

  obs::set_trace_root(0xABCDEF);
  const auto first = capture_tree();
  obs::set_trace_root(0xABCDEF);  // resets the child sequence too
  const auto second = capture_tree();

  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].trace_id, second[i].trace_id) << i;
    EXPECT_EQ(first[i].span_id, second[i].span_id) << i;
    EXPECT_EQ(first[i].parent_span_id, second[i].parent_span_id) << i;
  }
  // Structure: the adopted root IS the ambient root context; children
  // are parented under it; siblings get distinct IDs.
  obs::set_trace_root(0xABCDEF);
  EXPECT_EQ(first[0].span_id, obs::ambient_span_context().span_id);
  EXPECT_EQ(first[0].parent_span_id, 0u);
  EXPECT_EQ(first[1].parent_span_id, first[0].span_id);
  EXPECT_EQ(first[2].parent_span_id, first[1].span_id);
  EXPECT_EQ(first[3].parent_span_id, first[0].span_id);
  EXPECT_NE(first[1].span_id, first[3].span_id);
  for (const auto& ctx : first) EXPECT_EQ(ctx.trace_id, 0xABCDEFu);
}

TEST(ObsSpan, ScopedSpanParentReparentsUnderRemoteContext) {
  if (!FD_OBS_ENABLED) GTEST_SKIP() << "built with FD_OBS=OFF";
  obs::set_trace_root(0x111);
  const obs::SpanContext remote{0x222, 0x9999, 0};
  {
    // What a fleet worker does with the TaskSpec's propagated parent.
    obs::ScopedSpanParent reparent(remote);
    obs::Span task("reparent.task");
    EXPECT_EQ(task.context().trace_id, 0x222u);
    EXPECT_EQ(task.context().parent_span_id, 0x9999u);
  }
  // The previous ambient context is restored on scope exit.
  obs::Span local("reparent.local");
  EXPECT_EQ(local.context().trace_id, 0x111u);
}

TEST(ObsSpan, NestingDepthAndCurrentName) {
  if (!FD_OBS_ENABLED) GTEST_SKIP() << "built with FD_OBS=OFF";
  EXPECT_EQ(obs::Span::depth(), 0u);
  {
    obs::Span outer("outer");
    EXPECT_EQ(obs::Span::depth(), 1u);
    EXPECT_EQ(obs::Span::current_name(), "outer");
    {
      obs::Span inner("inner");
      EXPECT_EQ(obs::Span::depth(), 2u);
      EXPECT_EQ(obs::Span::current_name(), "inner");
      EXPECT_GE(inner.elapsed_us(), 0.0);
    }
    EXPECT_EQ(obs::Span::depth(), 1u);
    EXPECT_EQ(obs::Span::current_name(), "outer");
  }
  EXPECT_EQ(obs::Span::depth(), 0u);
  EXPECT_EQ(obs::Span::current_name(), "");
}

TEST(ObsSpan, ExceptionUnwindingClosesSpansInOrder) {
  if (!FD_OBS_ENABLED) GTEST_SKIP() << "built with FD_OBS=OFF";
  obs::CollectingSink sink;
  obs::ScopedTelemetrySink scope(&sink);
  try {
    obs::Span outer("unwind.outer");
    obs::Span inner("unwind.inner");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(obs::Span::depth(), 0u);
  // Both spans closed, inner first.
  std::vector<std::string> names;
  for (const auto& ev : sink.events()) {
    if (ev.name != "span") continue;
    const auto* n = ev.find("name");
    ASSERT_NE(n, nullptr);
    names.push_back(n->s);
  }
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "unwind.inner");
  EXPECT_EQ(names[1], "unwind.outer");
  // The span histograms got their samples too.
  EXPECT_GE(obs::MetricsRegistry::global().histogram("span.unwind.inner.us").count(), 1u);
}

TEST(ObsSpan, NoSinkMeansNoEventsButHistogramStillRecords) {
  if (!FD_OBS_ENABLED) GTEST_SKIP() << "built with FD_OBS=OFF";
  auto& hist = obs::MetricsRegistry::global().histogram("span.quiet.us");
  hist.reset();
  ASSERT_EQ(obs::sink(), nullptr);
  { obs::Span span("quiet"); }
  EXPECT_EQ(hist.count(), 1u);
}

// ---- event builder front end ----------------------------------------------

TEST(ObsEventBuilder, EmitsOnlyWithSinkInstalled) {
  obs::CollectingSink sink;
  {
    obs::ScopedTelemetrySink scope(&sink);
    obs::event("builder.test")
        .with("traces", std::size_t{300})
        .with("rank", -1)
        .with("r", 0.25)
        .with("exact", true)
        .with("label", "slot0.re")
        .emit();
  }
  obs::event("builder.dropped").with("x", 1).emit();  // no sink installed

  if (!FD_OBS_ENABLED) {
    EXPECT_TRUE(sink.events().empty());  // OFF: the front end is a no-op
    return;
  }
  ASSERT_EQ(sink.events().size(), 1u);
  const auto& ev = sink.events()[0];
  EXPECT_EQ(ev.name, "builder.test");
  ASSERT_NE(ev.find("traces"), nullptr);
  EXPECT_EQ(ev.find("traces")->u, 300u);
  ASSERT_NE(ev.find("rank"), nullptr);
  EXPECT_EQ(ev.find("rank")->i, -1);
  ASSERT_NE(ev.find("label"), nullptr);
  EXPECT_EQ(ev.find("label")->s, "slot0.re");
}

// ---- attack-level contracts -------------------------------------------------

namespace {

sca::CampaignConfig mini_config(std::uint64_t seed) {
  sca::CampaignConfig cfg;
  cfg.num_traces = 120;
  cfg.device.noise_sigma = 2.0;
  cfg.seed = seed;
  return cfg;
}

attack::StreamingCpaSpec snapshot_spec(const falcon::SecretKey& sk, std::size_t slot) {
  attack::StreamingCpaSpec spec;
  spec.slot = slot;
  spec.sample_offsets = {sca::window::kOffExpSum};
  for (std::uint32_t e = 1005; e <= 1053; ++e) spec.guesses.push_back(e);
  spec.model = [](std::uint32_t guess, const attack::KnownOperand& k) {
    return attack::hyp_exponent(guess, k);
  };
  spec.snapshot_every = 40;
  spec.truth_guess = sk.b01[slot].biased_exponent();
  spec.label = "slot" + std::to_string(slot);
  return spec;
}

}  // namespace

TEST(ObsDeterminism, FixedSeedCampaignTelemetryIsReproducible) {
  if (!FD_OBS_ENABLED) GTEST_SKIP() << "built with FD_OBS=OFF";
  ChaCha20Prng rng("obs determinism key");
  const auto kp = falcon::keygen(3, rng);

  std::vector<std::string> runs[2];
  for (auto& run : runs) {
    // Same trace root per run: span IDs are derived from it plus child
    // ordinals, so resetting it makes the whole ID tree replay-stable.
    obs::set_trace_root(0x0B5F00D);
    obs::CollectingSink sink;
    obs::ScopedTelemetrySink scope(&sink);
    const auto sets = sca::run_full_campaign(kp.sk, mini_config(0x0B5));
    const auto spec = snapshot_spec(kp.sk, 1);
    (void)attack::run_cpa_inmemory(sets[1], spec);
    for (const auto& ev : sink.events()) run.push_back(deterministic_view(ev));
  }
  ASSERT_FALSE(runs[0].empty());
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    EXPECT_EQ(runs[0][i], runs[1][i]) << "event " << i;
  }
  // The stream contains both campaign telemetry and rank snapshots.
  bool saw_campaign = false;
  bool saw_snapshot = false;
  for (const auto& line : runs[0]) {
    saw_campaign = saw_campaign || line.find("\"ev\":\"sca.campaign\"") != std::string::npos;
    saw_snapshot = saw_snapshot || line.find("\"ev\":\"cpa.snapshot\"") != std::string::npos;
  }
  EXPECT_TRUE(saw_campaign);
  EXPECT_TRUE(saw_snapshot);
}

TEST(ObsDeterminism, InstrumentationDoesNotPerturbRankings) {
  // Valid in both FD_OBS modes: with the layer off this pins that the
  // no-op stubs leave the math untouched, which together with the ON run
  // of the same test pins FD_OBS=ON vs OFF bit-identical rankings.
  ChaCha20Prng rng("obs perturbation key");
  const auto kp = falcon::keygen(3, rng);
  const auto sets = sca::run_full_campaign(kp.sk, mini_config(0x0B6));

  auto spec_quiet = snapshot_spec(kp.sk, 1);
  spec_quiet.snapshot_every = 0;  // telemetry fully disabled
  spec_quiet.truth_guess = -1;
  spec_quiet.label.clear();
  const auto quiet = attack::run_cpa_inmemory(sets[1], spec_quiet);

  obs::CollectingSink sink;
  obs::ScopedTelemetrySink scope(&sink);
  const auto spec_loud = snapshot_spec(kp.sk, 1);
  const auto loud = attack::run_cpa_inmemory(sets[1], spec_loud);

  ASSERT_EQ(quiet.ranking(), loud.ranking());
  for (std::size_t g = 0; g < spec_loud.guesses.size(); ++g) {
    EXPECT_EQ(quiet.peak(g), loud.peak(g)) << "guess " << g;  // bit-exact
  }
}

// --- concurrency hammer ----------------------------------------------------
//
// The exec pool (src/exec) drives the obs layer from worker threads:
// every shard/component task opens spans, bumps campaign counters, and
// emits events into whatever sink is installed. This test hammers all
// of those surfaces from many threads at once and then checks the
// arithmetic: atomics and mutexes make the totals exact, not
// approximate. Run it under FD_SANITIZE=thread to turn any missing
// synchronization into a hard failure.
TEST(ObsConcurrency, HammerCountersSpansAndSinkFromManyThreads) {
  if (!FD_OBS_ENABLED) GTEST_SKIP() << "built with FD_OBS=OFF";
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 400;

  obs::CollectingSink sink;
  obs::ScopedTelemetrySink scope(&sink);
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("hammer.count").reset();
  reg.histogram("hammer.hist").reset();

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &reg, &sink] {
      for (std::size_t i = 0; i < kIters; ++i) {
        obs::Span outer("hammer.outer");
        // Per-thread span stacks: depth reflects only this thread.
        EXPECT_EQ(obs::Span::depth(), 1u);
        {
          obs::Span inner("hammer.inner");
          EXPECT_EQ(obs::Span::current_name(), "hammer.inner");
          reg.counter("hammer.count").add(1);
          reg.gauge("hammer.gauge").set(static_cast<double>(t));
          reg.histogram("hammer.hist").record(static_cast<double>(i));
        }
        obs::event("hammer.ev").with("thread", t).with("iter", i).emit();
        if (i % 16 == 0) (void)reg.snapshot();  // readers race writers
        if (i % 64 == 0) sink.clear();          // clear races record
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(reg.counter("hammer.count").value(), kThreads * kIters);
  EXPECT_EQ(reg.histogram("hammer.hist").count(), kThreads * kIters);
  // Torn-view check: a single-lock histogram snapshot is internally
  // consistent -- bucket totals match the count taken in the same lock.
  obs::HistogramView view;
  reg.histogram("hammer.hist").snapshot_into(view);
  std::uint64_t bucket_total = 0;
  for (const auto b : view.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, view.count);
  // The final span depth on the main thread is untouched by workers.
  EXPECT_EQ(obs::Span::depth(), 0u);
  // Events survive the clear() races structurally intact (no torn
  // vectors): every surviving record is complete. The stream holds the
  // explicit "hammer.ev" emissions (2 fields) interleaved with the
  // "span" events the Span destructors emit
  // (name/trace/span/parent/tid/depth/ts_us/wall_us).
  for (const auto& ev : sink.snapshot()) {
    if (ev.name == "hammer.ev") {
      ASSERT_EQ(ev.fields.size(), 2u);
    } else {
      ASSERT_EQ(ev.name, "span");
      ASSERT_EQ(ev.fields.size(), 8u);
    }
  }
}
