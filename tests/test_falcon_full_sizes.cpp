// The standardized parameter sets, end to end: FALCON-512 and
// FALCON-1024 keygen / sign / verify, signature container sizes, and a
// real-size capture smoke test. Kept in one file so the slow keygens run
// once each.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "falcon/falcon.h"
#include "sca/campaign.h"

namespace fd::falcon {
namespace {

TEST(Falcon512, EndToEnd) {
  ChaCha20Prng rng(0x512);
  const KeyPair kp = keygen(9, rng);
  ASSERT_EQ(kp.pk.params.n, 512U);

  // Standard-set coefficient ranges: |f|, |g| <= 127 fits the spec's
  // 6-bit-ish encodings; F, G within +-2047.
  for (std::size_t i = 0; i < 512; ++i) {
    EXPECT_LE(std::abs(kp.sk.f[i]), 127);
    EXPECT_LE(std::abs(kp.sk.g[i]), 127);
    EXPECT_LT(std::abs(kp.sk.big_f[i]), 2048);
    EXPECT_LT(std::abs(kp.sk.big_g[i]), 2048);
  }

  const Signature sig = sign(kp.sk, "falcon-512 message", rng);
  EXPECT_TRUE(verify(kp.pk, "falcon-512 message", sig));
  EXPECT_FALSE(verify(kp.pk, "falcon-512 messagE", sig));

  const auto bytes = encode_signature(sig, kp.pk.params);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(bytes->size(), 666U);  // the spec's FALCON-512 signature size

  const auto pk_bytes = encode_public_key(kp.pk);
  EXPECT_EQ(pk_bytes.size(), 1U + 512U * 14U / 8U);  // 897 bytes, as spec
}

TEST(Falcon1024, EndToEnd) {
  ChaCha20Prng rng(0x1024);
  const KeyPair kp = keygen(10, rng);
  ASSERT_EQ(kp.pk.params.n, 1024U);

  const Signature sig = sign(kp.sk, "falcon-1024 message", rng);
  EXPECT_TRUE(verify(kp.pk, "falcon-1024 message", sig));

  const auto bytes = encode_signature(sig, kp.pk.params);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(bytes->size(), 1280U);  // the spec's FALCON-1024 signature size
  EXPECT_EQ(encode_public_key(kp.pk).size(), 1793U);
}

TEST(Falcon512, CaptureSmokeTest) {
  // A real-size capture: the windows of a FALCON-512 signing run have
  // the documented fixed schedule, and the adversary's recomputed
  // FFT(c) matches the device's operands (noiseless check on ProdLL).
  ChaCha20Prng rng(0x512C);
  const KeyPair kp = keygen(9, rng);

  sca::CampaignConfig cfg;
  cfg.num_traces = 3;
  cfg.device.noise_sigma = 0.0;
  const auto set = sca::run_signing_campaign(kp.sk, 200, cfg);
  ASSERT_EQ(set.traces.size(), 3U);
  for (const auto& ct : set.traces) {
    ASSERT_EQ(ct.trace.samples.size(), sca::window::kEventsPerWindow);
    const auto st =
        fpr::mul_mantissa_steps(kp.sk.b01[200].significand(), ct.known_re.significand());
    EXPECT_FLOAT_EQ(ct.trace.samples[sca::window::kOffProdLL],
                    static_cast<float>(std::popcount(st.prod_ll)));
  }
}

}  // namespace
}  // namespace fd::falcon
