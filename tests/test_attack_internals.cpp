// Attack-layer internals: device self-calibration, streaming-scan
// properties, candidate generation edge cases, dataset truncation.

#include <gtest/gtest.h>

#include <cmath>

#include "attack/extend_prune.h"
#include "attack/template_attack.h"
#include "common/rng.h"
#include "falcon/falcon.h"
#include "sca/campaign.h"

namespace fd::attack {
namespace {

sca::TraceSet small_campaign(double noise, std::uint64_t seed, std::size_t traces = 400) {
  ChaCha20Prng rng(seed);
  const auto kp = falcon::keygen(4, rng);
  sca::CampaignConfig cfg;
  cfg.num_traces = traces;
  cfg.device.noise_sigma = noise;
  cfg.seed = seed;
  return sca::run_signing_campaign(kp.sk, 0, cfg);
}

TEST(Calibration, RecoversUnitGainZeroOffset) {
  const auto set = small_campaign(2.0, 0xAA01);
  const auto ds = build_component_dataset(set, false);
  const LinearCalibration cal = calibrate_device(ds);
  EXPECT_NEAR(cal.alpha, 1.0, 0.05);
  EXPECT_NEAR(cal.beta, 0.0, 1.0);
}

TEST(Calibration, DetectsScaledDevice) {
  ChaCha20Prng rng(0xAA02);
  const auto kp = falcon::keygen(4, rng);
  sca::CampaignConfig cfg;
  cfg.num_traces = 400;
  cfg.device.alpha = 2.5;
  cfg.device.noise_sigma = 1.0;
  cfg.seed = 0xAA02;
  const auto set = sca::run_signing_campaign(kp.sk, 0, cfg);
  const auto ds = build_component_dataset(set, false);
  const LinearCalibration cal = calibrate_device(ds);
  EXPECT_NEAR(cal.alpha, 2.5, 0.1);
}

TEST(Calibration, ConstantWeightGivesZeroGain) {
  ChaCha20Prng rng(0xAA03);
  const auto kp = falcon::keygen(4, rng);
  sca::CampaignConfig cfg;
  cfg.num_traces = 300;
  cfg.device.constant_weight = true;
  cfg.device.noise_sigma = 1.0;
  cfg.seed = 0xAA03;
  const auto set = sca::run_signing_campaign(kp.sk, 0, cfg);
  const auto ds = build_component_dataset(set, false);
  const LinearCalibration cal = calibrate_device(ds);
  EXPECT_NEAR(cal.alpha, 0.0, 0.05);
}

TEST(StreamingScan, TopKOrderingAndSize) {
  ChaCha20Prng rng(0xAA04);
  std::vector<float> col(500);
  std::vector<std::uint32_t> known(500);
  for (std::size_t i = 0; i < col.size(); ++i) {
    known[i] = static_cast<std::uint32_t>(rng.next_u64());
    col[i] = static_cast<float>(std::popcount(known[i] * 777U)) +
             0.5F * static_cast<float>(rng.gaussian());
  }
  StreamingScan scan({col});
  const auto model = [&](std::uint32_t g, std::size_t t, std::size_t) {
    return static_cast<double>(std::popcount(known[t] * g));
  };
  const auto top = scan.top_k(700, 800, model, 10);
  ASSERT_EQ(top.size(), 10U);
  EXPECT_EQ(top[0].guess, 777U);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i].score, top[i - 1].score);  // descending
  }
  // keep > space size clamps.
  const auto all = scan.top_k(700, 705, model, 10);
  EXPECT_EQ(all.size(), 5U);
}

TEST(StreamingScan, ScoreOneMatchesTopK) {
  ChaCha20Prng rng(0xAA05);
  std::vector<float> col(200);
  std::vector<std::uint32_t> known(200);
  for (std::size_t i = 0; i < col.size(); ++i) {
    known[i] = static_cast<std::uint32_t>(rng.next_u64());
    col[i] = static_cast<float>(std::popcount(known[i]));
  }
  StreamingScan scan({col});
  const auto model = [&](std::uint32_t g, std::size_t t, std::size_t) {
    return static_cast<double>(std::popcount(known[t] ^ g));
  };
  const std::uint32_t guesses[3] = {0, 0xFFFFFFFF, 0x12345678};
  const auto top = scan.top_k_list(guesses, model, 3);
  for (const auto& s : top) {
    EXPECT_DOUBLE_EQ(scan.score_one(s.guess, model), s.score);
  }
  // XOR with all-ones flips every bit: perfect anti-correlation.
  EXPECT_NEAR(scan.score_one(0xFFFFFFFFU, model), -1.0, 1e-9);
  EXPECT_NEAR(scan.score_one(0U, model), 1.0, 1e-9);
}

TEST(Candidates, TruthWithNoShiftsStillPresent) {
  // An odd value with the top bit set has no exact shifts in range.
  const std::uint32_t truth = (1U << 24) | 1U;
  const auto cands = MantissaCandidates::adversarial(truth, false, 20, 9);
  EXPECT_NE(std::find(cands.begin(), cands.end(), truth), cands.end());
}

TEST(Candidates, Deterministic) {
  const auto a = MantissaCandidates::adversarial(0x123456, false, 50, 42);
  const auto b = MantissaCandidates::adversarial(0x123456, false, 50, 42);
  EXPECT_EQ(a, b);
  const auto c = MantissaCandidates::adversarial(0x123456, false, 50, 43);
  EXPECT_NE(a, c);
}

TEST(Dataset, TruncationLimitsTraces) {
  const auto set = small_campaign(1.0, 0xAA06, 50);
  const auto full = build_component_dataset(set, false);
  const auto part = build_component_dataset(set, false, 20);
  EXPECT_EQ(full.num_traces, 50U);
  EXPECT_EQ(part.num_traces, 20U);
  for (unsigned v = 0; v < 2; ++v) {
    ASSERT_EQ(part.views[v].known.size(), 20U);
    for (std::size_t t = 0; t < 20; ++t) {
      EXPECT_EQ(part.views[v].samples[0][t], full.views[v].samples[0][t]);
    }
  }
}

TEST(Confidence, IntervalShrinksWithTraces) {
  EXPECT_GT(confidence_interval(0.9999, 100), confidence_interval(0.9999, 10000));
  EXPECT_NEAR(confidence_interval(0.9999, 10000), 3.8906 / 100.0, 1e-4);
  EXPECT_GT(confidence_z(0.9999), confidence_z(0.99));
}

TEST(Assemble, FieldPacking) {
  EXPECT_EQ(assemble_bits(false, 1023, 1U << 27, 0), 0x3FF0000000000000ULL);
  EXPECT_EQ(assemble_bits(true, 0, 1U << 27, 0), 0x8000000000000000ULL);
  EXPECT_EQ(assemble_bits(false, 1023, (1U << 27) | 1U, 1),
            0x3FF0000002000001ULL);
}

TEST(TemplateLikelihood, TruncationConsistent) {
  const auto set = small_campaign(2.0, 0xAA07, 100);
  const auto ds = build_component_dataset(set, false);
  ChaCha20Prng rng(0xAA07);
  const auto kp = falcon::keygen(4, rng);  // same seed -> same key as rig
  const auto prof = profile_device(ds, kp.sk.b01[0]);
  const double full = template_log_likelihood(ds, prof, kp.sk.b01[0].bits());
  const double half = template_log_likelihood(ds, prof, kp.sk.b01[0].bits(), 50);
  EXPECT_LT(full, 0.0);
  EXPECT_GT(half, full);  // fewer traces, fewer (negative) terms
}

}  // namespace
}  // namespace fd::attack
