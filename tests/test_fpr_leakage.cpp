// Leakage hook behaviour: event ordering, values, nesting, and the
// guarantee that hypothesis models (mul_mantissa_steps) see exactly what
// the instrumented fpr_mul emits.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "fpr/fpr.h"

namespace fd::fpr {
namespace {

class Recorder final : public LeakageSink {
 public:
  void on_event(const LeakageEvent& ev) override { events.push_back(ev); }
  std::vector<LeakageEvent> events;

  [[nodiscard]] const LeakageEvent* find(LeakageTag tag) const {
    for (const auto& e : events) {
      if (e.tag == tag) return &e;
    }
    return nullptr;
  }
};

TEST(FprLeakage, NoSinkNoEvents) {
  ASSERT_EQ(leakage_sink(), nullptr);
  (void)fpr_mul(Fpr::from_double(1.5), Fpr::from_double(2.5));  // must not crash
}

TEST(FprLeakage, ScopedSinkRestores) {
  Recorder r;
  {
    ScopedLeakageSink scope(&r);
    EXPECT_EQ(leakage_sink(), &r);
    {
      ScopedLeakageSink inner(nullptr);
      EXPECT_EQ(leakage_sink(), nullptr);
    }
    EXPECT_EQ(leakage_sink(), &r);
  }
  EXPECT_EQ(leakage_sink(), nullptr);
}

TEST(FprLeakage, MulEmitsPipelineInOrder) {
  Recorder r;
  const Fpr x = Fpr::from_bits(0xC06017BC8036B580ULL);  // the paper's example
  const Fpr y = Fpr::from_double(1.75);
  {
    ScopedLeakageSink scope(&r);
    (void)fpr_mul(x, y);
  }
  // Expected order: sign, exponents, operand splits, products/accs, result.
  const std::vector<LeakageTag> expect = {
      LeakageTag::kMulSign,      LeakageTag::kMulExpX,      LeakageTag::kMulExpY,
      LeakageTag::kMulExpSum,    LeakageTag::kMulOperandXLo, LeakageTag::kMulOperandXHi,
      LeakageTag::kMulOperandYLo, LeakageTag::kMulOperandYHi, LeakageTag::kMulProdLL,
      LeakageTag::kMulProdLH,    LeakageTag::kMulAccZ1a,    LeakageTag::kMulProdHL,
      LeakageTag::kMulAccZ1b,    LeakageTag::kMulAccZ2,     LeakageTag::kMulProdHH,
      LeakageTag::kMulAccZu,     LeakageTag::kMulResult};
  ASSERT_EQ(r.events.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(r.events[i].tag, expect[i]) << "at " << i;
  }
}

TEST(FprLeakage, MulEventValuesMatchStepsFunction) {
  ChaCha20Prng rng(0x3001);
  for (int i = 0; i < 500; ++i) {
    const double a = (static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53 - 0.5) * 256.0;
    const double b = (static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53 - 0.5) * 256.0;
    if (a == 0.0 || b == 0.0) continue;
    const Fpr x = Fpr::from_double(a);
    const Fpr y = Fpr::from_double(b);

    Recorder r;
    {
      ScopedLeakageSink scope(&r);
      (void)fpr_mul(x, y);
    }
    const MulMantissaSteps st = mul_mantissa_steps(x.significand(), y.significand());
    ASSERT_NE(r.find(LeakageTag::kMulProdLL), nullptr);
    EXPECT_EQ(r.find(LeakageTag::kMulProdLL)->value, st.prod_ll);
    EXPECT_EQ(r.find(LeakageTag::kMulProdLH)->value, st.prod_lh);
    EXPECT_EQ(r.find(LeakageTag::kMulProdHL)->value, st.prod_hl);
    EXPECT_EQ(r.find(LeakageTag::kMulProdHH)->value, st.prod_hh);
    EXPECT_EQ(r.find(LeakageTag::kMulAccZ1a)->value, st.z1a);
    EXPECT_EQ(r.find(LeakageTag::kMulAccZ1b)->value, st.z1b);
    EXPECT_EQ(r.find(LeakageTag::kMulAccZu)->value, st.zu);
    EXPECT_EQ(r.find(LeakageTag::kMulOperandXLo)->value, st.x0);
    EXPECT_EQ(r.find(LeakageTag::kMulOperandXHi)->value, st.x1);
    EXPECT_EQ(r.find(LeakageTag::kMulSign)->value,
              static_cast<std::uint64_t>(x.sign() != y.sign()));
    EXPECT_EQ(r.find(LeakageTag::kMulExpSum)->value,
              static_cast<std::uint32_t>(static_cast<std::int32_t>(x.biased_exponent() +
                                                                   y.biased_exponent()) -
                                         2100));
  }
}

TEST(FprLeakage, AddEmitsEvents) {
  Recorder r;
  {
    ScopedLeakageSink scope(&r);
    (void)fpr_add(Fpr::from_double(1.0), Fpr::from_double(1e-3));
  }
  ASSERT_NE(r.find(LeakageTag::kAddAlignShift), nullptr);
  ASSERT_NE(r.find(LeakageTag::kAddMantSum), nullptr);
  ASSERT_NE(r.find(LeakageTag::kAddResult), nullptr);
  EXPECT_EQ(r.find(LeakageTag::kAddAlignShift)->value, 10U);  // 2^-10 apart
}

TEST(FprLeakage, ZeroMulShortCircuitsAfterSign) {
  Recorder r;
  {
    ScopedLeakageSink scope(&r);
    (void)fpr_mul(Fpr::from_double(-2.0), kZero);
  }
  ASSERT_EQ(r.events.size(), 1U);
  EXPECT_EQ(r.events[0].tag, LeakageTag::kMulSign);
  EXPECT_EQ(r.events[0].value, 1U);
}

TEST(FprLeakage, TagNamesAreUnique) {
  for (unsigned i = 0; i < static_cast<unsigned>(LeakageTag::kNumTags); ++i) {
    for (unsigned j = i + 1; j < static_cast<unsigned>(LeakageTag::kNumTags); ++j) {
      EXPECT_STRNE(leakage_tag_name(static_cast<LeakageTag>(i)),
                   leakage_tag_name(static_cast<LeakageTag>(j)));
    }
  }
}

}  // namespace
}  // namespace fd::fpr
