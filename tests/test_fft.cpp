// FFT correctness: inversion, ring-homomorphism (pointwise product ==
// negacyclic convolution), adjoints, split/merge, LDL -- across all logn.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "fft/fft.h"

namespace fd::fft {
namespace {

using fpr::Fpr;

std::vector<Fpr> random_poly(RandomSource& rng, unsigned logn, double scale = 100.0) {
  const std::size_t n = std::size_t{1} << logn;
  std::vector<Fpr> f(n);
  for (auto& c : f) {
    c = Fpr::from_double((static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53 - 0.5) * scale);
  }
  return f;
}

std::vector<double> to_doubles(std::span<const Fpr> v) {
  std::vector<double> r(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) r[i] = v[i].to_double();
  return r;
}

// Naive negacyclic convolution in double precision.
std::vector<double> negacyclic_mul(std::span<const double> a, std::span<const double> b) {
  const std::size_t n = a.size();
  std::vector<double> r(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t k = i + j;
      if (k < n) {
        r[k] += a[i] * b[j];
      } else {
        r[k - n] -= a[i] * b[j];
      }
    }
  }
  return r;
}

class FftParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(FftParam, InverseRoundTrip) {
  const unsigned logn = GetParam();
  ChaCha20Prng rng(0x4000 + logn);
  const auto f = random_poly(rng, logn);
  auto t = f;
  fft(t, logn);
  ifft(t, logn);
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_NEAR(t[i].to_double(), f[i].to_double(), 1e-9) << "i=" << i;
  }
}

TEST_P(FftParam, MulMatchesNegacyclicConvolution) {
  const unsigned logn = GetParam();
  ChaCha20Prng rng(0x4100 + logn);
  const auto a = random_poly(rng, logn, 10.0);
  const auto b = random_poly(rng, logn, 10.0);
  const auto expect = negacyclic_mul(to_doubles(a), to_doubles(b));

  auto fa = a;
  auto fb = b;
  fft(fa, logn);
  fft(fb, logn);
  poly_mul_fft(fa, fb, logn);
  ifft(fa, logn);
  const double tol = 1e-6 * (std::size_t{1} << logn);
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_NEAR(fa[i].to_double(), expect[i], tol) << "i=" << i;
  }
}

TEST_P(FftParam, AdjIsConjugate) {
  const unsigned logn = GetParam();
  ChaCha20Prng rng(0x4200 + logn);
  auto f = random_poly(rng, logn);
  // adj in FFT domain == coefficient-domain reversal f(1/x) mod x^n+1:
  // f*adj(f) has real (conjugate-symmetric) FFT, i.e. nonnegative slot
  // norms; check |f|^2 slots are real and equal a(zeta)*conj(a(zeta)).
  auto g = f;
  fft(f, logn);
  fft(g, logn);
  poly_muladj_fft(f, g, logn);  // f * adj(f)
  const std::size_t hn = f.size() / 2;
  for (std::size_t i = 0; i < hn; ++i) {
    EXPECT_GE(f[i].to_double(), 0.0);
    EXPECT_NEAR(f[i + hn].to_double(), 0.0, 1e-6);
  }
}

TEST_P(FftParam, MulSelfAdjMatchesMulAdj) {
  const unsigned logn = GetParam();
  ChaCha20Prng rng(0x4300 + logn);
  auto f = random_poly(rng, logn);
  fft(f, logn);
  auto a = f;
  auto b = f;
  poly_muladj_fft(a, f, logn);
  poly_mulselfadj_fft(b, logn);
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_NEAR(a[i].to_double(), b[i].to_double(), 1e-6);
  }
}

TEST_P(FftParam, SplitMergeRoundTrip) {
  const unsigned logn = GetParam();
  ChaCha20Prng rng(0x4400 + logn);
  auto f = random_poly(rng, logn);
  fft(f, logn);
  const std::size_t hn = f.size() / 2;
  std::vector<Fpr> f0(hn), f1(hn), merged(f.size());
  poly_split_fft(f0, f1, f, logn);
  poly_merge_fft(merged, f0, f1, logn);
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_NEAR(merged[i].to_double(), f[i].to_double(), 1e-8);
  }
}

TEST_P(FftParam, SplitMatchesCoefficientDeinterleave) {
  // split(FFT(f)) must equal (FFT(f_even), FFT(f_odd)) where
  // f(x) = f_even(x^2) + x f_odd(x^2).
  const unsigned logn = GetParam();
  if (logn < 2) GTEST_SKIP();
  ChaCha20Prng rng(0x4500 + logn);
  const auto f = random_poly(rng, logn);
  const std::size_t n = f.size();
  std::vector<Fpr> fe(n / 2), fo(n / 2);
  for (std::size_t i = 0; i < n / 2; ++i) {
    fe[i] = f[2 * i];
    fo[i] = f[2 * i + 1];
  }
  auto ff = f;
  fft(ff, logn);
  std::vector<Fpr> f0(n / 2), f1(n / 2);
  poly_split_fft(f0, f1, ff, logn);

  fft(fe, logn - 1);
  fft(fo, logn - 1);
  for (std::size_t i = 0; i < n / 2; ++i) {
    EXPECT_NEAR(f0[i].to_double(), fe[i].to_double(), 1e-8) << "even i=" << i;
    EXPECT_NEAR(f1[i].to_double(), fo[i].to_double(), 1e-8) << "odd i=" << i;
  }
}

TEST_P(FftParam, AddSubNeg) {
  const unsigned logn = GetParam();
  ChaCha20Prng rng(0x4600 + logn);
  const auto a = random_poly(rng, logn);
  const auto b = random_poly(rng, logn);
  auto t = a;
  poly_add(t, b, logn);
  poly_sub(t, b, logn);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(t[i].to_double(), a[i].to_double(), 1e-9);
  }
  auto u = a;
  poly_neg(u, logn);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(u[i].to_double(), -a[i].to_double());
  }
}

TEST_P(FftParam, DivUndoesMul) {
  const unsigned logn = GetParam();
  ChaCha20Prng rng(0x4700 + logn);
  auto a = random_poly(rng, logn);
  auto b = random_poly(rng, logn);
  fft(a, logn);
  fft(b, logn);
  auto t = a;
  poly_mul_fft(t, b, logn);
  poly_div_fft(t, b, logn);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(t[i].to_double(), a[i].to_double(), 1e-6);
  }
}

TEST_P(FftParam, InvNorm2) {
  const unsigned logn = GetParam();
  ChaCha20Prng rng(0x4800 + logn);
  auto a = random_poly(rng, logn);
  auto b = random_poly(rng, logn);
  fft(a, logn);
  fft(b, logn);
  const std::size_t hn = a.size() / 2;
  std::vector<Fpr> d(a.size());
  poly_invnorm2_fft(d, a, b, logn);
  for (std::size_t i = 0; i < hn; ++i) {
    const double na = a[i].to_double() * a[i].to_double() +
                      a[i + hn].to_double() * a[i + hn].to_double();
    const double nb = b[i].to_double() * b[i].to_double() +
                      b[i + hn].to_double() * b[i + hn].to_double();
    EXPECT_NEAR(d[i].to_double(), 1.0 / (na + nb), 1e-6 * std::fabs(d[i].to_double()) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSizes, FftParam, ::testing::Values(1U, 2U, 3U, 4U, 5U, 6U, 7U, 8U, 9U, 10U));

TEST(Fft, MonomialRootsLieOnUnitCircle) {
  for (unsigned logn = 2; logn <= 6; ++logn) {
    const unsigned hn = 1U << (logn - 1);
    for (unsigned k = 0; k < hn; ++k) {
      const Cplx z = fft_root(k, logn);
      const double norm = z.re.to_double() * z.re.to_double() +
                          z.im.to_double() * z.im.to_double();
      EXPECT_NEAR(norm, 1.0, 1e-9);
    }
  }
}

TEST(Fft, ConstantPolynomial) {
  // FFT of a constant c is c in every slot (re = c, im = 0).
  std::vector<Fpr> f(8, fpr::kZero);
  f[0] = Fpr::from_double(3.5);
  fft(f, 3);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(f[i].to_double(), 3.5, 1e-12);
    EXPECT_NEAR(f[i + 4].to_double(), 0.0, 1e-12);
  }
}

}  // namespace
}  // namespace fd::fft
