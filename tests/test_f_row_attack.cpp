// F-row cross-validation: the second multiplication of Alg. 2 line 3
// (FFT(c) (.) FFT(-F)) leaks F through the identical pipeline. Recover F
// independently, and check it against both the victim's key and the
// NTRU equation using only public data plus the recovered f.

#include <gtest/gtest.h>

#include "attack/key_recovery.h"
#include "common/rng.h"
#include "falcon/falcon.h"
#include "falcon/ntru_solve.h"
#include "zq/zq.h"

namespace fd::attack {
namespace {

TEST(FRowAttack, RecoversBigFExactly) {
  ChaCha20Prng rng(0xF70A);
  const auto victim = falcon::keygen(4, rng);

  KeyRecoveryConfig cfg;
  cfg.num_traces = 800;
  cfg.device.noise_sigma = 2.0;
  cfg.adversarial_random = 120;
  cfg.seed = 0xF70A;

  const RowRecoveryResult fr = recover_row_poly(victim, cfg, /*row=*/1);
  EXPECT_EQ(fr.components_correct, fr.components_total);
  EXPECT_TRUE(fr.exact);
  EXPECT_EQ(fr.poly, victim.sk.big_f);
}

TEST(FRowAttack, BothRowsSatisfyNtruEquationWithPublicData) {
  // Full cross-validation: recover f (row 0) and F (row 1) from traces;
  // derive g and G from the public key; check f*G - g*F == q exactly.
  ChaCha20Prng rng(0xF70B);
  const auto victim = falcon::keygen(4, rng);
  const std::size_t n = victim.pk.params.n;
  const unsigned logn = victim.pk.params.logn;

  KeyRecoveryConfig cfg;
  cfg.num_traces = 800;
  cfg.device.noise_sigma = 2.0;
  cfg.adversarial_random = 120;
  cfg.seed = 0xF70B;

  const RowRecoveryResult f_row = recover_row_poly(victim, cfg, 0);
  const RowRecoveryResult cap_f_row = recover_row_poly(victim, cfg, 1);
  ASSERT_TRUE(f_row.exact);
  ASSERT_TRUE(cap_f_row.exact);

  // g = h*f mod q (small lift); G = h*F mod q (small lift; valid since
  // G - h*F = (fG - gF)/f * ... == 0 mod q and ||G|| < q/2).
  std::vector<std::uint32_t> fq(n), capfq(n);
  for (std::size_t i = 0; i < n; ++i) {
    fq[i] = zq::from_signed(f_row.poly[i]);
    capfq[i] = zq::from_signed(cap_f_row.poly[i]);
  }
  const auto gq = zq::poly_mul(victim.pk.h, fq, logn);
  const auto capgq = zq::poly_mul(victim.pk.h, capfq, logn);

  falcon::ZPoly zf(n), zg(n), zF(n), zG(n);
  for (std::size_t i = 0; i < n; ++i) {
    zf[i] = BigInt(f_row.poly[i]);
    zg[i] = BigInt(zq::center(gq[i]));
    zF[i] = BigInt(cap_f_row.poly[i]);
    zG[i] = BigInt(zq::center(capgq[i]));
  }
  const falcon::ZPoly lhs =
      falcon::zpoly_sub(falcon::zpoly_mul(zf, zG), falcon::zpoly_mul(zg, zF));
  EXPECT_EQ(lhs[0], BigInt(12289));
  for (std::size_t i = 1; i < n; ++i) EXPECT_TRUE(lhs[i].is_zero()) << i;
}

TEST(FRowAttack, RowSelectionCapturesDifferentSecrets) {
  // Row-0 and row-1 windows of the same signing runs must leak different
  // operands (f vs F): compare noiseless XLo columns against both.
  ChaCha20Prng rng(0xF70C);
  const auto kp = falcon::keygen(4, rng);

  for (const unsigned row : {0U, 1U}) {
    sca::CampaignConfig cfg;
    cfg.num_traces = 3;
    cfg.device.noise_sigma = 0.0;
    cfg.seed = 0xF70C;
    cfg.row = row;
    const auto set = sca::run_signing_campaign(kp.sk, 0, cfg);
    const auto& secret = row == 0 ? kp.sk.b01[0] : kp.sk.b11[0];
    const auto ds = build_component_dataset(set, false);
    const KnownOperand s = KnownOperand::from(secret);
    for (std::size_t t = 0; t < ds.num_traces; ++t) {
      EXPECT_FLOAT_EQ(ds.views[0].samples[sca::window::kOffXLo][t],
                      static_cast<float>(std::popcount(s.y0)))
          << "row=" << row;
    }
  }
}

}  // namespace
}  // namespace fd::attack
