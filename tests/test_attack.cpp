// Attack-layer tests: CPA statistics, hypothesis-model exactness, the
// false-positive structure, and single-component extend-and-prune on
// real captured traces.

#include <gtest/gtest.h>

#include <cmath>

#include "attack/cpa.h"
#include "attack/extend_prune.h"
#include "attack/hypothesis.h"
#include "common/rng.h"
#include "falcon/falcon.h"
#include "sca/campaign.h"

namespace fd::attack {
namespace {

using fpr::Fpr;

TEST(Cpa, ConfidenceZKnownValues) {
  EXPECT_NEAR(confidence_z(0.95), 1.9600, 1e-3);
  EXPECT_NEAR(confidence_z(0.99), 2.5758, 1e-3);
  EXPECT_NEAR(confidence_z(0.9999), 3.8906, 1e-3);
}

TEST(Cpa, PerfectCorrelationDetected) {
  CpaEngine eng(2, 1);
  ChaCha20Prng rng(0xB001);
  for (int i = 0; i < 200; ++i) {
    const double h = static_cast<double>(rng.uniform(9));
    const double wrong = static_cast<double>(rng.uniform(9));
    const float sample = static_cast<float>(3.0 * h + 1.0);
    const double hyps[2] = {h, wrong};
    eng.add_trace(hyps, {&sample, 1});
  }
  EXPECT_NEAR(eng.correlation(0, 0), 1.0, 1e-9);
  EXPECT_LT(std::fabs(eng.correlation(1, 0)), 0.25);
  EXPECT_EQ(eng.ranking()[0], 0U);
}

TEST(Cpa, ConstantHypothesisGivesZero) {
  CpaEngine eng(1, 1);
  for (int i = 0; i < 50; ++i) {
    const double h = 4.0;
    const float s = static_cast<float>(i);
    eng.add_trace({&h, 1}, {&s, 1});
  }
  EXPECT_EQ(eng.correlation(0, 0), 0.0);
}

TEST(Cpa, NegativeCorrelation) {
  CpaEngine eng(1, 1);
  for (int i = 0; i < 100; ++i) {
    const double h = i;
    const float s = static_cast<float>(-2.0 * i);
    eng.add_trace({&h, 1}, {&s, 1});
  }
  EXPECT_NEAR(eng.correlation(0, 0), -1.0, 1e-9);
}

TEST(Cpa, StreamingScanMatchesEngine) {
  ChaCha20Prng rng(0xB002);
  constexpr std::size_t kD = 300;
  std::vector<float> col(kD);
  std::vector<std::uint32_t> knowns(kD);
  for (std::size_t i = 0; i < kD; ++i) {
    knowns[i] = static_cast<std::uint32_t>(rng.next_u64());
    col[i] = static_cast<float>(std::popcount(knowns[i] * 0xABCDU)) +
             static_cast<float>(rng.gaussian());
  }
  // Engine path.
  CpaEngine eng(3, 1);
  const std::uint32_t guesses[3] = {0xABCD, 0x1234, 0x9999};
  for (std::size_t i = 0; i < kD; ++i) {
    double hyps[3];
    for (int g = 0; g < 3; ++g) hyps[g] = std::popcount(knowns[i] * guesses[g]);
    eng.add_trace(hyps, {&col[i], 1});
  }
  // Streaming path.
  StreamingScan scan({col});
  const auto top = scan.top_k_list(
      guesses, [&](std::uint32_t g, std::size_t t, std::size_t) {
        return static_cast<double>(std::popcount(knowns[t] * g));
      },
      3);
  ASSERT_EQ(top.size(), 3U);
  EXPECT_EQ(top[0].guess, 0xABCDU);
  for (int g = 0; g < 3; ++g) {
    const double eng_r = eng.correlation(static_cast<std::size_t>(g), 0);
    double scan_r = 0.0;
    for (const auto& s : top) {
      if (s.guess == guesses[g]) scan_r = s.score;
    }
    EXPECT_NEAR(eng_r, scan_r, 1e-9);
  }
}

TEST(Hypothesis, Z1aIndependentOfHighHalf) {
  // The low-prune model assumes z1a does not depend on x1; verify across
  // random operands.
  ChaCha20Prng rng(0xB003);
  for (int i = 0; i < 20000; ++i) {
    const std::uint32_t x0 = static_cast<std::uint32_t>(rng.next_u64()) & fpr::kMantLowMask;
    const std::uint32_t x1a = (1U << 27) | (static_cast<std::uint32_t>(rng.next_u64()) & ((1U << 27) - 1));
    const std::uint32_t x1b = (1U << 27) | (static_cast<std::uint32_t>(rng.next_u64()) & ((1U << 27) - 1));
    const std::uint64_t ym = (rng.next_u64() & 0x000FFFFFFFFFFFFFULL) | (1ULL << 52);
    const std::uint64_t xma = (static_cast<std::uint64_t>(x1a) << 25) | x0;
    const std::uint64_t xmb = (static_cast<std::uint64_t>(x1b) << 25) | x0;
    ASSERT_EQ(fpr::mul_mantissa_steps(xma, ym).z1a, fpr::mul_mantissa_steps(xmb, ym).z1a);
  }
}

TEST(Hypothesis, ModelsMatchDeviceEvents) {
  // Predictions must equal the leaked values exactly for the true key.
  ChaCha20Prng rng(0xB004);
  const auto kp = falcon::keygen(4, rng);
  sca::CampaignConfig cfg;
  cfg.num_traces = 4;
  cfg.device.noise_sigma = 0.0;
  const auto set = sca::run_signing_campaign(kp.sk, 1, cfg);
  const ComponentDataset ds = build_component_dataset(set, /*imag_part=*/false);

  const Fpr secret = kp.sk.b01[1];
  const KnownOperand secret_split = KnownOperand::from(secret);
  for (std::size_t t = 0; t < ds.num_traces; ++t) {
    for (unsigned v = 0; v < 2; ++v) {
      const KnownOperand& k = ds.views[v].known[t];
      EXPECT_FLOAT_EQ(ds.views[v].samples[sca::window::kOffSign][t],
                      static_cast<float>(hyp_sign(secret.sign(), k)));
      EXPECT_FLOAT_EQ(ds.views[v].samples[sca::window::kOffExpSum][t],
                      static_cast<float>(hyp_exponent(secret.biased_exponent(), k)));
      EXPECT_FLOAT_EQ(ds.views[v].samples[sca::window::kOffProdLL][t],
                      static_cast<float>(hyp_low_mul_ll(secret_split.y0, k)));
      EXPECT_FLOAT_EQ(ds.views[v].samples[sca::window::kOffAccZ1a][t],
                      static_cast<float>(hyp_low_add_z1a(secret_split.y0, k)));
      EXPECT_FLOAT_EQ(ds.views[v].samples[sca::window::kOffProdHH][t],
                      static_cast<float>(hyp_high_mul_hh(secret_split.y1, k)));
      EXPECT_FLOAT_EQ(
          ds.views[v].samples[sca::window::kOffAccZu][t],
          static_cast<float>(hyp_high_add_zu(secret_split.y1, secret_split.y0, k)));
    }
  }
}

TEST(Candidates, AdversarialContainsTruthAndShifts) {
  const std::uint32_t truth = 0x00012340;  // shiftable both ways
  const auto cands = MantissaCandidates::adversarial(truth, false, 50, 1);
  const auto has = [&](std::uint32_t v) {
    return std::find(cands.begin(), cands.end(), v) != cands.end();
  };
  EXPECT_TRUE(has(truth));
  EXPECT_TRUE(has(truth << 1));
  EXPECT_TRUE(has(truth >> 4));  // trailing zeros: exact right shift
  EXPECT_GE(cands.size(), 50U);
  for (const auto v : cands) EXPECT_LT(v, 1U << 25);
}

TEST(Candidates, HighSpaceKeepsTopBit) {
  const std::uint32_t truth = (1U << 27) | 0x123456;
  const auto cands = MantissaCandidates::adversarial(truth, true, 30, 2);
  for (const auto v : cands) {
    EXPECT_GE(v, 1U << 27);
    EXPECT_LT(v, 1U << 28);
  }
}

TEST(Assemble, RoundTripsPaperCoefficient) {
  const Fpr x = Fpr::from_bits(0xC06017BC8036B580ULL);
  const KnownOperand s = KnownOperand::from(x);
  EXPECT_EQ(assemble_bits(x.sign(), x.biased_exponent(), s.y1, s.y0), x.bits());
}

// End-to-end on one component with realistic noise.
TEST(ComponentAttack, RecoversComponentFromNoisyTraces) {
  ChaCha20Prng rng(0xB005);
  const auto kp = falcon::keygen(5, rng);
  sca::CampaignConfig cfg;
  cfg.num_traces = 900;
  cfg.device.noise_sigma = 2.0;
  cfg.seed = 0xB005;
  const std::size_t slot = 3;
  const auto set = sca::run_signing_campaign(kp.sk, slot, cfg);

  for (const bool imag : {false, true}) {
    const Fpr truth = kp.sk.b01[slot + (imag ? kp.sk.params.n / 2 : 0)];
    const KnownOperand split = KnownOperand::from(truth);
    const ComponentDataset ds = build_component_dataset(set, imag);

    ComponentAttackConfig cac;
    cac.low_candidates = MantissaCandidates::adversarial(split.y0, false, 120, 11);
    cac.high_candidates = MantissaCandidates::adversarial(split.y1, true, 120, 12);
    const ComponentResult r = attack_component(ds, cac);

    EXPECT_EQ(r.sign, truth.sign()) << "imag=" << imag;
    // The exponent phase guarantees membership in its alias tie class;
    // exact resolution happens in key recovery's integrality repair.
    bool truth_in_class = false;
    for (const auto& s : r.exp_phase.top) {
      truth_in_class = truth_in_class || s.guess == truth.biased_exponent();
    }
    EXPECT_TRUE(truth_in_class) << "imag=" << imag;
    EXPECT_EQ(r.x0, split.y0) << "imag=" << imag;
    EXPECT_EQ(r.x1, split.y1) << "imag=" << imag;
    // Everything but the exponent assembles exactly.
    EXPECT_EQ(assemble_bits(r.sign, truth.biased_exponent(), r.x1, r.x0), truth.bits())
        << "imag=" << imag;
  }
}

// The paper's Section III.B claim, as a test: the multiplication-only
// attack cannot separate the shift family (false positives), while the
// full extend-and-prune pipeline resolves it.
TEST(ComponentAttack, MulOnlyHasFalsePositivesPruneResolvesThem) {
  ChaCha20Prng rng(0xB006);
  const auto kp = falcon::keygen(5, rng);
  sca::CampaignConfig cfg;
  cfg.num_traces = 1200;
  cfg.device.noise_sigma = 1.0;
  cfg.seed = 0xB006;

  int shift_families_tested = 0;
  int mul_only_ties = 0;
  for (std::size_t slot = 0; slot < 8 && shift_families_tested < 4; ++slot) {
    const auto set = sca::run_signing_campaign(kp.sk, slot, cfg);
    const Fpr truth = kp.sk.b01[slot];
    const KnownOperand split = KnownOperand::from(truth);
    // Need a truth whose shift stays in range (x0 < 2^24) to have a
    // guaranteed structural false positive.
    if (split.y0 >= (1U << 24) || split.y0 == 0) continue;
    ++shift_families_tested;

    const ComponentDataset ds = build_component_dataset(set, false);
    const std::uint32_t cands[2] = {split.y0, split.y0 << 1};

    // Extend only: scores must tie (exactly equal Hamming weights).
    const PhaseOutcome mul_only = attack_low_mul_only(ds, cands, 2);
    ASSERT_EQ(mul_only.top.size(), 2U);
    if (std::fabs(mul_only.top[0].score - mul_only.top[1].score) < 1e-12) ++mul_only_ties;

    // Prune: must prefer the truth.
    ComponentAttackConfig cac;
    cac.low_candidates = {split.y0, split.y0 << 1};
    cac.high_candidates = MantissaCandidates::adversarial(split.y1, true, 40, 77);
    const ComponentResult r = attack_component(ds, cac);
    EXPECT_EQ(r.x0, split.y0) << "slot=" << slot;
  }
  ASSERT_GE(shift_families_tested, 1);
  EXPECT_EQ(mul_only_ties, shift_families_tested);
}

}  // namespace
}  // namespace fd::attack
