// Masked signing (Section V.B countermeasure): correctness (signatures
// remain valid) and effectiveness (the paper's attack collapses against
// the masked target computation).

#include <gtest/gtest.h>

#include "attack/extend_prune.h"
#include "common/rng.h"
#include "falcon/falcon.h"
#include "falcon/masked_sign.h"
#include "sca/campaign.h"

namespace fd::falcon {
namespace {

class MaskedSignParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(MaskedSignParam, MaskedSignaturesVerify) {
  const unsigned logn = GetParam();
  ChaCha20Prng rng(0xD100 + logn);
  const KeyPair kp = keygen(logn, rng);
  for (int i = 0; i < 3; ++i) {
    const std::string msg = "masked message " + std::to_string(i);
    const Signature sig = sign_masked(kp.sk, msg, rng);
    EXPECT_TRUE(verify(kp.pk, msg, sig)) << msg;
    EXPECT_FALSE(verify(kp.pk, msg + "x", sig));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MaskedSignParam, ::testing::Values(3U, 5U, 7U));

TEST(MaskedSign, NormQualityComparableToPlain) {
  // Masking perturbs t by rounding of the shares; the signature norm
  // distribution must stay essentially unchanged.
  ChaCha20Prng rng(0xD200);
  const KeyPair kp = keygen(5, rng);
  auto norm_of = [&](const Signature& sig, std::string_view msg) {
    // Recompute full norm via verification internals: accept implies
    // norm <= bound; compare s2 norms as a proxy.
    std::uint64_t n2 = 0;
    for (const auto c : sig.s2) n2 += static_cast<std::uint64_t>(c) * c;
    (void)msg;
    return n2;
  };
  std::uint64_t plain_sum = 0;
  std::uint64_t masked_sum = 0;
  constexpr int kReps = 12;
  for (int i = 0; i < kReps; ++i) {
    plain_sum += norm_of(sign(kp.sk, "norm probe", rng), "norm probe");
    masked_sum += norm_of(sign_masked(kp.sk, "norm probe", rng), "norm probe");
  }
  const double ratio =
      static_cast<double>(masked_sum) / static_cast<double>(plain_sum);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(MaskedSign, SharesChangePerQuery) {
  // Two masked signings of the same message leak different window
  // values (fresh masks), unlike the plain signer whose secret operands
  // repeat.
  ChaCha20Prng rng(0xD300);
  const KeyPair kp = keygen(4, rng);

  sca::CampaignConfig cfg;
  cfg.num_traces = 6;
  cfg.device.noise_sigma = 0.0;
  cfg.signer = [](const SecretKey& sk, std::string_view msg, RandomSource& r) {
    return sign_masked(sk, msg, r);
  };
  const auto set = sca::run_signing_campaign(kp.sk, 0, cfg);

  // With zero noise, the x-operand events (secret share) must differ
  // across traces: compare the X_LO sample column.
  const auto ds = attack::build_component_dataset(set, false);
  int distinct = 0;
  for (std::size_t t = 1; t < ds.num_traces; ++t) {
    distinct += ds.views[0].samples[sca::window::kOffXLo][t] !=
                ds.views[0].samples[sca::window::kOffXLo][0];
  }
  EXPECT_GE(distinct, 4);
}

TEST(MaskedSign, DefeatsComponentAttack) {
  ChaCha20Prng rng(0xD400);
  const KeyPair kp = keygen(4, rng);

  sca::CampaignConfig cfg;
  cfg.num_traces = 800;
  cfg.device.noise_sigma = 1.0;  // generous to the attacker
  cfg.seed = 0xD400;
  cfg.signer = [](const SecretKey& sk, std::string_view msg, RandomSource& r) {
    return sign_masked(sk, msg, r);
  };
  const auto set = sca::run_signing_campaign(kp.sk, 1, cfg);

  const auto truth = kp.sk.b01[1];
  const auto split = attack::KnownOperand::from(truth);
  const auto ds = attack::build_component_dataset(set, false);

  attack::ComponentAttackConfig cac;
  cac.low_candidates = attack::MantissaCandidates::adversarial(split.y0, false, 120, 3);
  cac.high_candidates = attack::MantissaCandidates::adversarial(split.y1, true, 120, 4);
  const auto r = attack::attack_component(ds, cac);

  // The mask randomizes every targeted intermediate: mantissa recovery
  // must fail (the candidate sets contain the truth, so a success would
  // have to come from actual leakage, not chance: P(both halves) ~ 1e-4).
  EXPECT_FALSE(r.x0 == split.y0 && r.x1 == split.y1);
  // And the prune-phase correlation collapses towards noise.
  EXPECT_LT(r.low_prune.score, 0.2);
}

}  // namespace
}  // namespace fd::falcon
