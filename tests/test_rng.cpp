// ChaCha20 block function against the RFC 7539 test vector, plus
// statistical sanity for the RandomSource helpers.

#include <gtest/gtest.h>

#include <cmath>

#include "common/hex.h"
#include "common/rng.h"

namespace fd {
namespace {

TEST(ChaCha20, Rfc7539BlockVector) {
  // RFC 7539 section 2.3.2.
  std::uint32_t key[8];
  for (int i = 0; i < 8; ++i) {
    key[i] = static_cast<std::uint32_t>(4 * i) | (static_cast<std::uint32_t>(4 * i + 1) << 8) |
             (static_cast<std::uint32_t>(4 * i + 2) << 16) |
             (static_cast<std::uint32_t>(4 * i + 3) << 24);
  }
  const std::uint32_t nonce[3] = {0x09000000, 0x4a000000, 0x00000000};
  std::uint8_t out[64];
  ChaCha20Prng::block(key, 1, nonce, out);
  EXPECT_EQ(to_hex(out),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, DeterministicFromSeed) {
  ChaCha20Prng a(std::uint64_t{12345});
  ChaCha20Prng b(std::uint64_t{12345});
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
  ChaCha20Prng c(std::uint64_t{12346});
  int diffs = 0;
  ChaCha20Prng a2(std::uint64_t{12345});
  for (int i = 0; i < 100; ++i) diffs += (a2.next_u64() != c.next_u64());
  EXPECT_GT(diffs, 95);
}

TEST(ChaCha20, StringSeedsDiffer) {
  ChaCha20Prng a("hello");
  ChaCha20Prng b("world");
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(RandomSource, UniformBounds) {
  ChaCha20Prng rng(std::uint64_t{7});
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(13), 13U);
    EXPECT_EQ(rng.uniform(1), 0U);
  }
}

TEST(RandomSource, UniformIsRoughlyUniform) {
  ChaCha20Prng rng(std::uint64_t{8});
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 5 * std::sqrt(kDraws / kBuckets));
  }
}

TEST(RandomSource, GaussianMoments) {
  ChaCha20Prng rng(std::uint64_t{9});
  constexpr int kDraws = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / kDraws;
  const double var = sum2 / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

}  // namespace
}  // namespace fd
