// Statistical tests for the discrete Gaussian samplers: moments, support,
// and distribution shape against the exact target probabilities.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.h"
#include "falcon/sampler.h"

namespace fd::falcon {
namespace {

TEST(KeygenGaussian, MomentsMatchSigma) {
  for (const double sigma : {1.5, 4.05, 65.0}) {
    KeygenGaussian g(sigma);
    ChaCha20Prng rng(0x6001 + static_cast<std::uint64_t>(sigma * 100));
    constexpr int kDraws = 200000;
    double sum = 0.0;
    double sum2 = 0.0;
    for (int i = 0; i < kDraws; ++i) {
      const double v = g.sample(rng);
      sum += v;
      sum2 += v * v;
    }
    const double mean = sum / kDraws;
    const double var = sum2 / kDraws - mean * mean;
    EXPECT_NEAR(mean, 0.0, 5.0 * sigma / std::sqrt(kDraws)) << "sigma=" << sigma;
    EXPECT_NEAR(var, sigma * sigma, 0.03 * sigma * sigma) << "sigma=" << sigma;
  }
}

TEST(KeygenGaussian, ShapeMatchesDensity) {
  const double sigma = 4.05;
  KeygenGaussian g(sigma);
  ChaCha20Prng rng(0x6002);
  constexpr int kDraws = 400000;
  std::map<int, int> hist;
  for (int i = 0; i < kDraws; ++i) ++hist[g.sample(rng)];
  // chi-square against the discrete Gaussian over |k| <= 8.
  long double total_w = 0.0L;
  for (int k = -60; k <= 60; ++k) total_w += std::exp(-0.5L * k * k / (sigma * sigma));
  double chi2 = 0.0;
  int dof = 0;
  for (int k = -8; k <= 8; ++k) {
    const double p = static_cast<double>(std::exp(-0.5L * k * k / (sigma * sigma)) / total_w);
    const double expect = p * kDraws;
    const double got = hist.count(k) ? hist[k] : 0;
    chi2 += (got - expect) * (got - expect) / expect;
    ++dof;
  }
  // 17 cells: chi2 > 45 has p < 1e-4.
  EXPECT_LT(chi2, 45.0);
}

TEST(SamplerZBase, HalfGaussianSupportAndShape) {
  ChaCha20Prng rng(0x6003);
  SamplerZ s(1.2778, rng);
  constexpr int kDraws = 200000;
  std::map<int, int> hist;
  for (int i = 0; i < kDraws; ++i) {
    const int z = s.base_sampler();
    ASSERT_GE(z, 0);
    ASSERT_LE(z, 20);
    ++hist[z];
  }
  // Ratio hist[1]/hist[0] should match rho(1)/rho(0) = exp(-1/(2*1.8205^2)).
  const double expect_ratio = std::exp(-1.0 / (2.0 * 1.8205 * 1.8205));
  const double got_ratio = static_cast<double>(hist[1]) / hist[0];
  EXPECT_NEAR(got_ratio, expect_ratio, 0.02);
  EXPECT_GT(hist[0], hist[1]);
  EXPECT_GT(hist[1], hist[2]);
}

TEST(SamplerZ, BerExpProbability) {
  ChaCha20Prng rng(0x6004);
  SamplerZ s(1.2778, rng);
  for (const double x : {0.0, 0.25, 1.0, 3.0}) {
    for (const double ccs : {0.5, 0.9}) {
      constexpr int kDraws = 100000;
      int accepted = 0;
      for (int i = 0; i < kDraws; ++i) {
        accepted += s.ber_exp(fpr::Fpr::from_double(x), fpr::Fpr::from_double(ccs));
      }
      const double expect = ccs * std::exp(-x);
      EXPECT_NEAR(static_cast<double>(accepted) / kDraws, expect,
                  5.0 * std::sqrt(expect * (1 - expect) / kDraws) + 1e-4)
          << "x=" << x << " ccs=" << ccs;
    }
  }
}

TEST(SamplerZ, MomentsAcrossMuSigma) {
  ChaCha20Prng rng(0x6005);
  const double sigma_min = 1.2778;
  SamplerZ s(sigma_min, rng);
  for (const double mu : {0.0, 0.5, -3.7, 127.25}) {
    for (const double sigma : {1.2778, 1.5, 1.8205}) {
      constexpr int kDraws = 60000;
      double sum = 0.0;
      double sum2 = 0.0;
      for (int i = 0; i < kDraws; ++i) {
        const double z = static_cast<double>(
            s.sample(fpr::Fpr::from_double(mu), fpr::Fpr::from_double(sigma)));
        sum += z;
        sum2 += z * z;
      }
      const double mean = sum / kDraws;
      const double var = sum2 / kDraws - mean * mean;
      EXPECT_NEAR(mean, mu, 5.0 * sigma / std::sqrt(kDraws)) << mu << " " << sigma;
      // Discrete Gaussian variance approaches sigma^2 for sigma >~ 1.
      EXPECT_NEAR(var, sigma * sigma, 0.08 * sigma * sigma) << mu << " " << sigma;
    }
  }
}

TEST(SamplerZ, ExactDistributionSmallSigma) {
  // Compare the full histogram to the target discrete Gaussian at
  // mu = 0.3, sigma = 1.35 via chi-square.
  ChaCha20Prng rng(0x6006);
  SamplerZ s(1.2778, rng);
  const double mu = 0.3;
  const double sigma = 1.35;
  constexpr int kDraws = 300000;
  std::map<long, int> hist;
  for (int i = 0; i < kDraws; ++i) {
    ++hist[s.sample(fpr::Fpr::from_double(mu), fpr::Fpr::from_double(sigma))];
  }
  long double total = 0.0L;
  for (int k = -40; k <= 40; ++k) {
    total += std::exp(-0.5L * (k - mu) * (k - mu) / (sigma * sigma));
  }
  double chi2 = 0.0;
  int cells = 0;
  for (int k = -4; k <= 5; ++k) {
    const double p =
        static_cast<double>(std::exp(-0.5L * (k - mu) * (k - mu) / (sigma * sigma)) / total);
    const double expect = p * kDraws;
    if (expect < 20) continue;
    const double got = hist.count(k) ? hist[k] : 0;
    chi2 += (got - expect) * (got - expect) / expect;
    ++cells;
  }
  EXPECT_GE(cells, 6);
  EXPECT_LT(chi2, 40.0);  // generous for ~8 dof
}

}  // namespace
}  // namespace fd::falcon
