// Capture rig and device model: trigger windowing, event schedules,
// leakage-to-trace synthesis, countermeasure knobs, campaign structure.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "falcon/falcon.h"
#include "sca/campaign.h"
#include "sca/capture.h"
#include "sca/device.h"

namespace fd::sca {
namespace {

using fpr::Fpr;
using fpr::LeakageEvent;
using fpr::LeakageTag;

std::vector<LeakageEvent> synthetic_window(std::uint64_t base_value, std::size_t count) {
  std::vector<LeakageEvent> ev(count);
  for (std::size_t i = 0; i < count; ++i) {
    ev[i] = {LeakageTag::kMulProdLL, base_value + i};
  }
  return ev;
}

TEST(EventWindowRecorder, CapturesOnlyTargetWindow) {
  EventWindowRecorder rec(/*slot=*/1);
  rec.on_event({LeakageTag::kTriggerBegin, 0});
  rec.on_event({LeakageTag::kMulProdLL, 111});
  rec.on_event({LeakageTag::kTriggerEnd, 0});
  rec.on_event({LeakageTag::kTriggerBegin, 1});
  rec.on_event({LeakageTag::kMulProdLL, 222});
  rec.on_event({LeakageTag::kTriggerEnd, 1});
  ASSERT_TRUE(rec.complete());
  ASSERT_EQ(rec.events().size(), 1U);
  EXPECT_EQ(rec.events()[0].value, 222U);
}

TEST(EventWindowRecorder, OccurrenceSelection) {
  EventWindowRecorder rec(/*slot=*/0, /*occurrence=*/1);
  for (int occ = 0; occ < 3; ++occ) {
    rec.on_event({LeakageTag::kTriggerBegin, 0});
    rec.on_event({LeakageTag::kMulProdLL, static_cast<std::uint64_t>(100 + occ)});
    rec.on_event({LeakageTag::kTriggerEnd, 0});
  }
  ASSERT_TRUE(rec.complete());
  // occurrence 1 captured; occurrence 2 must not overwrite it.
  ASSERT_EQ(rec.events().size(), 1U);
  EXPECT_EQ(rec.events()[0].value, 101U);
}

TEST(EmDeviceModel, NoiselessAmplitudeIsHammingWeight) {
  DeviceConfig cfg;
  cfg.noise_sigma = 0.0;
  cfg.alpha = 2.0;
  EmDeviceModel dev(cfg);
  const auto tr = dev.synthesize(synthetic_window(0b1011, 1));  // HW 3
  ASSERT_EQ(tr.samples.size(), 1U);
  EXPECT_FLOAT_EQ(tr.samples[0], 6.0F);
}

TEST(EmDeviceModel, NoiseHasConfiguredSpread) {
  DeviceConfig cfg;
  cfg.noise_sigma = 5.0;
  EmDeviceModel dev(cfg, /*noise_seed=*/7);
  double sum = 0.0;
  double sum2 = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const auto tr = dev.synthesize(synthetic_window(0xFF, 1));  // HW 8
    sum += tr.samples[0];
    sum2 += static_cast<double>(tr.samples[0]) * tr.samples[0];
  }
  const double mean = sum / kDraws;
  const double sd = std::sqrt(sum2 / kDraws - mean * mean);
  EXPECT_NEAR(mean, 8.0, 0.2);
  EXPECT_NEAR(sd, 5.0, 0.2);
}

TEST(EmDeviceModel, ConstantWeightHidesData) {
  DeviceConfig cfg;
  cfg.noise_sigma = 0.0;
  cfg.constant_weight = true;
  EmDeviceModel dev(cfg);
  const auto t1 = dev.synthesize(synthetic_window(0x0, 1));
  const auto t2 = dev.synthesize(synthetic_window(0xFFFFFFFFFFFFFFFFULL, 1));
  EXPECT_FLOAT_EQ(t1.samples[0], t2.samples[0]);
}

TEST(EmDeviceModel, JitterShiftsWindow) {
  DeviceConfig cfg;
  cfg.noise_sigma = 0.0;
  cfg.jitter_max = 4;
  EmDeviceModel dev(cfg, 9);
  bool saw_shift = false;
  for (int i = 0; i < 50 && !saw_shift; ++i) {
    const auto tr = dev.synthesize(synthetic_window(0xFF, 1));
    ASSERT_EQ(tr.samples.size(), 5U);  // 1 event + jitter margin
    saw_shift = tr.samples[0] == 0.0F && tr.samples[1] + tr.samples[2] + tr.samples[3] +
                                                 tr.samples[4] >
                                             0.0F;
  }
  EXPECT_TRUE(saw_shift);
}

TEST(Campaign, WindowHasExpectedSchedule) {
  ChaCha20Prng rng(0xA001);
  const auto kp = falcon::keygen(4, rng);
  CampaignConfig cfg;
  cfg.num_traces = 3;
  cfg.device.noise_sigma = 0.0;
  const TraceSet set = run_signing_campaign(kp.sk, /*slot=*/2, cfg);
  ASSERT_EQ(set.traces.size(), 3U);
  for (const auto& ct : set.traces) {
    // 4 muls x 17 events + 2 adds x 3 events.
    EXPECT_EQ(ct.trace.samples.size(), window::kEventsPerWindow);
    // The known FFT(c) slot is a real nonzero floating-point value.
    EXPECT_NE(ct.known_re.to_double(), 0.0);
    EXPECT_NE(ct.known_im.to_double(), 0.0);
  }
}

TEST(Campaign, NoiselessTraceMatchesPredictedLeakage) {
  // With zero noise, the sample at the ProdLL offset of mul block 0 must
  // equal HW(x0 * y0) where x is the secret FFT(-f)[slot] and y the
  // adversary-recomputed FFT(c)[slot].
  ChaCha20Prng rng(0xA002);
  const auto kp = falcon::keygen(4, rng);
  CampaignConfig cfg;
  cfg.num_traces = 5;
  cfg.device.noise_sigma = 0.0;
  const std::size_t slot = 1;
  const TraceSet set = run_signing_campaign(kp.sk, slot, cfg);

  const Fpr secret_re = kp.sk.b01[slot];
  for (const auto& ct : set.traces) {
    const auto st = fpr::mul_mantissa_steps(secret_re.significand(), ct.known_re.significand());
    const float expect = static_cast<float>(std::popcount(st.prod_ll));
    EXPECT_FLOAT_EQ(ct.trace.samples[window::kOffProdLL], expect);
    const float expect_zu = static_cast<float>(std::popcount(st.zu));
    EXPECT_FLOAT_EQ(ct.trace.samples[window::kOffAccZu], expect_zu);
    // Sign event: HW(sx ^ sy).
    const float expect_sign =
        static_cast<float>(secret_re.sign() != ct.known_re.sign());
    EXPECT_FLOAT_EQ(ct.trace.samples[window::kOffSign], expect_sign);
  }
}

TEST(Campaign, KnownInputsVaryAcrossTraces) {
  ChaCha20Prng rng(0xA003);
  const auto kp = falcon::keygen(4, rng);
  CampaignConfig cfg;
  cfg.num_traces = 8;
  const TraceSet set = run_signing_campaign(kp.sk, 0, cfg);
  int distinct = 0;
  for (std::size_t i = 1; i < set.traces.size(); ++i) {
    distinct += set.traces[i].known_re.bits() != set.traces[0].known_re.bits();
  }
  EXPECT_GE(distinct, 6);
}

TEST(Campaign, FullCampaignCoversAllSlots) {
  ChaCha20Prng rng(0xA004);
  const auto kp = falcon::keygen(3, rng);
  CampaignConfig cfg;
  cfg.num_traces = 2;
  const auto sets = run_full_campaign(kp.sk, cfg);
  ASSERT_EQ(sets.size(), 4U);  // n/2 = 4 complex slots
  for (std::size_t s = 0; s < sets.size(); ++s) {
    EXPECT_EQ(sets[s].slot, s);
    ASSERT_EQ(sets[s].traces.size(), 2U);
    EXPECT_EQ(sets[s].traces[0].trace.samples.size(), window::kEventsPerWindow);
  }
}

}  // namespace
}  // namespace fd::sca
