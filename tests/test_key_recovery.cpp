// The paper's end goal as an integration test: recover the entire
// signing key from EM traces and forge a signature that the victim's
// public key accepts.

#include <gtest/gtest.h>

#include "attack/key_recovery.h"
#include "common/rng.h"
#include "falcon/falcon.h"

namespace fd::attack {
namespace {

TEST(KeyRecovery, FullAttackRecoversKeyAndForges) {
  ChaCha20Prng rng(0xC001);
  const auto victim = falcon::keygen(4, rng);  // n = 16 toy instance

  KeyRecoveryConfig cfg;
  cfg.num_traces = 700;
  cfg.device.noise_sigma = 2.0;
  cfg.adversarial_random = 100;
  cfg.seed = 0xC001;

  const KeyRecoveryResult res = recover_key(victim, cfg);
  EXPECT_EQ(res.components_correct, res.components_total);
  EXPECT_TRUE(res.f_exact);
  EXPECT_EQ(res.recovered_f, victim.sk.f);
  EXPECT_TRUE(res.ntru_solved);
  EXPECT_EQ(res.derived_g, victim.sk.g);
  EXPECT_TRUE(res.forgery_verified);
}

TEST(KeyRecovery, HidingCountermeasureDefeatsAttack) {
  ChaCha20Prng rng(0xC002);
  const auto victim = falcon::keygen(3, rng);

  KeyRecoveryConfig cfg;
  cfg.num_traces = 400;
  cfg.device.noise_sigma = 2.0;
  cfg.device.constant_weight = true;  // Section V.B hiding
  cfg.adversarial_random = 60;
  cfg.seed = 0xC002;

  const KeyRecoveryResult res = recover_key(victim, cfg);
  // With amplitude independent of data, every correlation is noise:
  // component recovery collapses to chance.
  EXPECT_LT(res.components_correct, res.components_total / 2);
  EXPECT_FALSE(res.f_exact);
}

TEST(ForgeKey, RejectsWrongF) {
  ChaCha20Prng rng(0xC003);
  const auto victim = falcon::keygen(4, rng);
  auto wrong_f = victim.sk.f;
  wrong_f[0] += 3;  // g = h*f would have huge coefficients
  EXPECT_FALSE(forge_key(wrong_f, victim.pk).has_value());
}

TEST(ForgeKey, SucceedsWithTrueF) {
  // forge_key re-derives everything from f and the public key alone --
  // the signatures it produces may differ from the victim's (different
  // F, G reduction is possible) but must verify.
  ChaCha20Prng rng(0xC004);
  const auto victim = falcon::keygen(5, rng);
  const auto forged = forge_key(victim.sk.f, victim.pk);
  ASSERT_TRUE(forged.has_value());
  EXPECT_EQ(forged->g, victim.sk.g);
  ChaCha20Prng sig_rng(0x51);
  const auto sig = falcon::sign(*forged, "arbitrary attacker message", sig_rng);
  EXPECT_TRUE(falcon::verify(victim.pk, "arbitrary attacker message", sig));
}

}  // namespace
}  // namespace fd::attack
