// Profiled template attack (Section V.A extension): profiling accuracy,
// likelihood sanity, and the trace-budget advantage over plain CPA.

#include <gtest/gtest.h>

#include "attack/template_attack.h"
#include "common/rng.h"
#include "falcon/falcon.h"
#include "sca/campaign.h"

namespace fd::attack {
namespace {

using fpr::Fpr;

struct Rig {
  falcon::KeyPair clone;   // profiling device: key known to the adversary
  falcon::KeyPair victim;  // target device: same physics, unknown key
  sca::TraceSet clone_set;
  sca::TraceSet victim_set;
};

Rig make_rig(std::size_t traces, double noise, std::uint64_t seed) {
  Rig rig;
  ChaCha20Prng rng_a(seed);
  ChaCha20Prng rng_b(seed ^ 0xFFFF);
  rig.clone = falcon::keygen(4, rng_a);
  rig.victim = falcon::keygen(4, rng_b);

  sca::CampaignConfig cfg;
  cfg.num_traces = traces;
  cfg.device.noise_sigma = noise;
  cfg.seed = seed + 1;
  rig.clone_set = sca::run_signing_campaign(rig.clone.sk, 0, cfg);
  cfg.seed = seed + 2;
  rig.victim_set = sca::run_signing_campaign(rig.victim.sk, 0, cfg);
  return rig;
}

TEST(TemplateAttack, ProfileRecoversDeviceParameters) {
  const Rig rig = make_rig(600, 3.0, 0xE001);
  const auto ds = build_component_dataset(rig.clone_set, false);
  const auto prof = profile_device(ds, rig.clone.sk.b01[0]);

  // The device has alpha = 1, beta = 0, sigma = 3 at every point.
  // Slope precision scales with 1/sqrt(Var(h)*N): single-bit offsets
  // (sign) are wobbly, the wide mantissa products are tight.
  int fitted = 0;
  for (const auto& p : prof.points) {
    if (p.alpha == 0.0) continue;  // offsets with constant HW can't fit alpha
    EXPECT_NEAR(p.alpha, 1.0, 0.4);
    EXPECT_NEAR(p.beta, 0.0, 6.0);
    EXPECT_NEAR(p.sigma, 3.0, 0.8);
    ++fitted;
  }
  EXPECT_GE(fitted, 8);
  const auto& prod = prof.points[sca::window::kOffProdLL];
  EXPECT_NEAR(prod.alpha, 1.0, 0.1);
  EXPECT_NEAR(prod.sigma, 3.0, 0.3);
}

TEST(TemplateAttack, TruthMaximizesLikelihood) {
  const Rig rig = make_rig(500, 2.0, 0xE002);
  const auto clone_ds = build_component_dataset(rig.clone_set, false);
  const auto prof = profile_device(clone_ds, rig.clone.sk.b01[0]);

  const auto victim_ds = build_component_dataset(rig.victim_set, false);
  const Fpr truth = rig.victim.sk.b01[0];
  const double ll_true = template_log_likelihood(victim_ds, prof, truth.bits());
  // Perturbations in any field lose likelihood.
  EXPECT_GT(ll_true, template_log_likelihood(victim_ds, prof, truth.bits() ^ (1ULL << 63)));
  EXPECT_GT(ll_true, template_log_likelihood(victim_ds, prof, truth.bits() + (1ULL << 52)));
  EXPECT_GT(ll_true, template_log_likelihood(victim_ds, prof, truth.bits() ^ 0x5A5AULL));
  EXPECT_GT(ll_true, template_log_likelihood(victim_ds, prof, truth.bits() ^ (1ULL << 30)));
}

TEST(TemplateAttack, RecoversComponentCrossDevice) {
  const Rig rig = make_rig(800, 2.0, 0xE003);
  const auto clone_ds = build_component_dataset(rig.clone_set, false);
  const auto prof = profile_device(clone_ds, rig.clone.sk.b01[0]);

  const auto victim_ds = build_component_dataset(rig.victim_set, false);
  const Fpr truth = rig.victim.sk.b01[0];
  const auto split = KnownOperand::from(truth);

  ComponentAttackConfig cac;
  cac.low_candidates = MantissaCandidates::adversarial(split.y0, false, 120, 0xE003);
  cac.high_candidates = MantissaCandidates::adversarial(split.y1, true, 120, 0xE004);
  const auto res = template_attack_component(victim_ds, prof, cac);

  EXPECT_EQ(res.sign, truth.sign());
  EXPECT_EQ(res.exponent, truth.biased_exponent());  // ExpX+ExpSum: no aliasing
  EXPECT_EQ(res.x0, split.y0);
  EXPECT_EQ(res.x1, split.y1);
  EXPECT_EQ(res.bits, truth.bits());
}

TEST(TemplateAttack, BeatsCpaAtLowTraceCount) {
  // With few traces and higher noise, the joint-likelihood attack should
  // recover the exponent exactly where plain CPA still faces its alias
  // ties -- the quantitative Section V.A point.
  const Rig rig = make_rig(700, 4.0, 0xE005);
  const auto clone_ds = build_component_dataset(rig.clone_set, false);
  const auto prof = profile_device(clone_ds, rig.clone.sk.b01[0]);

  const auto victim_ds = build_component_dataset(rig.victim_set, false);
  const Fpr truth = rig.victim.sk.b01[0];
  const auto split = KnownOperand::from(truth);

  ComponentAttackConfig cac;
  cac.low_candidates = MantissaCandidates::adversarial(split.y0, false, 80, 1);
  cac.high_candidates = MantissaCandidates::adversarial(split.y1, true, 80, 2);

  const auto tmpl = template_attack_component(victim_ds, prof, cac);
  EXPECT_EQ(tmpl.bits, truth.bits());

  // CPA at the same budget returns a multi-member exponent tie class.
  const auto cpa = attack_component(victim_ds, cac);
  EXPECT_GE(cpa.exp_phase.top.size(), 2U);
}

}  // namespace
}  // namespace fd::attack
